// Micro-benchmarks of the network substrate: message codec throughput,
// simulated broadcast/collect, topology construction, and one full
// simulated EA step — quantifying the paper's claim that communication is
// negligible next to CLK computation.
#include <benchmark/benchmark.h>

#include "core/dist_clk.h"
#include "net/message.h"
#include "net/sim_network.h"
#include "net/topology.h"
#include "tsp/gen.h"
#include "tsp/neighbors.h"

namespace {

using namespace distclk;

Message tourMessage(int n) {
  Message m;
  m.type = MessageType::kTour;
  m.from = 1;
  m.length = 123456789;
  m.order.resize(std::size_t(n));
  for (int i = 0; i < n; ++i) m.order[std::size_t(i)] = i;
  return m;
}

void BM_Serialize(benchmark::State& state) {
  const Message msg = tourMessage(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(serialize(msg));
  state.SetBytesProcessed(state.iterations() *
                          (21 + state.range(0) * 4));
}
BENCHMARK(BM_Serialize)->Arg(1000)->Arg(25000);

void BM_Deserialize(benchmark::State& state) {
  const auto buf = serialize(tourMessage(static_cast<int>(state.range(0))));
  for (auto _ : state) benchmark::DoNotOptimize(deserialize(buf));
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_Deserialize)->Arg(1000)->Arg(25000);

void BM_TopologyBuild(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        buildTopology(TopologyKind::kHypercube,
                      static_cast<int>(state.range(0))));
}
BENCHMARK(BM_TopologyBuild)->Arg(8)->Arg(64)->Arg(1024);

void BM_BroadcastCollect(benchmark::State& state) {
  SimNetwork net(buildTopology(TopologyKind::kHypercube, 8), 1e-3);
  const Message msg = tourMessage(1000);
  double t = 0;
  for (auto _ : state) {
    net.broadcast(0, t, msg);
    for (int node : {1, 2, 4})
      benchmark::DoNotOptimize(net.collect(node, t + 1.0));
    t += 1.0;
  }
}
BENCHMARK(BM_BroadcastCollect);

// One full simulated distributed run at miniature scale: dominated by CLK
// compute, which is the point of the comparison with the codec numbers.
void BM_SimulatedRun(benchmark::State& state) {
  const Instance inst = uniformSquare("bm", 200, 9);
  const CandidateLists cand(inst, 8);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    SimOptions opt;
    opt.nodes = 4;
    opt.costModel = CostModel::kModeled;
    opt.modeledWorkPerSecond = 1e6;
    opt.node.clkKicksPerCall = 10;
    opt.timeLimitPerNode = 0.2;
    opt.seed = seed++;
    benchmark::DoNotOptimize(runSimulatedDistClk(inst, cand, opt));
  }
}
BENCHMARK(BM_SimulatedRun)->Unit(benchmark::kMillisecond);

}  // namespace
