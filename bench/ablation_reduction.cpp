// Ablation: partial reduction (Bachem & Wottawa, cited in §1.3). Protect
// the edges two optimized tours agree on and seed LK only at unprotected
// anchors; the original authors report 10-50% runtime reduction at
// constant quality. Measured here as LK work (flips) and wall time per
// kick-repair cycle, full vs reduced.
//
//   ablation_reduction [--runs R] [--max-n N]
#include <cstdio>
#include <iostream>

#include "experiments/harness.h"
#include "lk/partial_reduction.h"
#include "construct/construct.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

using namespace distclk;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args);

  Table table({"Instance", "Protected", "Full flips", "Reduced flips",
               "Flip savings", "Quality gap"});

  for (const char* name : {"E1k.1", "C1k.1", "fl1577"}) {
    const auto* spec = findPaperInstance(name);
    const int n = cfg.sizeFor(*spec);
    const Instance inst = makeScaledInstance(*spec, n);
    const CandidateLists cand(inst, 10);
    Rng rng(cfg.seed);

    // Build the protection mask from two optimized tours.
    Tour a(inst, quickBoruvkaTour(inst, cand));
    ClkOptions co;
    co.maxKicks = n / 4;
    chainedLinKernighan(a, cand, rng, co);
    Tour b = a;
    applyKick(b, KickStrategy::kRandom, cand, rng);
    linKernighanOptimize(b, cand);
    const auto mask = protectedCityMask({a.orderVector(), b.orderVector()});
    int protectedCount = 0;
    for (char m : mask) protectedCount += m;

    // Measure repeated kick-repair cycles, full vs reduced.
    RunningStats fullFlips, reducedFlips, gap;
    const int cycles = 10 * cfg.runs;
    for (int i = 0; i < cycles; ++i) {
      Tour kicked = a;
      const auto dirty = applyKick(kicked, KickStrategy::kRandom, cand, rng);
      Tour fullT = kicked;
      Tour reducedT = kicked;
      fullFlips.add(
          static_cast<double>(linKernighanOptimize(fullT, cand).flips));
      reducedFlips.add(static_cast<double>(
          reducedLinKernighanOptimize(reducedT, cand, mask, dirty).flips));
      gap.add(static_cast<double>(reducedT.length()) /
                  static_cast<double>(fullT.length()) -
              1.0);
    }
    table.addRow(
        {spec->standinName,
         fmtPct(static_cast<double>(protectedCount) / n, 1),
         fmt(fullFlips.mean(), 0), fmt(reducedFlips.mean(), 0),
         fmtPct(1.0 - reducedFlips.mean() / fullFlips.mean(), 1),
         fmtPct(gap.mean())});
  }

  table.print(std::cout);
  if (!cfg.csvDir.empty())
    table.writeCsvFile(cfg.csvDir + "/ablation_reduction.csv");
  std::printf("\nreference (Bachem & Wottawa via §1.3): protecting edges "
              "seen on previous good tours cut LK runtime by 10-50%% while "
              "keeping tour quality constant — expect flip savings in that "
              "band with a near-zero quality gap.\n");
  return 0;
}
