// Micro-benchmarks of the TSP substrate: distance evaluation, tour length,
// kd-tree construction and queries, candidate-list construction, and the
// construction heuristics.
#include <benchmark/benchmark.h>

#include "construct/construct.h"
#include "tsp/dist_kernel.h"
#include "tsp/gen.h"
#include "tsp/kdtree.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"
#include "util/rng.h"

namespace {

using namespace distclk;

const Instance& instanceOf(int n) {
  static std::map<int, Instance> cache;
  auto it = cache.find(n);
  if (it == cache.end())
    it = cache.emplace(n, uniformSquare("bm", n, std::uint64_t(n))).first;
  return it->second;
}

void BM_DistEuc2D(benchmark::State& state) {
  const Instance& inst = instanceOf(1000);
  int i = 0, j = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.dist(i, j));
    i = (i + 1) % 1000;
    j = (j + 7) % 1000;
  }
}
BENCHMARK(BM_DistEuc2D);

// Same access pattern through the metric-specialized kernel: the branch on
// hasMatrix + the EdgeWeightType switch are resolved once at construction,
// the loop pays only an indirect call over SoA arrays.
void BM_DistKernelEuc2D(benchmark::State& state) {
  const Instance& inst = instanceOf(1000);
  const DistanceKernel dist(inst);
  int i = 0, j = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist(i, j));
    i = (i + 1) % 1000;
    j = (j + 7) % 1000;
  }
}
BENCHMARK(BM_DistKernelEuc2D);

// Fully static variant (metric known at compile time): the inlining ceiling
// for the dispatch-hoisted kernel.
void BM_DistKernelEuc2DStatic(benchmark::State& state) {
  const Instance& inst = instanceOf(1000);
  const DistanceKernel dist(inst);
  int i = 0, j = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.evalAs<EdgeWeightType::kEuc2D>(i, j));
    i = (i + 1) % 1000;
    j = (j + 7) % 1000;
  }
}
BENCHMARK(BM_DistKernelEuc2DStatic);

// Candidate-scan shapes as in LK's chain step: sum d(c, cand) over every
// CSR list. Recompute pays sqrt+llround per edge; annotated reads the
// distance the builder already computed from the parallel CSR array.
void BM_CandScanRecompute(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Instance& inst = instanceOf(n);
  const CandidateLists cand(inst, 10);
  for (auto _ : state) {
    std::int64_t sum = 0;
    for (int c = 0; c < n; ++c)
      for (const int o : cand.of(c)) sum += inst.dist(c, o);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 10);
}
BENCHMARK(BM_CandScanRecompute)->Arg(10000);

void BM_CandScanAnnotated(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Instance& inst = instanceOf(n);
  const CandidateLists cand(inst, 10);
  for (auto _ : state) {
    std::int64_t sum = 0;
    for (int c = 0; c < n; ++c)
      for (const std::int64_t d : cand.distOf(c)) sum += d;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 10);
}
BENCHMARK(BM_CandScanAnnotated)->Arg(10000);

void BM_TourLength(benchmark::State& state) {
  const Instance& inst = instanceOf(static_cast<int>(state.range(0)));
  Tour t(inst);
  for (auto _ : state)
    benchmark::DoNotOptimize(inst.tourLength(t.order()));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TourLength)->Arg(1000)->Arg(10000);

void BM_KdTreeBuild(benchmark::State& state) {
  const Instance& inst = instanceOf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    KdTree tree(inst.points());
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdTreeBuild)->Arg(1000)->Arg(10000);

void BM_KdTreeKnn(benchmark::State& state) {
  const Instance& inst = instanceOf(10000);
  KdTree tree(inst.points());
  int q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.knn(q, 10));
    q = (q + 1) % 10000;
  }
}
BENCHMARK(BM_KdTreeKnn);

void BM_CandidateLists(benchmark::State& state) {
  const Instance& inst = instanceOf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    CandidateLists cand(inst, 10);
    benchmark::DoNotOptimize(cand.n());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CandidateLists)->Arg(1000)->Arg(5000);

void BM_QuadrantLists(benchmark::State& state) {
  const Instance& inst = instanceOf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    CandidateLists cand(inst, 12, CandidateLists::Kind::kQuadrant);
    benchmark::DoNotOptimize(cand.n());
  }
}
BENCHMARK(BM_QuadrantLists)->Arg(1000);

void BM_QuickBoruvka(benchmark::State& state) {
  const Instance& inst = instanceOf(static_cast<int>(state.range(0)));
  const CandidateLists cand(inst, 10);
  for (auto _ : state)
    benchmark::DoNotOptimize(quickBoruvkaTour(inst, cand));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuickBoruvka)->Arg(1000)->Arg(5000);

void BM_GreedyConstruct(benchmark::State& state) {
  const Instance& inst = instanceOf(static_cast<int>(state.range(0)));
  const CandidateLists cand(inst, 10);
  for (auto _ : state)
    benchmark::DoNotOptimize(greedyTour(inst, cand));
}
BENCHMARK(BM_GreedyConstruct)->Arg(1000)->Arg(5000);

void BM_SpaceFilling(benchmark::State& state) {
  const Instance& inst = instanceOf(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(spaceFillingTour(inst));
}
BENCHMARK(BM_SpaceFilling)->Arg(1000)->Arg(10000);

void BM_TourReverseSegment(benchmark::State& state) {
  const Instance& inst = instanceOf(10000);
  Tour t(inst);
  Rng rng(3);
  for (auto _ : state) {
    const int i = static_cast<int>(rng.below(10000));
    const int j = static_cast<int>(rng.below(10000));
    t.reverseSegment(i, j);
  }
}
BENCHMARK(BM_TourReverseSegment);

}  // namespace
