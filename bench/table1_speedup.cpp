// Table 1: CPU time (per node) to reach fixed quality levels for ABCC-CLK,
// DistCLK on one node and DistCLK on 8 nodes, plus the speed-up factor of
// 8 nodes over plain CLK in TOTAL CPU time. A factor above 8 is the
// paper's super-linear cooperation effect. Instances: pr2392, fl3795,
// fi10639 (stand-ins; fi10639 is size-capped by --max-n in default mode).
//
//   table1_speedup [--runs R] [--clk-budget S] [--dist-budget S]
//                  [--nodes K] [--full] [--max-n N] [--csv-dir DIR]
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <string>

#include "experiments/harness.h"
#include "util/stats.h"
#include "util/table.h"

using namespace distclk;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args);

  const char* instances[] = {"pr2392", "fl3795", "fi10639"};
  const double levels[] = {0.01, 0.005, 0.002};  // excess over the reference

  Table table({"Instance", "Level", "ABCC-CLK", "1 node", "8 nodes",
               "Speed-up(8 vs CLK)"});

  std::printf("Table 1 reproduction: mean CPU seconds per node to reach an "
              "excess level; speed-up = CLK time / (8 x 8-node time)\n");
  std::printf("runs=%d, CLK budget %.2fs, Dist budget %.2fs/node\n\n",
              cfg.runs, cfg.clkBudget, cfg.distBudget);

  for (const char* name : instances) {
    const auto* spec = findPaperInstance(name);
    if (spec == nullptr) continue;
    const int n = cfg.sizeFor(*spec);
    const Instance inst = makeScaledInstance(*spec, n);
    const CandidateLists cand(inst, 10);

    // Collect anytime curves for the three algorithms. Give every variant
    // the same generous budget so the level lookups are comparable.
    const double budget = cfg.clkBudgetFor(*spec);
    std::vector<AnytimeCurve> clkCurves, one, eight;
    for (int run = 0; run < cfg.runs; ++run) {
      const std::uint64_t seed = cfg.seed + std::uint64_t(run) * 31;
      clkCurves.push_back(
          runClkExperiment(inst, cand, KickStrategy::kRandomWalk, budget, -1,
                           seed)
              .curve);
      one.push_back(runDistExperiment(inst, cand, KickStrategy::kRandomWalk,
                                      1, budget, -1, seed + 7)
                        .curve);
      eight.push_back(runDistExperiment(inst, cand, KickStrategy::kRandomWalk,
                                        cfg.nodes, budget / cfg.nodes, -1,
                                        seed + 13)
                          .curve);
    }

    // Reference ("optimum") = best length any of the runs achieved; the
    // quality levels are defined relative to it, as the paper defines them
    // relative to the known optimum.
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (const auto* group : {&clkCurves, &one, &eight})
      for (const auto& c : *group)
        if (!c.empty()) best = std::min(best, c.back().length);
    const double ref = static_cast<double>(best);

    for (double level : levels) {
      const auto target = static_cast<std::int64_t>(ref * (1.0 + level));
      // Mean over the runs that reached the level, annotated with how many
      // did ("0.44 (1/2)"); "-" when none did. The paper's cells are means
      // over 10 runs at much longer budgets.
      struct LevelTime {
        double mean = std::numeric_limits<double>::infinity();
        int hits = 0;
        int runs = 0;
      };
      auto levelTime = [&](const std::vector<AnytimeCurve>& curves) {
        LevelTime lt;
        lt.runs = static_cast<int>(curves.size());
        RunningStats s;
        for (const auto& c : curves) {
          const double t = timeToReach(c, target);
          if (!std::isinf(t)) s.add(t);
        }
        lt.hits = static_cast<int>(s.count());
        if (lt.hits > 0) lt.mean = s.mean();
        return lt;
      };
      auto show = [&](const LevelTime& lt) {
        if (lt.hits == 0) return std::string("-");
        return fmt(lt.mean, 2) + " (" + std::to_string(lt.hits) + "/" +
               std::to_string(lt.runs) + ")";
      };
      const LevelTime tClk = levelTime(clkCurves);
      const LevelTime t1 = levelTime(one);
      const LevelTime t8 = levelTime(eight);
      std::string speedup = "-";
      if (tClk.hits > 0 && t8.hits > 0)
        speedup = fmt(tClk.mean / (cfg.nodes * t8.mean), 2);
      else if (tClk.hits == 0 && t8.hits > 0)
        speedup = "inf (CLK never)";
      table.addRow({spec->standinName, fmtPct(level, 1), show(tClk),
                    show(t1), show(t8), speedup});
    }
  }

  table.print(std::cout);
  if (!cfg.csvDir.empty())
    table.writeCsvFile(cfg.csvDir + "/table1_speedup.csv");
  std::printf("\npaper reference (Table 1): pr2392 @0.1%%: 1721.9s vs 10.7s "
              "per node -> factor 20.1; fl3795 to OPT: factor 8.38 (median); "
              "fi10639 @0.08%%: 6961s (1 node) vs 723s (8 nodes) -> 9.63.\n"
              "Expected shape: 8-node times well below CLK; factors near or "
              "above the node count.\n");
  return 0;
}
