// Ablation: the design choices of §2.3/§4.2 —
//   * the variable-strength perturbation (c_v) and restart rule (c_r),
//   * running with perturbation disabled (the paper's "without DBMs"),
//   * link latency sensitivity (communication is claimed to be negligible).
//
//   ablation_params [--runs R] [--dist-budget S] [--max-n N]
#include <cstdio>
#include <iostream>

#include "experiments/harness.h"
#include "util/stats.h"
#include "util/table.h"

using namespace distclk;

namespace {

/// Collects the final best lengths of `runs` simulations of one variant.
std::vector<std::int64_t> runVariant(const Instance& inst,
                                     const CandidateLists& cand,
                                     const BenchConfig& cfg, double budget,
                                     const DistParams& params,
                                     double latency = 1e-3) {
  std::vector<std::int64_t> lengths;
  for (int run = 0; run < cfg.runs; ++run) {
    SimOptions opt;
    opt.nodes = cfg.nodes;
    opt.node = params;
    opt.node.clkKicksPerCall = scaledNodeParams(inst).clkKicksPerCall;
    opt.timeLimitPerNode = budget;
    opt.latencySeconds = latency;
    opt.seed = cfg.seed + std::uint64_t(run) * 211;
    lengths.push_back(runSimulatedDistClk(inst, cand, opt).bestLength);
  }
  return lengths;
}

/// Mean excess of a variant's lengths over a shared reference.
double meanExcessOver(const std::vector<std::int64_t>& lengths, double ref) {
  RunningStats ex;
  for (std::int64_t len : lengths) ex.add(excess(len, ref));
  return ex.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args);

  const auto* spec = findPaperInstance("fl3795");
  const int n = cfg.sizeFor(*spec);
  const Instance inst = makeScaledInstance(*spec, n);
  const CandidateLists cand(inst, 10);
  const double budget = cfg.distBudgetFor(*spec) * 2.0;

  std::printf("Parameter ablation on %s (n=%d), %d nodes, %.2fs/node, %d "
              "runs\n\n",
              spec->standinName.c_str(), n, cfg.nodes, budget, cfg.runs);

  // Run every variant first; excesses are relative to the best length any
  // variant (or the calibration run) achieved.
  std::vector<std::pair<std::string, std::vector<std::int64_t>>> variants;
  auto add = [&](std::string label, std::vector<std::int64_t> lengths) {
    variants.emplace_back(std::move(label), std::move(lengths));
  };

  for (int cv : {4, 16, 64, 256}) {
    DistParams p;
    p.cv = cv;
    add("c_v=" + std::to_string(cv), runVariant(inst, cand, cfg, budget, p));
  }
  for (int cr : {8, 64, 256, 4096}) {
    DistParams p;
    p.cr = cr;
    add("c_r=" + std::to_string(cr), runVariant(inst, cand, cfg, budget, p));
  }
  {
    DistParams off;
    off.usePerturbation = false;
    add("no-DBM", runVariant(inst, cand, cfg, budget, off));
  }
  for (double lat : {1e-4, 1e-3, 0.05, 0.5}) {
    DistParams p;
    add("latency=" + fmt(lat, 4),
        runVariant(inst, cand, cfg, budget, p, lat));
  }

  std::int64_t best =
      calibrateReference(inst, cand, budget * 2.0, cfg.seed + 31337);
  for (const auto& [label, lengths] : variants)
    for (std::int64_t len : lengths) best = std::min(best, len);
  const double ref = static_cast<double>(best);

  Table t({"Variant", "Mean excess"});
  for (const auto& [label, lengths] : variants)
    t.addRow({label, fmtPct(meanExcessOver(lengths, ref))});
  t.print(std::cout);

  std::printf("\nexpected shape: defaults (c_v=64, c_r=256, with DBM, LAN "
              "latency) are at or near the best; no-DBM is worst; latency "
              "only matters once it rivals a CLK call's duration.\n");
  return 0;
}
