// Table 2: comparison with related heuristics — an LKH-style solver
// (alpha-nearness LK), a Walshaw-style multilevel CLK, and Cook/Seymour-
// style tour merging — against DistCLK's first-iteration and final
// qualities. The paper normalizes times to a 500 MHz Alpha and multiplies
// DistCLK's per-node time by 8; here every algorithm runs on the same host,
// so raw seconds are directly comparable and DistCLK total CPU = 8x its
// per-node time.
//
//   table2_related [--runs R] [--dist-budget S] [--nodes K] [--full]
//                  [--max-n N] [--csv-dir DIR]
#include <cstdio>
#include <iostream>
#include <string>

#include "baselines/lkh_style.h"
#include "baselines/multilevel.h"
#include "baselines/tour_merge.h"
#include "experiments/harness.h"
#include "util/table.h"

using namespace distclk;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args);

  const char* names[] = {"pr2392", "fl3795", "fnl4461"};
  Table table({"Instance", "Algorithm", "Excess", "CPU[s] (total)"});

  std::printf("Table 2 reproduction: related heuristics vs DistCLK "
              "(excess over reference, total CPU seconds)\n\n");

  for (const char* name : names) {
    const auto* spec = findPaperInstance(name);
    const int n = cfg.sizeFor(*spec);
    const Instance inst = makeScaledInstance(*spec, n);
    const CandidateLists cand(inst, 10);
    // Gather every algorithm's (length, seconds) first; the reference is
    // the best length observed (the paper's "distance to optimum").
    struct Entry { std::string algo; std::int64_t length; double seconds; };
    std::vector<Entry> entries;

    {  // LKH-style: alpha-nearness LK, a few trials.
      Rng rng(cfg.seed + 1);
      LkhStyleOptions opt;
      opt.trials = 4;
      opt.hkIterations = 60;
      const LkhStyleResult res = lkhStyleSolve(inst, rng, opt);
      entries.push_back({"LKH-style", res.length, res.seconds});
    }
    {  // Walshaw multilevel CLK (MLC_{N/10}LK setup).
      Rng rng(cfg.seed + 2);
      const MultilevelResult res = multilevelSolve(inst, rng);
      entries.push_back({"Multilevel-CLK", res.length, res.seconds});
    }
    {  // Cook&Seymour-style tour merging over 10 CLK runs.
      Rng rng(cfg.seed + 3);
      TourMergeOptions opt;
      opt.runs = 10;
      opt.kicksPerRun = std::max(20, n / 10);
      const TourMergeResult res = tourMergeSolve(inst, rng, opt);
      entries.push_back({"TourMerge-CLK", res.length, res.seconds});
    }
    {  // DistCLK: first-iteration quality and final quality.
      const double budget = cfg.distBudgetFor(*spec) * 4.0;
      const SimResult res =
          runDistExperiment(inst, cand, KickStrategy::kRandomWalk, cfg.nodes,
                            budget, -1, cfg.seed + 4);
      // First iteration = the best initial CLK result across nodes; that is
      // the first point of the global anytime curve. Total CPU for it is
      // roughly nodes x its per-node time.
      if (!res.curve.empty())
        entries.push_back({"DistCLK (1st iter)", res.curve.front().length,
                           res.curve.front().time * cfg.nodes});
      entries.push_back({"DistCLK (final)", res.bestLength,
                         budget * cfg.nodes});
    }

    std::int64_t best = entries.front().length;
    for (const auto& e : entries) best = std::min(best, e.length);
    for (const auto& e : entries)
      table.addRow({spec->standinName, e.algo,
                    fmtPctOrOpt(excess(e.length, static_cast<double>(best)),
                                1e-6),
                    fmt(e.seconds, 2)});
  }

  table.print(std::cout);
  if (!cfg.csvDir.empty())
    table.writeCsvFile(cfg.csvDir + "/table2_related.csv");
  std::printf("\npaper reference (Table 2): LKH reaches e.g. 0.24%% on "
              "fl3795 faster than DistCLK's first iteration; multilevel is "
              "far faster but worse (1.54%% on fl3795); tour merging is "
              "strong on small instances (OPT on pr2392 in 93s); DistCLK "
              "wins on quality for the largest instances.\n");
  return 0;
}
