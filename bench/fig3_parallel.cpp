// Figure 3: effect of parallelization — DistCLK with 8 nodes vs 1 node vs
// plain ABCC-CLK on fl3795 and fi10639 (stand-ins), Random-walk kick,
// everything else constant. Time axis is CPU seconds per node.
//
//   fig3_parallel [--runs R] [--clk-budget S] [--nodes K] [--full]
//                 [--max-n N] [--csv-dir DIR]
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "experiments/harness.h"
#include "util/table.h"

using namespace distclk;

namespace {

std::string cell(std::int64_t v) {
  return v == std::numeric_limits<std::int64_t>::max() ? "-"
                                                       : std::to_string(v);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args);

  for (const char* name : {"fl3795", "fi10639"}) {
    const auto* spec = findPaperInstance(name);
    const int n = cfg.sizeFor(*spec);
    const Instance inst = makeScaledInstance(*spec, n);
    const CandidateLists cand(inst, 10);
    const double budget = cfg.clkBudgetFor(*spec);

    std::vector<AnytimeCurve> clkRuns, oneRuns, eightRuns;
    for (int run = 0; run < cfg.runs; ++run) {
      const std::uint64_t seed = cfg.seed + std::uint64_t(run) * 17;
      clkRuns.push_back(runClkExperiment(inst, cand,
                                         KickStrategy::kRandomWalk, budget,
                                         -1, seed)
                            .curve);
      oneRuns.push_back(runDistExperiment(inst, cand,
                                          KickStrategy::kRandomWalk, 1,
                                          budget, -1, seed + 3)
                            .curve);
      eightRuns.push_back(runDistExperiment(inst, cand,
                                            KickStrategy::kRandomWalk,
                                            cfg.nodes, budget, -1, seed + 5)
                              .curve);
    }

    std::vector<double> grid;
    for (double t = budget / 100.0; t < budget * 0.999; t *= 1.5)
      grid.push_back(t);
    grid.push_back(budget);

    const AnytimeCurve clk = meanCurve(clkRuns, grid);
    const AnytimeCurve one = meanCurve(oneRuns, grid);
    const AnytimeCurve eight = meanCurve(eightRuns, grid);

    std::printf("Fig 3 (%s, n=%d): tour length vs CPU time per node\n",
                spec->standinName.c_str(), n);
    Table table({"t[s] per node", "ABCC-CLK", "DistCLK 1 node",
                 "DistCLK 8 nodes"});
    for (double t : grid)
      table.addRow({fmt(t, 2), cell(valueAtOrFirst(clk, t)),
                    cell(valueAtOrFirst(one, t)),
                    cell(valueAtOrFirst(eight, t))});
    table.print(std::cout);
    if (!cfg.csvDir.empty())
      table.writeCsvFile(cfg.csvDir + "/fig3_" + spec->standinName + ".csv");
    std::printf("\n");
  }

  std::printf("paper reference (Fig 3): at equal per-node time the 8-node "
              "curve lies below the 1-node curve, which lies below (or on) "
              "plain CLK; on fl3795 only the 8-node variant escapes the "
              "local optimum plateau.\n");
  return 0;
}
