// Large-instance engine comparison (the pla33810/pla85900 rows the scaled
// tables skip): the same Chained LK with the same budget on the array tour
// (O(n) flips) vs the two-level segment list (O(sqrt n) flips). On
// six-digit instances the array representation is the bottleneck; this
// bench shows the crossover on a drill-plate stand-in.
//
//   large_instances [--n N] [--seconds S] [--seed S]
#include <cstdio>
#include <iostream>

#include "construct/construct.h"
#include "experiments/harness.h"
#include "tsp/big_tour.h"
#include "util/table.h"
#include "util/timer.h"

using namespace distclk;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const int n = args.getInt("n", 20000);
  const double seconds = args.getDouble("seconds", 8.0);
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 12345));

  const auto* spec = findPaperInstance("pla33810");
  const Instance inst = makeScaledInstance(*spec, n);
  std::printf("Large-instance engine comparison on %s (n=%d), %.1fs per "
              "variant\n\n",
              spec->standinName.c_str(), n, seconds);
  Timer setup;
  const CandidateLists cand(inst, 8);
  const auto start = spaceFillingTour(inst);
  std::printf("setup: candidates + construction in %.2fs\n", setup.seconds());

  ClkOptions opt;
  opt.timeLimitSeconds = seconds;
  LkOptions lk;
  lk.maxDepth = 10;
  opt.lk = lk;

  Table table({"Engine", "Start", "Final", "Improvement", "Kicks"});
  std::int64_t arrayFinal = 0, bigFinal = 0;
  {
    Rng rng(seed);
    Tour t(inst, start);
    const auto startLen = t.length();
    const ClkResult res = chainedLinKernighan(t, cand, rng, opt);
    arrayFinal = res.length;
    table.addRow({"array Tour", std::to_string(startLen),
                  std::to_string(res.length),
                  fmtPct(1.0 - double(res.length) / double(startLen), 2),
                  std::to_string(res.kicks)});
  }
  {
    Rng rng(seed);
    BigTour t(inst, start);
    const auto startLen = t.length();
    const ClkResult res = chainedLinKernighan(t, cand, rng, opt);
    bigFinal = res.length;
    table.addRow({"segment list", std::to_string(startLen),
                  std::to_string(res.length),
                  fmtPct(1.0 - double(res.length) / double(startLen), 2),
                  std::to_string(res.kicks)});
  }
  table.print(std::cout);

  std::printf("\nsegment list vs array at equal budget: %.2f%% %s\n",
              100.0 * (double(arrayFinal) / double(bigFinal) - 1.0),
              bigFinal <= arrayFinal ? "better (as expected at this n)"
                                     : "worse (array still fine at this n)");
  std::printf("expected shape: the segment list completes far more kicks "
              "per second and finishes with the shorter tour; the gap "
              "widens with n (paper-scale pla85900 is array-hostile).\n");
  return 0;
}
