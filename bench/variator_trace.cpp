// §4.2.1 variator-strength traces: reproduces the "run A / run B"
// narrative — how NumPerturbations climbs during stagnation, resets on
// improvements (local or received), and how restarts fire after c_r
// stagnant iterations. Prints the perturbation-level / restart / improve
// event ladder for two seeds on the fi10639 stand-in.
//
//   variator_trace [--dist-budget S] [--nodes K] [--max-n N]
#include <cstdio>
#include <iostream>

#include "experiments/harness.h"
#include "util/table.h"

using namespace distclk;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args);

  const auto* spec = findPaperInstance("fi10639");
  const int n = cfg.sizeFor(*spec);
  const Instance inst = makeScaledInstance(*spec, n);
  const CandidateLists cand(inst, 10);
  const double budget = cfg.distBudgetFor(*spec) * 4.0;

  for (int runIdx = 0; runIdx < 2; ++runIdx) {
    SimOptions opt;
    opt.nodes = cfg.nodes;
    opt.node = scaledNodeParams(inst);
    opt.node.clkKick = KickStrategy::kRandomWalk;
    // Lowered c_v so the ladder shows within the scaled budget (the paper
    // uses c_v=64 over thousands of EA iterations; scaled runs make far
    // fewer).
    opt.node.cv = 4;
    opt.node.cr = 24;
    opt.timeLimitPerNode = budget;
    opt.seed = cfg.seed + std::uint64_t(runIdx) * 7919;
    const SimResult res = runSimulatedDistClk(inst, cand, opt);

    std::printf("Run %c on %s (n=%d, %d nodes, c_v=%d c_r=%d):\n",
                'A' + runIdx, spec->standinName.c_str(), n, cfg.nodes,
                opt.node.cv, opt.node.cr);
    Table table({"t[s]", "node", "event", "value"});
    int improvements = 0;
    for (const auto& e : res.events) {
      switch (e.type) {
        case NodeEventType::kImprovement:
          ++improvements;
          break;
        case NodeEventType::kPerturbationLevel:
        case NodeEventType::kRestart:
        case NodeEventType::kTourReceived:
          table.addRow({fmt(e.time, 3), std::to_string(e.node),
                        toString(e.type), std::to_string(e.value)});
          break;
        default:
          break;
      }
    }
    table.print(std::cout);
    std::printf("improving tours found: %d; final best %lld; restarts "
                "%lld\n\n",
                improvements, static_cast<long long>(res.bestLength),
                static_cast<long long>(res.totalRestarts));
  }

  std::printf("paper reference (§4.2.1): run A needed only level-2 "
              "perturbations (51 improvements in the first half, final "
              "0.047%% above HK); run B climbed to level 4 before a node "
              "broke the stagnation (final 0.039%%). The ladder climbs "
              "during quiet phases and resets on every improvement, exactly "
              "as above.\n");
  return 0;
}
