// Micro-benchmark: array Tour vs TwoLevelList as a reversal substrate.
// The array flips the shorter arc (O(n) worst case); the two-level list
// flips whole segments (O(sqrt(n)) amortized). The crossover as n grows is
// why Concorde-class codes use segment lists for six-digit instances.
#include <benchmark/benchmark.h>

#include <numeric>

#include "construct/construct.h"
#include "lk/lin_kernighan.h"
#include "tsp/big_tour.h"
#include "tsp/gen.h"
#include "tsp/tour.h"
#include "tsp/twolevel.h"
#include "util/rng.h"

namespace {

using namespace distclk;

void BM_ArrayTourReverse(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Instance inst = uniformSquare("bm", n, 1);
  Tour t(inst);
  Rng rng(2);
  for (auto _ : state) {
    const int i = static_cast<int>(rng.below(std::uint64_t(n)));
    const int j = static_cast<int>(rng.below(std::uint64_t(n)));
    t.reverseSegment(i, j);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArrayTourReverse)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TwoLevelReverse(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  TwoLevelList t(order);
  Rng rng(2);
  for (auto _ : state) {
    const int a = static_cast<int>(rng.below(std::uint64_t(n)));
    const int b = static_cast<int>(rng.below(std::uint64_t(n)));
    if (a != b) t.reverse(a, b);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoLevelReverse)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ArrayTourNext(benchmark::State& state) {
  const Instance inst = uniformSquare("bm", 10000, 3);
  Tour t(inst);
  int c = 0;
  for (auto _ : state) {
    c = t.next(c);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ArrayTourNext);

void BM_TwoLevelNext(benchmark::State& state) {
  std::vector<int> order(10000);
  std::iota(order.begin(), order.end(), 0);
  TwoLevelList t(order);
  int c = 0;
  for (auto _ : state) {
    c = t.next(c);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_TwoLevelNext);

// Full LK passes on the two representations at sizes where the array's
// O(n) flips start to hurt.
void BM_LkPassArrayTour(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Instance inst = uniformSquare("bm", n, 6);
  const CandidateLists cand(inst, 6);
  const auto start = spaceFillingTour(inst);
  LkOptions opt;
  opt.maxDepth = 6;
  for (auto _ : state) {
    Tour t(inst, start);
    benchmark::DoNotOptimize(linKernighanOptimize(t, cand, opt));
  }
}
BENCHMARK(BM_LkPassArrayTour)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_LkPassBigTour(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Instance inst = uniformSquare("bm", n, 6);
  const CandidateLists cand(inst, 6);
  const auto start = spaceFillingTour(inst);
  LkOptions opt;
  opt.maxDepth = 6;
  for (auto _ : state) {
    BigTour t(inst, start);
    benchmark::DoNotOptimize(linKernighanOptimize(t, cand, opt));
  }
}
BENCHMARK(BM_LkPassBigTour)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_ArrayTourBetween(benchmark::State& state) {
  const Instance inst = uniformSquare("bm", 10000, 4);
  Tour t(inst);
  Rng rng(5);
  for (auto _ : state) {
    const int a = static_cast<int>(rng.below(10000));
    const int b = static_cast<int>(rng.below(10000));
    const int c = static_cast<int>(rng.below(10000));
    benchmark::DoNotOptimize(t.between(a, b, c));
  }
}
BENCHMARK(BM_ArrayTourBetween);

void BM_TwoLevelBetween(benchmark::State& state) {
  std::vector<int> order(10000);
  std::iota(order.begin(), order.end(), 0);
  TwoLevelList t(order);
  Rng rng(5);
  for (auto _ : state) {
    const int a = static_cast<int>(rng.below(10000));
    const int b = static_cast<int>(rng.below(10000));
    const int c = static_cast<int>(rng.below(10000));
    benchmark::DoNotOptimize(t.between(a, b, c));
  }
}
BENCHMARK(BM_TwoLevelBetween);

}  // namespace
