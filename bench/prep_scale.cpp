// Preprocessing-pipeline scaling harness: times every phase of
// InstanceContext::build (kd-tree, candidate CSR, construction) at large n
// across prep-thread counts, plus the Hilbert-partitioned construction arm
// and the warm ContextCache hit path. Emits one JSON object per line;
// scripts/bench.sh merges them into BENCH_lk.json under "prep_scale".
//
//   prep_scale [--max-n N] [--candidates K] [--reps R]
//
// The million-city arm is gated on /proc/meminfo MemAvailable: hosts
// without the headroom emit an explicit {"skipped":...} record instead of
// silently thrashing (visible skip, DESIGN.md "no silent caps").
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "experiments/harness.h"
#include "obs/json.h"
#include "tsp/gen.h"
#include "tsp/instance_context.h"
#include "util/timer.h"

using namespace distclk;

namespace {

/// MemAvailable in MiB, or -1 when /proc/meminfo is unreadable.
long memAvailableMiB() {
  std::ifstream in("/proc/meminfo");
  std::string key;
  long valueKb = 0;
  std::string unit;
  while (in >> key >> valueKb >> unit)
    if (key == "MemAvailable:") return valueKb / 1024;
  return -1;
}

void emit(const obs::JsonObject& o) { std::printf("%s\n", o.str().c_str()); }

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const int maxN = args.getInt("max-n", 1000000);
  const int k = args.getInt("candidates", 10);
  const int reps = std::max(1, args.getInt("reps", 1));

  for (const int n : {100000, 1000000}) {
    if (n > maxN) continue;
    // Rough working set: points + CSR(int32+int64 per slot) + kd-tree
    // nodes + construction scratch; 3x slack for the transient peaks.
    const long needMiB = long(double(n) * (16.0 + k * 12.0 + 64.0) * 3.0 /
                              (1024.0 * 1024.0));
    const long haveMiB = memAvailableMiB();
    if (haveMiB >= 0 && haveMiB < needMiB) {
      obs::JsonObject skip;
      skip.field("bench", "prep_scale");
      skip.field("n", n);
      skip.field("skipped", "insufficient memory");
      skip.field("mem_available_mib", std::int64_t(haveMiB));
      skip.field("mem_needed_mib", std::int64_t(needMiB));
      emit(skip);
      continue;
    }
    auto inst = std::make_shared<const Instance>(
        uniformSquare("prep-scale", n, 1));

    for (const int threads : {1, 4, 8}) {
      PreprocessParams params;
      params.candidateK = k;
      params.prepThreads = threads;
      // min over reps: the standard noisy-host estimator.
      PreprocessBuildStats best;
      best.totalMs = 0.0;
      for (int r = 0; r < reps; ++r) {
        const auto ctx = InstanceContext::build(inst, params);
        const PreprocessBuildStats& s = ctx->buildStats();
        if (r == 0 || s.totalMs < best.totalMs) best = s;
      }
      obs::JsonObject o;
      o.field("bench", "prep_scale");
      o.field("n", n);
      o.field("threads", threads);
      o.field("kdtree_ms", best.kdtreeMs);
      o.field("cand_ms", best.candMs);
      o.field("construct_ms", best.constructMs);
      o.field("total_ms", best.totalMs);
      emit(o);
    }

    // Partitioned-construction arm: the only phase the serial QB keeps
    // sequential. Changes the tour (recorded so quality loss is visible).
    {
      PreprocessParams serial;
      serial.candidateK = k;
      const auto base = InstanceContext::build(inst, serial);
      PreprocessParams part = serial;
      part.partitionShards = 8;
      part.prepThreads = 8;
      const auto ctx = InstanceContext::build(inst, part);
      obs::JsonObject o;
      o.field("bench", "prep_scale_partitioned");
      o.field("n", n);
      o.field("threads", 8);
      o.field("shards", 8);
      o.field("construct_ms", ctx->buildStats().constructMs);
      o.field("serial_construct_ms", base->buildStats().constructMs);
      o.field("tour_length", ctx->constructionLength());
      o.field("serial_tour_length", base->constructionLength());
      o.field("tour_excess_pct",
              (double(ctx->constructionLength()) /
                   double(base->constructionLength()) -
               1.0) *
                  100.0);
      emit(o);
    }

    // Warm-cache arm: a second same-key request must skip the build.
    {
      ContextCache cache(2);
      PreprocessParams params;
      params.candidateK = k;
      bool hit = false;
      cache.get(inst, params, &hit);
      const Timer t;
      cache.get(inst, params, &hit);
      obs::JsonObject o;
      o.field("bench", "prep_scale_warm");
      o.field("n", n);
      o.field("cache_hit", hit);
      o.field("hit_ms", t.millis());
      emit(o);
    }
  }
  return 0;
}
