// Table 3: number of runs (out of R) that find the optimum within the time
// bound, per kick strategy, for plain CLK vs DistCLK with 8 nodes. The
// paper gives CLK 10x the per-node DistCLK budget. Since the synthetic
// stand-ins have no certified optima, a calibration pass (longer DistCLK
// run on a complete topology) establishes the presumed optimum first —
// mirroring how the paper treats instances without known optima.
//
//   table3_success [--runs R] [--clk-budget S] [--dist-budget S]
//                  [--nodes K] [--full] [--max-n N] [--csv-dir DIR]
#include <cstdio>
#include <iostream>
#include <string>

#include "experiments/harness.h"
#include "util/table.h"

using namespace distclk;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args);

  const KickStrategy kicks[] = {KickStrategy::kRandom, KickStrategy::kGeometric,
                                KickStrategy::kClose,
                                KickStrategy::kRandomWalk};

  Table table({"Instance", "n", "target", "Random CLK", "Random Dist",
               "Geometric CLK", "Geometric Dist", "Close CLK", "Close Dist",
               "Random-walk CLK", "Random-walk Dist"});

  std::printf("Table 3 reproduction: runs (out of %d) reaching the presumed "
              "optimum; CLK budget %.2fs, DistCLK %.2fs/node x %d nodes\n\n",
              cfg.runs, cfg.clkBudget, cfg.distBudget, cfg.nodes);

  for (const auto& spec : paperTestbed()) {
    if (!spec.smallSet) continue;  // the paper's Table 3 covers these only
    const int n = cfg.sizeFor(spec);
    const Instance inst = makeScaledInstance(spec, n);
    const CandidateLists cand(inst, 10);

    // Calibration: a longer cooperative run fixes the presumed optimum.
    const SimResult calib = runDistExperiment(
        inst, cand, KickStrategy::kRandomWalk, cfg.nodes,
        cfg.distBudgetFor(spec) * 4.0, /*target=*/-1, cfg.seed + 999983);
    const std::int64_t target = calib.bestLength;

    std::vector<std::string> row{spec.standinName, std::to_string(n),
                                 std::to_string(target)};
    for (KickStrategy kick : kicks) {
      int clkHits = 0, distHits = 0;
      for (int run = 0; run < cfg.runs; ++run) {
        const std::uint64_t seed =
            cfg.seed + std::uint64_t(run) * 677 + std::uint64_t(kick) * 59;
        const ClkRunSummary c = runClkExperiment(
            inst, cand, kick, cfg.clkBudgetFor(spec), target, seed);
        clkHits += c.hitTarget;
        const SimResult d =
            runDistExperiment(inst, cand, kick, cfg.nodes,
                              cfg.distBudgetFor(spec), target, seed + 1);
        distHits += d.hitTarget;
      }
      row.push_back(std::to_string(clkHits) + "/" + std::to_string(cfg.runs));
      row.push_back(std::to_string(distHits) + "/" + std::to_string(cfg.runs));
    }
    table.addRow(row);
  }

  table.print(std::cout);
  if (!cfg.csvDir.empty())
    table.writeCsvFile(cfg.csvDir + "/table3_success.csv");
  std::printf("\npaper reference (Table 3, Random-walk): C1k.1 9/10 vs "
              "10/10, E1k.1 3/10 vs 10/10, fl1577 0/10 vs 8/10, pr2392 4/10 "
              "vs 10/10, pcb3038 0/10 vs 7/10, fl3795 0/10 vs 10/10, "
              "fnl4461 0/10 vs 1/10 — DistCLK succeeds where CLK cannot.\n");
  return 0;
}
