// Table 4: mean excess of ABCC-CLK over the optimum / Held-Karp bound
// after a short and a long budget, per kicking strategy. The paper's
// checkpoints are 100 s and 1e4 s; scaled mode keeps their 1:100 spirit as
// 10% and 100% of --clk-budget (see EXPERIMENTS.md).
//
//   table4_clk_quality [--runs R] [--clk-budget S] [--max-n N] [--full]
//                      [--csv-dir DIR]
#include <cstdio>
#include <iostream>
#include <string>

#include "experiments/harness.h"
#include "util/stats.h"
#include "util/table.h"

using namespace distclk;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args);

  const KickStrategy kicks[] = {KickStrategy::kRandom, KickStrategy::kGeometric,
                                KickStrategy::kClose,
                                KickStrategy::kRandomWalk};

  Table table({"Instance", "n", "Random short", "Random long",
               "Geometric short", "Geometric long", "Close short",
               "Close long", "Random-walk short", "Random-walk long"});

  std::printf("Table 4 reproduction: ABCC-CLK mean excess after "
              "short (10%%) and long (100%%) budget\n");
  std::printf("runs=%d budget=%.2fs (x10 for instances >= 10^4 cities)\n\n",
              cfg.runs, cfg.clkBudget);

  for (const auto& spec : paperTestbed()) {
    if (!cfg.full && !spec.smallSet) continue;
    const int n = cfg.sizeFor(spec);
    const Instance inst = makeScaledInstance(spec, n);
    const CandidateLists cand(inst, 10);
    const double budget = cfg.clkBudgetFor(spec);

    // Gather all runs first; the reference ("optimum") is the calibrated
    // presumed optimum merged with the best final any run achieved.
    std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> cells(4);
    std::int64_t ref = calibrateReference(inst, cand,
                                          cfg.distBudgetFor(spec) * 4.0,
                                          cfg.seed + 31337);
    for (std::size_t k = 0; k < 4; ++k) {
      for (int run = 0; run < cfg.runs; ++run) {
        const ClkRunSummary s = runClkExperiment(
            inst, cand, kicks[k], budget, /*target=*/-1,
            cfg.seed + std::uint64_t(run) * 977 + std::uint64_t(k) * 13);
        cells[k].emplace_back(valueAtOrFirst(s.curve, budget * 0.1),
                              s.finalLength);
        ref = std::min(ref, s.finalLength);
      }
    }

    std::vector<std::string> row{spec.standinName, std::to_string(n)};
    for (std::size_t k = 0; k < 4; ++k) {
      RunningStats shortExcess, longExcess;
      for (const auto& [shortVal, finalVal] : cells[k]) {
        shortExcess.add(excess(shortVal, static_cast<double>(ref)));
        longExcess.add(excess(finalVal, static_cast<double>(ref)));
      }
      row.push_back(fmtPctOrOpt(shortExcess.mean(), 1e-6));
      row.push_back(fmtPctOrOpt(longExcess.mean(), 1e-6));
    }
    table.addRow(row);
  }

  table.print(std::cout);
  if (!cfg.csvDir.empty())
    table.writeCsvFile(cfg.csvDir + "/table4_clk_quality.csv");
  std::printf("\npaper reference (Table 4, Random-walk column, long budget): "
              "C1k.1 0.002%%, E1k.1 0.016%%, fl1577 0.594%%, pr2392 0.093%%, "
              "pcb3038 0.060%%, fl3795 0.524%%, fnl4461 0.041%%\n");
  return 0;
}
