// Ablation: network topology and node count. The paper fixes an 8-node
// hypercube; this bench sweeps topologies at 8 nodes (hypercube, ring,
// grid, complete, star) and node counts 1..16 on the hypercube, holding the
// per-node budget constant, to show (a) topology matters little at this
// scale (diameter 1-4) and (b) quality improves with node count.
//
//   ablation_topology [--runs R] [--dist-budget S] [--max-n N]
#include <cstdio>
#include <iostream>

#include "experiments/harness.h"
#include "util/stats.h"
#include "util/table.h"

using namespace distclk;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args);

  const auto* spec = findPaperInstance("fl3795");
  const int n = cfg.sizeFor(*spec);
  const Instance inst = makeScaledInstance(*spec, n);
  const CandidateLists cand(inst, 10);
  const double budget = cfg.distBudgetFor(*spec) * 2.0;

  std::printf("Topology ablation on %s (n=%d), %.2fs/node, %d runs\n\n",
              spec->standinName.c_str(), n, budget, cfg.runs);

  // Gather all variants, then measure excess against the best length seen
  // anywhere (plus a calibration run), as in the quality tables.
  struct TopoResult {
    TopologyKind kind;
    std::vector<std::int64_t> lengths;
    RunningStats broadcasts;
  };
  std::vector<TopoResult> topoResults;
  for (TopologyKind kind :
       {TopologyKind::kHypercube, TopologyKind::kRing, TopologyKind::kGrid,
        TopologyKind::kComplete, TopologyKind::kStar}) {
    TopoResult r{kind, {}, {}};
    for (int run = 0; run < cfg.runs; ++run) {
      SimOptions opt;
      opt.node = scaledNodeParams(inst);
      opt.nodes = 8;
      opt.topology = kind;
      opt.timeLimitPerNode = budget;
      opt.seed = cfg.seed + std::uint64_t(run) * 43;
      const SimResult res = runSimulatedDistClk(inst, cand, opt);
      r.lengths.push_back(res.bestLength);
      r.broadcasts.add(static_cast<double>(res.net.broadcasts));
    }
    topoResults.push_back(std::move(r));
  }

  struct NodeResult {
    int nodes;
    std::vector<std::int64_t> lengths;
  };
  std::vector<NodeResult> nodeResults;
  for (int nodes : {1, 2, 4, 8, 16}) {
    NodeResult r{nodes, {}};
    for (int run = 0; run < cfg.runs; ++run) {
      SimOptions opt;
      opt.node = scaledNodeParams(inst);
      opt.nodes = nodes;
      opt.timeLimitPerNode = budget;
      opt.seed = cfg.seed + std::uint64_t(run) * 47 + std::uint64_t(nodes);
      r.lengths.push_back(runSimulatedDistClk(inst, cand, opt).bestLength);
    }
    nodeResults.push_back(std::move(r));
  }

  std::int64_t best =
      calibrateReference(inst, cand, budget * 2.0, cfg.seed + 31337);
  for (const auto& r : topoResults)
    for (std::int64_t len : r.lengths) best = std::min(best, len);
  for (const auto& r : nodeResults)
    for (std::int64_t len : r.lengths) best = std::min(best, len);
  const double ref = static_cast<double>(best);
  auto meanExcess = [&](const std::vector<std::int64_t>& lengths) {
    RunningStats ex;
    for (std::int64_t len : lengths) ex.add(excess(len, ref));
    return ex.mean();
  };

  Table topoTable({"Topology", "Diameter", "Mean excess", "Broadcasts"});
  for (const auto& r : topoResults)
    topoTable.addRow({toString(r.kind),
                      std::to_string(diameter(buildTopology(r.kind, 8))),
                      fmtPct(meanExcess(r.lengths)),
                      fmt(r.broadcasts.mean(), 1)});
  topoTable.print(std::cout);

  std::printf("\nNode-count sweep (hypercube, same per-node budget => total "
              "CPU grows with nodes):\n");
  Table nodeTable({"Nodes", "Mean excess", "Total CPU [s]"});
  for (const auto& r : nodeResults)
    nodeTable.addRow({std::to_string(r.nodes), fmtPct(meanExcess(r.lengths)),
                      fmt(budget * r.nodes, 2)});
  nodeTable.print(std::cout);

  std::printf("\nexpected shape: denser topologies (complete) spread tours "
              "fastest but all five behave similarly at 8 nodes; excess "
              "shrinks monotonically-ish with node count (the paper's "
              "Table 1 / Fig 3 claim).\n");
  return 0;
}
