// Ablation/extension: online kick-strategy selection. §4.1 shows no fixed
// kick wins everywhere (Random on small instances, Random-walk on large,
// Random again on pla33810); the bandit variant learns per instance. This
// bench pits each fixed strategy against the adaptive CLK across three
// structural families with the same kick budget.
//
//   ablation_adaptive [--runs R] [--max-n N]
#include <cstdio>
#include <iostream>

#include "construct/construct.h"
#include "experiments/harness.h"
#include "lk/adaptive_kick.h"
#include "util/stats.h"
#include "util/table.h"

using namespace distclk;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args);

  Table table({"Instance", "Random", "Geometric", "Close", "Random-walk",
               "Adaptive", "Adaptive's favorite"});
  const KickStrategy kicks[] = {KickStrategy::kRandom, KickStrategy::kGeometric,
                                KickStrategy::kClose,
                                KickStrategy::kRandomWalk};

  for (const char* name : {"E1k.1", "C1k.1", "fl3795"}) {
    const auto* spec = findPaperInstance(name);
    const int n = cfg.sizeFor(*spec);
    const Instance inst = makeScaledInstance(*spec, n);
    const CandidateLists cand(inst, 10);
    const std::int64_t kickBudget = 2 * n;

    // Collect final lengths for every variant, then score against the best.
    std::vector<std::vector<std::int64_t>> finals(6);
    std::array<std::int64_t, 4> adaptiveUses{};
    for (int run = 0; run < cfg.runs; ++run) {
      const std::uint64_t seed = cfg.seed + std::uint64_t(run) * 7717;
      for (std::size_t k = 0; k < 4; ++k) {
        Rng rng(seed + k);
        Tour t(inst, quickBoruvkaTour(inst, cand));
        ClkOptions co;
        co.kick = kicks[k];
        co.maxKicks = kickBudget;
        chainedLinKernighan(t, cand, rng, co);
        finals[k].push_back(t.length());
      }
      Rng rng(seed + 11);
      Tour t(inst, quickBoruvkaTour(inst, cand));
      AdaptiveClkOptions ao;
      ao.maxKicks = kickBudget;
      const AdaptiveClkResult res = adaptiveChainedLk(t, cand, rng, ao);
      finals[4].push_back(res.length);
      for (std::size_t k = 0; k < 4; ++k) adaptiveUses[k] += res.uses[k];
    }

    std::int64_t best = finals[0][0];
    for (std::size_t v = 0; v < 5; ++v)
      for (std::int64_t len : finals[v]) best = std::min(best, len);

    auto meanExcess = [&](const std::vector<std::int64_t>& lens) {
      RunningStats ex;
      for (std::int64_t len : lens)
        ex.add(excess(len, static_cast<double>(best)));
      return fmtPctOrOpt(ex.mean(), 1e-6);
    };
    const std::size_t fav = std::size_t(
        std::max_element(adaptiveUses.begin(), adaptiveUses.end()) -
        adaptiveUses.begin());
    table.addRow({spec->standinName, meanExcess(finals[0]),
                  meanExcess(finals[1]), meanExcess(finals[2]),
                  meanExcess(finals[3]), meanExcess(finals[4]),
                  toString(kicks[fav])});
  }

  table.print(std::cout);
  if (!cfg.csvDir.empty())
    table.writeCsvFile(cfg.csvDir + "/ablation_adaptive.csv");
  std::printf("\nexpected shape: the adaptive column tracks the best fixed "
              "column per row (never the worst), and its favorite arm "
              "shifts with the instance family — automating the per-"
              "instance strategy choice Table 4 shows matters.\n");
  return 0;
}
