// Micro-benchmarks of the local-search engine: full 2-opt / Or-opt / LK
// passes from a construction, the kick-and-repair cycle that dominates CLK
// runtime, and the four kick strategies.
#include <benchmark/benchmark.h>

#include "construct/construct.h"
#include "lk/chained_lk.h"
#include "lk/kicks.h"
#include "lk/lin_kernighan.h"
#include "lk/or_opt.h"
#include "lk/two_opt.h"
#include "tsp/big_tour.h"
#include "tsp/gen.h"
#include "util/rng.h"

namespace {

using namespace distclk;

struct Fixture {
  explicit Fixture(int n)
      : inst(uniformSquare("bm", n, std::uint64_t(n) + 1)),
        cand(inst, 10),
        start(inst, quickBoruvkaTour(inst, cand)),
        opt(start) {
    linKernighanOptimize(opt, cand);
  }
  Instance inst;
  CandidateLists cand;
  Tour start;
  Tour opt;  // LK-optimized start: the CLK steady-state launch point
};

Fixture& fixtureOf(int n) {
  static std::map<int, Fixture> cache;
  auto it = cache.find(n);
  // try_emplace constructs in place: the Tour member points at the Instance
  // member, so the fixture must never be moved after construction.
  if (it == cache.end()) it = cache.try_emplace(n, n).first;
  return it->second;
}

void BM_TwoOptPass(benchmark::State& state) {
  Fixture& f = fixtureOf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Tour t = f.start;
    benchmark::DoNotOptimize(twoOptOptimize(t, f.cand));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TwoOptPass)->Arg(1000)->Arg(3000);

void BM_OrOptPass(benchmark::State& state) {
  Fixture& f = fixtureOf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Tour t = f.start;
    benchmark::DoNotOptimize(orOptOptimize(t, f.cand));
  }
}
BENCHMARK(BM_OrOptPass)->Arg(1000)->Arg(3000);

// The pre-workspace Or-opt loop (repeated full sweeps, O(len) inside-segment
// walk). Reaches the same sweep-local optimum as the don't-look pass above,
// so the time ratio is the pure queueing win.
void BM_OrOptPassSweep(benchmark::State& state) {
  Fixture& f = fixtureOf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Tour t = f.start;
    benchmark::DoNotOptimize(
        orOptOptimize(t, f.cand, 3, OrOptStyle::kFullSweep));
  }
}
BENCHMARK(BM_OrOptPassSweep)->Arg(1000)->Arg(3000);

void BM_LinKernighanPass(benchmark::State& state) {
  Fixture& f = fixtureOf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Tour t = f.start;
    benchmark::DoNotOptimize(linKernighanOptimize(t, f.cand));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LinKernighanPass)->Arg(1000)->Arg(3000);

// Head-to-head of the distance hot path. ref=0 is the default fast path
// (metric-specialized kernel + annotated candidate distances); ref=1 is the
// seed path re-routed through the Instance::dist() switch
// (LkOptions::referenceDistances). Both retrace the identical trajectory —
// same flips, same final tour — so the steps_per_sec ratio is the pure
// distance-path speedup. Steps count physical reversals (applied + rewound),
// the unit node telemetry reports as node.lk_flips/node.lk_undone_flips.
void BM_LkPassDistPath(benchmark::State& state) {
  Fixture& f = fixtureOf(static_cast<int>(state.range(0)));
  LkOptions opt;
  opt.referenceDistances = state.range(1) != 0;
  std::int64_t steps = 0;
  for (auto _ : state) {
    Tour t = f.start;
    const LkStats stats = linKernighanOptimize(t, f.cand, opt);
    steps += stats.flips + stats.undoneFlips;
  }
  state.counters["steps_per_sec"] =
      benchmark::Counter(double(steps), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LkPassDistPath)
    ->ArgsProduct({{1000, 10000}, {0, 1}})
    ->ArgNames({"n", "ref"});

// The same comparison on the CLK steady state: kick an optimized tour and
// repair the dirty cities, which is where DistCLK spends its runtime.
void BM_KickRepairDistPath(benchmark::State& state) {
  Fixture& f = fixtureOf(static_cast<int>(state.range(0)));
  LkOptions opt;
  opt.referenceDistances = state.range(1) != 0;
  Rng rng(5);
  Tour t = f.start;
  linKernighanOptimize(t, f.cand, opt);
  std::int64_t steps = 0;
  for (auto _ : state) {
    Tour work = t;
    const auto dirty = applyKick(work, KickStrategy::kRandomWalk, f.cand, rng);
    const LkStats stats = linKernighanOptimize(work, f.cand, dirty, opt);
    steps += stats.flips + stats.undoneFlips;
  }
  state.counters["steps_per_sec"] =
      benchmark::Counter(double(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KickRepairDistPath)
    ->ArgsProduct({{1000, 10000}, {0, 1}})
    ->ArgNames({"n", "ref"});

// Distance-path head-to-head on the segment-list BigTour, the configuration
// for six-digit city counts: flips cost O(sqrt n) instead of O(n), so the
// candidate-scan distance evaluations carry a larger share of the runtime
// and the kernel + annotation win shows up at pass level.
void BM_LkPassBigTourDistPath(benchmark::State& state) {
  Fixture& f = fixtureOf(static_cast<int>(state.range(0)));
  LkOptions opt;
  opt.referenceDistances = state.range(1) != 0;
  std::int64_t steps = 0;
  for (auto _ : state) {
    BigTour t(f.inst, f.start.orderVector());
    const LkStats stats = linKernighanOptimize(t, f.cand, opt);
    steps += stats.flips + stats.undoneFlips;
  }
  state.counters["steps_per_sec"] =
      benchmark::Counter(double(steps), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LkPassBigTourDistPath)
    ->ArgsProduct({{10000}, {0, 1}})
    ->ArgNames({"n", "ref"});

// The inner loop of Chained LK: kick the optimized tour, repair locally.
void BM_KickRepairCycle(benchmark::State& state) {
  Fixture& f = fixtureOf(1000);
  Rng rng(5);
  Tour t = f.start;
  linKernighanOptimize(t, f.cand);
  for (auto _ : state) {
    Tour work = t;
    const auto dirty = applyKick(work, KickStrategy::kRandomWalk, f.cand, rng);
    benchmark::DoNotOptimize(
        linKernighanOptimize(work, f.cand, dirty, LkOptions{}));
  }
}
BENCHMARK(BM_KickRepairCycle);

void BM_KickApply(benchmark::State& state) {
  Fixture& f = fixtureOf(1000);
  Rng rng(6);
  const auto strategy = static_cast<KickStrategy>(state.range(0));
  Tour t = f.start;
  for (auto _ : state) benchmark::DoNotOptimize(applyKick(t, strategy, f.cand, rng));
}
BENCHMARK(BM_KickApply)
    ->Arg(static_cast<int>(KickStrategy::kRandom))
    ->Arg(static_cast<int>(KickStrategy::kGeometric))
    ->Arg(static_cast<int>(KickStrategy::kClose))
    ->Arg(static_cast<int>(KickStrategy::kRandomWalk));

// 100 CLK kicks from the optimized tour — the steady state a DistNode lives
// in. ref=0 runs the workspace fast path (in-place kick, undo-log champion);
// ref=1 runs the pre-workspace reference loop (per-kick tour copy). Both
// trace the identical trajectory, so kicks_per_sec ratio is the pure
// kick-path overhead win. Starting from f.opt (not f.start) keeps the first
// full LK pass out of the measurement that used to dominate this benchmark.
void BM_Clk100Kicks(benchmark::State& state) {
  Fixture& f = fixtureOf(static_cast<int>(state.range(0)));
  ClkOptions opt;
  opt.maxKicks = 100;
  opt.referenceKickPath = state.range(1) != 0;
  Rng rng(7);
  std::int64_t kicks = 0;
  for (auto _ : state) {
    Tour t = f.opt;
    const ClkResult res = chainedLinKernighan(t, f.cand, rng, opt);
    kicks += res.kicks;
  }
  state.counters["kicks_per_sec"] =
      benchmark::Counter(double(kicks), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Clk100Kicks)
    ->ArgsProduct({{1000, 10000}, {0, 1}})
    ->ArgNames({"n", "ref"})
    ->Unit(benchmark::kMillisecond);

// Speculative kick engine scaling: 100 CLK kicks from the optimized tour
// with w worker threads (w=0 is the sequential fast path — the baseline of
// bench.sh's spec_kicks_vs_seq entry). kicks_per_sec counts resolved kicks
// (committed + rejected); spec_evals/spec_conflicts expose how much
// speculative work was performed and how much aborted on ledger overlap,
// which together with the host's CPU count explains the measured curve.
void BM_ClkSpecKicks(benchmark::State& state) {
  Fixture& f = fixtureOf(static_cast<int>(state.range(0)));
  ClkOptions opt;
  opt.maxKicks = 100;
  opt.speculativeWorkers = static_cast<int>(state.range(1));
  Rng rng(7);
  std::int64_t kicks = 0;
  std::int64_t evals = 0;
  std::int64_t conflicts = 0;
  for (auto _ : state) {
    Tour t = f.opt;
    LkWorkspace ws;
    const ClkResult res = chainedLinKernighan(t, f.cand, rng, ws, opt);
    kicks += res.kicks;
    evals += res.speculated;
    conflicts += res.specConflicts;
  }
  state.counters["kicks_per_sec"] =
      benchmark::Counter(double(kicks), benchmark::Counter::kIsRate);
  state.counters["spec_evals"] = benchmark::Counter(double(evals));
  state.counters["spec_conflicts"] = benchmark::Counter(double(conflicts));
}
// UseRealTime: with workers the coordinator sleeps on the round barrier,
// so main-thread CPU time would flatter the rate; wall time is the honest
// denominator for a throughput claim.
BENCHMARK(BM_ClkSpecKicks)
    ->ArgsProduct({{10000, 100000}, {0, 1, 2, 4, 8}})
    ->ArgNames({"n", "w"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
