// Micro-benchmarks of the local-search engine: full 2-opt / Or-opt / LK
// passes from a construction, the kick-and-repair cycle that dominates CLK
// runtime, and the four kick strategies.
#include <benchmark/benchmark.h>

#include "construct/construct.h"
#include "lk/chained_lk.h"
#include "lk/kicks.h"
#include "lk/lin_kernighan.h"
#include "lk/or_opt.h"
#include "lk/two_opt.h"
#include "tsp/gen.h"
#include "util/rng.h"

namespace {

using namespace distclk;

struct Fixture {
  explicit Fixture(int n)
      : inst(uniformSquare("bm", n, std::uint64_t(n) + 1)),
        cand(inst, 10),
        start(inst, quickBoruvkaTour(inst, cand)) {}
  Instance inst;
  CandidateLists cand;
  Tour start;
};

Fixture& fixtureOf(int n) {
  static std::map<int, Fixture> cache;
  auto it = cache.find(n);
  // try_emplace constructs in place: the Tour member points at the Instance
  // member, so the fixture must never be moved after construction.
  if (it == cache.end()) it = cache.try_emplace(n, n).first;
  return it->second;
}

void BM_TwoOptPass(benchmark::State& state) {
  Fixture& f = fixtureOf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Tour t = f.start;
    benchmark::DoNotOptimize(twoOptOptimize(t, f.cand));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TwoOptPass)->Arg(1000)->Arg(3000);

void BM_OrOptPass(benchmark::State& state) {
  Fixture& f = fixtureOf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Tour t = f.start;
    benchmark::DoNotOptimize(orOptOptimize(t, f.cand));
  }
}
BENCHMARK(BM_OrOptPass)->Arg(1000)->Arg(3000);

void BM_LinKernighanPass(benchmark::State& state) {
  Fixture& f = fixtureOf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Tour t = f.start;
    benchmark::DoNotOptimize(linKernighanOptimize(t, f.cand));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LinKernighanPass)->Arg(1000)->Arg(3000);

// The inner loop of Chained LK: kick the optimized tour, repair locally.
void BM_KickRepairCycle(benchmark::State& state) {
  Fixture& f = fixtureOf(1000);
  Rng rng(5);
  Tour t = f.start;
  linKernighanOptimize(t, f.cand);
  for (auto _ : state) {
    Tour work = t;
    const auto dirty = applyKick(work, KickStrategy::kRandomWalk, f.cand, rng);
    benchmark::DoNotOptimize(
        linKernighanOptimize(work, f.cand, dirty, LkOptions{}));
  }
}
BENCHMARK(BM_KickRepairCycle);

void BM_KickApply(benchmark::State& state) {
  Fixture& f = fixtureOf(1000);
  Rng rng(6);
  const auto strategy = static_cast<KickStrategy>(state.range(0));
  Tour t = f.start;
  for (auto _ : state) benchmark::DoNotOptimize(applyKick(t, strategy, f.cand, rng));
}
BENCHMARK(BM_KickApply)
    ->Arg(static_cast<int>(KickStrategy::kRandom))
    ->Arg(static_cast<int>(KickStrategy::kGeometric))
    ->Arg(static_cast<int>(KickStrategy::kClose))
    ->Arg(static_cast<int>(KickStrategy::kRandomWalk));

void BM_Clk100Kicks(benchmark::State& state) {
  Fixture& f = fixtureOf(1000);
  Rng rng(7);
  for (auto _ : state) {
    Tour t = f.start;
    ClkOptions opt;
    opt.maxKicks = 100;
    benchmark::DoNotOptimize(chainedLinKernighan(t, f.cand, rng, opt));
  }
}
BENCHMARK(BM_Clk100Kicks)->Unit(benchmark::kMillisecond);

}  // namespace
