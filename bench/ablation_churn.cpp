// Ablation: node churn. The paper's P2P framing promises robustness to
// nodes joining and leaving; its evaluation only covers the degenerate
// leave-at-budget case. This bench injects mid-run failures and late
// joins and measures the quality impact against a stable 8-node run with
// the same per-node budget.
//
//   ablation_churn [--runs R] [--dist-budget S] [--max-n N]
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "experiments/harness.h"
#include "util/stats.h"
#include "util/table.h"

using namespace distclk;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args);

  const auto* spec = findPaperInstance("pcb3038");
  const int n = cfg.sizeFor(*spec);
  const Instance inst = makeScaledInstance(*spec, n);
  const CandidateLists cand(inst, 10);
  const double budget = cfg.distBudgetFor(*spec) * 2.0;

  std::printf("Churn ablation on %s (n=%d), 8 nodes, %.2fs/node, %d runs\n\n",
              spec->standinName.c_str(), n, budget, cfg.runs);

  struct Scenario {
    const char* name;
    std::vector<std::pair<int, double>> failures;
    std::vector<std::pair<int, double>> joins;
    std::vector<double> speeds;
  };
  const Scenario scenarios[] = {
      {"stable (8 nodes)", {}, {}, {}},
      {"2 nodes die at 25%", {{0, budget * 0.25}, {1, budget * 0.25}}, {}, {}},
      {"half die at 50%",
       {{0, budget / 2}, {1, budget / 2}, {2, budget / 2}, {3, budget / 2}},
       {},
       {}},
      {"2 join at 50%", {}, {{6, budget / 2}, {7, budget / 2}}, {}},
      {"die early + join late",
       {{0, budget * 0.2}, {1, budget * 0.2}},
       {{6, budget * 0.5}, {7, budget * 0.5}},
       {}},
      {"half-speed half cluster",
       {},
       {},
       {1, 1, 1, 1, 0.5, 0.5, 0.5, 0.5}},
  };

  std::vector<std::pair<std::string, std::vector<std::int64_t>>> results;
  for (const auto& scenario : scenarios) {
    std::vector<std::int64_t> lengths;
    for (int run = 0; run < cfg.runs; ++run) {
      SimOptions opt;
      opt.nodes = 8;
      opt.node = scaledNodeParams(inst);
      opt.timeLimitPerNode = budget;
      opt.failures = scenario.failures;
      opt.joins = scenario.joins;
      opt.nodeSpeeds = scenario.speeds;
      opt.seed = cfg.seed + std::uint64_t(run) * 577;
      lengths.push_back(runSimulatedDistClk(inst, cand, opt).bestLength);
    }
    results.emplace_back(scenario.name, std::move(lengths));
  }

  std::int64_t best =
      calibrateReference(inst, cand, budget * 2.0, cfg.seed + 31337);
  for (const auto& [name, lengths] : results)
    for (std::int64_t len : lengths) best = std::min(best, len);

  Table table({"Scenario", "Mean excess"});
  for (const auto& [name, lengths] : results) {
    RunningStats ex;
    for (std::int64_t len : lengths)
      ex.add(excess(len, static_cast<double>(best)));
    table.addRow({name, fmtPct(ex.mean())});
  }
  table.print(std::cout);
  if (!cfg.csvDir.empty())
    table.writeCsvFile(cfg.csvDir + "/ablation_churn.csv");

  std::printf("\nexpected shape: quality degrades gracefully with lost "
              "CPU — losing half the cluster mid-run costs far less than "
              "half the quality, and late joiners still contribute. No "
              "scenario deadlocks or crashes (the P2P claim).\n");
  return 0;
}
