// Table 5: mean excess of DistCLK (8 nodes) after a short and a long
// per-node budget, per kicking strategy. The paper's budgets are exactly a
// tenth of Table 4's (10 s / 1e3 s per node); scaled mode keeps that 10:1
// relation via --dist-budget = --clk-budget / 10.
//
//   table5_dist_quality [--runs R] [--dist-budget S] [--nodes K] [--full]
//                       [--max-n N] [--csv-dir DIR]
#include <cstdio>
#include <iostream>
#include <string>

#include "experiments/harness.h"
#include "util/stats.h"
#include "util/table.h"

using namespace distclk;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args);

  const KickStrategy kicks[] = {KickStrategy::kRandom, KickStrategy::kGeometric,
                                KickStrategy::kClose,
                                KickStrategy::kRandomWalk};

  Table table({"Instance", "n", "Random short", "Random long",
               "Geometric short", "Geometric long", "Close short",
               "Close long", "Random-walk short", "Random-walk long"});

  std::printf("Table 5 reproduction: DistCLK (%d nodes) mean excess after "
              "short (10%%) and long (100%%) per-node budget\n",
              cfg.nodes);
  std::printf("runs=%d budget=%.2fs/node (x10 for instances >= 10^4 "
              "cities)\n\n",
              cfg.runs, cfg.distBudget);

  for (const auto& spec : paperTestbed()) {
    if (!cfg.full && !spec.smallSet) continue;
    const int n = cfg.sizeFor(spec);
    const Instance inst = makeScaledInstance(spec, n);
    const CandidateLists cand(inst, 10);
    const double budget = cfg.distBudgetFor(spec);

    // Reference = calibrated presumed optimum merged with the best final
    // observed in this table's own runs (see table4_clk_quality).
    std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> cells(4);
    std::int64_t ref =
        calibrateReference(inst, cand, budget * 4.0, cfg.seed + 31337);
    for (std::size_t k = 0; k < 4; ++k) {
      for (int run = 0; run < cfg.runs; ++run) {
        const SimResult res = runDistExperiment(
            inst, cand, kicks[k], cfg.nodes, budget, /*target=*/-1,
            cfg.seed + std::uint64_t(run) * 101 + std::uint64_t(k) * 31);
        cells[k].emplace_back(valueAtOrFirst(res.curve, budget * 0.1),
                              res.bestLength);
        ref = std::min(ref, res.bestLength);
      }
    }

    std::vector<std::string> row{spec.standinName, std::to_string(n)};
    for (std::size_t k = 0; k < 4; ++k) {
      RunningStats shortExcess, longExcess;
      for (const auto& [shortVal, finalVal] : cells[k]) {
        shortExcess.add(excess(shortVal, static_cast<double>(ref)));
        longExcess.add(excess(finalVal, static_cast<double>(ref)));
      }
      row.push_back(fmtPctOrOpt(shortExcess.mean(), 1e-6));
      row.push_back(fmtPctOrOpt(longExcess.mean(), 1e-6));
    }
    table.addRow(row);
  }

  table.print(std::cout);
  if (!cfg.csvDir.empty())
    table.writeCsvFile(cfg.csvDir + "/table5_dist_quality.csv");
  std::printf("\npaper reference (Table 5, Random-walk column, long budget): "
              "most small instances reach OPT; compare against Table 4's "
              "much larger excesses at 10x the total CPU.\n");
  return 0;
}
