// Population-diversity analysis (beyond the paper, supporting its §5
// conclusion that tour exchange lets nodes "leave their neighborhood to
// enter more promising areas"): tracks how similar the nodes' tours are
// over time, with cooperation on vs off. Cooperation collapses diversity
// as the cluster agrees on one basin; isolated nodes stay spread out.
//
//   diversity_stats [--runs R] [--dist-budget S] [--nodes K] [--max-n N]
#include <cstdio>
#include <iostream>

#include "core/node.h"
#include "experiments/harness.h"
#include "net/sim_network.h"
#include "tsp/metrics.h"
#include "util/table.h"

using namespace distclk;

namespace {

/// Runs an N-node cooperative (or isolated) population for `rounds` EA
/// steps per node in lockstep and samples the mean pairwise bond
/// similarity after each round. Lockstep keeps the sampling simple; the
/// event-driven driver is exercised by every other bench.
std::vector<double> diversityTrace(const Instance& inst,
                                   const CandidateLists& cand, int nodes,
                                   int rounds, bool cooperate,
                                   std::uint64_t seed) {
  Rng master(seed);
  std::vector<DistNode> pop;
  pop.reserve(std::size_t(nodes));
  DistParams params = scaledNodeParams(inst);
  for (int i = 0; i < nodes; ++i)
    pop.emplace_back(inst, cand, params, i, master());
  SimNetwork net(buildTopology(TopologyKind::kHypercube, nodes), 0.0);

  for (auto& node : pop) node.initialStep();
  std::vector<double> trace;
  double clock = 1.0;
  for (int round = 0; round < rounds; ++round, clock += 1.0) {
    for (auto& node : pop) {
      const auto received =
          cooperate ? net.collect(node.id(), clock) : std::vector<Message>{};
      const auto out = node.step(received);
      if (cooperate && out.broadcast)
        net.broadcast(node.id(), clock, node.makeTourMessage());
    }
    std::vector<std::vector<int>> tours;
    tours.reserve(pop.size());
    for (const auto& node : pop) tours.push_back(node.best().orderVector());
    trace.push_back(populationDiversity(tours));
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args);

  const auto* spec = findPaperInstance("C1k.1");
  const int n = cfg.sizeFor(*spec);
  const Instance inst = makeScaledInstance(*spec, n);
  const CandidateLists cand(inst, 10);
  const int rounds = 12;

  std::printf("Population diversity on %s (n=%d), %d nodes, %d EA rounds\n",
              spec->standinName.c_str(), n, cfg.nodes, rounds);
  std::printf("metric: mean pairwise bond similarity of node tours "
              "(1.0 = identical cycles)\n\n");

  const auto coop =
      diversityTrace(inst, cand, cfg.nodes, rounds, true, cfg.seed);
  const auto iso =
      diversityTrace(inst, cand, cfg.nodes, rounds, false, cfg.seed);

  Table table({"Round", "Cooperating", "Isolated"});
  for (int r = 0; r < rounds; ++r)
    table.addRow({std::to_string(r + 1), fmt(coop[std::size_t(r)], 4),
                  fmt(iso[std::size_t(r)], 4)});
  table.print(std::cout);
  if (!cfg.csvDir.empty())
    table.writeCsvFile(cfg.csvDir + "/diversity_stats.csv");

  std::printf("\nexpected shape: cooperating similarity climbs toward 1.0 "
              "as winning tours spread through the hypercube; isolated "
              "nodes converge to distinct local optima and stay below.\n");
  return 0;
}
