// §4 message statistics: broadcasts per run, messages per node, the timing
// of the first 10 broadcasts (the paper: most traffic happens early), and
// the byte volume — demonstrating that communication overhead is
// negligible next to computation.
//
//   messages_stats [--runs R] [--dist-budget S] [--nodes K] [--max-n N]
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "experiments/harness.h"
#include "util/stats.h"
#include "util/table.h"

using namespace distclk;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args);

  const auto* spec = findPaperInstance("sw24978");  // the paper's example
  const int n = cfg.sizeFor(*spec);
  const Instance inst = makeScaledInstance(*spec, n);
  const CandidateLists cand(inst, 10);
  const double budget = cfg.distBudgetFor(*spec) * 4.0;

  std::printf("Message statistics on %s (n=%d), %d nodes, %.2fs/node, "
              "%d runs\n\n",
              spec->standinName.c_str(), n, cfg.nodes, budget, cfg.runs);

  RunningStats broadcasts, perNode, bytes, earlyFrac;
  std::vector<double> firstTenTimes;
  for (int run = 0; run < cfg.runs; ++run) {
    const SimResult res =
        runDistExperiment(inst, cand, KickStrategy::kRandomWalk, cfg.nodes,
                          budget, -1, cfg.seed + std::uint64_t(run) * 3);
    broadcasts.add(static_cast<double>(res.net.broadcasts));
    perNode.add(static_cast<double>(res.net.messagesSent) / cfg.nodes);
    bytes.add(static_cast<double>(res.net.bytesSent));
    // Broadcast send times.
    std::vector<double> times;
    for (const auto& e : res.events)
      if (e.type == NodeEventType::kBroadcastSent) times.push_back(e.time);
    std::sort(times.begin(), times.end());
    for (std::size_t i = 0; i < times.size() && i < 10; ++i)
      firstTenTimes.push_back(times[i]);
    if (!times.empty()) {
      const auto early = static_cast<double>(
          std::count_if(times.begin(), times.end(),
                        [&](double t) { return t < budget * 0.25; }));
      earlyFrac.add(early / static_cast<double>(times.size()));
    }
  }

  Table table({"Metric", "Mean", "Min", "Max"});
  table.addRow({"broadcasts per run", fmt(broadcasts.mean(), 1),
                fmt(broadcasts.min(), 0), fmt(broadcasts.max(), 0)});
  table.addRow({"deliveries per node", fmt(perNode.mean(), 1),
                fmt(perNode.min(), 0), fmt(perNode.max(), 0)});
  table.addRow({"bytes per run", fmt(bytes.mean(), 0), fmt(bytes.min(), 0),
                fmt(bytes.max(), 0)});
  table.addRow({"share of broadcasts in first quarter",
                fmtPct(earlyFrac.mean(), 1), fmtPct(earlyFrac.min(), 1),
                fmtPct(earlyFrac.max(), 1)});
  if (!firstTenTimes.empty())
    table.addRow({"median time of first-10 broadcasts [s]",
                  fmt(median(firstTenTimes), 3), "-", "-"});
  table.print(std::cout);

  std::printf("\npaper reference (§4): 84.9 broadcasts per run on sw24978 "
              "(about 11 messages per node over 1e4 s); the first 10 "
              "messages go out before 1.6%% of the budget; total overhead "
              "negligible.\n");
  return 0;
}
