// Figure 2: anytime curves (tour length vs CPU time).
//   (a,b) ABCC-CLK under the four kicking strategies (paper: fl1577 and
//         sw24978; sw24978 is size-capped in default mode),
//   (c,d) DistCLK (8 nodes) vs ABCC-CLK with the Random-walk kick.
// Prints mean curves sampled on a log-ish time grid; --csv-dir writes the
// series for plotting.
//
//   fig2_anytime [--runs R] [--clk-budget S] [--nodes K] [--full]
//                [--max-n N] [--csv-dir DIR]
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "experiments/harness.h"
#include "util/table.h"

using namespace distclk;

namespace {

std::vector<double> timeGrid(double budget) {
  std::vector<double> grid;
  for (double t = budget / 100.0; t < budget * 0.999; t *= 1.5)
    grid.push_back(t);
  grid.push_back(budget);
  return grid;
}

std::string cell(std::int64_t v) {
  return v == std::numeric_limits<std::int64_t>::max() ? "-"
                                                       : std::to_string(v);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const BenchConfig cfg = BenchConfig::fromArgs(args);
  const KickStrategy kicks[] = {KickStrategy::kRandom, KickStrategy::kGeometric,
                                KickStrategy::kClose,
                                KickStrategy::kRandomWalk};

  for (const char* name : {"fl1577", "sw24978"}) {
    const auto* spec = findPaperInstance(name);
    const int n = cfg.sizeFor(*spec);
    const Instance inst = makeScaledInstance(*spec, n);
    const CandidateLists cand(inst, 10);
    const double budget = cfg.clkBudgetFor(*spec);
    const auto grid = timeGrid(budget);

    // Panels (a)/(b): CLK per kick strategy.
    std::printf("Fig 2 (%s, n=%d): ABCC-CLK tour length vs CPU time per "
                "kick strategy\n",
                spec->standinName.c_str(), n);
    Table kickTable({"t[s]", "Random", "Geometric", "Close", "Random-walk"});
    std::vector<AnytimeCurve> mean(4);
    for (std::size_t k = 0; k < 4; ++k) {
      std::vector<AnytimeCurve> runs;
      for (int run = 0; run < cfg.runs; ++run)
        runs.push_back(runClkExperiment(inst, cand, kicks[k], budget, -1,
                                        cfg.seed + std::uint64_t(run) * 7 +
                                            k * 131)
                           .curve);
      mean[k] = meanCurve(runs, grid);
    }
    for (std::size_t g = 0; g < grid.size(); ++g) {
      std::vector<std::string> row{fmt(grid[g], 2)};
      for (std::size_t k = 0; k < 4; ++k)
        row.push_back(cell(valueAtOrFirst(mean[k], grid[g])));
      kickTable.addRow(row);
    }
    kickTable.print(std::cout);
    if (!cfg.csvDir.empty())
      kickTable.writeCsvFile(cfg.csvDir + "/fig2_kicks_" + spec->standinName +
                             ".csv");

    // Panels (c)/(d): DistCLK(8) vs CLK, Random-walk kick, on a shared
    // per-node time axis. (The paper additionally caps DistCLK at a tenth
    // of the CLK budget; at laptop scale that tenth barely covers a node's
    // initial optimization, so both get the full axis here — the claim
    // under test is the vertical ordering of the curves.)
    std::printf("\nFig 2 (%s): DistCLK(%d nodes) vs ABCC-CLK, Random-walk "
                "kick (per-node time axis)\n",
                spec->standinName.c_str(), cfg.nodes);
    std::vector<AnytimeCurve> distRuns;
    for (int run = 0; run < cfg.runs; ++run)
      distRuns.push_back(runDistExperiment(inst, cand,
                                           KickStrategy::kRandomWalk,
                                           cfg.nodes, budget, -1,
                                           cfg.seed + std::uint64_t(run) * 11)
                             .curve);
    const AnytimeCurve distMean = meanCurve(distRuns, grid);
    Table cmp({"t[s] per node", "DistCLK", "ABCC-CLK"});
    for (double t : grid)
      cmp.addRow({fmt(t, 2), cell(valueAtOrFirst(distMean, t)),
                  cell(valueAtOrFirst(mean[3], t))});
    cmp.print(std::cout);
    if (!cfg.csvDir.empty())
      cmp.writeCsvFile(cfg.csvDir + "/fig2_dist_" + spec->standinName +
                       ".csv");
    std::printf("\n");
  }

  std::printf("paper reference (Fig 2): on fl1577 CLK flatlines in a local "
              "optimum after ~150s while DistCLK keeps descending to the "
              "optimum; on sw24978 the DistCLK curve sits strictly below "
              "CLK's at every per-node time.\n");
  return 0;
}
