#!/usr/bin/env bash
# Tier-1 verification: one command runs the whole correctness stack.
#
#   1. Main build at the -Werror warning floor (-Wconversion -Wshadow
#      -Wextra-semi on the library target) + full ctest suite.
#   2. ThreadSanitizer over the concurrent components (thread network,
#      thread driver, metric shards, speculative kick engine, solver pool)
#      so data races in the mailbox/metrics/worker-pool/job-layer paths
#      fail CI on day one.
#   3. AddressSanitizer over the distance-kernel / candidate-list / tour /
#      LK paths that index raw SoA and CSR arrays.
#   4. UndefinedBehaviorSanitizer (signed overflow, shifts, bounds,
#      float-cast-overflow; abort on first report) over the kernel, tour
#      structures, LK, codec, parser, and metrics tests — the code where
#      the int64 distance arithmetic and double->int rounding live.
#   5. Invariant audit build (-DDISTCLK_AUDIT=ON under ASan): structural
#      self-checks compiled into Tour/BigTour/TwoLevelList/CandidateLists/
#      NodeRunner mutation paths, exercised by test_audit.
#   6. Clang thread-safety analysis build (tsa preset): compiles the whole
#      tree with -Werror=thread-safety so the capability annotations on the
#      sync:: wrappers are PROVEN, not just documented. Skipped with a
#      visible notice when clang++ is not installed (the attributes are
#      no-ops under GCC, so a GCC build would verify nothing).
#   7. Determinism/portability lint over src/ (scripts/lint.sh), plus two
#      lock-discipline guards: DISTCLK_NO_THREAD_SAFETY_ANALYSIS must not
#      appear outside util/sync.h, and the threading allowlist must not
#      grow past its budget (15 entries) without a justified review.
#   8. Instrumented smoke run: the pinned churn fixture with causal tracing
#      and live metrics on, then trace_report --validate over the captured
#      trace (schema + causal invariants) and a non-empty Prometheus
#      snapshot check. Catches tracer/schema drift the unit tests miss.
#   9. Service smoke run: distclk_serve with one worker over a wall-clock
#      blocker, a job cancelled while queued, and a job whose deadline
#      expires behind the blocker — all three terminal states must appear
#      in the response stream, the shared multi-run trace must validate,
#      and the Prometheus snapshot must carry the svc job metrics.
#  10. Prep-parallelism smoke: a 10^5-city context built at
#      --prep-threads 4 must report the same construction tour length as
#      the serial build (byte-identical preprocessing, DESIGN.md §13), and
#      concurrent same-key jobs through distclk_serve must cost exactly
#      one context build (cache_builds:1).
#
# See DESIGN.md §7 for what each layer is expected to catch.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}

cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDISTCLK_WERROR=ON
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== instrumented smoke run (trace + metrics) and trace validation"
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
./build/examples/distclk_cli --algo dist --gen uniform --n 120 --gen-seed 42 \
  --nodes 8 --seconds 6 --modeled-work 1e5 --seed 2026 --join 5:0.4 \
  --fail 2:0.5 --metrics-interval 1 --trace "$SMOKE/run.jsonl" \
  --metrics-out "$SMOKE/metrics.prom"
./build/tools/trace_report "$SMOKE/run.jsonl" --validate
test -s "$SMOKE/metrics.prom"
grep -q '^distclk_snapshot_time_seconds' "$SMOKE/metrics.prom"

echo "== service smoke run (cancel + deadline + completion through the pool)"
cat > "$SMOKE/jobs.jsonl" <<'JOBS'
{"id":"blocker","gen":"uniform","n":400,"gen_seed":7,"candidates":8,"nodes":2,"seconds":0.5,"seed":1,"runtime":"threads"}
{"id":"hold","gen":"uniform","n":120,"gen_seed":42,"candidates":8,"nodes":8,"seconds":6,"seed":2026,"modeled_work":100000,"priority":1}
{"id":"doomed","gen":"uniform","n":120,"gen_seed":42,"candidates":8,"nodes":8,"seconds":6,"seed":2026,"modeled_work":100000,"deadline_seconds":0.05}
{"cancel":"hold"}
JOBS
./build/tools/distclk_serve --jobs "$SMOKE/jobs.jsonl" --workers 1 \
  --out "$SMOKE/serve.jsonl" --trace "$SMOKE/serve_trace.jsonl" \
  --metrics-out "$SMOKE/serve.prom"
grep -q '"id":"blocker".*"state":"completed"' "$SMOKE/serve.jsonl"
grep -q '"id":"hold".*"state":"cancelled"' "$SMOKE/serve.jsonl"
grep -q '"id":"doomed".*"state":"expired"' "$SMOKE/serve.jsonl"
./build/tools/trace_report "$SMOKE/serve_trace.jsonl" --validate
./build/tools/trace_report "$SMOKE/serve_trace.jsonl" --jobs
grep -q '^distclk_svc_jobs_completed' "$SMOKE/serve.prom"
grep -q '^distclk_svc_jobs_cancelled' "$SMOKE/serve.prom"
grep -q '^distclk_svc_jobs_expired' "$SMOKE/serve.prom"

echo "== prep-parallelism smoke (byte-identical context at --prep-threads 4)"
# A 10^5-city context built serially and with 4 prep threads must report
# the same construction length (byte-identical preprocessing, DESIGN.md
# §13); the prep phase line must be present in both.
./build/examples/distclk_cli --gen uniform --n 100000 --gen-seed 1 \
  --prep-only > "$SMOKE/prep1.txt"
./build/examples/distclk_cli --gen uniform --n 100000 --gen-seed 1 \
  --prep-threads 4 --prep-only > "$SMOKE/prep4.txt"
grep -q '^prep ' "$SMOKE/prep1.txt"
grep -q 'threads=4' "$SMOKE/prep4.txt"
diff <(grep '^result' "$SMOKE/prep1.txt") <(grep '^result' "$SMOKE/prep4.txt")
# Concurrent same-key jobs through the pool still cost exactly one context
# build (the cache builds under its lock; prepThreads is not in the key).
cat > "$SMOKE/prep_jobs.jsonl" <<'JOBS'
{"id":"prep-a","gen":"uniform","n":5000,"gen_seed":3,"candidates":8,"prep_threads":4,"nodes":2,"seconds":0.2,"seed":1,"modeled_work":1000000}
{"id":"prep-b","gen":"uniform","n":5000,"gen_seed":3,"candidates":8,"prep_threads":1,"nodes":2,"seconds":0.2,"seed":1,"modeled_work":1000000}
{"id":"prep-c","gen":"uniform","n":5000,"gen_seed":3,"candidates":8,"nodes":2,"seconds":0.2,"seed":1,"modeled_work":1000000}
JOBS
./build/tools/distclk_serve --jobs "$SMOKE/prep_jobs.jsonl" --workers 2 \
  --prep-threads 4 --out "$SMOKE/prep_serve.jsonl" > /dev/null
grep -q '"cache_builds":1' "$SMOKE/prep_serve.jsonl"

cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDISTCLK_SAN=thread
cmake --build build-tsan -j "$JOBS" \
  --target test_sync test_thread_network test_thread_driver test_runtime \
           test_obs_metrics test_lk_workspace test_spec_kicks test_svc \
           test_prep_parallel
for t in test_sync test_thread_network test_thread_driver test_runtime \
         test_obs_metrics test_lk_workspace test_spec_kicks test_svc \
         test_prep_parallel; do
  echo "== TSan: $t"
  ./build-tsan/tests/"$t"
done

cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDISTCLK_SAN=address
cmake --build build-asan -j "$JOBS" \
  --target test_dist_kernel test_neighbors test_tour test_lk \
           test_lk_workspace test_spec_kicks test_prep_parallel
for t in test_dist_kernel test_neighbors test_tour test_lk \
         test_lk_workspace test_spec_kicks test_prep_parallel; do
  echo "== ASan: $t"
  ./build-asan/tests/"$t"
done

UBSAN_TESTS=(test_dist_kernel test_tour test_twolevel test_big_tour test_lk
             test_lk_workspace test_chained_lk test_spec_kicks test_message
             test_tsplib test_metrics test_prep_parallel)
cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDISTCLK_SAN=undefined
cmake --build build-ubsan -j "$JOBS" --target "${UBSAN_TESTS[@]}"
for t in "${UBSAN_TESTS[@]}"; do
  echo "== UBSan: $t"
  ./build-ubsan/tests/"$t"
done

cmake -B build-audit -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDISTCLK_SAN=address -DDISTCLK_AUDIT=ON
cmake --build build-audit -j "$JOBS" --target test_audit test_sync
echo "== Audit (ASan): test_audit"
./build-audit/tests/test_audit
echo "== Audit (ASan): test_sync (lock-rank death tests)"
./build-audit/tests/test_sync

# Thread-safety analysis needs the Clang frontend; the attributes compile
# to nothing under GCC, so skipping is honest while silence would not be.
# The proof targets the production tree (library + tools + examples):
# test_sync's death tests violate the discipline ON PURPOSE to check the
# runtime audit, so they cannot be analysis-clean by construction.
if command -v clang++ >/dev/null 2>&1; then
  echo "== Clang thread-safety analysis (-Werror=thread-safety)"
  cmake -B build-tsa -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_COMPILER=clang++ -DDISTCLK_TSA=ON
  cmake --build build-tsa -j "$JOBS" \
    --target distclk calibrate trace_report distclk_serve \
             quickstart distributed_solve tsplib_tool kick_playground distclk_cli
else
  echo "NOTICE: clang++ not found; skipping thread-safety analysis build (tsa preset)"
fi

scripts/lint.sh

echo "== lock-discipline guards"
# The analysis escape hatch is reserved for the wrapper internals; an
# occurrence anywhere else means a contract was suppressed, not proven.
if grep -rn --include='*.h' --include='*.cpp' 'DISTCLK_NO_THREAD_SAFETY_ANALYSIS' \
     src tools tests examples bench | grep -v 'src/util/sync\.h'; then
  echo "FAIL: DISTCLK_NO_THREAD_SAFETY_ANALYSIS used outside src/util/sync.h" >&2
  exit 1
fi
# Threading allowlist budget: 15 entries. Growth needs a justification in
# tools/lint_allowlist.txt AND a bump here with review — not a drive-by.
THREADING_ENTRIES=$(grep -c '^threading |' tools/lint_allowlist.txt || true)
if [ "$THREADING_ENTRIES" -gt 15 ]; then
  echo "FAIL: threading allowlist has $THREADING_ENTRIES entries (budget 15)" >&2
  exit 1
fi
echo "lock-discipline guards OK (threading allowlist: $THREADING_ENTRIES/15)"

echo "tier-1 OK"
