#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then a ThreadSanitizer pass
# over the concurrent components (thread network, thread driver, metric
# shards) so data races in the mailbox/metrics paths fail CI on day one,
# and an AddressSanitizer pass over the distance-kernel / candidate-list /
# tour / LK paths that index raw SoA and CSR arrays.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}

cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDISTCLK_SAN=thread
cmake --build build-tsan -j "$JOBS" \
  --target test_thread_network test_thread_driver test_runtime test_obs_metrics
for t in test_thread_network test_thread_driver test_runtime test_obs_metrics; do
  echo "== TSan: $t"
  ./build-tsan/tests/"$t"
done

cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDISTCLK_SAN=address
cmake --build build-asan -j "$JOBS" \
  --target test_dist_kernel test_neighbors test_tour test_lk
for t in test_dist_kernel test_neighbors test_tour test_lk; do
  echo "== ASan: $t"
  ./build-asan/tests/"$t"
done

echo "tier-1 OK"
