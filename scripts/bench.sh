#!/usr/bin/env bash
# Perf trajectory for the distance hot path: builds the Release bench
# binaries, runs the micro suites with JSON output, re-runs the
# kernel-vs-reference determinism check, and merges everything into
# BENCH_lk.json at the repo root (per-benchmark ns/op, steps/sec, derived
# speedup ratios, speculative-engine scaling, warm-vs-cold job setup
# through the solver service, git describe).
#
# Environment knobs:
#   BUILD_DIR  build directory (default build-bench, CMAKE_BUILD_TYPE=Release)
#   JOBS       parallel build jobs (default: nproc)
#   MIN_TIME   google-benchmark --benchmark_min_time (default 0.05)
#   SEED_CLI   path to a baseline-revision distclk_cli; when set, the script
#              also runs the cross-binary comparison (fixed-budget CLK kicks
#              and a deterministic LK pass at n=10000) and adds it under
#              "vs_seed".
#
# "vs_seed" always carries the in-binary head-to-heads against the retained
# bit-identical reference paths (OrOptStyle::kFullSweep, the seed Or-opt
# loop; ClkOptions::referenceKickPath, the seed per-kick tour-copy loop) —
# no second binary needed for those.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
JOBS=${JOBS:-$(nproc)}
MIN_TIME=${MIN_TIME:-0.05}
export MIN_TIME

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target micro_tsp micro_lk micro_tour test_dist_kernel distclk_cli \
           distclk_serve prep_scale

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

for b in micro_tsp micro_lk micro_tour; do
  echo "== $b"
  "$BUILD_DIR/bench/$b" --benchmark_format=json \
    --benchmark_min_time="$MIN_TIME" > "$out/$b.json"
done

echo "== determinism (kernel vs reference trajectories)"
"$BUILD_DIR/tests/test_dist_kernel" \
  --gtest_filter='DistPathDeterminism.*' | tee "$out/determinism.txt"

# Tracing is designed to be pay-for-what-you-use: stamps and trace records
# only exist when --trace is on, and even then they ride the existing
# broadcast/collect paths. Measure the cost on the *simulated* runtime,
# where the trajectory is deterministic: traced and untraced runs execute
# the bit-identical kick/repair instruction stream, so the wall-time delta
# is purely tracer work. Interleave the modes and take per-mode minima
# (min-of-N is the standard noisy-machine estimator; small negative
# overhead readings are noise around zero).
echo "== telemetry overhead (deterministic dist workload, traced vs untraced)"
DIST_ARGS=(--algo dist --gen uniform --n 1000 --gen-seed 1 --seed 1
           --nodes 8 --seconds 1 --modeled-work 3e6 --metrics-interval 0.1)
OVH_REPS=${OVH_REPS:-8}
: > "$out/dist_untraced.txt"
: > "$out/dist_traced.txt"
for ((i = 0; i < OVH_REPS; ++i)); do
  "$BUILD_DIR/examples/distclk_cli" "${DIST_ARGS[@]}" \
    | grep wall >> "$out/dist_untraced.txt"
  "$BUILD_DIR/examples/distclk_cli" "${DIST_ARGS[@]}" \
    --trace "$out/dist_traced.jsonl" \
    | grep wall >> "$out/dist_traced.txt"
done
paste <(echo untraced; cat "$out/dist_untraced.txt") \
      <(echo traced;   cat "$out/dist_traced.txt") || true

# Context-cache effect on repeated jobs: the same n=10000 instance
# submitted WVC_JOBS times through distclk_serve on one worker. The first
# job builds the InstanceContext (candidate lists + construction tour);
# every later job is a cache hit and must skip preprocessing, so its
# setup_seconds collapses to the cache-lookup cost. Records are split by
# the per-job cache_hit flag, not submission order.
echo "== context cache (repeated identical jobs through distclk_serve)"
WVC_JOBS=${WVC_JOBS:-8}
: > "$out/serve_jobs_in.jsonl"
for ((i = 0; i < WVC_JOBS; ++i)); do
  printf '{"id":"warm-%d","gen":"uniform","n":10000,"gen_seed":1,"candidates":10,"nodes":4,"seconds":0.2,"seed":1,"modeled_work":1000000}\n' \
    "$i" >> "$out/serve_jobs_in.jsonl"
done
"$BUILD_DIR/tools/distclk_serve" --jobs "$out/serve_jobs_in.jsonl" \
  --workers 1 --out "$out/serve_jobs.jsonl" > /dev/null

# Preprocessing-pipeline scaling: per-phase build() wall times at large n
# across prep-thread counts, the partitioned-construction arm, and the
# warm ContextCache hit. The million-city arm self-gates on MemAvailable
# (a {"skipped":...} record, not silence). PREP_MAX_N caps the sweep.
echo "== preprocessing scaling (prep_scale)"
"$BUILD_DIR/bench/prep_scale" --max-n "${PREP_MAX_N:-1000000}" \
  --reps "${PREP_REPS:-3}" | tee "$out/prep_scale.jsonl"

if [[ -n "${SEED_CLI:-}" ]]; then
  echo "== cross-binary vs seed: $SEED_CLI"
  NEW_CLI="$BUILD_DIR/examples/distclk_cli"
  for tag in seed new; do
    bin=$SEED_CLI; [[ $tag == new ]] && bin=$NEW_CLI
    "$bin" --algo clk --gen uniform --n 10000 --gen-seed 1 --seed 1 \
      --seconds 10 | grep -E 'result|wall' > "$out/clk_$tag.txt"
    "$bin" --algo lk --gen uniform --n 10000 --gen-seed 1 --seed 1 \
      | grep -E 'result|wall' > "$out/lk_$tag.txt"
  done
fi

GIT_DESCRIBE=$(git describe --always --dirty --tags 2>/dev/null || echo unknown)
export GIT_DESCRIBE

python3 - "$out" > BENCH_lk.json <<'PY'
import json, os, re, sys

out = sys.argv[1]

# google-benchmark reports real_time/cpu_time in the benchmark's time_unit
# (ns unless ->Unit() overrides it); normalize to ns so a ms-unit benchmark
# does not land in time_ns with a 1e6-off value.
TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

benchmarks = []
by_name = {}
for suite in ("micro_tsp", "micro_lk", "micro_tour"):
    with open(os.path.join(out, suite + ".json")) as f:
        data = json.load(f)
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        scale = TO_NS[b.get("time_unit", "ns")]
        entry = {
            "suite": suite,
            "name": b["name"],
            "time_ns": b["real_time"] * scale,
            "cpu_ns": b["cpu_time"] * scale,
        }
        for counter in ("steps_per_sec", "kicks_per_sec", "items_per_second",
                        "spec_evals", "spec_conflicts"):
            if counter in b:
                entry[counter] = b[counter]
        benchmarks.append(entry)
        by_name[b["name"]] = entry


def ratio(fast, slow, key="time_ns"):
    a, b = by_name.get(fast), by_name.get(slow)
    if not a or not b or not a.get(key):
        return None
    return round(b[key] / a[key], 3)


def rate_ratio(fast, slow, key):
    # For kIsRate counters higher is better, so the speedup is fast/slow.
    a, b = by_name.get(fast), by_name.get(slow)
    if not a or not b or not b.get(key):
        return None
    return round(a[key] / b[key], 3)


derived = {
    "dist_kernel_vs_switch_euc2d":
        ratio("BM_DistKernelEuc2D", "BM_DistEuc2D"),
    "cand_scan_annotated_vs_recompute_n10000":
        ratio("BM_CandScanAnnotated/10000", "BM_CandScanRecompute/10000"),
    "lk_pass_kernel_vs_reference_n10000":
        ratio("BM_LkPassDistPath/n:10000/ref:0",
              "BM_LkPassDistPath/n:10000/ref:1"),
    "kick_repair_kernel_vs_reference_n10000":
        ratio("BM_KickRepairDistPath/n:10000/ref:0",
              "BM_KickRepairDistPath/n:10000/ref:1"),
    "clk_kicks_ws_vs_ref_n1000":
        rate_ratio("BM_Clk100Kicks/n:1000/ref:0",
                   "BM_Clk100Kicks/n:1000/ref:1", "kicks_per_sec"),
    "clk_kicks_ws_vs_ref_n10000":
        rate_ratio("BM_Clk100Kicks/n:10000/ref:0",
                   "BM_Clk100Kicks/n:10000/ref:1", "kicks_per_sec"),
    "or_opt_dlb_vs_sweep_n1000":
        ratio("BM_OrOptPass/1000", "BM_OrOptPassSweep/1000"),
    "or_opt_dlb_vs_sweep_n3000":
        ratio("BM_OrOptPass/3000", "BM_OrOptPassSweep/3000"),
}

determinism = []
pat = re.compile(
    r"\[determinism\] inst=(\S+) n=(\d+) seed=(\d+) "
    r"len_kernel=(\d+) len_reference=(\d+) identical=(\d)")
with open(os.path.join(out, "determinism.txt")) as f:
    for line in f:
        m = pat.search(line)
        if m:
            determinism.append({
                "inst": m.group(1), "n": int(m.group(2)),
                "seed": int(m.group(3)),
                "len_kernel": int(m.group(4)),
                "len_reference": int(m.group(5)),
                "identical": m.group(6) == "1",
            })

# In-binary head-to-heads against retained reference paths that reproduce
# the seed behavior bit-identically (OrOptStyle::kFullSweep is the seed
# Or-opt loop; ClkOptions::referenceKickPath is the seed per-kick tour-copy
# loop). Always emitted, no second binary required.
def ns_per_kick(name):
    e = by_name.get(name)
    if not e or not e.get("kicks_per_sec"):
        return None
    return round(1e9 / e["kicks_per_sec"], 1)


vs_seed = {
    "or_opt_pass_n3000": {
        "new_time_ns": by_name.get("BM_OrOptPass/3000", {}).get("time_ns"),
        "seed_time_ns":
            by_name.get("BM_OrOptPassSweep/3000", {}).get("time_ns"),
        "speedup": ratio("BM_OrOptPass/3000", "BM_OrOptPassSweep/3000"),
    },
    "clk_per_kick_overhead_n10000": {
        "new_ns_per_kick": ns_per_kick("BM_Clk100Kicks/n:10000/ref:0"),
        "seed_ns_per_kick": ns_per_kick("BM_Clk100Kicks/n:10000/ref:1"),
        "speedup": rate_ratio("BM_Clk100Kicks/n:10000/ref:0",
                              "BM_Clk100Kicks/n:10000/ref:1",
                              "kicks_per_sec"),
    },
}

# Telemetry overhead: wall time of the bit-identical deterministic dist
# workload with and without a trace sink, min over interleaved reps.
# Positive overhead_pct = wall time added by tracing; small negative
# values are run-to-run noise around zero.
def min_wall(path):
    times = [float(m) for m in
             re.findall(r"wall time:\s*([\d.]+)s", open(path).read())]
    return min(times) if times else None


telemetry = None
if os.path.exists(os.path.join(out, "dist_untraced.txt")):
    untraced = min_wall(os.path.join(out, "dist_untraced.txt"))
    traced = min_wall(os.path.join(out, "dist_traced.txt"))
    telemetry = {
        "dist_wall_seconds_untraced": untraced,
        "dist_wall_seconds_traced": traced,
        "overhead_pct": round((traced / untraced - 1.0) * 100.0, 2)
        if untraced and traced else None,
    }

# Speculative kick engine scaling (BM_ClkSpecKicks): measured kicks/sec of
# each worker count against the sequential fast path (the w:0 arm), plus
# the conflict rate (aborted evaluations / total evaluations). Wall-clock
# scaling needs >= w free cores; "cpus" records what this host offered so
# a flat measured curve on a starved host is self-explaining. The
# modeled_full_parallel_speedup is a projection from measured quantities —
# w * (1 - conflict_rate) * rate(w:1) / rate(seq), i.e. per-evaluation
# engine cost and commit fraction as measured, perfect worker overlap
# assumed — and is labeled as a model, never reported as a measurement.
def spec_arm(n, w):
    # BM_ClkSpecKicks uses UseRealTime() (its rate must be wall-clock, not
    # coordinator CPU time), which suffixes the benchmark name.
    seq = by_name.get(f"BM_ClkSpecKicks/n:{n}/w:0/real_time")
    arm = by_name.get(f"BM_ClkSpecKicks/n:{n}/w:{w}/real_time")
    if not seq or not arm or not seq.get("kicks_per_sec"):
        return None
    evals = arm.get("spec_evals") or 0.0
    conflicts = arm.get("spec_conflicts") or 0.0
    conflict_rate = round(conflicts / evals, 4) if evals else None
    one = by_name.get(f"BM_ClkSpecKicks/n:{n}/w:1/real_time")
    modeled = None
    if one and one.get("kicks_per_sec") and conflict_rate is not None:
        modeled = round(w * (1.0 - conflict_rate)
                        * one["kicks_per_sec"] / seq["kicks_per_sec"], 3)
    return {
        "workers": w,
        "kicks_per_sec": arm.get("kicks_per_sec"),
        "measured_speedup_vs_seq":
            round(arm["kicks_per_sec"] / seq["kicks_per_sec"], 3)
            if arm.get("kicks_per_sec") else None,
        "conflict_rate": conflict_rate,
        "modeled_full_parallel_speedup": modeled,
    }


spec_kicks = {}
for n in (10000, 100000):
    seq = by_name.get(f"BM_ClkSpecKicks/n:{n}/w:0/real_time")
    arms = [a for a in (spec_arm(n, w) for w in (1, 2, 4, 8)) if a]
    if seq and arms:
        spec_kicks[f"n{n}"] = {
            "seq_kicks_per_sec": seq.get("kicks_per_sec"),
            "arms": arms,
        }

spec_section = None
if spec_kicks:
    spec_section = {
        "cpus": os.cpu_count(),
        "note": ("measured ratios are wall-clock on this host; "
                 "modeled_full_parallel_speedup = w * (1 - conflict_rate) * "
                 "rate(w:1)/rate(seq), a projection for >= w free cores "
                 "from measured per-evaluation cost and commit fraction"),
        **spec_kicks,
    }

# Warm-vs-cold job setup through the solver service: identical jobs split
# by their cache_hit flag. Warm setup is the ContextCache lookup; cold
# setup is the full preprocessing build (candidate lists + construction).
jobs_warm_vs_cold = None
serve_jobs = os.path.join(out, "serve_jobs.jsonl")
if os.path.exists(serve_jobs):
    cold, warm = [], []
    for line in open(serve_jobs):
        try:
            rec = json.loads(line)
        except ValueError:
            continue
        if rec.get("type") != "job-result":
            continue
        (warm if rec.get("cache_hit") else cold).append(
            float(rec.get("setup_seconds", 0.0)))
    if cold and warm:
        cold_mean = sum(cold) / len(cold)
        warm_mean = sum(warm) / len(warm)
        jobs_warm_vs_cold = {
            "jobs": len(cold) + len(warm),
            "cold_jobs": len(cold),
            "warm_jobs": len(warm),
            "cold_setup_seconds_mean": round(cold_mean, 6),
            "warm_setup_seconds_mean": round(warm_mean, 6),
            "setup_speedup":
                round(cold_mean / warm_mean, 1) if warm_mean > 0 else None,
        }

# Preprocessing-pipeline scaling: group the prep_scale JSONL by n, derive
# end-to-end and per-phase speedups vs the 1-thread arm. "cpus" records
# what the host offered: on a starved host the measured ratios go flat and
# the record is self-explaining (same labeling as spec_kicks_vs_seq).
prep_scale = None
prep_path = os.path.join(out, "prep_scale.jsonl")
if os.path.exists(prep_path):
    rows = [json.loads(l) for l in open(prep_path) if l.strip()]
    by_n = {}
    for r in rows:
        ent = by_n.setdefault(f"n{r['n']}", {"arms": []})
        if r.get("bench") == "prep_scale" and "skipped" in r:
            ent["skipped"] = r["skipped"]
            ent["mem_available_mib"] = r.get("mem_available_mib")
            ent["mem_needed_mib"] = r.get("mem_needed_mib")
        elif r.get("bench") == "prep_scale":
            ent["arms"].append({k: r[k] for k in
                                ("threads", "kdtree_ms", "cand_ms",
                                 "construct_ms", "total_ms")})
        elif r.get("bench") == "prep_scale_partitioned":
            ent["partitioned_construct"] = {
                k: r[k] for k in ("shards", "construct_ms",
                                  "serial_construct_ms", "tour_length",
                                  "serial_tour_length", "tour_excess_pct")}
        elif r.get("bench") == "prep_scale_warm":
            ent["warm_cache_hit_ms"] = r.get("hit_ms")
    for ent in by_n.values():
        base = next((a for a in ent["arms"] if a["threads"] == 1), None)
        if base:
            for a in ent["arms"]:
                a["measured_total_speedup_vs_1t"] = round(
                    base["total_ms"] / a["total_ms"], 3) \
                    if a["total_ms"] else None
    if by_n:
        prep_scale = {
            "cpus": os.cpu_count(),
            "note": ("measured wall-clock on this host; speedups need >= "
                     "threads free cores to materialize — on a starved "
                     "host the measured curve is flat by construction"),
            **by_n,
        }

result = {
    "schema": "distclk-bench-lk-v5",
    "git": os.environ.get("GIT_DESCRIBE", "unknown"),
    "benchmark_min_time": float(os.environ.get("MIN_TIME", "0.05")),
    "benchmarks": benchmarks,
    "derived_speedups": derived,
    "determinism": determinism,
    "telemetry_overhead": telemetry,
    "spec_kicks_vs_seq": spec_section,
    "jobs_warm_vs_cold": jobs_warm_vs_cold,
    "prep_scale": prep_scale,
    "vs_seed": vs_seed,
}


def parse_cli(path):
    text = open(path).read()
    r = {}
    m = re.search(r"result\s*:\s*(\d+)(?:\s*\((\d+) kicks)?", text)
    if m:
        r["result"] = int(m.group(1))
        if m.group(2):
            r["kicks"] = int(m.group(2))
    m = re.search(r"wall time:\s*([\d.]+)s", text)
    if m:
        r["wall_seconds"] = float(m.group(1))
    return r


if os.path.exists(os.path.join(out, "clk_seed.txt")):
    clk_seed = parse_cli(os.path.join(out, "clk_seed.txt"))
    clk_new = parse_cli(os.path.join(out, "clk_new.txt"))
    lk_seed = parse_cli(os.path.join(out, "lk_seed.txt"))
    lk_new = parse_cli(os.path.join(out, "lk_new.txt"))
    vs_seed.update({
        "clk_uniform_n10000_budget10s": {
            "seed_kicks": clk_seed.get("kicks"),
            "new_kicks": clk_new.get("kicks"),
            "steps_per_sec_speedup": round(
                clk_new["kicks"] / clk_seed["kicks"], 3)
            if clk_seed.get("kicks") else None,
        },
        "lk_pass_uniform_n10000": {
            "seed_result": lk_seed.get("result"),
            "new_result": lk_new.get("result"),
            "identical_tour_length":
                lk_seed.get("result") == lk_new.get("result"),
            "seed_wall_seconds": lk_seed.get("wall_seconds"),
            "new_wall_seconds": lk_new.get("wall_seconds"),
            "wall_speedup": round(
                lk_seed["wall_seconds"] / lk_new["wall_seconds"], 3)
            if lk_new.get("wall_seconds") else None,
        },
    })

print(json.dumps(result, indent=2))
PY

echo "wrote BENCH_lk.json (git: $GIT_DESCRIBE)"
