#!/usr/bin/env bash
# Determinism/portability lint over the library sources. Zero violations
# outside tools/lint_allowlist.txt is a tier-1 requirement (scripts/tier1.sh).
set -euo pipefail
cd "$(dirname "$0")/.."
exec python3 tools/lint_determinism.py --root src --allowlist tools/lint_allowlist.txt "$@"
