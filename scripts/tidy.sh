#!/usr/bin/env bash
# clang-tidy over the deterministic core, the transport layer, and the
# concurrent runtime (job layer + observability) — the directories the
# .clang-tidy profile keeps clean, including its concurrency-* checks.
# Optional: the reference toolchain for this repo is GCC, so containers
# without clang-tidy skip this (tier-1 does not depend on it).
#
# Usage: scripts/tidy.sh [extra clang-tidy args...]
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy: clang-tidy not installed; skipping (install LLVM to enable)" >&2
  exit 0
fi

# compile_commands.json is exported by the default preset
# (CMAKE_EXPORT_COMPILE_COMMANDS ON in the top-level CMakeLists).
if [[ ! -f build/compile_commands.json ]]; then
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

mapfile -t files < <(ls src/core/*.cpp src/net/*.cpp src/svc/*.cpp src/obs/*.cpp)
echo "tidy: checking ${#files[@]} files in src/core src/net src/svc src/obs" >&2
clang-tidy -p build --quiet "$@" "${files[@]}"
echo "tidy: clean" >&2
