#!/usr/bin/env python3
"""Determinism / portability linter for the distclk sources.

The distributed CLK reproduction pins simulated trajectories by hash
(tests/test_runtime.cpp), so any construct whose behavior varies across
runs, platforms, or allocators silently breaks the fixture. This linter
walks src/ and fails on the project-banned constructs:

  banned-rng            std::rand / srand / std::random_device / time(...)
                        anywhere outside src/util/rng.h — all randomness
                        must flow through the seeded distclk::Rng.
  unordered-iteration   range-for or begin()/end() iteration over a
                        variable declared as unordered_map/unordered_set in
                        trajectory-affecting code (src/core, src/lk,
                        src/tsp, src/net): hash-table iteration order is
                        libstdc++-version- and allocation-dependent.
  unordered-decl        any unordered_map/unordered_set declaration in
                        trajectory-affecting code or src/obs. Weaker than
                        the iteration rule: keyed lookup is deterministic,
                        so these are allowlistable with a justification.
  pointer-keyed         std::map/std::set keyed by a pointer type:
                        iteration order equals allocation order, which
                        varies run to run.
  float-distance        the `float` type in distance-path code (src/tsp,
                        src/lk): TSPLIB semantics are defined on double
                        rounded to integer; float intermediates change
                        rounding across optimization levels.
  raw-new-array         `new T[n]`: unmanaged array allocations bypass the
                        bounds- and leak-checking the sanitizer presets
                        rely on; use std::vector.
  bare-sync             std::mutex / std::lock_guard / std::unique_lock /
                        std::condition_variable / ... (or <mutex>,
                        <shared_mutex>, <condition_variable> includes)
                        anywhere outside src/util/sync.h. All locking goes
                        through the capability-annotated, rank-audited
                        sync::Mutex/CondVar wrappers so that the clang
                        thread-safety build (tsa preset) and the lock-rank
                        audit see every acquisition. Not allowlistable by
                        policy: if the wrappers cannot express a pattern,
                        extend the wrappers.
  threading             std::thread/mutex/condition_variable/atomic/... (or
                        their includes) in the single-threaded search core
                        (src/lk, src/tsp) and the job layer (src/svc).
                        Thread scheduling is the easiest way to leak
                        nondeterminism into a trajectory, so every use must
                        be allowlisted with a justification explaining why
                        the construct cannot affect the result (e.g. the
                        speculative kick engine's round barrier, where all
                        RNG draws and commit decisions happen on the
                        coordinator in deterministic task order; or the
                        solver pool, whose scheduling decides only WHICH
                        job runs when — each job's trajectory stays a pure
                        function of its spec). src/core, src/net, and
                        src/obs host the runtime/transport/metrics layers
                        and legitimately use threads; they stay out of
                        scope.

Findings are suppressed by tools/lint_allowlist.txt entries of the form

  rule | path | line-substring | justification

where `path` is repo-relative and `line-substring` must occur in the
flagged source line (entries survive line-number drift). Unused entries
are reported as warnings so the allowlist cannot rot.

Exit status: 0 = clean (or all findings allowlisted), 1 = violations,
2 = usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

TRAJECTORY_DIRS = ("core", "lk", "tsp", "net")
UNORDERED_DECL_DIRS = TRAJECTORY_DIRS + ("obs",)
FLOAT_DIRS = ("tsp", "lk")
THREADING_DIRS = ("lk", "tsp", "svc")
SOURCE_SUFFIXES = {".cpp", ".h", ".hpp", ".cc"}

RNG_EXEMPT = {"util/rng.h"}

BANNED_RNG = [
    (re.compile(r"\bstd::rand\b|(?<![\w:])srand\s*\("), "std::rand/srand"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0|\))"),
     "time() wall-clock seeding"),
]

UNORDERED_TYPE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
# `std::unordered_map<K, V> name` / `... name{...}` / `... name;`
UNORDERED_DECL_NAME = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s+(\w+)\s*[;{=(]")
POINTER_KEYED = re.compile(r"\bstd::(?:map|set|multimap|multiset)\s*<[^,>]*\*")
FLOAT_TYPE = re.compile(r"(?<![\w.])float(?![\w.])")
RAW_NEW_ARRAY = re.compile(r"\bnew\s+[A-Za-z_][\w:<>, ]*\s*\[")
BARE_SYNC_EXEMPT = {"util/sync.h"}
BARE_SYNC_USE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock|condition_variable(?:_any)?)\b")
BARE_SYNC_INCLUDE = re.compile(
    r"#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>")
THREADING_USE = re.compile(
    r"\bstd::(?:jthread|thread|mutex|shared_mutex|recursive_mutex"
    r"|condition_variable(?:_any)?|atomic\w*|future|promise|async"
    r"|barrier|latch|counting_semaphore|binary_semaphore|stop_token)\b")
THREADING_INCLUDE = re.compile(
    r"#\s*include\s*<(?:thread|mutex|shared_mutex|condition_variable"
    r"|atomic|future|barrier|latch|semaphore|stop_token)>")

COMMENT_LINE = re.compile(r"^\s*(//|\*|/\*)")


class Finding:
    def __init__(self, rule: str, path: str, lineno: int, line: str,
                 message: str):
        self.rule = rule
        self.path = path
        self.lineno = lineno
        self.line = line.rstrip()
        self.message = message

    def __str__(self) -> str:
        return (f"{self.path}:{self.lineno}: [{self.rule}] {self.message}\n"
                f"    {self.line.strip()}")


def in_dirs(rel: str, dirs: tuple[str, ...]) -> bool:
    return any(rel.startswith(d + "/") for d in dirs)


def strip_strings(line: str) -> str:
    """Blank out string/char literals so their contents never match rules."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'',
                  lambda m: '"' + " " * (len(m.group(0)) - 2) + '"', line)


def lint_file(rel: str, text: str) -> list[Finding]:
    findings: list[Finding] = []
    lines = text.splitlines()

    # Pass 1: names declared with an unordered container type in this file.
    unordered_names: set[str] = set()
    for line in lines:
        if COMMENT_LINE.match(line):
            continue
        m = UNORDERED_DECL_NAME.search(strip_strings(line))
        if m:
            unordered_names.add(m.group(1))

    iter_pattern = None
    if unordered_names:
        names = "|".join(re.escape(n) for n in sorted(unordered_names))
        # `for (... : name)` or `name.begin(` / `name.end(` /
        # `name.cbegin(` / `name.cend(`.
        iter_pattern = re.compile(
            rf"for\s*\([^;)]*:\s*&?\s*(?:{names})\s*\)"
            rf"|\b(?:{names})\s*\.\s*c?(?:begin|end|rbegin|rend)\s*\(")

    for lineno, raw in enumerate(lines, start=1):
        if COMMENT_LINE.match(raw):
            continue
        line = strip_strings(raw)

        if rel not in RNG_EXEMPT:
            for pattern, what in BANNED_RNG:
                if pattern.search(line):
                    findings.append(Finding(
                        "banned-rng", rel, lineno, raw,
                        f"{what}: all randomness must flow through the "
                        "seeded distclk::Rng (src/util/rng.h)"))

        if (UNORDERED_TYPE.search(line) and in_dirs(rel, UNORDERED_DECL_DIRS)
                and not line.lstrip().startswith("#")):
            findings.append(Finding(
                "unordered-decl", rel, lineno, raw,
                "unordered container in determinism-sensitive code; "
                "allowlist with a justification or use an ordered/indexed "
                "structure"))

        if (iter_pattern and in_dirs(rel, TRAJECTORY_DIRS)
                and iter_pattern.search(line)):
            findings.append(Finding(
                "unordered-iteration", rel, lineno, raw,
                "iteration over a hash container in trajectory-affecting "
                "code: order is allocator/libstdc++ dependent"))

        if POINTER_KEYED.search(line):
            findings.append(Finding(
                "pointer-keyed", rel, lineno, raw,
                "ordered container keyed by pointer: iteration order "
                "equals allocation order"))

        if FLOAT_TYPE.search(line) and in_dirs(rel, FLOAT_DIRS):
            findings.append(Finding(
                "float-distance", rel, lineno, raw,
                "float in distance-path code: TSPLIB rounding is defined "
                "on double"))

        if RAW_NEW_ARRAY.search(line):
            findings.append(Finding(
                "raw-new-array", rel, lineno, raw,
                "raw new[]: use std::vector so sanitizer presets see the "
                "allocation"))

        if (rel not in BARE_SYNC_EXEMPT
                and (BARE_SYNC_USE.search(line)
                     or BARE_SYNC_INCLUDE.search(line))):
            findings.append(Finding(
                "bare-sync", rel, lineno, raw,
                "raw standard-library lock primitive: use the capability-"
                "annotated, rank-audited wrappers in util/sync.h"))

        if (in_dirs(rel, THREADING_DIRS)
                and (THREADING_USE.search(line)
                     or THREADING_INCLUDE.search(line))):
            findings.append(Finding(
                "threading", rel, lineno, raw,
                "threading primitive in the search core: justify (in the "
                "allowlist) why scheduling cannot leak into the trajectory"))

    return findings


class AllowlistEntry:
    def __init__(self, rule: str, path: str, substring: str,
                 justification: str, lineno: int):
        self.rule = rule
        self.path = path
        self.substring = substring
        self.justification = justification
        self.lineno = lineno
        self.used = False

    def matches(self, f: Finding) -> bool:
        return (self.rule == f.rule and self.path == f.path
                and self.substring in f.line)


def load_allowlist(path: Path) -> list[AllowlistEntry]:
    entries: list[AllowlistEntry] = []
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split("|")]
        if len(parts) != 4 or not all(parts):
            raise SystemExit(
                f"{path}:{lineno}: malformed allowlist entry (expected "
                "'rule | path | line-substring | justification')")
        entries.append(AllowlistEntry(*parts, lineno))
    return entries


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default="src",
                    help="source tree to lint (default: src)")
    ap.add_argument("--allowlist", default="tools/lint_allowlist.txt")
    args = ap.parse_args()

    root = Path(args.root)
    if not root.is_dir():
        print(f"lint_determinism: no such directory: {root}", file=sys.stderr)
        return 2
    allowlist = load_allowlist(Path(args.allowlist))

    files = sorted(p for p in root.rglob("*")
                   if p.suffix in SOURCE_SUFFIXES and p.is_file())
    violations: list[Finding] = []
    suppressed = 0
    for path in files:
        rel = path.relative_to(root).as_posix()
        for f in lint_file(rel, path.read_text(errors="replace")):
            allowed = False
            for entry in allowlist:
                if entry.matches(f):
                    entry.used = True
                    allowed = True
            if allowed:
                suppressed += 1
            else:
                violations.append(f)

    for f in violations:
        print(f)
    stale = [e for e in allowlist if not e.used]
    for e in stale:
        print(f"warning: {args.allowlist}:{e.lineno}: unused allowlist entry "
              f"({e.rule} | {e.path})", file=sys.stderr)

    print(f"lint_determinism: {len(files)} files, "
          f"{len(violations)} violation(s), {suppressed} allowlisted",
          file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
