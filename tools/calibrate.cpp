// Calibration tool: establishes presumed optima for the synthetic
// stand-ins by running long cooperative DistCLK searches (complete
// topology, generous budget). Paste the printed lines into
// src/experiments/instances.cpp's registry to pin full-scale targets.
//
//   calibrate [--seconds S] [--nodes K] [--max-n N] [instance ...]
#include <cstdio>
#include <string>
#include <vector>

#include "experiments/harness.h"

using namespace distclk;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const double seconds = args.getDouble("seconds", 5.0);
  const int nodes = args.getInt("nodes", 8);
  const int maxN = args.getInt("max-n", 5000);

  std::vector<std::string> wanted;
  for (int i = 1; i < argc; ++i)
    if (argv[i][0] != '-') wanted.emplace_back(argv[i]);

  for (const auto& spec : paperTestbed()) {
    if (!wanted.empty() &&
        std::find(wanted.begin(), wanted.end(), spec.paperName) ==
            wanted.end())
      continue;
    if (wanted.empty() && spec.n > maxN) continue;
    const Instance inst = makeInstance(spec);
    const CandidateLists cand(inst, 10);
    SimOptions opt;
    opt.nodes = nodes;
    opt.topology = TopologyKind::kComplete;  // fastest spread for calibration
    opt.timeLimitPerNode = seconds;
    opt.seed = 424243;
    const SimResult res = runSimulatedDistClk(inst, cand, opt);
    std::printf("%-12s n=%-6d presumedOptimum <= %lld  (steps=%lld)\n",
                spec.standinName.c_str(), spec.n,
                static_cast<long long>(res.bestLength),
                static_cast<long long>(res.totalSteps));
  }
  return 0;
}
