// Solver-as-a-service daemon: reads JSONL job requests, runs them on a
// shared SolverPool (bounded workers + priority/deadline queue + LRU
// InstanceContext cache), and streams JSONL job lifecycle records back.
// This is the multi-tenant entry point ROADMAP's "solver-as-a-service"
// item asks for: many jobs, one process, shared preprocessing.
//
//   distclk_serve --jobs FILE [options]
//     --jobs FILE           JSONL job stream ('-' = stdin), one request
//                           per line (see below)
//     --out FILE            JSONL response stream ('-' = stdout, default)
//     --workers W           pool worker threads (default 2)
//     --queue-depth D       max queued jobs, 0 = unbounded (default 0);
//                           overflow submissions are rejected (backpressure)
//     --cache C             InstanceContext LRU capacity (default 8)
//     --prep-threads T      pool-wide preprocessing thread budget: each
//                           job's requested build parallelism is clamped
//                           to what's left of T while its context builds
//                           (default 1 = serial builds)
//     --trace F.jsonl       shared JSONL trace: each job appends one
//                           contiguous run bracket plus a "job" record
//                           (read with trace_report --jobs / --validate)
//     --metrics-out FILE    Prometheus-style snapshot of the svc.* SLO
//                           metrics, atomically renamed into FILE after
//                           every job result and at exit
//
// Request records (one JSON object per line):
//   {"id":"a", "gen":"uniform", "n":1000, "gen_seed":1, "nodes":8,
//    "seconds":0.5, "seed":7, "priority":2, "deadline_seconds":10}
//     id               required, unique per process
//     file | gen       TSPLIB path, or generator family
//                      (uniform|clustered|drill|grid|road; default uniform)
//     n, gen_seed      generator size/seed (default 1000 / 1)
//     candidates       candidate-list size (default 10)
//     quadrant         true = quadrant candidate lists
//     prep_threads     requested preprocessing build parallelism (clamped
//                      to the pool's --prep-threads budget; output is
//                      byte-identical for any value)
//     prep_partition   Hilbert-partitioned construction shard count
//                      (changes the construction tour; part of the
//                      context cache key)
//     nodes, topology, seconds, seed, kick, runtime, modeled_work, target
//                      RunConfig fields, same semantics as distclk_cli
//     priority         higher runs first (default 0; FIFO within a level)
//     deadline_seconds abandon the job this long after submission (<=0 off)
//   {"cancel":"a"}     cancel a queued or running job by id
//
// Response records: job-accepted, job-rejected, job-progress (streamed
// incremental bests), job-result (terminal state + SLO latency split), and
// one final serve-stats (counts + context-cache hit/miss/build/eviction).
//
// Identical instances dedupe through the context cache by content hash:
// two jobs generating the same instance share one preprocessing build, so
// warm jobs report setup_seconds near zero and cache_hit=true.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "experiments/harness.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prom.h"
#include "obs/trace_sink.h"
#include "svc/solver_pool.h"
#include "tsp/gen.h"
#include "tsp/tsplib.h"
#include "util/sync.h"

using namespace distclk;

namespace {

bool jsonBool(const obs::JsonValue& v, std::string_view key,
              bool def = false) {
  const obs::JsonValue* f = v.find(key);
  if (f == nullptr) return def;
  return f->kind == obs::JsonValue::Kind::kBool && f->boolean;
}

Instance makeInstance(const obs::JsonValue& v) {
  const std::string file = v.str("file");
  if (!file.empty()) return loadTsplibFile(file);
  const std::string family = v.str("gen", "uniform");
  const int n = static_cast<int>(v.integer("n", 1000));
  const auto seed = static_cast<std::uint64_t>(v.integer("gen_seed", 1));
  if (family == "uniform") return uniformSquare("serve-uniform", n, seed);
  if (family == "clustered") return clustered("serve-clustered", n, 10, seed);
  if (family == "drill") return drillPlate("serve-drill", n, seed);
  if (family == "grid") return perforatedGrid("serve-grid", n, seed);
  if (family == "road") return roadNetwork("serve-road", n, seed);
  throw std::invalid_argument("unknown gen family: " + family);
}

svc::JobSpec makeSpec(const obs::JsonValue& v) {
  svc::JobSpec spec;
  spec.id = v.str("id");
  spec.instance = std::make_shared<const Instance>(makeInstance(v));
  spec.preprocess.candidateK =
      static_cast<int>(v.integer("candidates", spec.preprocess.candidateK));
  if (jsonBool(v, "quadrant"))
    spec.preprocess.kind = CandidateLists::Kind::kQuadrant;
  spec.preprocess.prepThreads = static_cast<int>(
      v.integer("prep_threads", spec.preprocess.prepThreads));
  spec.preprocess.partitionShards = static_cast<int>(
      v.integer("prep_partition", spec.preprocess.partitionShards));
  RunConfig& cfg = spec.run;
  cfg.runtime = runtimeKindFromString(v.str("runtime", "sim"));
  cfg.nodes = static_cast<int>(v.integer("nodes", cfg.nodes));
  cfg.topology = topologyFromString(v.str("topology", "hypercube"));
  cfg.node = scaledNodeParams(*spec.instance);
  cfg.node.clkKick = kickStrategyFromString(v.str("kick", "Random-walk"));
  cfg.node.targetLength = v.integer("target", 0);
  cfg.timeLimitPerNode = v.num("seconds", 2.0);
  cfg.seed = static_cast<std::uint64_t>(v.integer("seed", 1));
  const double modeledWork = v.num("modeled_work", 0.0);
  if (modeledWork > 0.0) {
    cfg.costModel = CostModel::kModeled;
    cfg.modeledWorkPerSecond = modeledWork;
  }
  spec.priority = static_cast<int>(v.integer("priority", 0));
  spec.deadlineSeconds = v.num("deadline_seconds", 0.0);
  return spec;
}

/// Streams lifecycle records for every job to one JSONL ostream. Called
/// from pool worker threads; `mu_` serializes lines and the tallies.
class ServeSink : public svc::JobSink {
 public:
  ServeSink(std::ostream& out, svc::SolverPool& pool,
            obs::MetricsRegistry* metrics, std::string metricsOut)
      : out_(out), pool_(pool), metrics_(metrics),
        metricsOut_(std::move(metricsOut)) {}

  void onProgress(const svc::JobProgress& p) override {
    obs::JsonObject o;
    o.field("type", "job-progress");
    o.field("t", pool_.nowSeconds());
    o.field("id", p.id);
    o.field("run_t", p.time);
    o.field("best", p.best);
    writeLine(o.str());
  }

  void onResult(const svc::JobResult& r) override {
    obs::JsonObject o;
    o.field("type", "job-result");
    o.field("t", pool_.nowSeconds());
    o.field("id", r.id);
    o.field("state", svc::toString(r.state));
    o.field("priority", r.priority);
    o.field("best", r.bestLength);
    o.field("cache_hit", r.cacheHit);
    o.field("queue_seconds", r.queueSeconds);
    o.field("setup_seconds", r.setupSeconds);
    o.field("solve_seconds", r.solveSeconds);
    if (!r.cacheHit && r.prepThreads > 0) {
      o.field("prep_kdtree_ms", r.prepKdtreeMs);
      o.field("prep_cand_ms", r.prepCandMs);
      o.field("prep_construct_ms", r.prepConstructMs);
      o.field("prep_threads", r.prepThreads);
    }
    o.field("steps", r.totalSteps);
    o.field("messages", r.messagesSent);
    o.field("hit_target", r.hitTarget);
    if (!r.error.empty()) o.field("error", r.error);
    {
      const sync::MutexLock lock(mu_);
      out_ << o.str() << '\n';
      out_.flush();
      switch (r.state) {
        case svc::JobState::kCompleted: ++completed_; break;
        case svc::JobState::kCancelled: ++cancelled_; break;
        case svc::JobState::kExpired: ++expired_; break;
        default: ++failed_; break;
      }
    }
    exportMetrics();
  }

  void exportMetrics() {
    if (metrics_ == nullptr || metricsOut_.empty()) return;
    obs::writePrometheusSnapshot(metricsOut_, metrics_->snapshot(),
                                 pool_.nowSeconds());
  }

  void writeLine(const std::string& line) {
    const sync::MutexLock lock(mu_);
    out_ << line << '\n';
    out_.flush();
  }

  int completed() const {
    const sync::MutexLock lock(mu_);
    return completed_;
  }
  int cancelled() const {
    const sync::MutexLock lock(mu_);
    return cancelled_;
  }
  int expired() const {
    const sync::MutexLock lock(mu_);
    return expired_;
  }
  int failed() const {
    const sync::MutexLock lock(mu_);
    return failed_;
  }

 private:
  std::ostream& out_;
  svc::SolverPool& pool_;
  obs::MetricsRegistry* metrics_;
  std::string metricsOut_;
  /// Serializes response lines and the terminal-state tallies.
  mutable sync::Mutex mu_{sync::LockRank::kServeOut, "serve.out"};
  int completed_ DISTCLK_GUARDED_BY(mu_) = 0;
  int cancelled_ DISTCLK_GUARDED_BY(mu_) = 0;
  int expired_ DISTCLK_GUARDED_BY(mu_) = 0;
  int failed_ DISTCLK_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::string jobsPath = args.getString("jobs", "");
  if (jobsPath.empty()) {
    std::fprintf(stderr,
                 "usage: distclk_serve --jobs FILE [--out FILE] [--workers W]"
                 " [--queue-depth D] [--cache C] [--prep-threads T]"
                 " [--trace F.jsonl] [--metrics-out FILE]\n");
    return 1;
  }

  std::ifstream jobsFile;
  std::istream* jobs = &std::cin;
  if (jobsPath != "-") {
    jobsFile.open(jobsPath);
    if (!jobsFile) {
      std::fprintf(stderr, "cannot open %s\n", jobsPath.c_str());
      return 1;
    }
    jobs = &jobsFile;
  }
  const std::string outPath = args.getString("out", "-");
  std::ofstream outFile;
  std::ostream* out = &std::cout;
  if (outPath != "-") {
    outFile.open(outPath);
    if (!outFile) {
      std::fprintf(stderr, "cannot open %s\n", outPath.c_str());
      return 1;
    }
    out = &outFile;
  }

  obs::MetricsRegistry metrics;
  std::optional<obs::JsonlTraceSink> trace;
  svc::SolverPoolOptions opts;
  opts.workers = args.getInt("workers", 2);
  opts.maxQueueDepth = static_cast<std::size_t>(args.getInt("queue-depth", 0));
  opts.contextCacheCapacity =
      static_cast<std::size_t>(args.getInt("cache", 8));
  opts.prepThreads = args.getInt("prep-threads", 1);
  opts.metrics = &metrics;
  const std::string tracePath = args.getString("trace", "");
  if (!tracePath.empty()) {
    trace.emplace(tracePath);
    opts.trace = &*trace;
  }
  svc::SolverPool pool(opts);
  ServeSink sink(*out, pool, &metrics, args.getString("metrics-out", ""));

  int submitted = 0;
  int rejected = 0;
  std::string line;
  std::int64_t lineNo = 0;
  while (std::getline(*jobs, line)) {
    ++lineNo;
    if (line.empty()) continue;
    obs::JsonValue v;
    try {
      v = obs::parseJson(line);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "jobs line %lld: unparseable JSON (%s)\n",
                   static_cast<long long>(lineNo), e.what());
      return 1;
    }
    const std::string cancelId = v.str("cancel");
    if (!cancelId.empty()) {
      const bool found = pool.cancel(cancelId);
      obs::JsonObject o;
      o.field("type", "cancel-requested");
      o.field("t", pool.nowSeconds());
      o.field("id", cancelId);
      o.field("found", found);
      sink.writeLine(o.str());
      continue;
    }
    std::string id = v.str("id");
    std::string reason;
    bool accepted = false;
    try {
      svc::JobSpec spec = makeSpec(v);
      id = spec.id;
      accepted = pool.submit(std::move(spec), &sink);
      if (!accepted) reason = "queue full or shutting down";
    } catch (const std::exception& e) {
      reason = e.what();
    }
    obs::JsonObject o;
    o.field("type", accepted ? "job-accepted" : "job-rejected");
    o.field("t", pool.nowSeconds());
    o.field("id", id);
    if (accepted) {
      ++submitted;
      o.field("queue_depth", static_cast<std::int64_t>(pool.queueDepth()));
    } else {
      ++rejected;
      o.field("reason", reason);
    }
    sink.writeLine(o.str());
  }

  pool.drain();
  pool.shutdown();

  const ContextCache::Stats cacheStats = pool.contexts().stats();
  obs::JsonObject stats;
  stats.field("type", "serve-stats");
  stats.field("t", pool.nowSeconds());
  stats.field("submitted", submitted);
  stats.field("rejected", rejected);
  stats.field("completed", sink.completed());
  stats.field("cancelled", sink.cancelled());
  stats.field("expired", sink.expired());
  stats.field("failed", sink.failed());
  stats.field("cache_hits", cacheStats.hits);
  stats.field("cache_misses", cacheStats.misses);
  stats.field("cache_builds", cacheStats.builds);
  stats.field("cache_evictions", cacheStats.evictions);
  sink.writeLine(stats.str());
  sink.exportMetrics();
  return 0;
}
