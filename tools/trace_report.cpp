// Reads a JSONL run trace (distclk_cli --trace, or any driver with a
// JsonlTraceSink attached) and renders the per-node behavior the paper
// narrates in §4: improvement timelines, broadcast/receive ratios, restart
// depths, and time-to-quality lookups on the reconstructed global anytime
// curve. The causal views reconstruct the message graph from the wire-v3
// stamps (msg-sent/msg-recv/adopt records); all analysis lives in
// src/obs/report.* so tests exercise it in-process.
//
//   trace_report RUN.jsonl [view] [--levels 0.05,0.02,0.01,0.005,0]
//     (no view)            per-node summary + time-to-quality + metrics
//     --propagation        per-improvement broadcast tree: origin, hop
//                          depth, latency to 50%/90%/full coverage
//     --provenance         which node each node's final tour descends from
//     --convergence        time-to-within-x% per node and global, plus any
//                          stall-detector events
//     --validate           schema + causal-consistency check; exit status
//                          reports the verdict. Tolerates multi-run streams
//                          (a serve daemon appends one run bracket per job)
//                          and checks per-run bracketing/causality
//     --jobs               service-layer job table (distclk_serve traces):
//                          per-job state, queue/setup/solve split, cache
//                          hits, plus SLO aggregates; falls back to a run-
//                          bracket summary when no job records are present
//     --levels L1,L2,...   quality levels (fraction over final best) for
//                          the time-to-quality / convergence tables
//   trace_report --compare A.jsonl B.jsonl [--levels ...]
//                          side-by-side time-to-quality of two runs
//
// Exits non-zero when the trace contains unparseable or unknown lines
// (they are skipped and counted, and the count is reported) — a truncated
// trace should fail loudly in CI, not silently under-report.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/trace.h"
#include "obs/json.h"
#include "obs/report.h"
#include "util/table.h"

using namespace distclk;

namespace {

struct NodeSummary {
  int improvements = 0;          ///< locally produced improvements
  int toursReceived = 0;         ///< improving tours adopted from neighbors
  int broadcasts = 0;
  int restarts = 0;
  int stalls = 0;                ///< stall-detector episodes
  double joinedAt = -1.0;        ///< churn: when the node entered (<0: t=0)
  double failedAt = -1.0;        ///< injected failure time (<0: none)
  std::vector<std::int64_t> restartDepths;  ///< NumNoImprovements at restart
  int maxPerturbLevel = 1;
  std::int64_t bestLength = -1;
  double bestTime = 0.0;
};

std::map<int, NodeSummary> summarizeNodes(const obs::LoadedTrace& trace) {
  std::map<int, NodeSummary> nodes;
  for (const NodeEvent& ev : trace.events) {
    NodeSummary& node = nodes[ev.node];
    switch (ev.type) {
      case NodeEventType::kInitialTour:
        break;
      case NodeEventType::kImprovement:
        ++node.improvements;
        break;
      case NodeEventType::kBroadcastSent:
        ++node.broadcasts;
        break;
      case NodeEventType::kTourReceived:
        ++node.toursReceived;
        break;
      case NodeEventType::kPerturbationLevel:
        node.maxPerturbLevel =
            std::max(node.maxPerturbLevel, static_cast<int>(ev.value));
        break;
      case NodeEventType::kRestart:
        ++node.restarts;
        node.restartDepths.push_back(ev.value);
        break;
      case NodeEventType::kNodeJoined:
        node.joinedAt = ev.time;
        break;
      case NodeEventType::kNodeFailed:
        node.failedAt = ev.time;
        break;
      case NodeEventType::kStall:
        ++node.stalls;
        break;
      case NodeEventType::kTargetReached:
        break;
    }
    // Track each node's best-seen length from length-carrying events.
    if (ev.type == NodeEventType::kInitialTour ||
        ev.type == NodeEventType::kImprovement ||
        ev.type == NodeEventType::kTourReceived ||
        ev.type == NodeEventType::kBroadcastSent) {
      if (node.bestLength < 0 || ev.value < node.bestLength) {
        node.bestLength = ev.value;
        node.bestTime = ev.time;
      }
    }
  }
  return nodes;
}

std::string fmtCount(std::int64_t v) { return std::to_string(v); }

std::string fmtLatency(double seconds) {
  return seconds < 0 ? "-" : fmt(seconds, 3) + "s";
}

std::string fmtReach(double seconds) {
  return std::isinf(seconds) ? "never" : fmt(seconds, 3) + "s";
}

void printSummary(const obs::LoadedTrace& trace,
                  const std::vector<double>& levels) {
  if (trace.meta) {
    const auto& m = *trace.meta;
    std::printf("run      : %s (n=%lld) — %s, %lld nodes, %s topology\n",
                m.str("instance").c_str(),
                static_cast<long long>(m.integer("n")),
                m.str("algorithm").c_str(),
                static_cast<long long>(m.integer("nodes")),
                m.str("topology").c_str());
    std::printf("params   : seed=%lld c_v=%lld c_r=%lld kick=%s "
                "budget=%.3gs/node clock=%s git=%s\n",
                static_cast<long long>(m.integer("seed")),
                static_cast<long long>(m.integer("cv")),
                static_cast<long long>(m.integer("cr")), m.str("kick").c_str(),
                m.num("time_limit_per_node"), m.str("clock").c_str(),
                m.str("git").c_str());
    // Traces predating the runtime layer carry neither field; stay quiet.
    if (m.find("runtime") != nullptr)
      std::printf("runtime  : %s (wire v%lld)\n", m.str("runtime").c_str(),
                  static_cast<long long>(m.integer("wire_version")));
  }
  std::printf("records  : %d parsed, %d skipped, %zu events, %zu stamped "
              "sends, %zu receives\n\n",
              trace.parsedLines, trace.badLines, trace.events.size(),
              trace.sent.size(), trace.recv.size());

  // Per-node summary: the §4.2.1 narrative in table form.
  const std::map<int, NodeSummary> nodes = summarizeNodes(trace);
  Table nodeTable({"node", "improve", "recv", "bcast", "recv/bcast",
                   "restarts", "max-perturb", "best", "best@t", "churn"});
  for (const auto& [id, node] : nodes) {
    const double ratio =
        node.broadcasts > 0
            ? static_cast<double>(node.toursReceived) / node.broadcasts
            : 0.0;
    std::string churn;
    if (node.joinedAt >= 0) churn += "join@" + fmt(node.joinedAt, 2);
    if (node.failedAt >= 0) {
      if (!churn.empty()) churn += " ";
      churn += "fail@" + fmt(node.failedAt, 2);
    }
    if (node.stalls > 0) {
      if (!churn.empty()) churn += " ";
      churn += "stallx" + std::to_string(node.stalls);
    }
    if (churn.empty()) churn = "-";
    nodeTable.addRow({std::to_string(id), fmtCount(node.improvements),
                      fmtCount(node.toursReceived), fmtCount(node.broadcasts),
                      fmt(ratio, 2), fmtCount(node.restarts),
                      fmtCount(node.maxPerturbLevel),
                      node.bestLength >= 0 ? std::to_string(node.bestLength)
                                           : "-",
                      fmt(node.bestTime, 3), churn});
  }
  std::printf("Per-node summary\n");
  nodeTable.print(std::cout);

  // Improvement timeline: global best vs time, one row per level.
  const AnytimeCurve curve = obs::globalBestCurve(trace);
  if (!curve.empty()) {
    const std::int64_t finalBest = curve.back().length;
    Table quality({"level", "target", "time-to-reach"});
    for (const double level : levels) {
      const auto target = static_cast<std::int64_t>(
          std::ceil(double(finalBest) * (1.0 + level)));
      quality.addRow({fmtPct(level, 1), std::to_string(target),
                      fmtReach(timeToReach(curve, target))});
    }
    std::printf("\nTime to quality (vs final best %lld, %zu improvements)\n",
                static_cast<long long>(finalBest), curve.size());
    quality.print(std::cout);
  }

  // Restart histogram: how deep stagnation ran before each restart.
  bool anyRestart = false;
  Table restarts({"node", "restarts", "depth-min", "depth-mean", "depth-max"});
  for (const auto& [id, node] : nodes) {
    if (node.restartDepths.empty()) continue;
    anyRestart = true;
    const auto [minIt, maxIt] = std::minmax_element(
        node.restartDepths.begin(), node.restartDepths.end());
    double sum = 0;
    for (const auto d : node.restartDepths) sum += double(d);
    restarts.addRow({std::to_string(id),
                     fmtCount(std::int64_t(node.restartDepths.size())),
                     std::to_string(*minIt),
                     fmt(sum / double(node.restartDepths.size()), 1),
                     std::to_string(*maxIt)});
  }
  if (anyRestart) {
    std::printf("\nRestart depths (NumNoImprovements when c_r fired)\n");
    restarts.print(std::cout);
  }

  // Final metric snapshot: counters plus histogram means.
  if (trace.lastMetrics) {
    const obs::JsonValue* metrics = trace.lastMetrics->find("metrics");
    if (metrics != nullptr) {
      std::printf("\nFinal metrics (t=%.3fs)\n", trace.lastMetrics->num("t"));
      Table counters({"counter", "value"});
      if (const obs::JsonValue* c = metrics->find("counters"))
        for (const auto& [name, v] : c->object)
          counters.addRow({name, std::to_string(
                                     static_cast<std::int64_t>(v.number))});
      counters.print(std::cout);
      Table hists({"histogram", "count", "mean", "min", "max"});
      bool anyHist = false;
      if (const obs::JsonValue* h = metrics->find("histograms")) {
        for (const auto& [name, v] : h->object) {
          const double count = v.num("count");
          if (count <= 0) continue;
          anyHist = true;
          hists.addRow({name, fmtCount(static_cast<std::int64_t>(count)),
                        fmt(v.num("sum") / count, 6), fmt(v.num("min"), 6),
                        fmt(v.num("max"), 6)});
        }
      }
      if (anyHist) {
        std::printf("\n");
        hists.print(std::cout);
      }
      // LK throughput, from the applied/rewound flip split: search steps
      // per second of summed compute time across all nodes.
      if (const obs::JsonValue* c = metrics->find("counters")) {
        if (const obs::JsonValue* flips = c->find("node.lk_flips")) {
          const obs::JsonValue* undone = c->find("node.lk_undone_flips");
          const double applied = flips->number;
          const double rewound = undone != nullptr ? undone->number : 0.0;
          const double steps = applied + rewound;
          double computeSum = 0.0;
          if (const obs::JsonValue* h = metrics->find("histograms"))
            if (const obs::JsonValue* cs = h->find("node.compute_seconds"))
              computeSum = cs->num("sum");
          std::printf("\nLK work  : %.0f applied + %.0f rewound flips",
                      applied, rewound);
          if (steps > 0)
            std::printf(" (%.1f%% applied)", 100.0 * applied / steps);
          if (computeSum > 0)
            std::printf(", %.3g steps/s over %.3fs compute",
                        steps / computeSum, computeSum);
          std::printf("\n");
        }
        // Speculation summary (only for runs with --spec-workers > 0: the
        // counters are absent or zero otherwise, keeping old reports
        // byte-identical).
        if (const obs::JsonValue* spec = c->find("node.spec_speculated")) {
          const double speculated = spec->number;
          if (speculated > 0) {
            const obs::JsonValue* committed = c->find("node.spec_committed");
            const obs::JsonValue* conflicts = c->find("node.spec_conflicts");
            const double won = committed != nullptr ? committed->number : 0.0;
            const double lost = conflicts != nullptr ? conflicts->number : 0.0;
            std::printf("Spec     : %.0f evaluated, %.0f committed, "
                        "%.0f conflicts (%.1f%% conflict rate)\n",
                        speculated, won, lost, 100.0 * lost / speculated);
          }
        }
      }
    }
  }

  if (trace.runEnd) {
    const auto& e = *trace.runEnd;
    const obs::JsonValue* hit = e.find("hit_target");
    std::printf("\nrun end  : best=%lld steps=%lld messages=%lld "
                "hit-target=%s at t=%.3fs\n",
                static_cast<long long>(e.integer("best_length")),
                static_cast<long long>(e.integer("total_steps")),
                static_cast<long long>(e.integer("messages_sent")),
                hit != nullptr && hit->boolean ? "yes" : "no", e.num("t"));
  }
}

// Deterministic tables only (no run-meta/git header): this view is pinned
// by the golden-file ctest.
void printPropagation(const obs::LoadedTrace& trace) {
  const std::vector<obs::PropagationSummary> summaries =
      obs::propagationSummaries(trace);
  std::printf("Propagation (%zu improvements, %d nodes)\n", summaries.size(),
              trace.nodeCount());
  Table table({"improvement", "origin", "t0", "reached", "max-hops", "t50",
               "t90", "t-full"});
  for (const obs::PropagationSummary& s : summaries) {
    table.addRow({std::to_string(s.len), std::to_string(s.origin),
                  fmt(s.t0, 3),
                  std::to_string(s.reached) + "/" + std::to_string(s.total),
                  std::to_string(s.maxHops), fmtLatency(s.t50),
                  fmtLatency(s.t90), fmtLatency(s.tFull)});
  }
  table.print(std::cout);
}

void printProvenance(const obs::LoadedTrace& trace) {
  const std::vector<obs::ProvenanceRow> rows = obs::provenanceRows(trace);
  std::printf("Provenance of final tours (%d nodes)\n", trace.nodeCount());
  Table table({"node", "final", "origin", "adoptions", "lineage"});
  for (const obs::ProvenanceRow& row : rows) {
    table.addRow({std::to_string(row.node), std::to_string(row.finalLen),
                  std::to_string(row.origin), std::to_string(row.chainLen),
                  row.chain});
  }
  table.print(std::cout);
}

// Deterministic tables only — also golden-pinned.
void printConvergence(const obs::LoadedTrace& trace,
                      const std::vector<double>& levels) {
  const obs::ConvergenceReport report =
      obs::convergenceReport(trace, levels);
  std::printf("Convergence to within levels of final best %lld\n",
              static_cast<long long>(report.finalBest));
  std::vector<std::string> header{"node"};
  for (const double level : levels) header.push_back(fmtPct(level, 1));
  Table table(header);
  {
    std::vector<std::string> row{"global"};
    for (const double t : report.globalTimes) row.push_back(fmtReach(t));
    table.addRow(row);
  }
  for (const auto& [node, times] : report.nodeTimes) {
    std::vector<std::string> row{std::to_string(node)};
    for (const double t : times) row.push_back(fmtReach(t));
    table.addRow(row);
  }
  table.print(std::cout);

  if (!report.stalls.empty()) {
    std::printf("\nStall events (no improvement for the configured budget)\n");
    Table stalls({"t", "node", "stalled-for"});
    for (const auto& s : report.stalls)
      stalls.addRow({fmt(s.t, 3), std::to_string(s.node),
                     fmt(s.stalledSeconds, 3) + "s"});
    stalls.print(std::cout);
  }
}

// Service-layer view: one row per job record (distclk_serve appends one
// after each job's run bracket) plus SLO aggregates over completed jobs.
void printJobs(const obs::LoadedTrace& trace) {
  if (trace.jobs.empty()) {
    // No job records — still useful on a plain multi-run stream: show the
    // run brackets so "what did this file capture" has an answer.
    std::printf("No job records; %zu run bracket(s) in stream\n",
                trace.runs.size());
    if (trace.runs.empty()) return;
    Table runsTable({"run", "job", "instance", "nodes", "best", "ended"});
    for (std::size_t i = 0; i < trace.runs.size(); ++i) {
      const obs::TraceRun& run = trace.runs[i];
      std::string job = "-";
      std::string instance = "-";
      std::string nodes = "-";
      if (run.meta.has_value()) {
        const std::string j = run.meta->str("job");
        if (!j.empty()) job = j;
        instance = run.meta->str("instance");
        nodes = std::to_string(run.meta->integer("nodes"));
      }
      runsTable.addRow(
          {std::to_string(i), job, instance, nodes,
           run.runEnd.has_value()
               ? std::to_string(run.runEnd->integer("best_length"))
               : "-",
           run.runEnd.has_value() ? "yes" : "no"});
    }
    runsTable.print(std::cout);
    return;
  }

  std::printf("Jobs (%zu records over %zu run brackets)\n", trace.jobs.size(),
              trace.runs.size());
  Table table({"job", "state", "prio", "best", "queue", "setup", "solve",
               "latency", "cache", "prep"});
  for (const obs::TraceJob& j : trace.jobs) {
    const double prepMs = j.prepKdtreeMs + j.prepCandMs + j.prepConstructMs;
    table.addRow({j.id, j.state, std::to_string(j.priority),
                  j.best > 0 ? std::to_string(j.best) : "-",
                  fmt(j.queueSeconds, 3) + "s", fmt(j.setupSeconds, 3) + "s",
                  fmt(j.solveSeconds, 3) + "s",
                  fmt(j.queueSeconds + j.setupSeconds + j.solveSeconds, 3) +
                      "s",
                  j.cacheHit ? "hit" : "miss",
                  prepMs > 0.0 ? fmt(prepMs, 1) + "ms" : "-"});
  }
  table.print(std::cout);

  const obs::JobsReport report = obs::jobsReport(trace);
  std::printf("\nSLO      : %d jobs — %d completed, %d cancelled, %d expired,"
              " %d failed\n",
              report.total, report.completed, report.cancelled, report.expired,
              report.failed);
  std::printf("cache    : %d/%d context cache hits\n", report.cacheHits,
              report.total);
  if (report.completed > 0) {
    std::printf("completed: mean queue %.3fs, mean setup %.3fs, mean solve "
                "%.3fs, max latency %.3fs\n",
                report.meanQueueSeconds, report.meanSetupSeconds,
                report.meanSolveSeconds, report.maxLatencySeconds);
  }
}

void printCompare(const std::string& pathA, const obs::LoadedTrace& a,
                  const std::string& pathB, const obs::LoadedTrace& b,
                  const std::vector<double>& levels) {
  const AnytimeCurve curveA = obs::globalBestCurve(a);
  const AnytimeCurve curveB = obs::globalBestCurve(b);
  const std::int64_t bestA = curveA.empty() ? 0 : curveA.back().length;
  const std::int64_t bestB = curveB.empty() ? 0 : curveB.back().length;
  std::printf("A: %s (final best %lld, %zu improvements)\n", pathA.c_str(),
              static_cast<long long>(bestA), curveA.size());
  std::printf("B: %s (final best %lld, %zu improvements)\n\n", pathB.c_str(),
              static_cast<long long>(bestB), curveB.size());

  // Shared targets from the better final tour, so both runs chase the same
  // absolute quality (comparing times at run-relative targets would flatter
  // the weaker run).
  const std::int64_t reference = std::min(bestA, bestB);
  Table table({"level", "target", "time-A", "time-B"});
  for (const double level : levels) {
    const auto target = static_cast<std::int64_t>(
        std::ceil(double(reference) * (1.0 + level)));
    table.addRow({fmtPct(level, 1), std::to_string(target),
                  fmtReach(timeToReach(curveA, target)),
                  fmtReach(timeToReach(curveB, target))});
  }
  table.print(std::cout);
}

/// Reports skipped lines (to stderr) and converts them into a failing exit
/// status: a truncated or garbled trace must not pass silently.
int finishWithBadLineCheck(const std::string& path,
                           const obs::LoadedTrace& trace) {
  if (trace.badLines == 0) return 0;
  for (const std::string& p : trace.problems)
    std::fprintf(stderr, "%s: %s\n", path.c_str(), p.c_str());
  std::fprintf(stderr, "%s: %d bad line%s skipped (trace truncated or "
               "garbled)\n",
               path.c_str(), trace.badLines, trace.badLines == 1 ? "" : "s");
  return 1;
}

obs::LoadedTrace loadOrDie(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  return obs::loadTrace(in);
}

}  // namespace

int main(int argc, char** argv) {
  enum class View {
    kSummary,
    kPropagation,
    kProvenance,
    kConvergence,
    kCompare,
    kValidate,
    kJobs,
  };
  View view = View::kSummary;
  std::vector<std::string> paths;
  std::string levelSpec = "0.05,0.02,0.01,0.005,0";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--levels" && i + 1 < argc) {
      levelSpec = argv[++i];
    } else if (arg == "--propagation") {
      view = View::kPropagation;
    } else if (arg == "--provenance") {
      view = View::kProvenance;
    } else if (arg == "--convergence") {
      view = View::kConvergence;
    } else if (arg == "--compare") {
      view = View::kCompare;
    } else if (arg == "--validate") {
      view = View::kValidate;
    } else if (arg == "--jobs") {
      view = View::kJobs;
    } else if (!arg.empty() && arg[0] != '-') {
      paths.push_back(arg);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 1;
    }
  }
  const std::size_t wantPaths = view == View::kCompare ? 2u : 1u;
  if (paths.size() != wantPaths) {
    std::fprintf(stderr,
                 "usage: trace_report RUN.jsonl [--propagation | --provenance"
                 " | --convergence | --validate | --jobs]"
                 " [--levels 0.05,...]\n"
                 "       trace_report --compare A.jsonl B.jsonl\n");
    return 1;
  }
  const std::vector<double> levels = obs::parseLevels(levelSpec);

  if (view == View::kValidate) {
    std::ifstream in(paths[0]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", paths[0].c_str());
      return 1;
    }
    const obs::ValidationResult result = obs::validateTrace(in);
    if (result.ok()) {
      std::printf("%s: OK (%d records, schema and causal invariants hold)\n",
                  paths[0].c_str(), result.records);
      return 0;
    }
    for (const std::string& p : result.problems)
      std::fprintf(stderr, "%s: %s\n", paths[0].c_str(), p.c_str());
    std::fprintf(stderr, "%s: INVALID (%d records, %d bad lines, %zu "
                 "problems)\n",
                 paths[0].c_str(), result.records, result.badLines,
                 result.problems.size());
    return 1;
  }

  if (view == View::kCompare) {
    const obs::LoadedTrace a = loadOrDie(paths[0]);
    const obs::LoadedTrace b = loadOrDie(paths[1]);
    printCompare(paths[0], a, paths[1], b, levels);
    const int rcA = finishWithBadLineCheck(paths[0], a);
    const int rcB = finishWithBadLineCheck(paths[1], b);
    return rcA != 0 ? rcA : rcB;
  }

  const obs::LoadedTrace trace = loadOrDie(paths[0]);
  if (trace.parsedLines == 0) {
    std::fprintf(stderr, "%s: no parseable records\n", paths[0].c_str());
    return 1;
  }
  switch (view) {
    case View::kPropagation: printPropagation(trace); break;
    case View::kProvenance: printProvenance(trace); break;
    case View::kConvergence: printConvergence(trace, levels); break;
    case View::kJobs: printJobs(trace); break;
    default: printSummary(trace, levels); break;
  }
  return finishWithBadLineCheck(paths[0], trace);
}
