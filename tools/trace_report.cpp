// Reads a JSONL run trace (distclk_cli --trace, or any driver with a
// JsonlTraceSink attached) and renders the per-node behavior the paper
// narrates in §4: improvement timelines, broadcast/receive ratios, restart
// depths, and time-to-quality lookups on the reconstructed global anytime
// curve. The metric snapshot closest to the end of the run is summarized
// last.
//
//   trace_report RUN.jsonl [--levels 0.05,0.02,0.01,0.005,0]
//     --levels L1,L2,...   quality levels (fraction over final best) for
//                          the time-to-quality table
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/trace.h"
#include "obs/json.h"
#include "util/table.h"

using namespace distclk;

namespace {

struct NodeSummary {
  int improvements = 0;          ///< locally produced improvements
  int toursReceived = 0;         ///< improving tours adopted from neighbors
  int broadcasts = 0;
  int restarts = 0;
  double joinedAt = -1.0;        ///< churn: when the node entered (<0: t=0)
  double failedAt = -1.0;        ///< injected failure time (<0: none)
  std::vector<std::int64_t> restartDepths;  ///< NumNoImprovements at restart
  int maxPerturbLevel = 1;
  double firstImprovementTime = -1.0;
  double lastImprovementTime = -1.0;
  std::int64_t bestLength = -1;
  double bestTime = 0.0;
};

struct TraceData {
  std::optional<obs::JsonValue> meta;
  std::optional<obs::JsonValue> runEnd;
  std::optional<obs::JsonValue> lastMetrics;
  std::map<int, NodeSummary> nodes;
  EventLog events;
  int parsedLines = 0;
  int skippedLines = 0;
};

void applyEvent(TraceData& data, const NodeEvent& ev) {
  data.events.push_back(ev);
  NodeSummary& node = data.nodes[ev.node];
  switch (ev.type) {
    case NodeEventType::kInitialTour:
    case NodeEventType::kImprovement:
      if (node.firstImprovementTime < 0) node.firstImprovementTime = ev.time;
      node.lastImprovementTime = ev.time;
      if (ev.type == NodeEventType::kImprovement) ++node.improvements;
      break;
    case NodeEventType::kBroadcastSent:
      ++node.broadcasts;
      break;
    case NodeEventType::kTourReceived:
      ++node.toursReceived;
      break;
    case NodeEventType::kPerturbationLevel:
      node.maxPerturbLevel =
          std::max(node.maxPerturbLevel, static_cast<int>(ev.value));
      break;
    case NodeEventType::kRestart:
      ++node.restarts;
      node.restartDepths.push_back(ev.value);
      break;
    case NodeEventType::kNodeJoined:
      node.joinedAt = ev.time;
      break;
    case NodeEventType::kNodeFailed:
      node.failedAt = ev.time;
      break;
    case NodeEventType::kTargetReached:
      break;
  }
  // Track each node's best-seen length from length-carrying events.
  if (ev.type == NodeEventType::kInitialTour ||
      ev.type == NodeEventType::kImprovement ||
      ev.type == NodeEventType::kTourReceived ||
      ev.type == NodeEventType::kBroadcastSent) {
    if (node.bestLength < 0 || ev.value < node.bestLength) {
      node.bestLength = ev.value;
      node.bestTime = ev.time;
    }
  }
}

TraceData loadTrace(std::istream& in) {
  TraceData data;
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    obs::JsonValue rec;
    try {
      rec = obs::parseJson(line);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "line %d: %s (skipped)\n", lineNo, e.what());
      ++data.skippedLines;
      continue;
    }
    ++data.parsedLines;
    const std::string type = rec.str("type");
    if (type == "run-meta") {
      data.meta = std::move(rec);
    } else if (type == "run-end") {
      data.runEnd = std::move(rec);
    } else if (type == "metrics") {
      data.lastMetrics = std::move(rec);
    } else if (type == "event") {
      const auto eventType = nodeEventTypeFromString(rec.str("event"));
      if (!eventType) {
        std::fprintf(stderr, "line %d: unknown event '%s' (skipped)\n", lineNo,
                     rec.str("event").c_str());
        ++data.skippedLines;
        continue;
      }
      applyEvent(data, {rec.num("t"), static_cast<int>(rec.integer("node")),
                        *eventType, rec.integer("value")});
    } else {
      std::fprintf(stderr, "line %d: unknown record type '%s' (skipped)\n",
                   lineNo, type.c_str());
      ++data.skippedLines;
    }
  }
  std::sort(data.events.begin(), data.events.end(),
            [](const NodeEvent& a, const NodeEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.node < b.node;
            });
  return data;
}

/// Global best-so-far over all nodes, from the length-carrying events.
AnytimeCurve globalCurve(const EventLog& events) {
  AnytimeCurve curve;
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (const NodeEvent& ev : events) {
    if (ev.type != NodeEventType::kInitialTour &&
        ev.type != NodeEventType::kImprovement &&
        ev.type != NodeEventType::kTourReceived &&
        ev.type != NodeEventType::kBroadcastSent)
      continue;
    if (ev.value < best) {
      best = ev.value;
      curve.push_back({ev.time, best});
    }
  }
  return curve;
}

std::string fmtCount(std::int64_t v) { return std::to_string(v); }

std::vector<double> parseLevels(const std::string& spec) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    out.push_back(std::stod(spec.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string levelSpec = "0.05,0.02,0.01,0.005,0";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--levels" && i + 1 < argc) {
      levelSpec = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 1;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: trace_report RUN.jsonl [--levels 0.05,...]\n");
    return 1;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  const TraceData data = loadTrace(in);
  if (data.parsedLines == 0) {
    std::fprintf(stderr, "%s: no parseable records\n", path.c_str());
    return 1;
  }

  if (data.meta) {
    const auto& m = *data.meta;
    std::printf("run      : %s (n=%lld) — %s, %lld nodes, %s topology\n",
                m.str("instance").c_str(),
                static_cast<long long>(m.integer("n")),
                m.str("algorithm").c_str(),
                static_cast<long long>(m.integer("nodes")),
                m.str("topology").c_str());
    std::printf("params   : seed=%lld c_v=%lld c_r=%lld kick=%s "
                "budget=%.3gs/node clock=%s git=%s\n",
                static_cast<long long>(m.integer("seed")),
                static_cast<long long>(m.integer("cv")),
                static_cast<long long>(m.integer("cr")), m.str("kick").c_str(),
                m.num("time_limit_per_node"), m.str("clock").c_str(),
                m.str("git").c_str());
    // Traces predating the runtime layer carry neither field; stay quiet.
    if (m.find("runtime") != nullptr)
      std::printf("runtime  : %s (wire v%lld)\n", m.str("runtime").c_str(),
                  static_cast<long long>(m.integer("wire_version")));
  }
  std::printf("records  : %d parsed, %d skipped, %zu events\n\n",
              data.parsedLines, data.skippedLines, data.events.size());

  // Per-node summary: the §4.2.1 narrative in table form.
  Table nodeTable({"node", "improve", "recv", "bcast", "recv/bcast", "restarts",
                   "max-perturb", "best", "best@t", "churn"});
  for (const auto& [id, node] : data.nodes) {
    const double ratio =
        node.broadcasts > 0
            ? static_cast<double>(node.toursReceived) / node.broadcasts
            : 0.0;
    std::string churn;
    if (node.joinedAt >= 0) churn += "join@" + fmt(node.joinedAt, 2);
    if (node.failedAt >= 0) {
      if (!churn.empty()) churn += " ";
      churn += "fail@" + fmt(node.failedAt, 2);
    }
    if (churn.empty()) churn = "-";
    nodeTable.addRow({std::to_string(id), fmtCount(node.improvements),
                      fmtCount(node.toursReceived), fmtCount(node.broadcasts),
                      fmt(ratio, 2), fmtCount(node.restarts),
                      fmtCount(node.maxPerturbLevel),
                      node.bestLength >= 0 ? std::to_string(node.bestLength)
                                           : "-",
                      fmt(node.bestTime, 3), churn});
  }
  std::printf("Per-node summary\n");
  nodeTable.print(std::cout);

  // Improvement timeline: global best vs time, one row per improvement.
  const AnytimeCurve curve = globalCurve(data.events);
  if (!curve.empty()) {
    const std::int64_t finalBest = curve.back().length;
    Table quality({"level", "target", "time-to-reach"});
    for (const double level : parseLevels(levelSpec)) {
      const auto target =
          static_cast<std::int64_t>(std::ceil(double(finalBest) * (1.0 + level)));
      const double t = timeToReach(curve, target);
      quality.addRow({fmtPct(level, 1), std::to_string(target),
                      std::isinf(t) ? "never" : fmt(t, 3) + "s"});
    }
    std::printf("\nTime to quality (vs final best %lld, %zu improvements)\n",
                static_cast<long long>(finalBest), curve.size());
    quality.print(std::cout);
  }

  // Restart histogram: how deep stagnation ran before each restart.
  bool anyRestart = false;
  Table restarts({"node", "restarts", "depth-min", "depth-mean", "depth-max"});
  for (const auto& [id, node] : data.nodes) {
    if (node.restartDepths.empty()) continue;
    anyRestart = true;
    const auto [minIt, maxIt] = std::minmax_element(
        node.restartDepths.begin(), node.restartDepths.end());
    double sum = 0;
    for (const auto d : node.restartDepths) sum += double(d);
    restarts.addRow({std::to_string(id),
                     fmtCount(std::int64_t(node.restartDepths.size())),
                     std::to_string(*minIt),
                     fmt(sum / double(node.restartDepths.size()), 1),
                     std::to_string(*maxIt)});
  }
  if (anyRestart) {
    std::printf("\nRestart depths (NumNoImprovements when c_r fired)\n");
    restarts.print(std::cout);
  }

  // Final metric snapshot: counters plus histogram means.
  if (data.lastMetrics) {
    const obs::JsonValue* metrics = data.lastMetrics->find("metrics");
    if (metrics != nullptr) {
      std::printf("\nFinal metrics (t=%.3fs)\n", data.lastMetrics->num("t"));
      Table counters({"counter", "value"});
      if (const obs::JsonValue* c = metrics->find("counters"))
        for (const auto& [name, v] : c->object)
          counters.addRow({name, std::to_string(
                                     static_cast<std::int64_t>(v.number))});
      counters.print(std::cout);
      Table hists({"histogram", "count", "mean", "min", "max"});
      bool anyHist = false;
      if (const obs::JsonValue* h = metrics->find("histograms")) {
        for (const auto& [name, v] : h->object) {
          const double count = v.num("count");
          if (count <= 0) continue;
          anyHist = true;
          hists.addRow({name, fmtCount(static_cast<std::int64_t>(count)),
                        fmt(v.num("sum") / count, 6), fmt(v.num("min"), 6),
                        fmt(v.num("max"), 6)});
        }
      }
      if (anyHist) {
        std::printf("\n");
        hists.print(std::cout);
      }
      // LK throughput, from the applied/rewound flip split: search steps
      // per second of summed compute time across all nodes.
      if (const obs::JsonValue* c = metrics->find("counters")) {
        if (const obs::JsonValue* flips = c->find("node.lk_flips")) {
          const obs::JsonValue* undone = c->find("node.lk_undone_flips");
          const double applied = flips->number;
          const double rewound = undone != nullptr ? undone->number : 0.0;
          const double steps = applied + rewound;
          double computeSum = 0.0;
          if (const obs::JsonValue* h = metrics->find("histograms"))
            if (const obs::JsonValue* cs = h->find("node.compute_seconds"))
              computeSum = cs->num("sum");
          std::printf("\nLK work  : %.0f applied + %.0f rewound flips", applied,
                      rewound);
          if (steps > 0)
            std::printf(" (%.1f%% applied)", 100.0 * applied / steps);
          if (computeSum > 0)
            std::printf(", %.3g steps/s over %.3fs compute",
                        steps / computeSum, computeSum);
          std::printf("\n");
        }
      }
    }
  }

  if (data.runEnd) {
    const auto& e = *data.runEnd;
    const obs::JsonValue* hit = e.find("hit_target");
    std::printf("\nrun end  : best=%lld steps=%lld messages=%lld "
                "hit-target=%s at t=%.3fs\n",
                static_cast<long long>(e.integer("best_length")),
                static_cast<long long>(e.integer("total_steps")),
                static_cast<long long>(e.integer("messages_sent")),
                hit != nullptr && hit->boolean ? "yes" : "no", e.num("t"));
  }
  return 0;
}
