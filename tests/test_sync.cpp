// Tests for the concurrency-discipline layer (util/sync.h): Mutex /
// SharedMutex / MutexLock / CondVar semantics in every build flavor, plus
// the lock-rank runtime audit (out-of-rank, recursive, and unlock-not-held
// death tests) under -DDISTCLK_AUDIT=ON — the build-audit pass in
// scripts/tier1.sh runs this suite alongside test_audit. The TSan pass
// runs it too, so the wrappers' own synchronization is data-race-checked.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/audit.h"
#include "util/sync.h"

namespace distclk {
namespace {

using sync::CondVar;
using sync::LockRank;
using sync::Mutex;
using sync::MutexLock;
using sync::SharedLock;
using sync::SharedMutex;
using sync::WriterLock;

TEST(SyncMutex, LockUnlockRoundTrip) {
  Mutex mu(LockRank::kJobQueue, "test.roundtrip");
  EXPECT_STREQ(mu.name(), "test.roundtrip");
  EXPECT_EQ(mu.rank(), LockRank::kJobQueue);
  mu.lock();
  mu.unlock();
  { const MutexLock lock(mu); }
  EXPECT_EQ(sync::auditHeldLockCount(), 0u);
}

TEST(SyncMutex, TryLockSucceedsWhenFree) {
  Mutex mu(LockRank::kJobQueue, "test.trylock");
  ASSERT_TRUE(mu.tryLock());
  mu.unlock();
  EXPECT_EQ(sync::auditHeldLockCount(), 0u);
}

TEST(SyncMutex, TryLockFailsWhileHeldElsewhere) {
  Mutex mu(LockRank::kJobQueue, "test.contended");
  mu.lock();
  bool acquired = true;
  std::thread other([&] { acquired = mu.tryLock(); });
  other.join();
  EXPECT_FALSE(acquired);
  mu.unlock();
}

TEST(SyncMutex, GuardsAcrossThreads) {
  Mutex mu(LockRank::kJobQueue, "test.counter");
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        const MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
}

TEST(SyncSharedMutex, ReadersShareWritersExclude) {
  SharedMutex mu(LockRank::kJobQueue, "test.shared");
  int value = 0;
  {
    const WriterLock lock(mu);
    value = 7;
  }
  // Two concurrent readers: both must enter the shared section (a blocked
  // second reader would deadlock the handshake below).
  std::atomic<int> insideReaders{0};
  std::thread r1([&] {
    const SharedLock lock(mu);
    insideReaders.fetch_add(1);
    while (insideReaders.load() < 2) std::this_thread::yield();
    EXPECT_EQ(value, 7);
  });
  std::thread r2([&] {
    const SharedLock lock(mu);
    insideReaders.fetch_add(1);
    while (insideReaders.load() < 2) std::this_thread::yield();
    EXPECT_EQ(value, 7);
  });
  r1.join();
  r2.join();
  EXPECT_EQ(sync::auditHeldLockCount(), 0u);
}

TEST(SyncCondVar, ProducerConsumerHandshake) {
  Mutex mu(LockRank::kJobQueue, "test.cv");
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread consumer([&] {
    const MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    observed = 42;
  });
  {
    const MutexLock lock(mu);
    ready = true;
  }
  cv.notifyOne();
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(SyncCondVar, WaitForTimesOutWithoutNotify) {
  Mutex mu(LockRank::kJobQueue, "test.cv-timeout");
  CondVar cv;
  const MutexLock lock(mu);
  EXPECT_EQ(cv.waitFor(mu, 0.01), std::cv_status::timeout);
}

TEST(SyncCondVar, NotifyAllWakesEveryWaiter) {
  Mutex mu(LockRank::kJobQueue, "test.cv-all");
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < 3; ++t) {
    waiters.emplace_back([&] {
      const MutexLock lock(mu);
      while (!go) cv.wait(mu);
      woke.fetch_add(1);
    });
  }
  {
    const MutexLock lock(mu);
    go = true;
  }
  cv.notifyAll();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woke.load(), 3);
}

// ---------------------------------------------------------------------------
// Lock-rank runtime audit (DISTCLK_AUDIT=ON builds only). Each death test
// skips in non-audit flavors, where the rank bookkeeping is compiled out.
// ---------------------------------------------------------------------------

#define DISTCLK_REQUIRE_AUDIT()                                          \
  if (!audit::kEnabled) GTEST_SKIP() << "lock-rank audit requires "      \
                                        "-DDISTCLK_AUDIT=ON"

TEST(SyncRankAudit, RankCompliantNestingPasses) {
  DISTCLK_REQUIRE_AUDIT();
  Mutex low(LockRank::kSolverPool, "test.low");
  Mutex high(LockRank::kMetricsShard, "test.high");
  const MutexLock outer(low);
  EXPECT_EQ(sync::auditHeldLockCount(), 1u);
  {
    const MutexLock inner(high);
    EXPECT_EQ(sync::auditHeldLockCount(), 2u);
  }
  EXPECT_EQ(sync::auditHeldLockCount(), 1u);
}

TEST(SyncRankAuditDeath, OutOfRankAcquisitionAborts) {
  DISTCLK_REQUIRE_AUDIT();
  EXPECT_DEATH(
      {
        Mutex high(LockRank::kMetricsShard, "test.high");
        Mutex low(LockRank::kSolverPool, "test.low");
        const MutexLock outer(high);
        const MutexLock inner(low);  // rank 10 under rank 90: abort
      },
      "out-of-rank");
}

TEST(SyncRankAuditDeath, SameRankAcquisitionAborts) {
  DISTCLK_REQUIRE_AUDIT();
  EXPECT_DEATH(
      {
        Mutex a(LockRank::kJobQueue, "test.same-a");
        Mutex b(LockRank::kJobQueue, "test.same-b");
        const MutexLock outer(a);
        const MutexLock inner(b);  // equal rank is not strictly greater
      },
      "out-of-rank");
}

TEST(SyncRankAuditDeath, RecursiveLockAborts) {
  DISTCLK_REQUIRE_AUDIT();
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kJobQueue, "test.recursive");
        mu.lock();
        mu.lock();  // std::mutex relock is UB; the audit catches it first
      },
      "recursive");
}

TEST(SyncRankAuditDeath, RecursiveTryLockAborts) {
  DISTCLK_REQUIRE_AUDIT();
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kJobQueue, "test.try-recursive");
        mu.lock();
        (void)mu.tryLock();  // try_lock on an owned mutex is UB too
      },
      "recursive");
}

TEST(SyncRankAuditDeath, UnlockNotHeldAborts) {
  DISTCLK_REQUIRE_AUDIT();
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kJobQueue, "test.not-held");
        mu.unlock();
      },
      "does not hold");
}

TEST(SyncRankAudit, TryLockIsRankExempt) {
  DISTCLK_REQUIRE_AUDIT();
  // A try-acquisition cannot block, hence cannot deadlock: taking a LOWER
  // rank via tryLock while holding a higher one must be allowed.
  Mutex high(LockRank::kMetricsShard, "test.try-high");
  Mutex low(LockRank::kSolverPool, "test.try-low");
  const MutexLock outer(high);
  ASSERT_TRUE(low.tryLock());
  EXPECT_EQ(sync::auditHeldLockCount(), 2u);
  low.unlock();
}

TEST(SyncRankAudit, WaitReacquireKeepsHeldStackExact) {
  DISTCLK_REQUIRE_AUDIT();
  // CondVar waits release and re-acquire through the wrapper, so the held
  // stack must show the lock as held again after the wait returns.
  Mutex mu(LockRank::kJobQueue, "test.cv-stack");
  CondVar cv;
  const MutexLock lock(mu);
  EXPECT_EQ(sync::auditHeldLockCount(), 1u);
  (void)cv.waitFor(mu, 0.005);  // times out, nobody notifies
  EXPECT_EQ(sync::auditHeldLockCount(), 1u);
}

TEST(SyncRankAudit, HeldStackIsPerThread) {
  DISTCLK_REQUIRE_AUDIT();
  Mutex mu(LockRank::kJobQueue, "test.per-thread");
  const MutexLock lock(mu);
  std::size_t otherThreadHeld = 99;
  std::thread other([&] { otherThreadHeld = sync::auditHeldLockCount(); });
  other.join();
  EXPECT_EQ(otherThreadHeld, 0u);
  EXPECT_EQ(sync::auditHeldLockCount(), 1u);
}

}  // namespace
}  // namespace distclk
