// Tests for the allocation-free kick–repair fast path: trajectory parity of
// the in-place undo-log CLK loop against the retained champion-copy
// reference path, epoch-counter wraparound of the don't-look queue, the
// zero-allocation guarantee of the steady-state kick cycle, and the
// don't-look Or-opt's local-optimum guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "construct/construct.h"
#include "lk/chained_lk.h"
#include "lk/kicks.h"
#include "lk/lin_kernighan.h"
#include "lk/lk_workspace.h"
#include "lk/or_opt.h"
#include "tsp/big_tour.h"
#include "tsp/gen.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"
#include "util/rng.h"

// Global allocation counter for the zero-allocation test. Tests are exempt
// from the determinism lint, and counting in the test binary (instead of
// instrumenting the library) keeps the production build untouched.
static std::atomic<long> g_allocations{0};

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace distclk {
namespace {

struct ParityCase {
  Instance inst;
  std::uint64_t rngSeed;
};

std::vector<ParityCase> parityCases() {
  std::vector<ParityCase> cases;
  cases.push_back({uniformSquare("ws-uniform", 240, 11), 101});
  cases.push_back({clustered("ws-clustered", 220, 8, 12), 202});
  cases.push_back({drillPlate("ws-drill", 260, 13), 303});
  return cases;
}

// The fast path must retrace the reference path exactly: same kicks (same
// RNG stream), same repairs, same accept/reject decisions, same final
// array. Checked per instance family on both tour representations.
TEST(LkWorkspaceParity, ArrayTourMatchesReferencePath) {
  for (const ParityCase& pc : parityCases()) {
    CandidateLists cand(pc.inst, 8);
    const std::vector<int> start = quickBoruvkaTour(pc.inst, cand);

    ClkOptions fast;
    fast.maxKicks = 60;
    ClkOptions ref = fast;
    ref.referenceKickPath = true;

    Tour a(pc.inst, start);
    Tour b(pc.inst, start);
    Rng rngA(pc.rngSeed);
    Rng rngB(pc.rngSeed);
    LkWorkspace ws;
    const ClkResult resA = chainedLinKernighan(a, cand, rngA, ws, fast);
    const ClkResult resB = chainedLinKernighan(b, cand, rngB, ref);

    EXPECT_EQ(a.orderVector(), b.orderVector()) << pc.inst.name();
    EXPECT_EQ(resA.length, resB.length) << pc.inst.name();
    EXPECT_EQ(resA.kicks, resB.kicks) << pc.inst.name();
    EXPECT_EQ(resA.improvements, resB.improvements) << pc.inst.name();
    EXPECT_EQ(resA.flips, resB.flips) << pc.inst.name();
    EXPECT_EQ(resA.undoneFlips, resB.undoneFlips) << pc.inst.name();
    EXPECT_TRUE(a.valid()) << pc.inst.name();
    // The fast path reports its rollbacks; every kick either committed or
    // rolled back, and losing kicks are exactly kicks - tie/win kicks.
    EXPECT_GE(resA.rollbacks, 0) << pc.inst.name();
    EXPECT_LE(resA.rollbacks, resA.kicks) << pc.inst.name();
    EXPECT_EQ(resB.rollbacks, 0) << pc.inst.name();
  }
}

TEST(LkWorkspaceParity, BigTourMatchesReferencePath) {
  for (const ParityCase& pc : parityCases()) {
    CandidateLists cand(pc.inst, 8);
    const std::vector<int> start = quickBoruvkaTour(pc.inst, cand);

    ClkOptions fast;
    fast.maxKicks = 60;
    ClkOptions ref = fast;
    ref.referenceKickPath = true;

    BigTour a(pc.inst, start);
    BigTour b(pc.inst, start);
    Rng rngA(pc.rngSeed);
    Rng rngB(pc.rngSeed);
    LkWorkspace ws;
    const ClkResult resA = chainedLinKernighan(a, cand, rngA, ws, fast);
    const ClkResult resB = chainedLinKernighan(b, cand, rngB, ref);

    EXPECT_EQ(a.orderVector(), b.orderVector()) << pc.inst.name();
    EXPECT_EQ(resA.length, resB.length) << pc.inst.name();
    EXPECT_EQ(resA.kicks, resB.kicks) << pc.inst.name();
    EXPECT_EQ(resA.flips, resB.flips) << pc.inst.name();
    EXPECT_EQ(resA.undoneFlips, resB.undoneFlips) << pc.inst.name();
    EXPECT_TRUE(a.valid()) << pc.inst.name();
  }
}

// A workspace reused across calls (the DistNode configuration) must behave
// exactly like a fresh workspace per call.
TEST(LkWorkspaceParity, ReusedWorkspaceMatchesFreshWorkspaces) {
  const Instance inst = uniformSquare("ws-reuse", 200, 21);
  CandidateLists cand(inst, 8);
  const std::vector<int> start = quickBoruvkaTour(inst, cand);
  ClkOptions opt;
  opt.maxKicks = 25;

  Tour a(inst, start);
  Tour b(inst, start);
  Rng rngA(7);
  Rng rngB(7);
  LkWorkspace reused;
  for (int round = 0; round < 3; ++round) {
    chainedLinKernighan(a, cand, rngA, reused, opt);
    chainedLinKernighan(b, cand, rngB, opt);  // fresh workspace inside
  }
  EXPECT_EQ(a.orderVector(), b.orderVector());
}

TEST(DontLookQueue, BasicMembershipAndOrder) {
  DontLookQueue q;
  q.reset(8);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.push(3));
  EXPECT_FALSE(q.push(3));  // already a member
  EXPECT_TRUE(q.push(5));
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_TRUE(q.push(3));  // re-admissible after pop
  EXPECT_EQ(q.pop(), 5);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_TRUE(q.empty());
  q.auditCheck("test:basic");
}

TEST(DontLookQueue, ResetIsANewGenerationWithoutClearing) {
  DontLookQueue q;
  q.reset(16);
  for (int c = 0; c < 16; ++c) q.push(c);
  q.reset(16);  // stale marks must not block the new generation
  EXPECT_TRUE(q.empty());
  for (int c = 0; c < 16; ++c) EXPECT_TRUE(q.push(c)) << c;
  q.auditCheck("test:regen");
}

TEST(DontLookQueue, EpochWraparoundResetsMarks) {
  DontLookQueue q;
  q.reset(8);
  q.push(1);
  (void)q.pop();  // mark[1] stamped epoch-1
  q.testSetEpochNearWrap();
  // Two resets cross the wraparound boundary; membership must stay exact
  // on both sides even though every stored stamp is from a dead epoch.
  for (int round = 0; round < 2; ++round) {
    q.reset(8);
    EXPECT_TRUE(q.empty());
    for (int c = 0; c < 8; ++c) EXPECT_TRUE(q.push(c));
    for (int c = 0; c < 8; ++c) EXPECT_FALSE(q.push(c));
    for (int c = 0; c < 8; ++c) EXPECT_EQ(q.pop(), c);
    q.auditCheck("test:wrap");
  }
  EXPECT_LT(q.epoch(), 2u);  // counter wrapped back to the low range
}

TEST(DontLookQueue, ResizeStartsClean) {
  DontLookQueue q;
  q.reset(4);
  q.push(2);
  q.reset(32);  // size change reallocates the stamp array
  EXPECT_TRUE(q.empty());
  for (int c = 0; c < 32; ++c) EXPECT_TRUE(q.push(c));
  q.auditCheck("test:resize");
}

// The acceptance criterion of the fast path: once warm, a kick–repair
// cycle — select, kick, dirty repair, commit or rollback — performs zero
// heap allocations.
TEST(LkWorkspace, SteadyStateKickCycleDoesNotAllocate) {
  const Instance inst = uniformSquare("ws-alloc", 1000, 31);
  CandidateLists cand(inst, 8);
  Tour t(inst, quickBoruvkaTour(inst, cand));
  Rng rng(17);
  LkWorkspace ws;

  // Warm up: full LK plus enough kicks to reach every buffer's steady-state
  // capacity (the initial full-tour queue dominates all later kick queues).
  ClkOptions warm;
  warm.maxKicks = 200;
  chainedLinKernighan(t, cand, rng, ws, warm);

  auto kickCycle = [&] {
    const std::int64_t championLen = t.length();
    ws.resetUndo();
    applyKick(t, KickStrategy::kRandomWalk, cand, rng, KickOptions{}, ws);
    ws.recording = true;
    linKernighanOptimize(t, cand, ws.dirty, LkOptions{}, ws);
    ws.recording = false;
    if (t.length() <= championLen)
      commitKick(ws);
    else
      rollbackKick(t, ws);
  };
  for (int i = 0; i < 50; ++i) kickCycle();  // settle remaining capacity

  const long before = g_allocations.load();
  for (int i = 0; i < 100; ++i) kickCycle();
  const long after = g_allocations.load();
  EXPECT_EQ(after - before, 0) << "steady-state kick cycles allocated";
  EXPECT_TRUE(t.valid());
}

// Rolling back a losing kick must restore the exact pre-kick array, not
// just an equivalent cycle: future kicks read positions from the array.
TEST(LkWorkspace, RollbackRestoresExactArray) {
  const Instance inst = uniformSquare("ws-rollback", 300, 41);
  CandidateLists cand(inst, 8);
  Tour t(inst, quickBoruvkaTour(inst, cand));
  linKernighanOptimize(t, cand);
  Rng rng(23);
  LkWorkspace ws;

  for (int i = 0; i < 25; ++i) {
    const std::vector<int> snapshot = t.orderVector();
    const std::int64_t lenBefore = t.length();
    ws.resetUndo();
    applyKick(t, KickStrategy::kRandomWalk, cand, rng, KickOptions{}, ws);
    ws.recording = true;
    linKernighanOptimize(t, cand, ws.dirty, LkOptions{}, ws);
    ws.recording = false;
    rollbackKick(t, ws);  // reject unconditionally
    EXPECT_EQ(t.orderVector(), snapshot) << "kick " << i;
    EXPECT_EQ(t.length(), lenBefore) << "kick " << i;
  }
  EXPECT_TRUE(t.valid());
}

TEST(LkWorkspace, BigTourRollbackRestoresCycle) {
  const Instance inst = uniformSquare("ws-big-rollback", 300, 43);
  CandidateLists cand(inst, 8);
  BigTour t(inst, quickBoruvkaTour(inst, cand));
  linKernighanOptimize(t, cand);
  Rng rng(29);
  LkWorkspace ws;

  for (int i = 0; i < 25; ++i) {
    const std::vector<int> snapshot = t.orderVector();
    const std::int64_t lenBefore = t.length();
    ws.resetUndo();
    applyKick(t, KickStrategy::kRandomWalk, cand, rng, KickOptions{}, ws);
    ws.recording = true;
    linKernighanOptimize(t, cand, ws.dirty, LkOptions{}, ws);
    ws.recording = false;
    rollbackKick(t, ws);
    EXPECT_EQ(t.orderVector(), snapshot) << "kick " << i;
    EXPECT_EQ(t.length(), lenBefore) << "kick " << i;
  }
  EXPECT_TRUE(t.valid());
}

// The workspace selection must consume the RNG stream exactly like the
// vector-returning selection, for every strategy (including fallbacks).
TEST(LkWorkspace, SelectionMatchesAllocatingSelection) {
  const Instance inst = clustered("ws-select", 150, 5, 51);
  CandidateLists cand(inst, 8);
  for (KickStrategy strategy :
       {KickStrategy::kRandom, KickStrategy::kGeometric, KickStrategy::kClose,
        KickStrategy::kRandomWalk}) {
    Rng rngA(99);
    Rng rngB(99);
    std::vector<int> out;
    std::vector<int> scratch;
    for (int i = 0; i < 20; ++i) {
      const std::vector<int> ref =
          selectKickCities(inst, strategy, cand, rngA);
      selectKickCitiesInto(inst, strategy, cand, rngB, KickOptions{}, out,
                           scratch);
      EXPECT_EQ(out, ref) << toString(strategy) << " draw " << i;
    }
  }
}

// The don't-look Or-opt must land on a sweep-local optimum: a subsequent
// full-sweep pass (the pre-workspace algorithm) finds nothing.
TEST(OrOptDontLook, ReachesSweepLocalOptimum) {
  const Instance inst = uniformSquare("ws-oropt", 600, 61);
  CandidateLists cand(inst, 8);
  Tour t(inst, quickBoruvkaTour(inst, cand));
  const std::int64_t gain = orOptOptimize(t, cand);
  EXPECT_GT(gain, 0);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(orOptOptimize(t, cand, 3, OrOptStyle::kFullSweep), 0);
}

}  // namespace
}  // namespace distclk
