#include "core/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace distclk {
namespace {

const AnytimeCurve kCurve{{1.0, 100}, {2.0, 90}, {5.0, 70}};

TEST(Trace, ValueAtBeforeFirstPointIsMax) {
  EXPECT_EQ(valueAt(kCurve, 0.5), std::numeric_limits<std::int64_t>::max());
}

TEST(Trace, ValueAtEmptyCurveIsMax) {
  EXPECT_EQ(valueAt({}, 1.0), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(valueAt({}, 0.0), std::numeric_limits<std::int64_t>::max());
}

TEST(Trace, ValueAtExactBoundaryIncludesPoint) {
  // A point at exactly t counts as "achieved by t" (checkpoint semantics).
  EXPECT_EQ(valueAt(kCurve, 5.0), 70);
  EXPECT_EQ(valueAt(kCurve, std::nextafter(5.0, 0.0)), 90);
}

TEST(Trace, ValueAtOrFirstClampsBeforeFirstPoint) {
  EXPECT_EQ(valueAtOrFirst(kCurve, 0.5), 100);   // holds the starting tour
  EXPECT_EQ(valueAtOrFirst(kCurve, 1.0), 100);   // exact first point
  EXPECT_EQ(valueAtOrFirst(kCurve, 100.0), 70);  // defers to valueAt after
}

TEST(Trace, ValueAtOrFirstEmptyCurveIsMax) {
  EXPECT_EQ(valueAtOrFirst({}, 1.0), std::numeric_limits<std::int64_t>::max());
}

TEST(Trace, ValueAtStepsThroughCurve) {
  EXPECT_EQ(valueAt(kCurve, 1.0), 100);
  EXPECT_EQ(valueAt(kCurve, 1.9), 100);
  EXPECT_EQ(valueAt(kCurve, 2.0), 90);
  EXPECT_EQ(valueAt(kCurve, 4.9), 90);
  EXPECT_EQ(valueAt(kCurve, 100.0), 70);
}

TEST(Trace, TimeToReach) {
  EXPECT_EQ(timeToReach(kCurve, 100), 1.0);
  EXPECT_EQ(timeToReach(kCurve, 95), 2.0);
  EXPECT_EQ(timeToReach(kCurve, 70), 5.0);
  EXPECT_TRUE(std::isinf(timeToReach(kCurve, 69)));
}

TEST(Trace, TimeToReachEmptyCurve) {
  EXPECT_TRUE(std::isinf(timeToReach({}, 1)));
}

TEST(Trace, TimeToReachExactTargetBoundary) {
  // target exactly equal to a curve value is reached at that point's time.
  EXPECT_EQ(timeToReach(kCurve, 90), 2.0);
  EXPECT_EQ(timeToReach(kCurve, 89), 5.0);  // just below: next improvement
}

TEST(Trace, MeanCurveAverages) {
  const AnytimeCurve a{{1.0, 100}, {3.0, 80}};
  const AnytimeCurve b{{1.0, 200}, {3.0, 100}};
  const AnytimeCurve mean = meanCurve({a, b}, {1.0, 2.0, 3.0});
  ASSERT_EQ(mean.size(), 3u);
  EXPECT_EQ(mean[0].length, 150);
  EXPECT_EQ(mean[1].length, 150);
  EXPECT_EQ(mean[2].length, 90);
}

TEST(Trace, MeanCurveSkipsRunsWithoutValueYet) {
  const AnytimeCurve a{{1.0, 100}};
  const AnytimeCurve b{{5.0, 50}};
  const AnytimeCurve mean = meanCurve({a, b}, {2.0, 6.0});
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_EQ(mean[0].length, 100);  // only run a has a value at t=2
  EXPECT_EQ(mean[1].length, 75);
}

TEST(Trace, MeanCurveEmptyWhenNoData) {
  EXPECT_TRUE(meanCurve({{}, {}}, {1.0}).empty());
}

TEST(Trace, MeanCurveWithRunsOfUnequalLength) {
  // Run a improves twice then stops; run b keeps improving much later. At
  // t=10 run a still contributes its final value (anytime semantics).
  const AnytimeCurve a{{1.0, 100}, {2.0, 80}};
  const AnytimeCurve b{{1.0, 120}, {2.0, 110}, {10.0, 60}};
  const AnytimeCurve mean = meanCurve({a, b}, {1.0, 2.0, 10.0});
  ASSERT_EQ(mean.size(), 3u);
  EXPECT_EQ(mean[0].length, 110);  // (100 + 120) / 2
  EXPECT_EQ(mean[1].length, 95);   // (80 + 110) / 2
  EXPECT_EQ(mean[2].length, 70);   // (80 + 60) / 2 — a's last value persists
}

TEST(Trace, MeanCurveNoSampleTimes) {
  EXPECT_TRUE(meanCurve({{{1.0, 10}}}, {}).empty());
}

TEST(Trace, EventTypeNames) {
  EXPECT_STREQ(toString(NodeEventType::kImprovement), "improvement");
  EXPECT_STREQ(toString(NodeEventType::kBroadcastSent), "broadcast-sent");
  EXPECT_STREQ(toString(NodeEventType::kRestart), "restart");
  EXPECT_STREQ(toString(NodeEventType::kPerturbationLevel),
               "perturbation-level");
}

TEST(Trace, EventTypeNamesRoundTripExhaustively) {
  // Every enumerator must serialize to a unique name and parse back; a new
  // event type that's missing from toString/kAllNodeEventTypes fails here
  // instead of silently writing "?" into traces.
  std::vector<std::string> seen;
  for (const NodeEventType t : kAllNodeEventTypes) {
    const std::string name = toString(t);
    EXPECT_NE(name, "?");
    EXPECT_EQ(std::find(seen.begin(), seen.end(), name), seen.end())
        << "duplicate name " << name;
    seen.push_back(name);
    const auto parsed = nodeEventTypeFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, t);
  }
}

TEST(Trace, EventTypeFromStringRejectsUnknown) {
  EXPECT_FALSE(nodeEventTypeFromString("not-an-event").has_value());
  EXPECT_FALSE(nodeEventTypeFromString("").has_value());
  EXPECT_FALSE(nodeEventTypeFromString("Improvement").has_value());  // case
}

}  // namespace
}  // namespace distclk
