#include "core/trace.h"

#include <gtest/gtest.h>

#include <cmath>

namespace distclk {
namespace {

const AnytimeCurve kCurve{{1.0, 100}, {2.0, 90}, {5.0, 70}};

TEST(Trace, ValueAtBeforeFirstPointIsMax) {
  EXPECT_EQ(valueAt(kCurve, 0.5), std::numeric_limits<std::int64_t>::max());
}

TEST(Trace, ValueAtStepsThroughCurve) {
  EXPECT_EQ(valueAt(kCurve, 1.0), 100);
  EXPECT_EQ(valueAt(kCurve, 1.9), 100);
  EXPECT_EQ(valueAt(kCurve, 2.0), 90);
  EXPECT_EQ(valueAt(kCurve, 4.9), 90);
  EXPECT_EQ(valueAt(kCurve, 100.0), 70);
}

TEST(Trace, TimeToReach) {
  EXPECT_EQ(timeToReach(kCurve, 100), 1.0);
  EXPECT_EQ(timeToReach(kCurve, 95), 2.0);
  EXPECT_EQ(timeToReach(kCurve, 70), 5.0);
  EXPECT_TRUE(std::isinf(timeToReach(kCurve, 69)));
}

TEST(Trace, TimeToReachEmptyCurve) {
  EXPECT_TRUE(std::isinf(timeToReach({}, 1)));
}

TEST(Trace, MeanCurveAverages) {
  const AnytimeCurve a{{1.0, 100}, {3.0, 80}};
  const AnytimeCurve b{{1.0, 200}, {3.0, 100}};
  const AnytimeCurve mean = meanCurve({a, b}, {1.0, 2.0, 3.0});
  ASSERT_EQ(mean.size(), 3u);
  EXPECT_EQ(mean[0].length, 150);
  EXPECT_EQ(mean[1].length, 150);
  EXPECT_EQ(mean[2].length, 90);
}

TEST(Trace, MeanCurveSkipsRunsWithoutValueYet) {
  const AnytimeCurve a{{1.0, 100}};
  const AnytimeCurve b{{5.0, 50}};
  const AnytimeCurve mean = meanCurve({a, b}, {2.0, 6.0});
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_EQ(mean[0].length, 100);  // only run a has a value at t=2
  EXPECT_EQ(mean[1].length, 75);
}

TEST(Trace, MeanCurveEmptyWhenNoData) {
  EXPECT_TRUE(meanCurve({{}, {}}, {1.0}).empty());
}

TEST(Trace, EventTypeNames) {
  EXPECT_STREQ(toString(NodeEventType::kImprovement), "improvement");
  EXPECT_STREQ(toString(NodeEventType::kBroadcastSent), "broadcast-sent");
  EXPECT_STREQ(toString(NodeEventType::kRestart), "restart");
  EXPECT_STREQ(toString(NodeEventType::kPerturbationLevel),
               "perturbation-level");
}

}  // namespace
}  // namespace distclk
