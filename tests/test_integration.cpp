// End-to-end checks across the whole stack: construction -> candidates ->
// CLK -> distributed cooperation, validated against the Held-Karp bound and
// the paper's headline claims at miniature scale.
#include <gtest/gtest.h>

#include <sstream>

#include "bound/held_karp.h"
#include "core/dist_clk.h"
#include "experiments/harness.h"
#include "tsp/gen.h"
#include "tsp/tour.h"
#include "tsp/tsplib.h"

namespace distclk {
namespace {

TEST(Integration, ClkGetsCloseToHeldKarpOnUniform) {
  const Instance inst = uniformSquare("i", 400, 161);
  const CandidateLists cand(inst, 10);
  const ClkRunSummary run =
      runClkExperiment(inst, cand, KickStrategy::kRandomWalk, 1.5, -1, 1);
  const double hk = heldKarpBound(inst).bound;
  // HK is typically within ~1% of optimal; CLK should land within ~3% of HK.
  EXPECT_LT(static_cast<double>(run.finalLength), hk * 1.03);
}

TEST(Integration, DistributedMatchesLongClkOnClustered) {
  // On extreme clustered geometry the Held-Karp bound has a large genuine
  // duality gap (~8% here; verified against exact DP at small n), so the
  // reference is a long single-process CLK run instead.
  const Instance inst = clustered("i", 300, 10, 162);
  const CandidateLists cand(inst, 10);
  const ClkRunSummary longClk =
      runClkExperiment(inst, cand, KickStrategy::kRandomWalk, 2.0, -1, 9);
  SimOptions opt;
  opt.nodes = 4;
  opt.timeLimitPerNode = 0.4;
  opt.node.clkKicksPerCall = 50;
  opt.seed = 1;
  const SimResult res = runSimulatedDistClk(inst, cand, opt);
  EXPECT_LT(static_cast<double>(res.bestLength),
            static_cast<double>(longClk.finalLength) * 1.02);
  Tour best(inst, res.bestOrder);
  EXPECT_TRUE(best.valid());
}

TEST(Integration, CooperationBeatsIsolationOnDrillPlates) {
  // The paper's headline: on fl-type instances plain CLK stagnates while
  // the distributed variant keeps improving. Compare 8 cooperating nodes
  // against 8 isolated nodes (same total budget) on a small drill plate.
  const Instance inst = drillPlate("i", 400, 163);
  const CandidateLists cand(inst, 10);

  auto bestOf = [&](bool cooperate, bool perturb, std::uint64_t seed) {
    SimOptions o;
    o.nodes = 8;
    o.timeLimitPerNode = 0.35;
    o.node.clkKicksPerCall = 40;
    o.node.usePerturbation = perturb;
    // Isolation: a latency beyond the budget means no broadcast ever
    // arrives — 8 independent CLK processes, best-of reported.
    o.latencySeconds = cooperate ? 1e-3 : 1e9;
    o.seed = seed;
    return runSimulatedDistClk(inst, cand, o).bestLength;
  };

  double coop = 0, naked = 0;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    coop += static_cast<double>(bestOf(true, true, s));
    naked += static_cast<double>(bestOf(false, false, s));
  }
  EXPECT_LE(coop, naked * 1.001);
}

TEST(Integration, MessagesCarryValidToursAcrossTheStack) {
  // Run a short sim and re-validate every broadcast recorded in the event
  // log against the final tour-length invariants.
  const Instance inst = uniformSquare("i", 200, 164);
  const CandidateLists cand(inst, 8);
  SimOptions opt;
  opt.nodes = 8;
  opt.timeLimitPerNode = 0.25;
  opt.node.clkKicksPerCall = 30;
  const SimResult res = runSimulatedDistClk(inst, cand, opt);
  std::int64_t lastBroadcast = std::numeric_limits<std::int64_t>::max();
  for (const auto& e : res.events) {
    if (e.type != NodeEventType::kBroadcastSent) continue;
    EXPECT_GT(e.value, 0);
    lastBroadcast = e.value;
  }
  if (lastBroadcast != std::numeric_limits<std::int64_t>::max()) {
    EXPECT_GE(lastBroadcast, res.bestLength);
  }
}

TEST(Integration, TsplibRoundtripThroughSolver) {
  // Generate -> write TSPLIB -> parse back; distance tables and therefore
  // any solver run must agree exactly between original and round-tripped
  // instances.
  const Instance orig = clustered("rt", 120, 5, 165);
  std::stringstream s;
  writeTsplib(s, orig);
  const Instance back = parseTsplib(s);
  ASSERT_EQ(back.n(), orig.n());
  for (int i = 0; i < orig.n(); ++i)
    for (int j = 0; j < orig.n(); ++j)
      ASSERT_EQ(back.dist(i, j), orig.dist(i, j));
  const CandidateLists cand(back, 8);
  const ClkRunSummary runBack =
      runClkExperiment(back, cand, KickStrategy::kGeometric, 0.2, -1, 2);
  EXPECT_GT(runBack.finalLength, 0);
}

}  // namespace
}  // namespace distclk
