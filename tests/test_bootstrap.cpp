#include "net/bootstrap.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.h"

namespace distclk {
namespace {

TEST(Bootstrap, IdentityJoinOrderRebuildsIdealTopology) {
  for (TopologyKind kind :
       {TopologyKind::kHypercube, TopologyKind::kRing, TopologyKind::kGrid,
        TopologyKind::kComplete, TopologyKind::kStar}) {
    for (int n : {2, 4, 8, 12}) {
      std::vector<int> order(static_cast<std::size_t>(n));
      std::iota(order.begin(), order.end(), 0);
      // With ids joining in order, position == node id, so the protocol
      // must reproduce the ideal topology exactly.
      EXPECT_EQ(runBootstrap(kind, order), buildTopology(kind, n))
          << toString(kind) << " n=" << n;
    }
  }
}

TEST(Bootstrap, ShuffledJoinOrderIsIsomorphicToIdeal) {
  Rng rng(7);
  for (int n : {8, 16}) {
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    const Adjacency adj = runBootstrap(TopologyKind::kHypercube, order);
    EXPECT_TRUE(isValidTopology(adj));
    // Same degree sequence as the ideal hypercube (relabeled by position).
    const Adjacency ideal = buildTopology(TopologyKind::kHypercube, n);
    std::vector<std::size_t> degGot, degWant;
    for (const auto& l : adj) degGot.push_back(l.size());
    for (const auto& l : ideal) degWant.push_back(l.size());
    std::sort(degGot.begin(), degGot.end());
    std::sort(degWant.begin(), degWant.end());
    EXPECT_EQ(degGot, degWant);
    EXPECT_EQ(diameter(adj), diameter(ideal));
  }
}

TEST(Bootstrap, HubAssignsPositionsInJoinOrder) {
  BootstrapHub hub(TopologyKind::kRing, 4);
  BootstrapPeer p3(3), p1(1);
  hub.handleJoin(p3.makeJoinRequest());
  hub.handleJoin(p1.makeJoinRequest());
  EXPECT_EQ(hub.positionOf(3), 0);
  EXPECT_EQ(hub.positionOf(1), 1);
  EXPECT_EQ(hub.positionOf(0), -1);
  EXPECT_EQ(hub.joined(), 2);
}

TEST(Bootstrap, FirstJoinerGetsEmptyNeighborList) {
  BootstrapHub hub(TopologyKind::kComplete, 3);
  BootstrapPeer p(0);
  const Message reply = hub.handleJoin(p.makeJoinRequest());
  EXPECT_EQ(reply.type, MessageType::kNeighborList);
  EXPECT_TRUE(reply.order.empty());
  EXPECT_TRUE(p.handleNeighborList(reply).empty());
  EXPECT_TRUE(p.neighbors().empty());
}

TEST(Bootstrap, HelloAddsContactBack) {
  BootstrapPeer a(0);
  Message hello;
  hello.type = MessageType::kHello;
  hello.from = 5;
  a.handleHello(hello);
  a.handleHello(hello);  // idempotent
  EXPECT_EQ(a.neighbors(), std::vector<int>{5});
}

TEST(Bootstrap, HubRejectsProtocolViolations) {
  BootstrapHub hub(TopologyKind::kRing, 2);
  BootstrapPeer p(0);
  Message bogus;
  bogus.type = MessageType::kTour;
  EXPECT_THROW(hub.handleJoin(bogus), std::invalid_argument);
  hub.handleJoin(p.makeJoinRequest());
  EXPECT_THROW(hub.handleJoin(p.makeJoinRequest()), std::invalid_argument);
  BootstrapPeer q(1), r(2);
  hub.handleJoin(q.makeJoinRequest());
  EXPECT_THROW(hub.handleJoin(r.makeJoinRequest()), std::invalid_argument);
}

TEST(Bootstrap, PeerRejectsWrongMessageTypes) {
  BootstrapPeer p(0);
  Message wrong;
  wrong.type = MessageType::kTour;
  EXPECT_THROW(p.handleNeighborList(wrong), std::invalid_argument);
  EXPECT_THROW(p.handleHello(wrong), std::invalid_argument);
}

TEST(Bootstrap, ProtocolMessagesSurviveSerialization) {
  BootstrapPeer p(7);
  const Message join = p.makeJoinRequest();
  EXPECT_EQ(deserialize(serialize(join)), join);
  Message list;
  list.type = MessageType::kNeighborList;
  list.order = {1, 2, 3};
  EXPECT_EQ(deserialize(serialize(list)), list);
  Message hello;
  hello.type = MessageType::kHello;
  hello.from = 7;
  hello.length = 3;
  EXPECT_EQ(deserialize(serialize(hello)), hello);
}

}  // namespace
}  // namespace distclk
