#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace distclk {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const double xs[] = {1.5, -2.0, 3.25, 7.0, 0.0, -1.0};
  RunningStats s;
  double sum = 0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / 6.0;
  double ss = 0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), ss / 5.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(ss / 5.0), 1e-12);
  EXPECT_EQ(s.min(), -2.0);
  EXPECT_EQ(s.max(), 7.0);
}

TEST(RunningStats, StableForLargeOffsets) {
  RunningStats s;
  // Classic catastrophic-cancellation scenario for naive sum-of-squares.
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25025, 1e-3);
}

TEST(Median, OddAndEven) {
  EXPECT_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Median, EmptyIsZero) { EXPECT_EQ(median({}), 0.0); }

TEST(Quantile, Endpoints) {
  std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_EQ(quantile(xs, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_NEAR(quantile(xs, 0.25), 2.5, 1e-12);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  std::vector<double> xs{1.0, 2.0};
  EXPECT_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_EQ(quantile(xs, 2.0), 2.0);
}

}  // namespace
}  // namespace distclk
