#include "tsp/tsplib.h"

#include <gtest/gtest.h>

#include <sstream>

namespace distclk {
namespace {

TEST(Tsplib, ParsesNodeCoordSection) {
  std::istringstream in(R"(NAME : tiny
TYPE : TSP
COMMENT : a comment
DIMENSION : 3
EDGE_WEIGHT_TYPE : EUC_2D
NODE_COORD_SECTION
1 0 0
2 3 0
3 3 4
EOF
)");
  const Instance inst = parseTsplib(in);
  EXPECT_EQ(inst.name(), "tiny");
  EXPECT_EQ(inst.comment(), "a comment");
  EXPECT_EQ(inst.n(), 3);
  EXPECT_EQ(inst.dist(0, 1), 3);
  EXPECT_EQ(inst.dist(1, 2), 4);
  EXPECT_EQ(inst.dist(0, 2), 5);
}

TEST(Tsplib, ParsesOutOfOrderNodeIds) {
  std::istringstream in(R"(NAME: x
TYPE: TSP
DIMENSION: 3
EDGE_WEIGHT_TYPE: EUC_2D
NODE_COORD_SECTION
3 3 4
1 0 0
2 3 0
EOF
)");
  const Instance inst = parseTsplib(in);
  EXPECT_EQ(inst.dist(0, 1), 3);
  EXPECT_EQ(inst.dist(0, 2), 5);
}

TEST(Tsplib, ParsesFullMatrix) {
  std::istringstream in(R"(NAME: m
TYPE: TSP
DIMENSION: 3
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: FULL_MATRIX
EDGE_WEIGHT_SECTION
0 1 2
1 0 3
2 3 0
EOF
)");
  const Instance inst = parseTsplib(in);
  EXPECT_EQ(inst.dist(0, 2), 2);
  EXPECT_EQ(inst.dist(1, 2), 3);
}

TEST(Tsplib, ParsesUpperRow) {
  std::istringstream in(R"(NAME: m
TYPE: TSP
DIMENSION: 4
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: UPPER_ROW
EDGE_WEIGHT_SECTION
1 2 3
4 5
6
EOF
)");
  const Instance inst = parseTsplib(in);
  EXPECT_EQ(inst.dist(0, 1), 1);
  EXPECT_EQ(inst.dist(0, 3), 3);
  EXPECT_EQ(inst.dist(1, 2), 4);
  EXPECT_EQ(inst.dist(2, 3), 6);
  EXPECT_EQ(inst.dist(3, 2), 6);
}

TEST(Tsplib, ParsesLowerDiagRow) {
  std::istringstream in(R"(NAME: m
TYPE: TSP
DIMENSION: 3
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: LOWER_DIAG_ROW
EDGE_WEIGHT_SECTION
0
7 0
8 9 0
EOF
)");
  const Instance inst = parseTsplib(in);
  EXPECT_EQ(inst.dist(0, 1), 7);
  EXPECT_EQ(inst.dist(0, 2), 8);
  EXPECT_EQ(inst.dist(1, 2), 9);
}

TEST(Tsplib, ParsesUpperDiagRow) {
  std::istringstream in(R"(NAME: m
TYPE: TSP
DIMENSION: 3
EDGE_WEIGHT_TYPE: EXPLICIT
EDGE_WEIGHT_FORMAT: UPPER_DIAG_ROW
EDGE_WEIGHT_SECTION
0 7 8
0 9
0
EOF
)");
  const Instance inst = parseTsplib(in);
  EXPECT_EQ(inst.dist(0, 1), 7);
  EXPECT_EQ(inst.dist(1, 2), 9);
}

TEST(Tsplib, RejectsUnknownKeyword) {
  std::istringstream in("BOGUS_KEYWORD : 1\n");
  EXPECT_THROW(parseTsplib(in), std::runtime_error);
}

TEST(Tsplib, RejectsMissingDimension) {
  std::istringstream in("NAME: x\nEDGE_WEIGHT_TYPE: EUC_2D\nEOF\n");
  EXPECT_THROW(parseTsplib(in), std::runtime_error);
}

TEST(Tsplib, RejectsTruncatedCoordSection) {
  std::istringstream in(R"(DIMENSION: 3
EDGE_WEIGHT_TYPE: EUC_2D
NODE_COORD_SECTION
1 0 0
)");
  EXPECT_THROW(parseTsplib(in), std::runtime_error);
}

TEST(Tsplib, RejectsDuplicateNodeId) {
  std::istringstream in(R"(DIMENSION: 3
EDGE_WEIGHT_TYPE: EUC_2D
NODE_COORD_SECTION
1 0 0
1 1 1
2 2 2
EOF
)");
  EXPECT_THROW(parseTsplib(in), std::runtime_error);
}

TEST(Tsplib, RejectsAtspType) {
  std::istringstream in("TYPE: ATSP\n");
  EXPECT_THROW(parseTsplib(in), std::runtime_error);
}

// Malformed-input hardening: every rejection below must surface as the
// parser's own line-numbered runtime_error, never as an exception leaking
// out of std::stoi (std::invalid_argument / std::out_of_range) or as an
// attempted giant allocation.
void expectParseError(const std::string& text) {
  std::istringstream in(text);
  try {
    parseTsplib(in);
    FAIL() << "expected a parse error for:\n" << text;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("TSPLIB parse error"),
              std::string::npos)
        << "unexpected error text: " << e.what();
  }
}

TEST(TsplibHardening, RejectsNonNumericDimension) {
  expectParseError("DIMENSION: banana\nEOF\n");
}

TEST(TsplibHardening, RejectsTrailingGarbageDimension) {
  expectParseError("DIMENSION: 12abc\nEOF\n");
}

TEST(TsplibHardening, RejectsNegativeDimension) {
  expectParseError("DIMENSION: -4\nEDGE_WEIGHT_TYPE: EUC_2D\nEOF\n");
}

TEST(TsplibHardening, RejectsOverflowingDimension) {
  expectParseError("DIMENSION: 99999999999999999999\nEOF\n");
}

TEST(TsplibHardening, RejectsDimensionAboveParserLimit) {
  expectParseError("DIMENSION: 2000000000\nEDGE_WEIGHT_TYPE: EUC_2D\nEOF\n");
}

TEST(TsplibHardening, RejectsUnknownEdgeWeightType) {
  expectParseError("DIMENSION: 3\nEDGE_WEIGHT_TYPE: WARP_5D\nEOF\n");
}

TEST(TsplibHardening, RejectsUnknownEdgeWeightFormat) {
  expectParseError(
      "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\n"
      "EDGE_WEIGHT_FORMAT: DIAGONAL_STRIPE\nEOF\n");
}

TEST(TsplibHardening, RejectsOversizedExplicitMatrix) {
  // 40000^2 = 1.6e9 entries, over the 1e8 parser ceiling: must fail from
  // the header sizes alone, before any numeric data is read or allocated.
  expectParseError(
      "DIMENSION: 40000\nEDGE_WEIGHT_TYPE: EXPLICIT\n"
      "EDGE_WEIGHT_FORMAT: FULL_MATRIX\nEDGE_WEIGHT_SECTION\n0\n");
}

TEST(TsplibHardening, RejectsTruncatedExplicitSection) {
  expectParseError(
      "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\n"
      "EDGE_WEIGHT_FORMAT: FULL_MATRIX\nEDGE_WEIGHT_SECTION\n0 1 2\n1 0\n");
}

TEST(TsplibHardening, RejectsGarbageInExplicitSection) {
  expectParseError(
      "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\n"
      "EDGE_WEIGHT_FORMAT: FULL_MATRIX\nEDGE_WEIGHT_SECTION\n"
      "0 1 2 1 zero 3 2 3 0\nEOF\n");
}

TEST(TsplibHardening, RejectsNodeIdOutOfRange) {
  expectParseError(
      "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n"
      "1 0 0\n2 1 1\n7 2 2\nEOF\n");
}

TEST(TsplibHardening, TourRejectsNonNumericDimension) {
  std::istringstream in("DIMENSION: lots\nTOUR_SECTION\n1 2 3 -1\n");
  try {
    parseTsplibTour(in);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("TSPLIB parse error"),
              std::string::npos);
  }
}

TEST(Tsplib, GeometricRoundtrip) {
  const Instance orig("rt", {{0.5, 1.5}, {2.25, 3.0}, {4.0, 0.0}},
                      EdgeWeightType::kCeil2D);
  std::stringstream s;
  writeTsplib(s, orig);
  const Instance back = parseTsplib(s);
  ASSERT_EQ(back.n(), orig.n());
  EXPECT_EQ(back.name(), "rt");
  EXPECT_EQ(back.weightType(), EdgeWeightType::kCeil2D);
  for (int i = 0; i < orig.n(); ++i)
    for (int j = 0; j < orig.n(); ++j) EXPECT_EQ(back.dist(i, j), orig.dist(i, j));
}

TEST(Tsplib, ExplicitRoundtrip) {
  const std::vector<std::int64_t> m{0, 5, 6, 5, 0, 7, 6, 7, 0};
  const Instance orig("me", 3, m);
  std::stringstream s;
  writeTsplib(s, orig);
  const Instance back = parseTsplib(s);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_EQ(back.dist(i, j), orig.dist(i, j));
}

TEST(TsplibTour, ParseBasic) {
  std::istringstream in(R"(NAME: t.opt.tour
TYPE: TOUR
DIMENSION: 4
TOUR_SECTION
1
3
2
4
-1
EOF
)");
  const auto order = parseTsplibTour(in);
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1, 3}));
}

TEST(TsplibTour, ParseMultiplePerLine) {
  std::istringstream in("TOUR_SECTION\n1 2 3 -1\n");
  EXPECT_EQ(parseTsplibTour(in), (std::vector<int>{0, 1, 2}));
}

TEST(TsplibTour, RejectsEmpty) {
  std::istringstream in("TOUR_SECTION\n-1\n");
  EXPECT_THROW(parseTsplibTour(in), std::runtime_error);
}

TEST(TsplibTour, RejectsDimensionMismatch) {
  std::istringstream in("DIMENSION: 5\nTOUR_SECTION\n1 2 3 -1\n");
  EXPECT_THROW(parseTsplibTour(in), std::runtime_error);
}

TEST(TsplibTour, Roundtrip) {
  const std::vector<int> order{2, 0, 1, 4, 3};
  std::stringstream s;
  writeTsplibTour(s, "x", order);
  EXPECT_EQ(parseTsplibTour(s), order);
}

}  // namespace
}  // namespace distclk
