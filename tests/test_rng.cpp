#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace distclk {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroOrOneIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= v == -3;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformIsInHalfOpenUnit) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 10.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 10.0);
  }
}

TEST(Rng, NormalHasRoughlyUnitMoments) {
  Rng rng(17);
  double sum = 0, sumSq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sumSq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sumSq / kN, 1.0, 0.05);
}

TEST(Rng, CoinIsFairEnough) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.coin();
  EXPECT_NEAR(heads / 10000.0, 0.5, 0.03);
}

TEST(Rng, CoinBiased) {
  Rng rng(23);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.coin(0.9);
  EXPECT_NEAR(heads / 10000.0, 0.9, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[std::size_t(i)], i);
  // And not the identity (overwhelmingly likely).
  std::vector<int> id(100);
  std::iota(id.begin(), id.end(), 0);
  EXPECT_NE(v, id);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == child()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, Splitmix64KnownFirstValue) {
  // Reference value from the splitmix64 reference implementation, seed 0.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace distclk
