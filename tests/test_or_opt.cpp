#include "lk/or_opt.h"

#include <gtest/gtest.h>

#include "construct/construct.h"
#include "lk/two_opt.h"
#include "tsp/gen.h"
#include "util/rng.h"

namespace distclk {
namespace {

TEST(OrOpt, RepairsStrandedCity) {
  // A city sitting far along the tour from its geometric home; Or-opt must
  // relocate it. Layout: chain 0..4 on a line plus city 5 near city 0 but
  // placed at the tour's far end is already its natural spot — instead put
  // city 5 (near 0-1) between 2 and 3 in the starting order.
  const Instance inst("line",
                      {{0, 0}, {10, 0}, {20, 0}, {30, 0}, {40, 0}, {5, 1}},
                      EdgeWeightType::kEuc2D);
  const CandidateLists cand(inst, 5);
  Tour t(inst, {0, 1, 2, 5, 3, 4});
  const auto gain = orOptOptimize(t, cand);
  EXPECT_GT(gain, 0);
  EXPECT_TRUE(t.valid());
  // City 5 must now be adjacent to 0 or 1.
  EXPECT_TRUE(t.next(5) == 0 || t.prev(5) == 0 || t.next(5) == 1 ||
              t.prev(5) == 1);
}

class OrOptSizes : public ::testing::TestWithParam<int> {};

TEST_P(OrOptSizes, ImprovesRandomToursAndStaysValid) {
  const int n = GetParam();
  const Instance inst = uniformSquare("o", n, std::uint64_t(n) + 51);
  const CandidateLists cand(inst, 8);
  Rng rng(5);
  Tour t(inst, randomTour(inst, rng));
  const auto before = t.length();
  const auto gain = orOptOptimize(t, cand);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.length(), before - gain);
  EXPECT_GT(gain, 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OrOptSizes, ::testing::Values(12, 60, 300));

TEST(OrOpt, IdempotentAtLocalOptimum) {
  const Instance inst = uniformSquare("o", 120, 53);
  const CandidateLists cand(inst, 8);
  Rng rng(6);
  Tour t(inst, randomTour(inst, rng));
  orOptOptimize(t, cand);
  EXPECT_EQ(orOptOptimize(t, cand), 0);
}

TEST(OrOpt, ComplementsTwoOpt) {
  // After 2-opt, Or-opt can still find segment relocations (different
  // neighborhood); combined result must never be worse.
  const Instance inst = clustered("o", 250, 8, 54);
  const CandidateLists cand(inst, 8);
  Rng rng(7);
  Tour t(inst, randomTour(inst, rng));
  twoOptOptimize(t, cand);
  const auto afterTwoOpt = t.length();
  orOptOptimize(t, cand);
  EXPECT_LE(t.length(), afterTwoOpt);
  EXPECT_TRUE(t.valid());
}

TEST(OrOpt, RespectsMaxSegLen) {
  const Instance inst = uniformSquare("o", 100, 55);
  const CandidateLists cand(inst, 8);
  Rng rng(8);
  Tour a(inst, randomTour(inst, rng));
  Tour b = a;
  const auto gain1 = orOptOptimize(a, cand, 1);
  const auto gain3 = orOptOptimize(b, cand, 3);
  EXPECT_GE(gain1, 0);
  EXPECT_GE(gain3, 0);
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  // With segment length 1 no improving single-city relocation remains; the
  // length-3 variant must therefore be at least 1-relocation-optimal too.
  EXPECT_EQ(orOptOptimize(b, cand, 1), 0);
}

}  // namespace
}  // namespace distclk
