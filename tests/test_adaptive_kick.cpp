#include "lk/adaptive_kick.h"

#include <gtest/gtest.h>

#include "bound/exact.h"
#include "construct/construct.h"
#include "lk/lin_kernighan.h"
#include "tsp/gen.h"

namespace distclk {
namespace {

TEST(AdaptiveKick, RunsAndStaysValid) {
  const Instance inst = uniformSquare("a", 200, 171);
  const CandidateLists cand(inst, 8);
  Rng rng(1);
  Tour t(inst, quickBoruvkaTour(inst, cand));
  AdaptiveClkOptions opt;
  opt.maxKicks = 200;
  const AdaptiveClkResult res = adaptiveChainedLk(t, cand, rng, opt);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(res.length, t.length());
  EXPECT_EQ(res.kicks, 200);
}

TEST(AdaptiveKick, ExploresEveryStrategy) {
  const Instance inst = clustered("a", 150, 8, 172);
  const CandidateLists cand(inst, 8);
  Rng rng(2);
  Tour t(inst);
  AdaptiveClkOptions opt;
  opt.maxKicks = 100;
  const AdaptiveClkResult res = adaptiveChainedLk(t, cand, rng, opt);
  std::int64_t total = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(res.uses[i], 1u) << "strategy " << i << " never tried";
    total += res.uses[i];
  }
  EXPECT_EQ(total, res.kicks);
}

TEST(AdaptiveKick, ImprovesOverPlainLk) {
  const Instance inst = uniformSquare("a", 300, 173);
  const CandidateLists cand(inst, 8);
  Rng rng(3);
  Tour lk(inst, quickBoruvkaTour(inst, cand));
  linKernighanOptimize(lk, cand);
  Tour ad(inst, quickBoruvkaTour(inst, cand));
  AdaptiveClkOptions opt;
  opt.maxKicks = 300;
  adaptiveChainedLk(ad, cand, rng, opt);
  EXPECT_LT(ad.length(), lk.length());
}

TEST(AdaptiveKick, StopsAtTarget) {
  const Instance inst = uniformSquare("a", 12, 174);
  const CandidateLists cand(inst, 8);
  const auto opt = solveExactDp(inst);
  Rng rng(4);
  Tour t(inst);
  AdaptiveClkOptions ao;
  ao.targetLength = opt.length;
  ao.maxKicks = 100000;
  const AdaptiveClkResult res = adaptiveChainedLk(t, cand, rng, ao);
  EXPECT_TRUE(res.hitTarget);
  EXPECT_EQ(t.length(), opt.length);
}

TEST(AdaptiveKick, RewardsAreDecayedAverages) {
  const Instance inst = uniformSquare("a", 200, 175);
  const CandidateLists cand(inst, 8);
  Rng rng(5);
  Tour t(inst, quickBoruvkaTour(inst, cand));
  AdaptiveClkOptions opt;
  opt.maxKicks = 150;
  const AdaptiveClkResult res = adaptiveChainedLk(t, cand, rng, opt);
  for (double r : res.rewards) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(AdaptiveKick, CallbackMonotone) {
  const Instance inst = uniformSquare("a", 200, 176);
  const CandidateLists cand(inst, 8);
  Rng rng(6);
  Tour t(inst);
  AdaptiveClkOptions opt;
  opt.maxKicks = 100;
  std::vector<std::int64_t> lengths;
  adaptiveChainedLk(t, cand, rng, opt,
                    [&](double, std::int64_t len) { lengths.push_back(len); });
  for (std::size_t i = 1; i < lengths.size(); ++i)
    EXPECT_LT(lengths[i], lengths[i - 1]);
}

}  // namespace
}  // namespace distclk
