#include "obs/trace_sink.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <sstream>

#include "core/dist_clk.h"
#include "core/thread_driver.h"
#include "obs/json.h"
#include "tsp/gen.h"
#include "tsp/neighbors.h"

namespace distclk {
namespace {

using obs::JsonValue;
using obs::parseJson;

TEST(Json, EscapeRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  const std::string doc = "{\"k\":\"" + obs::jsonEscape(nasty) + "\"}";
  const JsonValue v = parseJson(doc);
  EXPECT_EQ(v.str("k"), nasty);
}

TEST(Json, ParsesScalarsArraysObjects) {
  const JsonValue v = parseJson(
      R"({"i":42,"f":-1.5e2,"s":"x","b":true,"n":null,"a":[1,2,3],"o":{"k":1}})");
  EXPECT_EQ(v.integer("i"), 42);
  EXPECT_DOUBLE_EQ(v.num("f"), -150.0);
  EXPECT_EQ(v.str("s"), "x");
  ASSERT_NE(v.find("b"), nullptr);
  EXPECT_TRUE(v.find("b")->boolean);
  EXPECT_EQ(v.find("n")->kind, JsonValue::Kind::kNull);
  ASSERT_TRUE(v.find("a")->isArray());
  EXPECT_EQ(v.find("a")->array.size(), 3u);
  EXPECT_EQ(v.find("o")->integer("k"), 1);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parseJson("{"), std::runtime_error);
  EXPECT_THROW(parseJson("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(parseJson("[1,2"), std::runtime_error);
  EXPECT_THROW(parseJson("{} trailing"), std::runtime_error);
  EXPECT_THROW(parseJson("\"unterminated"), std::runtime_error);
}

TEST(Json, ObjectBuilderEmitsStableOrder) {
  const std::string doc = obs::JsonObject()
                              .field("b", 1)
                              .field("a", "x")
                              .field("t", true)
                              .raw("nested", "[1,2]")
                              .str();
  EXPECT_EQ(doc, R"({"b":1,"a":"x","t":true,"nested":[1,2]})");
  EXPECT_NO_THROW(parseJson(doc));
}

TEST(TraceSink, JsonlLinesAreParseable) {
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  sink.write(obs::eventRecord({1.5, 3, NodeEventType::kImprovement, 4242}));
  sink.write(obs::runEndRecord(2.0, 4242, false, 10, 4));
  sink.flush();
  EXPECT_EQ(sink.linesWritten(), 2);
  std::istringstream in(out.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NO_THROW(parseJson(line)) << line;
  }
  EXPECT_EQ(lines, 2);
}

TEST(TraceSink, EventRecordRoundTrips) {
  const NodeEvent ev{0.25, 5, NodeEventType::kBroadcastSent, 1234};
  const JsonValue v = parseJson(obs::eventRecord(ev));
  EXPECT_EQ(v.str("type"), "event");
  EXPECT_DOUBLE_EQ(v.num("t"), 0.25);
  EXPECT_EQ(v.integer("node"), 5);
  EXPECT_EQ(nodeEventTypeFromString(v.str("event")),
            NodeEventType::kBroadcastSent);
  EXPECT_EQ(v.integer("value"), 1234);
}

TEST(TraceSink, RunMetaCarriesVersionAndParams) {
  obs::RunMeta meta;
  meta.instance = "uniform-100";
  meta.n = 100;
  meta.algorithm = "dist-sim";
  meta.nodes = 8;
  meta.topology = "hypercube";
  meta.seed = 7;
  meta.cv = 64;
  meta.cr = 256;
  meta.kick = "Random-walk";
  meta.timeLimitPerNode = 0.5;
  meta.clock = "virtual";
  const JsonValue v = parseJson(obs::runMetaRecord(meta));
  EXPECT_EQ(v.str("type"), "run-meta");
  EXPECT_EQ(v.integer("nodes"), 8);
  EXPECT_EQ(v.integer("cv"), 64);
  EXPECT_EQ(v.str("clock"), "virtual");
  EXPECT_FALSE(v.str("git").empty());
}

TEST(TraceSink, CausalRecordBuildersRoundTrip) {
  const JsonValue sent = parseJson(obs::msgSentRecord(1.5, 3, 7, 42, 999, 61));
  EXPECT_EQ(sent.str("type"), "msg-sent");
  EXPECT_EQ(sent.integer("node"), 3);
  EXPECT_EQ(sent.integer("seq"), 7);
  EXPECT_EQ(sent.integer("lamport"), 42);
  EXPECT_EQ(sent.integer("len"), 999);
  EXPECT_EQ(sent.integer("bytes"), 61);

  const JsonValue recv =
      parseJson(obs::msgRecvRecord(1.6, 1, 3, 7, 42, 43, 999));
  EXPECT_EQ(recv.str("type"), "msg-recv");
  EXPECT_EQ(recv.integer("from"), 3);
  EXPECT_EQ(recv.integer("seq"), 7);
  EXPECT_EQ(recv.integer("lamport"), 42);
  EXPECT_EQ(recv.integer("recv_lamport"), 43);

  const JsonValue adopt = parseJson(obs::adoptRecord(1.6, 1, 3, 999));
  EXPECT_EQ(adopt.str("type"), "adopt");
  EXPECT_EQ(adopt.integer("node"), 1);
  EXPECT_EQ(adopt.integer("from"), 3);

  const JsonValue best = parseJson(obs::nodeBestRecord(2.0, 1, 990, 4));
  EXPECT_EQ(best.str("type"), "node-best");
  EXPECT_EQ(best.integer("len"), 990);
  EXPECT_EQ(best.integer("no_improve"), 4);
}

TEST(TraceSink, FlushIntervalAndTerminationFlushKeepFileCurrent) {
  const std::string path = ::testing::TempDir() + "/flush_test.jsonl";
  const auto fileContents = [&path] {
    std::ifstream is(path);
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
  };
  obs::JsonlTraceSink sink(path);
  // With a (tiny) flush interval, every write lands on disk immediately —
  // no explicit flush() needed.
  sink.setFlushIntervalSeconds(1e-9);
  sink.write(R"({"type":"event"})");
  EXPECT_NE(fileContents().find("\"type\":\"event\""), std::string::npos);
  // The abnormal-termination path flushes registered file sinks.
  sink.setFlushIntervalSeconds(0.0);
  sink.write(R"({"type":"run-end"})");
  obs::flushAllTraceSinks();
  EXPECT_NE(fileContents().find("\"type\":\"run-end\""), std::string::npos);
  EXPECT_EQ(sink.linesWritten(), 2);
}

TEST(TraceSink, SignalHandlerOnlyRecordsTheSignal) {
  // The SIGTERM/SIGINT handler must be async-signal-safe: it records the
  // signal in an atomic and returns — no registry mutex, no stream I/O.
  // Creating a file-backed sink installs the handler.
  const std::string path = ::testing::TempDir() + "/signal_record.jsonl";
  obs::JsonlTraceSink sink(path);
  obs::clearPendingTraceSignal();
  ASSERT_EQ(obs::pendingTraceSignal(), 0);
  std::raise(SIGTERM);
  // Still alive: the handler deferred everything to normal context.
  EXPECT_EQ(obs::pendingTraceSignal(), SIGTERM);
  obs::clearPendingTraceSignal();
  EXPECT_EQ(obs::pendingTraceSignal(), 0);
}

TEST(TraceSinkDeath, FlushesBufferedLinesBeforeSignalDeath) {
  const std::string path = ::testing::TempDir() + "/signal_flush.jsonl";
  // Child: buffer a line, take the signal, write once more. The write's
  // pending-signal service must flush BOTH lines, then re-raise SIGTERM
  // with the default action (killed-by-signal exit).
  EXPECT_EXIT(
      {
        obs::JsonlTraceSink sink(path);
        obs::clearPendingTraceSignal();
        sink.write(R"({"type":"before-signal"})");
        std::raise(SIGTERM);
        sink.write(R"({"type":"after-signal"})");
        // Unreachable: the write above services the signal and dies.
        std::_Exit(0);
      },
      ::testing::KilledBySignal(SIGTERM), "");
  std::ifstream is(path);
  const std::string contents{std::istreambuf_iterator<char>(is),
                             std::istreambuf_iterator<char>()};
  EXPECT_NE(contents.find("\"type\":\"before-signal\""), std::string::npos);
  EXPECT_NE(contents.find("\"type\":\"after-signal\""), std::string::npos);
}

TEST(TraceSinkDeath, SecondSignalBeforeServiceDiesImmediately) {
  // Escape hatch: if the process never reaches a service point (wedged
  // run), a second delivery restores the default action and re-raises from
  // inside the handler.
  EXPECT_EXIT(
      {
        const std::string path =
            ::testing::TempDir() + "/signal_second.jsonl";
        obs::JsonlTraceSink sink(path);
        obs::clearPendingTraceSignal();
        std::raise(SIGTERM);  // recorded, deferred
        std::raise(SIGTERM);  // second delivery: immediate default action
        std::_Exit(0);        // unreachable
      },
      ::testing::KilledBySignal(SIGTERM), "");
}

class TracedRuns : public ::testing::Test {
 protected:
  TracedRuns()
      : inst_(uniformSquare("trace-test", 120, 5)), cand_(inst_, 8) {}

  SimOptions simOptions() const {
    SimOptions opt;
    opt.nodes = 4;
    opt.costModel = CostModel::kModeled;
    opt.modeledWorkPerSecond = 1e6;
    opt.node.clkKicksPerCall = 10;
    opt.node.cr = 8;  // force restarts so the trace has kRestart records
    opt.timeLimitPerNode = 0.5;
    opt.seed = 99;
    return opt;
  }

  Instance inst_;
  CandidateLists cand_;
};

TEST_F(TracedRuns, SimulatedTraceIsCompleteAndParseable) {
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  SimOptions opt = simOptions();
  opt.trace = &sink;
  opt.metricsIntervalSeconds = 0.1;
  const SimResult res = runSimulatedDistClk(inst_, cand_, opt);

  std::istringstream in(out.str());
  std::string line;
  int meta = 0, events = 0, metrics = 0, runEnd = 0;
  int msgSent = 0, msgRecv = 0, adopts = 0, nodeBest = 0;
  while (std::getline(in, line)) {
    const JsonValue v = parseJson(line);  // throws on malformed output
    const std::string type = v.str("type");
    if (type == "run-meta") ++meta;
    else if (type == "event") ++events;
    else if (type == "metrics") ++metrics;
    else if (type == "run-end") ++runEnd;
    else if (type == "msg-sent") ++msgSent;
    else if (type == "msg-recv") ++msgRecv;
    else if (type == "adopt") ++adopts;
    else if (type == "node-best") ++nodeBest;
    else FAIL() << "unknown record type " << type;
  }
  EXPECT_EQ(meta, 1);
  EXPECT_EQ(runEnd, 1);
  EXPECT_GE(metrics, 2);  // periodic + final
  EXPECT_EQ(events, static_cast<int>(res.events.size()));
  // Causal layer: one msg-sent per broadcast, one msg-recv per delivery,
  // adopts only where a received tour won a merge, and a periodic per-node
  // best series paced by the metrics interval.
  EXPECT_EQ(msgSent, static_cast<int>(res.net.broadcasts));
  EXPECT_EQ(msgRecv, static_cast<int>(res.net.messagesSent));
  EXPECT_LE(adopts, msgRecv);
  EXPECT_GT(nodeBest, 0);
}

TEST_F(TracedRuns, TracingDoesNotChangeSimulatedResults) {
  const SimResult bare = runSimulatedDistClk(inst_, cand_, simOptions());

  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  SimOptions traced = simOptions();
  traced.trace = &sink;
  traced.metricsIntervalSeconds = 0.05;
  const SimResult withTrace = runSimulatedDistClk(inst_, cand_, traced);

  // Determinism guarantee: observation must not perturb the run.
  EXPECT_EQ(bare.bestLength, withTrace.bestLength);
  EXPECT_EQ(bare.bestOrder, withTrace.bestOrder);
  EXPECT_EQ(bare.totalSteps, withTrace.totalSteps);
  EXPECT_EQ(bare.events.size(), withTrace.events.size());
  EXPECT_EQ(bare.net.messagesSent, withTrace.net.messagesSent);
}

TEST_F(TracedRuns, SimulatedTraceMetricsMatchResultCounters) {
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  SimOptions opt = simOptions();
  opt.trace = &sink;
  const SimResult res = runSimulatedDistClk(inst_, cand_, opt);

  // The final metrics record's net counters must agree with NetworkStats.
  std::istringstream in(out.str());
  std::string line, lastMetrics;
  while (std::getline(in, line))
    if (line.find("\"type\":\"metrics\"") != std::string::npos)
      lastMetrics = line;
  ASSERT_FALSE(lastMetrics.empty());
  const JsonValue v = parseJson(lastMetrics);
  const JsonValue* m = v.find("metrics");
  ASSERT_NE(m, nullptr);
  const JsonValue* counters = m->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->integer("net.sends"), res.net.messagesSent);
  EXPECT_EQ(counters->integer("net.broadcasts"), res.net.broadcasts);
  EXPECT_EQ(counters->integer("node.restarts"), res.totalRestarts);
  // Every EA step is counted: initial steps show up in totalSteps only.
  EXPECT_EQ(counters->integer("node.steps") + opt.nodes, res.totalSteps);
}

TEST_F(TracedRuns, ThreadedTraceIsParseableAndConsistent) {
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  ThreadRunOptions opt;
  opt.nodes = 4;
  opt.node.clkKicksPerCall = 10;
  opt.timeLimitPerNode = 0.3;
  opt.seed = 3;
  opt.trace = &sink;
  opt.metricsIntervalSeconds = 0.1;
  const ThreadRunResult res = runThreadedDistClk(inst_, cand_, opt);

  std::istringstream in(out.str());
  std::string line;
  int events = 0;
  std::string last;
  while (std::getline(in, line)) {
    EXPECT_NO_THROW(parseJson(line)) << line;
    if (line.find("\"type\":\"event\"") != std::string::npos) ++events;
    last = line;
  }
  EXPECT_EQ(events, static_cast<int>(res.events.size()));
  // The final line is the run-end record with the same aggregates.
  const JsonValue v = parseJson(last);
  EXPECT_EQ(v.str("type"), "run-end");
  EXPECT_EQ(v.integer("best_length"), res.bestLength);
  EXPECT_EQ(v.integer("messages_sent"), res.messagesSent);
}

}  // namespace
}  // namespace distclk
