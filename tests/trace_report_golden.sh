#!/usr/bin/env bash
# Golden-file test for tools/trace_report.
#
# Runs the pinned churn fixture (the same deterministic sim-runtime run the
# unit tests pin) with tracing on, then checks that the --propagation and
# --convergence views reproduce the checked-in golden tables byte-for-byte
# and that --validate accepts the trace. Any drift in the trace schema, the
# causal reconstruction, or the report formatting fails this test.
#
#   trace_report_golden.sh <distclk_cli> <trace_report> <golden-dir>
#
# Regenerate the golden files after an intentional format change with:
#   trace_report_golden.sh ... --regen
set -euo pipefail

CLI=$1
REPORT=$2
GOLDEN=$3
REGEN=${4:-}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

"$CLI" --algo dist --gen uniform --n 120 --gen-seed 42 --nodes 8 \
  --seconds 6 --modeled-work 1e5 --seed 2026 --join 5:0.4 --fail 2:0.5 \
  --metrics-interval 1 --trace "$WORK/run.jsonl" > "$WORK/cli.out"

grep -q "8126701 on sim runtime" "$WORK/cli.out" || {
  echo "FAIL: fixture trajectory drifted under tracing:" >&2
  cat "$WORK/cli.out" >&2
  exit 1
}

"$REPORT" "$WORK/run.jsonl" --propagation > "$WORK/propagation.txt"
"$REPORT" "$WORK/run.jsonl" --convergence --levels 0.01,0.002,0 \
  > "$WORK/convergence.txt"

if [ "$REGEN" = "--regen" ]; then
  cp "$WORK/propagation.txt" "$GOLDEN/propagation.txt"
  cp "$WORK/convergence.txt" "$GOLDEN/convergence.txt"
  echo "golden files regenerated in $GOLDEN"
  exit 0
fi

for view in propagation convergence; do
  if ! diff -u "$GOLDEN/$view.txt" "$WORK/$view.txt"; then
    echo "FAIL: --$view output drifted from golden file" >&2
    exit 1
  fi
done

# The captured trace must pass its own validator...
"$REPORT" "$WORK/run.jsonl" --validate

# ...and a garbled trace must be rejected with a non-zero exit.
cp "$WORK/run.jsonl" "$WORK/bad.jsonl"
echo 'garbage{{{' >> "$WORK/bad.jsonl"
if "$REPORT" "$WORK/bad.jsonl" --validate > /dev/null 2>&1; then
  echo "FAIL: --validate accepted a garbled trace" >&2
  exit 1
fi

echo "trace_report golden test passed"
