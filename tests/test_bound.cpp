#include "bound/alpha.h"
#include "bound/exact.h"
#include "bound/held_karp.h"
#include "bound/onetree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tsp/gen.h"
#include "tsp/neighbors.h"

namespace distclk {
namespace {

TEST(OneTree, HasExactlyNEdgesAndDegreeSum2N) {
  const Instance inst = uniformSquare("b", 60, 21);
  const std::vector<double> pi(60, 0.0);
  const OneTree t = minimumOneTree(inst, pi);
  EXPECT_EQ(t.edges.size(), 60u);
  int degSum = 0;
  for (int d : t.degree) degSum += d;
  EXPECT_EQ(degSum, 120);
  EXPECT_EQ(t.degree[0], 2);  // special city always has exactly two edges
}

TEST(OneTree, WeightMatchesEdgeSum) {
  const Instance inst = uniformSquare("b", 40, 22);
  std::vector<double> pi(40);
  for (int i = 0; i < 40; ++i) pi[std::size_t(i)] = i * 0.5;
  const OneTree t = minimumOneTree(inst, pi);
  double sum = 0;
  for (const auto& [a, b] : t.edges)
    sum += static_cast<double>(inst.dist(a, b)) + pi[std::size_t(a)] +
           pi[std::size_t(b)];
  EXPECT_NEAR(t.weight, sum, 1e-6);
}

TEST(OneTree, LowerBoundsOptimalTour) {
  // With pi = 0, the minimum 1-tree length <= optimal tour length.
  const Instance inst = uniformSquare("b", 11, 23);
  const std::vector<double> pi(11, 0.0);
  const OneTree t = minimumOneTree(inst, pi);
  const ExactResult opt = solveExactDp(inst);
  EXPECT_LE(t.weight, static_cast<double>(opt.length) + 1e-9);
}

TEST(OneTree, IsConnectedSpanningStructure) {
  const Instance inst = clustered("b", 80, 5, 24);
  const std::vector<double> pi(80, 0.0);
  const OneTree t = minimumOneTree(inst, pi);
  // Union-find over the edges must leave a single component.
  std::vector<int> parent(80);
  for (int i = 0; i < 80; ++i) parent[std::size_t(i)] = i;
  auto find = [&](int x) {
    while (parent[std::size_t(x)] != x) x = parent[std::size_t(x)];
    return x;
  };
  for (const auto& [a, b] : t.edges) parent[std::size_t(find(a))] = find(b);
  for (int i = 1; i < 80; ++i) EXPECT_EQ(find(i), find(0));
}

TEST(OneTree, CandidateVersionMatchesExactOnEuclidean) {
  const Instance inst = uniformSquare("b", 300, 25);
  const std::vector<double> pi(300, 0.0);
  const CandidateLists cand(inst, 12);
  const OneTree exact = minimumOneTree(inst, pi);
  const OneTree approx = candidateOneTree(inst, pi, cand);
  // kNN graphs with k=12 contain the Euclidean MST almost surely.
  EXPECT_NEAR(exact.weight, approx.weight, exact.weight * 1e-6);
}

TEST(OneTree, RejectsWrongPiSize) {
  const Instance inst = uniformSquare("b", 10, 26);
  EXPECT_THROW(minimumOneTree(inst, std::vector<double>(3)),
               std::invalid_argument);
}

class ExactSolverTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactSolverTest, DpMatchesBruteForce) {
  const int n = GetParam();
  const Instance inst = uniformSquare("e", n, std::uint64_t(n) * 3 + 1);
  const ExactResult dp = solveExactDp(inst);
  const ExactResult bf = solveExactBruteForce(inst);
  EXPECT_EQ(dp.length, bf.length);
  EXPECT_EQ(inst.tourLength(dp.order), dp.length);
  EXPECT_EQ(inst.tourLength(bf.order), bf.length);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExactSolverTest,
                         ::testing::Values(4, 5, 6, 7, 8, 9, 10));

TEST(Exact, DpRejectsLargeN) {
  const Instance inst = uniformSquare("e", 21, 1);
  EXPECT_THROW(solveExactDp(inst), std::invalid_argument);
}

TEST(Exact, BruteForceRejectsLargeN) {
  const Instance inst = uniformSquare("e", 12, 1);
  EXPECT_THROW(solveExactBruteForce(inst), std::invalid_argument);
}

TEST(HeldKarp, BoundIsBelowOptimum) {
  for (std::uint64_t seed : {31ULL, 32ULL, 33ULL}) {
    const Instance inst = uniformSquare("h", 12, seed);
    const ExactResult opt = solveExactDp(inst);
    const HeldKarpResult hk = heldKarpBound(inst);
    EXPECT_LE(hk.bound, static_cast<double>(opt.length) + 1e-6) << seed;
    EXPECT_TRUE(hk.exact);
  }
}

TEST(HeldKarp, BoundIsTight) {
  // On small instances subgradient gets within a couple percent of opt.
  const Instance inst = uniformSquare("h", 14, 34);
  const ExactResult opt = solveExactDp(inst);
  HeldKarpOptions o;
  o.iterations = 500;
  const HeldKarpResult hk = heldKarpBound(inst, o);
  EXPECT_GT(hk.bound, static_cast<double>(opt.length) * 0.95);
}

TEST(HeldKarp, MoreIterationsNeverHurt) {
  const Instance inst = uniformSquare("h", 50, 35);
  HeldKarpOptions few, many;
  few.iterations = 5;
  many.iterations = 200;
  EXPECT_LE(heldKarpBound(inst, few).bound, heldKarpBound(inst, many).bound);
}

TEST(HeldKarp, CandidateModeFlaggedNotExact) {
  const Instance inst = uniformSquare("h", 120, 36);
  HeldKarpOptions o;
  o.exactLimit = 50;  // force the candidate path
  o.iterations = 30;
  const HeldKarpResult hk = heldKarpBound(inst, o);
  EXPECT_FALSE(hk.exact);
  EXPECT_GT(hk.bound, 0.0);
}

TEST(Alpha, TreeEdgesHaveZeroAlphaRank) {
  // Every city's alpha list must start with cities connected to it in the
  // minimum 1-tree (their alpha is 0).
  const Instance inst = uniformSquare("a", 50, 37);
  const std::vector<double> pi(50, 0.0);
  const OneTree t = minimumOneTree(inst, pi);
  const CandidateLists alpha = alphaCandidates(inst, pi, 5);
  std::vector<std::vector<int>> treeAdj(50);
  for (const auto& [a, b] : t.edges) {
    treeAdj[std::size_t(a)].push_back(b);
    treeAdj[std::size_t(b)].push_back(a);
  }
  for (int c = 0; c < 50; ++c) {
    const auto list = alpha.of(c);
    for (int nb : treeAdj[std::size_t(c)]) {
      // Each tree neighbor must appear in the list (alpha = 0, k=5 >= deg).
      if (treeAdj[std::size_t(c)].size() <= 5)
        EXPECT_NE(std::find(list.begin(), list.end(), nb), list.end())
            << "city " << c << " tree-neighbor " << nb;
    }
  }
}

TEST(Alpha, ListSizesAreK) {
  const Instance inst = uniformSquare("a", 40, 38);
  const std::vector<double> pi(40, 0.0);
  const CandidateLists alpha = alphaCandidates(inst, pi, 6);
  for (int c = 0; c < 40; ++c) EXPECT_EQ(alpha.of(c).size(), 6u);
}

TEST(Alpha, RejectsWrongPiSize) {
  const Instance inst = uniformSquare("a", 10, 39);
  EXPECT_THROW(alphaCandidates(inst, std::vector<double>(2), 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace distclk
