// Tests for the shared preprocessing layer (tsp/instance_context.h): a
// built context must be indistinguishable from ad-hoc preprocessing
// (candidate lists, construction tour, HK bound), the content hash must
// identify instances by payload (not by name), and the ContextCache must
// hit/miss/evict deterministically — the properties the job layer's warm
// path and the cache-determinism tests in test_svc.cpp stand on.
#include "tsp/instance_context.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "construct/construct.h"
#include "tsp/gen.h"
#include "tsp/neighbors.h"

namespace distclk {
namespace {

std::shared_ptr<const Instance> sharedInstance(Instance inst) {
  return std::make_shared<const Instance>(std::move(inst));
}

TEST(InstanceContext, BuildMatchesAdHocPreprocessing) {
  const auto inst = sharedInstance(uniformSquare("ctx-build", 200, 7));
  PreprocessParams params;
  params.candidateK = 8;
  const auto ctx = InstanceContext::build(inst, params);

  // Same candidate CSR as direct construction.
  const CandidateLists direct(*inst, 8);
  ASSERT_EQ(ctx->candidates().n(), direct.n());
  for (int c = 0; c < direct.n(); ++c) {
    const auto a = ctx->candidates().of(c);
    const auto b = direct.of(c);
    ASSERT_EQ(a.size(), b.size()) << "city " << c;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }

  // Same construction tour as calling quick-Boruvka directly.
  const std::vector<int> order = quickBoruvkaTour(*inst, direct);
  EXPECT_EQ(ctx->constructionOrder(), order);
  EXPECT_EQ(ctx->constructionLength(), inst->tourLength(order));

  EXPECT_FALSE(ctx->borrowed());
  EXPECT_FALSE(ctx->heldKarp().has_value());
  EXPECT_EQ(&ctx->instance(), inst.get());
}

TEST(InstanceContext, HeldKarpBoundOnRequest) {
  const auto inst = sharedInstance(uniformSquare("ctx-hk", 60, 3));
  PreprocessParams params;
  params.heldKarp = true;
  params.heldKarpOptions.iterations = 30;
  const auto ctx = InstanceContext::build(inst, params);
  ASSERT_TRUE(ctx->heldKarp().has_value());
  EXPECT_GT(ctx->heldKarp()->bound, 0.0);
  // The bound is a lower bound on the construction tour.
  EXPECT_LE(ctx->heldKarp()->bound,
            static_cast<double>(ctx->constructionLength()));
}

TEST(InstanceContext, BorrowWrapsExistingPreprocessing) {
  const Instance inst = uniformSquare("ctx-borrow", 150, 11);
  const CandidateLists cand(inst, 6);
  const auto ctx = InstanceContext::borrow(inst, cand);
  EXPECT_TRUE(ctx->borrowed());
  EXPECT_EQ(&ctx->instance(), &inst);
  EXPECT_EQ(&ctx->candidates(), &cand);
  EXPECT_EQ(ctx->constructionOrder(), quickBoruvkaTour(inst, cand));
}

TEST(InstanceContext, ContentHashIgnoresNameButNotPayload) {
  const Instance a = uniformSquare("name-a", 100, 5);
  const Instance b = uniformSquare("name-b", 100, 5);   // same payload
  const Instance c = uniformSquare("name-a", 100, 6);   // different points
  const Instance d = uniformSquare("name-a", 101, 5);   // different n
  EXPECT_EQ(instanceContentHash(a), instanceContentHash(b));
  EXPECT_NE(instanceContentHash(a), instanceContentHash(c));
  EXPECT_NE(instanceContentHash(a), instanceContentHash(d));
}

TEST(InstanceContext, CacheKeySeparatesParams) {
  PreprocessParams a;
  PreprocessParams b;
  b.candidateK = 12;
  PreprocessParams c;
  c.kind = CandidateLists::Kind::kQuadrant;
  PreprocessParams d;
  d.symmetric = true;
  PreprocessParams e;
  e.heldKarp = true;
  EXPECT_NE(a.cacheKey(), b.cacheKey());
  EXPECT_NE(a.cacheKey(), c.cacheKey());
  EXPECT_NE(a.cacheKey(), d.cacheKey());
  EXPECT_NE(a.cacheKey(), e.cacheKey());
  EXPECT_EQ(a.cacheKey(), PreprocessParams{}.cacheKey());
}

TEST(ContextCache, HitsShareOneBuildPerKey) {
  ContextCache cache(4);
  const auto inst = sharedInstance(uniformSquare("cache-one", 120, 9));
  bool hit = true;
  const auto first = cache.get(inst, {}, &hit);
  EXPECT_FALSE(hit);
  // Content-identical copy under a different shared_ptr: still a hit.
  const auto clone = sharedInstance(uniformSquare("cache-one-clone", 120, 9));
  const auto second = cache.get(clone, {}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // literally the same context
  const ContextCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.builds, 1);
  EXPECT_EQ(cache.size(), 1u);

  // Different preprocessing params over the same instance: its own entry.
  PreprocessParams quadrant;
  quadrant.kind = CandidateLists::Kind::kQuadrant;
  const auto third = cache.get(inst, quadrant, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(first.get(), third.get());
  EXPECT_EQ(cache.stats().builds, 2);
}

TEST(ContextCache, EvictsLeastRecentlyUsed) {
  ContextCache cache(2);
  const auto a = sharedInstance(uniformSquare("lru-a", 80, 1));
  const auto b = sharedInstance(uniformSquare("lru-b", 80, 2));
  const auto c = sharedInstance(uniformSquare("lru-c", 80, 3));
  cache.get(a);
  cache.get(b);
  cache.get(a);  // refresh a: b is now the LRU entry
  cache.get(c);  // evicts b
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.size(), 2u);
  bool hit = false;
  cache.get(a, {}, &hit);
  EXPECT_TRUE(hit) << "a was refreshed and must have survived";
  cache.get(b, {}, &hit);
  EXPECT_FALSE(hit) << "b was the LRU entry and must have been evicted";

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace distclk
