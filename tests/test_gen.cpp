#include "tsp/gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace distclk {
namespace {

TEST(Gen, UniformDeterministicInSeed) {
  const Instance a = uniformSquare("u", 100, 42);
  const Instance b = uniformSquare("u", 100, 42);
  const Instance c = uniformSquare("u", 100, 43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.point(i).x, b.point(i).x);
    EXPECT_EQ(a.point(i).y, b.point(i).y);
  }
  int diff = 0;
  for (int i = 0; i < 100; ++i)
    if (a.point(i).x != c.point(i).x) ++diff;
  EXPECT_GT(diff, 90);
}

TEST(Gen, UniformStaysInBounds) {
  const Instance inst = uniformSquare("u", 500, 1, 1000.0);
  for (int i = 0; i < inst.n(); ++i) {
    EXPECT_GE(inst.point(i).x, 0.0);
    EXPECT_LE(inst.point(i).x, 1000.0);
    EXPECT_GE(inst.point(i).y, 0.0);
    EXPECT_LE(inst.point(i).y, 1000.0);
  }
}

TEST(Gen, SizesMatch) {
  EXPECT_EQ(uniformSquare("u", 77, 1).n(), 77);
  EXPECT_EQ(clustered("c", 123, 10, 1).n(), 123);
  EXPECT_EQ(drillPlate("d", 211, 1).n(), 211);
  EXPECT_EQ(perforatedGrid("g", 99, 1).n(), 99);
  EXPECT_EQ(roadNetwork("r", 301, 1).n(), 301);
}

TEST(Gen, ClusteredIsActuallyClustered) {
  // Mean nearest-neighbor distance of a clustered instance must be much
  // smaller than for a uniform instance of the same size and area.
  const int n = 400;
  const Instance uni = uniformSquare("u", n, 5);
  const Instance clu = clustered("c", n, 10, 5);
  auto meanNn = [](const Instance& inst) {
    double total = 0;
    for (int i = 0; i < inst.n(); ++i) {
      std::int64_t best = std::numeric_limits<std::int64_t>::max();
      for (int j = 0; j < inst.n(); ++j)
        if (j != i) best = std::min(best, inst.dist(i, j));
      total += static_cast<double>(best);
    }
    return total / inst.n();
  };
  EXPECT_LT(meanNn(clu), meanNn(uni) * 0.6);
}

TEST(Gen, DrillPlateHasDenseBlocks) {
  const Instance inst = drillPlate("d", 600, 7);
  // Most cities must have an extremely close neighbor (same drill block).
  int tight = 0;
  for (int i = 0; i < inst.n(); ++i) {
    for (int j = 0; j < inst.n(); ++j) {
      if (j != i && inst.dist(i, j) < 30000) {  // block pitch << plate side
        ++tight;
        break;
      }
    }
  }
  EXPECT_GT(tight, inst.n() * 7 / 10);
}

TEST(Gen, RoadNetworkHasSkewedDensity) {
  const Instance inst = roadNetwork("r", 500, 3);
  // Town structure: nearest-neighbor distances vary wildly (big towns are
  // dense, villages sparse) — check the spread max/median is large.
  std::vector<double> nn;
  for (int i = 0; i < inst.n(); ++i) {
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (int j = 0; j < inst.n(); ++j)
      if (j != i) best = std::min(best, inst.dist(i, j));
    nn.push_back(static_cast<double>(best));
  }
  std::sort(nn.begin(), nn.end());
  const double med = nn[nn.size() / 2];
  EXPECT_GT(nn.back(), med * 4);
}

TEST(Gen, FamiliesProduceDistinctLayouts) {
  const Instance a = uniformSquare("x", 50, 9);
  const Instance b = clustered("x", 50, 10, 9);
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.point(i).x == b.point(i).x) ++same;
  EXPECT_LT(same, 5);
}

TEST(Gen, CommentsMentionSeed) {
  EXPECT_NE(uniformSquare("u", 10, 77).comment().find("77"),
            std::string::npos);
  EXPECT_NE(clustered("c", 10, 3, 88).comment().find("88"),
            std::string::npos);
}

TEST(Gen, PerforatedGridAvoidsNothingWhenTiny) {
  // Small n must still produce exactly n in-bounds points.
  const Instance inst = perforatedGrid("g", 12, 2);
  EXPECT_EQ(inst.n(), 12);
}

}  // namespace
}  // namespace distclk
