#include "tsp/neighbors.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tsp/gen.h"

namespace distclk {
namespace {

TEST(CandidateLists, NearestMatchBruteForce) {
  const Instance inst = uniformSquare("n", 120, 11);
  const CandidateLists cand(inst, 6);
  for (int c = 0; c < inst.n(); ++c) {
    const auto got = cand.of(c);
    ASSERT_EQ(got.size(), 6u);
    // Brute-force 6 nearest by integral TSPLIB distance.
    std::vector<std::pair<std::int64_t, int>> d;
    for (int o = 0; o < inst.n(); ++o)
      if (o != c) d.emplace_back(inst.dist(c, o), o);
    std::sort(d.begin(), d.end());
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(inst.dist(c, got[i]), d[i].first) << "city " << c;
  }
}

TEST(CandidateLists, SortedByDistance) {
  const Instance inst = clustered("n", 200, 5, 12);
  const CandidateLists cand(inst, 8);
  for (int c = 0; c < inst.n(); ++c) {
    const auto got = cand.of(c);
    for (std::size_t i = 1; i < got.size(); ++i)
      EXPECT_LE(inst.dist(c, got[i - 1]), inst.dist(c, got[i]));
  }
}

TEST(CandidateLists, NoSelfAndNoDuplicates) {
  const Instance inst = uniformSquare("n", 80, 13);
  const CandidateLists cand(inst, 10);
  for (int c = 0; c < inst.n(); ++c) {
    const auto got = cand.of(c);
    EXPECT_EQ(std::count(got.begin(), got.end(), c), 0);
    std::vector<int> copy(got.begin(), got.end());
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(std::adjacent_find(copy.begin(), copy.end()), copy.end());
  }
}

TEST(CandidateLists, KClampedToNMinus1) {
  const Instance inst = uniformSquare("n", 5, 14);
  const CandidateLists cand(inst, 50);
  for (int c = 0; c < 5; ++c) EXPECT_EQ(cand.of(c).size(), 4u);
}

TEST(CandidateLists, RejectsNonpositiveK) {
  const Instance inst = uniformSquare("n", 10, 15);
  EXPECT_THROW(CandidateLists(inst, 0), std::invalid_argument);
}

TEST(CandidateLists, ExplicitMatrixFallback) {
  const std::vector<std::int64_t> m{0, 1, 9, 9,  //
                                    1, 0, 2, 9,  //
                                    9, 2, 0, 3,  //
                                    9, 9, 3, 0};
  const Instance inst("m", 4, m);
  const CandidateLists cand(inst, 2);
  EXPECT_EQ(cand.of(0)[0], 1);
  EXPECT_EQ(cand.of(2)[0], 1);
  EXPECT_EQ(cand.of(3)[0], 2);
}

TEST(CandidateLists, QuadrantCoversAllQuadrants) {
  // A city at the center with neighbors in all four quadrants: the quadrant
  // lists must include at least one from each, even if one quadrant is
  // much farther away.
  std::vector<Point> pts{{0, 0}};
  // Near cluster in quadrant ++ (would fill a plain 4-NN list entirely).
  pts.push_back({1, 1});
  pts.push_back({2, 1});
  pts.push_back({1, 2});
  pts.push_back({2, 2});
  pts.push_back({3, 3});
  // One far point per other quadrant.
  pts.push_back({-50, 40});
  pts.push_back({-60, -50});
  pts.push_back({70, -60});
  const Instance inst("q", pts, EdgeWeightType::kEuc2D);
  const CandidateLists cand(inst, 4, CandidateLists::Kind::kQuadrant);
  const auto got = cand.of(0);
  int quads[4] = {0, 0, 0, 0};
  for (int nb : got) {
    const Point& p = inst.point(nb);
    quads[(p.x >= 0 ? 1 : 0) | (p.y >= 0 ? 2 : 0)]++;
  }
  EXPECT_GE(quads[0], 1);  // -x -y
  EXPECT_GE(quads[1], 1);  // +x -y
  EXPECT_GE(quads[2], 1);  // -x +y
  EXPECT_GE(quads[3], 1);  // +x +y
}

TEST(CandidateLists, ContainsWorks) {
  const Instance inst = uniformSquare("n", 40, 16);
  const CandidateLists cand(inst, 5);
  for (int c = 0; c < inst.n(); ++c)
    for (int nb : cand.of(c)) EXPECT_TRUE(cand.contains(c, nb));
  EXPECT_FALSE(cand.contains(0, 0));
}

TEST(CandidateLists, MakeSymmetricClosesGraph) {
  const Instance inst = clustered("n", 150, 8, 17);
  CandidateLists cand(inst, 5);
  cand.makeSymmetric();
  for (int a = 0; a < inst.n(); ++a)
    for (int b : cand.of(a))
      EXPECT_TRUE(cand.contains(b, a)) << a << " -> " << b;
}

TEST(CandidateLists, MakeSymmetricKeepsExistingEdges) {
  const Instance inst = uniformSquare("n", 60, 18);
  CandidateLists cand(inst, 4);
  std::vector<std::vector<int>> before;
  for (int c = 0; c < inst.n(); ++c) {
    const auto l = cand.of(c);
    before.emplace_back(l.begin(), l.end());
  }
  cand.makeSymmetric();
  for (int c = 0; c < inst.n(); ++c)
    for (int nb : before[std::size_t(c)]) EXPECT_TRUE(cand.contains(c, nb));
}

TEST(CandidateLists, CustomListsValidated) {
  const Instance inst = uniformSquare("n", 10, 19);
  EXPECT_THROW(CandidateLists(inst, std::vector<std::vector<int>>(3)),
               std::invalid_argument);
  CandidateLists ok(inst, std::vector<std::vector<int>>(10));
  EXPECT_EQ(ok.of(0).size(), 0u);
  EXPECT_EQ(ok.maxDegree(), 0);
}

TEST(CandidateLists, MaxDegreeReported) {
  const Instance inst = uniformSquare("n", 30, 20);
  const CandidateLists cand(inst, 7);
  EXPECT_EQ(cand.maxDegree(), 7);
  EXPECT_EQ(cand.n(), 30);
}

}  // namespace
}  // namespace distclk
