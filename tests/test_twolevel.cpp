#include "tsp/twolevel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "util/rng.h"

namespace distclk {
namespace {

std::vector<int> identity(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

/// Reference model: plain vector with the same reverse semantics (reverse
/// the forward path a..b in the linearized cyclic order).
class ReferenceTour {
 public:
  explicit ReferenceTour(std::vector<int> order) : order_(std::move(order)) {}

  int next(int c) const {
    const auto i = indexOf(c);
    return order_[(i + 1) % order_.size()];
  }
  int prev(int c) const {
    const auto i = indexOf(c);
    return order_[(i + order_.size() - 1) % order_.size()];
  }
  void reverse(int a, int b) {
    // Rotate so a is first, reverse prefix up to b, rotate back-compatible
    // (cycles have no canonical start; comparisons use edges or next()).
    auto ia = indexOf(a);
    std::rotate(order_.begin(), order_.begin() + static_cast<long>(ia),
                order_.end());
    const auto ib = indexOf(b);
    std::reverse(order_.begin(), order_.begin() + static_cast<long>(ib) + 1);
  }
  bool between(int a, int b, int c) const {
    const auto ka = indexOf(a), kb = indexOf(b), kc = indexOf(c);
    if (ka <= kc) return ka < kb && kb < kc;
    return kb > ka || kb < kc;
  }
  const std::vector<int>& order() const { return order_; }

 private:
  std::size_t indexOf(int c) const {
    return std::size_t(std::find(order_.begin(), order_.end(), c) -
                       order_.begin());
  }
  std::vector<int> order_;
};

std::set<std::pair<int, int>> edgeSet(const std::vector<int>& order) {
  std::set<std::pair<int, int>> edges;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int a = order[i];
    const int b = order[(i + 1) % order.size()];
    edges.insert({std::min(a, b), std::max(a, b)});
  }
  return edges;
}

TEST(TwoLevelList, ConstructionAndOrderRoundtrip) {
  const auto ord = identity(50);
  TwoLevelList t(ord);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.order(0), ord);
  EXPECT_EQ(t.n(), 50);
  EXPECT_GT(t.segments(), 1);
}

TEST(TwoLevelList, RejectsBadInput) {
  EXPECT_THROW(TwoLevelList(std::vector<int>{0, 1}), std::invalid_argument);
  EXPECT_THROW(TwoLevelList(std::vector<int>{0, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(TwoLevelList(std::vector<int>{0, 1, 5}),
               std::invalid_argument);
}

TEST(TwoLevelList, NextPrevMatchOrder) {
  Rng rng(3);
  auto ord = identity(100);
  rng.shuffle(ord);
  TwoLevelList t(ord);
  for (std::size_t i = 0; i < ord.size(); ++i) {
    EXPECT_EQ(t.next(ord[i]), ord[(i + 1) % ord.size()]);
    EXPECT_EQ(t.prev(ord[(i + 1) % ord.size()]), ord[i]);
  }
}

TEST(TwoLevelList, SimpleReverse) {
  TwoLevelList t(identity(20));
  t.reverse(3, 7);  // 0 1 2 7 6 5 4 3 8 9 ...
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.next(2), 7);
  EXPECT_EQ(t.next(7), 6);
  EXPECT_EQ(t.next(3), 8);
  EXPECT_EQ(t.prev(3), 4);
}

TEST(TwoLevelList, ReverseAcrossSegmentBoundaries) {
  TwoLevelList t(identity(100));  // segments of ~10
  t.reverse(5, 57);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.next(4), 57);
  EXPECT_EQ(t.next(5), 58);
}

TEST(TwoLevelList, ReverseWrappingPath) {
  TwoLevelList t(identity(30));
  t.reverse(25, 4);  // wraps over the seam
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.next(24), 4);
  EXPECT_EQ(t.next(25), 5);
}

TEST(TwoLevelList, WholeCycleReverseKeepsEdges) {
  TwoLevelList t(identity(25));
  const auto before = edgeSet(t.order());
  t.reverse(0, 24);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(edgeSet(t.order()), before);
  // Direction flipped: next(0) is now the old prev(0).
  EXPECT_EQ(t.next(1), 0);
}

TEST(TwoLevelList, SingleCityReverseIsNoop) {
  TwoLevelList t(identity(15));
  const auto before = t.order(0);
  t.reverse(7, 7);
  EXPECT_EQ(t.order(0), before);
}

TEST(TwoLevelList, BetweenMatchesReference) {
  Rng rng(5);
  auto ord = identity(60);
  rng.shuffle(ord);
  TwoLevelList t(ord);
  ReferenceTour ref(ord);
  for (int trial = 0; trial < 500; ++trial) {
    const int a = static_cast<int>(rng.below(60));
    const int b = static_cast<int>(rng.below(60));
    const int c = static_cast<int>(rng.below(60));
    if (a == b || b == c || a == c) continue;
    EXPECT_EQ(t.between(a, b, c), ref.between(a, b, c))
        << a << " " << b << " " << c;
  }
}

class TwoLevelProperty : public ::testing::TestWithParam<int> {};

TEST_P(TwoLevelProperty, RandomReversalsMatchReferenceModel) {
  const int n = GetParam();
  Rng rng(std::uint64_t(n) * 13 + 5);
  auto ord = identity(n);
  rng.shuffle(ord);
  TwoLevelList t(ord);
  ReferenceTour ref(ord);
  for (int step = 0; step < 300; ++step) {
    const int a = static_cast<int>(rng.below(std::uint64_t(n)));
    const int b = static_cast<int>(rng.below(std::uint64_t(n)));
    if (a == b) continue;
    t.reverse(a, b);
    ref.reverse(a, b);
    ASSERT_TRUE(t.valid()) << "step " << step;
    // Same cycle, same direction: next() agrees everywhere.
    for (int c = 0; c < n; ++c)
      ASSERT_EQ(t.next(c), ref.next(c)) << "step " << step << " city " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TwoLevelProperty,
                         ::testing::Values(8, 16, 64, 100, 333, 1000));

TEST(TwoLevelList, SegmentCountStaysBounded) {
  const int n = 1000;
  Rng rng(17);
  TwoLevelList t(identity(n));
  for (int step = 0; step < 2000; ++step) {
    const int a = static_cast<int>(rng.below(n));
    const int b = static_cast<int>(rng.below(n));
    if (a != b) t.reverse(a, b);
  }
  EXPECT_TRUE(t.valid());
  // Rebalancing must keep the segment count near sqrt(n).
  EXPECT_LE(t.segments(), 2 * (1000 / 31 + 1) + 8);
}

TEST(TwoLevelList, OrderWithStart) {
  TwoLevelList t(identity(12));
  const auto ord = t.order(5);
  EXPECT_EQ(ord.front(), 5);
  EXPECT_EQ(ord.size(), 12u);
}

}  // namespace
}  // namespace distclk
