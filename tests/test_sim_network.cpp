#include "net/sim_network.h"

#include <gtest/gtest.h>

#include <limits>

namespace distclk {
namespace {

Message tourMsg(int from, std::int64_t len) {
  Message m;
  m.type = MessageType::kTour;
  m.from = from;
  m.length = len;
  return m;
}

TEST(SimNetwork, DeliversAfterLatency) {
  SimNetwork net(buildTopology(TopologyKind::kComplete, 3), 0.5);
  net.send(0, 1, 10.0, tourMsg(0, 100));
  EXPECT_TRUE(net.collect(1, 10.4).empty());
  const auto got = net.collect(1, 10.5);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].length, 100);
  // Consumed: a second collect returns nothing.
  EXPECT_TRUE(net.collect(1, 99.0).empty());
}

TEST(SimNetwork, CollectOrdersByArrivalThenSequence) {
  SimNetwork net(buildTopology(TopologyKind::kComplete, 3), 1.0);
  net.send(0, 2, 5.0, tourMsg(0, 1));   // arrives 6.0
  net.send(1, 2, 3.0, tourMsg(1, 2));   // arrives 4.0
  net.send(0, 2, 3.0, tourMsg(0, 3));   // arrives 4.0, later sequence
  const auto got = net.collect(2, 10.0);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].length, 2);
  EXPECT_EQ(got[1].length, 3);
  EXPECT_EQ(got[2].length, 1);
}

TEST(SimNetwork, BroadcastReachesExactlyNeighbors) {
  SimNetwork net(buildTopology(TopologyKind::kHypercube, 8), 0.0);
  net.broadcast(0, 1.0, tourMsg(0, 7));
  // Node 0's hypercube neighbors are 1, 2, 4.
  EXPECT_EQ(net.collect(1, 2.0).size(), 1u);
  EXPECT_EQ(net.collect(2, 2.0).size(), 1u);
  EXPECT_EQ(net.collect(4, 2.0).size(), 1u);
  EXPECT_TRUE(net.collect(3, 2.0).empty());
  EXPECT_TRUE(net.collect(5, 2.0).empty());
  EXPECT_TRUE(net.collect(0, 2.0).empty());
}

TEST(SimNetwork, StatsCountMessagesAndBytes) {
  SimNetwork net(buildTopology(TopologyKind::kComplete, 4), 0.1);
  Message m = tourMsg(0, 5);
  m.order = {1, 2, 3};
  net.broadcast(0, 0.0, m);
  EXPECT_EQ(net.stats().broadcasts, 1);
  EXPECT_EQ(net.stats().messagesSent, 3);
  EXPECT_EQ(net.stats().bytesSent, 3 * (21 + 12));
  EXPECT_EQ(net.stats().sentByNode[0], 3);
}

TEST(SimNetwork, DeadNodesDropTraffic) {
  SimNetwork net(buildTopology(TopologyKind::kComplete, 3), 0.0);
  net.killNode(1);
  net.broadcast(0, 0.0, tourMsg(0, 1));
  EXPECT_TRUE(net.collect(1, 10.0).empty());   // dead receiver
  EXPECT_EQ(net.collect(2, 10.0).size(), 1u);  // alive receiver still gets it
  net.killNode(2);
  net.broadcast(2, 0.0, tourMsg(2, 1));        // dead sender drops
  EXPECT_TRUE(net.collect(0, 10.0).empty());
  EXPECT_FALSE(net.isAlive(1));
  EXPECT_TRUE(net.isAlive(0));
}

TEST(SimNetwork, QueuedMessagesSurviveReceiverDeathBeforeCollect) {
  // killNode blocks future deliveries; messages already queued remain
  // collectible (the paper's dying nodes still empty their sockets).
  SimNetwork net(buildTopology(TopologyKind::kComplete, 3), 0.0);
  net.send(0, 1, 0.0, tourMsg(0, 1));
  net.killNode(1);
  EXPECT_EQ(net.collect(1, 1.0).size(), 1u);
}

TEST(SimNetwork, NextArrivalReportsEarliestPending) {
  SimNetwork net(buildTopology(TopologyKind::kComplete, 3), 1.0);
  EXPECT_EQ(net.nextArrival(1), std::numeric_limits<double>::infinity());
  net.send(0, 1, 4.0, tourMsg(0, 1));
  net.send(2, 1, 2.0, tourMsg(2, 2));
  EXPECT_DOUBLE_EQ(net.nextArrival(1), 3.0);
}

TEST(SimNetwork, RejectsInvalidTopology) {
  Adjacency bad(2);
  bad[0] = {1};
  bad[1] = {};
  EXPECT_THROW(SimNetwork(bad, 0.1), std::invalid_argument);
}

TEST(SimNetwork, PartialCollectLeavesLaterMessages) {
  SimNetwork net(buildTopology(TopologyKind::kComplete, 2), 1.0);
  net.send(0, 1, 0.0, tourMsg(0, 1));  // arrives 1.0
  net.send(0, 1, 5.0, tourMsg(0, 2));  // arrives 6.0
  EXPECT_EQ(net.collect(1, 3.0).size(), 1u);
  EXPECT_EQ(net.collect(1, 7.0).size(), 1u);
}

}  // namespace
}  // namespace distclk
