#include "baselines/lkh_style.h"
#include "baselines/multilevel.h"
#include "baselines/tour_merge.h"

#include <gtest/gtest.h>

#include "construct/construct.h"
#include "tsp/gen.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"

namespace distclk {
namespace {

TEST(LkhStyle, ProducesValidHighQualityTour) {
  const Instance inst = uniformSquare("b", 200, 141);
  Rng rng(1);
  LkhStyleOptions opt;
  opt.trials = 3;
  opt.hkIterations = 150;
  const LkhStyleResult res = lkhStyleSolve(inst, rng, opt);
  Tour t(inst, res.order);
  EXPECT_EQ(t.length(), res.length);
  EXPECT_EQ(res.trialsRun, 3);
  EXPECT_GT(res.hkBound, 0.0);
  // Well-optimized: within 5% of the (well-converged) Held-Karp bound.
  EXPECT_LT(static_cast<double>(res.length), res.hkBound * 1.05);
}

TEST(LkhStyle, TargetStopsEarly) {
  const Instance inst = uniformSquare("b", 100, 142);
  Rng rng(2);
  LkhStyleOptions probeOpt;
  probeOpt.trials = 1;
  probeOpt.hkIterations = 30;
  const auto probe = lkhStyleSolve(inst, rng, probeOpt);
  LkhStyleOptions opt;
  opt.trials = 50;
  opt.hkIterations = 30;
  opt.targetLength = probe.length;
  Rng rng2(2);
  const auto res = lkhStyleSolve(inst, rng2, opt);
  EXPECT_LT(res.trialsRun, 50);
}

TEST(LkhStyle, AnytimeCallbackMonotone) {
  const Instance inst = clustered("b", 150, 8, 143);
  Rng rng(3);
  LkhStyleOptions opt;
  opt.trials = 4;
  opt.hkIterations = 30;
  std::vector<std::int64_t> lengths;
  lkhStyleSolve(inst, rng, opt,
                [&](double, std::int64_t len) { lengths.push_back(len); });
  for (std::size_t i = 1; i < lengths.size(); ++i)
    EXPECT_LT(lengths[i], lengths[i - 1]);
}

TEST(Multilevel, ProducesValidTourWithLevels) {
  const Instance inst = uniformSquare("b", 500, 144);
  Rng rng(4);
  const MultilevelResult res = multilevelSolve(inst, rng);
  Tour t(inst, res.order);
  EXPECT_EQ(t.length(), res.length);
  EXPECT_GE(res.levels, 3);  // 500 -> 250 -> 125 -> 63 -> 32
}

TEST(Multilevel, BeatsConstructionQuality) {
  const Instance inst = clustered("b", 400, 10, 145);
  Rng rng(5);
  const CandidateLists cand(inst, 10);
  const auto qb = inst.tourLength(quickBoruvkaTour(inst, cand));
  const MultilevelResult res = multilevelSolve(inst, rng);
  EXPECT_LT(res.length, qb);
}

TEST(Multilevel, RespectsCoarsestSize) {
  const Instance inst = uniformSquare("b", 300, 146);
  Rng rng(6);
  MultilevelOptions opt;
  opt.coarsestSize = 150;
  const MultilevelResult res = multilevelSolve(inst, rng, opt);
  EXPECT_EQ(res.levels, 1);
  Tour t(inst, res.order);
  EXPECT_TRUE(t.valid());
}

TEST(Multilevel, ThrowsWithoutCoordinates) {
  const std::vector<std::int64_t> m{0, 1, 2, 1, 0, 3, 2, 3, 0};
  const Instance inst("m", 3, m);
  Rng rng(7);
  EXPECT_THROW(multilevelSolve(inst, rng), std::invalid_argument);
}

TEST(TourMerge, MergedNeverWorseThanBestRun) {
  const Instance inst = uniformSquare("b", 300, 147);
  Rng rng(8);
  TourMergeOptions opt;
  opt.runs = 4;
  opt.kicksPerRun = 60;
  const TourMergeResult res = tourMergeSolve(inst, rng, opt);
  Tour t(inst, res.order);
  EXPECT_EQ(t.length(), res.length);
  EXPECT_LE(res.length, res.bestRunLength);
}

TEST(TourMerge, UnionIsSparse) {
  const Instance inst = uniformSquare("b", 200, 148);
  Rng rng(9);
  TourMergeOptions opt;
  opt.runs = 5;
  opt.kicksPerRun = 40;
  const TourMergeResult res = tourMergeSolve(inst, rng, opt);
  // k tours contribute at most k*n edges; after overlap far fewer.
  EXPECT_LE(res.unionEdges, 5 * 200);
  EXPECT_GE(res.unionEdges, 200);  // at least one tour's worth
}

TEST(TourMerge, SingleRunDegeneratesToClk) {
  const Instance inst = uniformSquare("b", 150, 149);
  Rng rng(10);
  TourMergeOptions opt;
  opt.runs = 1;
  opt.kicksPerRun = 30;
  const TourMergeResult res = tourMergeSolve(inst, rng, opt);
  EXPECT_LE(res.length, res.bestRunLength);
  EXPECT_EQ(res.unionEdges, 150);  // exactly the single tour's edges
}

}  // namespace
}  // namespace distclk
