#include "net/message.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace distclk {
namespace {

TEST(Message, TourRoundtrip) {
  Message msg;
  msg.type = MessageType::kTour;
  msg.from = 3;
  msg.length = 1234567890123LL;
  msg.order = {0, 5, 2, 4, 1, 3};
  const auto buf = serialize(msg);
  EXPECT_EQ(deserialize(buf), msg);
}

TEST(Message, OptimumFoundRoundtrip) {
  Message msg;
  msg.type = MessageType::kOptimumFound;
  msg.from = 7;
  msg.length = 42;
  const auto buf = serialize(msg);
  const Message back = deserialize(buf);
  EXPECT_EQ(back, msg);
  EXPECT_TRUE(back.order.empty());
}

TEST(Message, EmptyOrderSerializesCompactly) {
  Message msg;
  msg.type = MessageType::kOptimumFound;
  const auto buf = serialize(msg);
  EXPECT_EQ(buf.size(), 21u);  // magic + type + from + length + count
}

TEST(Message, SizeScalesWithOrder) {
  Message msg;
  msg.order.assign(100, 1);
  EXPECT_EQ(serialize(msg).size(), 21u + 400u);
}

TEST(Message, RejectsBadMagic) {
  Message msg;
  auto buf = serialize(msg);
  buf[0] ^= 0xff;
  EXPECT_THROW(deserialize(buf), std::runtime_error);
}

TEST(Message, RejectsTruncation) {
  Message msg;
  msg.order = {1, 2, 3};
  auto buf = serialize(msg);
  buf.resize(buf.size() - 2);
  EXPECT_THROW(deserialize(buf), std::runtime_error);
}

TEST(Message, RejectsTrailingBytes) {
  Message msg;
  auto buf = serialize(msg);
  buf.push_back(0);
  EXPECT_THROW(deserialize(buf), std::runtime_error);
}

TEST(Message, RejectsUnknownType) {
  Message msg;
  auto buf = serialize(msg);
  buf[4] = 99;  // the type byte follows magic + version
  EXPECT_THROW(deserialize(buf), std::runtime_error);
}

TEST(Message, RejectsWrongVersion) {
  Message msg;
  msg.order = {1, 2, 3};
  auto buf = serialize(msg);
  // The version byte follows the magic; unstamped messages stay on the
  // plain (v2) format so tracing-off byte accounting never changes.
  EXPECT_EQ(buf[3], kWireVersionPlain);
  buf[3] = kWireVersion + 1;
  EXPECT_THROW(deserialize(buf), std::runtime_error);
  buf[3] = 0;
  EXPECT_THROW(deserialize(buf), std::runtime_error);
  // Flipping a plain frame to v3 must fail too: the decoder then demands a
  // trace trailer the payload does not have.
  buf[3] = kWireVersion;
  EXPECT_THROW(deserialize(buf), std::runtime_error);
}

TEST(Message, StampedRoundtripCarriesTrailer) {
  Message msg;
  msg.type = MessageType::kTour;
  msg.from = 2;
  msg.length = 8126701;
  msg.order = {0, 3, 1, 2};
  msg.trace = TraceStamp{17, 0xfeedbeefcafeULL};
  const auto buf = serialize(msg);
  EXPECT_EQ(buf[3], kWireVersion);
  EXPECT_EQ(buf.size(), serializedSize(msg));
  const Message back = deserialize(buf);
  EXPECT_EQ(back, msg);
  ASSERT_TRUE(back.trace.has_value());
  EXPECT_EQ(back.trace->seq, 17u);
  EXPECT_EQ(back.trace->lamport, 0xfeedbeefcafeULL);
}

TEST(Message, StampCostsExactlyTheTrailer) {
  Message msg;
  msg.order = {1, 2, 3};
  const std::size_t plain = serializedSize(msg);
  msg.trace = TraceStamp{1, 1};
  EXPECT_EQ(serializedSize(msg), plain + kTraceTrailerBytes);
  EXPECT_EQ(serialize(msg).size(), plain + kTraceTrailerBytes);
}

TEST(Message, RejectsStampedFrameFlippedToPlain) {
  Message msg;
  msg.order = {1, 2, 3};
  msg.trace = TraceStamp{5, 9};
  auto buf = serialize(msg);
  // A v3 frame relabeled v2 carries 16 unexplained bytes — must reject.
  buf[3] = kWireVersionPlain;
  EXPECT_THROW(deserialize(buf), std::runtime_error);
}

// Property test: randomized tours round-trip exactly through the codec for
// every MessageType, and serializedSize() always predicts the encoding.
TEST(Message, RandomizedRoundTripAllTypes) {
  Rng rng(20260807);
  for (const MessageType type : kAllMessageTypes) {
    for (int trial = 0; trial < 50; ++trial) {
      Message msg;
      msg.type = type;
      msg.from = static_cast<std::int32_t>(rng.range(-1, 1 << 20));
      msg.length = rng.range(0, std::int64_t(1) << 40);
      const auto n = std::size_t(rng.below(2000));
      msg.order.resize(n);
      for (auto& city : msg.order)
        city = static_cast<std::int32_t>(rng.range(0, 1 << 24));
      // Half the trials carry a causal stamp: both wire versions must
      // round-trip under the same codec.
      if (rng.below(2) == 0)
        msg.trace = TraceStamp{std::uint64_t(rng.range(0, 1 << 30)),
                               std::uint64_t(rng.range(0, 1 << 30))};
      const auto buf = serialize(msg);
      EXPECT_EQ(buf.size(), serializedSize(msg));
      EXPECT_EQ(deserialize(buf), msg);
    }
  }
}

// Property test: single-byte corruption anywhere in the buffer is either
// rejected or yields a message that re-encodes to the corrupted bytes
// (i.e. the codec never invents data it cannot represent).
TEST(Message, CorruptedBuffersRejectedOrSelfConsistent) {
  Rng rng(42);
  Message stamped;
  stamped.type = MessageType::kTour;
  stamped.from = 6;
  stamped.length = 987654321;
  stamped.order = {4, 0, 3, 1, 2, 5, 7, 6};
  stamped.trace = TraceStamp{3, 12};
  Message plain = stamped;
  plain.trace.reset();
  // Both wire versions: in particular a flipped version byte must be
  // rejected in either direction (the mandatory v3 trailer makes the
  // exact-payload-size check fail both ways).
  for (const Message& msg : {plain, stamped}) {
    const auto clean = serialize(msg);
    for (std::size_t at = 0; at < clean.size(); ++at) {
      auto buf = clean;
      buf[at] ^= std::uint8_t(1 + rng.below(255));
      try {
        const Message back = deserialize(buf);
        EXPECT_EQ(serialize(back), buf) << "byte " << at;
      } catch (const std::runtime_error&) {
        // rejection is the expected outcome for header corruption
      }
    }
  }
}

// Property test: random truncations of a valid buffer never decode.
TEST(Message, RandomTruncationsAlwaysRejected) {
  Message stamped;
  stamped.order = {10, 11, 12, 13, 14};
  stamped.trace = TraceStamp{1, 2};
  Message plain = stamped;
  plain.trace.reset();
  for (const Message& msg : {plain, stamped}) {
    const auto clean = serialize(msg);
    for (std::size_t keep = 0; keep < clean.size(); ++keep) {
      auto buf = clean;
      buf.resize(keep);
      EXPECT_THROW(deserialize(buf), std::runtime_error) << "keep " << keep;
    }
  }
}

TEST(Message, RejectsEmptyBuffer) {
  EXPECT_THROW(deserialize({}), std::runtime_error);
}

TEST(Message, LargeTourRoundtrip) {
  Message msg;
  msg.order.resize(25000);
  for (int i = 0; i < 25000; ++i) msg.order[std::size_t(i)] = 24999 - i;
  msg.length = 99999999;
  EXPECT_EQ(deserialize(serialize(msg)), msg);
}

}  // namespace
}  // namespace distclk
