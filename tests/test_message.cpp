#include "net/message.h"

#include <gtest/gtest.h>

namespace distclk {
namespace {

TEST(Message, TourRoundtrip) {
  Message msg;
  msg.type = MessageType::kTour;
  msg.from = 3;
  msg.length = 1234567890123LL;
  msg.order = {0, 5, 2, 4, 1, 3};
  const auto buf = serialize(msg);
  EXPECT_EQ(deserialize(buf), msg);
}

TEST(Message, OptimumFoundRoundtrip) {
  Message msg;
  msg.type = MessageType::kOptimumFound;
  msg.from = 7;
  msg.length = 42;
  const auto buf = serialize(msg);
  const Message back = deserialize(buf);
  EXPECT_EQ(back, msg);
  EXPECT_TRUE(back.order.empty());
}

TEST(Message, EmptyOrderSerializesCompactly) {
  Message msg;
  msg.type = MessageType::kOptimumFound;
  const auto buf = serialize(msg);
  EXPECT_EQ(buf.size(), 21u);  // magic + type + from + length + count
}

TEST(Message, SizeScalesWithOrder) {
  Message msg;
  msg.order.assign(100, 1);
  EXPECT_EQ(serialize(msg).size(), 21u + 400u);
}

TEST(Message, RejectsBadMagic) {
  Message msg;
  auto buf = serialize(msg);
  buf[0] ^= 0xff;
  EXPECT_THROW(deserialize(buf), std::runtime_error);
}

TEST(Message, RejectsTruncation) {
  Message msg;
  msg.order = {1, 2, 3};
  auto buf = serialize(msg);
  buf.resize(buf.size() - 2);
  EXPECT_THROW(deserialize(buf), std::runtime_error);
}

TEST(Message, RejectsTrailingBytes) {
  Message msg;
  auto buf = serialize(msg);
  buf.push_back(0);
  EXPECT_THROW(deserialize(buf), std::runtime_error);
}

TEST(Message, RejectsUnknownType) {
  Message msg;
  auto buf = serialize(msg);
  buf[4] = 99;  // the type byte follows the 4-byte magic
  EXPECT_THROW(deserialize(buf), std::runtime_error);
}

TEST(Message, RejectsEmptyBuffer) {
  EXPECT_THROW(deserialize({}), std::runtime_error);
}

TEST(Message, LargeTourRoundtrip) {
  Message msg;
  msg.order.resize(25000);
  for (int i = 0; i < 25000; ++i) msg.order[std::size_t(i)] = 24999 - i;
  msg.length = 99999999;
  EXPECT_EQ(deserialize(serialize(msg)), msg);
}

}  // namespace
}  // namespace distclk
