#include "tsp/instance.h"

#include <gtest/gtest.h>

#include <vector>

namespace distclk {
namespace {

Instance euc(std::vector<Point> pts) {
  return Instance("t", std::move(pts), EdgeWeightType::kEuc2D);
}

TEST(Instance, RejectsTooFewCities) {
  EXPECT_THROW(euc({{0, 0}, {1, 1}}), std::invalid_argument);
}

TEST(Instance, Euc2dRoundsToNearest) {
  // d((0,0),(1,1)) = 1.414... -> 1 ; d((0,0),(2,2)) = 2.828... -> 3
  const Instance inst = euc({{0, 0}, {1, 1}, {2, 2}});
  EXPECT_EQ(inst.dist(0, 1), 1);
  EXPECT_EQ(inst.dist(0, 2), 3);
  EXPECT_EQ(inst.dist(1, 2), 1);
}

TEST(Instance, Euc2dExactInteger) {
  const Instance inst = euc({{0, 0}, {3, 4}, {0, 10}});
  EXPECT_EQ(inst.dist(0, 1), 5);
  EXPECT_EQ(inst.dist(0, 2), 10);
}

TEST(Instance, Ceil2dRoundsUp) {
  const Instance inst("t", {{0, 0}, {1, 1}, {3, 4}}, EdgeWeightType::kCeil2D);
  EXPECT_EQ(inst.dist(0, 1), 2);   // ceil(1.414)
  EXPECT_EQ(inst.dist(0, 2), 5);   // exact stays exact
}

TEST(Instance, AttMetric) {
  // TSPLIB ATT: r = sqrt((dx^2+dy^2)/10), t = nint(r), d = t<r ? t+1 : t.
  const Instance inst("t", {{0, 0}, {10, 0}, {0, 1}}, EdgeWeightType::kAtt);
  // r = sqrt(100/10) = 3.162..., nint = 3 < r -> 4.
  EXPECT_EQ(inst.dist(0, 1), 4);
  // r = sqrt(0.1) = 0.316, nint = 0 < r -> 1.
  EXPECT_EQ(inst.dist(0, 2), 1);
}

TEST(Instance, GeoDistanceUlyssesPair) {
  // ulysses16 cities 1 and 2: (38.24, 20.42) and (39.57, 26.15).
  // TSPLIB's GEO distance between them is 509.
  const Instance inst("t", {{38.24, 20.42}, {39.57, 26.15}, {40.56, 25.32}},
                      EdgeWeightType::kGeo);
  EXPECT_EQ(inst.dist(0, 1), 509);
}

TEST(Instance, ManhattanAndChebyshev) {
  const Instance man("t", {{0, 0}, {3, 4}, {1, 1}}, EdgeWeightType::kMan2D);
  EXPECT_EQ(man.dist(0, 1), 7);
  const Instance max("t", {{0, 0}, {3, 4}, {1, 1}}, EdgeWeightType::kMax2D);
  EXPECT_EQ(max.dist(0, 1), 4);
}

TEST(Instance, DistanceIsSymmetric) {
  const Instance inst = euc({{0.3, 7.1}, {5.5, 2.2}, {9.9, 4.4}, {1, 1}});
  for (int i = 0; i < inst.n(); ++i)
    for (int j = 0; j < inst.n(); ++j) EXPECT_EQ(inst.dist(i, j), inst.dist(j, i));
}

TEST(Instance, ExplicitMatrix) {
  const std::vector<std::int64_t> m{0, 1, 2,   //
                                    1, 0, 3,   //
                                    2, 3, 0};
  const Instance inst("t", 3, m);
  EXPECT_EQ(inst.dist(0, 1), 1);
  EXPECT_EQ(inst.dist(1, 2), 3);
  EXPECT_EQ(inst.weightType(), EdgeWeightType::kExplicit);
  EXPECT_FALSE(inst.hasCoords());
}

TEST(Instance, ExplicitMatrixRejectsAsymmetry) {
  const std::vector<std::int64_t> m{0, 1, 2,   //
                                    9, 0, 3,   //
                                    2, 3, 0};
  EXPECT_THROW(Instance("t", 3, m), std::invalid_argument);
}

TEST(Instance, ExplicitMatrixRejectsWrongSize) {
  EXPECT_THROW(Instance("t", 3, std::vector<std::int64_t>(8, 0)),
               std::invalid_argument);
}

TEST(Instance, TourLengthClosesTheCycle) {
  const Instance inst = euc({{0, 0}, {3, 0}, {3, 4}});
  const std::vector<int> order{0, 1, 2};
  EXPECT_EQ(inst.tourLength(order), 3 + 4 + 5);
}

TEST(Instance, TourLengthPermutationInvariantUnderRotation) {
  const Instance inst = euc({{0, 0}, {3, 0}, {3, 4}, {0, 4}});
  const std::vector<int> a{0, 1, 2, 3};
  const std::vector<int> b{2, 3, 0, 1};
  EXPECT_EQ(inst.tourLength(a), inst.tourLength(b));
}

TEST(Instance, ToStringCoversAllTypes) {
  EXPECT_STREQ(toString(EdgeWeightType::kEuc2D), "EUC_2D");
  EXPECT_STREQ(toString(EdgeWeightType::kCeil2D), "CEIL_2D");
  EXPECT_STREQ(toString(EdgeWeightType::kAtt), "ATT");
  EXPECT_STREQ(toString(EdgeWeightType::kGeo), "GEO");
  EXPECT_STREQ(toString(EdgeWeightType::kMan2D), "MAN_2D");
  EXPECT_STREQ(toString(EdgeWeightType::kMax2D), "MAX_2D");
  EXPECT_STREQ(toString(EdgeWeightType::kExplicit), "EXPLICIT");
}

TEST(Instance, CommentRoundtrip) {
  Instance inst = euc({{0, 0}, {1, 0}, {0, 1}});
  inst.setComment("hello");
  EXPECT_EQ(inst.comment(), "hello");
}

}  // namespace
}  // namespace distclk
