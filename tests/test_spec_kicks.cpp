// Tests for the speculative kick engine: footprint and conflict-ledger
// units, exact 1-worker parity against the sequential fast path (BigTour)
// and against a straight-line flip-kick reference loop built from the same
// public primitives (ArrayTour — the sequential array kick anchors its
// preserved cut on the array rotation, which cannot be replayed
// slot-locally; see tests/test_big_tour.cpp for the precedent that the two
// kick constructions are different-but-legitimate double bridges), plus
// multi-worker determinism, validity, and telemetry coherence.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "construct/construct.h"
#include "core/node.h"
#include "lk/chained_lk.h"
#include "lk/kicks.h"
#include "lk/lin_kernighan.h"
#include "lk/lk_workspace.h"
#include "lk/spec_kicks.h"
#include "tsp/big_tour.h"
#include "tsp/gen.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"
#include "util/rng.h"

namespace distclk {
namespace {

bool intervalContains(const SlotInterval& iv, int x) {
  return iv.lo <= iv.hi ? x >= iv.lo && x <= iv.hi : x >= iv.lo || x <= iv.hi;
}

// The footprint must cover every slot reverseSegment(a, b) writes, plus one
// slot on each side (the boundary-edge distance reads). Checked against a
// direct simulation of the documented slot rule: reverse [a, b] when that
// arc is the shorter one, else reverse the complement arc.
TEST(FlipSlotFootprint, CoversSimulatedReversalPlusPadding) {
  for (int n : {8, 9, 31, 64}) {
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        SlotInterval iv;
        const bool has = flipSlotFootprint(a, b, n, iv);
        const int len = (b - a + n) % n + 1;
        if (len >= n) {
          EXPECT_FALSE(has) << "whole-tour flip has no footprint";
          continue;
        }
        ASSERT_TRUE(has);
        // Slots the reversal physically writes.
        int lo = a, hi = b;
        if (2 * len > n) {
          lo = (b + 1) % n;
          hi = (a - 1 + n) % n;
        }
        for (int s = lo;; s = (s + 1) % n) {
          EXPECT_TRUE(intervalContains(iv, s))
              << "n=" << n << " a=" << a << " b=" << b << " slot " << s;
          if (s == hi) break;
        }
        // Padding for the boundary-edge length reads.
        EXPECT_TRUE(intervalContains(iv, (lo - 1 + n) % n));
        EXPECT_TRUE(intervalContains(iv, (hi + 1) % n));
      }
    }
  }
}

TEST(ConflictLedger, DisjointCommitsDoNotConflict) {
  ConflictLedger ledger;
  ledger.reset(100);
  const SlotInterval a{10, 20};
  EXPECT_FALSE(ledger.conflicts({&a, 1}));  // empty ledger never conflicts
  ledger.commit({&a, 1});
  const SlotInterval b{21, 30};
  EXPECT_FALSE(ledger.conflicts({&b, 1}));
  ledger.commit({&b, 1});
  EXPECT_EQ(ledger.groups(), 2);
  const SlotInterval touching{30, 40};
  EXPECT_TRUE(ledger.conflicts({&touching, 1}));
  ledger.auditCheck("test:disjoint");
}

TEST(ConflictLedger, WraparoundIntervalsOverlapCorrectly) {
  ConflictLedger ledger;
  ledger.reset(100);
  const SlotInterval wrap{90, 5};  // 90..99, 0..5
  ledger.commit({&wrap, 1});
  const SlotInterval inside{3, 4};
  const SlotInterval spanning{80, 92};
  const SlotInterval clear{40, 60};
  const SlotInterval containing{50, 70};  // does not reach the wrap
  EXPECT_TRUE(ledger.conflicts({&inside, 1}));
  EXPECT_TRUE(ledger.conflicts({&spanning, 1}));
  EXPECT_FALSE(ledger.conflicts({&clear, 1}));
  EXPECT_FALSE(ledger.conflicts({&containing, 1}));
  const SlotInterval whole{0, 99};
  EXPECT_TRUE(ledger.conflicts({&whole, 1}));
  ledger.auditCheck("test:wrap");
}

TEST(ConflictLedger, ResetStartsARoundEmpty) {
  ConflictLedger ledger;
  ledger.reset(50);
  const SlotInterval a{0, 49};
  ledger.commit({&a, 1});
  EXPECT_TRUE(ledger.conflicts({&a, 1}));
  ledger.reset(50);
  EXPECT_EQ(ledger.groups(), 0);
  EXPECT_FALSE(ledger.conflicts({&a, 1}));
}

// One result's own intervals may overlap each other (successive flips of
// the same kick+repair routinely touch the same slots); only cross-group
// overlap is a conflict.
TEST(ConflictLedger, IntervalsWithinOneGroupMayOverlap) {
  ConflictLedger ledger;
  ledger.reset(100);
  const std::array<SlotInterval, 2> group{{{10, 30}, {20, 40}}};
  ledger.commit({group.data(), group.size()});
  EXPECT_EQ(ledger.groups(), 1);
  ledger.auditCheck("test:within-group");
  const SlotInterval next{35, 50};
  EXPECT_TRUE(ledger.conflicts({&next, 1}));
}

// ---------------------------------------------------------------------------
// Parity
// ---------------------------------------------------------------------------

struct ImprovementTrace {
  std::vector<std::int64_t> lengths;
  AnytimeCallback callback() {
    return [this](double, std::int64_t len) { lengths.push_back(len); };
  }
};

// With one worker the BigTour speculative trajectory is bit-identical to
// the sequential fast path: the worker evaluates the same kick (the
// flip-token construction IS the sequential BigTour kick) on a tour in the
// same state, the coordinator draws the same selection stream from the
// same RNG, and the acceptance rule (delta <= 0) is the sequential
// newLen <= championLen.
TEST(SpecParity, OneWorkerBigTourMatchesSequential) {
  const Instance inst = uniformSquare("spec-big", 260, 77);
  CandidateLists cand(inst, 8);
  const std::vector<int> start = quickBoruvkaTour(inst, cand);

  ClkOptions seq;
  seq.maxKicks = 60;
  ClkOptions spec = seq;
  spec.speculativeWorkers = 1;

  BigTour a(inst, start);
  BigTour b(inst, start);
  Rng rngA(31);
  Rng rngB(31);
  LkWorkspace wsA;
  LkWorkspace wsB;
  ImprovementTrace traceA;
  ImprovementTrace traceB;
  const ClkResult resA = chainedLinKernighan(a, cand, rngA, wsA, seq,
                                             traceA.callback());
  const ClkResult resB = chainedLinKernighan(b, cand, rngB, wsB, spec,
                                             traceB.callback());

  EXPECT_EQ(a.orderVector(), b.orderVector());
  EXPECT_EQ(resA.length, resB.length);
  EXPECT_EQ(resA.kicks, resB.kicks);
  EXPECT_EQ(resA.improvements, resB.improvements);
  EXPECT_EQ(resA.flips, resB.flips);
  EXPECT_EQ(resA.undoneFlips, resB.undoneFlips);
  EXPECT_EQ(resA.rollbacks, resB.rollbacks);
  EXPECT_EQ(traceA.lengths, traceB.lengths);  // same commit stream
  EXPECT_TRUE(b.valid());
  // One worker can never lose a ledger race.
  EXPECT_EQ(resB.specConflicts, 0);
  EXPECT_EQ(resB.speculated, resB.kicks);
  EXPECT_EQ(resB.specCommitted + resB.rollbacks, resB.kicks);
  // The sequential path reports no speculation.
  EXPECT_EQ(resA.speculated, 0);
  EXPECT_EQ(resA.specCommitted, 0);
  EXPECT_EQ(resA.specConflicts, 0);
}

// ArrayTour 1-worker parity against a straight-line sequential loop built
// from the engine's own public primitives (select + applyKickCities +
// dirty LK repair + commit/rollback). The engine's master must retrace
// this loop slot-for-slot: committed token streams replay as positional
// reverseSegment calls, which reproduce the worker's writes exactly.
TEST(SpecParity, OneWorkerArrayTourMatchesFlipKickReferenceLoop) {
  const Instance inst = clustered("spec-array", 240, 8, 78);
  CandidateLists cand(inst, 8);
  const std::vector<int> start = quickBoruvkaTour(inst, cand);
  constexpr std::int64_t kKicks = 60;

  // Reference: the sequential flip-kick loop.
  Tour ref(inst, start);
  Rng rngRef(41);
  LkWorkspace wsRef;
  std::int64_t refImprovements = 0;
  linKernighanOptimize(ref, cand, LkOptions{}, wsRef);
  for (std::int64_t kick = 0; kick < kKicks; ++kick) {
    const std::int64_t championLen = ref.length();
    wsRef.resetUndo();
    selectKickCitiesInto(inst, KickStrategy::kRandomWalk, cand, rngRef,
                         KickOptions{}, wsRef.kickCities, wsRef.kickScratch);
    const std::array<int, 4> cities{wsRef.kickCities[0], wsRef.kickCities[1],
                                    wsRef.kickCities[2], wsRef.kickCities[3]};
    applyKickCities(ref, cities, wsRef);
    wsRef.recording = true;
    linKernighanOptimize(ref, cand, wsRef.dirty, LkOptions{}, wsRef);
    wsRef.recording = false;
    if (ref.length() <= championLen) {
      if (ref.length() < championLen) ++refImprovements;
      commitKick(wsRef);
    } else {
      rollbackKick(ref, wsRef);
    }
  }

  ClkOptions spec;
  spec.maxKicks = kKicks;
  spec.speculativeWorkers = 1;
  Tour t(inst, start);
  Rng rng(41);
  LkWorkspace ws;
  const ClkResult res = chainedLinKernighan(t, cand, rng, ws, spec);

  EXPECT_EQ(t.orderVector(), ref.orderVector());  // byte-equal array
  EXPECT_EQ(res.length, ref.length());
  EXPECT_EQ(res.kicks, kKicks);
  EXPECT_EQ(res.improvements, refImprovements);
  EXPECT_EQ(res.specConflicts, 0);
  EXPECT_EQ(res.speculated, res.kicks);
  EXPECT_TRUE(t.valid());
}

// Speculation off must leave the options object on the sequential pinned
// path — the dispatch is a pure speculativeWorkers > 0 test.
TEST(SpecParity, WorkersZeroIsTheSequentialPath) {
  const Instance inst = uniformSquare("spec-off", 200, 79);
  CandidateLists cand(inst, 8);
  const std::vector<int> start = quickBoruvkaTour(inst, cand);
  ClkOptions off;
  off.maxKicks = 40;
  off.speculativeWorkers = 0;
  ClkOptions plain;
  plain.maxKicks = 40;

  Tour a(inst, start);
  Tour b(inst, start);
  Rng rngA(5);
  Rng rngB(5);
  const ClkResult resA = chainedLinKernighan(a, cand, rngA, off);
  const ClkResult resB = chainedLinKernighan(b, cand, rngB, plain);
  EXPECT_EQ(a.orderVector(), b.orderVector());
  EXPECT_EQ(resA.length, resB.length);
  EXPECT_EQ(resA.speculated, 0);
}

// ---------------------------------------------------------------------------
// Multi-worker behaviour
// ---------------------------------------------------------------------------

void expectCoherentStats(const ClkResult& res, std::int64_t maxKicks) {
  EXPECT_EQ(res.speculated, res.specCommitted + res.rollbacks +
                                res.specConflicts);
  EXPECT_EQ(res.kicks, res.specCommitted + res.rollbacks);
  EXPECT_LE(res.kicks, maxKicks);
}

// The trajectory is a pure function of (seed, options, worker count):
// thread scheduling must never leak into the result.
TEST(SpecMultiWorker, ArrayTourRunsAreDeterministic) {
  const Instance inst = uniformSquare("spec-det", 400, 91);
  CandidateLists cand(inst, 8);
  const std::vector<int> start = quickBoruvkaTour(inst, cand);
  ClkOptions opt;
  opt.maxKicks = 80;
  opt.speculativeWorkers = 3;

  auto run = [&](std::pair<std::vector<int>, ClkResult>& out) {
    Tour t(inst, start);
    Rng rng(13);
    LkWorkspace ws;
    out.second = chainedLinKernighan(t, cand, rng, ws, opt);
    out.first = t.orderVector();
    EXPECT_TRUE(t.valid());
  };
  std::pair<std::vector<int>, ClkResult> first, second;
  run(first);
  run(second);

  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second.length, second.second.length);
  EXPECT_EQ(first.second.kicks, second.second.kicks);
  EXPECT_EQ(first.second.improvements, second.second.improvements);
  EXPECT_EQ(first.second.speculated, second.second.speculated);
  EXPECT_EQ(first.second.specCommitted, second.second.specCommitted);
  EXPECT_EQ(first.second.specConflicts, second.second.specConflicts);
  expectCoherentStats(first.second, opt.maxKicks);
  EXPECT_EQ(first.second.kicks, opt.maxKicks);  // no target/time cut
}

TEST(SpecMultiWorker, BigTourRunsAreDeterministic) {
  const Instance inst = clustered("spec-big-det", 300, 6, 92);
  CandidateLists cand(inst, 8);
  const std::vector<int> start = quickBoruvkaTour(inst, cand);
  ClkOptions opt;
  opt.maxKicks = 60;
  opt.speculativeWorkers = 4;

  auto run = [&](std::vector<int>& order, ClkResult& res) {
    BigTour t(inst, start);
    Rng rng(17);
    LkWorkspace ws;
    res = chainedLinKernighan(t, cand, rng, ws, opt);
    order = t.orderVector();
    EXPECT_TRUE(t.valid());
  };
  std::vector<int> orderA, orderB;
  ClkResult resA, resB;
  run(orderA, resA);
  run(orderB, resB);

  EXPECT_EQ(orderA, orderB);
  EXPECT_EQ(resA.length, resB.length);
  EXPECT_EQ(resA.specConflicts, resB.specConflicts);
  expectCoherentStats(resA, opt.maxKicks);
  EXPECT_EQ(resA.kicks, opt.maxKicks);
}

// Small tour + many workers: footprints are mostly whole-tour, so nearly
// every round aborts all but one result — the re-dispatch queue must still
// drain and the run must terminate with the full kick budget resolved.
TEST(SpecMultiWorker, HeavyConflictsTerminateAndResolveAllKicks) {
  const Instance inst = uniformSquare("spec-tiny", 50, 93);
  CandidateLists cand(inst, 6);
  Tour t(inst, quickBoruvkaTour(inst, cand));
  Rng rng(19);
  LkWorkspace ws;
  ClkOptions opt;
  opt.maxKicks = 30;
  opt.speculativeWorkers = 4;
  const ClkResult res = chainedLinKernighan(t, cand, rng, ws, opt);
  EXPECT_TRUE(t.valid());
  expectCoherentStats(res, opt.maxKicks);
  EXPECT_EQ(res.kicks, opt.maxKicks);
}

TEST(SpecMultiWorker, TargetLengthStopsTheRun) {
  const Instance inst = uniformSquare("spec-target", 200, 94);
  CandidateLists cand(inst, 8);
  Tour t(inst, quickBoruvkaTour(inst, cand));
  Rng rng(23);
  LkWorkspace ws;
  ClkOptions opt;
  opt.speculativeWorkers = 2;
  opt.maxKicks = 1000000;
  opt.targetLength = t.length();  // already met after the initial LK
  const ClkResult res = chainedLinKernighan(t, cand, rng, ws, opt);
  EXPECT_TRUE(res.hitTarget);
  EXPECT_LE(res.length, opt.targetLength);
}

TEST(SpecOptions, ReferencePathAndSpeculationAreMutuallyExclusive) {
  const Instance inst = uniformSquare("spec-excl", 100, 95);
  CandidateLists cand(inst, 6);
  Tour t(inst, quickBoruvkaTour(inst, cand));
  Rng rng(3);
  ClkOptions opt;
  opt.referenceKickPath = true;
  opt.speculativeWorkers = 2;
  EXPECT_THROW(chainedLinKernighan(t, cand, rng, opt), std::invalid_argument);
}

// A speculative node must still produce a valid tour deterministically
// (same seed, same params => same best), and its CLK telemetry must flow
// into the node metrics.
TEST(SpecNode, NodeWithSpeculativeWorkersIsDeterministicAndValid) {
  const Instance inst = uniformSquare("spec-node", 240, 96);
  CandidateLists cand(inst, 8);
  DistParams params;
  params.clkKicksPerCall = 40;
  params.speculativeWorkers = 2;

  auto run = [&](obs::MetricsRegistry* registry) {
    DistNode node(inst, cand, params, 0, 7);
    if (registry != nullptr) node.setMetrics(NodeMetrics::attach(*registry));
    node.initialStep();
    const DistNode::StepOutcome out = node.step({});
    EXPECT_TRUE(node.best().valid());
    return out.bestLength;
  };
  obs::MetricsRegistry registry;
  const std::int64_t withMetrics = run(&registry);
  const std::int64_t without = run(nullptr);
  EXPECT_EQ(withMetrics, without);  // metrics are pure observation
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_GT(snap.counterValue("node.spec_speculated"), 0);
  EXPECT_EQ(snap.counterValue("node.spec_speculated"),
            snap.counterValue("node.spec_committed") +
                snap.counterValue("node.spec_conflicts") +
                snap.counterValue("node.clk_rollbacks"));
}

}  // namespace
}  // namespace distclk
