#include "util/table.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace distclk {
namespace {

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"Instance", "Len"});
  t.addRow({"fl1577s", "12345"});
  t.addRow({"x", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Instance"), std::string::npos);
  EXPECT_NE(out.find("fl1577s"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // The second column starts at the same character offset in the header
  // line and in both data lines.
  std::istringstream lines(out);
  std::string header, rule, row1, row2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(header.find("Len"), row1.find("12345"));
  EXPECT_EQ(header.find("Len"), row2.find("1", 2));
}

TEST(Table, CsvBasic) {
  Table t({"a", "b"});
  t.addRow({"1", "2"});
  std::ostringstream os;
  t.writeCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a"});
  t.addRow({"va,l"});
  t.addRow({"q\"uote"});
  std::ostringstream os;
  t.writeCsv(os);
  EXPECT_EQ(os.str(), "a\n\"va,l\"\n\"q\"\"uote\"\n");
}

TEST(Table, WriteCsvFileRoundtrip) {
  Table t({"x", "y"});
  t.addRow({"1", "2"});
  const std::string path = ::testing::TempDir() + "/distclk_table_test.csv";
  ASSERT_TRUE(t.writeCsvFile(path));
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "x,y");
  EXPECT_EQ(line2, "1,2");
}

TEST(Table, WriteCsvFileFailsOnBadPath) {
  Table t({"a"});
  EXPECT_FALSE(t.writeCsvFile("/nonexistent-dir-xyz/out.csv"));
}

TEST(Table, CountsRowsCols) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.addRow({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(-0.5, 3), "-0.500");
}

TEST(FmtPct, Converts) {
  EXPECT_EQ(fmtPct(0.00123), "0.123%");
  EXPECT_EQ(fmtPct(1.0, 0), "100%");
}

TEST(FmtPctOrOpt, OptAtZero) {
  EXPECT_EQ(fmtPctOrOpt(0.0), "OPT");
  EXPECT_EQ(fmtPctOrOpt(1e-12), "OPT");
  EXPECT_EQ(fmtPctOrOpt(0.005), "0.500%");
}

}  // namespace
}  // namespace distclk
