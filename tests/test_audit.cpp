// Tests for the invariant audit mode (util/audit.h). auditCheck() methods
// are compiled in every build flavor, so this suite runs (and must pass)
// with DISTCLK_AUDIT both OFF and ON; under -DDISTCLK_AUDIT=ON the same
// operations additionally self-audit through the compiled-in hooks, which
// is what the tier-1 audit pass (build-audit, ASan) exercises.
#include <gtest/gtest.h>

#include <vector>

#include "core/runtime.h"
#include "lk/chained_lk.h"
#include "lk/lk_workspace.h"
#include "lk/spec_kicks.h"
#include "tsp/big_tour.h"
#include "tsp/gen.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"
#include "tsp/twolevel.h"
#include "util/audit.h"
#include "util/rng.h"

namespace distclk {
namespace {

TEST(Audit, TourSurvivesRandomMoves) {
  const Instance inst = uniformSquare("audit-tour", 64, 7);
  Tour tour(inst);
  Rng rng(11);
  for (int it = 0; it < 200; ++it) {
    const int a = static_cast<int>(rng.below(64));
    const int b = static_cast<int>(rng.below(64));
    if (a == b) continue;
    tour.reverseSegment(a, b);
    tour.auditCheck("test:reverseSegment");
  }
  const int n = tour.n();
  tour.doubleBridge(n / 4, n / 2, 3 * n / 4);
  tour.auditCheck("test:doubleBridge");
  tour.twoOptMove(tour.at(0), tour.at(5));
  tour.auditCheck("test:twoOptMove");
}

TEST(Audit, BigTourSurvivesRandomFlips) {
  const Instance inst = uniformSquare("audit-big", 128, 3);
  BigTour tour(inst);
  Rng rng(5);
  for (int it = 0; it < 100; ++it) {
    const int a = static_cast<int>(rng.below(128));
    const int b = static_cast<int>(rng.below(128));
    if (a == b) continue;
    tour.reverseForward(a, b);
    tour.auditCheck("test:reverseForward");
  }
}

TEST(Audit, TwoLevelListSurvivesReversals) {
  std::vector<int> order(200);
  for (int i = 0; i < 200; ++i) order[std::size_t(i)] = i;
  TwoLevelList list(order);
  Rng rng(17);
  for (int it = 0; it < 150; ++it) {
    const int a = static_cast<int>(rng.below(200));
    const int b = static_cast<int>(rng.below(200));
    if (a == b) continue;
    list.reverse(a, b);
    list.auditCheck("test:reverse");
  }
}

TEST(Audit, CandidateListsSurviveMakeSymmetric) {
  const Instance inst = clustered("audit-cand", 150, 5, 23);
  CandidateLists cand(inst, 8, CandidateLists::Kind::kQuadrant);
  cand.auditCheck("test:construct");
  cand.makeSymmetric();
  cand.auditCheck("test:makeSymmetric");
  EXPECT_TRUE(cand.distanceSorted());
}

TEST(Audit, CandidateListsAuditCatchesFalseSortedClaim) {
  const Instance inst = uniformSquare("audit-bad", 16, 9);
  // Descending-by-distance lists falsely claimed ascending: the audit must
  // abort with a diagnostic (and under -DDISTCLK_AUDIT=ON the constructor
  // hook itself would catch it).
  auto buildAndAudit = [&] {
    std::vector<std::vector<int>> lists(16);
    CandidateLists probe(inst, 6);
    for (int c = 0; c < 16; ++c) {
      const auto of = probe.of(c);
      lists[std::size_t(c)].assign(of.rbegin(), of.rend());
    }
    CandidateLists bad(inst, std::move(lists), /*distanceSorted=*/true);
    bad.auditCheck("test:false-sorted");
  };
  EXPECT_DEATH(buildAndAudit(), "CandidateLists audit failed");
}

TEST(Audit, NodeRunnerCurvesMonotoneUnderSim) {
  const Instance inst = uniformSquare("audit-run", 120, 41);
  CandidateLists cand(inst, 8);
  cand.makeSymmetric();
  RunConfig cfg;
  cfg.runtime = RuntimeKind::kSim;
  cfg.nodes = 4;
  cfg.costModel = CostModel::kModeled;
  cfg.modeledWorkPerSecond = 1e5;
  cfg.timeLimitPerNode = 2.0;
  cfg.seed = 13;
  const RunResult res = runDistributed(inst, cand, cfg);
  ASSERT_FALSE(res.curve.empty());
  for (std::size_t i = 1; i < res.curve.size(); ++i) {
    EXPECT_LT(res.curve[i].length, res.curve[i - 1].length);
    EXPECT_GE(res.curve[i].time, res.curve[i - 1].time);
  }
  for (const AnytimeCurve& c : res.nodeCurves)
    for (std::size_t i = 1; i < c.size(); ++i)
      EXPECT_LT(c[i].length, c[i - 1].length);
  EXPECT_EQ(res.bestLength, Tour(inst, res.bestOrder).length());
}

TEST(Audit, LkWorkspaceSurvivesKickLoop) {
  const Instance inst = uniformSquare("audit-ws", 200, 19);
  CandidateLists cand(inst, 8);
  Tour tour(inst);
  Rng rng(31);
  LkWorkspace ws;
  ClkOptions opt;
  opt.maxKicks = 40;
  chainedLinKernighan(tour, cand, rng, ws, opt);
  // Every kick ended in commitKick or rollbackKick, so the undo state must
  // be fully drained and the queue coherent with its epoch stamps.
  ws.auditCheck("test:post-clk");
  ws.auditUndoEmpty("test:post-clk");
}

TEST(Audit, DontLookQueueAuditCatchesCorruptStamp) {
  auto corruptAndAudit = [] {
    DontLookQueue q;
    q.reset(8);
    q.push(2);
    q.push(5);
    // A pending entry whose stamp belongs to a dead epoch: membership and
    // queue disagree, which is exactly the corruption the audit pins.
    q.testCorruptMark(5, 0);
    q.auditCheck("test:corrupt-stamp");
  };
  EXPECT_DEATH(corruptAndAudit(), "DontLookQueue audit failed");
}

TEST(Audit, LkWorkspaceAuditCatchesLeftoverUndoLog) {
  auto leftoverAndAudit = [] {
    LkWorkspace ws;
    ws.undoLog.push_back({3, 7});  // a flip nobody committed or rolled back
    ws.auditUndoEmpty("test:leftover-undo");
  };
  EXPECT_DEATH(leftoverAndAudit(), "LkWorkspace audit failed");
}

TEST(Audit, SpeculativeEngineSurvivesMultiWorkerRun) {
  const Instance inst = uniformSquare("audit-spec", 200, 47);
  CandidateLists cand(inst, 8);
  Tour tour(inst);
  Rng rng(37);
  LkWorkspace ws;
  ClkOptions opt;
  opt.maxKicks = 40;
  opt.speculativeWorkers = 3;
  // Under -DDISTCLK_AUDIT=ON every commit re-audits the conflict ledger
  // (cross-group disjointness) and the replayed master length, and every
  // worker rollback audits its undo log empty.
  chainedLinKernighan(tour, cand, rng, ws, opt);
  EXPECT_TRUE(tour.valid());
  ws.auditCheck("test:post-spec");
  ws.auditUndoEmpty("test:post-spec");
}

TEST(Audit, ConflictLedgerAuditCatchesOverlappingGroups) {
  auto overlapAndAudit = [] {
    ConflictLedger ledger;
    ledger.reset(64);
    // Two different commit groups claiming the same slots: replay on the
    // master would no longer reproduce the workers' writes — exactly the
    // invariant the audit pins.
    ledger.testRecordRaw({10, 20}, 0);
    ledger.testRecordRaw({15, 25}, 1);
    ledger.auditCheck("test:overlap-groups");
  };
  EXPECT_DEATH(overlapAndAudit(), "ConflictLedger audit failed");
}

TEST(Audit, ConflictLedgerAuditCatchesOutOfRangeSlot) {
  auto rangeAndAudit = [] {
    ConflictLedger ledger;
    ledger.reset(16);
    ledger.testRecordRaw({10, 20}, 0);  // hi beyond the 16-slot tour
    ledger.auditCheck("test:slot-range");
  };
  EXPECT_DEATH(rangeAndAudit(), "ConflictLedger audit failed");
}

TEST(Audit, ModeFlagMatchesBuild) {
#ifdef DISTCLK_AUDIT_ENABLED
  EXPECT_TRUE(audit::kEnabled);
#else
  EXPECT_FALSE(audit::kEnabled);
#endif
}

}  // namespace
}  // namespace distclk
