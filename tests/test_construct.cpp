#include "construct/construct.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tsp/gen.h"
#include "tsp/tour.h"

namespace distclk {
namespace {

bool isPermutation(const std::vector<int>& order, int n) {
  if (static_cast<int>(order.size()) != n) return false;
  std::vector<bool> seen(std::size_t(n), false);
  for (int c : order) {
    if (c < 0 || c >= n || seen[std::size_t(c)]) return false;
    seen[std::size_t(c)] = true;
  }
  return true;
}

class ConstructionTest : public ::testing::TestWithParam<int> {
 protected:
  Instance inst() const {
    return uniformSquare("c", GetParam(), std::uint64_t(GetParam()) + 7);
  }
};

TEST_P(ConstructionTest, RandomTourIsPermutation) {
  const Instance i = inst();
  Rng rng(1);
  EXPECT_TRUE(isPermutation(randomTour(i, rng), i.n()));
}

TEST_P(ConstructionTest, NearestNeighborIsPermutation) {
  const Instance i = inst();
  EXPECT_TRUE(isPermutation(nearestNeighborTour(i, 0), i.n()));
}

TEST_P(ConstructionTest, GreedyIsPermutation) {
  const Instance i = inst();
  const CandidateLists cand(i, 8);
  EXPECT_TRUE(isPermutation(greedyTour(i, cand), i.n()));
}

TEST_P(ConstructionTest, QuickBoruvkaIsPermutation) {
  const Instance i = inst();
  const CandidateLists cand(i, 8);
  EXPECT_TRUE(isPermutation(quickBoruvkaTour(i, cand), i.n()));
}

TEST_P(ConstructionTest, SpaceFillingIsPermutation) {
  const Instance i = inst();
  EXPECT_TRUE(isPermutation(spaceFillingTour(i), i.n()));
}

TEST_P(ConstructionTest, HeuristicsBeatRandomTours) {
  const Instance i = inst();
  const CandidateLists cand(i, 8);
  Rng rng(2);
  // Average a few random tours as the reference.
  std::int64_t randomTotal = 0;
  for (int r = 0; r < 3; ++r)
    randomTotal += i.tourLength(randomTour(i, rng));
  const std::int64_t randomAvg = randomTotal / 3;
  EXPECT_LT(i.tourLength(nearestNeighborTour(i, 0)), randomAvg);
  EXPECT_LT(i.tourLength(greedyTour(i, cand)), randomAvg);
  EXPECT_LT(i.tourLength(quickBoruvkaTour(i, cand)), randomAvg);
  EXPECT_LT(i.tourLength(spaceFillingTour(i)), randomAvg);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ConstructionTest,
                         ::testing::Values(8, 33, 100, 500));

TEST(Construct, NearestNeighborStartsAtGivenCity) {
  const Instance i = uniformSquare("c", 30, 5);
  EXPECT_EQ(nearestNeighborTour(i, 17)[0], 17);
}

TEST(Construct, NearestNeighborExplicitMatrixPath) {
  const std::vector<std::int64_t> m{0, 1, 4, 9,  //
                                    1, 0, 2, 9,  //
                                    4, 2, 0, 3,  //
                                    9, 9, 3, 0};
  const Instance inst("m", 4, m);
  const auto order = nearestNeighborTour(inst, 0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Construct, GreedyPrefersShortEdgesOnChain) {
  // Four collinear cities: greedy must produce the natural chain order.
  const Instance inst("line", {{0, 0}, {1, 0}, {2, 0}, {10, 0}},
                      EdgeWeightType::kEuc2D);
  const CandidateLists cand(inst, 3);
  const Tour t(inst, greedyTour(inst, cand));
  EXPECT_EQ(t.length(), inst.tourLength(std::vector<int>{0, 1, 2, 3}));
}

TEST(Construct, QuickBoruvkaDeterministic) {
  const Instance i = uniformSquare("c", 200, 6);
  const CandidateLists cand(i, 8);
  EXPECT_EQ(quickBoruvkaTour(i, cand), quickBoruvkaTour(i, cand));
}

TEST(Construct, QuickBoruvkaQualityNearGreedy) {
  // QB is expected to be in the same quality ballpark as greedy (both are
  // within ~15-25% of optimal on uniform instances).
  const Instance i = uniformSquare("c", 600, 8);
  const CandidateLists cand(i, 10);
  const auto qb = i.tourLength(quickBoruvkaTour(i, cand));
  const auto gr = i.tourLength(greedyTour(i, cand));
  EXPECT_LT(static_cast<double>(qb), static_cast<double>(gr) * 1.35);
}

TEST(Construct, SpaceFillingThrowsWithoutCoords) {
  const std::vector<std::int64_t> m{0, 1, 2, 1, 0, 3, 2, 3, 0};
  const Instance inst("m", 3, m);
  EXPECT_THROW(spaceFillingTour(inst), std::invalid_argument);
}

TEST(Construct, SpaceFillingLocality) {
  // On a uniform instance the Hilbert tour must be dramatically shorter
  // than random (it visits spatially coherent runs).
  const Instance i = uniformSquare("c", 1000, 9);
  Rng rng(1);
  const auto sf = i.tourLength(spaceFillingTour(i));
  const auto rnd = i.tourLength(randomTour(i, rng));
  EXPECT_LT(static_cast<double>(sf), static_cast<double>(rnd) * 0.2);
}

TEST(Construct, ChristofidesLikeIsPermutation) {
  for (int n : {8, 50, 301}) {
    const Instance i = uniformSquare("c", n, std::uint64_t(n) + 77);
    EXPECT_TRUE(isPermutation(christofidesLikeTour(i), i.n())) << n;
  }
}

TEST(Construct, ChristofidesLikeQualityCompetitive) {
  // MST + matching + shortcut lands in the same quality band as greedy
  // (both are within ~15-25% of optimal on uniform instances).
  const Instance i = uniformSquare("c", 500, 78);
  const CandidateLists cand(i, 10);
  const auto chr = i.tourLength(christofidesLikeTour(i));
  const auto gr = i.tourLength(greedyTour(i, cand));
  EXPECT_LT(static_cast<double>(chr), static_cast<double>(gr) * 1.35);
}

TEST(Construct, ChristofidesLikeExplicitMatrixPath) {
  const std::vector<std::int64_t> m{0, 1, 4, 9,  //
                                    1, 0, 2, 9,  //
                                    4, 2, 0, 3,  //
                                    9, 9, 3, 0};
  const Instance inst("m", 4, m);
  EXPECT_TRUE(isPermutation(christofidesLikeTour(inst), 4));
}

TEST(Construct, WorksOnClusteredGeometry) {
  const Instance i = clustered("c", 300, 10, 10);
  const CandidateLists cand(i, 8);
  EXPECT_TRUE(isPermutation(quickBoruvkaTour(i, cand), i.n()));
  EXPECT_TRUE(isPermutation(greedyTour(i, cand), i.n()));
}

}  // namespace
}  // namespace distclk
