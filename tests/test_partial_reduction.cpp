#include "lk/partial_reduction.h"

#include <gtest/gtest.h>

#include "construct/construct.h"
#include "lk/chained_lk.h"
#include "tsp/gen.h"
#include "util/rng.h"

namespace distclk {
namespace {

TEST(PartialReduction, MaskRequiresTwoTours) {
  EXPECT_THROW(protectedCityMask({{0, 1, 2}}), std::invalid_argument);
}

TEST(PartialReduction, MaskRejectsSizeMismatch) {
  EXPECT_THROW(protectedCityMask({{0, 1, 2}, {0, 1, 2, 3}}),
               std::invalid_argument);
}

TEST(PartialReduction, IdenticalToursProtectEverything) {
  const std::vector<int> t{0, 3, 1, 4, 2};
  const auto mask = protectedCityMask({t, t, t});
  for (char m : mask) EXPECT_EQ(m, 1);
}

TEST(PartialReduction, RotatedAndReflectedToursStillProtect) {
  const std::vector<int> a{0, 1, 2, 3, 4};
  const std::vector<int> rot{2, 3, 4, 0, 1};
  const std::vector<int> refl{0, 4, 3, 2, 1};
  for (char m : protectedCityMask({a, rot, refl})) EXPECT_EQ(m, 1);
}

TEST(PartialReduction, DisjointToursProtectNothing) {
  const std::vector<int> a{0, 1, 2, 3, 4, 5};
  const std::vector<int> b{0, 2, 4, 1, 5, 3};
  int protectedCount = 0;
  for (char m : protectedCityMask({a, b})) protectedCount += m;
  EXPECT_LE(protectedCount, 1);
}

TEST(PartialReduction, PartialOverlapProtectsSharedInterior) {
  // Tours agree everywhere except a relocated city 5.
  const std::vector<int> a{0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<int> b{0, 1, 2, 5, 3, 4, 6, 7};
  const auto mask = protectedCityMask({a, b});
  EXPECT_EQ(mask[0], 1);  // edges (7,0),(0,1) shared
  EXPECT_EQ(mask[1], 1);  // edges (0,1),(1,2) shared
  EXPECT_EQ(mask[5], 0);  // relocated city
  EXPECT_EQ(mask[3], 0);  // its old/new neighbors lost an edge
}

TEST(PartialReduction, ReducedLkSkipsProtectedAnchors) {
  const Instance inst = uniformSquare("p", 400, 181);
  const CandidateLists cand(inst, 8);
  Rng rng(7);
  // Two optimized tours whose common edges define the protection.
  Tour a(inst, quickBoruvkaTour(inst, cand));
  ClkOptions co;
  co.maxKicks = 100;
  chainedLinKernighan(a, cand, rng, co);
  Tour b = a;
  applyKick(b, KickStrategy::kRandom, cand, rng);
  linKernighanOptimize(b, cand);
  const auto mask = protectedCityMask({a.orderVector(), b.orderVector()});
  int protectedCount = 0;
  for (char m : mask) protectedCount += m;
  // Two near-optimal tours share most of their edges.
  EXPECT_GT(protectedCount, 200);

  // Reduced LK on a fresh kicked tour does less work than full LK from the
  // same state but loses little quality.
  Tour fullT = a;
  applyKick(fullT, KickStrategy::kRandom, cand, rng);
  Tour reducedT = fullT;
  const LkStats full = linKernighanOptimize(fullT, cand);
  const LkStats reduced = reducedLinKernighanOptimize(reducedT, cand, mask);
  EXPECT_TRUE(reducedT.valid());
  EXPECT_LE(reduced.flips, full.flips);
  EXPECT_LE(static_cast<double>(reducedT.length()),
            static_cast<double>(fullT.length()) * 1.01);
}

TEST(PartialReduction, MaskSizeValidatedAgainstTour) {
  const Instance inst = uniformSquare("p", 50, 182);
  const CandidateLists cand(inst, 8);
  Tour t(inst);
  EXPECT_THROW(reducedLinKernighanOptimize(t, cand, std::vector<char>(10)),
               std::invalid_argument);
}

}  // namespace
}  // namespace distclk
