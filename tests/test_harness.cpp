#include "experiments/harness.h"

#include <gtest/gtest.h>

#include "tsp/gen.h"
#include "tsp/tour.h"

namespace distclk {
namespace {

Args makeArgs(std::vector<std::string> argv) {
  static std::vector<std::vector<char>> storage;
  storage.clear();
  std::vector<char*> ptrs;
  storage.emplace_back(std::vector<char>{'x', '\0'});
  ptrs.push_back(storage.back().data());
  for (auto& s : argv) {
    storage.emplace_back(s.begin(), s.end());
    storage.back().push_back('\0');
    ptrs.push_back(storage.back().data());
  }
  return Args(static_cast<int>(ptrs.size()), ptrs.data());
}

TEST(Args, FlagsAndValues) {
  const Args args = makeArgs({"--runs", "5", "--full", "--name", "abc"});
  EXPECT_TRUE(args.has("full"));
  EXPECT_FALSE(args.has("absent"));
  EXPECT_EQ(args.getInt("runs", 1), 5);
  EXPECT_EQ(args.getInt("missing", 7), 7);
  EXPECT_EQ(args.getString("name", ""), "abc");
  EXPECT_DOUBLE_EQ(args.getDouble("runs", 0.0), 5.0);
}

TEST(Args, MissingValueFallsBack) {
  const Args args = makeArgs({"--flag"});
  EXPECT_EQ(args.getString("flag", "def"), "def");
}

TEST(BenchConfig, DefaultsAreLaptopScale) {
  const BenchConfig cfg = BenchConfig::fromArgs(makeArgs({}));
  EXPECT_FALSE(cfg.full);
  EXPECT_EQ(cfg.runs, 2);
  EXPECT_LE(cfg.maxN, 2000);
}

TEST(BenchConfig, FullModeExpands) {
  const BenchConfig cfg = BenchConfig::fromArgs(makeArgs({"--full"}));
  EXPECT_TRUE(cfg.full);
  EXPECT_EQ(cfg.runs, 10);
  EXPECT_GE(cfg.maxN, 85900);
}

TEST(BenchConfig, OverridesApply) {
  const BenchConfig cfg = BenchConfig::fromArgs(
      makeArgs({"--runs", "2", "--clk-budget", "0.5", "--nodes", "4"}));
  EXPECT_EQ(cfg.runs, 2);
  EXPECT_DOUBLE_EQ(cfg.clkBudget, 0.5);
  EXPECT_EQ(cfg.nodes, 4);
}

TEST(BenchConfig, BudgetRatioFollowsPaperRule) {
  const BenchConfig cfg = BenchConfig::fromArgs(makeArgs({}));
  const auto* small = findPaperInstance("pr2392");
  const auto* large = findPaperInstance("sw24978");
  ASSERT_TRUE(small && large);
  EXPECT_DOUBLE_EQ(cfg.clkBudgetFor(*large), cfg.clkBudgetFor(*small) * 10.0);
  EXPECT_DOUBLE_EQ(cfg.distBudgetFor(*large),
                   cfg.distBudgetFor(*small) * 10.0);
}

TEST(BenchConfig, SizeForClampsToMaxN) {
  BenchConfig cfg;
  cfg.maxN = 1000;
  const auto* spec = findPaperInstance("sw24978");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(cfg.sizeFor(*spec), 1000);
}

TEST(Harness, ExcessMath) {
  EXPECT_NEAR(excess(110, 100.0), 0.10, 1e-12);
  EXPECT_NEAR(excess(100, 100.0), 0.0, 1e-12);
}

TEST(Harness, RunClkExperimentProducesCurve) {
  const Instance inst = uniformSquare("h", 150, 151);
  const CandidateLists cand(inst, 8);
  const ClkRunSummary s =
      runClkExperiment(inst, cand, KickStrategy::kRandomWalk, 0.3, -1, 1);
  EXPECT_GT(s.finalLength, 0);
  ASSERT_FALSE(s.curve.empty());
  EXPECT_EQ(s.curve.back().length, s.finalLength);
}

TEST(Harness, RunDistExperimentWorks) {
  const Instance inst = uniformSquare("h", 100, 152);
  const CandidateLists cand(inst, 8);
  const SimResult res = runDistExperiment(
      inst, cand, KickStrategy::kRandomWalk, 4, 0.2, -1, 3);
  Tour best(inst, res.bestOrder);
  EXPECT_TRUE(best.valid());
}

TEST(Harness, ReferenceLengthUsesHkWhenUncalibrated) {
  PaperInstance spec = *findPaperInstance("E1k.1");
  spec.presumedOptimum = -1;
  const Instance inst = makeScaledInstance(spec, 120);
  const double ref = referenceLength(spec, inst);
  EXPECT_GT(ref, 0.0);
  // Cached second call returns the same value.
  EXPECT_DOUBLE_EQ(referenceLength(spec, inst), ref);
}

TEST(Harness, ScaledNodeParamsShrinkInnerKicks) {
  const Instance big = uniformSquare("h", 1600, 153);
  const Instance small = uniformSquare("h", 100, 154);
  EXPECT_EQ(scaledNodeParams(big).clkKicksPerCall, 100);
  EXPECT_EQ(scaledNodeParams(small).clkKicksPerCall, 16);  // floor
}

TEST(Harness, CalibrateReferenceReturnsReachableLength) {
  const Instance inst = uniformSquare("h", 120, 155);
  const CandidateLists cand(inst, 8);
  const std::int64_t ref = calibrateReference(inst, cand, 0.1, 7);
  EXPECT_GT(ref, 0);
  // A long single CLK run should not beat the calibration dramatically.
  const ClkRunSummary clk =
      runClkExperiment(inst, cand, KickStrategy::kRandomWalk, 0.5, -1, 8);
  EXPECT_LT(static_cast<double>(clk.finalLength),
            static_cast<double>(ref) * 1.05);
}

TEST(Harness, ReferenceLengthPrefersCalibratedOptimum) {
  PaperInstance spec = *findPaperInstance("E1k.1");
  spec.presumedOptimum = 123456;
  spec.n = 120;
  const Instance inst = makeScaledInstance(spec, 120);
  EXPECT_DOUBLE_EQ(referenceLength(spec, inst), 123456.0);
}

}  // namespace
}  // namespace distclk
