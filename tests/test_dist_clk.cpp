#include "core/dist_clk.h"

#include <gtest/gtest.h>

#include "tsp/gen.h"
#include "tsp/tour.h"

namespace distclk {
namespace {

// Deterministic, cheap simulation settings for tests: modeled cost, few
// inner kicks, tiny virtual budgets.
SimOptions testOptions(double budget = 3.0) {
  SimOptions o;
  o.costModel = CostModel::kModeled;
  o.modeledWorkPerSecond = 1e5;
  o.node.clkKicksPerCall = 5;
  o.timeLimitPerNode = budget;
  o.seed = 7;
  return o;
}

TEST(SimDistClk, RunsAndProducesValidTour) {
  const Instance inst = uniformSquare("d", 100, 111);
  const CandidateLists cand(inst, 8);
  const SimResult res = runSimulatedDistClk(inst, cand, testOptions());
  Tour best(inst, res.bestOrder);
  EXPECT_EQ(best.length(), res.bestLength);
  EXPECT_GT(res.totalSteps, 8);
  EXPECT_EQ(res.nodeClocks.size(), 8u);
}

TEST(SimDistClk, DeterministicInModeledMode) {
  const Instance inst = uniformSquare("d", 80, 112);
  const CandidateLists cand(inst, 8);
  const SimResult a = runSimulatedDistClk(inst, cand, testOptions());
  const SimResult b = runSimulatedDistClk(inst, cand, testOptions());
  EXPECT_EQ(a.bestLength, b.bestLength);
  EXPECT_EQ(a.bestOrder, b.bestOrder);
  EXPECT_EQ(a.totalSteps, b.totalSteps);
  EXPECT_EQ(a.net.messagesSent, b.net.messagesSent);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].node, b.events[i].node);
    EXPECT_EQ(a.events[i].value, b.events[i].value);
  }
}

TEST(SimDistClk, DifferentSeedsDiverge) {
  const Instance inst = uniformSquare("d", 80, 113);
  const CandidateLists cand(inst, 8);
  SimOptions o1 = testOptions(), o2 = testOptions();
  o2.seed = 8;
  const SimResult a = runSimulatedDistClk(inst, cand, o1);
  const SimResult b = runSimulatedDistClk(inst, cand, o2);
  EXPECT_NE(a.bestOrder, b.bestOrder);
}

TEST(SimDistClk, CurveIsMonotone) {
  const Instance inst = uniformSquare("d", 120, 114);
  const CandidateLists cand(inst, 8);
  const SimResult res = runSimulatedDistClk(inst, cand, testOptions());
  for (std::size_t i = 1; i < res.curve.size(); ++i) {
    EXPECT_LT(res.curve[i].length, res.curve[i - 1].length);
  }
}

TEST(SimDistClk, EventsSortedByTime) {
  const Instance inst = uniformSquare("d", 100, 115);
  const CandidateLists cand(inst, 8);
  const SimResult res = runSimulatedDistClk(inst, cand, testOptions());
  for (std::size_t i = 1; i < res.events.size(); ++i)
    EXPECT_LE(res.events[i - 1].time, res.events[i].time);
}

TEST(SimDistClk, RespectsBudget) {
  const Instance inst = uniformSquare("d", 100, 116);
  const CandidateLists cand(inst, 8);
  const SimResult res = runSimulatedDistClk(inst, cand, testOptions(1.0));
  // Each node may only exceed the budget by its final in-flight step.
  for (double clock : res.nodeClocks) EXPECT_LT(clock, 2.0);
}

TEST(SimDistClk, TargetStopsSimulation) {
  const Instance inst = uniformSquare("d", 60, 117);
  const CandidateLists cand(inst, 8);
  // Learn an achievable length, then re-run demanding it.
  const SimResult probe = runSimulatedDistClk(inst, cand, testOptions());
  SimOptions o = testOptions(1e6);
  o.node.targetLength = probe.bestLength;
  const SimResult res = runSimulatedDistClk(inst, cand, o);
  EXPECT_TRUE(res.hitTarget);
  EXPECT_LT(res.targetTime, 1e6);
  EXPECT_LE(res.bestLength, probe.bestLength);
  // A target event must be present.
  bool sawTarget = false;
  for (const auto& e : res.events)
    sawTarget |= e.type == NodeEventType::kTargetReached;
  EXPECT_TRUE(sawTarget);
}

TEST(SimDistClk, SingleNodeWorks) {
  const Instance inst = uniformSquare("d", 80, 118);
  const CandidateLists cand(inst, 8);
  SimOptions o = testOptions();
  o.nodes = 1;
  const SimResult res = runSimulatedDistClk(inst, cand, o);
  EXPECT_EQ(res.net.messagesSent, 0);  // nobody to talk to
  EXPECT_GT(res.totalSteps, 1);
  Tour best(inst, res.bestOrder);
  EXPECT_TRUE(best.valid());
}

TEST(SimDistClk, MoreBudgetNeverHurts) {
  const Instance inst = uniformSquare("d", 150, 119);
  const CandidateLists cand(inst, 8);
  const SimResult shortRun = runSimulatedDistClk(inst, cand, testOptions(0.5));
  const SimResult longRun = runSimulatedDistClk(inst, cand, testOptions(6.0));
  EXPECT_LE(longRun.bestLength, shortRun.bestLength);
}

TEST(SimDistClk, BroadcastsHappen) {
  const Instance inst = uniformSquare("d", 150, 120);
  const CandidateLists cand(inst, 8);
  const SimResult res = runSimulatedDistClk(inst, cand, testOptions());
  EXPECT_GT(res.net.broadcasts, 0);
  // Hypercube of 8: every broadcast reaches exactly 3 neighbors.
  EXPECT_EQ(res.net.messagesSent, res.net.broadcasts * 3);
}

TEST(SimDistClk, FailureInjectionStopsNode) {
  const Instance inst = uniformSquare("d", 80, 121);
  const CandidateLists cand(inst, 8);
  SimOptions o = testOptions(5.0);
  o.failures = {{0, 0.5}, {1, 0.5}};
  const SimResult res = runSimulatedDistClk(inst, cand, o);
  // The dead nodes' clocks froze near the failure time.
  EXPECT_LT(res.nodeClocks[0], 5.0);
  EXPECT_LT(res.nodeClocks[1], 5.0);
  // The rest kept running and produced a valid result.
  Tour best(inst, res.bestOrder);
  EXPECT_TRUE(best.valid());
  EXPECT_GT(res.nodeClocks[2], 1.0);
}

TEST(SimDistClk, AllNodesFailingStillTerminates) {
  const Instance inst = uniformSquare("d", 60, 122);
  const CandidateLists cand(inst, 8);
  SimOptions o = testOptions(100.0);
  for (int i = 0; i < 8; ++i) o.failures.emplace_back(i, 0.01);
  const SimResult res = runSimulatedDistClk(inst, cand, o);
  EXPECT_FALSE(res.hitTarget);
  EXPECT_GE(res.totalSteps, 8);  // at least the initial steps ran
}

TEST(SimDistClk, TopologiesAllRun) {
  const Instance inst = uniformSquare("d", 60, 123);
  const CandidateLists cand(inst, 8);
  for (TopologyKind k :
       {TopologyKind::kHypercube, TopologyKind::kRing, TopologyKind::kGrid,
        TopologyKind::kComplete, TopologyKind::kStar}) {
    SimOptions o = testOptions(1.0);
    o.topology = k;
    const SimResult res = runSimulatedDistClk(inst, cand, o);
    Tour best(inst, res.bestOrder);
    EXPECT_TRUE(best.valid()) << toString(k);
  }
}

TEST(SimDistClk, LateJoinersParticipate) {
  const Instance inst = uniformSquare("d", 80, 125);
  const CandidateLists cand(inst, 8);
  SimOptions o = testOptions(4.0);
  o.joins = {{6, 2.0}, {7, 2.0}};
  const SimResult res = runSimulatedDistClk(inst, cand, o);
  // The late nodes' clocks start at the join time, so they end past it but
  // within the budget (+ one in-flight step).
  EXPECT_GE(res.nodeClocks[6], 2.0);
  EXPECT_GE(res.nodeClocks[7], 2.0);
  // Their initial-tour events carry times after the join.
  int lateInits = 0;
  for (const auto& e : res.events) {
    if (e.type != NodeEventType::kInitialTour) continue;
    if (e.node >= 6) {
      EXPECT_GE(e.time, 2.0);
      ++lateInits;
    } else {
      EXPECT_LT(e.time, 2.0);
    }
  }
  EXPECT_EQ(lateInits, 2);
  Tour best(inst, res.bestOrder);
  EXPECT_TRUE(best.valid());
}

TEST(SimDistClk, JoinAfterBudgetMeansNodeNeverRuns) {
  const Instance inst = uniformSquare("d", 60, 126);
  const CandidateLists cand(inst, 8);
  SimOptions o = testOptions(1.0);
  o.joins = {{5, 100.0}};
  const SimResult res = runSimulatedDistClk(inst, cand, o);
  for (const auto& e : res.events) EXPECT_NE(e.node, 5);
}

TEST(SimDistClk, JoinsValidateNodeIndex) {
  const Instance inst = uniformSquare("d", 30, 127);
  const CandidateLists cand(inst, 8);
  SimOptions o = testOptions();
  o.joins = {{99, 1.0}};
  EXPECT_THROW(runSimulatedDistClk(inst, cand, o), std::invalid_argument);
}

TEST(SimDistClk, RejectsBadNodeCount) {
  const Instance inst = uniformSquare("d", 30, 124);
  const CandidateLists cand(inst, 8);
  SimOptions o = testOptions();
  o.nodes = 0;
  EXPECT_THROW(runSimulatedDistClk(inst, cand, o), std::invalid_argument);
}

}  // namespace
}  // namespace distclk
