#include "tsp/big_tour.h"

#include <gtest/gtest.h>

#include <set>

#include "construct/construct.h"
#include "lk/chained_lk.h"
#include "lk/lin_kernighan.h"
#include "tsp/gen.h"
#include "tsp/tour.h"
#include "util/rng.h"

namespace distclk {
namespace {

TEST(BigTour, ConstructionMatchesArrayTour) {
  const Instance inst = uniformSquare("b", 200, 191);
  Rng rng(1);
  const auto order = randomTour(inst, rng);
  const Tour array(inst, order);
  const BigTour big(inst, order);
  EXPECT_EQ(big.length(), array.length());
  EXPECT_EQ(big.n(), array.n());
  EXPECT_TRUE(big.valid());
  for (int c = 0; c < inst.n(); ++c) {
    EXPECT_EQ(big.next(c), array.next(c));
    EXPECT_EQ(big.prev(c), array.prev(c));
  }
}

TEST(BigTour, ReverseForwardTracksLength) {
  const Instance inst = uniformSquare("b", 150, 192);
  BigTour t(inst);
  Rng rng(2);
  for (int step = 0; step < 200; ++step) {
    const int a = static_cast<int>(rng.below(150));
    const int b = static_cast<int>(rng.below(150));
    if (a != b) t.reverseForward(a, b);
    ASSERT_TRUE(t.valid()) << "step " << step;
  }
}

TEST(BigTour, FlipUnflipRestoresExactly) {
  const Instance inst = uniformSquare("b", 120, 193);
  BigTour t(inst);
  Rng rng(3);
  for (int step = 0; step < 100; ++step) {
    const int a = static_cast<int>(rng.below(120));
    const int b = static_cast<int>(rng.below(120));
    if (a == b) continue;
    const auto before = t.orderVector();
    const auto lenBefore = t.length();
    const auto token = t.flipForward(a, b);
    t.unflip(token);
    EXPECT_EQ(t.length(), lenBefore);
    // Same cycle and orientation: next() identical everywhere.
    for (int c = 0; c < 120; ++c)
      ASSERT_EQ(t.next(c), Tour(inst, before).next(c)) << "step " << step;
  }
}

TEST(BigTour, WholeCycleReverseKeepsLength) {
  const Instance inst = uniformSquare("b", 50, 194);
  BigTour t(inst);
  const auto len = t.length();
  // next(b) == a: reversing the full path is a pure orientation flip.
  const int a = 0;
  const int b = t.prev(0);
  t.reverseForward(a, b);
  EXPECT_EQ(t.length(), len);
  EXPECT_TRUE(t.valid());
}

TEST(BigTour, LkOnBigTourMatchesArrayTourQuality) {
  // The engine is shared but the representations' orientation behaviour
  // differs (the array tour mirrors when it flips the complementary arc),
  // so trajectories diverge; both must still land at local optima of the
  // same quality from the same start.
  const Instance inst = uniformSquare("b", 300, 195);
  const CandidateLists cand(inst, 8);
  Rng rng(4);
  const auto start = randomTour(inst, rng);
  Tour array(inst, start);
  BigTour big(inst, start);
  const LkStats sa = linKernighanOptimize(array, cand);
  const LkStats sb = linKernighanOptimize(big, cand);
  EXPECT_GT(sa.improvement, 0);
  EXPECT_GT(sb.improvement, 0);
  EXPECT_TRUE(big.valid());
  EXPECT_LT(static_cast<double>(big.length()),
            static_cast<double>(array.length()) * 1.02);
  EXPECT_GT(static_cast<double>(big.length()),
            static_cast<double>(array.length()) * 0.98);
}

TEST(BigTour, LkWithDirtyListWorks) {
  const Instance inst = clustered("b", 250, 8, 196);
  const CandidateLists cand(inst, 8);
  BigTour t(inst, quickBoruvkaTour(inst, cand));
  linKernighanOptimize(t, cand);
  const auto len = t.length();
  // A no-op dirty pass changes nothing.
  const LkStats again =
      linKernighanOptimize(t, cand, std::vector<int>{0, 1, 2}, LkOptions{});
  EXPECT_EQ(again.improvement, 0);
  EXPECT_EQ(t.length(), len);
}

TEST(BigTour, KickPreservesValidityAndOnlyCutsDirtyEdges) {
  // (The array kick and the BigTour kick pick a different preserved cut of
  // the four, so the cycles differ; each is a legitimate double bridge on
  // the same relevant cities. Verified here: validity, exact length
  // bookkeeping, and that every changed edge is covered by the dirty set.)
  const Instance inst = uniformSquare("b", 200, 198);
  const CandidateLists cand(inst, 8);
  Rng rng(5);
  BigTour big(inst);
  for (int i = 0; i < 30; ++i) {
    std::set<std::pair<int, int>> before;
    {
      const auto ord = big.orderVector();
      for (std::size_t p = 0; p < ord.size(); ++p) {
        const int a = ord[p], b = ord[(p + 1) % ord.size()];
        before.insert({std::min(a, b), std::max(a, b)});
      }
    }
    const auto dirty = applyKick(big, KickStrategy::kRandom, cand, rng);
    ASSERT_TRUE(big.valid()) << "kick " << i;
    const std::set<int> dirtySet(dirty.begin(), dirty.end());
    const auto ord = big.orderVector();
    for (std::size_t p = 0; p < ord.size(); ++p) {
      const int a = ord[p], b = ord[(p + 1) % ord.size()];
      if (before.count({std::min(a, b), std::max(a, b)})) continue;
      ASSERT_TRUE(dirtySet.count(a)) << "kick " << i;
      ASSERT_TRUE(dirtySet.count(b)) << "kick " << i;
    }
  }
}

TEST(BigTour, ChainedLkRunsOnBigTour) {
  const Instance inst = uniformSquare("b", 400, 199);
  const CandidateLists cand(inst, 8);
  Rng rng(6);
  BigTour t(inst, quickBoruvkaTour(inst, cand));
  ClkOptions opt;
  opt.maxKicks = 100;
  const ClkResult res = chainedLinKernighan(t, cand, rng, opt);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(res.length, t.length());
  EXPECT_EQ(res.kicks, 100);
  EXPECT_GT(res.flips, 0);
}

TEST(BigTour, HandlesLargerInstances) {
  const Instance inst = uniformSquare("b", 20000, 197);
  const CandidateLists cand(inst, 6);
  BigTour t(inst, spaceFillingTour(inst));
  const auto before = t.length();
  LkOptions opt;
  opt.maxDepth = 6;
  const LkStats stats = linKernighanOptimize(t, cand, opt);
  EXPECT_LT(t.length(), before);
  EXPECT_GT(stats.chains, 0);
  EXPECT_TRUE(t.valid());
}

}  // namespace
}  // namespace distclk
