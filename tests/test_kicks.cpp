#include "lk/kicks.h"

#include <gtest/gtest.h>

#include <set>

#include "tsp/gen.h"

namespace distclk {
namespace {

class KickStrategies : public ::testing::TestWithParam<KickStrategy> {};

TEST_P(KickStrategies, PreservesTourValidity) {
  const Instance inst = uniformSquare("k", 100, 71);
  const CandidateLists cand(inst, 8);
  Rng rng(21);
  Tour t(inst);
  for (int i = 0; i < 50; ++i) {
    applyKick(t, GetParam(), cand, rng);
    ASSERT_TRUE(t.valid()) << toString(GetParam()) << " kick " << i;
  }
}

TEST_P(KickStrategies, ReturnsDirtyCitiesCoveringCutEdges) {
  const Instance inst = uniformSquare("k", 60, 72);
  const CandidateLists cand(inst, 8);
  Rng rng(22);
  Tour t(inst);
  const Tour before = t;
  const auto dirty = applyKick(t, GetParam(), cand, rng);
  EXPECT_EQ(dirty.size(), 8u);
  // Every edge present in the new tour but not the old one must have both
  // endpoints in the dirty list.
  std::set<std::pair<int, int>> oldEdges;
  for (int c = 0; c < before.n(); ++c) {
    const int nc = before.next(c);
    oldEdges.insert({std::min(c, nc), std::max(c, nc)});
  }
  const std::set<int> dirtySet(dirty.begin(), dirty.end());
  for (int c = 0; c < t.n(); ++c) {
    const int nc = t.next(c);
    if (oldEdges.count({std::min(c, nc), std::max(c, nc)})) continue;
    EXPECT_TRUE(dirtySet.count(c)) << "new edge endpoint " << c;
    EXPECT_TRUE(dirtySet.count(nc)) << "new edge endpoint " << nc;
  }
}

TEST_P(KickStrategies, UsuallyChangesTheTour) {
  const Instance inst = uniformSquare("k", 100, 73);
  const CandidateLists cand(inst, 8);
  Rng rng(23);
  int changed = 0;
  for (int i = 0; i < 20; ++i) {
    Tour t(inst);
    const auto before = t.orderVector();
    applyKick(t, GetParam(), cand, rng);
    if (t.orderVector() != before) ++changed;
  }
  EXPECT_GE(changed, 18);
}

TEST_P(KickStrategies, DeterministicGivenRngState) {
  const Instance inst = uniformSquare("k", 80, 74);
  const CandidateLists cand(inst, 8);
  Rng r1(99), r2(99);
  Tour a(inst), b(inst);
  applyKick(a, GetParam(), cand, r1);
  applyKick(b, GetParam(), cand, r2);
  EXPECT_EQ(a.orderVector(), b.orderVector());
}

INSTANTIATE_TEST_SUITE_P(
    All, KickStrategies,
    ::testing::Values(KickStrategy::kRandom, KickStrategy::kGeometric,
                      KickStrategy::kClose, KickStrategy::kRandomWalk),
    [](const auto& info) {
      std::string name = toString(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(Kicks, ThrowsOnTinyTours) {
  const Instance inst = uniformSquare("k", 6, 75);
  const CandidateLists cand(inst, 4);
  Rng rng(1);
  Tour t(inst);
  EXPECT_THROW(applyKick(t, KickStrategy::kRandom, cand, rng),
               std::invalid_argument);
}

TEST(Kicks, GeometricSelectsNearbyCities) {
  // With a clustered instance, the geometric kick's changed edges stay
  // inside one neighborhood much more often than the random kick's.
  const Instance inst = clustered("k", 300, 10, 76);
  const CandidateLists cand(inst, 8);
  Rng rng(31);
  auto meanCutSpread = [&](KickStrategy s) {
    double total = 0;
    for (int i = 0; i < 30; ++i) {
      Tour t(inst);
      const auto dirty = applyKick(t, s, cand, rng);
      // Spread = max pairwise distance among the 8 dirty cities.
      std::int64_t spread = 0;
      for (int a : dirty)
        for (int b : dirty) spread = std::max(spread, inst.dist(a, b));
      total += static_cast<double>(spread);
    }
    return total / 30;
  };
  EXPECT_LT(meanCutSpread(KickStrategy::kGeometric),
            meanCutSpread(KickStrategy::kRandom));
}

TEST(Kicks, StrategyNamesRoundtrip) {
  for (KickStrategy s :
       {KickStrategy::kRandom, KickStrategy::kGeometric, KickStrategy::kClose,
        KickStrategy::kRandomWalk})
    EXPECT_EQ(kickStrategyFromString(toString(s)), s);
  EXPECT_THROW(kickStrategyFromString("bogus"), std::invalid_argument);
}

TEST(Kicks, LengthBookkeepingStaysConsistent) {
  const Instance inst = uniformSquare("k", 64, 77);
  const CandidateLists cand(inst, 8);
  Rng rng(41);
  Tour t(inst);
  for (int i = 0; i < 100; ++i) {
    applyKick(t, KickStrategy::kRandomWalk, cand, rng);
    ASSERT_EQ(t.length(), inst.tourLength(t.order()));
  }
}

}  // namespace
}  // namespace distclk
