// Tests for the unified runtime layer (core/runtime.h): determinism parity
// against a fixture recorded with the pre-refactor simulated driver,
// transport-agnostic traffic accounting, and the injection capabilities
// (failures, churn, speeds) the thread runtime gained from the refactor.
#include "core/runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <thread>

#include "core/dist_clk.h"
#include "obs/report.h"
#include "core/thread_driver.h"
#include "net/sim_network.h"
#include "net/thread_network.h"
#include "tsp/gen.h"
#include "tsp/tour.h"

namespace distclk {
namespace {

// FNV-1a over the event log; must match the recorder that produced the
// fixture below (time bits, node, type, value of every event, in order).
std::uint64_t eventLogHash(const EventLog& events) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const NodeEvent& e : events) {
    std::uint64_t timeBits;
    static_assert(sizeof(timeBits) == sizeof(e.time));
    __builtin_memcpy(&timeBits, &e.time, sizeof(timeBits));
    mix(timeBits);
    mix(static_cast<std::uint64_t>(e.node));
    mix(static_cast<std::uint64_t>(e.type));
    mix(static_cast<std::uint64_t>(e.value));
  }
  return h;
}

// -----------------------------------------------------------------------
// Determinism parity: this fixture was recorded by running the PRE-refactor
// runSimulatedDistClk (commit 9ae0fd9) with exactly this configuration.
// The runtime-layer refactor must reproduce the trajectory bit for bit:
// same tour, same curve (times AND lengths), same event log (hashed), same
// traffic. If this test fails, the refactor changed scheduling, cost
// accounting, RNG consumption, or event emission order — all of which are
// observable behavior, not implementation detail.

RunConfig parityConfig() {
  RunConfig cfg;
  cfg.nodes = 8;
  cfg.costModel = CostModel::kModeled;
  cfg.modeledWorkPerSecond = 1e5;
  cfg.node.clkKicksPerCall = 5;
  cfg.node.cr = 12;  // force restarts into the fixture trajectory
  cfg.node.cv = 4;   // force perturbation-level changes too
  cfg.timeLimitPerNode = 6.0;
  cfg.seed = 2026;
  return cfg;
}

TEST(RuntimeParity, SimMatchesPreRefactorFixture) {
  const Instance inst = uniformSquare("parity", 120, 42);
  const CandidateLists cand(inst, 8);
  const RunResult res = runDistributed(inst, cand, parityConfig());

  EXPECT_EQ(res.bestLength, 8126701);
  EXPECT_EQ(res.totalSteps, 351);
  EXPECT_EQ(res.totalRestarts, 17);
  EXPECT_EQ(res.net.messagesSent, 24);
  EXPECT_EQ(res.net.broadcasts, 8);
  EXPECT_EQ(res.net.bytesSent, 12024);
  ASSERT_EQ(res.events.size(), 113u);
  EXPECT_EQ(eventLogHash(res.events), 15090688922916996318ULL);
  ASSERT_EQ(res.curve.size(), 2u);
  EXPECT_EQ(res.curve[0].time, 0.15969);
  EXPECT_EQ(res.curve[0].length, 8132600);
  EXPECT_EQ(res.curve[1].time, 0.57315000000000005);
  EXPECT_EQ(res.curve[1].length, 8126701);
  // The fixture predates per-node curves; they are additive and must agree
  // with the global result.
  ASSERT_EQ(res.nodeCurves.size(), 8u);
  std::int64_t bestOfNodes = std::numeric_limits<std::int64_t>::max();
  for (const auto& curve : res.nodeCurves) {
    ASSERT_FALSE(curve.empty());
    bestOfNodes = std::min(bestOfNodes, curve.back().length);
  }
  EXPECT_EQ(bestOfNodes, res.bestLength);
}

// Tracing must be a pure observer: with a sink attached (and stamps on the
// wire), the fixture trajectory — tour, steps, curve, event-log hash — is
// bit-identical. Only bytesSent moves, by exactly one 16-byte trace trailer
// per delivered message.
TEST(RuntimeParity, TracingOnPreservesFixtureTrajectory) {
  const Instance inst = uniformSquare("parity", 120, 42);
  const CandidateLists cand(inst, 8);
  std::ostringstream jsonl;
  obs::JsonlTraceSink sink(jsonl);
  RunConfig cfg = parityConfig();
  cfg.trace = &sink;
  cfg.metricsIntervalSeconds = 1.0;
  const RunResult res = runDistributed(inst, cand, cfg);

  EXPECT_EQ(res.bestLength, 8126701);
  EXPECT_EQ(res.totalSteps, 351);
  EXPECT_EQ(res.totalRestarts, 17);
  EXPECT_EQ(res.net.messagesSent, 24);
  EXPECT_EQ(res.net.broadcasts, 8);
  EXPECT_EQ(res.net.bytesSent,
            12024 + 24 * std::int64_t(kTraceTrailerBytes));
  ASSERT_EQ(res.events.size(), 113u);
  EXPECT_EQ(eventLogHash(res.events), 15090688922916996318ULL);
  ASSERT_EQ(res.curve.size(), 2u);
  EXPECT_EQ(res.curve[0].time, 0.15969);
  EXPECT_EQ(res.curve[0].length, 8132600);
  EXPECT_EQ(res.curve[1].time, 0.57315000000000005);
  EXPECT_EQ(res.curve[1].length, 8126701);

  // The captured trace carries the causal layer and passes validation.
  std::istringstream in(jsonl.str());
  const obs::ValidationResult validation = obs::validateTrace(in);
  EXPECT_TRUE(validation.ok()) << (validation.problems.empty()
                                       ? "bad lines"
                                       : validation.problems.front());
  std::istringstream in2(jsonl.str());
  const obs::LoadedTrace trace = obs::loadTrace(in2);
  EXPECT_EQ(trace.sent.size(), 8u);   // one msg-sent per broadcast call
  EXPECT_EQ(trace.recv.size(), 24u);  // one msg-recv per delivery
}

// The stall detector adds kStall events to the log but never feeds back
// into the search: the fixture's tour, step count, and traffic are intact.
TEST(RuntimeParity, StallDetectorIsObservationOnly) {
  const Instance inst = uniformSquare("parity", 120, 42);
  const CandidateLists cand(inst, 8);
  RunConfig cfg = parityConfig();
  cfg.stallSeconds = 1.5;  // last fixture improvement lands at t=0.573
  const RunResult res = runDistributed(inst, cand, cfg);
  EXPECT_EQ(res.bestLength, 8126701);
  EXPECT_EQ(res.totalSteps, 351);
  EXPECT_EQ(res.net.messagesSent, 24);
  int stalls = 0;
  for (const auto& e : res.events)
    if (e.type == NodeEventType::kStall) {
      ++stalls;
      // Value documents the drought length in milliseconds.
      EXPECT_GE(e.value, 1500);
    }
  EXPECT_GT(stalls, 0);
}

TEST(RuntimeParity, WrapperEqualsRunDistributed) {
  const Instance inst = uniformSquare("parity", 120, 42);
  const CandidateLists cand(inst, 8);
  // The legacy entry point is a thin veneer: identical trajectory.
  const SimResult viaWrapper =
      runSimulatedDistClk(inst, cand, parityConfig());
  EXPECT_EQ(viaWrapper.bestLength, 8126701);
  EXPECT_EQ(viaWrapper.totalSteps, 351);
  EXPECT_EQ(eventLogHash(viaWrapper.events), 15090688922916996318ULL);
}

// -----------------------------------------------------------------------
// Byte accounting: both transports price traffic with serializedSize(), so
// identical traffic over an identical topology yields identical stats.

Message tourMsg(int from, std::vector<std::int32_t> order) {
  Message m;
  m.type = MessageType::kTour;
  m.from = from;
  m.length = 1000 + from;
  m.order = std::move(order);
  return m;
}

TEST(RuntimeTransports, NetworksReportIdenticalBytesForIdenticalTraffic) {
  const Adjacency adj = buildTopology(TopologyKind::kHypercube, 8);
  SimNetwork sim(adj);
  ThreadNetwork threads(adj);
  SimTransport simT(sim);
  ThreadTransport threadT(threads);

  // Same scripted traffic on both, including sends involving dead nodes
  // (dropped — and not billed — by both).
  for (Transport* t : {static_cast<Transport*>(&simT),
                       static_cast<Transport*>(&threadT)}) {
    t->broadcast(0, 0.0, tourMsg(0, {5, 2, 4, 1, 3, 0}));
    t->send(1, 2, 0.1, tourMsg(1, {0, 1, 2}));
    t->kill(3);
    t->broadcast(3, 0.2, tourMsg(3, {9, 8}));    // dead sender: dropped
    t->send(2, 3, 0.3, tourMsg(2, {1}));         // dead receiver: dropped
    t->broadcast(7, 0.4, tourMsg(7, {}));        // empty payload still billed
  }

  const NetworkStats a = simT.stats();
  const NetworkStats b = threadT.stats();
  EXPECT_GT(a.messagesSent, 0);
  EXPECT_EQ(a.messagesSent, b.messagesSent);
  EXPECT_EQ(a.broadcasts, b.broadcasts);
  EXPECT_EQ(a.bytesSent, b.bytesSent);
  EXPECT_EQ(a.sentByNode, b.sentByNode);

  // And the count is the exact wire size of what was actually delivered:
  // node 0's broadcast reaches its 3 hypercube neighbors, node 7's reaches
  // only 2 because its neighbor 3 is dead by then.
  std::int64_t expected = 0;
  expected += 3 * std::int64_t(serializedSize(tourMsg(0, {5, 2, 4, 1, 3, 0})));
  expected += std::int64_t(serializedSize(tourMsg(1, {0, 1, 2})));
  expected += 2 * std::int64_t(serializedSize(tourMsg(7, {})));
  EXPECT_EQ(a.bytesSent, expected);
}

// -----------------------------------------------------------------------
// Cross-driver parity: the same RunConfig produces the same deterministic
// trajectory on the simulator no matter which entry point dispatched it,
// and the thread runtime accepts the identical config (injection schedules
// included) without translation.

TEST(RuntimeDispatch, SameConfigSameSimTrajectory) {
  const Instance inst = uniformSquare("dispatch", 90, 7);
  const CandidateLists cand(inst, 8);
  RunConfig cfg = parityConfig();
  cfg.timeLimitPerNode = 2.0;
  cfg.failures = {{2, 0.5}};
  cfg.joins = {{5, 0.4}};
  cfg.runtime = RuntimeKind::kSim;
  const RunResult a = runDistributed(inst, cand, cfg);
  const RunResult b = runDistributed(inst, cand, cfg);
  EXPECT_EQ(a.bestLength, b.bestLength);
  EXPECT_EQ(a.bestOrder, b.bestOrder);
  EXPECT_EQ(a.totalSteps, b.totalSteps);
  EXPECT_EQ(eventLogHash(a.events), eventLogHash(b.events));
  // The injected failure and join show up as first-class events.
  bool sawFailure = false, sawJoin = false;
  for (const auto& e : a.events) {
    if (e.type == NodeEventType::kNodeFailed && e.node == 2) sawFailure = true;
    if (e.type == NodeEventType::kNodeJoined && e.node == 5) sawJoin = true;
  }
  EXPECT_TRUE(sawFailure);
  EXPECT_TRUE(sawJoin);
}

// -----------------------------------------------------------------------
// Thread runtime injection (new with the runtime layer): failures fire
// against wall clocks, the run terminates cleanly, and the topology
// degrades instead of wedging.

TEST(RuntimeThreads, FailureInjectionTerminatesAndDegradesTopology) {
  const Instance inst = uniformSquare("threads-fail", 80, 17);
  const CandidateLists cand(inst, 8);
  RunConfig cfg;
  cfg.runtime = RuntimeKind::kThreads;
  cfg.nodes = 4;
  cfg.node.clkKicksPerCall = 3;
  cfg.timeLimitPerNode = 0.6;
  cfg.failures = {{0, 0.05}, {1, 0.05}};
  const RunResult res = runDistributed(inst, cand, cfg);

  // Clean termination with a valid global tour.
  Tour best(inst, res.bestOrder);
  EXPECT_EQ(best.length(), res.bestLength);
  ASSERT_EQ(res.nodeBest.size(), 4u);
  ASSERT_EQ(res.nodeClocks.size(), 4u);

  // Both scheduled failures were logged, at their scheduled times.
  std::set<int> failed;
  for (const auto& e : res.events)
    if (e.type == NodeEventType::kNodeFailed) {
      failed.insert(e.node);
      EXPECT_DOUBLE_EQ(e.time, 0.05);
    }
  EXPECT_EQ(failed, (std::set<int>{0, 1}));

  // Degraded topology: the dead nodes stopped well before the budget, the
  // survivors ran it out.
  EXPECT_LT(res.nodeClocks[0], 0.5);
  EXPECT_LT(res.nodeClocks[1], 0.5);
  EXPECT_GE(res.nodeClocks[2], 0.5);
  EXPECT_GE(res.nodeClocks[3], 0.5);
}

TEST(RuntimeThreads, LateJoinerParticipatesUnderThreads) {
  const Instance inst = uniformSquare("threads-join", 70, 18);
  const CandidateLists cand(inst, 8);
  RunConfig cfg;
  cfg.runtime = RuntimeKind::kThreads;
  cfg.nodes = 3;
  cfg.node.clkKicksPerCall = 3;
  cfg.timeLimitPerNode = 0.4;
  cfg.joins = {{2, 0.15}};
  const RunResult res = runDistributed(inst, cand, cfg);

  bool joined = false;
  double joinTime = 0.0, initTime = 0.0;
  for (const auto& e : res.events) {
    if (e.node != 2) continue;
    if (e.type == NodeEventType::kNodeJoined) {
      joined = true;
      joinTime = e.time;
    }
    if (e.type == NodeEventType::kInitialTour) initTime = e.time;
  }
  EXPECT_TRUE(joined);
  EXPECT_GE(joinTime, 0.15);
  EXPECT_GE(initTime, joinTime);
  ASSERT_EQ(res.nodeCurves.size(), 3u);
  EXPECT_FALSE(res.nodeCurves[2].empty());
}

TEST(RuntimeThreads, ThrottledNodeDoesLessWork) {
  const Instance inst = uniformSquare("threads-speed", 70, 19);
  const CandidateLists cand(inst, 8);
  RunConfig cfg;
  cfg.runtime = RuntimeKind::kThreads;
  cfg.nodes = 2;
  cfg.topology = TopologyKind::kComplete;
  cfg.node.clkKicksPerCall = 3;
  cfg.timeLimitPerNode = 0.4;
  cfg.nodeSpeeds = {1.0, 0.25};  // node 1 is a 4x slower machine
  const RunResult res = runDistributed(inst, cand, cfg);
  std::int64_t activity[2] = {0, 0};
  for (const auto& e : res.events) ++activity[e.node];
  // Both nodes ran; the assertion is deliberately coarse (wall-clock
  // scheduling is noisy) — the throttle's correctness is that the slow
  // node still participates and the run terminates on time.
  EXPECT_GT(activity[0], 0);
  EXPECT_GT(activity[1], 0);
}

TEST(RuntimeThreads, ValidationUnifiedAcrossRuntimes) {
  const Instance inst = uniformSquare("validate", 30, 20);
  const CandidateLists cand(inst, 8);
  for (const RuntimeKind kind : {RuntimeKind::kSim, RuntimeKind::kThreads}) {
    RunConfig bad;
    bad.runtime = kind;
    bad.nodes = 0;
    EXPECT_THROW(runDistributed(inst, cand, bad), std::invalid_argument);
    RunConfig badJoin;
    badJoin.runtime = kind;
    badJoin.joins = {{99, 1.0}};
    EXPECT_THROW(runDistributed(inst, cand, badJoin), std::invalid_argument);
    RunConfig badSpeeds;
    badSpeeds.runtime = kind;
    badSpeeds.nodeSpeeds = {1.0};  // size != nodes
    EXPECT_THROW(runDistributed(inst, cand, badSpeeds), std::invalid_argument);
  }
}

TEST(RuntimeKindNames, RoundTrip) {
  EXPECT_STREQ(toString(RuntimeKind::kSim), "sim");
  EXPECT_STREQ(toString(RuntimeKind::kThreads), "threads");
  EXPECT_EQ(runtimeKindFromString("sim"), RuntimeKind::kSim);
  EXPECT_EQ(runtimeKindFromString("threads"), RuntimeKind::kThreads);
  EXPECT_THROW(runtimeKindFromString("mpi"), std::invalid_argument);
}

// -----------------------------------------------------------------------
// The job layer's hooks on RunConfig: context-based dispatch, cooperative
// cancellation, the incremental-best stream, and the run-meta job label.

TEST(RuntimeContext, ContextOverloadReproducesFixture) {
  const auto inst =
      std::make_shared<const Instance>(uniformSquare("parity", 120, 42));
  PreprocessParams params;
  params.candidateK = 8;
  const auto ctx = InstanceContext::build(inst, params);
  const RunResult res = runDistributed(ctx, parityConfig());
  EXPECT_EQ(res.bestLength, 8126701);
  EXPECT_EQ(res.totalSteps, 351);
  EXPECT_EQ(eventLogHash(res.events), 15090688922916996318ULL);
  EXPECT_THROW(runDistributed(nullptr, parityConfig()),
               std::invalid_argument);
}

TEST(RuntimeCancel, CancelStopsSimRunEarly) {
  const Instance inst = uniformSquare("parity", 120, 42);
  const CandidateLists cand(inst, 8);
  std::atomic<bool> cancel{false};
  RunConfig cfg = parityConfig();
  cfg.cancel = &cancel;
  // Flip the flag from the first improvement: the run must stop at the
  // next scheduling boundary, well short of the fixture's 351 steps.
  cfg.onBest = [&](double, std::int64_t) { cancel.store(true); };
  const RunResult res = runDistributed(inst, cand, cfg);
  EXPECT_GT(res.totalSteps, 0);
  EXPECT_LT(res.totalSteps, 351);
  EXPECT_GT(res.bestLength, 0);
}

TEST(RuntimeCancel, CancelStopsThreadsRunEarly) {
  const Instance inst = uniformSquare("parity", 120, 42);
  const CandidateLists cand(inst, 8);
  std::atomic<bool> cancel{false};
  RunConfig cfg;
  cfg.runtime = RuntimeKind::kThreads;
  cfg.nodes = 2;
  cfg.node.clkKicksPerCall = 5;
  cfg.timeLimitPerNode = 30.0;  // would dominate the suite if not cancelled
  cfg.seed = 7;
  cfg.cancel = &cancel;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    cancel.store(true);
  });
  const auto start = std::chrono::steady_clock::now();
  const RunResult res = runDistributed(inst, cand, cfg);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  canceller.join();
  EXPECT_LT(wall, 10.0) << "cancellation must beat the 30s budget";
  EXPECT_GT(res.bestLength, 0);
}

TEST(RuntimeOnBest, StreamMirrorsTheAnytimeCurve) {
  const Instance inst = uniformSquare("parity", 120, 42);
  const CandidateLists cand(inst, 8);
  AnytimeCurve streamed;
  RunConfig cfg = parityConfig();
  cfg.onBest = [&](double t, std::int64_t len) {
    streamed.push_back(AnytimePoint{t, len});
  };
  const RunResult res = runDistributed(inst, cand, cfg);
  ASSERT_EQ(streamed.size(), res.curve.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].time, res.curve[i].time);
    EXPECT_EQ(streamed[i].length, res.curve[i].length);
  }
}

TEST(RuntimeJobLabel, AppearsInRunMetaOnlyWhenSet) {
  const Instance inst = uniformSquare("parity", 120, 42);
  const CandidateLists cand(inst, 8);
  const auto capture = [&](const std::string& label) {
    std::ostringstream jsonl;
    obs::JsonlTraceSink sink(jsonl);
    RunConfig cfg = parityConfig();
    cfg.trace = &sink;
    cfg.jobLabel = label;
    runDistributed(inst, cand, cfg);
    std::istringstream in(jsonl.str());
    const obs::LoadedTrace trace = obs::loadTrace(in);
    EXPECT_TRUE(trace.meta.has_value());
    return trace.meta.has_value() ? trace.meta->str("job") : std::string();
  };
  EXPECT_EQ(capture("tenant-a/job-1"), "tenant-a/job-1");
  EXPECT_EQ(capture(""), "");  // standalone runs: key omitted, goldens stable
}

}  // namespace
}  // namespace distclk
