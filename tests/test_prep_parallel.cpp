// Determinism contract of the parallel preprocessing pipeline (DESIGN.md
// §13): for ANY thread count, the kd-tree layout, candidate CSR bytes,
// and construction tours are bit-identical to the serial build — so
// prepThreads stays out of the context cache key and a parallel build may
// serve a fixture recorded against the serial path. Run under TSan/ASan/
// UBSan in tier1.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "construct/construct.h"
#include "core/runtime.h"
#include "svc/solver_pool.h"
#include "tsp/gen.h"
#include "tsp/instance_context.h"
#include "tsp/kdtree.h"
#include "tsp/neighbors.h"
#include "util/task_pool.h"

namespace distclk {
namespace {

// Same recorder as tests/test_runtime.cpp: FNV-1a over the event log.
std::uint64_t eventLogHash(const EventLog& events) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const NodeEvent& e : events) {
    std::uint64_t timeBits;
    static_assert(sizeof(timeBits) == sizeof(e.time));
    __builtin_memcpy(&timeBits, &e.time, sizeof(timeBits));
    mix(timeBits);
    mix(static_cast<std::uint64_t>(e.node));
    mix(static_cast<std::uint64_t>(e.type));
    mix(static_cast<std::uint64_t>(e.value));
  }
  return h;
}

void expectSameLists(const CandidateLists& a, const CandidateLists& b) {
  ASSERT_EQ(a.n(), b.n());
  for (int c = 0; c < a.n(); ++c) {
    const auto la = a.of(c), lb = b.of(c);
    ASSERT_EQ(la.size(), lb.size()) << "city " << c;
    for (std::size_t i = 0; i < la.size(); ++i) {
      ASSERT_EQ(la[i], lb[i]) << "city " << c << " slot " << i;
      ASSERT_EQ(a.distOf(c)[i], b.distOf(c)[i]) << "city " << c;
    }
  }
}

// ---------------------------------------------------------------------
// Layer 1: kd-tree. The parallel build must produce the SAME preorder
// node numbering and order_ permutation (n=5000 > kParallelGrain so the
// build actually forks).

TEST(PrepParallel, KdTreeOrderIdenticalAcrossThreads) {
  const Instance inst = uniformSquare("kdpar", 5000, 7);
  const KdTree serial(inst.points());
  for (int threads : {2, 8}) {
    TaskPool pool(threads);
    const KdTree parallel(inst.points(), &pool);
    EXPECT_EQ(parallel.order(), serial.order()) << threads << " threads";
  }
}

TEST(PrepParallel, KnnIntoMatchesAllocatingKnn) {
  const Instance inst = clustered("kdknn", 3000, 10, 11);
  const KdTree tree(inst.points());
  KnnScratch scratch;
  std::vector<int> out(16);
  for (int q = 0; q < inst.n(); q += 97) {
    const std::vector<int> expect = tree.knn(q, 16);
    const int got = tree.knnInto(q, 16, out, scratch);
    ASSERT_EQ(std::size_t(got), expect.size()) << "query " << q;
    for (int i = 0; i < got; ++i)
      ASSERT_EQ(out[std::size_t(i)], expect[std::size_t(i)]) << "query " << q;
  }
}

// ---------------------------------------------------------------------
// Layer 2: candidate lists. CSR contents identical for every thread
// count, across geometry families, both kinds, and the matrix fallback.

TEST(PrepParallel, CandidateCsrIdenticalAcrossThreads) {
  const Instance instances[] = {uniformSquare("u", 3000, 3),
                                clustered("c", 3000, 12, 5),
                                perforatedGrid("g", 3000, 9)};
  for (const Instance& inst : instances) {
    for (const auto kind :
         {CandidateLists::Kind::kNearest, CandidateLists::Kind::kQuadrant}) {
      const CandidateLists serial(inst, 8, kind);
      for (int threads : {2, 8}) {
        TaskPool pool(threads);
        const CandidateLists parallel(inst, 8, kind, nullptr, &pool);
        expectSameLists(serial, parallel);
      }
    }
  }
}

TEST(PrepParallel, MatrixFallbackShardsIdentical) {
  // Random-ish explicit matrix: shard the O(n^2) scan too.
  const int n = 200;
  std::vector<std::int64_t> m(std::size_t(n) * std::size_t(n), 0);
  std::uint64_t s = 99;
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b) {
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      const auto d = std::int64_t(1 + (s >> 33) % 100000);
      m[std::size_t(a) * std::size_t(n) + std::size_t(b)] = d;
      m[std::size_t(b) * std::size_t(n) + std::size_t(a)] = d;
    }
  const Instance inst("mat", n, m);
  const CandidateLists serial(inst, 6);
  TaskPool pool(8);
  const CandidateLists parallel(inst, 6, CandidateLists::Kind::kNearest,
                                nullptr, &pool);
  expectSameLists(serial, parallel);
}

TEST(PrepParallel, SymmetricCloseAfterParallelBuildIdentical) {
  const Instance inst = uniformSquare("sym", 2500, 21);
  CandidateLists serial(inst, 8);
  serial.makeSymmetric();
  TaskPool pool(4);
  CandidateLists parallel(inst, 8, CandidateLists::Kind::kNearest, nullptr,
                          &pool);
  parallel.makeSymmetric();
  expectSameLists(serial, parallel);
}

// ---------------------------------------------------------------------
// Layer 3: construction. The partitioned tour is a function of the shard
// count only — never of the pool — and shards<=1 is exactly serial QB.

TEST(PrepParallel, PartitionedConstructionThreadInvariant) {
  const Instance inst = clustered("qbpart", 4000, 8, 17);
  CandidateLists cand(inst, 8);
  cand.makeSymmetric();
  const std::vector<int> serial =
      partitionedQuickBoruvkaTour(inst, cand, 4, nullptr);
  // Valid permutation.
  std::vector<char> seen(std::size_t(inst.n()), 0);
  for (int c : serial) seen[std::size_t(c)] = 1;
  for (char f : seen) ASSERT_TRUE(f);
  for (int threads : {2, 8}) {
    TaskPool pool(threads);
    EXPECT_EQ(partitionedQuickBoruvkaTour(inst, cand, 4, &pool), serial)
        << threads << " threads";
  }
  EXPECT_EQ(partitionedQuickBoruvkaTour(inst, cand, 1, nullptr),
            quickBoruvkaTour(inst, cand));
}

// ---------------------------------------------------------------------
// Layer 4: the whole build() and its cache identity.

TEST(PrepParallel, ContextBuildByteIdenticalAcrossThreads) {
  auto inst =
      std::make_shared<const Instance>(uniformSquare("ctxpar", 3000, 29));
  PreprocessParams params;
  params.candidateK = 8;
  params.symmetric = true;
  const auto serial = InstanceContext::build(inst, params);
  for (int threads : {2, 8}) {
    PreprocessParams p = params;
    p.prepThreads = threads;
    const auto parallel = InstanceContext::build(inst, p);
    EXPECT_EQ(parallel->constructionOrder(), serial->constructionOrder());
    expectSameLists(serial->candidates(), parallel->candidates());
    // Interchangeable contexts: prepThreads must not split the cache.
    EXPECT_EQ(p.cacheKey(), params.cacheKey());
    EXPECT_EQ(parallel->buildStats().threads, threads);
  }
  PreprocessParams part = params;
  part.partitionShards = 4;
  EXPECT_NE(part.cacheKey(), params.cacheKey());
}

TEST(PrepParallel, ContextCacheOneBuildForMixedThreadRequests) {
  ContextCache cache(4);
  auto inst =
      std::make_shared<const Instance>(uniformSquare("cachepar", 800, 31));
  std::atomic<int> misses{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      PreprocessParams p;
      p.candidateK = 8;
      p.prepThreads = 1 + t * 2;  // 1, 3, 5, 7 — all one cache key
      bool hit = false;
      auto ctx = cache.get(inst, p, &hit);
      ASSERT_NE(ctx, nullptr);
      if (!hit) ++misses;
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(cache.stats().builds, 1);
  EXPECT_EQ(misses.load(), 1);
}

// ---------------------------------------------------------------------
// Layer 5: the pinned end-to-end fixture (tests/test_runtime.cpp) must
// reproduce bit-for-bit from a context built with 8 prep threads.

TEST(PrepParallel, PinnedFixtureTrajectoryWithParallelPrep) {
  PreprocessParams prep;
  prep.candidateK = 8;
  prep.prepThreads = 8;
  const auto ctx = InstanceContext::build(
      std::make_shared<const Instance>(uniformSquare("parity", 120, 42)),
      prep);
  RunConfig cfg;
  cfg.nodes = 8;
  cfg.costModel = CostModel::kModeled;
  cfg.modeledWorkPerSecond = 1e5;
  cfg.node.clkKicksPerCall = 5;
  cfg.node.cr = 12;
  cfg.node.cv = 4;
  cfg.timeLimitPerNode = 6.0;
  cfg.seed = 2026;
  const RunResult res = runDistributed(ctx, cfg);

  EXPECT_EQ(res.bestLength, 8126701);
  EXPECT_EQ(res.totalSteps, 351);
  EXPECT_EQ(res.totalRestarts, 17);
  EXPECT_EQ(res.net.messagesSent, 24);
  EXPECT_EQ(res.net.broadcasts, 8);
  EXPECT_EQ(res.net.bytesSent, 12024);
  ASSERT_EQ(res.events.size(), 113u);
  EXPECT_EQ(eventLogHash(res.events), 15090688922916996318ULL);
  ASSERT_EQ(res.curve.size(), 2u);
  EXPECT_EQ(res.curve[0].time, 0.15969);
  EXPECT_EQ(res.curve[0].length, 8132600);
  EXPECT_EQ(res.curve[1].time, 0.57315000000000005);
  EXPECT_EQ(res.curve[1].length, 8126701);
}

// ---------------------------------------------------------------------
// Layer 6: the pool-wide prep-thread budget clamps requests but never
// changes what gets built.

TEST(PrepParallel, SolverPoolClampsPrepThreadsToBudget) {
  class ResultSink : public svc::JobSink {
   public:
    void onResult(const svc::JobResult& r) override { result = r; }
    svc::JobResult result;
  };
  svc::SolverPoolOptions opts;
  opts.workers = 1;
  opts.prepThreads = 2;  // budget below the request
  svc::SolverPool pool(opts);
  ResultSink sink;
  svc::JobSpec spec;
  spec.id = "clamped";
  spec.instance =
      std::make_shared<const Instance>(uniformSquare("budget", 600, 13));
  spec.preprocess.candidateK = 8;
  spec.preprocess.prepThreads = 8;  // requests more than the budget
  spec.run.nodes = 2;
  spec.run.costModel = CostModel::kModeled;
  spec.run.modeledWorkPerSecond = 1e5;
  spec.run.timeLimitPerNode = 0.2;
  ASSERT_TRUE(pool.submit(std::move(spec), &sink));
  pool.drain();
  pool.shutdown();
  EXPECT_EQ(sink.result.state, svc::JobState::kCompleted);
  EXPECT_FALSE(sink.result.cacheHit);
  EXPECT_EQ(sink.result.prepThreads, 2);  // granted == budget, not request
  EXPECT_GE(sink.result.prepCandMs, 0.0);
}

}  // namespace
}  // namespace distclk
