#include "tsp/tour.h"

#include <gtest/gtest.h>

#include "tsp/gen.h"
#include "util/rng.h"

namespace distclk {
namespace {

Instance square() {
  // Unit square, cities 0..3 counter-clockwise.
  return Instance("sq", {{0, 0}, {10, 0}, {10, 10}, {0, 10}},
                  EdgeWeightType::kEuc2D);
}

TEST(Tour, IdentityConstruction) {
  const Instance inst = square();
  const Tour t(inst);
  EXPECT_EQ(t.n(), 4);
  EXPECT_EQ(t.length(), 40);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.at(2), 2);
  EXPECT_EQ(t.pos(2), 2);
}

TEST(Tour, ExplicitOrder) {
  const Instance inst = square();
  const Tour t(inst, {0, 2, 1, 3});  // crossing tour
  EXPECT_GT(t.length(), 40);
  EXPECT_TRUE(t.valid());
}

TEST(Tour, RejectsNonPermutation) {
  const Instance inst = square();
  EXPECT_THROW(Tour(inst, {0, 0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(Tour(inst, {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(Tour(inst, {0, 1, 2, 7}), std::invalid_argument);
}

TEST(Tour, NextPrevAreCyclic) {
  const Instance inst = square();
  const Tour t(inst);
  EXPECT_EQ(t.next(0), 1);
  EXPECT_EQ(t.next(3), 0);
  EXPECT_EQ(t.prev(0), 3);
  EXPECT_EQ(t.prev(1), 0);
}

TEST(Tour, BetweenPredicate) {
  const Instance inst = square();
  const Tour t(inst);  // 0 1 2 3
  EXPECT_TRUE(t.between(0, 1, 2));
  EXPECT_FALSE(t.between(0, 3, 2));
  EXPECT_TRUE(t.between(3, 0, 1));   // wraps
  EXPECT_TRUE(t.between(2, 3, 1));   // wraps
  EXPECT_FALSE(t.between(2, 1, 3));
}

TEST(Tour, ReverseSegmentBasic) {
  const Instance inst = square();
  Tour t(inst);
  t.reverseSegment(1, 2);  // 0 2 1 3
  EXPECT_EQ(t.at(1), 2);
  EXPECT_EQ(t.at(2), 1);
  EXPECT_TRUE(t.valid());
}

TEST(Tour, ReverseSegmentWholeTourIsNoop) {
  const Instance inst = square();
  Tour t(inst);
  t.reverseSegment(0, 3);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.length(), 40);
}

TEST(Tour, ReverseSegmentWrapsAround) {
  const Instance inst = uniformSquare("u", 10, 5);
  Tour t(inst);
  t.reverseSegment(7, 2);  // wraps over the array boundary
  EXPECT_TRUE(t.valid());
}

TEST(Tour, ReverseSegmentIsInvolution) {
  const Instance inst = uniformSquare("u", 30, 5);
  Tour t(inst);
  const auto before = t.orderVector();
  t.reverseSegment(4, 20);
  t.reverseSegment(4, 20);
  // The cycle must be restored exactly (same-arc flip both times).
  EXPECT_EQ(t.orderVector(), before);
  EXPECT_TRUE(t.valid());
}

TEST(Tour, ReverseSegmentComplementBranchKeepsCycle) {
  const Instance inst = uniformSquare("u", 20, 6);
  Tour t(inst);
  const auto lenBefore = t.length();
  // Arc of length 15 > n/2: the complement is physically flipped.
  const std::int64_t expectedDelta =
      inst.dist(t.at(1), t.at(17)) + inst.dist(t.at(2), t.at(18)) -
      inst.dist(t.at(1), t.at(2)) - inst.dist(t.at(17), t.at(18));
  t.reverseSegment(2, 17);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.length(), lenBefore + expectedDelta);
}

TEST(Tour, TwoOptMoveUncrossesSquare) {
  const Instance inst = square();
  Tour t(inst, {0, 2, 1, 3});  // crossed
  const auto before = t.length();
  // Fix by removing (0,2) and (1,3): a=0 (next=2), b=1 (next=3).
  const auto delta = t.twoOptMove(0, 1);
  EXPECT_LT(delta, 0);
  EXPECT_EQ(t.length(), before + delta);
  EXPECT_EQ(t.length(), 40);
  EXPECT_TRUE(t.valid());
}

TEST(Tour, TwoOptMoveDegenerateIsNoop) {
  const Instance inst = square();
  Tour t(inst);
  EXPECT_EQ(t.twoOptMove(0, 0), 0);
  EXPECT_EQ(t.twoOptMove(0, 1), 0);  // adjacent: next(0) == 1
  EXPECT_EQ(t.twoOptMove(1, 0), 0);  // adjacent the other way
  EXPECT_TRUE(t.valid());
}

TEST(Tour, OrOptMoveRelocatesSegment) {
  const Instance inst =
      Instance("line", {{0, 0}, {1, 0}, {10, 0}, {2, 0}, {3, 0}, {4, 0}},
               EdgeWeightType::kEuc2D);
  // Tour 0 1 2 3 4 5 visits the outlier 2 mid-line; moving city 2 between
  // 5 and 0 shortens nothing (it's an outlier), but moving 3 4 5 works.
  Tour t(inst);
  EXPECT_TRUE(t.valid());
  const auto delta = t.orOptMove(2, 1, 5, false);  // move city 2 after 5
  EXPECT_EQ(t.length(), inst.tourLength(t.order()));
  EXPECT_TRUE(t.valid());
  (void)delta;
}

TEST(Tour, OrOptMoveReversedSegment) {
  const Instance inst = uniformSquare("u", 12, 9);
  Tour t(inst);
  const auto delta = t.orOptMove(3, 3, 9, true);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.length(), inst.tourLength(t.order()));
  (void)delta;
}

TEST(Tour, OrOptMoveValidatesArguments) {
  const Instance inst = uniformSquare("u", 10, 9);
  Tour t(inst);
  EXPECT_THROW(t.orOptMove(0, 0, 5, false), std::invalid_argument);
  EXPECT_THROW(t.orOptMove(0, 9, 5, false), std::invalid_argument);
  // c inside the segment.
  EXPECT_THROW(t.orOptMove(0, 3, 1, false), std::invalid_argument);
}

TEST(Tour, OrOptMoveNoopWhenReinsertingInPlace) {
  const Instance inst = uniformSquare("u", 10, 9);
  Tour t(inst);
  const auto order = t.orderVector();
  // c == prev(s): the segment would go back where it is.
  EXPECT_EQ(t.orOptMove(3, 2, 2, false), 0);
  EXPECT_EQ(t.orderVector(), order);
}

TEST(Tour, DoubleBridgeRecombinesSegments) {
  const Instance inst = uniformSquare("u", 12, 4);
  Tour t(inst);
  const auto before = t.orderVector();
  const auto lenBefore = t.length();
  const auto delta = t.doubleBridge(3, 6, 9);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.length(), lenBefore + delta);
  // A C B D layout.
  std::vector<int> expected;
  for (int p = 0; p < 3; ++p) expected.push_back(before[std::size_t(p)]);
  for (int p = 6; p < 9; ++p) expected.push_back(before[std::size_t(p)]);
  for (int p = 3; p < 6; ++p) expected.push_back(before[std::size_t(p)]);
  for (int p = 9; p < 12; ++p) expected.push_back(before[std::size_t(p)]);
  EXPECT_EQ(t.orderVector(), expected);
}

TEST(Tour, DoubleBridgeValidatesPositions) {
  const Instance inst = uniformSquare("u", 12, 4);
  Tour t(inst);
  EXPECT_THROW(t.doubleBridge(0, 6, 9), std::invalid_argument);
  EXPECT_THROW(t.doubleBridge(3, 3, 9), std::invalid_argument);
  EXPECT_THROW(t.doubleBridge(3, 6, 12), std::invalid_argument);
}

TEST(Tour, SetOrderRecomputesLength) {
  const Instance inst = square();
  Tour t(inst);
  t.setOrder({0, 2, 1, 3});
  EXPECT_TRUE(t.valid());
  EXPECT_GT(t.length(), 40);
}

// Property sweep: random mixed operations must always preserve the
// permutation invariant and the incremental length bookkeeping.
class TourPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TourPropertyTest, RandomOperationsKeepInvariants) {
  const int n = GetParam();
  const Instance inst = uniformSquare("p", n, std::uint64_t(n) * 17 + 1);
  Rng rng(static_cast<std::uint64_t>(n));
  Tour t(inst);
  for (int step = 0; step < 200; ++step) {
    switch (rng.below(3)) {
      case 0: {
        const int i = static_cast<int>(rng.below(std::uint64_t(n)));
        const int j = static_cast<int>(rng.below(std::uint64_t(n)));
        t.reverseSegment(i, j);
        break;
      }
      case 1: {
        const int a = static_cast<int>(rng.below(std::uint64_t(n)));
        const int b = static_cast<int>(rng.below(std::uint64_t(n)));
        t.twoOptMove(a, b);
        break;
      }
      default: {
        if (n >= 8) {
          const int p1 = 1 + static_cast<int>(rng.below(std::uint64_t(n - 3)));
          const int p2 = p1 + 1 + static_cast<int>(
                                      rng.below(std::uint64_t(n - p1 - 2)));
          const int p3 =
              p2 + 1 + static_cast<int>(rng.below(std::uint64_t(n - p2 - 1)));
          t.doubleBridge(p1, p2, p3);
        }
        break;
      }
    }
    ASSERT_TRUE(t.valid()) << "step " << step << " n " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TourPropertyTest,
                         ::testing::Values(5, 8, 13, 32, 100, 257));

}  // namespace
}  // namespace distclk
