#include "tsp/metrics.h"

#include <gtest/gtest.h>

#include <numeric>

#include "tsp/gen.h"
#include "util/rng.h"

namespace distclk {
namespace {

std::vector<int> identity(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(Metrics, IdenticalToursShareEverything) {
  const auto t = identity(10);
  EXPECT_EQ(sharedEdges(t, t), 10);
  EXPECT_DOUBLE_EQ(bondSimilarity(t, t), 1.0);
}

TEST(Metrics, RotationAndReflectionAreTheSameCycle) {
  const auto a = identity(8);
  std::vector<int> rotated{3, 4, 5, 6, 7, 0, 1, 2};
  std::vector<int> reflected{0, 7, 6, 5, 4, 3, 2, 1};
  EXPECT_EQ(sharedEdges(a, rotated), 8);
  EXPECT_EQ(sharedEdges(a, reflected), 8);
}

TEST(Metrics, DisjointCyclesShareAlmostNothing) {
  const auto a = identity(6);                 // 0-1-2-3-4-5
  const std::vector<int> b{0, 2, 4, 1, 3, 5};  // mostly different edges
  EXPECT_LT(sharedEdges(a, b), 3);
}

TEST(Metrics, SharedEdgesRejectsSizeMismatch) {
  EXPECT_THROW(sharedEdges(identity(5), identity(6)), std::invalid_argument);
}

TEST(Metrics, UnionEdgeCountBounds) {
  const auto a = identity(10);
  std::vector<int> b = a;
  std::swap(b[2], b[7]);  // a different cycle
  const int unionCount = unionEdgeCount({a, b});
  EXPECT_GE(unionCount, 10);
  EXPECT_LE(unionCount, 20);
  EXPECT_EQ(unionEdgeCount({a, a}), 10);
}

TEST(Metrics, PopulationDiversitySemantics) {
  const auto a = identity(12);
  EXPECT_DOUBLE_EQ(populationDiversity({a}), 1.0);
  EXPECT_DOUBLE_EQ(populationDiversity({a, a, a}), 1.0);
  Rng rng(4);
  std::vector<int> shuffled = a;
  rng.shuffle(shuffled);
  const double div = populationDiversity({a, shuffled});
  EXPECT_LT(div, 1.0);
  EXPECT_GE(div, 0.0);
}

TEST(Metrics, EdgeLengthProfileOnSquare) {
  const Instance inst("sq", {{0, 0}, {10, 0}, {10, 10}, {0, 10}},
                      EdgeWeightType::kEuc2D);
  const auto profile = edgeLengthProfile(inst, std::vector<int>{0, 1, 2, 3});
  EXPECT_EQ(profile.min, 10);
  EXPECT_EQ(profile.max, 10);
  EXPECT_DOUBLE_EQ(profile.mean, 10.0);
  EXPECT_DOUBLE_EQ(profile.p50, 10.0);
}

TEST(Metrics, EdgeLengthProfileSkewed) {
  // Three short edges, one long closing edge.
  const Instance inst("ln", {{0, 0}, {1, 0}, {2, 0}, {100, 0}},
                      EdgeWeightType::kEuc2D);
  const auto profile = edgeLengthProfile(inst, std::vector<int>{0, 1, 2, 3});
  EXPECT_EQ(profile.min, 1);
  EXPECT_EQ(profile.max, 100);
  EXPECT_GT(profile.p95, profile.p50);
}

TEST(Metrics, RandomToursOnSameInstanceHaveLowSimilarity) {
  Rng rng(9);
  auto a = identity(200);
  auto b = identity(200);
  rng.shuffle(a);
  rng.shuffle(b);
  EXPECT_LT(bondSimilarity(a, b), 0.1);
}

}  // namespace
}  // namespace distclk
