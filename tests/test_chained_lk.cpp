#include "lk/chained_lk.h"

#include <gtest/gtest.h>

#include "bound/exact.h"
#include "construct/construct.h"
#include "lk/lin_kernighan.h"
#include "tsp/gen.h"

namespace distclk {
namespace {

TEST(ChainedLk, ImprovesOverPlainLk) {
  double lkTotal = 0, clkTotal = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Instance inst = uniformSquare("c", 400, seed * 13);
    const CandidateLists cand(inst, 8);
    Rng rng(seed);
    Tour lk(inst, quickBoruvkaTour(inst, cand));
    linKernighanOptimize(lk, cand);
    Tour clk(inst, quickBoruvkaTour(inst, cand));
    ClkOptions opt;
    opt.maxKicks = 300;
    chainedLinKernighan(clk, cand, rng, opt);
    lkTotal += static_cast<double>(lk.length());
    clkTotal += static_cast<double>(clk.length());
  }
  EXPECT_LT(clkTotal, lkTotal);
}

TEST(ChainedLk, RespectsMaxKicks) {
  const Instance inst = uniformSquare("c", 100, 81);
  const CandidateLists cand(inst, 8);
  Rng rng(1);
  Tour t(inst);
  ClkOptions opt;
  opt.maxKicks = 17;
  const ClkResult res = chainedLinKernighan(t, cand, rng, opt);
  EXPECT_EQ(res.kicks, 17);
  EXPECT_TRUE(t.valid());
}

TEST(ChainedLk, StopsAtTarget) {
  const Instance inst = uniformSquare("c", 12, 82);
  const CandidateLists cand(inst, 8);
  const auto opt = solveExactDp(inst);
  Rng rng(2);
  Tour t(inst);
  ClkOptions co;
  co.targetLength = opt.length;
  co.maxKicks = 100000;
  const ClkResult res = chainedLinKernighan(t, cand, rng, co);
  EXPECT_TRUE(res.hitTarget);
  EXPECT_EQ(t.length(), opt.length);
  EXPECT_LT(res.kicks, 100000);
}

TEST(ChainedLk, StopsOnTimeLimit) {
  const Instance inst = uniformSquare("c", 500, 83);
  const CandidateLists cand(inst, 8);
  Rng rng(3);
  Tour t(inst);
  ClkOptions co;
  co.timeLimitSeconds = 0.2;
  const ClkResult res = chainedLinKernighan(t, cand, rng, co);
  EXPECT_LT(res.seconds, 2.0);  // generous: one kick never takes that long
  EXPECT_FALSE(res.hitTarget);
}

TEST(ChainedLk, ChampionNeverWorsens) {
  const Instance inst = uniformSquare("c", 200, 84);
  const CandidateLists cand(inst, 8);
  Rng rng(4);
  Tour t(inst, quickBoruvkaTour(inst, cand));
  std::vector<std::int64_t> lengths;
  ClkOptions co;
  co.maxKicks = 200;
  chainedLinKernighan(t, cand, rng, co,
                      [&](double, std::int64_t len) { lengths.push_back(len); });
  ASSERT_GE(lengths.size(), 1u);
  for (std::size_t i = 1; i < lengths.size(); ++i)
    EXPECT_LT(lengths[i], lengths[i - 1]);
  EXPECT_EQ(lengths.back(), t.length());
}

TEST(ChainedLk, CallbackTimesNonDecreasing) {
  const Instance inst = uniformSquare("c", 200, 85);
  const CandidateLists cand(inst, 8);
  Rng rng(5);
  Tour t(inst);
  std::vector<double> times;
  ClkOptions co;
  co.maxKicks = 100;
  chainedLinKernighan(t, cand, rng, co,
                      [&](double s, std::int64_t) { times.push_back(s); });
  for (std::size_t i = 1; i < times.size(); ++i)
    EXPECT_GE(times[i], times[i - 1]);
}

TEST(ChainedLk, ReportsFlipWork) {
  const Instance inst = uniformSquare("c", 150, 86);
  const CandidateLists cand(inst, 8);
  Rng rng(6);
  Tour t(inst);
  ClkOptions co;
  co.maxKicks = 50;
  const ClkResult res = chainedLinKernighan(t, cand, rng, co);
  EXPECT_GT(res.flips, 0);
  EXPECT_EQ(res.length, t.length());
}

class ChainedLkKickSweep : public ::testing::TestWithParam<KickStrategy> {};

TEST_P(ChainedLkKickSweep, AllStrategiesProduceValidResults) {
  const Instance inst = clustered("c", 200, 10, 87);
  const CandidateLists cand(inst, 8);
  Rng rng(7);
  Tour t(inst, quickBoruvkaTour(inst, cand));
  ClkOptions co;
  co.kick = GetParam();
  co.maxKicks = 100;
  const ClkResult res = chainedLinKernighan(t, cand, rng, co);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(res.length, t.length());
}

INSTANTIATE_TEST_SUITE_P(
    All, ChainedLkKickSweep,
    ::testing::Values(KickStrategy::kRandom, KickStrategy::kGeometric,
                      KickStrategy::kClose, KickStrategy::kRandomWalk),
    [](const auto& info) {
      std::string name = toString(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

}  // namespace
}  // namespace distclk
