#include "lk/two_opt.h"

#include <gtest/gtest.h>

#include "construct/construct.h"
#include "tsp/gen.h"
#include "util/rng.h"

namespace distclk {
namespace {

TEST(TwoOpt, UncrossesSquare) {
  const Instance inst("sq", {{0, 0}, {10, 0}, {10, 10}, {0, 10}},
                      EdgeWeightType::kEuc2D);
  const CandidateLists cand(inst, 3);
  Tour t(inst, {0, 2, 1, 3});
  const auto gain = twoOptOptimize(t, cand);
  EXPECT_GT(gain, 0);
  EXPECT_EQ(t.length(), 40);
  EXPECT_TRUE(t.valid());
}

class TwoOptSizes : public ::testing::TestWithParam<int> {};

TEST_P(TwoOptSizes, ImprovesRandomToursAndStaysValid) {
  const int n = GetParam();
  const Instance inst = uniformSquare("t", n, std::uint64_t(n) + 41);
  const CandidateLists cand(inst, 8);
  Rng rng(7);
  Tour t(inst, randomTour(inst, rng));
  const auto before = t.length();
  const auto gain = twoOptOptimize(t, cand);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.length(), before - gain);
  EXPECT_GT(gain, 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TwoOptSizes,
                         ::testing::Values(10, 50, 200, 1000));

TEST(TwoOpt, IdempotentAtLocalOptimum) {
  const Instance inst = uniformSquare("t", 150, 43);
  const CandidateLists cand(inst, 8);
  Rng rng(1);
  Tour t(inst, randomTour(inst, rng));
  twoOptOptimize(t, cand);
  EXPECT_EQ(twoOptOptimize(t, cand), 0);
}

TEST(TwoOpt, NoImprovingCandidateMoveRemains) {
  const Instance inst = uniformSquare("t", 100, 44);
  CandidateLists cand(inst, 6);
  cand.makeSymmetric();  // required for the exactness of the guarantee
  Rng rng(2);
  Tour t(inst, randomTour(inst, rng));
  twoOptOptimize(t, cand);
  // Verify exactly the optimizer's guarantee: no improving move remains
  // among candidate pairs whose NEW edge (a,b) is shorter than the removed
  // edge adjacent at a. (Moves where only the other new edge is short are
  // covered from the other endpoint's candidate list, which need not
  // contain this pair — classic neighbor-list 2-opt semantics.)
  for (int a = 0; a < inst.n(); ++a) {
    const int na = t.next(a);
    const int pa = t.prev(a);
    for (int b : cand.of(a)) {
      if (inst.dist(a, b) < inst.dist(a, na)) {
        const int nb = t.next(b);
        if (b != na && nb != a) {
          const auto delta = inst.dist(a, b) + inst.dist(na, nb) -
                             inst.dist(a, na) - inst.dist(b, nb);
          EXPECT_GE(delta, 0) << "successor move left: " << a << "," << b;
        }
      }
      if (inst.dist(a, b) < inst.dist(pa, a)) {
        const int pb = t.prev(b);
        if (b != pa && pb != a) {
          const auto delta = inst.dist(a, b) + inst.dist(pa, pb) -
                             inst.dist(pa, a) - inst.dist(pb, b);
          EXPECT_GE(delta, 0) << "predecessor move left: " << a << "," << b;
        }
      }
    }
  }
}

TEST(TwoOpt, WorksOnClusteredInstances) {
  const Instance inst = clustered("t", 200, 10, 45);
  const CandidateLists cand(inst, 8);
  Rng rng(3);
  Tour t(inst, randomTour(inst, rng));
  twoOptOptimize(t, cand);
  EXPECT_TRUE(t.valid());
}

TEST(TwoOpt, StartingFromGoodTourStillValid) {
  const Instance inst = uniformSquare("t", 300, 46);
  const CandidateLists cand(inst, 8);
  Tour t(inst, quickBoruvkaTour(inst, cand));
  const auto before = t.length();
  twoOptOptimize(t, cand);
  EXPECT_LE(t.length(), before);
  EXPECT_TRUE(t.valid());
}

}  // namespace
}  // namespace distclk
