#include "lk/lin_kernighan.h"

#include <gtest/gtest.h>

#include "bound/alpha.h"
#include "bound/exact.h"
#include "construct/construct.h"
#include "lk/kicks.h"
#include "lk/two_opt.h"
#include "tsp/gen.h"
#include "util/rng.h"

namespace distclk {
namespace {

class LkSizes : public ::testing::TestWithParam<int> {};

TEST_P(LkSizes, ImprovesRandomToursAndStaysValid) {
  const int n = GetParam();
  const Instance inst = uniformSquare("l", n, std::uint64_t(n) + 61);
  const CandidateLists cand(inst, 8);
  Rng rng(9);
  Tour t(inst, randomTour(inst, rng));
  const auto before = t.length();
  const LkStats stats = linKernighanOptimize(t, cand);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.length(), before - stats.improvement);
  EXPECT_GT(stats.improvement, 0);
  EXPECT_GT(stats.chains, 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LkSizes, ::testing::Values(10, 50, 200, 800));

TEST(Lk, AtLeastAsGoodAsTwoOptFromSameStart) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance inst = uniformSquare("l", 300, seed * 100);
    const CandidateLists cand(inst, 8);
    Rng rng(seed);
    const auto start = randomTour(inst, rng);
    Tour two(inst, start);
    Tour lk(inst, start);
    twoOptOptimize(two, cand);
    linKernighanOptimize(lk, cand);
    // LK's move set strictly contains candidate 2-opt moves; allow a hair
    // of slack for different search orders, but LK should essentially win.
    EXPECT_LE(static_cast<double>(lk.length()),
              static_cast<double>(two.length()) * 1.01)
        << "seed " << seed;
  }
}

TEST(Lk, IdempotentAtLocalOptimum) {
  const Instance inst = uniformSquare("l", 200, 63);
  const CandidateLists cand(inst, 8);
  Rng rng(11);
  Tour t(inst, randomTour(inst, rng));
  linKernighanOptimize(t, cand);
  const LkStats again = linKernighanOptimize(t, cand);
  EXPECT_EQ(again.improvement, 0);
  EXPECT_EQ(again.chains, 0);
}

TEST(Lk, FindsOptimumOnSmallInstances) {
  int hits = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance inst = uniformSquare("l", 10, seed * 7);
    const CandidateLists cand(inst, 9);
    Rng rng(seed);
    Tour t(inst, randomTour(inst, rng));
    linKernighanOptimize(t, cand);
    if (t.length() == solveExactDp(inst).length) ++hits;
  }
  // LK from a single random start solves most 10-city instances.
  EXPECT_GE(hits, 7);
}

TEST(Lk, DirtyListRestrictsWork) {
  const Instance inst = uniformSquare("l", 500, 65);
  const CandidateLists cand(inst, 8);
  Rng rng(13);
  Tour t(inst, quickBoruvkaTour(inst, cand));
  linKernighanOptimize(t, cand);
  const auto optimized = t.length();
  // Kick, then re-optimize only around the kick.
  const auto dirty = applyKick(t, KickStrategy::kRandom, cand, rng);
  const LkStats stats = linKernighanOptimize(t, cand, dirty, LkOptions{});
  EXPECT_TRUE(t.valid());
  // The damage is mostly repaired (within 2% of the previous optimum).
  EXPECT_LE(static_cast<double>(t.length()),
            static_cast<double>(optimized) * 1.02);
  (void)stats;
}

TEST(Lk, EmptyDirtyListIsNoop) {
  const Instance inst = uniformSquare("l", 100, 66);
  const CandidateLists cand(inst, 8);
  Tour t(inst);
  const auto before = t.length();
  const LkStats stats =
      linKernighanOptimize(t, cand, std::vector<int>{}, LkOptions{});
  EXPECT_EQ(stats.improvement, 0);
  EXPECT_EQ(t.length(), before);
}

TEST(Lk, WorksWithAlphaCandidates) {
  const Instance inst = uniformSquare("l", 150, 67);
  const std::vector<double> pi(150, 0.0);
  const CandidateLists alpha = alphaCandidates(inst, pi, 8);
  Rng rng(15);
  Tour t(inst, randomTour(inst, rng));
  LkOptions opt;
  opt.candidatesDistanceSorted = false;
  const auto before = t.length();
  linKernighanOptimize(t, alpha, opt);
  EXPECT_TRUE(t.valid());
  EXPECT_LT(t.length(), before);
}

TEST(Lk, DepthOneBehavesLikeGreedyTwoOpt) {
  const Instance inst = uniformSquare("l", 200, 68);
  const CandidateLists cand(inst, 8);
  Rng rng(17);
  Tour t(inst, randomTour(inst, rng));
  LkOptions opt;
  opt.maxDepth = 1;
  linKernighanOptimize(t, cand, opt);
  EXPECT_TRUE(t.valid());
  // Depth-1 chains are exactly 2-opt moves; the result must be 2-opt-quiet
  // in the successor direction explored by a fresh 2-opt pass within ~0.5%.
  Tour check = t;
  const auto residual = twoOptOptimize(check, cand);
  EXPECT_LE(static_cast<double>(residual),
            static_cast<double>(t.length()) * 0.005);
}

TEST(Lk, DeeperSearchFindsBetterTours) {
  // Averaged over a few seeds, depth-25 LK beats depth-2 LK.
  double shallow = 0, deep = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance inst = uniformSquare("l", 400, seed * 11);
    const CandidateLists cand(inst, 8);
    Rng rng(seed);
    const auto start = randomTour(inst, rng);
    LkOptions s;
    s.maxDepth = 2;
    LkOptions d;
    d.maxDepth = 25;
    Tour a(inst, start), b(inst, start);
    linKernighanOptimize(a, cand, s);
    linKernighanOptimize(b, cand, d);
    shallow += static_cast<double>(a.length());
    deep += static_cast<double>(b.length());
  }
  EXPECT_LT(deep, shallow);
}

TEST(Lk, TinyInstances) {
  for (int n : {5, 6, 7}) {
    const Instance inst = uniformSquare("l", n, std::uint64_t(n));
    const CandidateLists cand(inst, n - 1);
    Rng rng(1);
    Tour t(inst, randomTour(inst, rng));
    linKernighanOptimize(t, cand);
    EXPECT_TRUE(t.valid());
    EXPECT_EQ(t.length(), solveExactDp(inst).length) << n;
  }
}

}  // namespace
}  // namespace distclk
