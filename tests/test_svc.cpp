// Tests for the multi-tenant job layer (svc/): cold vs warm ContextCache
// runs through the SolverPool must reproduce the pinned pre-refactor
// fixture bit for bit (the acceptance bar for "the cache changes nothing"),
// repeated identical jobs must build preprocessing exactly once, and the
// scheduling semantics — priority order, queued/running cancellation,
// deadline expiry, backpressure — must be observable through JobResult.
#include "svc/solver_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime.h"
#include "obs/metrics.h"
#include "svc/job.h"
#include "tsp/gen.h"
#include "tsp/instance_context.h"

namespace distclk {
namespace {

// Same FNV-1a event-log digest as tests/test_runtime.cpp: the pinned
// fixture value must be reproduced through the job layer too.
std::uint64_t eventLogHash(const EventLog& events) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const NodeEvent& e : events) {
    std::uint64_t timeBits;
    static_assert(sizeof(timeBits) == sizeof(e.time));
    __builtin_memcpy(&timeBits, &e.time, sizeof(timeBits));
    mix(timeBits);
    mix(static_cast<std::uint64_t>(e.node));
    mix(static_cast<std::uint64_t>(e.type));
    mix(static_cast<std::uint64_t>(e.value));
  }
  return h;
}

std::int64_t counterValue(const obs::MetricsSnapshot& snap,
                          const std::string& name) {
  for (const auto& c : snap.counters)
    if (c.name == name) return c.value;
  return -1;
}

/// The tests/test_runtime.cpp parity fixture, expressed as a job.
svc::JobSpec parityJob(std::string id) {
  svc::JobSpec spec;
  spec.id = std::move(id);
  spec.instance =
      std::make_shared<const Instance>(uniformSquare("parity", 120, 42));
  spec.preprocess.candidateK = 8;
  spec.run.nodes = 8;
  spec.run.costModel = CostModel::kModeled;
  spec.run.modeledWorkPerSecond = 1e5;
  spec.run.node.clkKicksPerCall = 5;
  spec.run.node.cr = 12;
  spec.run.node.cv = 4;
  spec.run.timeLimitPerNode = 6.0;
  spec.run.seed = 2026;
  return spec;
}

/// Collects results (and progress) by job id; wakes waiters per terminal
/// result so tests can block on specific jobs.
class CollectingSink : public svc::JobSink {
 public:
  void onProgress(const svc::JobProgress& p) override {
    const std::lock_guard<std::mutex> lock(mu_);
    progress_[p.id].push_back(p.best);
  }
  void onResult(const svc::JobResult& r) override {
    const std::lock_guard<std::mutex> lock(mu_);
    order_.push_back(r.id);
    results_[r.id] = r;
    cv_.notify_all();
  }
  svc::JobResult wait(const std::string& id) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return results_.count(id) > 0; });
    return results_[id];
  }
  std::vector<std::string> completionOrder() {
    const std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }
  std::vector<std::int64_t> progressFor(const std::string& id) {
    const std::lock_guard<std::mutex> lock(mu_);
    return progress_[id];
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, svc::JobResult> results_;
  std::map<std::string, std::vector<std::int64_t>> progress_;
  std::vector<std::string> order_;
};

TEST(SolverPool, ColdAndWarmRunsReproduceThePinnedFixture) {
  svc::SolverPoolOptions opts;
  opts.workers = 1;  // serialize, so cold strictly precedes warm
  svc::SolverPool pool(opts);
  CollectingSink sink;
  ASSERT_TRUE(pool.submit(parityJob("cold"), &sink));
  ASSERT_TRUE(pool.submit(parityJob("warm"), &sink));
  pool.drain();

  const svc::JobResult cold = sink.wait("cold");
  const svc::JobResult warm = sink.wait("warm");
  EXPECT_FALSE(cold.cacheHit);
  EXPECT_TRUE(warm.cacheHit);

  // Both trajectories are the pre-refactor fixture, bit for bit: a context
  // cache hit must change nothing about the run.
  for (const svc::JobResult& r : {cold, warm}) {
    EXPECT_EQ(r.state, svc::JobState::kCompleted) << r.id;
    EXPECT_EQ(r.bestLength, 8126701) << r.id;
    EXPECT_EQ(r.totalSteps, 351) << r.id;
    ASSERT_EQ(r.events.size(), 113u) << r.id;
    EXPECT_EQ(eventLogHash(r.events), 15090688922916996318ULL) << r.id;
    ASSERT_EQ(r.curve.size(), 2u) << r.id;
    EXPECT_EQ(r.curve[0].time, 0.15969) << r.id;
    EXPECT_EQ(r.curve[0].length, 8132600) << r.id;
    EXPECT_EQ(r.curve[1].time, 0.57315000000000005) << r.id;
    EXPECT_EQ(r.curve[1].length, 8126701) << r.id;
  }

  // Construction ran exactly once across both jobs.
  const ContextCache::Stats stats = pool.contexts().stats();
  EXPECT_EQ(stats.builds, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);

  // The incremental best stream saw the curve's improvements, in order.
  const std::vector<std::int64_t> stream = sink.progressFor("cold");
  ASSERT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream[0], 8132600);
  EXPECT_EQ(stream[1], 8126701);
}

TEST(SolverPool, RepeatedJobsBuildPreprocessingOnce) {
  obs::MetricsRegistry metrics;
  svc::SolverPoolOptions opts;
  opts.workers = 2;
  opts.metrics = &metrics;
  svc::SolverPool pool(opts);
  CollectingSink sink;
  constexpr int kJobs = 6;
  for (int i = 0; i < kJobs; ++i) {
    svc::JobSpec spec = parityJob("job-" + std::to_string(i));
    spec.run.timeLimitPerNode = 1.0;  // shorter: this test is about setup
    ASSERT_TRUE(pool.submit(std::move(spec), &sink));
  }
  pool.drain();
  const ContextCache::Stats stats = pool.contexts().stats();
  EXPECT_EQ(stats.builds, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, kJobs - 1);

  // The svc.* metrics agree with the cache's own counters.
  const obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(counterValue(snap, "svc.jobs_submitted"), kJobs);
  EXPECT_EQ(counterValue(snap, "svc.jobs_completed"), kJobs);
  EXPECT_EQ(counterValue(snap, "svc.context_cache_hits"), kJobs - 1);
  EXPECT_EQ(counterValue(snap, "svc.context_cache_misses"), 1);
}

TEST(SolverPool, PriorityOrdersQueuedJobs) {
  svc::SolverPoolOptions opts;
  opts.workers = 1;  // one worker: completion order == schedule order
  svc::SolverPool pool(opts);
  CollectingSink sink;
  // A wall-clock blocker occupies the single worker; three tenants with
  // distinct priorities are then queued behind it and must run strictly by
  // descending priority, not submission order.
  svc::JobSpec blocker = parityJob("blocker");
  blocker.run.runtime = RuntimeKind::kThreads;
  blocker.run.costModel = CostModel::kMeasured;
  blocker.run.nodes = 2;
  blocker.run.timeLimitPerNode = 0.4;
  ASSERT_TRUE(pool.submit(std::move(blocker), &sink));
  while (pool.queueDepth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto quick = [](std::string id, int priority) {
    svc::JobSpec spec = parityJob(std::move(id));
    spec.run.timeLimitPerNode = 0.5;
    spec.priority = priority;
    return spec;
  };
  ASSERT_TRUE(pool.submit(quick("low", -1), &sink));
  ASSERT_TRUE(pool.submit(quick("high", 5), &sink));
  ASSERT_TRUE(pool.submit(quick("mid", 2), &sink));
  pool.drain();
  const std::vector<std::string> order = sink.completionOrder();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "blocker");
  const std::vector<std::string> queued(order.begin() + 1, order.end());
  EXPECT_EQ(queued, (std::vector<std::string>{"high", "mid", "low"}));
}

TEST(SolverPool, CancelQueuedAndRunningJobs) {
  svc::SolverPoolOptions opts;
  opts.workers = 1;
  svc::SolverPool pool(opts);
  CollectingSink sink;

  // "running" is a long wall-clock job (threads runtime, measured cost) so
  // cancellation observably truncates it.
  svc::JobSpec running = parityJob("running");
  running.run.runtime = RuntimeKind::kThreads;
  running.run.costModel = CostModel::kMeasured;
  running.run.nodes = 2;
  running.run.timeLimitPerNode = 30.0;
  ASSERT_TRUE(pool.submit(std::move(running), &sink));
  ASSERT_TRUE(pool.submit(parityJob("queued"), &sink));

  // Cancel the queued job: terminal immediately, without running.
  EXPECT_TRUE(pool.cancel("queued"));
  const svc::JobResult q = sink.wait("queued");
  EXPECT_EQ(q.state, svc::JobState::kCancelled);
  EXPECT_EQ(q.totalSteps, 0);
  EXPECT_EQ(q.solveSeconds, 0.0);

  // Cancel the running job: cooperative, stops long before its 30s budget.
  EXPECT_TRUE(pool.cancel("running"));
  const svc::JobResult r = sink.wait("running");
  EXPECT_EQ(r.state, svc::JobState::kCancelled);
  EXPECT_LT(r.solveSeconds, 20.0);

  // Terminal jobs cannot be cancelled again; unknown ids are rejected.
  EXPECT_FALSE(pool.cancel("queued"));
  EXPECT_FALSE(pool.cancel("no-such-job"));
  pool.drain();
}

TEST(SolverPool, DeadlineExpiresQueuedJobs) {
  obs::MetricsRegistry metrics;
  svc::SolverPoolOptions opts;
  opts.workers = 1;
  opts.metrics = &metrics;
  opts.deadlinePollSeconds = 0.002;
  svc::SolverPool pool(opts);
  CollectingSink sink;

  svc::JobSpec blocker = parityJob("blocker");
  blocker.run.runtime = RuntimeKind::kThreads;
  blocker.run.costModel = CostModel::kMeasured;
  blocker.run.nodes = 2;
  blocker.run.timeLimitPerNode = 0.5;
  ASSERT_TRUE(pool.submit(std::move(blocker), &sink));

  svc::JobSpec doomed = parityJob("doomed");
  doomed.deadlineSeconds = 0.01;  // expires while the blocker runs
  ASSERT_TRUE(pool.submit(std::move(doomed), &sink));

  const svc::JobResult d = sink.wait("doomed");
  EXPECT_EQ(d.state, svc::JobState::kExpired);
  EXPECT_EQ(d.totalSteps, 0);
  pool.drain();
  EXPECT_EQ(sink.wait("blocker").state, svc::JobState::kCompleted);
  EXPECT_EQ(counterValue(metrics.snapshot(), "svc.jobs_expired"), 1);
}

TEST(SolverPool, BackpressureRejectsWhenTheQueueIsFull) {
  svc::SolverPoolOptions opts;
  opts.workers = 1;
  opts.maxQueueDepth = 1;
  svc::SolverPool pool(opts);
  CollectingSink sink;
  svc::JobSpec blocker = parityJob("blocker");
  blocker.run.runtime = RuntimeKind::kThreads;
  blocker.run.costModel = CostModel::kMeasured;
  blocker.run.nodes = 2;
  blocker.run.timeLimitPerNode = 0.4;
  ASSERT_TRUE(pool.submit(std::move(blocker), &sink));
  // Let the single worker dequeue the blocker, then fill the one queue
  // slot: the next submission must bounce while the slot stays taken.
  while (pool.queueDepth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(pool.submit(parityJob("fills-queue"), &sink));
  ASSERT_EQ(pool.queueDepth(), 1u);  // blocker still holds the worker
  EXPECT_FALSE(pool.submit(parityJob("bounced"), &sink));
  pool.drain();
  EXPECT_EQ(sink.wait("fills-queue").state, svc::JobState::kCompleted);

  // Duplicate and malformed submissions throw rather than overwrite.
  EXPECT_THROW(pool.submit(parityJob("fills-queue"), &sink),
               std::invalid_argument);
  svc::JobSpec noInstance;
  noInstance.id = "no-instance";
  EXPECT_THROW(pool.submit(std::move(noInstance), &sink),
               std::invalid_argument);
  svc::JobSpec noId = parityJob("");
  EXPECT_THROW(pool.submit(std::move(noId), &sink), std::invalid_argument);
}

TEST(SolverPool, ConcurrentTenantsShareThePoolAndCache) {
  obs::MetricsRegistry metrics;
  svc::SolverPoolOptions opts;
  opts.workers = 3;
  opts.metrics = &metrics;
  svc::SolverPool pool(opts);
  CollectingSink sink;
  // Three tenants with distinct priorities running truly concurrently.
  for (int i = 0; i < 3; ++i) {
    svc::JobSpec spec = parityJob("tenant-" + std::to_string(i));
    spec.priority = i;
    spec.run.seed = 2026 + static_cast<std::uint64_t>(i);
    spec.run.timeLimitPerNode = 2.0;
    ASSERT_TRUE(pool.submit(std::move(spec), &sink));
  }
  pool.drain();
  for (int i = 0; i < 3; ++i) {
    const svc::JobResult r = sink.wait("tenant-" + std::to_string(i));
    EXPECT_EQ(r.state, svc::JobState::kCompleted);
    EXPECT_GT(r.bestLength, 0);
    EXPECT_EQ(r.priority, i);
  }
  // One shared context served all three (concurrent get()s, one build).
  EXPECT_EQ(pool.contexts().stats().builds, 1);
  EXPECT_EQ(counterValue(metrics.snapshot(), "svc.jobs_completed"), 3);
}

}  // namespace
}  // namespace distclk
