#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/json.h"

namespace distclk::obs {
namespace {

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("steps");
  reg.add(c);
  reg.add(c, 4);
  EXPECT_EQ(reg.snapshot().counterValue("steps"), 5);
}

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  const MetricId a = reg.counter("x");
  const MetricId b = reg.counter("x");
  EXPECT_EQ(a.index, b.index);
  reg.add(a);
  reg.add(b);
  EXPECT_EQ(reg.snapshot().counterValue("x"), 2);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, InvalidIdIsIgnored) {
  MetricsRegistry reg;
  reg.add(MetricId{});       // default id: no-op, must not crash
  reg.set(MetricId{}, 1.0);
  reg.observe(MetricId{}, 1.0);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
}

TEST(MetricsRegistry, GaugeLastSetWins) {
  MetricsRegistry reg;
  const MetricId g = reg.gauge("depth");
  reg.set(g, 3.0);
  reg.set(g, 7.0);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_TRUE(snap.gauges[0].everSet);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 7.0);
}

TEST(MetricsRegistry, HistogramBucketsAndStats) {
  MetricsRegistry reg;
  const MetricId h = reg.histogram("lat", {1.0, 10.0, 100.0});
  for (const double v : {0.5, 1.0, 5.0, 50.0, 500.0}) reg.observe(h, v);
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramData* data = snap.histogram("lat");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->count, 5);
  EXPECT_DOUBLE_EQ(data->min, 0.5);
  EXPECT_DOUBLE_EQ(data->max, 500.0);
  EXPECT_DOUBLE_EQ(data->sum, 556.5);
  // lower_bound semantics: a value equal to a bound lands in that bucket.
  ASSERT_EQ(data->counts.size(), 4u);
  EXPECT_EQ(data->counts[0], 2);  // 0.5, 1.0
  EXPECT_EQ(data->counts[1], 1);  // 5.0
  EXPECT_EQ(data->counts[2], 1);  // 50.0
  EXPECT_EQ(data->counts[3], 1);  // 500.0 overflow
}

TEST(MetricsRegistry, RejectsBadHistogramBounds) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("h", {}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", {2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", {1.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, ResetClearsValuesKeepsRegistrations) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("c");
  const MetricId h = reg.histogram("h", {1.0});
  reg.add(c, 9);
  reg.observe(h, 0.5);
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counterValue("c"), 0);
  ASSERT_NE(snap.histogram("h"), nullptr);
  EXPECT_EQ(snap.histogram("h")->count, 0);
  reg.add(c);
  EXPECT_EQ(reg.snapshot().counterValue("c"), 1);
}

// The tentpole's concurrency contract: many threads hammer their own
// shards; the merged snapshot must be exact. Run under the TSan preset via
// scripts/tier1.sh.
TEST(MetricsRegistry, ShardedRecordingMergesExactly) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("hits");
  const MetricId h = reg.histogram("vals", {10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&reg, c, h] {
        for (int i = 0; i < kPerThread; ++i) {
          reg.add(c);
          reg.observe(h, double(i % 200));
        }
      });
    }
  }
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counterValue("hits"), std::int64_t(kThreads) * kPerThread);
  ASSERT_NE(snap.histogram("vals"), nullptr);
  EXPECT_EQ(snap.histogram("vals")->count, std::int64_t(kThreads) * kPerThread);
}

TEST(MetricsRegistry, SnapshotWhileRecordingIsConsistent) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("n");
  std::atomic<bool> stop{false};
  std::jthread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) reg.add(c);
  });
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_GE(snap.counterValue("n"), 0);
  }
  stop.store(true);
}

TEST(MetricsSnapshot, ToJsonParsesBack) {
  MetricsRegistry reg;
  reg.add(reg.counter("a.b"), 3);
  reg.set(reg.gauge("g"), 2.5);
  reg.observe(reg.histogram("h", {1.0, 2.0}), 1.5);
  const JsonValue v = parseJson(reg.snapshot().toJson());
  ASSERT_TRUE(v.isObject());
  const JsonValue* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->integer("a.b"), 3);
  const JsonValue* gauges = v.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->num("g"), 2.5);
  const JsonValue* hist = v.find("histograms");
  ASSERT_NE(hist, nullptr);
  const JsonValue* h = hist->find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->integer("count"), 1);
  ASSERT_NE(h->find("buckets"), nullptr);
  EXPECT_EQ(h->find("buckets")->array.size(), 3u);
}

TEST(ScopedTimer, ObservesElapsedSeconds) {
  MetricsRegistry reg;
  const MetricId h = reg.histogram("t", {1.0, 10.0});
  {
    ScopedTimer timer(&reg, h);
  }
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramData* data = snap.histogram("t");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->count, 1);
  EXPECT_GE(data->min, 0.0);
  EXPECT_LT(data->max, 1.0);  // scope was empty; far below a second
}

TEST(ScopedTimer, NullRegistryIsNoop) {
  ScopedTimer timer(nullptr, MetricId{});  // must not touch any clock/state
}

TEST(MetricsRegistry, BoundsHelpers) {
  EXPECT_EQ(MetricsRegistry::linearBounds(2.0, 3),
            (std::vector<double>{2.0, 4.0, 6.0}));
  EXPECT_EQ(MetricsRegistry::exponentialBounds(1.0, 10.0, 3),
            (std::vector<double>{1.0, 10.0, 100.0}));
}

}  // namespace
}  // namespace distclk::obs
