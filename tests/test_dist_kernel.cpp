// Equivalence suite for the distance hot path: the metric-specialized
// DistanceKernel must be bit-identical to the reference Instance::dist()
// switch for every EdgeWeightType, the CandidateLists distance annotation
// must equal recomputation, and the kernel/annotated LK path must produce
// the same tours as the reference path for the same seed.
#include "tsp/dist_kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "construct/construct.h"
#include "lk/chained_lk.h"
#include "lk/lin_kernighan.h"
#include "tsp/gen.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"
#include "tsp/tsplib.h"
#include "util/rng.h"

namespace distclk {
namespace {

std::vector<Point> randomPoints(int n, std::uint64_t seed, double lo,
                                double hi) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(std::size_t(n));
  for (int i = 0; i < n; ++i)
    pts.push_back({lo + rng.uniform() * (hi - lo),
                   lo + rng.uniform() * (hi - lo)});
  return pts;
}

void expectKernelMatchesReference(const Instance& inst) {
  const DistanceKernel kernel(inst);
  for (int i = 0; i < inst.n(); ++i)
    for (int j = 0; j < inst.n(); ++j)
      ASSERT_EQ(kernel(i, j), inst.dist(i, j))
          << toString(inst.weightType()) << " (" << i << ", " << j << ")";
}

TEST(DistanceKernel, MatchesReferenceOnPlanarMetrics) {
  for (const EdgeWeightType type :
       {EdgeWeightType::kEuc2D, EdgeWeightType::kCeil2D, EdgeWeightType::kAtt,
        EdgeWeightType::kMan2D, EdgeWeightType::kMax2D}) {
    const Instance inst(toString(type), randomPoints(70, 101, 0.0, 1e4),
                        type);
    expectKernelMatchesReference(inst);
  }
}

TEST(DistanceKernel, MatchesReferenceOnGeo) {
  // TSPLIB GEO coordinates are DDD.MM degrees.minutes; latitudes in x,
  // longitudes in y. Cover both hemispheres and the date line.
  Rng rng(7);
  std::vector<Point> pts;
  for (int i = 0; i < 80; ++i)
    pts.push_back({-89.0 + rng.uniform() * 178.0,
                   -179.0 + rng.uniform() * 358.0});
  const Instance inst("geo", pts, EdgeWeightType::kGeo);
  expectKernelMatchesReference(inst);
}

TEST(DistanceKernel, AttRoundingEdgeCases) {
  // The ATT metric rounds UP whenever llround rounded below the true value;
  // exercise coordinates engineered to land near .5 boundaries of
  // r = sqrt(d^2/10), plus a dense random sweep.
  std::vector<Point> pts{{0, 0}};
  for (int k = 1; k <= 40; ++k) {
    const double r = double(k) - 0.5;  // target half-integer radius
    pts.push_back({r * std::sqrt(10.0), 0.0});
    pts.push_back({0.0, r * std::sqrt(10.0)});
  }
  for (const Point& p : randomPoints(40, 55, 0.0, 300.0)) pts.push_back(p);
  const Instance inst("att-edge", pts, EdgeWeightType::kAtt);
  expectKernelMatchesReference(inst);
}

TEST(DistanceKernel, MatchesReferenceOnExplicitMatrix) {
  const int n = 12;
  Rng rng(31);
  std::vector<std::int64_t> m(std::size_t(n) * n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const auto d = static_cast<std::int64_t>(rng.below(10000)) + 1;
      m[std::size_t(i) * n + j] = d;
      m[std::size_t(j) * n + i] = d;
    }
  const Instance inst("m", n, m);
  expectKernelMatchesReference(inst);
}

TEST(DistanceKernel, MatchesReferenceOnTsplibFixtures) {
  // Inline TSPLIB fixtures, one per coordinate-based keyword the parser
  // ships: the kernel must agree with dist() on parsed instances too.
  const char* fixtures[] = {
      "NAME: feuc\nTYPE: TSP\nDIMENSION: 4\nEDGE_WEIGHT_TYPE: EUC_2D\n"
      "NODE_COORD_SECTION\n1 0 0\n2 3 4\n3 7 1\n4 2 9\nEOF\n",
      "NAME: fceil\nTYPE: TSP\nDIMENSION: 4\nEDGE_WEIGHT_TYPE: CEIL_2D\n"
      "NODE_COORD_SECTION\n1 0.2 0.7\n2 3.1 4.9\n3 7.5 1.4\n4 2.8 9.3\nEOF\n",
      "NAME: fatt\nTYPE: TSP\nDIMENSION: 4\nEDGE_WEIGHT_TYPE: ATT\n"
      "NODE_COORD_SECTION\n1 6823 4674\n2 7692 2247\n3 9135 6748\n"
      "4 7721 3451\nEOF\n",
      "NAME: fgeo\nTYPE: TSP\nDIMENSION: 4\nEDGE_WEIGHT_TYPE: GEO\n"
      "NODE_COORD_SECTION\n1 36.30 7.41\n2 34.52 10.44\n3 36.50 2.50\n"
      "4 -35.15 -149.08\nEOF\n",
  };
  for (const char* text : fixtures) {
    std::istringstream in(text);
    const Instance inst = parseTsplib(in);
    expectKernelMatchesReference(inst);
  }
}

TEST(DistanceKernel, StaticEvalMatchesDynamicDispatch) {
  const Instance inst = uniformSquare("s", 50, 3);
  const DistanceKernel kernel(inst);
  for (int i = 0; i < inst.n(); ++i)
    for (int j = 0; j < inst.n(); ++j)
      ASSERT_EQ(kernel.evalAs<EdgeWeightType::kEuc2D>(i, j), kernel(i, j));
}

TEST(CandidateAnnotation, MatchesRecomputedDistances) {
  for (const auto kind :
       {CandidateLists::Kind::kNearest, CandidateLists::Kind::kQuadrant}) {
    const Instance inst = clustered("c", 250, 7, 41);
    const CandidateLists cand(inst, 9, kind);
    for (int c = 0; c < inst.n(); ++c) {
      const auto cities = cand.of(c);
      const auto dists = cand.distOf(c);
      ASSERT_EQ(cities.size(), dists.size());
      for (std::size_t i = 0; i < cities.size(); ++i)
        ASSERT_EQ(dists[i], inst.dist(c, cities[i])) << c;
    }
  }
}

TEST(CandidateAnnotation, ExternalListsAnnotatedToo) {
  const Instance inst = uniformSquare("e", 40, 43);
  std::vector<std::vector<int>> lists(40);
  Rng rng(9);
  for (int c = 0; c < 40; ++c)
    for (int k = 0; k < 4; ++k) {
      const int o = static_cast<int>(rng.below(40));
      if (o != c) lists[std::size_t(c)].push_back(o);
    }
  const CandidateLists cand(inst, std::move(lists));
  EXPECT_FALSE(cand.distanceSorted());
  for (int c = 0; c < inst.n(); ++c) {
    const auto cities = cand.of(c);
    const auto dists = cand.distOf(c);
    for (std::size_t i = 0; i < cities.size(); ++i)
      ASSERT_EQ(dists[i], inst.dist(c, cities[i]));
  }
}

// Regression for the makeSymmetric() ordering bug: reverse edges used to be
// appended after the existing entries, silently breaking the ascending-
// distance invariant that the LK/2-opt early break relies on.
TEST(CandidateAnnotation, MakeSymmetricRestoresAscendingOrder) {
  const Instance inst = clustered("sym", 300, 9, 47);
  CandidateLists cand(inst, 6);
  cand.makeSymmetric();
  EXPECT_TRUE(cand.distanceSorted());
  bool anyGrew = false;
  for (int c = 0; c < inst.n(); ++c) {
    const auto cities = cand.of(c);
    const auto dists = cand.distOf(c);
    anyGrew = anyGrew || cities.size() > 6;
    for (std::size_t i = 1; i < dists.size(); ++i)
      ASSERT_LE(dists[i - 1], dists[i])
          << "city " << c << " out of order after makeSymmetric";
    for (std::size_t i = 0; i < cities.size(); ++i)
      ASSERT_EQ(dists[i], inst.dist(c, cities[i]));
  }
  // The fix only matters if symmetrization actually appended somewhere.
  EXPECT_TRUE(anyGrew);
}

TEST(CandidateAnnotation, SymmetrizedListsSafeForEarlyBreak) {
  // With the ascending invariant restored, the early-break scan must find
  // the same local optimum as the exhaustive scan on symmetrized lists.
  const Instance inst = clustered("eb", 220, 6, 53);
  CandidateLists cand(inst, 6);
  cand.makeSymmetric();
  Rng rngA(11), rngB(11);
  Tour a(inst, randomTour(inst, rngA));
  Tour b(inst, randomTour(inst, rngB));
  LkOptions withBreak;
  withBreak.candidatesDistanceSorted = true;
  LkOptions noBreak;
  noBreak.candidatesDistanceSorted = false;
  linKernighanOptimize(a, cand, withBreak);
  linKernighanOptimize(b, cand, noBreak);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.length(), b.length());
  EXPECT_EQ(a.orderVector(), b.orderVector());
}

// The determinism contract behind the perf overhaul: kernel + annotation
// must retrace the reference path bit for bit. Run Chained LK on three
// instance families; the [determinism] lines are scraped by
// scripts/bench.sh into BENCH_lk.json as machine-readable evidence.
TEST(DistPathDeterminism, KernelAndReferenceTrajectoriesIdentical) {
  struct Case {
    const char* name;
    Instance inst;
    std::uint64_t seed;
  };
  Case cases[] = {
      {"uniform400", uniformSquare("u", 400, 21), 5},
      {"clustered350", clustered("c", 350, 8, 22), 6},
      {"drill300", drillPlate("d", 300, 23), 7},
  };
  for (auto& [name, inst, seed] : cases) {
    const CandidateLists cand(inst, 8);
    ClkOptions co;
    co.maxKicks = 40;
    co.lk.referenceDistances = false;
    ClkOptions ref = co;
    ref.lk.referenceDistances = true;

    Rng rngK(seed), rngR(seed);
    Tour k(inst, quickBoruvkaTour(inst, cand));
    Tour r = k;
    const ClkResult resK = chainedLinKernighan(k, cand, rngK, co);
    const ClkResult resR = chainedLinKernighan(r, cand, rngR, ref);

    EXPECT_EQ(k.orderVector(), r.orderVector()) << name;
    EXPECT_EQ(resK.flips, resR.flips) << name;
    EXPECT_EQ(resK.undoneFlips, resR.undoneFlips) << name;
    ASSERT_EQ(k.length(), r.length()) << name;
    std::printf("[determinism] inst=%s n=%d seed=%llu len_kernel=%lld "
                "len_reference=%lld identical=%d\n",
                name, inst.n(), static_cast<unsigned long long>(seed),
                static_cast<long long>(k.length()),
                static_cast<long long>(r.length()),
                k.orderVector() == r.orderVector() ? 1 : 0);
  }
}

TEST(LkStatsSplit, UndoneFlipsCountedSeparately) {
  const Instance inst = uniformSquare("f", 300, 61);
  const CandidateLists cand(inst, 8);
  Rng rng(19);
  Tour t(inst, randomTour(inst, rng));
  const LkStats stats = linKernighanOptimize(t, cand);
  // A random start always needs committed chains, and variable-depth search
  // always rewinds some failed levels on the way.
  EXPECT_GT(stats.flips, 0);
  EXPECT_GT(stats.undoneFlips, 0);
  // Every rewind undoes a previously applied flip.
  EXPECT_GE(stats.flips, stats.undoneFlips);
}

}  // namespace
}  // namespace distclk
