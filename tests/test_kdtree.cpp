#include "tsp/kdtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "tsp/gen.h"
#include "util/rng.h"

namespace distclk {
namespace {

std::vector<int> bruteKnn(std::span<const Point> pts, const Point& q, int k,
                          int exclude) {
  std::vector<std::pair<double, int>> d;
  for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
    if (i == exclude) continue;
    const double dx = pts[std::size_t(i)].x - q.x;
    const double dy = pts[std::size_t(i)].y - q.y;
    d.emplace_back(dx * dx + dy * dy, i);
  }
  std::sort(d.begin(), d.end());
  std::vector<int> out;
  for (int i = 0; i < k && i < static_cast<int>(d.size()); ++i)
    out.push_back(d[std::size_t(i)].second);
  return out;
}

class KdTreeSizes : public ::testing::TestWithParam<int> {};

TEST_P(KdTreeSizes, KnnMatchesBruteForceDistances) {
  const int n = GetParam();
  const Instance inst = uniformSquare("k", n, std::uint64_t(n) + 3);
  KdTree tree(inst.points());
  for (int q = 0; q < std::min(n, 25); ++q) {
    const auto got = tree.knn(q, 8);
    const auto want = bruteKnn(inst.points(), inst.point(q), 8, q);
    ASSERT_EQ(got.size(), want.size());
    // Compare by distance (ties may order differently).
    for (std::size_t i = 0; i < got.size(); ++i) {
      const auto d = [&](int c) {
        const double dx = inst.point(c).x - inst.point(q).x;
        const double dy = inst.point(c).y - inst.point(q).y;
        return dx * dx + dy * dy;
      };
      EXPECT_DOUBLE_EQ(d(got[i]), d(want[i])) << "query " << q << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KdTreeSizes,
                         ::testing::Values(4, 16, 17, 100, 1000));

TEST(KdTree, KnnExcludesQueryPoint) {
  const Instance inst = uniformSquare("k", 50, 1);
  KdTree tree(inst.points());
  for (int q = 0; q < 50; ++q) {
    const auto got = tree.knn(q, 5);
    EXPECT_EQ(std::count(got.begin(), got.end(), q), 0);
  }
}

TEST(KdTree, KnnOrderedAscending) {
  const Instance inst = uniformSquare("k", 300, 2);
  KdTree tree(inst.points());
  const auto got = tree.knn(7, 12);
  ASSERT_EQ(got.size(), 12u);
  auto dist2 = [&](int c) {
    const double dx = inst.point(c).x - inst.point(7).x;
    const double dy = inst.point(c).y - inst.point(7).y;
    return dx * dx + dy * dy;
  };
  for (std::size_t i = 1; i < got.size(); ++i)
    EXPECT_LE(dist2(got[i - 1]), dist2(got[i]));
}

TEST(KdTree, KnnClampsKToSize) {
  const Instance inst = uniformSquare("k", 5, 3);
  KdTree tree(inst.points());
  EXPECT_EQ(tree.knn(0, 100).size(), 4u);
}

TEST(KdTree, KnnAtArbitraryLocation) {
  const Instance inst = uniformSquare("k", 200, 4);
  KdTree tree(inst.points());
  const Point q{123456.0, 654321.0};
  const auto got = tree.knn(q, 3);
  const auto want = bruteKnn(inst.points(), q, 3, -1);
  EXPECT_EQ(got, want);
}

TEST(KdTree, NearestActiveMatchesBruteForceUnderDeletions) {
  const Instance inst = uniformSquare("k", 400, 5);
  KdTree tree(inst.points());
  Rng rng(99);
  std::vector<bool> active(400, true);
  for (int round = 0; round < 300; ++round) {
    const int kill = static_cast<int>(rng.below(400));
    tree.deactivate(kill);
    active[std::size_t(kill)] = false;
    const Point q{rng.uniform(0.0, 1e6), rng.uniform(0.0, 1e6)};
    const int got = tree.nearestActive(q);
    // Brute force.
    int want = -1;
    double best = 1e30;
    for (int i = 0; i < 400; ++i) {
      if (!active[std::size_t(i)]) continue;
      const double dx = inst.point(i).x - q.x, dy = inst.point(i).y - q.y;
      const double d2 = dx * dx + dy * dy;
      if (d2 < best) {
        best = d2;
        want = i;
      }
    }
    if (want == -1) {
      EXPECT_EQ(got, -1);
    } else {
      ASSERT_NE(got, -1);
      const double dx = inst.point(got).x - q.x, dy = inst.point(got).y - q.y;
      EXPECT_DOUBLE_EQ(dx * dx + dy * dy, best);
    }
  }
}

TEST(KdTree, NearestActiveHonorsExclude) {
  const Instance inst = uniformSquare("k", 50, 6);
  KdTree tree(inst.points());
  const int nn = tree.nearestActive(inst.point(0), 0);
  EXPECT_NE(nn, 0);
  EXPECT_NE(nn, -1);
}

TEST(KdTree, ActiveCountTracksDeactivations) {
  const Instance inst = uniformSquare("k", 20, 7);
  KdTree tree(inst.points());
  EXPECT_EQ(tree.activeCount(), 20);
  tree.deactivate(3);
  tree.deactivate(3);  // idempotent
  tree.deactivate(7);
  EXPECT_EQ(tree.activeCount(), 18);
  EXPECT_FALSE(tree.isActive(3));
  EXPECT_TRUE(tree.isActive(4));
}

TEST(KdTree, ReactivateAllRestores) {
  const Instance inst = uniformSquare("k", 30, 8);
  KdTree tree(inst.points());
  for (int i = 0; i < 30; ++i) tree.deactivate(i);
  EXPECT_EQ(tree.nearestActive({0, 0}), -1);
  tree.reactivateAll();
  EXPECT_EQ(tree.activeCount(), 30);
  EXPECT_NE(tree.nearestActive({0, 0}), -1);
}

TEST(KdTree, AllDeactivatedReturnsMinusOne) {
  const Instance inst = uniformSquare("k", 5, 9);
  KdTree tree(inst.points());
  for (int i = 0; i < 5; ++i) tree.deactivate(i);
  EXPECT_EQ(tree.nearestActive({1, 1}), -1);
  EXPECT_EQ(tree.activeCount(), 0);
}

TEST(KdTree, HandlesDuplicatePoints) {
  std::vector<Point> pts(20, Point{5.0, 5.0});
  pts.push_back({6.0, 6.0});
  KdTree tree(pts);
  const auto got = tree.knn(Point{5.0, 5.0}, 20);
  EXPECT_EQ(got.size(), 20u);
  const int nn = tree.nearestActive({5.9, 5.9});
  EXPECT_EQ(nn, 20);
}

}  // namespace
}  // namespace distclk
