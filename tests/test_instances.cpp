#include "experiments/instances.h"

#include <gtest/gtest.h>

namespace distclk {
namespace {

TEST(Instances, TestbedHasAllTwelve) {
  const auto& tb = paperTestbed();
  ASSERT_EQ(tb.size(), 12u);
  EXPECT_EQ(tb.front().paperName, "C1k.1");
  EXPECT_EQ(tb.back().paperName, "pla85900");
}

TEST(Instances, SmallSetMatchesTable3) {
  // Table 3 covers everything up to fnl4461.
  int smalls = 0;
  for (const auto& spec : paperTestbed())
    if (spec.smallSet) {
      ++smalls;
      EXPECT_LE(spec.n, 4461);
    }
  EXPECT_EQ(smalls, 7);
}

TEST(Instances, HkBoundFlagsMatchPaper) {
  // The paper lacked optima for fi10639, pla33810, pla85900.
  for (const auto& spec : paperTestbed()) {
    const bool expected = spec.paperName == "fi10639" ||
                          spec.paperName == "pla33810" ||
                          spec.paperName == "pla85900";
    EXPECT_EQ(spec.paperUsedHkBound, expected) << spec.paperName;
  }
}

TEST(Instances, FindByEitherName) {
  EXPECT_NE(findPaperInstance("fl3795"), nullptr);
  EXPECT_NE(findPaperInstance("fl3795s"), nullptr);
  EXPECT_EQ(findPaperInstance("fl3795"), findPaperInstance("fl3795s"));
  EXPECT_EQ(findPaperInstance("nope"), nullptr);
}

TEST(Instances, MakeInstanceSizesMatch) {
  for (const auto& spec : paperTestbed()) {
    if (spec.n > 5000) continue;  // keep the test fast
    const Instance inst = makeInstance(spec);
    EXPECT_EQ(inst.n(), spec.n) << spec.paperName;
    EXPECT_EQ(inst.name(), spec.standinName);
  }
}

TEST(Instances, GenerationIsDeterministic) {
  const auto* spec = findPaperInstance("E1k.1");
  ASSERT_NE(spec, nullptr);
  const Instance a = makeInstance(*spec);
  const Instance b = makeInstance(*spec);
  for (int i = 0; i < a.n(); ++i) {
    EXPECT_EQ(a.point(i).x, b.point(i).x);
    EXPECT_EQ(a.point(i).y, b.point(i).y);
  }
}

TEST(Instances, ScaledInstanceOverridesSize) {
  const auto* spec = findPaperInstance("sw24978");
  ASSERT_NE(spec, nullptr);
  const Instance inst = makeScaledInstance(*spec, 500);
  EXPECT_EQ(inst.n(), 500);
}

TEST(Instances, SeedsAreUnique) {
  const auto& tb = paperTestbed();
  for (std::size_t i = 0; i < tb.size(); ++i)
    for (std::size_t j = i + 1; j < tb.size(); ++j)
      EXPECT_NE(tb[i].seed, tb[j].seed);
}

}  // namespace
}  // namespace distclk
