#include "net/topology.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.h"

namespace distclk {
namespace {

class AllTopologies
    : public ::testing::TestWithParam<std::tuple<TopologyKind, int>> {};

TEST_P(AllTopologies, ValidSymmetricConnected) {
  const auto [kind, n] = GetParam();
  const Adjacency adj = buildTopology(kind, n);
  EXPECT_EQ(adj.size(), std::size_t(n));
  EXPECT_TRUE(isValidTopology(adj)) << toString(kind) << " n=" << n;
}

TEST_P(AllTopologies, HubBootstrapMatchesIdeal) {
  const auto [kind, n] = GetParam();
  Rng rng(std::uint64_t(n) * 7 + 1);
  std::vector<int> joinOrder(static_cast<std::size_t>(n));
  std::iota(joinOrder.begin(), joinOrder.end(), 0);
  rng.shuffle(joinOrder);
  EXPECT_EQ(buildViaHub(kind, joinOrder), buildTopology(kind, n))
      << toString(kind) << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, AllTopologies,
    ::testing::Combine(::testing::Values(TopologyKind::kHypercube,
                                         TopologyKind::kRing,
                                         TopologyKind::kGrid,
                                         TopologyKind::kComplete,
                                         TopologyKind::kStar),
                       ::testing::Values(1, 2, 3, 4, 7, 8, 12, 16, 17)));

TEST(Topology, HypercubeDegreesPowerOfTwo) {
  const Adjacency adj = buildTopology(TopologyKind::kHypercube, 8);
  for (const auto& nbrs : adj) EXPECT_EQ(nbrs.size(), 3u);
}

TEST(Topology, HypercubeNeighborsDifferByOneBit) {
  const Adjacency adj = buildTopology(TopologyKind::kHypercube, 16);
  for (int a = 0; a < 16; ++a) {
    for (int b : adj[std::size_t(a)]) {
      const int x = a ^ b;
      EXPECT_EQ(x & (x - 1), 0);  // power of two
    }
  }
}

TEST(Topology, PartialHypercubeStillConnected) {
  for (int n : {3, 5, 6, 7, 9, 13}) {
    const Adjacency adj = buildTopology(TopologyKind::kHypercube, n);
    EXPECT_TRUE(isValidTopology(adj)) << n;
  }
}

TEST(Topology, RingDiameter) {
  EXPECT_EQ(diameter(buildTopology(TopologyKind::kRing, 8)), 4);
  EXPECT_EQ(diameter(buildTopology(TopologyKind::kRing, 9)), 4);
}

TEST(Topology, CompleteDiameterIsOne) {
  EXPECT_EQ(diameter(buildTopology(TopologyKind::kComplete, 10)), 1);
}

TEST(Topology, StarDiameterIsTwo) {
  EXPECT_EQ(diameter(buildTopology(TopologyKind::kStar, 10)), 2);
}

TEST(Topology, HypercubeDiameterIsLogN) {
  EXPECT_EQ(diameter(buildTopology(TopologyKind::kHypercube, 8)), 3);
  EXPECT_EQ(diameter(buildTopology(TopologyKind::kHypercube, 16)), 4);
}

TEST(Topology, GridIsMostSquareFactorization) {
  // 12 nodes -> 3x4 grid: corner degree 2, max degree 4.
  const Adjacency adj = buildTopology(TopologyKind::kGrid, 12);
  std::size_t minDeg = 99, maxDeg = 0;
  for (const auto& nbrs : adj) {
    minDeg = std::min(minDeg, nbrs.size());
    maxDeg = std::max(maxDeg, nbrs.size());
  }
  EXPECT_EQ(minDeg, 2u);
  EXPECT_EQ(maxDeg, 4u);
}

TEST(Topology, DiameterDetectsDisconnection) {
  Adjacency adj(4);
  adj[0] = {1};
  adj[1] = {0};
  adj[2] = {3};
  adj[3] = {2};
  EXPECT_EQ(diameter(adj), -1);
  EXPECT_FALSE(isValidTopology(adj));
}

TEST(Topology, ValidityRejectsAsymmetry) {
  Adjacency adj(3);
  adj[0] = {1};
  adj[1] = {0, 2};
  adj[2] = {};  // 1 -> 2 has no back edge
  EXPECT_FALSE(isValidTopology(adj));
}

TEST(Topology, ValidityRejectsSelfLoop) {
  Adjacency adj(2);
  adj[0] = {0, 1};
  adj[1] = {0};
  EXPECT_FALSE(isValidTopology(adj));
}

TEST(Topology, HubRejectsBadJoinOrder) {
  EXPECT_THROW(buildViaHub(TopologyKind::kRing, {0, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(buildViaHub(TopologyKind::kRing, {0, 5, 1}),
               std::invalid_argument);
}

TEST(Topology, NamesRoundtrip) {
  for (TopologyKind k :
       {TopologyKind::kHypercube, TopologyKind::kRing, TopologyKind::kGrid,
        TopologyKind::kComplete, TopologyKind::kStar})
    EXPECT_EQ(topologyFromString(toString(k)), k);
  EXPECT_THROW(topologyFromString("mesh-of-trees"), std::invalid_argument);
}

TEST(Topology, RejectsNonpositiveSize) {
  EXPECT_THROW(buildTopology(TopologyKind::kRing, 0), std::invalid_argument);
}

}  // namespace
}  // namespace distclk
