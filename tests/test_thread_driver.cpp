#include "core/thread_driver.h"

#include <gtest/gtest.h>

#include "tsp/gen.h"
#include "tsp/tour.h"

namespace distclk {
namespace {

ThreadRunOptions testOptions() {
  ThreadRunOptions o;
  o.nodes = 2;
  o.timeLimitPerNode = 0.3;
  o.node.clkKicksPerCall = 3;
  return o;
}

TEST(ThreadDriver, CompletesAndProducesValidTour) {
  const Instance inst = uniformSquare("t", 80, 131);
  const CandidateLists cand(inst, 8);
  const ThreadRunResult res = runThreadedDistClk(inst, cand, testOptions());
  Tour best(inst, res.bestOrder);
  EXPECT_EQ(best.length(), res.bestLength);
  EXPECT_EQ(res.nodeBest.size(), 2u);
  EXPECT_GE(res.totalSteps, 2);
  for (std::int64_t nb : res.nodeBest) EXPECT_GE(nb, res.bestLength);
}

TEST(ThreadDriver, HitsEasyTarget) {
  const Instance inst = uniformSquare("t", 60, 132);
  const CandidateLists cand(inst, 8);
  // Probe once for an achievable value.
  const ThreadRunResult probe = runThreadedDistClk(inst, cand, testOptions());
  ThreadRunOptions o = testOptions();
  o.timeLimitPerNode = 30.0;  // termination should come from the target
  o.node.targetLength = probe.bestLength;
  const ThreadRunResult res = runThreadedDistClk(inst, cand, o);
  EXPECT_TRUE(res.hitTarget);
  EXPECT_LE(res.bestLength, probe.bestLength);
}

TEST(ThreadDriver, EightNodeHypercubeRuns) {
  const Instance inst = uniformSquare("t", 60, 133);
  const CandidateLists cand(inst, 8);
  ThreadRunOptions o = testOptions();
  o.nodes = 8;
  const ThreadRunResult res = runThreadedDistClk(inst, cand, o);
  EXPECT_EQ(res.nodeBest.size(), 8u);
  Tour best(inst, res.bestOrder);
  EXPECT_TRUE(best.valid());
}

TEST(ThreadDriver, RecordsPerNodeCurvesAndEvents) {
  const Instance inst = uniformSquare("t", 100, 135);
  const CandidateLists cand(inst, 8);
  ThreadRunOptions o = testOptions();
  o.nodes = 3;
  const ThreadRunResult res = runThreadedDistClk(inst, cand, o);
  ASSERT_EQ(res.nodeCurves.size(), 3u);
  for (const auto& curve : res.nodeCurves) {
    ASSERT_FALSE(curve.empty());  // at least the initial tour is recorded
    for (std::size_t i = 1; i < curve.size(); ++i) {
      EXPECT_GE(curve[i].time, curve[i - 1].time);
      EXPECT_LT(curve[i].length, curve[i - 1].length);
    }
  }
  // Every node logged its initial tour; events are time-sorted.
  int inits = 0;
  for (std::size_t i = 0; i < res.events.size(); ++i) {
    if (res.events[i].type == NodeEventType::kInitialTour) ++inits;
    if (i > 0) EXPECT_GE(res.events[i].time, res.events[i - 1].time);
    EXPECT_GE(res.events[i].node, 0);
    EXPECT_LT(res.events[i].node, 3);
  }
  EXPECT_EQ(inits, 3);
  // The best curve tail matches the reported per-node bests.
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(res.nodeCurves[std::size_t(i)].back().length,
              res.nodeBest[std::size_t(i)]);
}

TEST(ThreadDriver, RejectsBadNodeCount) {
  const Instance inst = uniformSquare("t", 30, 134);
  const CandidateLists cand(inst, 8);
  ThreadRunOptions o = testOptions();
  o.nodes = 0;
  EXPECT_THROW(runThreadedDistClk(inst, cand, o), std::invalid_argument);
}

}  // namespace
}  // namespace distclk
