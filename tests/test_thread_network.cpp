#include "net/thread_network.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/timer.h"

namespace distclk {
namespace {

Message tourMsg(int from, std::int64_t len) {
  Message m;
  m.type = MessageType::kTour;
  m.from = from;
  m.length = len;
  return m;
}

TEST(Mailbox, PushThenDrain) {
  Mailbox box;
  box.push(tourMsg(0, 1));
  box.push(tourMsg(1, 2));
  const auto got = box.drain();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].length, 1);
  EXPECT_EQ(got[1].length, 2);
  EXPECT_TRUE(box.drain().empty());
}

TEST(Mailbox, WaitAndDrainTimesOut) {
  Mailbox box;
  Timer timer;
  const auto got = box.waitAndDrain(0.05);
  EXPECT_TRUE(got.empty());
  EXPECT_GE(timer.seconds(), 0.04);
}

TEST(Mailbox, WaitAndDrainWakesOnPush) {
  Mailbox box;
  std::jthread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.push(tourMsg(0, 42));
  });
  const auto got = box.waitAndDrain(5.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].length, 42);
}

TEST(Mailbox, InterruptWakesWithoutMessages) {
  Mailbox box;
  std::jthread poker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.interrupt();
  });
  Timer timer;
  const auto got = box.waitAndDrain(5.0);
  EXPECT_TRUE(got.empty());
  EXPECT_LT(timer.seconds(), 4.0);
}

TEST(Mailbox, ConcurrentProducersLoseNothing) {
  Mailbox box;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  {
    std::vector<std::jthread> threads;
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&box, p] {
        for (int i = 0; i < kPerProducer; ++i)
          box.push(tourMsg(p, p * kPerProducer + i));
      });
    }
  }
  std::size_t total = box.drain().size();
  EXPECT_EQ(total, std::size_t(kProducers) * kPerProducer);
}

TEST(ThreadNetwork, BroadcastRespectsTopology) {
  ThreadNetwork net(buildTopology(TopologyKind::kRing, 4));
  net.broadcast(0, tourMsg(0, 9));
  EXPECT_EQ(net.mailbox(1).drain().size(), 1u);
  EXPECT_EQ(net.mailbox(3).drain().size(), 1u);
  EXPECT_TRUE(net.mailbox(2).drain().empty());
  EXPECT_TRUE(net.mailbox(0).drain().empty());
  EXPECT_EQ(net.messagesSent(), 2);
}

TEST(ThreadNetwork, SendDelivers) {
  ThreadNetwork net(buildTopology(TopologyKind::kComplete, 3));
  net.send(0, 2, tourMsg(0, 5));
  const auto got = net.mailbox(2).drain();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].length, 5);
}

TEST(ThreadNetwork, InterruptAllWakesEveryMailbox) {
  ThreadNetwork net(buildTopology(TopologyKind::kComplete, 3));
  std::jthread poker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    net.interruptAll();
  });
  Timer timer;
  net.mailbox(0).waitAndDrain(5.0);
  EXPECT_LT(timer.seconds(), 4.0);
}

// Regression for the messagesSent_ counter: it is bumped by every node
// thread on every send, so hammer broadcast() from 8 threads and require
// an exact total (a torn/racy counter drops increments). Also runs under
// the TSan preset via scripts/tier1.sh.
TEST(ThreadNetwork, ConcurrentBroadcastsCountExactly) {
  constexpr int kNodes = 8;
  constexpr int kPerThread = 2000;
  ThreadNetwork net(buildTopology(TopologyKind::kComplete, kNodes));
  {
    std::vector<std::jthread> threads;
    for (int from = 0; from < kNodes; ++from) {
      threads.emplace_back([&net, from] {
        for (int i = 0; i < kPerThread; ++i)
          net.broadcast(from, tourMsg(from, i));
      });
    }
  }
  // Complete topology: each broadcast fans out to kNodes - 1 mailboxes.
  const std::int64_t expected =
      std::int64_t(kNodes) * kPerThread * (kNodes - 1);
  EXPECT_EQ(net.messagesSent(), expected);
  std::int64_t delivered = 0;
  for (int node = 0; node < kNodes; ++node)
    delivered += std::int64_t(net.mailbox(node).drain().size());
  EXPECT_EQ(delivered, expected);
}

TEST(ThreadNetwork, AttachedMetricsCountSendsAndDeliveries) {
  obs::MetricsRegistry reg;
  ThreadNetwork net(buildTopology(TopologyKind::kRing, 4));
  net.attachMetrics(reg);
  net.broadcast(0, tourMsg(0, 7));  // ring: 2 neighbors
  net.send(0, 2, tourMsg(0, 8));
  EXPECT_EQ(net.mailbox(1).drain().size(), 1u);
  EXPECT_EQ(net.mailbox(2).drain().size(), 1u);
  EXPECT_EQ(net.mailbox(3).drain().size(), 1u);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counterValue("net.broadcasts"), 1);
  EXPECT_EQ(snap.counterValue("net.sends"), 3);
  EXPECT_EQ(snap.counterValue("net.deliveries"), 3);
  const auto* age = snap.histogram("net.message_age_seconds");
  ASSERT_NE(age, nullptr);
  EXPECT_EQ(age->count, 3);
  EXPECT_GE(age->min, 0.0);
}

TEST(ThreadNetwork, RejectsInvalidTopology) {
  Adjacency bad(2);
  bad[0] = {0};  // self loop
  bad[1] = {};
  EXPECT_THROW(ThreadNetwork{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace distclk
