#include "core/node.h"

#include <gtest/gtest.h>

#include "tsp/gen.h"
#include "tsp/tour.h"

namespace distclk {
namespace {

// Small instances + few inner kicks keep each step cheap.
DistParams fastParams() {
  DistParams p;
  p.clkKicksPerCall = 5;
  return p;
}

Message tourMessage(const Instance& inst, const std::vector<int>& order,
                    int from) {
  Message m;
  m.type = MessageType::kTour;
  m.from = from;
  m.length = inst.tourLength(order);
  m.order.assign(order.begin(), order.end());
  return m;
}

TEST(DistNode, InitialStepProducesOptimizedTour) {
  const Instance inst = uniformSquare("n", 100, 91);
  const CandidateLists cand(inst, 8);
  DistNode node(inst, cand, fastParams(), 0, 1);
  const auto out = node.initialStep();
  EXPECT_EQ(out.bestLength, node.best().length());
  EXPECT_TRUE(node.best().valid());
  EXPECT_GT(out.modelCost, 0);
  EXPECT_FALSE(out.broadcast);
}

TEST(DistNode, StepBeforeInitialThrows) {
  const Instance inst = uniformSquare("n", 50, 92);
  const CandidateLists cand(inst, 8);
  DistNode node(inst, cand, fastParams(), 0, 1);
  EXPECT_THROW(node.step({}), std::logic_error);
}

TEST(DistNode, DoubleInitialThrows) {
  const Instance inst = uniformSquare("n", 50, 92);
  const CandidateLists cand(inst, 8);
  DistNode node(inst, cand, fastParams(), 0, 1);
  node.initialStep();
  EXPECT_THROW(node.initialStep(), std::logic_error);
}

TEST(DistNode, StagnationIncrementsCounter) {
  const Instance inst = uniformSquare("n", 60, 93);
  const CandidateLists cand(inst, 8);
  DistNode node(inst, cand, fastParams(), 0, 2);
  node.initialStep();
  // Run a handful of steps; whenever no strict improvement happened the
  // counter must have grown, and it must never exceed the step count.
  int lastCounter = node.noImprovements();
  for (int i = 0; i < 5; ++i) {
    const auto out = node.step({});
    if (out.bestLength == node.best().length() &&
        node.noImprovements() > lastCounter) {
      EXPECT_EQ(node.noImprovements(), lastCounter + 1);
    }
    lastCounter = node.noImprovements();
  }
  EXPECT_LE(node.noImprovements(), 5);
}

TEST(DistNode, PerturbationLevelLadder) {
  DistParams p = fastParams();
  p.cv = 2;  // level grows every 2 stagnant iterations
  const Instance inst = uniformSquare("n", 40, 94);
  const CandidateLists cand(inst, 8);
  DistNode node(inst, cand, p, 0, 3);
  node.initialStep();
  EXPECT_EQ(node.perturbationLevel(), 1);
  // Drive the node until stagnation accumulates.
  int maxLevel = 1;
  for (int i = 0; i < 12; ++i) {
    node.step({});
    maxLevel = std::max(maxLevel, node.perturbationLevel());
    EXPECT_EQ(node.perturbationLevel(), node.noImprovements() / p.cv + 1);
  }
  EXPECT_GE(maxLevel, 2);  // small instance converges fast, so levels climb
}

TEST(DistNode, RestartsAfterCr) {
  DistParams p = fastParams();
  p.cv = 1;
  p.cr = 3;
  const Instance inst = uniformSquare("n", 30, 95);
  const CandidateLists cand(inst, 8);
  DistNode node(inst, cand, p, 0, 4);
  node.initialStep();
  bool sawRestart = false;
  for (int i = 0; i < 20 && !sawRestart; ++i)
    sawRestart = node.step({}).restarted;
  EXPECT_TRUE(sawRestart);
  EXPECT_GE(node.restarts(), 1);
  EXPECT_EQ(node.noImprovements() / p.cv + 1, node.perturbationLevel());
}

TEST(DistNode, ReceivedBetterTourIsAdopted) {
  const Instance inst = uniformSquare("n", 80, 96);
  const CandidateLists cand(inst, 8);
  DistParams p = fastParams();
  p.clkKicksPerCall = 1;
  DistNode weak(inst, cand, p, 0, 5);
  weak.initialStep();
  // Produce a strong tour with a second node.
  DistParams strong = fastParams();
  strong.clkKicksPerCall = 300;
  DistNode helper(inst, cand, strong, 1, 6);
  helper.initialStep();
  for (int i = 0; i < 3; ++i) helper.step({});
  ASSERT_LT(helper.best().length(), weak.best().length());

  const auto out = weak.step({helper.makeTourMessage()});
  EXPECT_LE(out.bestLength, helper.best().length());
  EXPECT_FALSE(out.broadcast);  // received tours are not re-broadcast
  EXPECT_EQ(weak.noImprovements(), 0);  // improvement resets the counter
}

TEST(DistNode, WorseReceivedTourIsIgnored) {
  const Instance inst = uniformSquare("n", 80, 97);
  const CandidateLists cand(inst, 8);
  DistNode node(inst, cand, fastParams(), 0, 7);
  node.initialStep();
  const auto before = node.best().length();
  // A terrible tour: identity order.
  std::vector<int> bad(80);
  for (int i = 0; i < 80; ++i) bad[std::size_t(i)] = i;
  const auto out = node.step({tourMessage(inst, bad, 1)});
  EXPECT_LE(out.bestLength, before);
  EXPECT_NE(out.bestLength, inst.tourLength(bad));
}

TEST(DistNode, BroadcastOnLocalImprovement) {
  const Instance inst = uniformSquare("n", 200, 98);
  const CandidateLists cand(inst, 8);
  DistParams p = fastParams();
  p.clkKicksPerCall = 50;
  DistNode node(inst, cand, p, 0, 8);
  node.initialStep();
  bool sawBroadcast = false;
  for (int i = 0; i < 10 && !sawBroadcast; ++i)
    sawBroadcast = node.step({}).broadcast;
  EXPECT_TRUE(sawBroadcast);  // 200-city tours improve readily early on
}

TEST(DistNode, TargetDetection) {
  const Instance inst = uniformSquare("n", 50, 99);
  const CandidateLists cand(inst, 8);
  DistParams p = fastParams();
  DistNode probe(inst, cand, p, 0, 9);
  probe.initialStep();
  // Set the target to the already-achieved length: next node hits it at init.
  p.targetLength = probe.best().length();
  DistNode node(inst, cand, p, 1, 9);
  const auto out = node.initialStep();
  EXPECT_TRUE(out.foundTarget);
}

TEST(DistNode, MakeTourMessageRoundtrips) {
  const Instance inst = uniformSquare("n", 64, 100);
  const CandidateLists cand(inst, 8);
  DistNode node(inst, cand, fastParams(), 5, 10);
  node.initialStep();
  const Message msg = node.makeTourMessage();
  EXPECT_EQ(msg.from, 5);
  EXPECT_EQ(msg.length, node.best().length());
  const Message back = deserialize(serialize(msg));
  EXPECT_EQ(back, msg);
  // The order in the message reconstructs to the same length.
  std::vector<int> order(back.order.begin(), back.order.end());
  EXPECT_EQ(inst.tourLength(order), node.best().length());
}

TEST(DistNode, NoPerturbationAblation) {
  DistParams p = fastParams();
  p.usePerturbation = false;
  const Instance inst = uniformSquare("n", 60, 101);
  const CandidateLists cand(inst, 8);
  DistNode node(inst, cand, p, 0, 11);
  node.initialStep();
  for (int i = 0; i < 5; ++i) {
    const auto out = node.step({});
    EXPECT_EQ(out.perturbations, 0);
    EXPECT_FALSE(out.restarted);
  }
}

TEST(DistNode, RejectsBadParams) {
  const Instance inst = uniformSquare("n", 30, 102);
  const CandidateLists cand(inst, 8);
  DistParams p;
  p.cv = 0;
  EXPECT_THROW(DistNode(inst, cand, p, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace distclk
