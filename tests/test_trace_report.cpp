// Tests for the trace analytics library (obs/report.h): loading with
// skip-and-count, causal propagation/provenance reconstruction, convergence
// lookups, and trace validation — run in-process against freshly captured
// churn fixtures on BOTH runtime substrates, exactly as tools/trace_report
// would consume them from disk.
#include "obs/report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/runtime.h"
#include "obs/trace_sink.h"
#include "tsp/gen.h"
#include "tsp/neighbors.h"

namespace distclk {
namespace {

/// One traced churn run (late join + injected failure) on the requested
/// substrate; returns the captured JSONL.
std::string capturedChurnTrace(RuntimeKind kind) {
  const Instance inst = uniformSquare("report-test", 120, 42);
  const CandidateLists cand(inst, 8);
  RunConfig cfg;
  cfg.runtime = kind;
  cfg.nodes = 8;
  cfg.node.clkKicksPerCall = 5;
  cfg.node.cr = 12;
  cfg.node.cv = 4;
  cfg.seed = 2026;
  if (kind == RuntimeKind::kSim) {
    cfg.costModel = CostModel::kModeled;
    cfg.modeledWorkPerSecond = 1e5;
    cfg.timeLimitPerNode = 6.0;
    cfg.joins = {{5, 0.4}};
    cfg.failures = {{2, 0.5}};
    cfg.metricsIntervalSeconds = 1.0;
  } else {
    cfg.timeLimitPerNode = 0.4;  // wall seconds: keep the suite fast
    cfg.joins = {{5, 0.05}};
    cfg.failures = {{2, 0.1}};
    cfg.metricsIntervalSeconds = 0.1;
  }
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  cfg.trace = &sink;
  runDistributed(inst, cand, cfg);
  return out.str();
}

obs::LoadedTrace load(const std::string& jsonl) {
  std::istringstream in(jsonl);
  return obs::loadTrace(in);
}

class ChurnTraces : public ::testing::TestWithParam<RuntimeKind> {};

INSTANTIATE_TEST_SUITE_P(BothRuntimes, ChurnTraces,
                         ::testing::Values(RuntimeKind::kSim,
                                           RuntimeKind::kThreads),
                         [](const auto& info) {
                           return std::string(toString(info.param));
                         });

TEST_P(ChurnTraces, ValidatesCleanUnderChurn) {
  const std::string jsonl = capturedChurnTrace(GetParam());
  std::istringstream in(jsonl);
  const obs::ValidationResult result = obs::validateTrace(in);
  EXPECT_TRUE(result.ok()) << (result.problems.empty()
                                   ? "bad lines or no records"
                                   : result.problems.front());
  EXPECT_EQ(result.badLines, 0);
  EXPECT_GT(result.records, 0);
}

TEST_P(ChurnTraces, PropagationReconstructsBroadcastTree) {
  const obs::LoadedTrace trace = load(capturedChurnTrace(GetParam()));
  EXPECT_EQ(trace.nodeCount(), 8);
  EXPECT_FALSE(trace.sent.empty());
  EXPECT_FALSE(trace.recv.empty());

  const std::vector<obs::PropagationSummary> summaries =
      obs::propagationSummaries(trace);
  ASSERT_FALSE(summaries.empty());
  const AnytimeCurve global = obs::globalBestCurve(trace);
  ASSERT_EQ(summaries.size(), global.size());
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const obs::PropagationSummary& s = summaries[i];
    EXPECT_EQ(s.len, global[i].length);
    EXPECT_GE(s.origin, 0);
    EXPECT_LT(s.origin, 8);
    EXPECT_EQ(s.total, 8);
    EXPECT_GE(s.reached, 1);  // at least the origin itself
    EXPECT_LE(s.reached, s.total);
    EXPECT_GE(s.maxHops, 0);
    EXPECT_LT(s.maxHops, 8);
    // Coverage percentiles are ordered where defined.
    if (s.t50 >= 0 && s.t90 >= 0) {
      EXPECT_LE(s.t50, s.t90);
    }
    if (s.t90 >= 0 && s.tFull >= 0) {
      EXPECT_LE(s.t90, s.tFull);
    }
    // Full coverage implies the percentiles exist.
    if (s.tFull >= 0) {
      EXPECT_EQ(s.reached, s.total);
      EXPECT_GE(s.t50, 0.0);
      EXPECT_GE(s.t90, 0.0);
    }
  }
  // The run's early improvements must actually spread past their origin —
  // that is the point of the broadcast layer (the last one may land too
  // close to the budget to travel).
  EXPECT_GT(summaries.front().reached, 1);
}

TEST_P(ChurnTraces, ProvenanceRowsAreConsistent) {
  const obs::LoadedTrace trace = load(capturedChurnTrace(GetParam()));
  const std::vector<obs::ProvenanceRow> rows = obs::provenanceRows(trace);
  ASSERT_FALSE(rows.empty());
  for (const obs::ProvenanceRow& row : rows) {
    EXPECT_GE(row.node, 0);
    EXPECT_LT(row.node, 8);
    EXPECT_GE(row.origin, 0);
    EXPECT_LT(row.origin, 8);
    EXPECT_GT(row.finalLen, 0);
    if (row.chainLen == 0) {
      // Self-made tour: the lineage is just the node itself.
      EXPECT_EQ(row.origin, row.node);
      EXPECT_EQ(row.chain, std::to_string(row.node));
    } else {
      // The chain string ends at the origin.
      const std::string tail = std::to_string(row.origin);
      ASSERT_GE(row.chain.size(), tail.size());
      EXPECT_EQ(row.chain.substr(row.chain.size() - tail.size()), tail);
    }
  }
}

TEST_P(ChurnTraces, ConvergenceTimesTightenMonotonically) {
  const obs::LoadedTrace trace = load(capturedChurnTrace(GetParam()));
  const std::vector<double> levels{0.05, 0.01, 0.0};
  const obs::ConvergenceReport report =
      obs::convergenceReport(trace, levels);
  ASSERT_TRUE(trace.runEnd.has_value());
  EXPECT_EQ(report.finalBest, trace.runEnd->integer("best_length"));
  ASSERT_EQ(report.globalTimes.size(), levels.size());
  // Tighter levels can only be reached later (times non-decreasing).
  for (std::size_t i = 1; i < levels.size(); ++i)
    EXPECT_LE(report.globalTimes[i - 1], report.globalTimes[i]);
  // The global curve reaches its own final best at a finite time.
  EXPECT_FALSE(std::isinf(report.globalTimes.back()));
  for (const auto& [node, times] : report.nodeTimes) {
    ASSERT_EQ(times.size(), levels.size());
    for (std::size_t i = 1; i < times.size(); ++i)
      EXPECT_LE(times[i - 1], times[i]);
  }
}

TEST(TraceReport, GarbledLinesAreCountedAndFailValidation) {
  std::string jsonl = capturedChurnTrace(RuntimeKind::kSim);
  jsonl += "this is not json\n";
  jsonl += "{\"type\":\"mystery-record\"}\n";
  jsonl += "{\"type\":\"event\",\"event\":\"not-an-event\"}\n";
  const obs::LoadedTrace trace = load(jsonl);
  EXPECT_EQ(trace.badLines, 3);
  EXPECT_EQ(static_cast<int>(trace.problems.size()), 3);
  std::istringstream in(jsonl);
  const obs::ValidationResult result = obs::validateTrace(in);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.badLines, 3);
}

TEST(TraceReport, TruncatedTraceStillLoadsWhatItCan) {
  const std::string jsonl = capturedChurnTrace(RuntimeKind::kSim);
  // Cut mid-line, as a killed process would: the partial tail line is
  // counted bad, everything before it loads.
  const std::string cut = jsonl.substr(0, jsonl.size() * 2 / 3);
  const obs::LoadedTrace full = load(jsonl);
  const obs::LoadedTrace part = load(cut);
  EXPECT_EQ(part.badLines, 1);
  EXPECT_GT(part.parsedLines, 0);
  EXPECT_LT(part.parsedLines, full.parsedLines);
  // A truncated trace is missing run-end: validation must fail.
  std::istringstream in(cut);
  EXPECT_FALSE(obs::validateTrace(in).ok());
}

TEST(TraceReport, ValidateCatchesCausalViolations) {
  const auto validate = [](const std::string& jsonl) {
    std::istringstream in(jsonl);
    return obs::validateTrace(in);
  };
  const std::string meta =
      "{\"type\":\"run-meta\",\"nodes\":2}\n"
      "{\"type\":\"run-end\",\"best_length\":1}\n";

  // Receive without a matching send (sender, seq).
  const obs::ValidationResult orphan = validate(
      meta +
      "{\"type\":\"msg-recv\",\"t\":1,\"node\":0,\"from\":1,\"seq\":3,"
      "\"lamport\":5,\"recv_lamport\":6,\"len\":10}\n");
  EXPECT_FALSE(orphan.ok());

  // Lamport receive rule violated: recv stamp not past the send stamp.
  const obs::ValidationResult lamport = validate(
      meta +
      "{\"type\":\"msg-sent\",\"t\":1,\"node\":1,\"seq\":3,\"lamport\":5,"
      "\"len\":10,\"bytes\":37}\n"
      "{\"type\":\"msg-recv\",\"t\":2,\"node\":0,\"from\":1,\"seq\":3,"
      "\"lamport\":5,\"recv_lamport\":5,\"len\":10}\n");
  EXPECT_FALSE(lamport.ok());

  // Node id out of the run-meta range.
  const obs::ValidationResult range = validate(
      meta + "{\"type\":\"node-best\",\"t\":1,\"node\":7,\"len\":10,"
             "\"no_improve\":0}\n");
  EXPECT_FALSE(range.ok());

  // The same shape, consistent: passes.
  const obs::ValidationResult ok = validate(
      meta +
      "{\"type\":\"msg-sent\",\"t\":1,\"node\":1,\"seq\":3,\"lamport\":5,"
      "\"len\":10,\"bytes\":37}\n"
      "{\"type\":\"msg-recv\",\"t\":2,\"node\":0,\"from\":1,\"seq\":3,"
      "\"lamport\":5,\"recv_lamport\":6,\"len\":10}\n");
  EXPECT_TRUE(ok.ok()) << (ok.problems.empty() ? "?" : ok.problems.front());
}

// -----------------------------------------------------------------------
// Multi-run streams: a serve daemon appends one run bracket per job to a
// shared trace file; loading and validation must scope per run instead of
// assuming a single bracket.

TEST(TraceReportMultiRun, ConcatenatedRunsValidateCleanly) {
  // Two complete runs back to back — per-sender seq counters restart at
  // the second run-meta, which a single-run validator would misread as
  // duplicate sends.
  const std::string jsonl = capturedChurnTrace(RuntimeKind::kSim) +
                            capturedChurnTrace(RuntimeKind::kSim);
  const obs::LoadedTrace trace = load(jsonl);
  ASSERT_EQ(trace.runs.size(), 2u);
  EXPECT_TRUE(trace.runs[0].meta.has_value());
  EXPECT_TRUE(trace.runs[0].runEnd.has_value());
  EXPECT_TRUE(trace.runs[1].meta.has_value());
  EXPECT_TRUE(trace.runs[1].runEnd.has_value());
  EXPECT_EQ(trace.strayRunEnds, 0);
  // Messages are stamped with their enclosing run.
  ASSERT_FALSE(trace.sent.empty());
  EXPECT_EQ(trace.sent.front().run, 0);
  EXPECT_EQ(trace.sent.back().run, 1);

  std::istringstream in(jsonl);
  const obs::ValidationResult result = obs::validateTrace(in);
  EXPECT_TRUE(result.ok()) << (result.problems.empty()
                                   ? "bad lines or no records"
                                   : result.problems.front());
}

TEST(TraceReportMultiRun, LegacySingleRunViewIsFirstMetaLastEnd) {
  const std::string jsonl = capturedChurnTrace(RuntimeKind::kSim) +
                            capturedChurnTrace(RuntimeKind::kSim);
  const obs::LoadedTrace trace = load(jsonl);
  ASSERT_TRUE(trace.meta.has_value());
  ASSERT_TRUE(trace.runEnd.has_value());
  // meta is the FIRST run's, runEnd the LAST run's — the view concatenated
  // pre-multi-run traces always produced.
  EXPECT_EQ(trace.meta->integer("seed"),
            trace.runs[0].meta->integer("seed"));
  EXPECT_EQ(trace.runEnd->integer("best_length"),
            trace.runs[1].runEnd->integer("best_length"));
}

TEST(TraceReportMultiRun, UnterminatedRunBeforeNextBracketIsFlagged) {
  const obs::ValidationResult result = [] {
    std::istringstream in(
        "{\"type\":\"run-meta\",\"nodes\":2}\n"
        "{\"type\":\"run-meta\",\"nodes\":2}\n"
        "{\"type\":\"run-end\",\"best_length\":1}\n");
    return obs::validateTrace(in);
  }();
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.problems.empty());
  EXPECT_NE(result.problems.front().find("no run-end before run 1"),
            std::string::npos)
      << result.problems.front();
}

TEST(TraceReportMultiRun, TruncatedLastRunIsFlagged) {
  const obs::ValidationResult result = [] {
    std::istringstream in(
        "{\"type\":\"run-meta\",\"nodes\":2}\n"
        "{\"type\":\"run-end\",\"best_length\":1}\n"
        "{\"type\":\"run-meta\",\"nodes\":2}\n");
    return obs::validateTrace(in);
  }();
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.problems.empty());
  EXPECT_NE(result.problems.front().find("run 1 is missing its run-end"),
            std::string::npos)
      << result.problems.front();
}

TEST(TraceReportMultiRun, StrayRunEndIsFlagged) {
  const obs::ValidationResult result = [] {
    std::istringstream in(
        "{\"type\":\"run-end\",\"best_length\":1}\n"
        "{\"type\":\"run-meta\",\"nodes\":2}\n"
        "{\"type\":\"run-end\",\"best_length\":2}\n");
    return obs::validateTrace(in);
  }();
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.problems.empty());
  EXPECT_NE(result.problems.front().find("without a matching open run-meta"),
            std::string::npos)
      << result.problems.front();
}

TEST(TraceReportMultiRun, SingleRunMessagesKeepTheLegacyStrings) {
  // The exact single-run diagnostics are part of the tool's contract.
  {
    std::istringstream in("{\"type\":\"run-end\",\"best_length\":1}\n");
    const obs::ValidationResult r = obs::validateTrace(in);
    ASSERT_FALSE(r.problems.empty());
    EXPECT_EQ(r.problems.front(), "missing run-meta record");
  }
  {
    std::istringstream in("{\"type\":\"run-meta\",\"nodes\":2}\n");
    const obs::ValidationResult r = obs::validateTrace(in);
    ASSERT_FALSE(r.problems.empty());
    EXPECT_EQ(r.problems.front(), "missing run-end record");
  }
}

TEST(TraceReportMultiRun, CrossRunSeqReuseIsNotADuplicateButCrossRunRecvIs) {
  const std::string twoRuns =
      "{\"type\":\"run-meta\",\"nodes\":2}\n"
      "{\"type\":\"msg-sent\",\"t\":1,\"node\":0,\"seq\":1,\"lamport\":1,"
      "\"len\":5,\"bytes\":10}\n"
      "{\"type\":\"run-end\",\"best_length\":1}\n"
      "{\"type\":\"run-meta\",\"nodes\":2}\n"
      "{\"type\":\"msg-sent\",\"t\":1,\"node\":0,\"seq\":1,\"lamport\":1,"
      "\"len\":5,\"bytes\":10}\n";
  {
    // Same (node, seq) in two different runs: legal.
    std::istringstream in(twoRuns + "{\"type\":\"run-end\","
                                    "\"best_length\":1}\n");
    const obs::ValidationResult r = obs::validateTrace(in);
    EXPECT_TRUE(r.ok()) << (r.problems.empty() ? "?" : r.problems.front());
  }
  {
    // A receive in run 1 referencing a send that only exists in run 0 of a
    // DIFFERENT sender: the match must be scoped to the receive's own run.
    std::istringstream in(
        twoRuns +
        "{\"type\":\"msg-recv\",\"t\":2,\"node\":1,\"from\":0,\"seq\":2,"
        "\"lamport\":1,\"recv_lamport\":2,\"len\":5}\n"
        "{\"type\":\"run-end\",\"best_length\":1}\n");
    const obs::ValidationResult r = obs::validateTrace(in);
    EXPECT_FALSE(r.ok());  // seq 2 was never sent in run 1
  }
}

TEST(TraceReportMultiRun, JobRecordsLoadAndAggregate) {
  std::istringstream in(
      "{\"type\":\"run-meta\",\"nodes\":2,\"job\":\"a\"}\n"
      "{\"type\":\"run-end\",\"best_length\":100}\n"
      "{\"type\":\"job\",\"t\":1.5,\"id\":\"a\",\"state\":\"completed\","
      "\"priority\":2,\"best\":100,\"queue_seconds\":0.25,"
      "\"setup_seconds\":0.5,\"solve_seconds\":1.0,\"cache_hit\":false}\n"
      "{\"type\":\"run-meta\",\"nodes\":2,\"job\":\"b\"}\n"
      "{\"type\":\"run-end\",\"best_length\":90}\n"
      "{\"type\":\"job\",\"t\":2.5,\"id\":\"b\",\"state\":\"completed\","
      "\"priority\":0,\"best\":90,\"queue_seconds\":0.75,"
      "\"setup_seconds\":0.5,\"solve_seconds\":1.0,\"cache_hit\":true}\n"
      "{\"type\":\"job\",\"t\":2.6,\"id\":\"c\",\"state\":\"cancelled\","
      "\"priority\":0,\"best\":0,\"queue_seconds\":9.0,"
      "\"setup_seconds\":0,\"solve_seconds\":0,\"cache_hit\":false}\n");
  const obs::LoadedTrace trace = obs::loadTrace(in);
  ASSERT_EQ(trace.jobs.size(), 3u);
  EXPECT_EQ(trace.jobs[0].id, "a");
  EXPECT_EQ(trace.jobs[0].priority, 2);
  EXPECT_FALSE(trace.jobs[0].cacheHit);
  EXPECT_TRUE(trace.jobs[1].cacheHit);
  EXPECT_EQ(trace.runs.size(), 2u);
  EXPECT_EQ(trace.runs[1].meta->str("job"), "b");

  const obs::JobsReport report = obs::jobsReport(trace);
  EXPECT_EQ(report.total, 3);
  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.cancelled, 1);
  EXPECT_EQ(report.expired, 0);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.cacheHits, 1);
  // Aggregates cover completed jobs only — the cancelled job's 9s queue
  // wait must not leak into the SLO means.
  EXPECT_DOUBLE_EQ(report.meanQueueSeconds, 0.5);
  EXPECT_DOUBLE_EQ(report.meanSetupSeconds, 0.5);
  EXPECT_DOUBLE_EQ(report.meanSolveSeconds, 1.0);
  EXPECT_DOUBLE_EQ(report.maxLatencySeconds, 2.25);
}

TEST(TraceReport, ParseLevelsSplitsFractions) {
  const std::vector<double> levels = obs::parseLevels("0.05,0.01,0");
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_DOUBLE_EQ(levels[0], 0.05);
  EXPECT_DOUBLE_EQ(levels[1], 0.01);
  EXPECT_DOUBLE_EQ(levels[2], 0.0);
}

}  // namespace
}  // namespace distclk
