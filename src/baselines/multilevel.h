// Walshaw-style multilevel CLK (Table 2's MLC_N LK): coarsen the instance
// by repeatedly matching each city with its nearest unmatched neighbor
// (fixing the connecting edge), solve the coarsest instance, then uncoarsen
// level by level, splicing each super-city's fixed chain back in and
// refining the expanded tour with a kick-budgeted Chained LK.
#pragma once

#include <cstdint>
#include <vector>

#include "lk/chained_lk.h"
#include "tsp/instance.h"
#include "util/rng.h"

namespace distclk {

struct MultilevelOptions {
  int coarsestSize = 32;     ///< stop coarsening at this many super-cities
  /// Kicks per refinement = level size / kickDivisor. Walshaw's best setup
  /// is MLC_{N/10}LK, i.e. divisor 10.
  int kickDivisor = 10;
  int candidateK = 10;
  KickStrategy kick = KickStrategy::kRandomWalk;
  LkOptions lk;
  std::int64_t targetLength = -1;
};

struct MultilevelResult {
  std::int64_t length = 0;
  std::vector<int> order;
  double seconds = 0.0;
  int levels = 0;
};

/// Runs the multilevel heuristic (geometric instances only; throws for
/// explicit matrices, which have no coordinates to coarsen on).
MultilevelResult multilevelSolve(const Instance& inst, Rng& rng,
                                 const MultilevelOptions& opt = {});

}  // namespace distclk
