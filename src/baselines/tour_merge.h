// Cook/Seymour-style tour merging (Table 2's TM-CLK): run several
// independent CLK runs, take the union graph of their edges, and search for
// a better tour inside that union. Cook & Seymour solve the union exactly
// by branch decomposition; we re-optimize heuristically with LK restricted
// to union edges (see DESIGN.md "Substitutions"), which keeps the
// characteristic behaviour — the union of suboptimal tours contains a
// better (often optimal) tour that a restricted search finds quickly.
#pragma once

#include <cstdint>
#include <vector>

#include "lk/chained_lk.h"
#include "tsp/instance.h"
#include "util/rng.h"

namespace distclk {

struct TourMergeOptions {
  int runs = 10;              ///< independent CLK runs to merge (paper: 10)
  std::int64_t kicksPerRun = 0;  ///< <= 0: one kick per city (linkern default)
  int candidateK = 12;        ///< quadrant-ish candidate size for the runs
  KickStrategy kick = KickStrategy::kGeometric;  ///< Cook&Seymour's setup
  LkOptions lk;
  // breadthDeep stays 1: deeper backtracking is exponential in maxDepth
  // on failed searches. The union graph is tiny, so breadth at the first
  // two levels already explores most of it.
  LkOptions mergeLk{/*maxDepth=*/50, /*breadth0=*/10, /*breadth1=*/6,
                    /*breadthDeep=*/1, /*candidatesDistanceSorted=*/true};
  std::int64_t targetLength = -1;
};

struct TourMergeResult {
  std::int64_t length = 0;
  std::vector<int> order;
  double seconds = 0.0;
  std::int64_t bestRunLength = 0;  ///< best of the unmerged CLK runs
  int unionEdges = 0;              ///< edges in the union graph
};

TourMergeResult tourMergeSolve(const Instance& inst, Rng& rng,
                               const TourMergeOptions& opt = {});

}  // namespace distclk
