#include "baselines/lkh_style.h"

#include <limits>

#include "bound/alpha.h"
#include "bound/held_karp.h"
#include "construct/construct.h"
#include "lk/kicks.h"
#include "lk/lin_kernighan.h"
#include "lk/or_opt.h"
#include "tsp/tour.h"
#include "util/timer.h"

namespace distclk {

LkhStyleResult lkhStyleSolve(const Instance& inst, Rng& rng,
                             const LkhStyleOptions& opt,
                             const AnytimeCallback& onImprove) {
  Timer timer;
  LkhStyleResult res;

  // Preprocessing, as in LKH: Held-Karp potentials, then alpha candidates.
  HeldKarpOptions hkOpt;
  hkOpt.iterations = opt.hkIterations;
  const HeldKarpResult hk = heldKarpBound(inst, hkOpt);
  res.hkBound = hk.bound;
  const CandidateLists alphaCand = alphaCandidates(inst, hk.pi, opt.alphaK);
  // A distance-sorted list for construction and kicks.
  const CandidateLists nearCand(inst, opt.alphaK);

  Tour best(inst, greedyTour(inst, nearCand));
  linKernighanOptimize(best, alphaCand, opt.lk);
  orOptOptimize(best, nearCand);
  res.trialsRun = 1;
  if (onImprove) onImprove(timer.seconds(), best.length());

  auto done = [&] {
    if (opt.targetLength >= 0 && best.length() <= opt.targetLength)
      return true;
    return opt.timeLimitSeconds > 0 &&
           timer.seconds() >= opt.timeLimitSeconds;
  };

  for (int trial = 1; trial < opt.trials && !done(); ++trial) {
    // New trial: perturb the champion with a few double bridges, as LKH's
    // successive trials reuse the best tour's structure.
    Tour t = best;
    for (int i = 0; i < 3; ++i)
      applyKick(t, KickStrategy::kRandom, nearCand, rng);
    linKernighanOptimize(t, alphaCand, opt.lk);
    orOptOptimize(t, nearCand);
    ++res.trialsRun;
    if (t.length() < best.length()) {
      best = t;
      if (onImprove) onImprove(timer.seconds(), best.length());
    }
  }

  res.length = best.length();
  res.order = best.orderVector();
  res.seconds = timer.seconds();
  return res;
}

}  // namespace distclk
