#include "baselines/tour_merge.h"

#include <algorithm>
#include <limits>

#include "construct/construct.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"
#include "util/timer.h"

namespace distclk {

TourMergeResult tourMergeSolve(const Instance& inst, Rng& rng,
                               const TourMergeOptions& opt) {
  Timer timer;
  TourMergeResult res;

  const CandidateLists cand(inst, opt.candidateK,
                            CandidateLists::Kind::kQuadrant);

  // Phase 1: independent CLK runs.
  std::vector<std::vector<int>> tours;
  tours.reserve(std::size_t(opt.runs));
  res.bestRunLength = std::numeric_limits<std::int64_t>::max();
  std::vector<int> bestOrder;
  for (int run = 0; run < opt.runs; ++run) {
    Tour t(inst, quickBoruvkaTour(inst, cand));
    if (run > 0) {
      // Diversify the deterministic construction between runs.
      for (int i = 0; i < 2; ++i)
        applyKick(t, KickStrategy::kRandom, cand, rng);
    }
    ClkOptions co;
    co.kick = opt.kick;
    co.lk = opt.lk;
    co.maxKicks = opt.kicksPerRun > 0 ? opt.kicksPerRun : inst.n();
    co.targetLength = opt.targetLength;
    chainedLinKernighan(t, cand, rng, co);
    if (t.length() < res.bestRunLength) {
      res.bestRunLength = t.length();
      bestOrder = t.orderVector();
    }
    tours.push_back(t.orderVector());
  }

  // Phase 2: union graph of all tour edges, as per-city neighbor lists
  // sorted by distance.
  std::vector<std::vector<int>> unionAdj(static_cast<std::size_t>(inst.n()));
  auto addEdge = [&](int a, int b) {
    auto& la = unionAdj[std::size_t(a)];
    if (std::find(la.begin(), la.end(), b) == la.end()) {
      la.push_back(b);
      unionAdj[std::size_t(b)].push_back(a);
      ++res.unionEdges;
    }
  };
  for (const auto& order : tours) {
    for (std::size_t p = 0; p < order.size(); ++p)
      addEdge(order[p], order[(p + 1) % order.size()]);
  }
  for (int c = 0; c < inst.n(); ++c) {
    auto& l = unionAdj[std::size_t(c)];
    std::sort(l.begin(), l.end(), [&](int a, int b) {
      const auto da = inst.dist(c, a), db = inst.dist(c, b);
      return da != db ? da < db : a < b;
    });
  }
  const CandidateLists unionCand(inst, std::move(unionAdj),
                                 /*distanceSorted=*/true);

  // Phase 3: deep LK restricted to the union, starting from the best run.
  Tour merged(inst, std::move(bestOrder));
  linKernighanOptimize(merged, unionCand, opt.mergeLk);

  res.length = merged.length();
  res.order = merged.orderVector();
  res.seconds = timer.seconds();
  return res;
}

}  // namespace distclk
