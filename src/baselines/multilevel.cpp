#include "baselines/multilevel.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "construct/construct.h"
#include "tsp/kdtree.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"
#include "util/timer.h"

namespace distclk {

namespace {

/// One coarsening level: the representative cities (ids of the parent
/// level) and, for each representative, the chain of parent-level cities it
/// absorbed (representative first).
struct Level {
  std::vector<int> reps;                 // parent-level city ids
  std::vector<std::vector<int>> chains;  // chains[i] expands reps[i]
};

/// Greedy nearest-unmatched matching over the given subset of original
/// cities. Each match fixes the edge (a, b) and keeps a as representative.
Level coarsen(const Instance& inst, const std::vector<int>& cities) {
  Level level;
  std::vector<Point> pts;
  pts.reserve(cities.size());
  for (int c : cities) pts.push_back(inst.point(c));
  KdTree tree(pts);

  for (std::size_t i = 0; i < cities.size(); ++i) {
    if (!tree.isActive(static_cast<int>(i))) continue;  // already matched
    tree.deactivate(static_cast<int>(i));
    const int partner = tree.nearestActive(pts[i]);
    level.reps.push_back(cities[i]);
    if (partner == -1) {
      level.chains.push_back({cities[i]});
    } else {
      tree.deactivate(partner);
      level.chains.push_back(
          {cities[i], cities[static_cast<std::size_t>(partner)]});
    }
  }
  return level;
}

/// Sub-instance over a subset of the original cities (same metric).
Instance subInstance(const Instance& inst, const std::vector<int>& cities,
                     int levelNo) {
  std::vector<Point> pts;
  pts.reserve(cities.size());
  for (int c : cities) pts.push_back(inst.point(c));
  return Instance(inst.name() + "/L" + std::to_string(levelNo),
                  std::move(pts), inst.weightType());
}

}  // namespace

MultilevelResult multilevelSolve(const Instance& inst, Rng& rng,
                                 const MultilevelOptions& opt) {
  if (!inst.hasCoords())
    throw std::invalid_argument("multilevelSolve: needs coordinates");
  Timer timer;
  MultilevelResult res;

  // Coarsening phase: levels[0] matches over the full instance, levels[k]
  // over the representatives of levels[k-1].
  std::vector<int> current(static_cast<std::size_t>(inst.n()));
  for (int i = 0; i < inst.n(); ++i) current[std::size_t(i)] = i;
  std::vector<Level> levels;
  while (static_cast<int>(current.size()) > opt.coarsestSize) {
    levels.push_back(coarsen(inst, current));
    current = levels.back().reps;
    ++res.levels;
    if (levels.back().chains.size() == current.size() &&
        levels.size() > 1 &&
        levels[levels.size() - 2].reps.size() == current.size())
      break;  // no progress (degenerate geometry); stop coarsening
  }

  // Solve the coarsest level.
  Instance coarse = subInstance(inst, current, res.levels);
  CandidateLists coarseCand(coarse, std::min(opt.candidateK, coarse.n() - 1));
  Tour coarseTour(coarse, greedyTour(coarse, coarseCand));
  {
    ClkOptions co;
    co.kick = opt.kick;
    co.lk = opt.lk;
    co.maxKicks = std::max<std::int64_t>(16, coarse.n());
    chainedLinKernighan(coarseTour, coarseCand, rng, co);
  }
  // Tour as original-city ids.
  std::vector<int> order;
  order.reserve(current.size());
  for (int p = 0; p < coarseTour.n(); ++p)
    order.push_back(current[std::size_t(coarseTour.at(p))]);

  // Uncoarsening: expand chains, then refine with a kick budget of
  // level-size / kickDivisor.
  for (auto levelIt = levels.rbegin(); levelIt != levels.rend(); ++levelIt) {
    const Level& level = *levelIt;
    // rep -> chain lookup.
    std::vector<const std::vector<int>*> chainOf;
    {
      int maxRep = 0;
      for (int r : level.reps) maxRep = std::max(maxRep, r);
      chainOf.assign(std::size_t(maxRep) + 1, nullptr);
      for (std::size_t i = 0; i < level.reps.size(); ++i)
        chainOf[std::size_t(level.reps[i])] = &level.chains[i];
    }
    std::vector<int> expanded;
    for (std::size_t p = 0; p < order.size(); ++p) {
      const auto& chain = *chainOf[std::size_t(order[p])];
      if (chain.size() == 1) {
        expanded.push_back(chain[0]);
        continue;
      }
      // Orient the 2-chain to minimize the connection cost to the next
      // tour city (the previous one is already fixed in `expanded`).
      const int nextRep = order[(p + 1) % order.size()];
      const int nextCity = chainOf[std::size_t(nextRep)]->front();
      const int prevCity = expanded.empty() ? -1 : expanded.back();
      const std::int64_t forward =
          (prevCity >= 0 ? inst.dist(prevCity, chain[0]) : 0) +
          inst.dist(chain[1], nextCity);
      const std::int64_t backward =
          (prevCity >= 0 ? inst.dist(prevCity, chain[1]) : 0) +
          inst.dist(chain[0], nextCity);
      if (backward < forward) {
        expanded.push_back(chain[1]);
        expanded.push_back(chain[0]);
      } else {
        expanded.push_back(chain[0]);
        expanded.push_back(chain[1]);
      }
    }
    order = std::move(expanded);

    // Refinement on the expanded level: CLK over the sub-instance.
    std::vector<int> cities = order;  // city subset (in tour order)
    std::sort(cities.begin(), cities.end());
    std::vector<int> rank(static_cast<std::size_t>(inst.n()), -1);
    for (std::size_t i = 0; i < cities.size(); ++i)
      rank[std::size_t(cities[i])] = static_cast<int>(i);
    Instance levelInst = subInstance(
        inst, cities, static_cast<int>(levels.rend() - levelIt) - 1);
    CandidateLists levelCand(levelInst,
                             std::min(opt.candidateK, levelInst.n() - 1));
    std::vector<int> localOrder;
    localOrder.reserve(order.size());
    for (int c : order) localOrder.push_back(rank[std::size_t(c)]);
    Tour levelTour(levelInst, std::move(localOrder));
    ClkOptions co;
    co.kick = opt.kick;
    co.lk = opt.lk;
    co.maxKicks = std::max<std::int64_t>(
        1, levelInst.n() / std::max(1, opt.kickDivisor));
    chainedLinKernighan(levelTour, levelCand, rng, co);
    for (std::size_t p = 0; p < order.size(); ++p)
      order[p] = cities[std::size_t(levelTour.at(static_cast<int>(p)))];
  }

  Tour final(inst, std::move(order));
  res.length = final.length();
  res.order = final.orderVector();
  res.seconds = timer.seconds();
  return res;
}

}  // namespace distclk
