// LKH-inspired baseline (Helsgaun 2000) for the Table 2 comparison: LK with
// alpha-nearness candidate lists derived from Held-Karp one-trees, run as a
// series of independent trials that keep the best tour. Helsgaun's actual
// solver uses sequential 5-exchange basic moves; our engine deepens
// variable-length 2-exchange chains instead, which preserves the headline
// behaviour the paper compares against: high tour quality at long running
// times (see DESIGN.md "Substitutions").
#pragma once

#include <cstdint>
#include <vector>

#include "lk/chained_lk.h"
#include "tsp/instance.h"
#include "util/rng.h"

namespace distclk {

struct LkhStyleOptions {
  int trials = 5;          ///< independent LK descents
  int alphaK = 8;          ///< alpha-candidate list size
  int hkIterations = 100;  ///< subgradient steps for the potentials
  // Backtracking only at the first two levels (breadthDeep = 1): deeper
  // breadth makes the failed-search tree exponential in maxDepth.
  LkOptions lk{/*maxDepth=*/50, /*breadth0=*/8, /*breadth1=*/5,
               /*breadthDeep=*/1, /*candidatesDistanceSorted=*/false};
  double timeLimitSeconds = -1.0;
  std::int64_t targetLength = -1;
};

struct LkhStyleResult {
  std::int64_t length = 0;
  std::vector<int> order;
  double seconds = 0.0;
  int trialsRun = 0;
  double hkBound = 0.0;  ///< the Held-Karp value computed along the way
};

/// Runs the LKH-style solver. Each trial starts from a perturbed greedy
/// construction and descends with alpha-candidate LK.
LkhStyleResult lkhStyleSolve(const Instance& inst, Rng& rng,
                             const LkhStyleOptions& opt = {},
                             const AnytimeCallback& onImprove = {});

}  // namespace distclk
