#include "bound/onetree.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <tuple>

namespace distclk {

namespace {

double modWeight(const Instance& inst, const std::vector<double>& pi, int a,
                 int b) {
  return static_cast<double>(inst.dist(a, b)) + pi[std::size_t(a)] +
         pi[std::size_t(b)];
}

/// Finalizes a spanning tree over {1..n-1} into a 1-tree by attaching the
/// two cheapest modified-weight edges at city 0.
void attachSpecialCity(const Instance& inst, const std::vector<double>& pi,
                       OneTree& t) {
  const int n = inst.n();
  int best1 = -1, best2 = -1;
  double w1 = std::numeric_limits<double>::infinity(), w2 = w1;
  for (int j = 1; j < n; ++j) {
    const double w = modWeight(inst, pi, 0, j);
    if (w < w1) {
      w2 = w1;
      best2 = best1;
      w1 = w;
      best1 = j;
    } else if (w < w2) {
      w2 = w;
      best2 = j;
    }
  }
  t.edges.emplace_back(0, best1);
  t.edges.emplace_back(0, best2);
  t.weight += w1 + w2;
  t.degree[0] += 2;
  ++t.degree[std::size_t(best1)];
  ++t.degree[std::size_t(best2)];
}

}  // namespace

OneTree minimumOneTree(const Instance& inst, const std::vector<double>& pi) {
  const int n = inst.n();
  if (pi.size() != std::size_t(n))
    throw std::invalid_argument("minimumOneTree: pi size mismatch");
  OneTree t;
  t.degree.assign(std::size_t(n), 0);
  t.edges.reserve(static_cast<std::size_t>(n));

  // Prim over cities {1..n-1} (dense version).
  std::vector<double> minCost(std::size_t(n),
                              std::numeric_limits<double>::infinity());
  std::vector<int> parent(std::size_t(n), -1);
  std::vector<bool> inTree(std::size_t(n), false);
  minCost[1] = 0.0;
  for (int iter = 1; iter < n; ++iter) {
    int u = -1;
    double best = std::numeric_limits<double>::infinity();
    for (int v = 1; v < n; ++v)
      if (!inTree[std::size_t(v)] && minCost[std::size_t(v)] < best) {
        best = minCost[std::size_t(v)];
        u = v;
      }
    inTree[std::size_t(u)] = true;
    if (parent[std::size_t(u)] != -1) {
      t.edges.emplace_back(parent[std::size_t(u)], u);
      t.weight += best;
      ++t.degree[std::size_t(parent[std::size_t(u)])];
      ++t.degree[std::size_t(u)];
    }
    for (int v = 1; v < n; ++v) {
      if (inTree[std::size_t(v)]) continue;
      const double w = modWeight(inst, pi, u, v);
      if (w < minCost[std::size_t(v)]) {
        minCost[std::size_t(v)] = w;
        parent[std::size_t(v)] = u;
      }
    }
  }
  attachSpecialCity(inst, pi, t);
  return t;
}

OneTree candidateOneTree(const Instance& inst, const std::vector<double>& pi,
                         const CandidateLists& cand) {
  const int n = inst.n();
  if (pi.size() != std::size_t(n))
    throw std::invalid_argument("candidateOneTree: pi size mismatch");
  // Symmetric adjacency from the candidate lists.
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int a = 0; a < n; ++a)
    for (int b : cand.of(a)) {
      adj[std::size_t(a)].push_back(b);
      adj[std::size_t(b)].push_back(a);
    }
  OneTree t;
  t.degree.assign(std::size_t(n), 0);
  t.edges.reserve(static_cast<std::size_t>(n));

  // Lazy-deletion Prim over the sparse graph, cities {1..n-1}.
  using Entry = std::tuple<double, int, int>;  // (weight, to, from)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  std::vector<bool> inTree(std::size_t(n), false);
  inTree[0] = true;  // excluded from the spanning tree part
  auto push = [&](int from) {
    for (int v : adj[std::size_t(from)])
      if (v != 0 && !inTree[std::size_t(v)])
        heap.emplace(modWeight(inst, pi, from, v), v, from);
  };
  int covered = 1;
  inTree[1] = true;
  push(1);
  ++covered;  // counts city 0 placeholder + city 1
  while (covered < n) {
    if (heap.empty()) {
      // Candidate graph disconnected: bridge to the nearest uncovered city
      // from an arbitrary covered one (rare; keeps the structure a tree).
      int u = -1;
      for (int v = 1; v < n; ++v)
        if (!inTree[std::size_t(v)]) {
          u = v;
          break;
        }
      int bestFrom = -1;
      double bestW = std::numeric_limits<double>::infinity();
      for (int v = 1; v < n; ++v) {
        if (!inTree[std::size_t(v)]) continue;
        const double w = modWeight(inst, pi, v, u);
        if (w < bestW) {
          bestW = w;
          bestFrom = v;
        }
      }
      heap.emplace(bestW, u, bestFrom);
    }
    auto [w, to, from] = heap.top();
    heap.pop();
    if (inTree[std::size_t(to)]) continue;
    inTree[std::size_t(to)] = true;
    ++covered;
    t.edges.emplace_back(from, to);
    t.weight += w;
    ++t.degree[std::size_t(from)];
    ++t.degree[std::size_t(to)];
    push(to);
  }
  attachSpecialCity(inst, pi, t);
  return t;
}

}  // namespace distclk
