// Minimum 1-trees under node potentials: the building block of the
// Held-Karp lower bound and of alpha-nearness candidate lists.
// A 1-tree is a spanning tree over cities {1..n-1} plus the two cheapest
// edges incident to the special city 0; every tour is a 1-tree, so the
// minimum 1-tree under potential-modified weights bounds the optimum.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "tsp/instance.h"
#include "tsp/neighbors.h"

namespace distclk {

struct OneTree {
  /// Edges of the 1-tree (n edges: n-2 tree edges + 2 special edges).
  std::vector<std::pair<int, int>> edges;
  /// Degree of each city in the 1-tree.
  std::vector<int> degree;
  /// Total modified weight sum over edges, i.e. sum of d(i,j)+pi[i]+pi[j].
  double weight = 0.0;
};

/// Builds the exact minimum 1-tree under weights d(i,j) + pi[i] + pi[j]
/// with Prim's algorithm over the complete graph. O(n^2); intended for
/// n up to a few thousand.
OneTree minimumOneTree(const Instance& inst, const std::vector<double>& pi);

/// Builds a 1-tree restricted to candidate edges (plus enough fallback
/// edges to stay connected). Near-exact for Euclidean instances with
/// k >= ~10 but only an estimate in general; used for large n, where the
/// Held-Karp value it yields is reported as an estimate.
OneTree candidateOneTree(const Instance& inst, const std::vector<double>& pi,
                         const CandidateLists& cand);

}  // namespace distclk
