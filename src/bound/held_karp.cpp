#include "bound/held_karp.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "bound/onetree.h"
#include "construct/construct.h"
#include "tsp/neighbors.h"

namespace distclk {

HeldKarpResult heldKarpBound(const Instance& inst, const HeldKarpOptions& opt) {
  const int n = inst.n();
  const bool exact = n <= opt.exactLimit;
  std::unique_ptr<CandidateLists> cand;
  if (!exact)
    cand = std::make_unique<CandidateLists>(inst, opt.candidateK);

  auto buildTree = [&](const std::vector<double>& pi) {
    return exact ? minimumOneTree(inst, pi)
                 : candidateOneTree(inst, pi, *cand);
  };

  // Polyak step sizing needs an upper bound on the optimum; the
  // nearest-neighbor tour is cheap and always feasible.
  const double upper =
      static_cast<double>(inst.tourLength(nearestNeighborTour(inst)));

  HeldKarpResult res;
  res.exact = exact;
  std::vector<double> pi(static_cast<std::size_t>(n), 0.0);
  res.pi = pi;

  OneTree tree = buildTree(pi);
  double piSum = 0.0;
  double lagrangian = tree.weight - 2.0 * piSum;
  res.bound = lagrangian;

  // Polyak subgradient: t_k = lambda * (UB - L(pi)) / ||g||^2, with lambda
  // halved after a stretch of non-improving iterations. Far more robust
  // than a fixed geometric schedule, especially on clustered geometry
  // where the potentials must grow large.
  double lambda = 2.0;
  int sinceImprove = 0;
  for (int it = 0; it < opt.iterations; ++it) {
    double gNorm2 = 0.0;
    for (int i = 0; i < n; ++i) {
      const double g = tree.degree[std::size_t(i)] - 2;
      gNorm2 += g * g;
    }
    if (gNorm2 == 0.0) break;  // the 1-tree is a tour: bound == optimum

    const double gap = std::max(upper - lagrangian, 1e-9);
    const double step = lambda * gap / gNorm2;
    for (int i = 0; i < n; ++i)
      pi[std::size_t(i)] += step * (tree.degree[std::size_t(i)] - 2);

    tree = buildTree(pi);
    piSum = 0.0;
    for (double p : pi) piSum += p;
    lagrangian = tree.weight - 2.0 * piSum;
    res.iterationsRun = it + 1;
    if (lagrangian > res.bound) {
      res.bound = lagrangian;
      res.pi = pi;
      sinceImprove = 0;
    } else if (++sinceImprove >= 10) {
      lambda = std::max(lambda * 0.5, 1e-4);
      sinceImprove = 0;
    }
  }
  return res;
}

}  // namespace distclk
