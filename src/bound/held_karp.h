// Held-Karp lower bound via subgradient optimization on 1-tree node
// potentials. The paper measures tour quality against this bound whenever
// the optimum is unknown (fi10639, pla33810, pla85900); our synthetic
// stand-ins do the same for every instance.
#pragma once

#include <cstdint>
#include <vector>

#include "tsp/instance.h"

namespace distclk {

struct HeldKarpOptions {
  int iterations = 200;  ///< subgradient steps (Polyak step sizing inside)
  /// Use candidate-restricted 1-trees above this size (exact Prim below).
  int exactLimit = 4000;
  int candidateK = 12;   ///< k for the restricted 1-tree graph
};

struct HeldKarpResult {
  double bound = 0.0;               ///< best (highest) Lagrangian value seen
  std::vector<double> pi;           ///< potentials at the best iteration
  bool exact = true;                ///< false when candidate 1-trees were used
  int iterationsRun = 0;
};

/// Computes (an estimate of) the Held-Karp bound. With default options the
/// value is a true lower bound for n <= exactLimit (exact minimum 1-trees);
/// beyond that, candidate-restricted trees make it an estimate, flagged via
/// `exact == false`.
HeldKarpResult heldKarpBound(const Instance& inst,
                             const HeldKarpOptions& opt = {});

}  // namespace distclk
