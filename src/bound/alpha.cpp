#include "bound/alpha.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "bound/onetree.h"

namespace distclk {

CandidateLists alphaCandidates(const Instance& inst,
                               const std::vector<double>& pi, int k) {
  const int n = inst.n();
  if (pi.size() != std::size_t(n))
    throw std::invalid_argument("alphaCandidates: pi size mismatch");
  k = std::min(k, n - 1);

  const OneTree tree = minimumOneTree(inst, pi);
  auto w = [&](int a, int b) {
    return static_cast<double>(inst.dist(a, b)) + pi[std::size_t(a)] +
           pi[std::size_t(b)];
  };

  // Spanning-tree adjacency (edges not incident to the special city 0) and
  // the two special edge weights at city 0.
  std::vector<std::vector<std::pair<int, double>>> adj(static_cast<std::size_t>(n));
  double special1 = std::numeric_limits<double>::infinity();
  double special2 = special1;
  std::vector<int> specialTo;
  for (const auto& [a, b] : tree.edges) {
    if (a == 0 || b == 0) {
      const int other = a == 0 ? b : a;
      const double ww = w(0, other);
      specialTo.push_back(other);
      if (ww < special1) {
        special2 = special1;
        special1 = ww;
      } else if (ww < special2) {
        special2 = ww;
      }
      continue;
    }
    adj[std::size_t(a)].emplace_back(b, w(a, b));
    adj[std::size_t(b)].emplace_back(a, w(a, b));
  }

  std::vector<std::vector<int>> lists(static_cast<std::size_t>(n));
  std::vector<double> beta(static_cast<std::size_t>(n));
  std::vector<int> stack;
  struct Scored {
    double alpha;
    double weight;
    int city;
  };
  std::vector<Scored> scored;
  scored.reserve(static_cast<std::size_t>(n));

  auto pickTopK = [&](int c) {
    const auto kk = std::min<std::size_t>(std::size_t(k), scored.size());
    std::partial_sort(scored.begin(), scored.begin() + kk, scored.end(),
                      [](const Scored& x, const Scored& y) {
                        if (x.alpha != y.alpha) return x.alpha < y.alpha;
                        if (x.weight != y.weight) return x.weight < y.weight;
                        return x.city < y.city;
                      });
    auto& out = lists[std::size_t(c)];
    out.reserve(kk);
    for (std::size_t i = 0; i < kk; ++i) out.push_back(scored[i].city);
  };

  // City 0: alpha(0,j) = w(0,j) - second-cheapest special edge.
  scored.clear();
  for (int j = 1; j < n; ++j) {
    const bool isSpecial =
        std::find(specialTo.begin(), specialTo.end(), j) != specialTo.end();
    const double a = isSpecial ? 0.0 : std::max(0.0, w(0, j) - special2);
    scored.push_back({a, w(0, j), j});
  }
  pickTopK(0);

  // Other cities: beta(i,j) = max edge weight on the spanning-tree path
  // i..j; alpha(i,j) = w(i,j) - beta(i,j). One DFS per root, O(n) memory.
  for (int root = 1; root < n; ++root) {
    std::fill(beta.begin(), beta.end(),
              -std::numeric_limits<double>::infinity());
    beta[std::size_t(root)] = 0.0;
    stack.assign(1, root);
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (const auto& [v, ww] : adj[std::size_t(u)]) {
        if (beta[std::size_t(v)] !=
            -std::numeric_limits<double>::infinity())
          continue;
        beta[std::size_t(v)] = std::max(beta[std::size_t(u)], ww);
        stack.push_back(v);
      }
    }
    scored.clear();
    for (int j = 1; j < n; ++j) {
      if (j == root) continue;
      const double a = std::max(0.0, w(root, j) - beta[std::size_t(j)]);
      scored.push_back({a, w(root, j), j});
    }
    // alpha(root, 0) mirrors the city-0 rule.
    {
      const bool isSpecial = std::find(specialTo.begin(), specialTo.end(),
                                       root) != specialTo.end();
      const double a =
          isSpecial ? 0.0 : std::max(0.0, w(0, root) - special2);
      scored.push_back({a, w(0, root), 0});
    }
    pickTopK(root);
  }

  return CandidateLists(inst, std::move(lists));
}

}  // namespace distclk
