// Alpha-nearness (Helsgaun): alpha(i,j) is the increase of the minimum
// 1-tree length when edge (i,j) is forced into it. Candidate lists ordered
// by alpha dominate plain nearest-neighbor lists; the LKH-style baseline of
// Table 2 uses them, exactly as Helsgaun's solver does.
#pragma once

#include <vector>

#include "tsp/instance.h"
#include "tsp/neighbors.h"

namespace distclk {

/// Builds candidate lists of the k alpha-nearest neighbors per city, using
/// potentials `pi` (typically the Held-Karp potentials; pass an all-zero
/// vector for the unweighted variant). O(n^2) time and memory traffic —
/// intended for n up to a few thousand.
CandidateLists alphaCandidates(const Instance& inst,
                               const std::vector<double>& pi, int k);

}  // namespace distclk
