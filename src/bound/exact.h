// Exact solvers for tiny instances. Test oracles only: the Held-Karp
// dynamic program certifies optimal lengths so heuristic and bound code can
// be checked against ground truth.
#pragma once

#include <cstdint>
#include <vector>

#include "tsp/instance.h"

namespace distclk {

struct ExactResult {
  std::int64_t length = 0;
  std::vector<int> order;
};

/// Held-Karp dynamic program, O(2^n * n^2). Throws for n > 20.
ExactResult solveExactDp(const Instance& inst);

/// Brute-force enumeration of all (n-1)!/2 tours. Throws for n > 11.
/// Slower but independent of the DP — used to cross-check it.
ExactResult solveExactBruteForce(const Instance& inst);

}  // namespace distclk
