#include "bound/exact.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace distclk {

ExactResult solveExactDp(const Instance& inst) {
  const int n = inst.n();
  if (n > 20) throw std::invalid_argument("solveExactDp: n > 20");
  const int m = n - 1;  // cities 1..n-1; city 0 is the fixed start
  const std::size_t full = std::size_t(1) << m;
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

  // dp[mask][j]: cheapest path 0 -> (visits mask) -> city j+1.
  std::vector<std::int64_t> dp(full * std::size_t(m), kInf);
  std::vector<int> parent(full * std::size_t(m), -1);
  for (int j = 0; j < m; ++j)
    dp[(std::size_t(1) << j) * std::size_t(m) + std::size_t(j)] =
        inst.dist(0, j + 1);

  for (std::size_t mask = 1; mask < full; ++mask) {
    for (int j = 0; j < m; ++j) {
      if (!(mask & (std::size_t(1) << j))) continue;
      const std::int64_t cur = dp[mask * std::size_t(m) + std::size_t(j)];
      if (cur >= kInf) continue;
      for (int k2 = 0; k2 < m; ++k2) {
        if (mask & (std::size_t(1) << k2)) continue;
        const std::size_t nmask = mask | (std::size_t(1) << k2);
        const std::int64_t cand = cur + inst.dist(j + 1, k2 + 1);
        auto& slot = dp[nmask * std::size_t(m) + std::size_t(k2)];
        if (cand < slot) {
          slot = cand;
          parent[nmask * std::size_t(m) + std::size_t(k2)] = j;
        }
      }
    }
  }

  ExactResult res;
  res.length = kInf;
  int lastCity = -1;
  const std::size_t all = full - 1;
  for (int j = 0; j < m; ++j) {
    const std::int64_t total =
        dp[all * std::size_t(m) + std::size_t(j)] + inst.dist(j + 1, 0);
    if (total < res.length) {
      res.length = total;
      lastCity = j;
    }
  }
  // Reconstruct the tour.
  std::vector<int> rev;
  std::size_t mask = all;
  int j = lastCity;
  while (j != -1) {
    rev.push_back(j + 1);
    const int pj = parent[mask * std::size_t(m) + std::size_t(j)];
    mask &= ~(std::size_t(1) << j);
    j = pj;
  }
  res.order.push_back(0);
  res.order.insert(res.order.end(), rev.rbegin(), rev.rend());
  return res;
}

ExactResult solveExactBruteForce(const Instance& inst) {
  const int n = inst.n();
  if (n > 11) throw std::invalid_argument("solveExactBruteForce: n > 11");
  std::vector<int> perm(std::size_t(n - 1));
  std::iota(perm.begin(), perm.end(), 1);
  ExactResult res;
  res.length = std::numeric_limits<std::int64_t>::max();
  std::vector<int> order(static_cast<std::size_t>(n));
  order[0] = 0;
  do {
    // Fix orientation: only count each cycle once.
    if (perm.front() > perm.back()) continue;
    std::copy(perm.begin(), perm.end(), order.begin() + 1);
    const std::int64_t len = inst.tourLength(order);
    if (len < res.length) {
      res.length = len;
      res.order = order;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return res;
}

}  // namespace distclk
