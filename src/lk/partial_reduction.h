// Partial reduction (Bachem & Wottawa, §1.3 of the paper): edges that
// occur on every recent good tour are "protected"; subsequent LK rounds
// skip anchor cities whose both incident edges are protected, cutting
// runtime 10-50% at essentially unchanged quality. Implemented as a city
// mask plus an LK wrapper that seeds only unprotected anchors (the engine's
// dirty-list entry point does the rest).
#pragma once

#include <vector>

#include "lk/lin_kernighan.h"
#include "tsp/tour.h"

namespace distclk {

/// Cities whose BOTH tour edges (w.r.t. the first tour) appear in every
/// given tour. Requires at least two tours (otherwise everything would be
/// protected and LK would have nothing to do); the mask is indexed by city.
std::vector<char> protectedCityMask(
    const std::vector<std::vector<int>>& recentTours);

/// LK restricted to unprotected anchors plus `extraAnchors` (cities a
/// perturbation just touched must always be re-examined, protected or
/// not). Improvements may still move protected cities — their don't-look
/// bits reset when a neighbor changes; only the initial scan skips them.
LkStats reducedLinKernighanOptimize(Tour& tour, const CandidateLists& cand,
                                    const std::vector<char>& protectedCity,
                                    std::span<const int> extraAnchors = {},
                                    const LkOptions& opt = {});

}  // namespace distclk
