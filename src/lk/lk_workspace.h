// Reusable scratch state for the kick–repair loop. The steady-state cost of
// Chained LK is dominated by per-kick bookkeeping — a fresh don't-look
// bitmap and queue per repair call, a champion-tour copy per kick, heap
// allocations for dirty/candidate buffers — all O(n) overhead on a loop
// whose useful work is proportional to the kicked region. LkWorkspace owns
// every buffer the loop needs, stamped with generation counters so "clear"
// is a counter bump instead of an O(n) memset, plus the undo log that lets
// a losing kick roll the champion back in O(changed) instead of restoring a
// copy. One workspace is owned by the CLK driver (or DistNode) and threaded
// through applyKick / linKernighanOptimize; reuse across kicks makes the
// loop allocation-free after warm-up.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace distclk {

/// Don't-look queue with epoch-stamped membership: reset() starts a new
/// generation in O(1) (the membership array is only zeroed on epoch-counter
/// wraparound, once every 2^32 - 1 resets). Pop order, dedup behavior, and
/// the occasional front-compaction are exactly the semantics of the
/// vector<char> + queue idiom the LK/2-opt engines used before, so queue
/// trajectories are unchanged.
class DontLookQueue {
 public:
  /// Starts a new empty queue over cities 0..n-1. Keeps capacity.
  void reset(int n) {
    if (mark_.size() != static_cast<std::size_t>(n)) {
      mark_.assign(static_cast<std::size_t>(n), 0);
      epoch_ = 0;
    }
    if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
      // Wraparound: re-zero the stamps so stale marks from 2^32 resets ago
      // cannot alias the new epoch.
      std::fill(mark_.begin(), mark_.end(), 0);
      epoch_ = 0;
    }
    ++epoch_;
    queue_.clear();
    head_ = 0;
  }

  /// Enqueues c unless it is already a member. Returns true if enqueued.
  bool push(int c) {
    if (mark_[static_cast<std::size_t>(c)] == epoch_) return false;
    mark_[static_cast<std::size_t>(c)] = epoch_;
    queue_.push_back(c);
    return true;
  }

  bool empty() const noexcept { return head_ >= queue_.size(); }

  /// Pops the front city and clears its membership. Compacts the consumed
  /// prefix occasionally so the backing vector cannot grow unboundedly.
  int pop() {
    const int c = queue_[head_++];
    mark_[static_cast<std::size_t>(c)] = epoch_ - 1;
    if (head_ > queue_.size() / 2 && head_ > 4096) {
      queue_.erase(queue_.begin(), queue_.begin() + static_cast<long>(head_));
      head_ = 0;
    }
    return c;
  }

  std::uint32_t epoch() const noexcept { return epoch_; }
  std::size_t pending() const noexcept { return queue_.size() - head_; }

  /// Test hook: fast-forwards the epoch counter to just below wraparound.
  void testSetEpochNearWrap() {
    epoch_ = std::numeric_limits<std::uint32_t>::max() - 1;
  }
  /// Test hook: corrupts a membership stamp (for audit death tests).
  void testCorruptMark(int c, std::uint32_t value) {
    mark_[static_cast<std::size_t>(c)] = value;
  }

  /// Aborts with a diagnostic if the epoch stamps are incoherent with the
  /// live queue span (every pending entry stamped with the current epoch,
  /// every currently-stamped city pending exactly once).
  void auditCheck(const char* where) const;

 private:
  std::vector<std::uint32_t> mark_;
  std::vector<int> queue_;
  std::size_t head_ = 0;
  std::uint32_t epoch_ = 0;
};

/// Scratch + undo state for one kick–repair driver. All buffers are
/// reused; none are cleared with O(n) work in the steady state.
struct LkWorkspace {
  LkWorkspace() = default;
  explicit LkWorkspace(int n) { ensure(n); }

  /// Pre-sizes the n-dependent buffers (idempotent, cheap when sized). The
  /// queue sizes itself in reset(); only the kick rebuild buffer needs n.
  void ensure(int n) {
    if (tourScratch.size() != static_cast<std::size_t>(n))
      tourScratch.resize(static_cast<std::size_t>(n));
  }

  // --- repair scratch (LkSearch / runQueue) ------------------------------
  DontLookQueue dlb;                           ///< don't-look repair queue
  std::vector<std::pair<int, int>> addedEdges; ///< LK rule: x_i not in {y_j}
  std::vector<int> touched;                    ///< endpoints of changed edges

  // --- kick scratch ------------------------------------------------------
  std::vector<int> dirty;       ///< cities incident to kicked edges
  std::vector<int> kickCities;  ///< the four selected cut cities
  std::vector<int> kickScratch; ///< strategy-local scratch (Close subset)
  std::vector<int> tourScratch; ///< array-tour in-place kick rebuild buffer

  // --- undo log ----------------------------------------------------------
  /// Flip tokens in application order: positional reverseSegment replays
  /// for the array Tour, city pairs for BigTour. Rolled back LIFO.
  struct Flip {
    int a, b;
  };
  std::vector<Flip> undoLog;

  /// True while the CLK driver is repairing a kicked tour: LK then appends
  /// every committed flip token to undoLog (rewound chain levels pop their
  /// token again, so the log holds exactly the net flips). False outside the
  /// kick cycle so full optimizations don't grow the log.
  bool recording = false;

  /// The array Tour's kick is one in-place rotate+block-swap permutation
  /// (Tour::kickDoubleBridge); its inverse needs the parameters, not a
  /// token stream. BigTour kicks are three flips and live in undoLog.
  struct ArrayKick {
    int s = 0, p1 = 0, p2 = 0, p3 = 0;
    std::int64_t delta = 0;
    bool active = false;
  };
  ArrayKick kick;

  /// Drops any recorded undo state (start of a kick cycle, or commit).
  void resetUndo() noexcept {
    undoLog.clear();
    kick.active = false;
  }

  /// Full workspace audit: queue coherence plus range checks on the kick
  /// record. Wired into the mutation paths via DISTCLK_AUDIT_HOOK.
  void auditCheck(const char* where) const;
  /// Aborts unless the undo log is empty (after commit/rollback).
  void auditUndoEmpty(const char* where) const;
};

}  // namespace distclk
