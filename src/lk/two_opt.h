// Candidate-list 2-opt local search with don't-look bits. Serves as a
// baseline optimizer, a test oracle for the LK engine (LK must never be
// worse), and the repair step of the multilevel baseline's coarsest level.
#pragma once

#include <cstdint>

#include "tsp/neighbors.h"
#include "tsp/tour.h"

namespace distclk {

/// Runs 2-opt to a local optimum w.r.t. the candidate lists.
/// Returns the total improvement (>= 0, length units).
std::int64_t twoOptOptimize(Tour& tour, const CandidateLists& cand);

}  // namespace distclk
