#include "lk/partial_reduction.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace distclk {

std::vector<char> protectedCityMask(
    const std::vector<std::vector<int>>& recentTours) {
  if (recentTours.size() < 2)
    throw std::invalid_argument("protectedCityMask: need >= 2 tours");
  const std::size_t n = recentTours.front().size();
  for (const auto& t : recentTours)
    if (t.size() != n)
      throw std::invalid_argument("protectedCityMask: tour size mismatch");

  auto edgeSet = [](const std::vector<int>& order) {
    std::set<std::pair<int, int>> edges;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const int a = order[i];
      const int b = order[(i + 1) % order.size()];
      edges.insert({std::min(a, b), std::max(a, b)});
    }
    return edges;
  };

  // Intersection of all tours' edge sets.
  std::set<std::pair<int, int>> common = edgeSet(recentTours.front());
  for (std::size_t t = 1; t < recentTours.size() && !common.empty(); ++t) {
    const auto edges = edgeSet(recentTours[t]);
    std::set<std::pair<int, int>> kept;
    for (const auto& e : common)
      if (edges.count(e)) kept.insert(e);
    common = std::move(kept);
  }

  // A city is protected iff both its edges (in the first tour) are common.
  std::vector<int> degree(n, 0);
  for (const auto& [a, b] : common) {
    ++degree[std::size_t(a)];
    ++degree[std::size_t(b)];
  }
  std::vector<char> mask(n, 0);
  for (std::size_t c = 0; c < n; ++c) mask[c] = degree[c] >= 2 ? 1 : 0;
  return mask;
}

LkStats reducedLinKernighanOptimize(Tour& tour, const CandidateLists& cand,
                                    const std::vector<char>& protectedCity,
                                    std::span<const int> extraAnchors,
                                    const LkOptions& opt) {
  if (protectedCity.size() != std::size_t(tour.n()))
    throw std::invalid_argument(
        "reducedLinKernighanOptimize: mask size mismatch");
  std::vector<int> anchors;
  anchors.reserve(protectedCity.size());
  for (int p = 0; p < tour.n(); ++p) {
    const int c = tour.at(p);
    if (!protectedCity[std::size_t(c)]) anchors.push_back(c);
  }
  anchors.insert(anchors.end(), extraAnchors.begin(), extraAnchors.end());
  return linKernighanOptimize(tour, cand, anchors, opt);
}

}  // namespace distclk
