#include "lk/lk_workspace.h"

#include "util/audit.h"

namespace distclk {

void DontLookQueue::auditCheck(const char* where) const {
  if (head_ > queue_.size())
    audit::fail("DontLookQueue", where, "head beyond queue end");
  std::size_t pendingCount = 0;
  for (std::size_t i = head_; i < queue_.size(); ++i) {
    const int c = queue_[i];
    if (c < 0 || static_cast<std::size_t>(c) >= mark_.size())
      audit::fail("DontLookQueue", where, "pending city out of range");
    if (mark_[static_cast<std::size_t>(c)] != epoch_)
      audit::fail("DontLookQueue", where,
                  "pending entry not stamped with the current epoch");
    ++pendingCount;
  }
  // A never-reset queue (epoch 0) has no current-epoch stamps by
  // construction; the zero-initialized marks belong to no generation.
  std::size_t marked = 0;
  if (epoch_ != 0) {
    for (const std::uint32_t m : mark_)
      if (m == epoch_) ++marked;
  }
  // Equal counts + every pending entry stamped implies the pending entries
  // are exactly the stamped cities, each queued once (a duplicate would
  // make pendingCount exceed marked).
  if (marked != pendingCount)
    audit::fail("DontLookQueue", where,
                "epoch-stamped city count != pending queue entries");
}

void LkWorkspace::auditCheck(const char* where) const {
  dlb.auditCheck(where);
  if (kick.active) {
    const int n = static_cast<int>(tourScratch.size());
    if (!(0 <= kick.s && kick.s < n && 0 < kick.p1 && kick.p1 < kick.p2 &&
          kick.p2 < kick.p3 && kick.p3 < n))
      audit::fail("LkWorkspace", where, "kick record positions out of range");
  }
}

void LkWorkspace::auditUndoEmpty(const char* where) const {
  if (!undoLog.empty())
    audit::fail("LkWorkspace", where,
                "undo log not empty after commit/rollback");
  if (kick.active)
    audit::fail("LkWorkspace", where,
                "kick record still active after commit/rollback");
}

}  // namespace distclk
