// Chained Lin-Kernighan (Martin/Otto/Felten 1991, ABCC implementation
// style): LK-optimize, then repeatedly kick the champion tour with a
// double-bridge move, re-optimize locally, and keep the result iff it is no
// worse. This is both the paper's baseline ("ABCC-CLK") and the local
// engine inside every distributed node.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "lk/kicks.h"
#include "lk/lin_kernighan.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"
#include "util/rng.h"

namespace distclk {

struct ClkOptions {
  KickStrategy kick = KickStrategy::kRandomWalk;  ///< linkern's default
  KickOptions kickOpt;
  LkOptions lk;
  /// Stop after this many kicks (the paper sets it effectively unlimited
  /// and lets time/target terminate).
  std::int64_t maxKicks = std::numeric_limits<std::int64_t>::max();
  /// Stop once the champion reaches this length (e.g. a known optimum).
  std::int64_t targetLength = -1;
  /// Stop after this many seconds of wall time (<= 0: unlimited).
  double timeLimitSeconds = -1.0;
  /// Run the pre-workspace kick loop (copy the champion into a challenger,
  /// repair the copy, copy back on a win) instead of the in-place undo-log
  /// loop. Trajectories are bit-identical either way; this exists so parity
  /// tests and benchmarks can measure the copy-based path head-to-head.
  bool referenceKickPath = false;
  /// > 0: evaluate kicks speculatively on that many worker threads (see
  /// lk/spec_kicks.h). 0 (the default) keeps the sequential determinism-
  /// pinned loop; mutually exclusive with referenceKickPath.
  int speculativeWorkers = 0;
};

struct ClkResult {
  std::int64_t length = 0;
  std::int64_t kicks = 0;
  std::int64_t improvements = 0;
  /// Forward LK segment reversals across all optimizations. Together with
  /// undoneFlips this is a deterministic proxy for CPU work, used by the
  /// simulator's modeled-cost mode.
  std::int64_t flips = 0;
  /// Rewound reversals of failed LK chains (each also cost a physical
  /// reversal); total reversals performed == flips + undoneFlips.
  std::int64_t undoneFlips = 0;
  /// Losing kicks rolled back in place (fast path; the reference path
  /// discards its challenger copy instead, so it reports 0). Rollback
  /// reversals are not counted in flips/undoneFlips — the modeled-cost
  /// proxy stays identical across both paths.
  std::int64_t rollbacks = 0;
  /// Speculation telemetry (zero on the sequential paths). Every
  /// speculative evaluation resolves exactly one way, so
  /// speculated == specCommitted + rollbacks + specConflicts and
  /// kicks == specCommitted + rollbacks (conflicted evaluations are
  /// re-dispatched, not consumed from the kick budget).
  std::int64_t speculated = 0;     ///< kick+repair evaluations performed
  std::int64_t specCommitted = 0;  ///< winners replayed onto the master
  std::int64_t specConflicts = 0;  ///< aborted on ledger overlap, re-queued
  double seconds = 0.0;
  bool hitTarget = false;
};

/// Invoked on every champion improvement with (elapsed seconds, length).
using AnytimeCallback = std::function<void(double, std::int64_t)>;

/// Runs Chained LK on `tour` in place. The initial tour is first optimized
/// to an LK local optimum, then kicked maxKicks times (or until the time
/// limit / target triggers).
ClkResult chainedLinKernighan(Tour& tour, const CandidateLists& cand,
                              Rng& rng, const ClkOptions& opt = {},
                              const AnytimeCallback& onImprove = {});

/// The same driver on the segment-list BigTour: O(sqrt n) flips and kicks,
/// the configuration for six-digit city counts (the paper's pla85900).
ClkResult chainedLinKernighan(BigTour& tour, const CandidateLists& cand,
                              Rng& rng, const ClkOptions& opt = {},
                              const AnytimeCallback& onImprove = {});

/// Workspace variants: same trajectories (the overloads above delegate
/// through a temporary workspace), but a caller-owned LkWorkspace carries
/// the queue, scratch, and undo buffers across calls, making the steady-
/// state kick loop allocation-free. The distributed node owns one per node.
ClkResult chainedLinKernighan(Tour& tour, const CandidateLists& cand,
                              Rng& rng, LkWorkspace& ws,
                              const ClkOptions& opt = {},
                              const AnytimeCallback& onImprove = {});
ClkResult chainedLinKernighan(BigTour& tour, const CandidateLists& cand,
                              Rng& rng, LkWorkspace& ws,
                              const ClkOptions& opt = {},
                              const AnytimeCallback& onImprove = {});

}  // namespace distclk
