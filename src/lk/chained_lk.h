// Chained Lin-Kernighan (Martin/Otto/Felten 1991, ABCC implementation
// style): LK-optimize, then repeatedly kick the champion tour with a
// double-bridge move, re-optimize locally, and keep the result iff it is no
// worse. This is both the paper's baseline ("ABCC-CLK") and the local
// engine inside every distributed node.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "lk/kicks.h"
#include "lk/lin_kernighan.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"
#include "util/rng.h"

namespace distclk {

struct ClkOptions {
  KickStrategy kick = KickStrategy::kRandomWalk;  ///< linkern's default
  KickOptions kickOpt;
  LkOptions lk;
  /// Stop after this many kicks (the paper sets it effectively unlimited
  /// and lets time/target terminate).
  std::int64_t maxKicks = std::numeric_limits<std::int64_t>::max();
  /// Stop once the champion reaches this length (e.g. a known optimum).
  std::int64_t targetLength = -1;
  /// Stop after this many seconds of wall time (<= 0: unlimited).
  double timeLimitSeconds = -1.0;
};

struct ClkResult {
  std::int64_t length = 0;
  std::int64_t kicks = 0;
  std::int64_t improvements = 0;
  /// Forward LK segment reversals across all optimizations. Together with
  /// undoneFlips this is a deterministic proxy for CPU work, used by the
  /// simulator's modeled-cost mode.
  std::int64_t flips = 0;
  /// Rewound reversals of failed LK chains (each also cost a physical
  /// reversal); total reversals performed == flips + undoneFlips.
  std::int64_t undoneFlips = 0;
  double seconds = 0.0;
  bool hitTarget = false;
};

/// Invoked on every champion improvement with (elapsed seconds, length).
using AnytimeCallback = std::function<void(double, std::int64_t)>;

/// Runs Chained LK on `tour` in place. The initial tour is first optimized
/// to an LK local optimum, then kicked maxKicks times (or until the time
/// limit / target triggers).
ClkResult chainedLinKernighan(Tour& tour, const CandidateLists& cand,
                              Rng& rng, const ClkOptions& opt = {},
                              const AnytimeCallback& onImprove = {});

/// The same driver on the segment-list BigTour: O(sqrt n) flips and kicks,
/// the configuration for six-digit city counts (the paper's pla85900).
ClkResult chainedLinKernighan(BigTour& tour, const CandidateLists& cand,
                              Rng& rng, const ClkOptions& opt = {},
                              const AnytimeCallback& onImprove = {});

}  // namespace distclk
