// Or-opt local search: relocates segments of 1-3 consecutive cities next to
// one of their endpoints' candidate neighbors, optionally reversed. A cheap
// complement to 2-opt/LK that repairs "stranded" short segments.
#pragma once

#include <cstdint>

#include "tsp/neighbors.h"
#include "tsp/tour.h"

namespace distclk {

enum class OrOptStyle {
  /// Don't-look queue first (touched cities, their segment-overlapping
  /// predecessors, and candidate neighbors re-enqueue), then confirming
  /// full sweeps until one is clean. Same local-optimum guarantee as
  /// kFullSweep, typically an order of magnitude fewer probes.
  kDontLook,
  /// Pre-workspace behaviour: full sweeps until a pass finds nothing.
  /// Kept for head-to-head benchmarks.
  kFullSweep,
};

/// Runs Or-opt (segment lengths 1..maxSegLen) to a local optimum w.r.t. the
/// candidate lists. Returns the total improvement (>= 0).
std::int64_t orOptOptimize(Tour& tour, const CandidateLists& cand,
                           int maxSegLen = 3,
                           OrOptStyle style = OrOptStyle::kDontLook);

}  // namespace distclk
