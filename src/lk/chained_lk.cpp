#include "lk/chained_lk.h"

#include <vector>

#include "util/timer.h"

namespace distclk {

namespace {

template <typename TourT>
ClkResult chainedLkImpl(TourT& tour, const CandidateLists& cand, Rng& rng,
                        const ClkOptions& opt,
                        const AnytimeCallback& onImprove) {
  Timer timer;
  ClkResult res;

  const LkStats initial = linKernighanOptimize(tour, cand, opt.lk);
  res.flips += initial.flips;
  res.undoneFlips += initial.undoneFlips;
  if (onImprove) onImprove(timer.seconds(), tour.length());

  auto hitTarget = [&] {
    return opt.targetLength >= 0 && tour.length() <= opt.targetLength;
  };
  auto timeUp = [&] {
    return opt.timeLimitSeconds > 0 && timer.seconds() >= opt.timeLimitSeconds;
  };

  // The champion lives in `tour`; kicked challengers are built in `work` and
  // copied back only when they win, so a bad kick never damages the champion.
  TourT work = tour;
  for (std::int64_t kick = 0;
       kick < opt.maxKicks && !hitTarget() && !timeUp(); ++kick) {
    ++res.kicks;
    work = tour;
    const std::vector<int> dirty =
        applyKick(work, opt.kick, cand, rng, opt.kickOpt);
    const LkStats repair = linKernighanOptimize(work, cand, dirty, opt.lk);
    res.flips += repair.flips;
    res.undoneFlips += repair.undoneFlips;
    // ABCC-style acceptance: keep ties as well, so plateaus stay mobile.
    if (work.length() <= tour.length()) {
      const bool strict = work.length() < tour.length();
      tour = work;
      if (strict) {
        ++res.improvements;
        if (onImprove) onImprove(timer.seconds(), tour.length());
      }
    }
  }

  res.length = tour.length();
  res.seconds = timer.seconds();
  res.hitTarget = hitTarget();
  return res;
}

}  // namespace

ClkResult chainedLinKernighan(Tour& tour, const CandidateLists& cand,
                              Rng& rng, const ClkOptions& opt,
                              const AnytimeCallback& onImprove) {
  return chainedLkImpl(tour, cand, rng, opt, onImprove);
}

ClkResult chainedLinKernighan(BigTour& tour, const CandidateLists& cand,
                              Rng& rng, const ClkOptions& opt,
                              const AnytimeCallback& onImprove) {
  return chainedLkImpl(tour, cand, rng, opt, onImprove);
}

}  // namespace distclk
