#include "lk/chained_lk.h"

#include <stdexcept>
#include <vector>

#include "lk/spec_kicks.h"
#include "util/timer.h"

namespace distclk {

namespace {

/// Pre-workspace kick loop: champion stays in `tour`, each challenger is a
/// full tour copy. Kept verbatim as the reference path — parity tests pin
/// the fast path's trajectory against it, and benchmarks price the copies.
template <typename TourT>
ClkResult clkReferenceImpl(TourT& tour, const CandidateLists& cand, Rng& rng,
                           const ClkOptions& opt,
                           const AnytimeCallback& onImprove) {
  Timer timer;
  ClkResult res;

  const LkStats initial = linKernighanOptimize(tour, cand, opt.lk);
  res.flips += initial.flips;
  res.undoneFlips += initial.undoneFlips;
  if (onImprove) onImprove(timer.seconds(), tour.length());

  auto hitTarget = [&] {
    return opt.targetLength >= 0 && tour.length() <= opt.targetLength;
  };
  auto timeUp = [&] {
    return opt.timeLimitSeconds > 0 && timer.seconds() >= opt.timeLimitSeconds;
  };

  // The champion lives in `tour`; kicked challengers are built in `work` and
  // copied back only when they win, so a bad kick never damages the champion.
  TourT work = tour;
  for (std::int64_t kick = 0;
       kick < opt.maxKicks && !hitTarget() && !timeUp(); ++kick) {
    ++res.kicks;
    work = tour;
    const std::vector<int> dirty =
        applyKick(work, opt.kick, cand, rng, opt.kickOpt);
    const LkStats repair = linKernighanOptimize(work, cand, dirty, opt.lk);
    res.flips += repair.flips;
    res.undoneFlips += repair.undoneFlips;
    // ABCC-style acceptance: keep ties as well, so plateaus stay mobile.
    if (work.length() <= tour.length()) {
      const bool strict = work.length() < tour.length();
      tour = work;
      if (strict) {
        ++res.improvements;
        if (onImprove) onImprove(timer.seconds(), tour.length());
      }
    }
  }

  res.length = tour.length();
  res.seconds = timer.seconds();
  res.hitTarget = hitTarget();
  return res;
}

/// Workspace kick loop: the champion is kicked and repaired in place; a
/// losing kick is rolled back from the undo log (repair flips LIFO, then
/// the kick inverse), a winning kick commits by dropping the log. Steady
/// state performs zero heap allocations — every buffer lives in `ws` —
/// and the trajectory (tours, RNG stream, flip counters) is bit-identical
/// to the reference path above: the same moves are applied to the same
/// arrays, only the champion bookkeeping differs.
template <typename TourT>
ClkResult clkFastImpl(TourT& tour, const CandidateLists& cand, Rng& rng,
                      const ClkOptions& opt, const AnytimeCallback& onImprove,
                      LkWorkspace& ws) {
  Timer timer;
  ClkResult res;

  const LkStats initial = linKernighanOptimize(tour, cand, opt.lk, ws);
  res.flips += initial.flips;
  res.undoneFlips += initial.undoneFlips;
  if (onImprove) onImprove(timer.seconds(), tour.length());

  auto hitTarget = [&] {
    return opt.targetLength >= 0 && tour.length() <= opt.targetLength;
  };
  auto timeUp = [&] {
    return opt.timeLimitSeconds > 0 && timer.seconds() >= opt.timeLimitSeconds;
  };

  for (std::int64_t kick = 0;
       kick < opt.maxKicks && !hitTarget() && !timeUp(); ++kick) {
    ++res.kicks;
    const std::int64_t championLen = tour.length();
    ws.resetUndo();
    applyKick(tour, opt.kick, cand, rng, opt.kickOpt, ws);
    ws.recording = true;
    const LkStats repair = linKernighanOptimize(tour, cand, ws.dirty,
                                                opt.lk, ws);
    ws.recording = false;
    res.flips += repair.flips;
    res.undoneFlips += repair.undoneFlips;
    // ABCC-style acceptance: keep ties as well, so plateaus stay mobile.
    if (tour.length() <= championLen) {
      const bool strict = tour.length() < championLen;
      commitKick(ws);
      if (strict) {
        ++res.improvements;
        if (onImprove) onImprove(timer.seconds(), tour.length());
      }
    } else {
      // Rollback reversals are deliberately not counted in flips or
      // undoneFlips: the reference path performs no equivalent work, and
      // the modeled-cost proxy must stay identical across both paths.
      rollbackKick(tour, ws);
      ++res.rollbacks;
    }
  }

  res.length = tour.length();
  res.seconds = timer.seconds();
  res.hitTarget = hitTarget();
  return res;
}

template <typename TourT>
ClkResult chainedLkImpl(TourT& tour, const CandidateLists& cand, Rng& rng,
                        const ClkOptions& opt,
                        const AnytimeCallback& onImprove, LkWorkspace& ws) {
  if (opt.speculativeWorkers > 0) {
    if (opt.referenceKickPath)
      throw std::invalid_argument(
          "ClkOptions: referenceKickPath and speculativeWorkers are mutually "
          "exclusive");
    return chainedLinKernighanSpeculative(tour, cand, rng, ws, opt, onImprove);
  }
  if (opt.referenceKickPath)
    return clkReferenceImpl(tour, cand, rng, opt, onImprove);
  return clkFastImpl(tour, cand, rng, opt, onImprove, ws);
}

}  // namespace

ClkResult chainedLinKernighan(Tour& tour, const CandidateLists& cand,
                              Rng& rng, const ClkOptions& opt,
                              const AnytimeCallback& onImprove) {
  LkWorkspace ws;
  return chainedLkImpl(tour, cand, rng, opt, onImprove, ws);
}

ClkResult chainedLinKernighan(BigTour& tour, const CandidateLists& cand,
                              Rng& rng, const ClkOptions& opt,
                              const AnytimeCallback& onImprove) {
  LkWorkspace ws;
  return chainedLkImpl(tour, cand, rng, opt, onImprove, ws);
}

ClkResult chainedLinKernighan(Tour& tour, const CandidateLists& cand,
                              Rng& rng, LkWorkspace& ws, const ClkOptions& opt,
                              const AnytimeCallback& onImprove) {
  return chainedLkImpl(tour, cand, rng, opt, onImprove, ws);
}

ClkResult chainedLinKernighan(BigTour& tour, const CandidateLists& cand,
                              Rng& rng, LkWorkspace& ws, const ClkOptions& opt,
                              const AnytimeCallback& onImprove) {
  return chainedLkImpl(tour, cand, rng, opt, onImprove, ws);
}

}  // namespace distclk
