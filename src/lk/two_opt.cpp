#include "lk/two_opt.h"

#include <vector>

#include "lk/lk_workspace.h"
#include "tsp/dist_kernel.h"

namespace distclk {

namespace {

/// Tries all candidate 2-opt moves around city a; applies the first
/// improving one. Candidate distances dAB come from the list annotation;
/// the remaining edges go through the metric kernel. Returns the
/// (negative) delta or 0.
std::int64_t improveCity(Tour& tour, const CandidateLists& cand,
                         const DistanceKernel& dist, int a,
                         std::vector<int>& touched) {
  const auto cands = cand.of(a);
  const auto candDist = cand.distOf(a);
  // Successor direction: remove (a, next(a)) and (b, next(b)).
  {
    const int na = tour.next(a);
    const std::int64_t dA = dist(a, na);
    for (std::size_t i = 0; i < cands.size(); ++i) {
      const int b = cands[i];
      const std::int64_t dAB = candDist[i];
      if (dAB >= dA) break;  // candidates sorted: no gain possible
      const int nb = tour.next(b);
      if (b == na || nb == a) continue;
      const std::int64_t delta = dAB + dist(na, nb) - dA - dist(b, nb);
      if (delta < 0) {
        tour.twoOptMove(a, b);
        touched.assign({a, na, b, nb});
        return delta;
      }
    }
  }
  // Predecessor direction: remove (prev(a), a) and (prev(b), b).
  {
    const int pa = tour.prev(a);
    const std::int64_t dA = dist(pa, a);
    for (std::size_t i = 0; i < cands.size(); ++i) {
      const int b = cands[i];
      const std::int64_t dAB = candDist[i];
      if (dAB >= dA) break;
      const int pb = tour.prev(b);
      if (b == pa || pb == a) continue;
      const std::int64_t delta = dAB + dist(pa, pb) - dA - dist(pb, b);
      if (delta < 0) {
        // Same move expressed on successor edges of pb and pa.
        tour.twoOptMove(pb, pa);
        touched.assign({a, pa, b, pb});
        return delta;
      }
    }
  }
  return 0;
}

}  // namespace

std::int64_t twoOptOptimize(Tour& tour, const CandidateLists& cand) {
  const DistanceKernel dist(tour.instance());
  const int n = tour.n();
  DontLookQueue dlb;
  dlb.reset(n);
  for (int p = 0; p < n; ++p) dlb.push(tour.at(p));

  std::int64_t total = 0;
  std::vector<int> touched;
  while (!dlb.empty()) {
    const int a = dlb.pop();
    const std::int64_t delta = improveCity(tour, cand, dist, a, touched);
    if (delta < 0) {
      total -= delta;
      // Re-enqueue the endpoints of changed edges AND their candidate
      // neighbors: a changed partner edge can make a previously-rejected
      // move improving for a city whose own edges did not change. With
      // symmetric candidate lists this closes the classical DLB coverage
      // hole.
      for (int c : touched) {
        dlb.push(c);
        for (int nb : cand.of(c)) dlb.push(nb);
      }
    }
  }
  return total;
}

}  // namespace distclk
