#include "lk/spec_kicks.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "lk/kicks.h"
#include "lk/lin_kernighan.h"
#include "util/audit.h"
#include "util/sync.h"
#include "util/timer.h"

namespace distclk {

bool flipSlotFootprint(int a, int b, int n, SlotInterval& out) {
  const int len = (b - a + n) % n + 1;
  if (len >= n) return false;  // reverseSegment no-ops on the whole tour
  // The same shorter-arc choice reverseSegment makes: a function of
  // (a, b, n) only, so the footprint can be derived from the token alone.
  int lo, hi, phys;
  if (2 * len <= n) {
    lo = a;
    hi = b;
    phys = len;
  } else {
    lo = (b + 1) % n;
    hi = (a - 1 + n) % n;
    phys = n - len;
  }
  if (phys + 2 >= n) {  // padding wraps: the whole array is touched
    out = {0, n - 1};
    return true;
  }
  out = {(lo - 1 + n) % n, (hi + 1) % n};
  return true;
}

bool ConflictLedger::conflicts(
    std::span<const SlotInterval> intervals) const noexcept {
  for (const SlotInterval& iv : intervals)
    for (const Entry& e : entries_)
      if (overlap(iv, e.interval)) return true;
  return false;
}

void ConflictLedger::commit(std::span<const SlotInterval> intervals) {
  const int group = groups_++;
  for (const SlotInterval& iv : intervals) entries_.push_back({iv, group});
}

void ConflictLedger::auditCheck(const char* where) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.interval.lo < 0 || e.interval.lo >= n_ || e.interval.hi < 0 ||
        e.interval.hi >= n_)
      audit::fail("ConflictLedger", where, "interval slot out of range");
    for (std::size_t j = i + 1; j < entries_.size(); ++j) {
      if (entries_[j].group == e.group) continue;  // same result may overlap
      if (overlap(e.interval, entries_[j].interval))
        audit::fail("ConflictLedger", where,
                    "committed intervals overlap across groups");
    }
  }
}

namespace {

/// Forward replay of a recorded flip token on another tour in the same
/// state: the array token is positional (reverseSegment is an involution,
/// so replay == unflip); the BigTour token stores {b, a} for a forward
/// reversal of a..b.
inline void replayFlip(Tour& tour, const LkWorkspace::Flip& f) {
  tour.reverseSegment(f.a, f.b);
}
inline void replayFlip(BigTour& tour, const LkWorkspace::Flip& f) {
  tour.reverseForward(f.b, f.a);
}

// Referenced only from DISTCLK_AUDIT_HOOK sites, which compile away in
// non-audit builds.
[[maybe_unused]] void auditReplayedLength(std::int64_t expected,
                                          std::int64_t actual) {
  if (expected != actual)
    audit::fail("SpecEngine", "commit",
                "replayed token stream did not reproduce the worker's delta");
}

/// Round-synchronous speculative kick engine. The coordinator (the calling
/// thread) owns the master tour, the RNG, and every accept/commit decision;
/// the pool only ever evaluates. Each round:
///
///   1. dispatch: re-dispatched conflict losers first, then fresh kick
///      selections drawn from the caller's Rng in task order (selection is
///      tour-independent, so the stream matches the sequential path),
///   2. evaluate: every worker replays last round's committed token
///      streams onto its private tour (bringing it to the master state),
///      then applies its kick (rotation-free, recorded as flip tokens) and
///      the LK repair with recording on, measures the length delta, and
///      rolls its private tour back to the snapshot,
///   3. commit: in task order, a result conflicts when its padded flip
///      footprint overlaps an earlier commit's (ConflictLedger) — it is
///      re-dispatched; otherwise it resolves: delta <= 0 replays its token
///      stream onto the master and records its footprint, delta > 0 is a
///      rejected kick (the sequential loop's rollback case).
///
/// The first result processed each round can never conflict, so every
/// round resolves at least one task and the loop terminates.
template <typename TourT>
class SpecEngine {
 public:
  SpecEngine(TourT& master, const CandidateLists& cand, const ClkOptions& opt)
      : master_(master), cand_(cand), opt_(opt) {}

  ~SpecEngine() {
    {
      const sync::MutexLock lock(mu_);
      shutdown_ = true;
    }
    cvRound_.notifyAll();
    for (std::thread& t : threads_) t.join();
  }

  SpecEngine(const SpecEngine&) = delete;
  SpecEngine& operator=(const SpecEngine&) = delete;

  ClkResult run(Rng& rng, LkWorkspace& ws, const AnytimeCallback& onImprove) {
    Timer timer;
    ClkResult res;

    const LkStats initial = linKernighanOptimize(master_, cand_, opt_.lk, ws);
    res.flips += initial.flips;
    res.undoneFlips += initial.undoneFlips;
    if (onImprove) onImprove(timer.seconds(), master_.length());

    auto hitTarget = [&] {
      return opt_.targetLength >= 0 && master_.length() <= opt_.targetLength;
    };
    auto timeUp = [&] {
      return opt_.timeLimitSeconds > 0 &&
             timer.seconds() >= opt_.timeLimitSeconds;
    };

    // Workers copy the optimized master; spawn only now so every private
    // tour starts in the committed state the token streams build on.
    const int k = opt_.speculativeWorkers;
    workers_.reserve(static_cast<std::size_t>(k));
    for (int w = 0; w < k; ++w)
      workers_.push_back(std::make_unique<Worker>(master_));
    threads_.reserve(static_cast<std::size_t>(k));
    for (int w = 0; w < k; ++w)
      threads_.emplace_back([this, w] { workerLoop(w); });

    std::int64_t drawn = 0;
    while (!hitTarget() && !timeUp()) {
      // Dispatch: conflict losers keep their selections (and their place in
      // the deterministic task order), fresh tasks consume the RNG stream.
      int tasks = 0;
      for (auto& w : workers_) {
        w->hasTask = false;
        if (!redispatch_.empty()) {
          w->cities = redispatch_.front();
          redispatch_.pop_front();
          w->hasTask = true;
          ++tasks;
        } else if (drawn < opt_.maxKicks) {
          selectKickCitiesInto(master_.instance(), opt_.kick, cand_, rng,
                               opt_.kickOpt, ws.kickCities, ws.kickScratch);
          w->cities = {ws.kickCities[0], ws.kickCities[1], ws.kickCities[2],
                       ws.kickCities[3]};
          ++drawn;
          w->hasTask = true;
          ++tasks;
        }
      }
      if (tasks == 0) break;  // budget drawn and no conflict losers left

      baseLen_ = master_.length();
      runRound();

      // Commit phase: coordinator-only, task order == worker index order.
      commits_.clear();
      ledger_.reset(master_.n());
      std::int64_t expectedLen = baseLen_;
      for (auto& w : workers_) {
        if (!w->hasTask) continue;
        ++res.speculated;
        res.flips += w->repair.flips;
        res.undoneFlips += w->repair.undoneFlips;
        if (ledger_.conflicts(w->intervals)) {
          ++res.specConflicts;
          redispatch_.push_back(w->cities);
        } else if (w->delta <= 0) {
          // ABCC-style acceptance (ties kept): replay the winner's token
          // stream onto the master and claim its footprint for the round.
          for (const LkWorkspace::Flip& f : w->stream) replayFlip(master_, f);
          expectedLen += w->delta;
          DISTCLK_AUDIT_HOOK(
              auditReplayedLength(expectedLen, master_.length()));
          ledger_.commit(w->intervals);
          DISTCLK_AUDIT_HOOK(ledger_.auditCheck("SpecEngine::commit"));
          commits_.push_back(std::move(w->stream));
          ++res.kicks;
          ++res.specCommitted;
          if (w->delta < 0) {
            ++res.improvements;
            if (onImprove) onImprove(timer.seconds(), master_.length());
          }
          if (hitTarget()) break;  // remaining results are moot
        } else {
          ++res.kicks;
          ++res.rollbacks;
        }
      }
    }

    res.length = master_.length();
    res.seconds = timer.seconds();
    res.hitTarget = hitTarget();
    return res;
  }

 private:
  struct Worker {
    explicit Worker(const TourT& snapshot) : tour(snapshot) {}
    TourT tour;        ///< private copy, kept in the master state between rounds
    LkWorkspace ws;    ///< private scratch + undo log
    bool hasTask = false;
    std::array<int, 4> cities{};
    // Results (written by the worker during the round, read by the
    // coordinator after the round barrier):
    std::int64_t delta = 0;  ///< length change of kick + repair vs. snapshot
    LkStats repair;
    std::vector<LkWorkspace::Flip> stream;  ///< kick + net repair tokens
    std::vector<SlotInterval> intervals;    ///< padded physical footprint
  };

  void workerLoop(int index) {
    Worker& w = *workers_[static_cast<std::size_t>(index)];
    std::uint64_t seen = 0;
    for (;;) {
      {
        const sync::MutexLock lock(mu_);
        while (!shutdown_ && round_ == seen) cvRound_.wait(mu_);
        if (shutdown_) return;
        seen = round_;
      }
      evaluate(w);
      {
        const sync::MutexLock lock(mu_);
        if (--pending_ == 0) cvDone_.notifyOne();
      }
    }
  }

  /// One worker's round: sync to the master state, then (with a task)
  /// speculatively evaluate kick + repair and roll back to the snapshot.
  void evaluate(Worker& w) {
    // Replay last round's committed streams in commit order; the private
    // tour then matches the master exactly (slot-for-slot on the array
    // tour, whose tokens are positional).
    for (const std::vector<LkWorkspace::Flip>& stream : commits_)
      for (const LkWorkspace::Flip& f : stream) replayFlip(w.tour, f);
    if (!w.hasTask) return;

    w.ws.resetUndo();
    applyKickCities(w.tour, w.cities, w.ws);
    w.ws.recording = true;
    w.repair = linKernighanOptimize(w.tour, cand_, w.ws.dirty, opt_.lk, w.ws);
    w.ws.recording = false;
    w.delta = w.tour.length() - baseLen_;
    w.stream.assign(w.ws.undoLog.begin(), w.ws.undoLog.end());

    w.intervals.clear();
    if constexpr (std::is_same_v<TourT, Tour>) {
      const int n = w.tour.n();
      for (const LkWorkspace::Flip& f : w.stream) {
        SlotInterval iv;
        if (flipSlotFootprint(f.a, f.b, n, iv)) w.intervals.push_back(iv);
      }
    } else {
      // The segment-list tour has no stable position stamps, so its results
      // claim the whole tour: at most one commit per round, every other
      // acceptable result re-dispatches (see DESIGN.md §10).
      w.intervals.push_back({0, w.tour.n() - 1});
    }

    rollbackKick(w.tour, w.ws);  // audits the undo log empty
  }

  /// Releases the pool for one round and blocks until every worker is done.
  /// The mutex pair orders the coordinator's dispatch writes before the
  /// workers' reads, and the workers' result writes before the commit
  /// phase's reads.
  void runRound() {
    {
      const sync::MutexLock lock(mu_);
      pending_ = static_cast<int>(workers_.size());
      ++round_;
    }
    cvRound_.notifyAll();
    const sync::MutexLock lock(mu_);
    while (pending_ != 0) cvDone_.wait(mu_);
  }

  TourT& master_;
  const CandidateLists& cand_;
  const ClkOptions& opt_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  sync::Mutex mu_{sync::LockRank::kSpecEngine, "SpecEngine.mu"};
  sync::CondVar cvRound_;
  sync::CondVar cvDone_;
  std::uint64_t round_ DISTCLK_GUARDED_BY(mu_) = 0;
  int pending_ DISTCLK_GUARDED_BY(mu_) = 0;
  bool shutdown_ DISTCLK_GUARDED_BY(mu_) = false;

  // Round-scoped shared state: written by the coordinator between rounds
  // (and commits_' streams by the commit phase), read by workers during the
  // round. Deliberately NOT lock-annotated: no thread touches these while
  // holding mu_ — the runRound() barrier (mutex-paired release/acquire on
  // round_/pending_) is what orders the coordinator's writes before the
  // workers' reads and the workers' result writes before the commit phase.
  // That happens-before discipline is a property of the round protocol,
  // which the static analysis cannot express; TSan covers it instead
  // (test_spec_kicks in scripts/tier1.sh).
  std::int64_t baseLen_ = 0;
  std::vector<std::vector<LkWorkspace::Flip>> commits_;
  ConflictLedger ledger_;
  std::deque<std::array<int, 4>> redispatch_;
};

template <typename TourT>
ClkResult specImpl(TourT& tour, const CandidateLists& cand, Rng& rng,
                   LkWorkspace& ws, const ClkOptions& opt,
                   const AnytimeCallback& onImprove) {
  if (opt.speculativeWorkers < 1)
    throw std::invalid_argument(
        "chainedLinKernighanSpeculative: speculativeWorkers must be >= 1");
  if (tour.n() < 8)
    throw std::invalid_argument(
        "chainedLinKernighanSpeculative: tour too small for a 4-exchange");
  SpecEngine<TourT> engine(tour, cand, opt);
  return engine.run(rng, ws, onImprove);
}

}  // namespace

ClkResult chainedLinKernighanSpeculative(Tour& tour, const CandidateLists& cand,
                                         Rng& rng, LkWorkspace& ws,
                                         const ClkOptions& opt,
                                         const AnytimeCallback& onImprove) {
  return specImpl(tour, cand, rng, ws, opt, onImprove);
}

ClkResult chainedLinKernighanSpeculative(BigTour& tour,
                                         const CandidateLists& cand, Rng& rng,
                                         LkWorkspace& ws, const ClkOptions& opt,
                                         const AnytimeCallback& onImprove) {
  return specImpl(tour, cand, rng, ws, opt, onImprove);
}

}  // namespace distclk
