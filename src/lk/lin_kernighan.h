// Variable-depth Lin-Kernighan local search (Lin & Kernighan 1973), in the
// flip-based formulation used by array-tour implementations: every level of
// the move chain is realized as a physical 2-opt flip, so the tour is always
// a valid closed cycle; the chain deepens while the sequential gain
// criterion holds, commits at the first level whose closed tour improves on
// the start, and rewinds the flips otherwise (flips are involutions).
// Search is restricted to candidate edges and driven by don't-look bits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lk/lk_workspace.h"
#include "tsp/big_tour.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"

namespace distclk {

struct LkOptions {
  int maxDepth = 25;       ///< maximum chain length (edges exchanged)
  int breadth0 = 8;        ///< candidates tried at chain level 0
  int breadth1 = 4;        ///< candidates tried at chain level 1
  /// Candidates tried at deeper levels (1 = pure greedy deepening).
  int breadthDeep = 1;
  /// True when candidate lists are sorted by distance, enabling the early
  /// `break` on the gain criterion. Set false for alpha-nearness lists,
  /// which are sorted by alpha instead (candidates are then only skipped).
  bool candidatesDistanceSorted = true;
  /// Hard cap on flips explored per anchor city and direction. Backtracking
  /// breadth > 1 at deep levels makes failed searches exponential in
  /// maxDepth; this bounds the damage for any parameter combination.
  std::int64_t maxFlipsPerChain = 20000;
  /// Evaluate distances through the reference Instance::dist() switch and
  /// recompute candidate distances per visit, instead of the metric-
  /// specialized DistanceKernel + the CandidateLists annotation. Both paths
  /// are bit-identical (same tours for the same seed); this exists so
  /// benchmarks and equivalence tests can measure the seed path.
  bool referenceDistances = false;
};

struct LkStats {
  std::int64_t improvement = 0;  ///< total length reduction
  std::int64_t chains = 0;       ///< committed move chains
  std::int64_t flips = 0;        ///< forward segment reversals applied
  /// Rewinds of failed chain levels (each also cost a physical reversal);
  /// total reversals performed == flips + undoneFlips, applied-and-kept
  /// flips == flips - undoneFlips.
  std::int64_t undoneFlips = 0;
};

/// Optimizes `tour` to an LK local optimum. Returns statistics.
LkStats linKernighanOptimize(Tour& tour, const CandidateLists& cand,
                             const LkOptions& opt = {});

/// Same, but only cities in `dirty` (and whatever improvements touch) are
/// examined. This is what makes Chained LK fast: after a double-bridge kick
/// only the 8 cities incident to the changed edges need re-optimization.
LkStats linKernighanOptimize(Tour& tour, const CandidateLists& cand,
                             std::span<const int> dirty,
                             const LkOptions& opt);

/// The same engine on the segment-list BigTour: identical search, O(sqrt n)
/// flips — the variant for six-digit city counts.
LkStats linKernighanOptimize(BigTour& tour, const CandidateLists& cand,
                             const LkOptions& opt = {});
LkStats linKernighanOptimize(BigTour& tour, const CandidateLists& cand,
                             std::span<const int> dirty,
                             const LkOptions& opt);

/// Workspace-threaded variants: identical trajectories (the overloads above
/// delegate to these through a temporary workspace), but a caller-owned
/// LkWorkspace is reused across calls, which makes the steady-state CLK
/// kick–repair loop allocation-free. When ws.recording is set, every
/// committed flip is appended to ws.undoLog for the driver's kick rollback.
LkStats linKernighanOptimize(Tour& tour, const CandidateLists& cand,
                             const LkOptions& opt, LkWorkspace& ws);
LkStats linKernighanOptimize(Tour& tour, const CandidateLists& cand,
                             std::span<const int> dirty, const LkOptions& opt,
                             LkWorkspace& ws);
LkStats linKernighanOptimize(BigTour& tour, const CandidateLists& cand,
                             const LkOptions& opt, LkWorkspace& ws);
LkStats linKernighanOptimize(BigTour& tour, const CandidateLists& cand,
                             std::span<const int> dirty, const LkOptions& opt,
                             LkWorkspace& ws);

}  // namespace distclk
