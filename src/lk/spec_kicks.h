// Speculative parallel kick evaluation (the ROADMAP's CPF-style item): a
// per-node worker pool evaluates k candidate double-bridge kicks + LK
// repair concurrently, each on a private tour copy of the shared champion
// snapshot with its own LkWorkspace. A conflict ledger of touched tour
// regions (padded physical slot intervals of every recorded flip token)
// detects overlap between speculative results; non-conflicting winners are
// committed to the master tour in a deterministic task order by replaying
// their undo-log token streams, losers roll back in O(changed) on their
// private copies, and conflicted tasks are re-dispatched next round.
//
// Determinism: the coordinator draws every kick selection from the single
// caller Rng in task order (selection is tour-independent, so the stream
// matches the sequential path), workers make no random choices, and all
// commit/reject decisions happen on the coordinator in task order — so the
// trajectory is a pure function of (seed, options, worker count). Thread
// scheduling can never leak into the result. See DESIGN.md §10.
#pragma once

#include <span>

#include "lk/chained_lk.h"
#include "lk/lk_workspace.h"
#include "tsp/big_tour.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"
#include "util/rng.h"

namespace distclk {

/// Cyclic slot interval [lo, hi] inclusive (walking forward from lo) on an
/// n-slot array tour; lo may exceed hi when the interval wraps.
struct SlotInterval {
  int lo = 0;
  int hi = 0;
};

/// Padded physical slot footprint of replaying reverseSegment(a, b) on an
/// n-city array tour: the slots the flip writes (the shorter arc — the
/// same choice rule reverseSegment applies, a function of (a, b, n) only)
/// widened by one slot per side for the boundary-edge distance reads.
/// Returns false when the flip is a whole-tour no-op (no footprint).
bool flipSlotFootprint(int a, int b, int n, SlotInterval& out);

/// Ledger of tour regions committed within one speculative round. Each
/// commit records its intervals under a fresh group id; a candidate result
/// conflicts when any of its intervals overlaps a slot committed by an
/// earlier group, in which case its token stream cannot be replayed on the
/// master (the content it was recorded against has changed).
class ConflictLedger {
 public:
  /// Starts an empty round over an n-slot tour. Keeps capacity.
  void reset(int n) {
    n_ = n;
    entries_.clear();
    groups_ = 0;
  }

  /// True iff any interval overlaps a previously committed group's slots.
  bool conflicts(std::span<const SlotInterval> intervals) const noexcept;

  /// Records the intervals of one committed result as a new group.
  void commit(std::span<const SlotInterval> intervals);

  int n() const noexcept { return n_; }
  int groups() const noexcept { return groups_; }

  /// Aborts with a diagnostic unless all committed groups are pairwise
  /// slot-disjoint — the invariant that makes token-stream replay exact.
  /// Wired into the commit path via DISTCLK_AUDIT_HOOK.
  void auditCheck(const char* where) const;

  /// Test hook: records an interval under an arbitrary group id with no
  /// disjointness screening (for audit death tests).
  void testRecordRaw(SlotInterval interval, int group) {
    entries_.push_back({interval, group});
    groups_ = std::max(groups_, group + 1);
  }

 private:
  static bool contains(const SlotInterval& iv, int x) noexcept {
    return iv.lo <= iv.hi ? x >= iv.lo && x <= iv.hi : x >= iv.lo || x <= iv.hi;
  }
  static bool overlap(const SlotInterval& p, const SlotInterval& q) noexcept {
    return contains(p, q.lo) || contains(q, p.lo);
  }

  struct Entry {
    SlotInterval interval;
    int group = 0;
  };
  std::vector<Entry> entries_;
  int n_ = 0;
  int groups_ = 0;
};

/// Chained LK with speculative kick evaluation (opt.speculativeWorkers
/// worker threads; must be >= 1). The sequential entry points in
/// chained_lk.h dispatch here — call those, not this, unless testing the
/// engine directly. Kicks are realized rotation-free (the flip-token
/// construction the sequential BigTour path uses), so with one worker the
/// BigTour trajectory is bit-identical to the sequential fast path; the
/// array Tour's sequential kick anchors its preserved cut on the array
/// rotation, which cannot be replayed slot-locally, so its speculative
/// trajectory is a (deterministic) sibling pinned against a sequential
/// flip-kick reference loop in tests (same precedent as the documented
/// Tour/BigTour kick divergence in tests/test_big_tour.cpp).
ClkResult chainedLinKernighanSpeculative(Tour& tour, const CandidateLists& cand,
                                         Rng& rng, LkWorkspace& ws,
                                         const ClkOptions& opt,
                                         const AnytimeCallback& onImprove = {});
ClkResult chainedLinKernighanSpeculative(BigTour& tour,
                                         const CandidateLists& cand, Rng& rng,
                                         LkWorkspace& ws, const ClkOptions& opt,
                                         const AnytimeCallback& onImprove = {});

}  // namespace distclk
