#include "lk/adaptive_kick.h"

#include <algorithm>

#include "lk/lin_kernighan.h"
#include "util/timer.h"

namespace distclk {

AdaptiveClkResult adaptiveChainedLk(Tour& tour, const CandidateLists& cand,
                                    Rng& rng, const AdaptiveClkOptions& opt,
                                    const AnytimeCallback& onImprove) {
  Timer timer;
  AdaptiveClkResult res;

  linKernighanOptimize(tour, cand, opt.lk);
  if (onImprove) onImprove(timer.seconds(), tour.length());

  auto hitTarget = [&] {
    return opt.targetLength >= 0 && tour.length() <= opt.targetLength;
  };
  auto timeUp = [&] {
    return opt.timeLimitSeconds > 0 && timer.seconds() >= opt.timeLimitSeconds;
  };

  constexpr std::array<KickStrategy, 4> kStrategies{
      KickStrategy::kRandom, KickStrategy::kGeometric, KickStrategy::kClose,
      KickStrategy::kRandomWalk};

  Tour work = tour;
  for (std::int64_t kick = 0;
       kick < opt.maxKicks && !hitTarget() && !timeUp(); ++kick) {
    ++res.kicks;

    // Epsilon-greedy arm selection; untried arms are explored first.
    std::size_t arm = 0;
    bool haveUntried = false;
    for (std::size_t i = 0; i < 4; ++i) {
      if (res.uses[i] == 0) {
        arm = i;
        haveUntried = true;
        break;
      }
    }
    if (!haveUntried) {
      if (rng.uniform() < opt.epsilon) {
        arm = rng.below(4);
      } else {
        arm = std::size_t(std::max_element(res.rewards.begin(),
                                           res.rewards.end()) -
                          res.rewards.begin());
      }
    }
    ++res.uses[arm];

    work = tour;
    const auto dirty =
        applyKick(work, kStrategies[arm], cand, rng, opt.kickOpt);
    linKernighanOptimize(work, cand, dirty, opt.lk);

    // Reward: relative improvement of the champion (0 when none).
    const double reward =
        work.length() < tour.length()
            ? static_cast<double>(tour.length() - work.length()) /
                  static_cast<double>(tour.length())
            : 0.0;
    res.rewards[arm] = opt.decay * res.rewards[arm] + (1.0 - opt.decay) * reward;

    if (work.length() <= tour.length()) {
      const bool strict = work.length() < tour.length();
      tour = work;
      if (strict) {
        ++res.improvements;
        if (onImprove) onImprove(timer.seconds(), tour.length());
      }
    }
  }

  res.length = tour.length();
  res.seconds = timer.seconds();
  res.hitTarget = hitTarget();
  return res;
}

}  // namespace distclk
