#include "lk/kicks.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "tsp/dist_kernel.h"

namespace distclk {

const char* toString(KickStrategy s) noexcept {
  switch (s) {
    case KickStrategy::kRandom: return "Random";
    case KickStrategy::kGeometric: return "Geometric";
    case KickStrategy::kClose: return "Close";
    case KickStrategy::kRandomWalk: return "Random-walk";
  }
  return "?";
}

KickStrategy kickStrategyFromString(const std::string& s) {
  if (s == "Random" || s == "random") return KickStrategy::kRandom;
  if (s == "Geometric" || s == "geometric") return KickStrategy::kGeometric;
  if (s == "Close" || s == "close") return KickStrategy::kClose;
  if (s == "Random-walk" || s == "random-walk" || s == "walk")
    return KickStrategy::kRandomWalk;
  throw std::invalid_argument("unknown kick strategy: " + s);
}

namespace {

bool pushUnique(std::vector<int>& v, int c) {
  if (std::find(v.begin(), v.end(), c) != v.end()) return false;
  v.push_back(c);
  return true;
}

std::vector<int> selectRandom(int n, Rng& rng) {
  std::vector<int> cities;
  while (cities.size() < 4)
    pushUnique(cities, static_cast<int>(rng.below(std::uint64_t(n))));
  return cities;
}

std::vector<int> selectGeometric(int n, const CandidateLists& cand, Rng& rng,
                                 int k) {
  const int v = static_cast<int>(rng.below(std::uint64_t(n)));
  const auto nbrs = cand.of(v);
  const int avail = std::min<int>(k, static_cast<int>(nbrs.size()));
  if (avail < 3) return selectRandom(n, rng);
  std::vector<int> cities{v};
  for (int attempts = 0; cities.size() < 4 && attempts < 64; ++attempts)
    pushUnique(cities, nbrs[rng.below(std::uint64_t(avail))]);
  if (cities.size() < 4) return selectRandom(n, rng);
  return cities;
}

std::vector<int> selectClose(const Instance& inst, Rng& rng, double beta) {
  const DistanceKernel dist(inst);
  const int n = inst.n();
  const int v = static_cast<int>(rng.below(std::uint64_t(n)));
  const int subsetSize =
      std::clamp(static_cast<int>(beta * n), 8, std::max(8, n - 1));
  std::vector<int> subset;
  subset.reserve(static_cast<std::size_t>(subsetSize));
  for (int attempts = 0;
       static_cast<int>(subset.size()) < subsetSize && attempts < 4 * subsetSize;
       ++attempts) {
    const int c = static_cast<int>(rng.below(std::uint64_t(n)));
    if (c != v) pushUnique(subset, c);
  }
  if (subset.size() < 6) return selectRandom(n, rng);
  // Six subset cities nearest to v; pick three of them.
  std::partial_sort(subset.begin(), subset.begin() + 6, subset.end(),
                    [&](int a, int b) {
                      const auto da = dist(v, a), db = dist(v, b);
                      return da != db ? da < db : a < b;
                    });
  std::vector<int> cities{v};
  for (int attempts = 0; cities.size() < 4 && attempts < 64; ++attempts)
    pushUnique(cities, subset[rng.below(6)]);
  if (cities.size() < 4) return selectRandom(n, rng);
  return cities;
}

std::vector<int> selectRandomWalk(int n, const CandidateLists& cand, Rng& rng,
                                  int walkLength) {
  const int v = static_cast<int>(rng.below(std::uint64_t(n)));
  std::vector<int> cities{v};
  for (int walk = 0; walk < 3; ++walk) {
    bool placed = false;
    for (int retry = 0; retry < 10 && !placed; ++retry) {
      int cur = v;
      for (int step = 0; step < walkLength; ++step) {
        const auto nbrs = cand.of(cur);
        if (nbrs.empty()) break;
        cur = nbrs[rng.below(nbrs.size())];
      }
      placed = cur != v && pushUnique(cities, cur);
    }
    if (!placed) return selectRandom(n, rng);
  }
  return cities;
}

}  // namespace

std::vector<int> selectKickCities(const Instance& inst, KickStrategy strategy,
                                  const CandidateLists& cand, Rng& rng,
                                  const KickOptions& opt) {
  switch (strategy) {
    case KickStrategy::kRandom: return selectRandom(inst.n(), rng);
    case KickStrategy::kGeometric:
      return selectGeometric(inst.n(), cand, rng, opt.geometricK);
    case KickStrategy::kClose: return selectClose(inst, rng, opt.closeBeta);
    case KickStrategy::kRandomWalk:
      return selectRandomWalk(inst.n(), cand, rng, opt.walkLength);
  }
  return selectRandom(inst.n(), rng);
}

std::vector<int> applyKick(Tour& tour, KickStrategy strategy,
                           const CandidateLists& cand, Rng& rng,
                           const KickOptions& opt) {
  if (tour.n() < 8)
    throw std::invalid_argument("applyKick: tour too small for a 4-exchange");

  const std::vector<int> cities =
      selectKickCities(tour.instance(), strategy, cand, rng, opt);

  // The cut edges are (c, next(c)). Ensure the four cut positions are
  // distinct and non-degenerate; collect the dirty cities before mutating.
  std::vector<int> dirty;
  for (int c : cities) {
    dirty.push_back(c);
    dirty.push_back(tour.next(c));
  }

  std::array<int, 4> q{};
  for (std::size_t i = 0; i < 4; ++i) q[i] = tour.pos(cities[i]);
  std::sort(q.begin(), q.end());

  // Rotate so the cut after q[3] becomes the array boundary, then the other
  // three cuts are the interior double-bridge positions.
  const int n = tour.n();
  const int s = (q[3] + 1) % n;
  std::vector<int> rotated;
  rotated.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) rotated.push_back(tour.at((s + i) % n));
  tour.setOrder(std::move(rotated));
  const int p1 = (q[0] - s + n) % n + 1;
  const int p2 = (q[1] - s + n) % n + 1;
  const int p3 = (q[2] - s + n) % n + 1;
  tour.doubleBridge(p1, p2, p3);
  return dirty;
}

std::vector<int> applyKick(BigTour& tour, KickStrategy strategy,
                           const CandidateLists& cand, Rng& rng,
                           const KickOptions& opt) {
  if (tour.n() < 8)
    throw std::invalid_argument("applyKick: tour too small for a 4-exchange");
  const std::vector<int> cities =
      selectKickCities(tour.instance(), strategy, cand, rng, opt);

  std::vector<int> dirty;
  for (int c : cities) {
    dirty.push_back(c);
    dirty.push_back(tour.next(c));
  }

  // Sort the four cut cities in cyclic tour order (anchor = cities[0]).
  std::array<int, 4> q{cities[0], cities[1], cities[2], cities[3]};
  std::sort(q.begin() + 1, q.end(),
            [&](int x, int y) { return tour.between(q[0], x, y); });

  // Segments A=(next(q3)..q0) B=(next(q0)..q1) C=(next(q1)..q2)
  // D=(next(q2)..q3); recombine A C B D — the same double bridge the array
  // implementation performs — via three path reversals:
  //   flip(B C) -> C^r B^r, then un-reverse each block.
  const int b1 = tour.next(q[0]);
  const int b2 = q[1];
  const int c1 = tour.next(q[1]);
  const int c2 = q[2];
  tour.reverseForward(b1, c2);
  if (c1 != c2) tour.reverseForward(c2, c1);
  if (b1 != b2) tour.reverseForward(b2, b1);
  return dirty;
}

}  // namespace distclk
