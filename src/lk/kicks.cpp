#include "lk/kicks.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "tsp/dist_kernel.h"
#include "util/audit.h"

namespace distclk {

const char* toString(KickStrategy s) noexcept {
  switch (s) {
    case KickStrategy::kRandom: return "Random";
    case KickStrategy::kGeometric: return "Geometric";
    case KickStrategy::kClose: return "Close";
    case KickStrategy::kRandomWalk: return "Random-walk";
  }
  return "?";
}

KickStrategy kickStrategyFromString(const std::string& s) {
  if (s == "Random" || s == "random") return KickStrategy::kRandom;
  if (s == "Geometric" || s == "geometric") return KickStrategy::kGeometric;
  if (s == "Close" || s == "close") return KickStrategy::kClose;
  if (s == "Random-walk" || s == "random-walk" || s == "walk")
    return KickStrategy::kRandomWalk;
  throw std::invalid_argument("unknown kick strategy: " + s);
}

namespace {

// The selectors fill a caller-provided buffer instead of returning a fresh
// vector, so the CLK kick loop selects without allocating; each consumes
// the RNG stream exactly as its by-value predecessor did (fallbacks clear
// the buffer and restart uniform selection).

bool pushUnique(std::vector<int>& v, int c) {
  if (std::find(v.begin(), v.end(), c) != v.end()) return false;
  v.push_back(c);
  return true;
}

void selectRandomInto(int n, Rng& rng, std::vector<int>& out) {
  out.clear();
  while (out.size() < 4)
    pushUnique(out, static_cast<int>(rng.below(std::uint64_t(n))));
}

void selectGeometricInto(int n, const CandidateLists& cand, Rng& rng, int k,
                         std::vector<int>& out) {
  const int v = static_cast<int>(rng.below(std::uint64_t(n)));
  const auto nbrs = cand.of(v);
  const int avail = std::min<int>(k, static_cast<int>(nbrs.size()));
  if (avail < 3) {
    selectRandomInto(n, rng, out);
    return;
  }
  out.assign(1, v);
  for (int attempts = 0; out.size() < 4 && attempts < 64; ++attempts)
    pushUnique(out, nbrs[rng.below(std::uint64_t(avail))]);
  if (out.size() < 4) selectRandomInto(n, rng, out);
}

void selectCloseInto(const Instance& inst, Rng& rng, double beta,
                     std::vector<int>& out, std::vector<int>& subset) {
  const DistanceKernel dist(inst);
  const int n = inst.n();
  const int v = static_cast<int>(rng.below(std::uint64_t(n)));
  const int subsetSize =
      std::clamp(static_cast<int>(beta * n), 8, std::max(8, n - 1));
  subset.clear();
  subset.reserve(static_cast<std::size_t>(subsetSize));
  for (int attempts = 0;
       static_cast<int>(subset.size()) < subsetSize && attempts < 4 * subsetSize;
       ++attempts) {
    const int c = static_cast<int>(rng.below(std::uint64_t(n)));
    if (c != v) pushUnique(subset, c);
  }
  if (subset.size() < 6) {
    selectRandomInto(n, rng, out);
    return;
  }
  // Six subset cities nearest to v; pick three of them.
  std::partial_sort(subset.begin(), subset.begin() + 6, subset.end(),
                    [&](int a, int b) {
                      const auto da = dist(v, a), db = dist(v, b);
                      return da != db ? da < db : a < b;
                    });
  out.assign(1, v);
  for (int attempts = 0; out.size() < 4 && attempts < 64; ++attempts)
    pushUnique(out, subset[rng.below(6)]);
  if (out.size() < 4) selectRandomInto(n, rng, out);
}

void selectRandomWalkInto(int n, const CandidateLists& cand, Rng& rng,
                          int walkLength, std::vector<int>& out) {
  const int v = static_cast<int>(rng.below(std::uint64_t(n)));
  out.assign(1, v);
  for (int walk = 0; walk < 3; ++walk) {
    bool placed = false;
    for (int retry = 0; retry < 10 && !placed; ++retry) {
      int cur = v;
      for (int step = 0; step < walkLength; ++step) {
        const auto nbrs = cand.of(cur);
        if (nbrs.empty()) break;
        cur = nbrs[rng.below(nbrs.size())];
      }
      placed = cur != v && pushUnique(out, cur);
    }
    if (!placed) {
      selectRandomInto(n, rng, out);
      return;
    }
  }
}

/// Shared prologue of every kick: select the four cut cities into
/// ws.kickCities and collect the dirty cities (each cut edge's endpoints)
/// before anything mutates.
template <typename TourT>
void prepareKick(TourT& tour, KickStrategy strategy,
                 const CandidateLists& cand, Rng& rng, const KickOptions& opt,
                 LkWorkspace& ws) {
  if (tour.n() < 8)
    throw std::invalid_argument("applyKick: tour too small for a 4-exchange");
  selectKickCitiesInto(tour.instance(), strategy, cand, rng, opt,
                       ws.kickCities, ws.kickScratch);
  ws.dirty.clear();
  for (int c : ws.kickCities) {
    ws.dirty.push_back(c);
    ws.dirty.push_back(tour.next(c));
  }
}

/// Flip-token double bridge shared by applyKickCities(Tour/BigTour): sort
/// the cut cities in cyclic tour order (anchor = cities[0]) and recombine
/// the segments A C B D via three recorded path reversals. Identical tour
/// mutation to the BigTour workspace kick.
template <typename TourT>
void applyKickCitiesImpl(TourT& tour, const std::array<int, 4>& cities,
                         LkWorkspace& ws) {
  if (tour.n() < 8)
    throw std::invalid_argument(
        "applyKickCities: tour too small for a 4-exchange");
  ws.dirty.clear();
  for (int c : cities) {
    ws.dirty.push_back(c);
    ws.dirty.push_back(tour.next(c));
  }

  std::array<int, 4> q = cities;
  std::sort(q.begin() + 1, q.end(),
            [&](int x, int y) { return tour.between(q[0], x, y); });

  const int b1 = tour.next(q[0]);
  const int b2 = q[1];
  const int c1 = tour.next(q[1]);
  const int c2 = q[2];
  auto record = [&](typename TourT::FlipToken token) {
    ws.undoLog.push_back({token.first, token.second});
  };
  record(tour.flipForward(b1, c2));
  if (c1 != c2) record(tour.flipForward(c2, c1));
  if (b1 != b2) record(tour.flipForward(b2, b1));
  ws.kick.active = false;  // the kick lives entirely in the flip log
  DISTCLK_AUDIT_HOOK(ws.auditCheck("applyKickCities"));
}

template <typename TourT>
void rollbackFlips(TourT& tour, LkWorkspace& ws) {
  for (auto it = ws.undoLog.rbegin(); it != ws.undoLog.rend(); ++it)
    tour.unflip({it->a, it->b});
  ws.undoLog.clear();
}

}  // namespace

void selectKickCitiesInto(const Instance& inst, KickStrategy strategy,
                          const CandidateLists& cand, Rng& rng,
                          const KickOptions& opt, std::vector<int>& out,
                          std::vector<int>& scratch) {
  switch (strategy) {
    case KickStrategy::kRandom: selectRandomInto(inst.n(), rng, out); return;
    case KickStrategy::kGeometric:
      selectGeometricInto(inst.n(), cand, rng, opt.geometricK, out);
      return;
    case KickStrategy::kClose:
      selectCloseInto(inst, rng, opt.closeBeta, out, scratch);
      return;
    case KickStrategy::kRandomWalk:
      selectRandomWalkInto(inst.n(), cand, rng, opt.walkLength, out);
      return;
  }
  selectRandomInto(inst.n(), rng, out);
}

std::vector<int> selectKickCities(const Instance& inst, KickStrategy strategy,
                                  const CandidateLists& cand, Rng& rng,
                                  const KickOptions& opt) {
  std::vector<int> out;
  std::vector<int> scratch;
  selectKickCitiesInto(inst, strategy, cand, rng, opt, out, scratch);
  return out;
}

void applyKick(Tour& tour, KickStrategy strategy, const CandidateLists& cand,
               Rng& rng, const KickOptions& opt, LkWorkspace& ws) {
  prepareKick(tour, strategy, cand, rng, opt, ws);
  ws.ensure(tour.n());

  std::array<int, 4> q{};
  for (std::size_t i = 0; i < 4; ++i) q[i] = tour.pos(ws.kickCities[i]);
  std::sort(q.begin(), q.end());

  // Same anchoring as the allocating path: rotate so the cut after q[3]
  // becomes the array boundary, the other three cuts become the interior
  // double-bridge positions — realized as one in-place pass.
  const int n = tour.n();
  const int s = (q[3] + 1) % n;
  const int p1 = (q[0] - s + n) % n + 1;
  const int p2 = (q[1] - s + n) % n + 1;
  const int p3 = (q[2] - s + n) % n + 1;
  const std::int64_t delta = tour.kickDoubleBridge(s, p1, p2, p3,
                                                   ws.tourScratch);
  ws.kick = {s, p1, p2, p3, delta, true};
  DISTCLK_AUDIT_HOOK(ws.auditCheck("applyKick(Tour)"));
}

void applyKick(BigTour& tour, KickStrategy strategy,
               const CandidateLists& cand, Rng& rng, const KickOptions& opt,
               LkWorkspace& ws) {
  // Selection first (same throw-before-RNG order as prepareKick), then the
  // shared flip-token double bridge; rollbackKick rewinds the recorded
  // tokens LIFO with the repair flips.
  if (tour.n() < 8)
    throw std::invalid_argument("applyKick: tour too small for a 4-exchange");
  selectKickCitiesInto(tour.instance(), strategy, cand, rng, opt,
                       ws.kickCities, ws.kickScratch);
  applyKickCitiesImpl(
      tour,
      {ws.kickCities[0], ws.kickCities[1], ws.kickCities[2], ws.kickCities[3]},
      ws);
}

void applyKickCities(Tour& tour, const std::array<int, 4>& cities,
                     LkWorkspace& ws) {
  applyKickCitiesImpl(tour, cities, ws);
}

void applyKickCities(BigTour& tour, const std::array<int, 4>& cities,
                     LkWorkspace& ws) {
  applyKickCitiesImpl(tour, cities, ws);
}

void commitKick(LkWorkspace& ws) {
  ws.resetUndo();
  DISTCLK_AUDIT_HOOK(ws.auditUndoEmpty("commitKick"));
}

void rollbackKick(Tour& tour, LkWorkspace& ws) {
  rollbackFlips(tour, ws);
  if (ws.kick.active) {
    tour.undoKickDoubleBridge(ws.kick.s, ws.kick.p1, ws.kick.p2, ws.kick.p3,
                              ws.kick.delta, ws.tourScratch);
    ws.kick.active = false;
  }
  DISTCLK_AUDIT_HOOK(ws.auditUndoEmpty("rollbackKick(Tour)"));
}

void rollbackKick(BigTour& tour, LkWorkspace& ws) {
  rollbackFlips(tour, ws);
  ws.kick.active = false;
  DISTCLK_AUDIT_HOOK(ws.auditUndoEmpty("rollbackKick(BigTour)"));
}

std::vector<int> applyKick(Tour& tour, KickStrategy strategy,
                           const CandidateLists& cand, Rng& rng,
                           const KickOptions& opt) {
  if (tour.n() < 8)
    throw std::invalid_argument("applyKick: tour too small for a 4-exchange");

  const std::vector<int> cities =
      selectKickCities(tour.instance(), strategy, cand, rng, opt);

  // The cut edges are (c, next(c)). Ensure the four cut positions are
  // distinct and non-degenerate; collect the dirty cities before mutating.
  std::vector<int> dirty;
  for (int c : cities) {
    dirty.push_back(c);
    dirty.push_back(tour.next(c));
  }

  std::array<int, 4> q{};
  for (std::size_t i = 0; i < 4; ++i) q[i] = tour.pos(cities[i]);
  std::sort(q.begin(), q.end());

  // Rotate so the cut after q[3] becomes the array boundary, then the other
  // three cuts are the interior double-bridge positions.
  const int n = tour.n();
  const int s = (q[3] + 1) % n;
  std::vector<int> rotated;
  rotated.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) rotated.push_back(tour.at((s + i) % n));
  tour.setOrder(std::move(rotated));
  const int p1 = (q[0] - s + n) % n + 1;
  const int p2 = (q[1] - s + n) % n + 1;
  const int p3 = (q[2] - s + n) % n + 1;
  tour.doubleBridge(p1, p2, p3);
  return dirty;
}

std::vector<int> applyKick(BigTour& tour, KickStrategy strategy,
                           const CandidateLists& cand, Rng& rng,
                           const KickOptions& opt) {
  if (tour.n() < 8)
    throw std::invalid_argument("applyKick: tour too small for a 4-exchange");
  const std::vector<int> cities =
      selectKickCities(tour.instance(), strategy, cand, rng, opt);

  std::vector<int> dirty;
  for (int c : cities) {
    dirty.push_back(c);
    dirty.push_back(tour.next(c));
  }

  // Sort the four cut cities in cyclic tour order (anchor = cities[0]).
  std::array<int, 4> q{cities[0], cities[1], cities[2], cities[3]};
  std::sort(q.begin() + 1, q.end(),
            [&](int x, int y) { return tour.between(q[0], x, y); });

  // Segments A=(next(q3)..q0) B=(next(q0)..q1) C=(next(q1)..q2)
  // D=(next(q2)..q3); recombine A C B D — the same double bridge the array
  // implementation performs — via three path reversals:
  //   flip(B C) -> C^r B^r, then un-reverse each block.
  const int b1 = tour.next(q[0]);
  const int b2 = q[1];
  const int c1 = tour.next(q[1]);
  const int c2 = q[2];
  tour.reverseForward(b1, c2);
  if (c1 != c2) tour.reverseForward(c2, c1);
  if (b1 != b2) tour.reverseForward(b2, b1);
  return dirty;
}

}  // namespace distclk
