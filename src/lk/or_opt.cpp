#include "lk/or_opt.h"

#include <vector>

#include "tsp/dist_kernel.h"

namespace distclk {

namespace {

/// Tries relocating the segment starting at city s (lengths 1..maxSegLen)
/// behind a candidate neighbor of either segment end. First improvement.
/// The (anchor, c) edge reads the list annotation; every other edge goes
/// through the metric kernel.
std::int64_t improveSegment(Tour& tour, const CandidateLists& cand,
                            const DistanceKernel& dist, int s, int maxSegLen,
                            std::vector<int>& touched) {
  int segEnd = s;
  for (int len = 1; len <= maxSegLen; ++len, segEnd = tour.next(segEnd)) {
    if (len >= tour.n() - 2) break;
    const int before = tour.prev(s);
    const int after = tour.next(segEnd);
    const std::int64_t removed =
        dist(before, s) + dist(segEnd, after) - dist(before, after);
    if (removed <= 0) continue;  // closing the gap already costs more
    // Insertion after candidate c: new edges (c, head) + (tail, next(c)).
    for (int endSel = 0; endSel < 2; ++endSel) {
      const int anchor = endSel == 0 ? s : segEnd;
      const auto cands = cand.of(anchor);
      const auto candDist = cand.distOf(anchor);
      for (std::size_t i = 0; i < cands.size(); ++i) {
        const int c = cands[i];
        // c must be outside the segment [s..segEnd].
        bool inside = false;
        for (int x = s;; x = tour.next(x)) {
          if (x == c) {
            inside = true;
            break;
          }
          if (x == segEnd) break;
        }
        if (inside || c == before) continue;
        const int cNext = tour.next(c);
        if (cNext == s) continue;
        const std::int64_t dCNext = dist(c, cNext);
        for (int rev = 0; rev < 2; ++rev) {
          const int head = rev ? segEnd : s;
          const int tail = rev ? s : segEnd;
          const std::int64_t dCHead =
              head == anchor ? candDist[i] : dist(c, head);
          const std::int64_t added = dCHead + dist(tail, cNext) - dCNext;
          if (added < removed) {
            tour.orOptMove(s, len, c, rev != 0);
            touched.assign({s, segEnd, before, after, c, cNext});
            return added - removed;  // negative delta
          }
        }
      }
    }
  }
  return 0;
}

}  // namespace

std::int64_t orOptOptimize(Tour& tour, const CandidateLists& cand,
                           int maxSegLen) {
  // Full sweeps until a whole pass finds nothing: a changed edge can enable
  // relocations anchored far from its endpoints (any segment overlapping
  // it, any anchor whose candidate insertion edge it is), so a don't-look
  // queue would terminate early. Or-opt is not on the CLK hot path, and the
  // sweep converges in a handful of passes.
  const DistanceKernel dist(tour.instance());
  const int n = tour.n();
  std::int64_t total = 0;
  std::vector<int> touched;
  bool improvedInPass = true;
  while (improvedInPass) {
    improvedInPass = false;
    for (int c = 0; c < n; ++c) {
      const std::int64_t delta =
          improveSegment(tour, cand, dist, c, maxSegLen, touched);
      if (delta < 0) {
        total -= delta;
        improvedInPass = true;
      }
    }
  }
  return total;
}

}  // namespace distclk
