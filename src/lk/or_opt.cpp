#include "lk/or_opt.h"

#include <vector>

#include "lk/lk_workspace.h"
#include "tsp/dist_kernel.h"

namespace distclk {

namespace {

/// Tries relocating the segment starting at city s (lengths 1..maxSegLen)
/// behind a candidate neighbor of either segment end. First improvement.
/// The (anchor, c) edge reads the list annotation; every other edge goes
/// through the metric kernel. Membership of a candidate in the segment is
/// a position comparison (the segment occupies positions pos(s)..pos(s)+
/// len-1 cyclically), not a walk along it.
std::int64_t improveSegment(Tour& tour, const CandidateLists& cand,
                            const DistanceKernel& dist, int s, int maxSegLen,
                            std::vector<int>& touched) {
  const int n = tour.n();
  const int pS = tour.pos(s);
  int segEnd = s;
  for (int len = 1; len <= maxSegLen; ++len, segEnd = tour.next(segEnd)) {
    if (len >= n - 2) break;
    const int before = tour.prev(s);
    const int after = tour.next(segEnd);
    const std::int64_t removed =
        dist(before, s) + dist(segEnd, after) - dist(before, after);
    if (removed <= 0) continue;  // closing the gap already costs more
    // Insertion after candidate c: new edges (c, head) + (tail, next(c)).
    // A one-city segment has s == segEnd, so the second anchor and the
    // reversed orientation would re-probe the exact same insertions — skip
    // the duplicates (same first-improvement, half the scan).
    const int endSelMax = len == 1 ? 1 : 2;
    const int revMax = len == 1 ? 1 : 2;
    for (int endSel = 0; endSel < endSelMax; ++endSel) {
      const int anchor = endSel == 0 ? s : segEnd;
      const auto cands = cand.of(anchor);
      const auto candDist = cand.distOf(anchor);
      for (std::size_t i = 0; i < cands.size(); ++i) {
        const int c = cands[i];
        // c must be outside the segment [s..segEnd].
        int offset = tour.pos(c) - pS;
        if (offset < 0) offset += n;
        if (offset < len || c == before) continue;
        const int cNext = tour.next(c);
        if (cNext == s) continue;
        const std::int64_t dCNext = dist(c, cNext);
        for (int rev = 0; rev < revMax; ++rev) {
          const int head = rev ? segEnd : s;
          const int tail = rev ? s : segEnd;
          const std::int64_t dCHead =
              head == anchor ? candDist[i] : dist(c, head);
          const std::int64_t added = dCHead + dist(tail, cNext) - dCNext;
          if (added < removed) {
            // Touched = every city whose successor edge the move can change:
            // the whole segment (a reversed move flips its interior edges),
            // both splice points, and the closed gap.
            touched.clear();
            for (int cur = s; cur != after; cur = tour.next(cur))
              touched.push_back(cur);
            touched.insert(touched.end(), {before, after, c, cNext});
            tour.orOptMove(s, len, c, rev != 0);
            return added - removed;  // negative delta
          }
        }
      }
    }
  }
  return 0;
}

}  // namespace

std::int64_t orOptOptimize(Tour& tour, const CandidateLists& cand,
                           int maxSegLen, OrOptStyle style) {
  const DistanceKernel dist(tour.instance());
  const int n = tour.n();
  std::int64_t total = 0;
  std::vector<int> touched;

  if (style == OrOptStyle::kDontLook) {
    // Reverse candidate adjacency (CSR): rcand(t) = anchors a with
    // t ∈ cand(a). An anchor's probe reads the successor edge of each of
    // its candidates, so when t's successor edge changes the anchors to
    // requeue are exactly rcand(t) — the lists are asymmetric, so this is
    // not cand(t).
    std::vector<int> rstart(std::size_t(n) + 1, 0);
    for (int a = 0; a < n; ++a)
      for (int t : cand.of(a)) ++rstart[std::size_t(t) + 1];
    for (int i = 0; i < n; ++i)
      rstart[std::size_t(i) + 1] += rstart[std::size_t(i)];
    std::vector<int> rdata(static_cast<std::size_t>(rstart[std::size_t(n)]));
    std::vector<int> fill(rstart.begin(), rstart.end() - 1);
    for (int a = 0; a < n; ++a)
      for (int t : cand.of(a))
        rdata[std::size_t(fill[std::size_t(t)]++)] = a;

    // Don't-look phase, seeded in the sweep's city-id order. A changed
    // successor edge of t re-enables the anchors probing it (rcand(t)) and
    // any segment whose window overlaps t — segments are anchored at their
    // first city, so that is t plus up to maxSegLen-1 tour predecessors.
    DontLookQueue dlb;
    dlb.reset(n);
    for (int c = 0; c < n; ++c) dlb.push(c);
    while (!dlb.empty()) {
      const int s = dlb.pop();
      const std::int64_t delta =
          improveSegment(tour, cand, dist, s, maxSegLen, touched);
      if (delta < 0) {
        total -= delta;
        for (int c : touched) {
          dlb.push(c);
          int p = c;
          for (int k = 1; k < maxSegLen; ++k) {
            p = tour.prev(p);
            dlb.push(p);
          }
          for (int i = rstart[std::size_t(c)]; i < rstart[std::size_t(c) + 1];
               ++i)
            dlb.push(rdata[std::size_t(i)]);
        }
        dlb.push(s);
      }
    }
  }

  // Confirming sweeps (the whole algorithm in kFullSweep style): with
  // asymmetric candidate lists the queue cannot see every enabled anchor
  // (c ∈ cand(anchor) does not imply anchor ∈ cand(c)), so full passes
  // until one finds nothing certify the same sweep-local optimum the
  // pre-queue implementation guaranteed. After a drained queue this is
  // usually a single O(n) scan of non-improving probes.
  bool improvedInPass = true;
  while (improvedInPass) {
    improvedInPass = false;
    for (int c = 0; c < n; ++c) {
      const std::int64_t delta =
          improveSegment(tour, cand, dist, c, maxSegLen, touched);
      if (delta < 0) {
        total -= delta;
        improvedInPass = true;
      }
    }
  }
  return total;
}

}  // namespace distclk
