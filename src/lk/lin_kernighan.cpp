#include "lk/lin_kernighan.h"

#include <algorithm>
#include <type_traits>
#include <utility>

#include "tsp/dist_kernel.h"
#include "util/audit.h"

namespace distclk {

namespace {

/// Hot-path distance provider: metric-specialized kernel for ad-hoc edges,
/// the CandidateLists annotation for candidate edges (no evaluation at all
/// on the scan that dominates LK work).
struct KernelDistances {
  DistanceKernel dist;
  const CandidateLists* cand;
  KernelDistances(const Instance& inst, const CandidateLists& c) noexcept
      : dist(inst), cand(&c) {}
  std::int64_t operator()(int i, int j) const noexcept { return dist(i, j); }
  std::int64_t candDist(int city, std::size_t idx, int) const noexcept {
    return cand->distOf(city)[idx];
  }
};

/// Reference provider: the Instance::dist() switch, candidate distances
/// recomputed per visit — the pre-kernel behaviour, kept for benchmarks and
/// bit-identity checks.
struct ReferenceDistances {
  const Instance* inst;
  ReferenceDistances(const Instance& i, const CandidateLists&) noexcept
      : inst(&i) {}
  std::int64_t operator()(int i, int j) const noexcept {
    return inst->dist(i, j);
  }
  std::int64_t candDist(int city, std::size_t, int other) const noexcept {
    return inst->dist(city, other);
  }
};

/// One LK search over a tour: drives a single improveCity() chain at a
/// time. Templated over the tour representation and the distance provider;
/// TourT must provide next/prev/length/instance and the city-addressed
/// reverseForward(a, b) whose inverse is reverseForward(b, a). All scratch
/// (added-edge list, touched list, optional undo log) lives in the caller's
/// LkWorkspace so repeated searches never re-allocate.
template <typename TourT, typename Dist>
class LkSearch {
 public:
  LkSearch(TourT& tour, const CandidateLists& cand, const LkOptions& opt,
           LkWorkspace& ws)
      : tour_(tour), cand_(cand), opt_(opt), dist_(tour.instance(), cand),
        ws_(ws) {}

  LkStats& stats() noexcept { return stats_; }
  const std::vector<int>& touched() const noexcept { return ws_.touched; }

  /// Attempts an improving move chain anchored at t1 (both directions).
  /// On success the tour is already updated and touched() lists the cities
  /// incident to changed edges.
  bool improveCity(int t1) {
    for (int dir : {+1, -1}) {
      t1_ = t1;
      dir_ = dir;
      startLen_ = tour_.length();
      flipBudget_ = opt_.maxFlipsPerChain;
      const int t2 = dir > 0 ? tour_.next(t1) : tour_.prev(t1);
      ws_.addedEdges.clear();
      ws_.touched.clear();
      if (chain(0, t2, dist_(t1, t2))) {
        ws_.touched.push_back(t1);
        ws_.touched.push_back(t2);
        ++stats_.chains;
        stats_.improvement += startLen_ - tour_.length();
        return true;
      }
    }
    return false;
  }

 private:
  int breadthAt(int level) const noexcept {
    if (level == 0) return opt_.breadth0;
    if (level == 1) return opt_.breadth1;
    return opt_.breadthDeep;
  }

  bool edgeWasAdded(int a, int b) const noexcept {
    for (const auto& [x, y] : ws_.addedEdges)
      if ((x == a && y == b) || (x == b && y == a)) return true;
    return false;
  }

  /// Applies the level flip: removes (t1, t2cur) and (t4, t3), adds
  /// (t1, t4) and (t2cur, t3). Returns the representation's undo token; a
  /// recording workspace also logs it for the CLK driver's kick rollback.
  typename TourT::FlipToken applyFlip(int t2cur, int t4) {
    ++stats_.flips;
    const typename TourT::FlipToken token = dir_ > 0
                                                ? tour_.flipForward(t2cur, t4)
                                                : tour_.flipForward(t4, t2cur);
    if (ws_.recording)
      ws_.undoLog.push_back({token.first, token.second});
    return token;
  }

  void undoFlip(const typename TourT::FlipToken& token) {
    tour_.unflip(token);
    ++stats_.undoneFlips;
    // Chain rewinding is strictly LIFO, so the rewound flip is always the
    // most recently logged one.
    if (ws_.recording) ws_.undoLog.pop_back();
  }

  // `gain` is the LK sequential gain: total removed-edge weight minus
  // added-edge weight of the open chain; a continuation via t3 is only
  // admissible while gain - d(t2cur, t3) stays positive.
  bool chain(int level, int t2cur, std::int64_t gain) {
    const int breadth = breadthAt(level);
    int tried = 0;
    const auto cands = cand_.of(t2cur);
    for (std::size_t idx = 0; idx < cands.size(); ++idx) {
      const int t3 = cands[idx];
      if (flipBudget_ <= 0) break;  // chain search budget exhausted
      const std::int64_t d23 = dist_.candDist(t2cur, idx, t3);
      if (d23 >= gain) {
        if (opt_.candidatesDistanceSorted) break;
        continue;
      }
      if (t3 == t1_) continue;
      const int t4 = dir_ > 0 ? tour_.prev(t3) : tour_.next(t3);
      if (t4 == t2cur) continue;       // degenerate flip
      if (edgeWasAdded(t3, t4)) continue;  // LK rule: x_i not in {y_j}

      const auto undoToken = applyFlip(t2cur, t4);
      --flipBudget_;
      ws_.addedEdges.emplace_back(t2cur, t3);
      // The physical tour is now the chain closed at (t1, t4).
      if (tour_.length() < startLen_ ||
          (level + 1 < opt_.maxDepth &&
           chain(level + 1, t4, gain - d23 + dist_(t3, t4)))) {
        ws_.touched.push_back(t2cur);
        ws_.touched.push_back(t3);
        ws_.touched.push_back(t4);
        return true;
      }
      ws_.addedEdges.pop_back();
      undoFlip(undoToken);
      if (++tried >= breadth) break;
    }
    return false;
  }

  TourT& tour_;
  const CandidateLists& cand_;
  const LkOptions& opt_;
  Dist dist_;
  LkStats stats_;
  LkWorkspace& ws_;
  int t1_ = -1;
  int dir_ = +1;
  std::int64_t startLen_ = 0;
  std::int64_t flipBudget_ = 0;
};

template <typename Dist, typename TourT>
LkStats runQueue(TourT& tour, const CandidateLists& cand,
                 std::span<const int> seed, const LkOptions& opt,
                 LkWorkspace& ws) {
  // The seed span is fully consumed into the epoch-stamped queue before the
  // first mutation, so callers may pass views into tour state or into the
  // workspace's own dirty buffer.
  ws.dlb.reset(tour.n());
  for (int c : seed) ws.dlb.push(c);

  LkSearch<TourT, Dist> search(tour, cand, opt, ws);
  while (!ws.dlb.empty()) {
    const int t1 = ws.dlb.pop();
    if (search.improveCity(t1)) {
      // Changed-edge endpoints plus their candidate neighbors (a changed
      // partner edge can enable moves for cities whose own edges did not
      // change), plus t1 itself for further chains.
      for (int c : search.touched()) {
        ws.dlb.push(c);
        for (int nb : cand.of(c)) ws.dlb.push(nb);
      }
      ws.dlb.push(t1);
      DISTCLK_AUDIT_HOOK(ws.auditCheck("lk::runQueue"));
    }
  }
  return search.stats();
}

// The distance-provider choice is resolved once per optimize call, outside
// every loop; the search itself is monomorphic over the provider.
template <typename TourT>
LkStats dispatchQueue(TourT& tour, const CandidateLists& cand,
                      std::span<const int> seed, const LkOptions& opt,
                      LkWorkspace& ws) {
  if (opt.referenceDistances)
    return runQueue<ReferenceDistances>(tour, cand, seed, opt, ws);
  return runQueue<KernelDistances>(tour, cand, seed, opt, ws);
}

template <typename TourT>
LkStats optimizeAll(TourT& tour, const CandidateLists& cand,
                    const LkOptions& opt, LkWorkspace& ws) {
  if constexpr (std::is_same_v<TourT, Tour>) {
    // The order() span stays valid through the run (mutations never resize
    // the array) and is consumed before the first of them; no copy needed.
    return dispatchQueue(tour, cand, tour.order(), opt, ws);
  } else {
    const auto all = tour.orderVector();
    return dispatchQueue(tour, cand, all, opt, ws);
  }
}

}  // namespace

LkStats linKernighanOptimize(Tour& tour, const CandidateLists& cand,
                             const LkOptions& opt) {
  LkWorkspace ws;
  return optimizeAll(tour, cand, opt, ws);
}

LkStats linKernighanOptimize(Tour& tour, const CandidateLists& cand,
                             std::span<const int> dirty,
                             const LkOptions& opt) {
  LkWorkspace ws;
  return dispatchQueue(tour, cand, dirty, opt, ws);
}

LkStats linKernighanOptimize(BigTour& tour, const CandidateLists& cand,
                             const LkOptions& opt) {
  LkWorkspace ws;
  return optimizeAll(tour, cand, opt, ws);
}

LkStats linKernighanOptimize(BigTour& tour, const CandidateLists& cand,
                             std::span<const int> dirty,
                             const LkOptions& opt) {
  LkWorkspace ws;
  return dispatchQueue(tour, cand, dirty, opt, ws);
}

LkStats linKernighanOptimize(Tour& tour, const CandidateLists& cand,
                             const LkOptions& opt, LkWorkspace& ws) {
  return optimizeAll(tour, cand, opt, ws);
}

LkStats linKernighanOptimize(Tour& tour, const CandidateLists& cand,
                             std::span<const int> dirty, const LkOptions& opt,
                             LkWorkspace& ws) {
  return dispatchQueue(tour, cand, dirty, opt, ws);
}

LkStats linKernighanOptimize(BigTour& tour, const CandidateLists& cand,
                             const LkOptions& opt, LkWorkspace& ws) {
  return optimizeAll(tour, cand, opt, ws);
}

LkStats linKernighanOptimize(BigTour& tour, const CandidateLists& cand,
                             std::span<const int> dirty, const LkOptions& opt,
                             LkWorkspace& ws) {
  return dispatchQueue(tour, cand, dirty, opt, ws);
}

}  // namespace distclk
