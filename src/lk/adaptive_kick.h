// Adaptive kick selection: an extension beyond the paper. §4.1 shows the
// best kick strategy depends on the instance (Random wins small instances,
// Random-walk large ones, pla33810 flips the order again) — so instead of
// fixing one, learn online which kick pays off: an epsilon-greedy bandit
// over the four ABCC strategies with recency-weighted rewards (the
// improvement each kick-repair cycle achieves).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "lk/chained_lk.h"

namespace distclk {

struct AdaptiveClkOptions {
  KickOptions kickOpt;
  LkOptions lk;
  std::int64_t maxKicks = std::numeric_limits<std::int64_t>::max();
  double timeLimitSeconds = -1.0;
  std::int64_t targetLength = -1;
  double epsilon = 0.15;  ///< exploration probability
  double decay = 0.9;     ///< recency weighting of per-strategy rewards
};

struct AdaptiveClkResult {
  std::int64_t length = 0;
  std::int64_t kicks = 0;
  std::int64_t improvements = 0;
  double seconds = 0.0;
  bool hitTarget = false;
  /// Kick-cycle counts and decayed mean rewards per strategy, indexed by
  /// static_cast<int>(KickStrategy).
  std::array<std::int64_t, 4> uses{};
  std::array<double, 4> rewards{};
};

/// Chained LK whose kick strategy is chosen per kick by the bandit.
AdaptiveClkResult adaptiveChainedLk(Tour& tour, const CandidateLists& cand,
                                    Rng& rng,
                                    const AdaptiveClkOptions& opt = {},
                                    const AnytimeCallback& onImprove = {});

}  // namespace distclk
