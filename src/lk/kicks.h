// Double-bridge kick strategies of ABCC's Chained Lin-Kernighan (§2.1 of
// the paper): Random, Geometric, Close and Random-walk differ only in how
// the four "relevant cities" whose successor edges get cut are selected.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "lk/lk_workspace.h"
#include "tsp/big_tour.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"
#include "util/rng.h"

namespace distclk {

enum class KickStrategy {
  kRandom,      ///< four cities uniformly at random (strong, degenerating)
  kGeometric,   ///< three cities from the k nearest neighbors of a random v
  kClose,       ///< nearest-in-random-subset rule with parameter beta
  kRandomWalk,  ///< endpoints of three random walks on the candidate graph
};

const char* toString(KickStrategy s) noexcept;
KickStrategy kickStrategyFromString(const std::string& s);

struct KickOptions {
  int geometricK = 10;    ///< neighborhood size for Geometric
  double closeBeta = 0.10;  ///< subset fraction for Close
  int walkLength = 8;     ///< steps per walk for Random-walk
};

/// Picks the four "relevant cities" for a kick (strategy-dependent, tour
/// independent). Falls back to uniform selection when a strategy cannot
/// produce four distinct cities.
std::vector<int> selectKickCities(const Instance& inst, KickStrategy strategy,
                                  const CandidateLists& cand, Rng& rng,
                                  const KickOptions& opt = {});

/// Applies one double-bridge move whose four cut edges are the successor
/// edges of strategy-selected cities. Returns the cities incident to the
/// changed edges (seed these into LK's don't-look queue to re-optimize
/// locally).
std::vector<int> applyKick(Tour& tour, KickStrategy strategy,
                           const CandidateLists& cand, Rng& rng,
                           const KickOptions& opt = {});

/// The same kick on the segment-list tour, realized as three O(sqrt n)
/// path reversals instead of an O(n) array rebuild.
std::vector<int> applyKick(BigTour& tour, KickStrategy strategy,
                           const CandidateLists& cand, Rng& rng,
                           const KickOptions& opt = {});

/// Allocation-free selection: fills `out` with the four relevant cities,
/// consuming the RNG stream exactly as selectKickCities does. `scratch` is
/// strategy-local working memory (the Close subset).
void selectKickCitiesInto(const Instance& inst, KickStrategy strategy,
                          const CandidateLists& cand, Rng& rng,
                          const KickOptions& opt, std::vector<int>& out,
                          std::vector<int>& scratch);

/// Workspace kicks: identical tour mutation and RNG consumption as the
/// vector-returning overloads, but the dirty cities land in ws.dirty and
/// the undo information (an ArrayKick record for Tour, flip tokens in
/// ws.undoLog for BigTour) is retained so the CLK driver can mutate the
/// champion in place and roll a losing kick back in O(changed). Callers
/// start a kick cycle with ws.resetUndo() and end it with commitKick() or
/// rollbackKick().
void applyKick(Tour& tour, KickStrategy strategy, const CandidateLists& cand,
               Rng& rng, const KickOptions& opt, LkWorkspace& ws);
void applyKick(BigTour& tour, KickStrategy strategy,
               const CandidateLists& cand, Rng& rng, const KickOptions& opt,
               LkWorkspace& ws);

/// Kick with caller-supplied cut cities, realized rotation-free as (up to)
/// three recorded path reversals — the construction the BigTour workspace
/// kick uses — on either tour representation. Because the whole kick lives
/// in ws.undoLog as flip tokens, a committed kick+repair can be replayed on
/// another tour in the same state from its token stream alone; this is the
/// primitive of the speculative engine (the coordinator pre-draws the
/// selections, workers apply them). Consumes no RNG; fills ws.dirty with
/// the cut-edge endpoints. The BigTour applyKick above is selection +
/// applyKickCities; the array Tour's applyKick keeps its rotation-based
/// construction (a different — equally legitimate — double bridge on the
/// same cities; see tests/test_big_tour.cpp).
void applyKickCities(Tour& tour, const std::array<int, 4>& cities,
                     LkWorkspace& ws);
void applyKickCities(BigTour& tour, const std::array<int, 4>& cities,
                     LkWorkspace& ws);

/// Accepts the kicked-and-repaired tour: O(1), just drops the undo state.
void commitKick(LkWorkspace& ws);

/// Restores the exact pre-kick tour: rewinds the logged repair flips LIFO,
/// then inverts the kick itself. Cost proportional to the changed region.
void rollbackKick(Tour& tour, LkWorkspace& ws);
void rollbackKick(BigTour& tour, LkWorkspace& ws);

}  // namespace distclk
