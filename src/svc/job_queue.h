// Priority/deadline job queue with cancellation and bounded depth
// (backpressure). Ordering: strict priority (higher first), FIFO within a
// priority level — implemented as an ordered map keyed by
// (-priority, submission seq), so iteration order is deterministic and
// independent of allocator behavior. Blocking pop; close() drains.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "svc/job.h"
#include "util/sync.h"

namespace distclk::svc {

/// A submitted job plus the pool-clock bookkeeping the SLO metrics need.
struct QueuedJob {
  JobSpec spec;
  JobSink* sink = nullptr;
  std::int64_t seq = 0;           ///< pool-wide submission counter
  double submitSeconds = 0.0;     ///< pool clock at submit
  double deadlineAt = std::numeric_limits<double>::infinity();
};

class JobQueue {
 public:
  /// maxDepth == 0 means unbounded.
  explicit JobQueue(std::size_t maxDepth = 0);

  /// False when the queue is closed or full (backpressure: the caller owns
  /// the rejected job and should report it, not block).
  bool submit(QueuedJob job);

  /// Blocks until a job is available or the queue is closed and empty
  /// (then returns nullopt). Returns the highest-priority, oldest job.
  std::optional<QueuedJob> pop();

  /// Removes a still-queued job by id; returns it so the caller can emit
  /// its kCancelled result. nullopt when no such job is queued (it may be
  /// running or already finished — the pool handles those separately).
  std::optional<QueuedJob> cancel(const std::string& id);

  /// Removes and returns every queued job whose deadline is <= now. The
  /// pool's deadline monitor expires these without occupying a worker.
  std::vector<QueuedJob> takeExpired(double now);

  /// No further submissions; pending jobs still drain through pop().
  void close();

  std::size_t depth() const;
  bool closed() const;

 private:
  struct Key {
    int negPriority = 0;
    std::int64_t seq = 0;
    bool operator<(const Key& o) const {
      if (negPriority != o.negPriority) return negPriority < o.negPriority;
      return seq < o.seq;
    }
  };

  mutable sync::Mutex mu_{sync::LockRank::kJobQueue, "JobQueue.mu"};
  sync::CondVar cv_;
  std::map<Key, QueuedJob> queue_ DISTCLK_GUARDED_BY(mu_);
  std::size_t maxDepth_;  // immutable after construction
  bool closed_ DISTCLK_GUARDED_BY(mu_) = false;
};

}  // namespace distclk::svc
