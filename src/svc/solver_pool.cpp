#include "svc/solver_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/timer.h"

namespace distclk::svc {

namespace {

std::int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SvcMetrics SvcMetrics::attach(obs::MetricsRegistry& registry) {
  SvcMetrics m;
  m.registry = &registry;
  m.jobsSubmitted = registry.counter("svc.jobs_submitted");
  m.jobsRejected = registry.counter("svc.jobs_rejected");
  m.jobsCompleted = registry.counter("svc.jobs_completed");
  m.jobsCancelled = registry.counter("svc.jobs_cancelled");
  m.jobsExpired = registry.counter("svc.jobs_expired");
  m.jobsFailed = registry.counter("svc.jobs_failed");
  m.queueDepth = registry.gauge("svc.queue_depth");
  m.jobsRunning = registry.gauge("svc.jobs_running");
  m.cacheHits = registry.counter("svc.context_cache_hits");
  m.cacheMisses = registry.counter("svc.context_cache_misses");
  m.queueSeconds = registry.histogram(
      "svc.job_queue_seconds",
      obs::MetricsRegistry::exponentialBounds(1e-3, 4.0, 10));
  m.setupSeconds = registry.histogram(
      "svc.job_setup_seconds",
      obs::MetricsRegistry::exponentialBounds(1e-4, 4.0, 10));
  m.solveSeconds = registry.histogram(
      "svc.job_solve_seconds",
      obs::MetricsRegistry::exponentialBounds(1e-2, 4.0, 10));
  m.latencySeconds = registry.histogram(
      "svc.job_latency_seconds",
      obs::MetricsRegistry::exponentialBounds(1e-2, 4.0, 10));
  // Preprocessing phase decomposition, observed only on cache misses (the
  // jobs that actually run InstanceContext::build).
  m.prepKdtreeMs = registry.histogram(
      "svc.prep_kdtree_ms",
      obs::MetricsRegistry::exponentialBounds(1e-1, 4.0, 10));
  m.prepCandMs = registry.histogram(
      "svc.prep_cand_ms",
      obs::MetricsRegistry::exponentialBounds(1e-1, 4.0, 10));
  m.prepConstructMs = registry.histogram(
      "svc.prep_construct_ms",
      obs::MetricsRegistry::exponentialBounds(1e-1, 4.0, 10));
  return m;
}

SolverPool::SolverPool(SolverPoolOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.contextCacheCapacity),
      queue_(opts_.maxQueueDepth),
      startNs_(steadyNowNs()) {
  if (opts_.metrics != nullptr) metrics_ = SvcMetrics::attach(*opts_.metrics);
  const int workers = opts_.workers < 1 ? 1 : opts_.workers;
  workers_.reserve(std::size_t(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { workerLoop(); });
  monitor_ = std::thread([this] { monitorLoop(); });
}

SolverPool::~SolverPool() { shutdown(); }

double SolverPool::nowSeconds() const {
  return double(steadyNowNs() - startNs_) * 1e-9;
}

void SolverPool::recordGauges() {
  if (metrics_.registry == nullptr) return;
  metrics_.registry->set(metrics_.queueDepth, double(queue_.depth()));
  std::size_t runningCount = 0;
  {
    const sync::MutexLock lock(mu_);
    runningCount = running_.size();
  }
  metrics_.registry->set(metrics_.jobsRunning, double(runningCount));
}

bool SolverPool::submit(JobSpec spec, JobSink* sink) {
  if (spec.instance == nullptr)
    throw std::invalid_argument("SolverPool: job has no instance");
  if (spec.id.empty())
    throw std::invalid_argument("SolverPool: job id must be non-empty");

  QueuedJob job;
  job.sink = sink;
  job.submitSeconds = nowSeconds();
  job.deadlineAt = spec.deadlineSeconds > 0.0
                       ? job.submitSeconds + spec.deadlineSeconds
                       : std::numeric_limits<double>::infinity();
  bool rejected = false;
  {
    const sync::MutexLock lock(mu_);
    if (shutdown_) {
      rejected = true;
    } else {
      if (!known_.emplace(spec.id, 1).second)
        throw std::invalid_argument("SolverPool: duplicate job id '" + spec.id +
                                    "'");
      job.seq = ++seq_;
      ++inFlight_;
    }
  }
  if (rejected) {
    // Metric recording stays outside mu_: the pool lock must never nest
    // into the registry/shard locks.
    if (metrics_.registry != nullptr)
      metrics_.registry->add(metrics_.jobsRejected);
    return false;
  }
  job.spec = std::move(spec);
  const std::string id = job.spec.id;

  if (!queue_.submit(std::move(job))) {
    // Backpressure: undo the bookkeeping so the id can be resubmitted.
    bool nowIdle = false;
    {
      const sync::MutexLock lock(mu_);
      known_.erase(id);
      --inFlight_;
      nowIdle = inFlight_ == 0;
    }
    if (nowIdle) idle_.notifyAll();
    if (metrics_.registry != nullptr)
      metrics_.registry->add(metrics_.jobsRejected);
    return false;
  }
  if (metrics_.registry != nullptr)
    metrics_.registry->add(metrics_.jobsSubmitted);
  recordGauges();
  return true;
}

bool SolverPool::cancel(const std::string& id) {
  if (auto queued = queue_.cancel(id)) {
    finishSkipped(std::move(*queued), JobState::kCancelled);
    return true;
  }
  std::shared_ptr<RunningJob> running;
  {
    const sync::MutexLock lock(mu_);
    auto it = running_.find(id);
    if (it == running_.end()) return false;
    running = it->second;
  }
  running->cancelRequested.store(true, std::memory_order_relaxed);
  running->cancelFlag.store(true, std::memory_order_relaxed);
  return true;
}

void SolverPool::drain() {
  const sync::MutexLock lock(mu_);
  while (inFlight_ != 0) idle_.wait(mu_);
}

void SolverPool::shutdown() {
  {
    const sync::MutexLock lock(mu_);
    if (shutdown_) {
      // Another caller won the shutdown race (e.g. explicit shutdown()
      // concurrent with the destructor). Returning immediately would let
      // the destructor run while the winner is still joining threads that
      // touch pool members; wait for the teardown to complete instead.
      while (!teardownDone_) teardown_.wait(mu_);
      return;
    }
    shutdown_ = true;
  }
  queue_.close();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  stopMonitor_.store(true, std::memory_order_relaxed);
  if (monitor_.joinable()) monitor_.join();
  {
    const sync::MutexLock lock(mu_);
    teardownDone_ = true;
  }
  teardown_.notifyAll();
}

void SolverPool::workerLoop() {
  while (auto job = queue_.pop()) runJob(std::move(*job));
}

void SolverPool::monitorLoop() {
  const double poll =
      opts_.deadlinePollSeconds > 1e-3 ? opts_.deadlinePollSeconds : 1e-3;
  while (!stopMonitor_.load(std::memory_order_relaxed)) {
    const double now = nowSeconds();
    // Queued jobs past their deadline expire without occupying a worker.
    for (QueuedJob& job : queue_.takeExpired(now))
      finishSkipped(std::move(job), JobState::kExpired);
    // Running jobs past their deadline are cancelled cooperatively; the
    // worker classifies the outcome as kExpired via the `expired` flag.
    std::vector<std::shared_ptr<RunningJob>> due;
    {
      const sync::MutexLock lock(mu_);
      for (auto& [id, running] : running_)
        if (running->deadlineAt <= now) due.push_back(running);
    }
    for (auto& running : due) {
      running->expired.store(true, std::memory_order_relaxed);
      running->cancelFlag.store(true, std::memory_order_relaxed);
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(poll));
  }
}

void SolverPool::runJob(QueuedJob job) {
  const double dequeued = nowSeconds();
  if (job.deadlineAt <= dequeued) {
    finishSkipped(std::move(job), JobState::kExpired);
    return;
  }

  auto running = std::make_shared<RunningJob>();
  running->deadlineAt = job.deadlineAt;
  {
    const sync::MutexLock lock(mu_);
    running_.emplace(job.spec.id, running);
  }
  recordGauges();

  JobResult result;
  result.id = job.spec.id;
  result.priority = job.spec.priority;
  result.state = JobState::kRunning;
  result.queueSeconds = dequeued - job.submitSeconds;

  // Setup: resolve shared preprocessing through the LRU cache. A hit costs
  // one hash of the instance payload; a miss builds candidates + the
  // construction tour (+ optional HK) exactly once for all future jobs.
  // The job's requested build parallelism is clamped to what remains of
  // the pool-wide prep-thread budget for the duration of the resolve.
  // Safe w.r.t. the cache key: prepThreads never changes the built bytes.
  PreprocessParams prep = job.spec.preprocess;
  const int requested = prep.prepThreads < 1 ? 1 : prep.prepThreads;
  int granted = 1;
  {
    const sync::MutexLock lock(mu_);
    const int budget = opts_.prepThreads < 1 ? 1 : opts_.prepThreads;
    const int avail = budget - prepInUse_;
    granted = std::min(requested, avail < 1 ? 1 : avail);
    prepInUse_ += granted;
  }
  prep.prepThreads = granted;
  Timer setupTimer;
  bool cacheHit = false;
  std::shared_ptr<const InstanceContext> ctx;
  try {
    ctx = cache_.get(job.spec.instance, prep, &cacheHit);
  } catch (const std::exception& e) {
    result.setupSeconds = setupTimer.seconds();
    result.state = JobState::kFailed;
    result.error = e.what();
  }
  {
    const sync::MutexLock lock(mu_);
    prepInUse_ -= granted;
  }
  result.setupSeconds = setupTimer.seconds();
  result.cacheHit = cacheHit;
  if (ctx != nullptr && !cacheHit) {
    const PreprocessBuildStats& bs = ctx->buildStats();
    result.prepKdtreeMs = bs.kdtreeMs;
    result.prepCandMs = bs.candMs;
    result.prepConstructMs = bs.constructMs;
    result.prepThreads = bs.threads;
  }
  if (metrics_.registry != nullptr) {
    metrics_.registry->add(cacheHit ? metrics_.cacheHits
                                    : metrics_.cacheMisses);
    if (ctx != nullptr && !cacheHit) {
      metrics_.registry->observe(metrics_.prepKdtreeMs, result.prepKdtreeMs);
      metrics_.registry->observe(metrics_.prepCandMs, result.prepCandMs);
      metrics_.registry->observe(metrics_.prepConstructMs,
                                 result.prepConstructMs);
    }
  }

  if (ctx != nullptr) {
    RunConfig cfg = job.spec.run;
    cfg.cancel = &running->cancelFlag;
    cfg.jobLabel = job.spec.id;

    // Per-job trace buffer: the run's records land here and are appended
    // to the shared sink as one contiguous bracket in finish().
    std::ostringstream traceBuf;
    std::optional<obs::JsonlTraceSink> jobTrace;
    if (opts_.trace != nullptr) {
      jobTrace.emplace(traceBuf);
      cfg.trace = &*jobTrace;
    } else {
      cfg.trace = nullptr;
    }

    // Incremental best streaming, deduplicated across nodes by value (the
    // thread runtime reports node-local bests concurrently).
    struct ProgressState {
      sync::Mutex mu{sync::LockRank::kJobProgress, "SolverPool.jobProgress"};
      std::int64_t best DISTCLK_GUARDED_BY(mu) =
          std::numeric_limits<std::int64_t>::max();
    };
    auto progress = std::make_shared<ProgressState>();
    JobSink* sink = job.sink;
    const std::string jobId = job.spec.id;
    if (sink != nullptr) {
      cfg.onBest = [progress, sink, jobId](double t, std::int64_t length) {
        {
          const sync::MutexLock lock(progress->mu);
          if (length >= progress->best) return;
          progress->best = length;
        }
        sink->onProgress({jobId, t, length});
      };
    }

    Timer solveTimer;
    try {
      RunResult run = runDistributed(ctx, cfg);
      result.solveSeconds = solveTimer.seconds();
      result.bestLength = run.bestLength;
      result.bestOrder = std::move(run.bestOrder);
      result.totalSteps = run.totalSteps;
      result.messagesSent = run.messagesSent;
      result.events = std::move(run.events);
      result.curve = std::move(run.curve);
      result.hitTarget = run.hitTarget;
      if (running->expired.load(std::memory_order_relaxed))
        result.state = JobState::kExpired;
      else if (running->cancelRequested.load(std::memory_order_relaxed))
        result.state = JobState::kCancelled;
      else
        result.state = JobState::kCompleted;
    } catch (const std::exception& e) {
      result.solveSeconds = solveTimer.seconds();
      result.state = JobState::kFailed;
      result.error = e.what();
    }
    jobTrace.reset();  // flush the buffered sink before reading traceBuf

    {
      const sync::MutexLock lock(mu_);
      running_.erase(job.spec.id);
    }
    finish(job, std::move(result), traceBuf.str());
    return;
  }

  {
    const sync::MutexLock lock(mu_);
    running_.erase(job.spec.id);
  }
  finish(job, std::move(result), std::string());
}

void SolverPool::finishSkipped(QueuedJob job, JobState state) {
  JobResult result;
  result.id = job.spec.id;
  result.priority = job.spec.priority;
  result.state = state;
  result.queueSeconds = nowSeconds() - job.submitSeconds;
  finish(job, std::move(result), std::string());
}

void SolverPool::finish(const QueuedJob& job, JobResult result,
                        const std::string& traceBlock) {
  if (opts_.trace != nullptr) {
    // One contiguous block per job: the buffered run records, then the
    // job's SLO record. Guarded so concurrent jobs never interleave.
    const sync::MutexLock lock(traceMu_);
    std::size_t begin = 0;
    while (begin < traceBlock.size()) {
      std::size_t end = traceBlock.find('\n', begin);
      if (end == std::string::npos) end = traceBlock.size();
      if (end > begin)
        opts_.trace->write(
            std::string_view(traceBlock).substr(begin, end - begin));
      begin = end + 1;
    }
    opts_.trace->write(obs::jobRecord(
        nowSeconds(), result.id, toString(result.state), result.priority,
        result.bestLength, result.queueSeconds, result.setupSeconds,
        result.solveSeconds, result.cacheHit, result.prepKdtreeMs,
        result.prepCandMs, result.prepConstructMs));
    opts_.trace->flush();
  }

  if (metrics_.registry != nullptr) {
    obs::MetricsRegistry& reg = *metrics_.registry;
    switch (result.state) {
      case JobState::kCompleted: reg.add(metrics_.jobsCompleted); break;
      case JobState::kCancelled: reg.add(metrics_.jobsCancelled); break;
      case JobState::kExpired: reg.add(metrics_.jobsExpired); break;
      case JobState::kFailed: reg.add(metrics_.jobsFailed); break;
      case JobState::kQueued:
      case JobState::kRunning: break;  // not terminal; unreachable here
    }
    reg.observe(metrics_.queueSeconds, result.queueSeconds);
    reg.observe(metrics_.setupSeconds, result.setupSeconds);
    reg.observe(metrics_.solveSeconds, result.solveSeconds);
    reg.observe(metrics_.latencySeconds, result.queueSeconds +
                                             result.setupSeconds +
                                             result.solveSeconds);
  }

  if (job.sink != nullptr) job.sink->onResult(result);

  bool nowIdle = false;
  {
    const sync::MutexLock lock(mu_);
    --inFlight_;
    nowIdle = inFlight_ == 0;
  }
  if (nowIdle) idle_.notifyAll();
  recordGauges();
}

}  // namespace distclk::svc
