// Job layer vocabulary: a job is one distributed-CLK run — an instance
// reference plus RunConfig overrides — with multi-tenant scheduling
// attributes (priority, deadline) and a per-job result sink. The lifecycle
// state machine (DESIGN.md §11):
//
//   kQueued ──pop──▶ kRunning ──▶ kCompleted
//      │                │ ├──▶ kCancelled   (cancel() while running)
//      │                │ └──▶ kExpired     (deadline hit while running)
//      │                └────▶ kFailed      (run threw)
//      ├──cancel()──▶ kCancelled            (never ran)
//      └──deadline──▶ kExpired              (expired in queue / at dequeue)
//
// Terminal states are exactly {kCompleted, kCancelled, kExpired, kFailed};
// every submitted job reaches one and its sink's onResult fires exactly
// once.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "tsp/instance_context.h"

namespace distclk::svc {

enum class JobState {
  kQueued,
  kRunning,
  kCompleted,
  kCancelled,
  kExpired,
  kFailed,
};

const char* toString(JobState s) noexcept;

/// Everything a client submits: which instance (shared, immutable), how to
/// preprocess it (the ContextCache key), how to run it, and how to
/// schedule it against other tenants.
struct JobSpec {
  std::string id;
  std::shared_ptr<const Instance> instance;
  PreprocessParams preprocess;
  /// Per-run overrides (nodes, budget, seed, runtime, ...). The pool owns
  /// cancel/onBest/trace/jobLabel — any values set here are overwritten.
  RunConfig run;
  /// Higher runs first; FIFO within a priority level.
  int priority = 0;
  /// Seconds from submission until the job is abandoned (<= 0: none).
  /// Expiry in the queue or at dequeue skips the run entirely; expiry
  /// mid-run cancels it cooperatively.
  double deadlineSeconds = 0.0;
};

/// Incremental best-tour stream: one callback per strictly improving best
/// observed across the job's nodes. `time` is per-node seconds from the
/// run's own clock (virtual under sim).
struct JobProgress {
  std::string id;
  double time = 0.0;
  std::int64_t best = 0;
};

/// Terminal outcome plus the SLO latency decomposition
/// (queue -> setup (context build or cache hit) -> solve).
struct JobResult {
  std::string id;
  JobState state = JobState::kQueued;
  int priority = 0;
  std::int64_t bestLength = 0;
  std::vector<int> bestOrder;
  bool cacheHit = false;
  double queueSeconds = 0.0;
  double setupSeconds = 0.0;
  double solveSeconds = 0.0;
  /// Preprocessing phase decomposition of the setup, populated on a cache
  /// miss (the build this job actually paid for); all zero on a hit.
  /// prepThreads is the parallelism the pool granted after clamping the
  /// request to SolverPoolOptions::prepThreads minus in-use builds.
  double prepKdtreeMs = 0.0;
  double prepCandMs = 0.0;
  double prepConstructMs = 0.0;
  int prepThreads = 0;
  std::int64_t totalSteps = 0;
  std::int64_t messagesSent = 0;
  /// Full run trajectory (events + anytime curve) for completed and
  /// mid-run-cancelled jobs; the cache-determinism tests hash `events`.
  EventLog events;
  AnytimeCurve curve;
  bool hitTarget = false;
  std::string error;  ///< non-empty iff state == kFailed
};

/// Per-job observer. Called from pool worker threads: implementations must
/// be thread-safe across jobs (one job's callbacks never overlap
/// themselves; onResult is the last call for a job).
class JobSink {
 public:
  virtual ~JobSink() = default;
  virtual void onProgress(const JobProgress&) {}
  virtual void onResult(const JobResult&) = 0;
};

}  // namespace distclk::svc
