// Multi-tenant solver pool: N worker threads pull jobs off a priority/
// deadline JobQueue, resolve each job's InstanceContext through a shared
// LRU ContextCache, and run the distributed CLK via the unified runtime —
// streaming incremental bests to the job's sink and recording per-job
// latency/throughput/queue-depth SLO metrics into a MetricsRegistry and a
// shared TraceSink.
//
// Trace layout: each job's run records are buffered in a private in-memory
// sink while it executes, then appended to the shared sink as one
// contiguous block (run-meta ... run-end, followed by one "job" record)
// when the job finishes. Concurrent jobs therefore never interleave their
// run brackets in the output file, which is what trace_report's per-run
// validation and --jobs view parse.
//
// Cancellation/deadline semantics are cooperative: a flag checked at the
// runtime's scheduling boundaries (RunConfig::cancel), so a cancelled run
// stops within one node step and still reports its partial best.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "svc/job_queue.h"
#include "tsp/instance_context.h"
#include "util/sync.h"

namespace distclk::svc {

/// svc.* metric handles (idempotent by name; see DESIGN.md §11).
struct SvcMetrics {
  obs::MetricsRegistry* registry = nullptr;
  obs::MetricId jobsSubmitted;
  obs::MetricId jobsRejected;   ///< backpressure: queue full or closed
  obs::MetricId jobsCompleted;
  obs::MetricId jobsCancelled;
  obs::MetricId jobsExpired;
  obs::MetricId jobsFailed;
  obs::MetricId queueDepth;     ///< gauge
  obs::MetricId jobsRunning;    ///< gauge
  obs::MetricId cacheHits;
  obs::MetricId cacheMisses;
  obs::MetricId queueSeconds;   ///< histogram: submit -> dequeue
  obs::MetricId setupSeconds;   ///< histogram: context resolve (≈0 on hit)
  obs::MetricId solveSeconds;   ///< histogram: runDistributed wall time
  obs::MetricId latencySeconds; ///< histogram: submit -> terminal state
  obs::MetricId prepKdtreeMs;   ///< histogram: kd-tree build (misses only)
  obs::MetricId prepCandMs;     ///< histogram: candidate CSR (misses only)
  obs::MetricId prepConstructMs;///< histogram: construction (misses only)

  static SvcMetrics attach(obs::MetricsRegistry& registry);
};

struct SolverPoolOptions {
  int workers = 2;
  std::size_t maxQueueDepth = 0;        ///< 0 = unbounded
  std::size_t contextCacheCapacity = 8;
  /// Pool-wide preprocessing thread budget. A job's requested
  /// PreprocessParams::prepThreads is clamped to what's left of this
  /// budget (never below 1) while its context build runs; since
  /// prepThreads is excluded from the cache key, the clamp never changes
  /// which cached context the job gets — only how fast a miss builds.
  int prepThreads = 1;
  obs::MetricsRegistry* metrics = nullptr;  ///< null = no metrics
  obs::TraceSink* trace = nullptr;          ///< null = no tracing
  double deadlinePollSeconds = 0.01;    ///< deadline monitor cadence
};

class SolverPool {
 public:
  explicit SolverPool(SolverPoolOptions opts = {});
  /// Closes the queue and joins the workers (drains pending jobs first).
  ~SolverPool();

  /// Enqueues a job. Returns false (and emits no result) when rejected by
  /// backpressure or after shutdown; the caller keeps ownership of the
  /// rejection. `sink` must outlive the job's terminal callback. Throws on
  /// a null instance or duplicate/empty id.
  bool submit(JobSpec spec, JobSink* sink);

  /// Cancels a job by id. Queued jobs finish immediately as kCancelled;
  /// running jobs get their cooperative flag set and finish as kCancelled
  /// within one scheduling boundary. False when the id is unknown or the
  /// job already reached a terminal state.
  bool cancel(const std::string& id);

  /// Blocks until every job submitted so far reached a terminal state.
  void drain();

  /// Stops accepting jobs, drains the queue, joins all threads. Idempotent
  /// (also run by the destructor).
  void shutdown();

  ContextCache& contexts() noexcept { return cache_; }
  std::size_t queueDepth() const { return queue_.depth(); }
  /// Seconds since the pool started (the clock job records are stamped in).
  double nowSeconds() const;

 private:
  struct RunningJob {
    std::atomic<bool> cancelFlag{false};
    std::atomic<bool> cancelRequested{false};  ///< user cancel()
    std::atomic<bool> expired{false};          ///< deadline monitor
    double deadlineAt = 0.0;
  };

  void workerLoop();
  void monitorLoop();
  void runJob(QueuedJob job);
  void finishSkipped(QueuedJob job, JobState state);
  void finish(const QueuedJob& job, JobResult result,
              const std::string& traceBlock);
  void recordGauges();

  SolverPoolOptions opts_;
  SvcMetrics metrics_;
  ContextCache cache_;
  JobQueue queue_;
  std::int64_t startNs_ = 0;

  /// Running set + submitted-id bookkeeping.
  mutable sync::Mutex mu_{sync::LockRank::kSolverPool, "SolverPool.mu"};
  std::map<std::string, std::shared_ptr<RunningJob>> running_
      DISTCLK_GUARDED_BY(mu_);
  /// Ids ever submitted (dup check).
  std::map<std::string, char> known_ DISTCLK_GUARDED_BY(mu_);
  std::int64_t seq_ DISTCLK_GUARDED_BY(mu_) = 0;
  /// Preprocessing threads currently granted to in-progress context
  /// builds (see SolverPoolOptions::prepThreads).
  int prepInUse_ DISTCLK_GUARDED_BY(mu_) = 0;
  /// Queued + running.
  std::int64_t inFlight_ DISTCLK_GUARDED_BY(mu_) = 0;
  sync::CondVar idle_;  ///< signalled when inFlight_ hits 0
  bool shutdown_ DISTCLK_GUARDED_BY(mu_) = false;
  /// Set by the shutdown winner once every thread is joined; losers wait
  /// on teardown_ for it instead of returning into a still-tearing-down
  /// pool (destructor vs concurrent shutdown() race).
  bool teardownDone_ DISTCLK_GUARDED_BY(mu_) = false;
  sync::CondVar teardown_;

  /// Serializes job blocks into opts_.trace.
  sync::Mutex traceMu_{sync::LockRank::kPoolTrace, "SolverPool.traceMu"};

  // Started in the constructor; joined only by the single shutdown winner
  // (the teardown handshake above keeps every other thread out), so the
  // thread handles themselves need no lock.
  std::vector<std::thread> workers_;
  std::thread monitor_;
  std::atomic<bool> stopMonitor_{false};
};

}  // namespace distclk::svc
