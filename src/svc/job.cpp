#include "svc/job.h"

namespace distclk::svc {

const char* toString(JobState s) noexcept {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kExpired: return "expired";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

}  // namespace distclk::svc
