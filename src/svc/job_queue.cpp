#include "svc/job_queue.h"

#include <utility>

namespace distclk::svc {

JobQueue::JobQueue(std::size_t maxDepth) : maxDepth_(maxDepth) {}

bool JobQueue::submit(QueuedJob job) {
  {
    const sync::MutexLock lock(mu_);
    if (closed_) return false;
    if (maxDepth_ > 0 && queue_.size() >= maxDepth_) return false;
    queue_.emplace(Key{-job.spec.priority, job.seq}, std::move(job));
  }
  cv_.notifyOne();
  return true;
}

std::optional<QueuedJob> JobQueue::pop() {
  const sync::MutexLock lock(mu_);
  while (!closed_ && queue_.empty()) cv_.wait(mu_);
  if (queue_.empty()) return std::nullopt;
  auto it = queue_.begin();
  QueuedJob job = std::move(it->second);
  queue_.erase(it);
  return job;
}

std::optional<QueuedJob> JobQueue::cancel(const std::string& id) {
  const sync::MutexLock lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->second.spec.id == id) {
      QueuedJob job = std::move(it->second);
      queue_.erase(it);
      return job;
    }
  }
  return std::nullopt;
}

std::vector<QueuedJob> JobQueue::takeExpired(double now) {
  std::vector<QueuedJob> expired;
  const sync::MutexLock lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->second.deadlineAt <= now) {
      expired.push_back(std::move(it->second));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

void JobQueue::close() {
  {
    const sync::MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.notifyAll();
}

std::size_t JobQueue::depth() const {
  const sync::MutexLock lock(mu_);
  return queue_.size();
}

bool JobQueue::closed() const {
  const sync::MutexLock lock(mu_);
  return closed_;
}

}  // namespace distclk::svc
