#include "svc/job_queue.h"

#include <utility>

namespace distclk::svc {

JobQueue::JobQueue(std::size_t maxDepth) : maxDepth_(maxDepth) {}

bool JobQueue::submit(QueuedJob job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    if (maxDepth_ > 0 && queue_.size() >= maxDepth_) return false;
    queue_.emplace(Key{-job.spec.priority, job.seq}, std::move(job));
  }
  cv_.notify_one();
  return true;
}

std::optional<QueuedJob> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;
  auto it = queue_.begin();
  QueuedJob job = std::move(it->second);
  queue_.erase(it);
  return job;
}

std::optional<QueuedJob> JobQueue::cancel(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->second.spec.id == id) {
      QueuedJob job = std::move(it->second);
      queue_.erase(it);
      return job;
    }
  }
  return std::nullopt;
}

std::vector<QueuedJob> JobQueue::takeExpired(double now) {
  std::vector<QueuedJob> expired;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->second.deadlineAt <= now) {
      expired.push_back(std::move(it->second));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace distclk::svc
