// Tour construction heuristics. Quick-Borůvka is the construction the paper
// uses (ABCC's default, §2.1); the others serve as baselines, test oracles,
// and fallbacks (greedy for tour merging, nearest-neighbor for sanity
// comparisons, space-filling curve for O(n log n) starts, random for kicks
// and restarts).
#pragma once

#include <vector>

#include "tsp/instance.h"
#include "tsp/neighbors.h"
#include "util/rng.h"

namespace distclk {

class TaskPool;

/// Uniformly random permutation.
std::vector<int> randomTour(const Instance& inst, Rng& rng);

/// Nearest-neighbor chain from `start` (kd-tree accelerated when the
/// instance has coordinates).
std::vector<int> nearestNeighborTour(const Instance& inst, int start = 0);

/// Greedy edge matching: repeatedly add the shortest edge that keeps
/// degrees <= 2 and creates no premature cycle; leftover path fragments are
/// stitched nearest-endpoint-first. Candidate-list restricted.
std::vector<int> greedyTour(const Instance& inst, const CandidateLists& cand);

/// Quick-Borůvka (Applegate/Cook/Rohe): process cities in coordinate order;
/// each city with degree < 2 picks its cheapest valid incident edge
/// (no subtour, other endpoint degree < 2). At most two passes, then
/// fragment stitching. The paper's CLK starts from this tour.
std::vector<int> quickBoruvkaTour(const Instance& inst,
                                  const CandidateLists& cand);

/// Hilbert space-filling-curve order (geometric instances only; throws for
/// explicit matrices). O(n log n), surprisingly good starts for large n.
std::vector<int> spaceFillingTour(const Instance& inst);

/// Space-filling-curve-partitioned Quick-Borůvka for very large instances:
/// cities are split into `shards` contiguous Hilbert-order blocks, each
/// block runs Quick-Borůvka edge selection restricted to intra-block
/// candidate edges (concurrently on `pool` when given), and the per-block
/// fragments are stitched across shard boundaries by the shared
/// nearest-endpoint pass. The tour depends on `shards` but NEVER on `pool`
/// (shard boundaries and per-shard selection are schedule-independent), so
/// PreprocessParams keys the cache on shards and not on thread count.
/// shards <= 1 (or an instance without coordinates) is exactly
/// quickBoruvkaTour.
std::vector<int> partitionedQuickBoruvkaTour(const Instance& inst,
                                             const CandidateLists& cand,
                                             int shards,
                                             TaskPool* pool = nullptr);

/// Christofides-style construction (§2.1 contrasts ABCC's Quick-Borůvka
/// against HK-Christofides): minimum spanning tree + matching on the
/// odd-degree vertices + Euler-tour shortcut. The matching is greedy
/// nearest-pair (kd-accelerated) rather than minimum-weight perfect
/// matching, so the 1.5-approximation guarantee is forfeited but the
/// characteristic tour structure is preserved.
std::vector<int> christofidesLikeTour(const Instance& inst);

}  // namespace distclk
