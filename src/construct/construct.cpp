#include "construct/construct.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "tsp/kdtree.h"
#include "util/task_pool.h"

namespace distclk {

namespace {

/// Union-find over cities, used to veto subtour-creating edges.
class DisjointSets {
 public:
  explicit DisjointSets(int n) : parent_(std::size_t(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int x) {
    while (parent_[std::size_t(x)] != x) {
      parent_[std::size_t(x)] = parent_[std::size_t(parent_[std::size_t(x)])];
      x = parent_[std::size_t(x)];
    }
    return x;
  }
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[std::size_t(a)] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

/// Partial 2-regular subgraph being grown into a tour: degree and the up-to-
/// two incident tour edges per city.
struct PartialTour {
  explicit PartialTour(int n)
      : degree(std::size_t(n), 0), link(std::size_t(n), {-1, -1}), sets(n) {}

  std::vector<int> degree;
  std::vector<std::array<int, 2>> link;
  DisjointSets sets;
  int edges = 0;

  bool canAdd(int a, int b) {
    return a != b && degree[std::size_t(a)] < 2 && degree[std::size_t(b)] < 2 &&
           sets.find(a) != sets.find(b);
  }
  void add(int a, int b) {
    link[std::size_t(a)][std::size_t(degree[std::size_t(a)]++)] = b;
    link[std::size_t(b)][std::size_t(degree[std::size_t(b)]++)] = a;
    sets.unite(a, b);
    ++edges;
  }
};

/// Stitches the path fragments of a partial tour into a Hamiltonian cycle by
/// greedily joining nearest endpoint pairs. Only open endpoints are scanned,
/// and greedy/Quick-Borůvka leave few fragments, so the quadratic pass over
/// endpoints is cheap in practice.
std::vector<int> stitchFragments(const Instance& inst, PartialTour& pt) {
  const int n = inst.n();
  std::vector<int> open;
  for (int c = 0; c < n; ++c)
    if (pt.degree[std::size_t(c)] < 2) open.push_back(c);
  // Each open endpoint links to its nearest valid partner in turn: O(F^2)
  // over the endpoint set rather than a full global greedy, which is an
  // adequate tradeoff since stitched edges are a vanishing fraction of the
  // tour and LK immediately cleans them up.
  while (pt.edges < n - 1) {
    std::erase_if(open, [&](int c) { return pt.degree[std::size_t(c)] >= 2; });
    bool progressed = false;
    for (int c : open) {
      if (pt.edges == n - 1) break;
      if (pt.degree[std::size_t(c)] >= 2) continue;
      int best = -1;
      std::int64_t bestDist = std::numeric_limits<std::int64_t>::max();
      for (int o : open) {
        if (!pt.canAdd(c, o)) continue;
        const auto d = inst.dist(c, o);
        if (d < bestDist) {
          bestDist = d;
          best = o;
        }
      }
      if (best != -1) {
        pt.add(c, best);
        progressed = true;
      }
    }
    if (!progressed) break;  // cannot happen for a valid partial tour
  }
  // Close the cycle: exactly two degree-1 endpoints remain.
  int e1 = -1, e2 = -1;
  for (int c = 0; c < n; ++c)
    if (pt.degree[std::size_t(c)] < 2) (e1 == -1 ? e1 : e2) = c;
  if (e1 != -1 && e2 != -1) pt.add(e1, e2);

  // Walk the cycle.
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  int prev = -1, cur = 0;
  for (int i = 0; i < n; ++i) {
    order.push_back(cur);
    const auto& lk = pt.link[std::size_t(cur)];
    const int nxt = (lk[0] != prev) ? lk[0] : lk[1];
    prev = cur;
    cur = nxt;
  }
  return order;
}

}  // namespace

std::vector<int> randomTour(const Instance& inst, Rng& rng) {
  std::vector<int> order(std::size_t(inst.n()));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  return order;
}

std::vector<int> nearestNeighborTour(const Instance& inst, int start) {
  const int n = inst.n();
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  if (inst.hasCoords()) {
    KdTree tree(inst.points());
    int cur = start;
    for (int i = 0; i < n; ++i) {
      order.push_back(cur);
      tree.deactivate(cur);
      const int nxt = tree.nearestActive(inst.point(cur));
      if (nxt == -1) break;
      cur = nxt;
    }
  } else {
    std::vector<bool> used(std::size_t(n), false);
    int cur = start;
    for (int i = 0; i < n; ++i) {
      order.push_back(cur);
      used[std::size_t(cur)] = true;
      int best = -1;
      std::int64_t bestDist = std::numeric_limits<std::int64_t>::max();
      for (int o = 0; o < n; ++o) {
        if (used[std::size_t(o)]) continue;
        const auto d = inst.dist(cur, o);
        if (d < bestDist) {
          bestDist = d;
          best = o;
        }
      }
      if (best == -1) break;
      cur = best;
    }
  }
  return order;
}

std::vector<int> greedyTour(const Instance& inst, const CandidateLists& cand) {
  const int n = inst.n();
  struct Edge {
    std::int64_t w;
    int a, b;
  };
  std::vector<Edge> edges;
  for (int a = 0; a < n; ++a) {
    const auto cs = cand.of(a);
    const auto ds = cand.distOf(a);  // annotation == inst.dist(a, b)
    for (std::size_t i = 0; i < cs.size(); ++i)
      if (a < cs[i]) edges.push_back({ds[i], a, cs[i]});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    if (x.w != y.w) return x.w < y.w;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  PartialTour pt(n);
  for (const Edge& e : edges) {
    if (pt.edges == n - 1) break;
    if (pt.canAdd(e.a, e.b)) pt.add(e.a, e.b);
  }
  return stitchFragments(inst, pt);
}

std::vector<int> quickBoruvkaTour(const Instance& inst,
                                  const CandidateLists& cand) {
  const int n = inst.n();
  // Process order: sort by coordinates when available (the published
  // algorithm), city index otherwise.
  std::vector<int> procOrder(static_cast<std::size_t>(n));
  std::iota(procOrder.begin(), procOrder.end(), 0);
  if (inst.hasCoords()) {
    std::sort(procOrder.begin(), procOrder.end(), [&](int a, int b) {
      const Point& pa = inst.point(a);
      const Point& pb = inst.point(b);
      if (pa.x != pb.x) return pa.x < pb.x;
      if (pa.y != pb.y) return pa.y < pb.y;
      return a < b;
    });
  }
  PartialTour pt(n);
  for (int pass = 0; pass < 2 && pt.edges < n - 1; ++pass) {
    for (int c : procOrder) {
      if (pt.edges == n - 1) break;
      if (pt.degree[std::size_t(c)] >= 2) continue;
      int best = -1;
      std::int64_t bestDist = std::numeric_limits<std::int64_t>::max();
      const auto cs = cand.of(c);
      const auto ds = cand.distOf(c);  // annotation == inst.dist(c, o)
      for (std::size_t i = 0; i < cs.size(); ++i) {
        const int o = cs[i];
        if (!pt.canAdd(c, o)) continue;
        if (ds[i] < bestDist) {
          bestDist = ds[i];
          best = o;
        }
      }
      if (best != -1) pt.add(c, best);
    }
  }
  return stitchFragments(inst, pt);
}

namespace {
// 2-d coordinates -> position on a Hilbert curve of order `bits`.
std::uint64_t hilbertD(std::uint32_t x, std::uint32_t y, int bits) {
  std::uint64_t rx, ry, d = 0;
  for (std::uint64_t s = 1ULL << (bits - 1); s > 0; s /= 2) {
    rx = (x & s) > 0 ? 1 : 0;
    ry = (y & s) > 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    // Rotate quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = static_cast<std::uint32_t>(s - 1 - x);
        y = static_cast<std::uint32_t>(s - 1 - y);
      }
      std::swap(x, y);
    }
  }
  return d;
}
}  // namespace

std::vector<int> christofidesLikeTour(const Instance& inst) {
  const int n = inst.n();
  // 1. Minimum spanning tree over all cities (dense Prim).
  std::vector<std::int64_t> minCost(static_cast<std::size_t>(n),
                                    std::numeric_limits<std::int64_t>::max());
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  std::vector<bool> inTree(static_cast<std::size_t>(n), false);
  minCost[0] = 0;
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int iter = 0; iter < n; ++iter) {
    int u = -1;
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (int v = 0; v < n; ++v)
      if (!inTree[std::size_t(v)] && minCost[std::size_t(v)] < best) {
        best = minCost[std::size_t(v)];
        u = v;
      }
    inTree[std::size_t(u)] = true;
    if (parent[std::size_t(u)] != -1) {
      adj[std::size_t(u)].push_back(parent[std::size_t(u)]);
      adj[std::size_t(parent[std::size_t(u)])].push_back(u);
    }
    for (int v = 0; v < n; ++v) {
      if (inTree[std::size_t(v)]) continue;
      const auto w = inst.dist(u, v);
      if (w < minCost[std::size_t(v)]) {
        minCost[std::size_t(v)] = w;
        parent[std::size_t(v)] = u;
      }
    }
  }

  // 2. Greedy nearest-pair matching on the odd-degree vertices.
  std::vector<int> odd;
  for (int v = 0; v < n; ++v)
    if (adj[std::size_t(v)].size() % 2 == 1) odd.push_back(v);
  if (inst.hasCoords() && odd.size() > 64) {
    std::vector<Point> pts;
    pts.reserve(odd.size());
    for (int v : odd) pts.push_back(inst.point(v));
    KdTree tree(pts);
    for (std::size_t i = 0; i < odd.size(); ++i) {
      if (!tree.isActive(static_cast<int>(i))) continue;
      tree.deactivate(static_cast<int>(i));
      const int j = tree.nearestActive(pts[i]);
      if (j == -1) break;
      tree.deactivate(j);
      adj[std::size_t(odd[i])].push_back(odd[std::size_t(j)]);
      adj[std::size_t(odd[std::size_t(j)])].push_back(odd[i]);
    }
  } else {
    std::vector<bool> used(odd.size(), false);
    for (std::size_t i = 0; i < odd.size(); ++i) {
      if (used[i]) continue;
      used[i] = true;
      std::size_t best = i;
      std::int64_t bestDist = std::numeric_limits<std::int64_t>::max();
      for (std::size_t j = i + 1; j < odd.size(); ++j) {
        if (used[j]) continue;
        const auto d = inst.dist(odd[i], odd[j]);
        if (d < bestDist) {
          bestDist = d;
          best = j;
        }
      }
      if (best == i) break;
      used[best] = true;
      adj[std::size_t(odd[i])].push_back(odd[best]);
      adj[std::size_t(odd[best])].push_back(odd[i]);
    }
  }

  // 3. Euler tour of the MST+matching multigraph (Hierholzer), then
  //    shortcut repeated cities.
  std::vector<std::size_t> edgeCursor(static_cast<std::size_t>(n), 0);
  std::vector<int> stack{0};
  std::vector<int> euler;
  euler.reserve(2 * static_cast<std::size_t>(n));
  // Mark consumed edges with -1 (multigraph: duplicates are distinct slots).
  while (!stack.empty()) {
    const int u = stack.back();
    auto& cursor = edgeCursor[std::size_t(u)];
    auto& edges = adj[std::size_t(u)];
    while (cursor < edges.size() && edges[cursor] == -1) ++cursor;
    if (cursor == edges.size()) {
      euler.push_back(u);
      stack.pop_back();
      continue;
    }
    const int v = edges[cursor];
    edges[cursor] = -1;  // consume u->v
    // Consume the reverse slot v->u.
    auto& back = adj[std::size_t(v)];
    for (auto& w : back) {
      if (w == u) {
        w = -1;
        break;
      }
    }
    stack.push_back(v);
  }

  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (int v : euler) {
    if (!seen[std::size_t(v)]) {
      seen[std::size_t(v)] = true;
      order.push_back(v);
    }
  }
  // Greedy matching can leave one odd vertex unmatched (odd count is always
  // even, but kd greedy pairs nearest-first and never strands one); still,
  // guard against any city missing from a disconnected walk.
  for (int v = 0; v < n; ++v)
    if (!seen[std::size_t(v)]) order.push_back(v);
  return order;
}

std::vector<int> spaceFillingTour(const Instance& inst) {
  if (!inst.hasCoords())
    throw std::invalid_argument("spaceFillingTour: needs coordinates");
  const int n = inst.n();
  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = xmax;
  for (int i = 0; i < n; ++i) {
    xmin = std::min(xmin, inst.point(i).x);
    xmax = std::max(xmax, inst.point(i).x);
    ymin = std::min(ymin, inst.point(i).y);
    ymax = std::max(ymax, inst.point(i).y);
  }
  const double sx = xmax > xmin ? xmax - xmin : 1.0;
  const double sy = ymax > ymin ? ymax - ymin : 1.0;
  constexpr int kBits = 16;
  constexpr double kGrid = (1 << kBits) - 1;
  std::vector<std::pair<std::uint64_t, int>> keyed(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto gx = static_cast<std::uint32_t>(
        (inst.point(i).x - xmin) / sx * kGrid);
    const auto gy = static_cast<std::uint32_t>(
        (inst.point(i).y - ymin) / sy * kGrid);
    keyed[std::size_t(i)] = {hilbertD(gx, gy, kBits), i};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<int> order(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < keyed.size(); ++i) order[i] = keyed[i].second;
  return order;
}

std::vector<int> partitionedQuickBoruvkaTour(const Instance& inst,
                                             const CandidateLists& cand,
                                             int shards, TaskPool* pool) {
  const int n = inst.n();
  if (!inst.hasCoords() || shards <= 1 || n <= shards)
    return quickBoruvkaTour(inst, cand);

  // Hilbert-order blocks: contiguous curve ranges make shards spatially
  // compact, so almost every candidate edge is intra-shard and the
  // cross-shard stitch only has to close O(shards) seams.
  const std::vector<int> curve = spaceFillingTour(inst);
  std::vector<int> shardOf(static_cast<std::size_t>(n), 0);
  std::vector<int> blockBegin(static_cast<std::size_t>(shards) + 1, 0);
  const int per = (n + shards - 1) / shards;
  for (int s = 0; s <= shards; ++s)
    blockBegin[std::size_t(s)] = std::min(n, s * per);
  for (int s = 0; s < shards; ++s)
    for (int i = blockBegin[std::size_t(s)]; i < blockBegin[std::size_t(s) + 1];
         ++i)
      shardOf[std::size_t(curve[std::size_t(i)])] = s;

  // Per-shard Quick-Borůvka edge selection over local ids. Every shard
  // writes only its own edge list; the result is a function of the shard
  // partition alone, never of which worker runs which shard.
  std::vector<std::vector<std::array<int, 2>>> shardEdges(
      static_cast<std::size_t>(shards));
  TaskPool::parallelForShards(pool, shards, shards, [&](int sBegin, int sEnd) {
    for (int s = sBegin; s < sEnd; ++s) {
      const int lo = blockBegin[std::size_t(s)];
      const int hi = blockBegin[std::size_t(s) + 1];
      const int m = hi - lo;
      // Local process order: the same coordinate sort Quick-Borůvka uses.
      std::vector<int> proc(curve.begin() + lo, curve.begin() + hi);
      std::sort(proc.begin(), proc.end(), [&](int a, int b) {
        const Point& pa = inst.point(a);
        const Point& pb = inst.point(b);
        if (pa.x != pb.x) return pa.x < pb.x;
        if (pa.y != pb.y) return pa.y < pb.y;
        return a < b;
      });
      std::vector<int> localId(static_cast<std::size_t>(n), -1);
      for (int i = 0; i < m; ++i)
        localId[std::size_t(curve[std::size_t(lo + i)])] = i;
      PartialTour pt(m);
      auto& edges = shardEdges[std::size_t(s)];
      for (int pass = 0; pass < 2 && pt.edges < m - 1; ++pass) {
        for (int c : proc) {
          if (pt.edges == m - 1) break;
          const int lc = localId[std::size_t(c)];
          if (pt.degree[std::size_t(lc)] >= 2) continue;
          int best = -1;
          std::int64_t bestDist = std::numeric_limits<std::int64_t>::max();
          const auto cs = cand.of(c);
          const auto ds = cand.distOf(c);
          for (std::size_t i = 0; i < cs.size(); ++i) {
            const int o = cs[i];
            if (shardOf[std::size_t(o)] != s) continue;  // intra-shard only
            if (!pt.canAdd(lc, localId[std::size_t(o)])) continue;
            if (ds[i] < bestDist) {
              bestDist = ds[i];
              best = o;
            }
          }
          if (best != -1) {
            pt.add(lc, localId[std::size_t(best)]);
            edges.push_back({c, best});
          }
        }
      }
    }
  });

  // Merge the (disjoint, intra-shard) edge sets into one partial tour and
  // stitch the remaining fragments across shard seams.
  PartialTour pt(n);
  for (const auto& edges : shardEdges)
    for (const auto& e : edges)
      if (pt.canAdd(e[0], e[1])) pt.add(e[0], e[1]);
  return stitchFragments(inst, pt);
}

}  // namespace distclk
