#include "tsp/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/task_pool.h"

namespace distclk {

namespace {

/// Number of tree nodes a subtree over m points occupies. The split point
/// mid = (begin+end)/2 makes the child sizes floor(m/2) and ceil(m/2) — a
/// function of m alone — so node ids can be assigned in preorder BEFORE
/// the subtrees are built: left = id+1, right = id+1+count(leftSize).
/// That is what lets concurrent subtree tasks write disjoint nodes_ slices
/// while reproducing the serial numbering exactly. Memoized because only
/// O(log m) distinct sizes occur (at most two per level).
int subtreeNodeCount(int m, int leafSize, std::map<int, int>& memo) {
  if (m <= leafSize) return 1;
  const auto it = memo.find(m);
  if (it != memo.end()) return it->second;
  const int c = 1 + subtreeNodeCount(m / 2, leafSize, memo) +
                subtreeNodeCount(m - m / 2, leafSize, memo);
  memo.emplace(m, c);
  return c;
}

}  // namespace

KdTree::KdTree(std::span<const Point> pts, TaskPool* pool) : pts_(pts) {
  order_.resize(pts_.size());
  std::iota(order_.begin(), order_.end(), 0);
  leafOf_.resize(pts_.size(), -1);
  active_.assign(pts_.size(), 1);
  activeCount_ = static_cast<int>(pts_.size());
  if (!pts_.empty()) {
    const int n = static_cast<int>(pts_.size());
    std::map<int, int> subtreeNodes;
    const int total = subtreeNodeCount(n, kLeafSize, subtreeNodes);
    // Pre-sized: build tasks write nodes_[id] in place, no reallocation.
    nodes_.resize(std::size_t(total));
    buildRange(0, 0, n, subtreeNodes, pool);
    if (pool != nullptr) pool->runUntilIdle();
  }
  posInOrder_.resize(pts_.size());
  for (std::size_t p = 0; p < order_.size(); ++p)
    posInOrder_[std::size_t(order_[p])] = static_cast<int>(p);
}

void KdTree::buildRange(int id, int begin, int end,
                        const std::map<int, int>& subtreeNodes,
                        TaskPool* pool) {
  Node& nd = nodes_[std::size_t(id)];
  nd.begin = begin;
  nd.end = end;
  nd.activeInSubtree = end - begin;
  nd.xmin = nd.ymin = std::numeric_limits<double>::infinity();
  nd.xmax = nd.ymax = -std::numeric_limits<double>::infinity();
  for (int i = begin; i < end; ++i) {
    const Point& p = pts_[std::size_t(order_[std::size_t(i)])];
    nd.xmin = std::min(nd.xmin, p.x);
    nd.xmax = std::max(nd.xmax, p.x);
    nd.ymin = std::min(nd.ymin, p.y);
    nd.ymax = std::max(nd.ymax, p.y);
  }
  if (end - begin <= kLeafSize) {
    for (int i = begin; i < end; ++i)
      leafOf_[std::size_t(order_[std::size_t(i)])] = id;
    return;
  }
  const int dim = (nd.xmax - nd.xmin >= nd.ymax - nd.ymin) ? 0 : 1;
  const int mid = (begin + end) / 2;
  // The partition runs on whoever owns this subtree's task, always over
  // the exact element sequence the serial build would see (the parent's
  // partition completed before this task was forked). Parallelism never
  // crosses an nth_element call, because its result order feeds the knn
  // tie-handling and must stay bit-identical.
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](int a, int b) {
                     const Point& pa = pts_[std::size_t(a)];
                     const Point& pb = pts_[std::size_t(b)];
                     return dim == 0 ? pa.x < pb.x : pa.y < pb.y;
                   });
  const Point& mp = pts_[std::size_t(order_[std::size_t(mid)])];
  nd.splitDim = dim;
  nd.splitVal = dim == 0 ? mp.x : mp.y;
  const int leftSize = mid - begin;
  const int leftId = id + 1;
  const int rightId =
      leftId + (leftSize <= kLeafSize ? 1 : subtreeNodes.at(leftSize));
  nd.left = leftId;
  nd.right = rightId;
  if (pool != nullptr && end - begin >= kParallelGrain) {
    pool->submit([this, leftId, begin, mid, &subtreeNodes, pool] {
      buildRange(leftId, begin, mid, subtreeNodes, pool);
    });
    pool->submit([this, rightId, mid, end, &subtreeNodes, pool] {
      buildRange(rightId, mid, end, subtreeNodes, pool);
    });
  } else {
    buildRange(leftId, begin, mid, subtreeNodes, pool);
    buildRange(rightId, mid, end, subtreeNodes, pool);
  }
}

double KdTree::boxDist2(const Node& nd, const Point& p) const noexcept {
  const double dx = p.x < nd.xmin ? nd.xmin - p.x
                                  : (p.x > nd.xmax ? p.x - nd.xmax : 0.0);
  const double dy = p.y < nd.ymin ? nd.ymin - p.y
                                  : (p.y > nd.ymax ? p.y - nd.ymax : 0.0);
  return dx * dx + dy * dy;
}

// Generic branch-and-bound traversal. `visit(pointIndex, dist2)` may lower
// `bound` (squared radius of interest); subtrees farther than `bound` prune.
template <typename Visit>
void KdTree::search(int node, const Point& p, double& bound,
                    Visit&& visit) const {
  const Node& nd = nodes_[std::size_t(node)];
  if (nd.splitDim < 0) {
    for (int i = nd.begin; i < nd.end; ++i) {
      const int idx = order_[std::size_t(i)];
      const Point& q = pts_[std::size_t(idx)];
      const double d2 = sq(p.x - q.x) + sq(p.y - q.y);
      if (d2 <= bound) visit(idx, d2);
    }
    return;
  }
  const int first =
      ((nd.splitDim == 0 ? p.x : p.y) < nd.splitVal) ? nd.left : nd.right;
  const int second = first == nd.left ? nd.right : nd.left;
  if (boxDist2(nodes_[std::size_t(first)], p) <= bound)
    search(first, p, bound, visit);
  if (boxDist2(nodes_[std::size_t(second)], p) <= bound)
    search(second, p, bound, visit);
}

void KdTree::knnHeap(const Point& loc, int k, KnnScratch& scratch) const {
  // Max-heap (std::push_heap/pop_heap over the scratch vector — the same
  // comparisons std::priority_queue<pair> performs) of the best k seen.
  auto& heap = scratch.heap_;
  heap.clear();
  double bound = std::numeric_limits<double>::infinity();
  search(0, loc, bound, [&](int idx, double d2) {
    if (static_cast<int>(heap.size()) < k) {
      heap.emplace_back(d2, idx);
      std::push_heap(heap.begin(), heap.end());
      if (static_cast<int>(heap.size()) == k) bound = heap.front().first;
    } else if (d2 < heap.front().first) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {d2, idx};
      std::push_heap(heap.begin(), heap.end());
      bound = heap.front().first;
    }
  });
  // (dist2, index) pairs are unique, so ascending sort reproduces exactly
  // the pop-and-reverse order of the heap.
  std::sort(heap.begin(), heap.end());
}

int KdTree::knnInto(const Point& loc, int k, std::span<int> out,
                    KnnScratch& scratch) const {
  k = std::min<int>(k, size());
  if (k <= 0) return 0;
  knnHeap(loc, k, scratch);
  const int m = static_cast<int>(scratch.heap_.size());
  for (int i = 0; i < m; ++i) out[std::size_t(i)] = scratch.heap_[std::size_t(i)].second;
  return m;
}

int KdTree::knnInto(int query, int k, std::span<int> out,
                    KnnScratch& scratch) const {
  k = std::min<int>(k, size() - 1);
  if (k <= 0) return 0;
  // Ask for one extra and drop the query point itself (it may legitimately
  // be absent under duplicate coordinates, hence the written-count cap).
  knnHeap(pts_[std::size_t(query)], std::min(k + 1, size()), scratch);
  int written = 0;
  for (const auto& [d2, idx] : scratch.heap_) {
    if (idx == query) continue;
    if (written == k) break;
    out[std::size_t(written++)] = idx;
  }
  return written;
}

std::vector<int> KdTree::knn(const Point& loc, int k) const {
  k = std::min<int>(k, size());
  if (k <= 0) return {};
  KnnScratch scratch;
  std::vector<int> out(static_cast<std::size_t>(k));
  out.resize(std::size_t(knnInto(loc, k, out, scratch)));
  return out;
}

std::vector<int> KdTree::knn(int query, int k) const {
  k = std::min<int>(k, size() - 1);
  if (k <= 0) return {};
  KnnScratch scratch;
  std::vector<int> out(static_cast<std::size_t>(k));
  out.resize(std::size_t(knnInto(query, k, out, scratch)));
  return out;
}

void KdTree::deactivate(int i) {
  if (!active_[std::size_t(i)]) return;
  active_[std::size_t(i)] = 0;
  --activeCount_;
  // Descend from the root to the point's leaf by positional containment
  // (order_ is fixed after build; node ranges partition it exactly),
  // decrementing the active count along the way.
  const int p = posInOrder_[std::size_t(i)];
  int node = 0;
  while (true) {
    Node& nd = nodes_[std::size_t(node)];
    --nd.activeInSubtree;
    if (nd.splitDim < 0) break;
    const Node& lc = nodes_[std::size_t(nd.left)];
    node = (p < lc.end) ? nd.left : nd.right;
  }
}

void KdTree::reactivateAll() {
  std::fill(active_.begin(), active_.end(), 1);
  activeCount_ = static_cast<int>(pts_.size());
  for (auto& nd : nodes_) nd.activeInSubtree = nd.end - nd.begin;
}

int KdTree::nearestActive(const Point& p, int exclude) const {
  if (activeCount_ == 0) return -1;
  double bound = std::numeric_limits<double>::infinity();
  int best = -1;
  // Custom traversal that prunes fully-deactivated subtrees.
  struct Frame { int node; };
  std::vector<Frame> stack;
  stack.push_back({0});
  while (!stack.empty()) {
    const int node = stack.back().node;
    stack.pop_back();
    const Node& nd = nodes_[std::size_t(node)];
    if (nd.activeInSubtree == 0 || boxDist2(nd, p) > bound) continue;
    if (nd.splitDim < 0) {
      for (int i = nd.begin; i < nd.end; ++i) {
        const int idx = order_[std::size_t(i)];
        if (!active_[std::size_t(idx)] || idx == exclude) continue;
        const Point& q = pts_[std::size_t(idx)];
        const double d2 = sq(p.x - q.x) + sq(p.y - q.y);
        if (d2 < bound || (d2 == bound && (best == -1 || idx < best))) {
          bound = d2;
          best = idx;
        }
      }
      continue;
    }
    const int first =
        ((nd.splitDim == 0 ? p.x : p.y) < nd.splitVal) ? nd.left : nd.right;
    const int second = first == nd.left ? nd.right : nd.left;
    // Push the farther child first so the nearer one is explored next.
    stack.push_back({second});
    stack.push_back({first});
  }
  return best;
}

}  // namespace distclk
