#include "tsp/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

namespace distclk {

KdTree::KdTree(std::span<const Point> pts) : pts_(pts) {
  order_.resize(pts_.size());
  std::iota(order_.begin(), order_.end(), 0);
  leafOf_.resize(pts_.size(), -1);
  active_.assign(pts_.size(), 1);
  activeCount_ = static_cast<int>(pts_.size());
  nodes_.reserve(2 * pts_.size() / kLeafSize + 4);
  if (!pts_.empty()) build(0, static_cast<int>(pts_.size()));
  posInOrder_.resize(pts_.size());
  for (std::size_t p = 0; p < order_.size(); ++p)
    posInOrder_[std::size_t(order_[p])] = static_cast<int>(p);
}

int KdTree::build(int begin, int end) {
  const int id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& nd = nodes_.back();
    nd.begin = begin;
    nd.end = end;
    nd.activeInSubtree = end - begin;
    nd.xmin = nd.ymin = std::numeric_limits<double>::infinity();
    nd.xmax = nd.ymax = -std::numeric_limits<double>::infinity();
    for (int i = begin; i < end; ++i) {
      const Point& p = pts_[std::size_t(order_[std::size_t(i)])];
      nd.xmin = std::min(nd.xmin, p.x);
      nd.xmax = std::max(nd.xmax, p.x);
      nd.ymin = std::min(nd.ymin, p.y);
      nd.ymax = std::max(nd.ymax, p.y);
    }
  }
  if (end - begin <= kLeafSize) {
    for (int i = begin; i < end; ++i)
      leafOf_[std::size_t(order_[std::size_t(i)])] = id;
    return id;
  }
  const int dim = (nodes_[std::size_t(id)].xmax - nodes_[std::size_t(id)].xmin >=
                   nodes_[std::size_t(id)].ymax - nodes_[std::size_t(id)].ymin)
                      ? 0
                      : 1;
  const int mid = (begin + end) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](int a, int b) {
                     const Point& pa = pts_[std::size_t(a)];
                     const Point& pb = pts_[std::size_t(b)];
                     return dim == 0 ? pa.x < pb.x : pa.y < pb.y;
                   });
  const Point& mp = pts_[std::size_t(order_[std::size_t(mid)])];
  // Children may reallocate nodes_, so write fields through the index.
  const int left = build(begin, mid);
  const int right = build(mid, end);
  Node& nd = nodes_[std::size_t(id)];
  nd.splitDim = dim;
  nd.splitVal = dim == 0 ? mp.x : mp.y;
  nd.left = left;
  nd.right = right;
  return id;
}

double KdTree::boxDist2(const Node& nd, const Point& p) const noexcept {
  const double dx = p.x < nd.xmin ? nd.xmin - p.x
                                  : (p.x > nd.xmax ? p.x - nd.xmax : 0.0);
  const double dy = p.y < nd.ymin ? nd.ymin - p.y
                                  : (p.y > nd.ymax ? p.y - nd.ymax : 0.0);
  return dx * dx + dy * dy;
}

// Generic branch-and-bound traversal. `visit(pointIndex, dist2)` may lower
// `bound` (squared radius of interest); subtrees farther than `bound` prune.
template <typename Visit>
void KdTree::search(int node, const Point& p, double& bound,
                    Visit&& visit) const {
  const Node& nd = nodes_[std::size_t(node)];
  if (nd.splitDim < 0) {
    for (int i = nd.begin; i < nd.end; ++i) {
      const int idx = order_[std::size_t(i)];
      const Point& q = pts_[std::size_t(idx)];
      const double d2 = sq(p.x - q.x) + sq(p.y - q.y);
      if (d2 <= bound) visit(idx, d2);
    }
    return;
  }
  const int first =
      ((nd.splitDim == 0 ? p.x : p.y) < nd.splitVal) ? nd.left : nd.right;
  const int second = first == nd.left ? nd.right : nd.left;
  if (boxDist2(nodes_[std::size_t(first)], p) <= bound)
    search(first, p, bound, visit);
  if (boxDist2(nodes_[std::size_t(second)], p) <= bound)
    search(second, p, bound, visit);
}

std::vector<int> KdTree::knn(const Point& loc, int k) const {
  k = std::min<int>(k, static_cast<int>(pts_.size()));
  if (k <= 0) return {};
  // Max-heap of the best k candidates seen so far.
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry> heap;
  double bound = std::numeric_limits<double>::infinity();
  search(0, loc, bound, [&](int idx, double d2) {
    if (static_cast<int>(heap.size()) < k) {
      heap.emplace(d2, idx);
      if (static_cast<int>(heap.size()) == k) bound = heap.top().first;
    } else if (d2 < heap.top().first) {
      heap.pop();
      heap.emplace(d2, idx);
      bound = heap.top().first;
    }
  });
  std::vector<int> out(heap.size());
  for (auto it = out.rbegin(); it != out.rend(); ++it) {
    *it = heap.top().second;
    heap.pop();
  }
  return out;
}

std::vector<int> KdTree::knn(int query, int k) const {
  // Ask for one extra and drop the query point itself.
  auto res = knn(pts_[std::size_t(query)], k + 1);
  std::erase(res, query);
  if (static_cast<int>(res.size()) > k) res.resize(static_cast<std::size_t>(k));
  return res;
}

void KdTree::deactivate(int i) {
  if (!active_[std::size_t(i)]) return;
  active_[std::size_t(i)] = 0;
  --activeCount_;
  // Descend from the root to the point's leaf by positional containment
  // (order_ is fixed after build; node ranges partition it exactly),
  // decrementing the active count along the way.
  const int p = posInOrder_[std::size_t(i)];
  int node = 0;
  while (true) {
    Node& nd = nodes_[std::size_t(node)];
    --nd.activeInSubtree;
    if (nd.splitDim < 0) break;
    const Node& lc = nodes_[std::size_t(nd.left)];
    node = (p < lc.end) ? nd.left : nd.right;
  }
}

void KdTree::reactivateAll() {
  std::fill(active_.begin(), active_.end(), 1);
  activeCount_ = static_cast<int>(pts_.size());
  for (auto& nd : nodes_) nd.activeInSubtree = nd.end - nd.begin;
}

int KdTree::nearestActive(const Point& p, int exclude) const {
  if (activeCount_ == 0) return -1;
  double bound = std::numeric_limits<double>::infinity();
  int best = -1;
  // Custom traversal that prunes fully-deactivated subtrees.
  struct Frame { int node; };
  std::vector<Frame> stack;
  stack.push_back({0});
  while (!stack.empty()) {
    const int node = stack.back().node;
    stack.pop_back();
    const Node& nd = nodes_[std::size_t(node)];
    if (nd.activeInSubtree == 0 || boxDist2(nd, p) > bound) continue;
    if (nd.splitDim < 0) {
      for (int i = nd.begin; i < nd.end; ++i) {
        const int idx = order_[std::size_t(i)];
        if (!active_[std::size_t(idx)] || idx == exclude) continue;
        const Point& q = pts_[std::size_t(idx)];
        const double d2 = sq(p.x - q.x) + sq(p.y - q.y);
        if (d2 < bound || (d2 == bound && (best == -1 || idx < best))) {
          bound = d2;
          best = idx;
        }
      }
      continue;
    }
    const int first =
        ((nd.splitDim == 0 ? p.x : p.y) < nd.splitVal) ? nd.left : nd.right;
    const int second = first == nd.left ? nd.right : nd.left;
    // Push the farther child first so the nearer one is explored next.
    stack.push_back({second});
    stack.push_back({first});
  }
  return best;
}

}  // namespace distclk
