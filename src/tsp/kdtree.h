// Static 2-d tree over instance coordinates. Supports k-nearest-neighbor
// queries (candidate-list construction) and nearest-active queries with
// deactivation (greedy construction heuristics such as nearest-neighbor and
// Quick-Borůvka consume cities one by one).
//
// The build can run on a TaskPool: independent sibling subtrees are forked
// as tasks after their shared nth_element partition, which leaves every
// partition input — and therefore order_, the node numbering (preorder,
// precomputed from subtree sizes), and every query answer — bit-identical
// to the serial build. See DESIGN.md §13 for the determinism argument.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "tsp/instance.h"

namespace distclk {

class TaskPool;

/// Reusable scratch for allocation-free knnInto queries. One per calling
/// thread; queries reuse the internal heap's capacity across calls.
class KnnScratch {
 public:
  KnnScratch() = default;

 private:
  friend class KdTree;
  std::vector<std::pair<double, int>> heap_;
};

class KdTree {
 public:
  /// Builds a balanced tree over `pts` (copied indices only; the caller
  /// keeps ownership of the coordinates, which must outlive the tree).
  /// With a non-null pool, sibling subtrees build concurrently; the
  /// resulting tree is bit-identical to the serial build.
  explicit KdTree(std::span<const Point> pts, TaskPool* pool = nullptr);

  int size() const noexcept { return static_cast<int>(pts_.size()); }

  /// Indices of the k nearest points to pts[query], excluding query itself,
  /// ordered by increasing Euclidean distance. Ignores active flags.
  std::vector<int> knn(int query, int k) const;

  /// Indices of the k nearest points to an arbitrary location.
  std::vector<int> knn(const Point& loc, int k) const;

  /// Allocation-free k-NN: writes up to k indices (nearest first) into
  /// `out` and returns how many were written (< k only when the tree holds
  /// fewer points). `out` must have room for k entries; `scratch` is
  /// caller-owned and reusable across queries. Results are identical to
  /// the knn() overloads above.
  int knnInto(const Point& loc, int k, std::span<int> out,
              KnnScratch& scratch) const;
  /// Same, excluding `query` itself (the candidate-list work loop).
  int knnInto(int query, int k, std::span<int> out, KnnScratch& scratch) const;

  /// Deactivates a point (it will no longer be returned by nearestActive).
  void deactivate(int i);
  /// Re-activates every point.
  void reactivateAll();
  bool isActive(int i) const noexcept { return active_[std::size_t(i)]; }
  int activeCount() const noexcept { return activeCount_; }

  /// Nearest active point to `p`, excluding index `exclude` (-1 for none).
  /// Returns -1 when no active point qualifies.
  int nearestActive(const Point& p, int exclude = -1) const;

  /// The point permutation underlying the tree (leaves are contiguous
  /// ranges of it). Exposed so tests can pin that parallel builds produce
  /// byte-identical layouts to the serial build.
  const std::vector<int>& order() const noexcept { return order_; }

 private:
  struct Node {
    int begin = 0, end = 0;      // range in order_
    int splitDim = -1;           // -1 for leaf
    double splitVal = 0.0;
    int left = -1, right = -1;   // children node ids
    int activeInSubtree = 0;
    double xmin = 0, xmax = 0, ymin = 0, ymax = 0;  // bounding box
  };

  void buildRange(int id, int begin, int end,
                  const std::map<int, int>& subtreeNodes, TaskPool* pool);
  template <typename Visit>
  void search(int node, const Point& p, double& bound, Visit&& visit) const;
  /// Branch-and-bound fill of scratch.heap_ with the k nearest to `loc`.
  void knnHeap(const Point& loc, int k, KnnScratch& scratch) const;
  static double sq(double v) noexcept { return v * v; }
  double boxDist2(const Node& nd, const Point& p) const noexcept;

  std::span<const Point> pts_;
  std::vector<int> order_;       // point indices, partitioned by the tree
  std::vector<int> posInOrder_;  // point index -> its slot in order_
  std::vector<int> leafOf_;      // point index -> node id of its leaf
  std::vector<Node> nodes_;
  std::vector<char> active_;
  int activeCount_ = 0;
  static constexpr int kLeafSize = 16;
  /// Subtrees at least this large fork their children as pool tasks.
  static constexpr int kParallelGrain = 2048;
};

}  // namespace distclk
