// Static 2-d tree over instance coordinates. Supports k-nearest-neighbor
// queries (candidate-list construction) and nearest-active queries with
// deactivation (greedy construction heuristics such as nearest-neighbor and
// Quick-Borůvka consume cities one by one).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tsp/instance.h"

namespace distclk {

class KdTree {
 public:
  /// Builds a balanced tree over `pts` (copied indices only; the caller
  /// keeps ownership of the coordinates, which must outlive the tree).
  explicit KdTree(std::span<const Point> pts);

  int size() const noexcept { return static_cast<int>(pts_.size()); }

  /// Indices of the k nearest points to pts[query], excluding query itself,
  /// ordered by increasing Euclidean distance. Ignores active flags.
  std::vector<int> knn(int query, int k) const;

  /// Indices of the k nearest points to an arbitrary location.
  std::vector<int> knn(const Point& loc, int k) const;

  /// Deactivates a point (it will no longer be returned by nearestActive).
  void deactivate(int i);
  /// Re-activates every point.
  void reactivateAll();
  bool isActive(int i) const noexcept { return active_[std::size_t(i)]; }
  int activeCount() const noexcept { return activeCount_; }

  /// Nearest active point to `p`, excluding index `exclude` (-1 for none).
  /// Returns -1 when no active point qualifies.
  int nearestActive(const Point& p, int exclude = -1) const;

 private:
  struct Node {
    int begin = 0, end = 0;      // range in order_
    int splitDim = -1;           // -1 for leaf
    double splitVal = 0.0;
    int left = -1, right = -1;   // children node ids
    int activeInSubtree = 0;
    double xmin = 0, xmax = 0, ymin = 0, ymax = 0;  // bounding box
  };

  int build(int begin, int end);
  template <typename Visit>
  void search(int node, const Point& p, double& bound, Visit&& visit) const;
  static double sq(double v) noexcept { return v * v; }
  double boxDist2(const Node& nd, const Point& p) const noexcept;

  std::span<const Point> pts_;
  std::vector<int> order_;       // point indices, partitioned by the tree
  std::vector<int> posInOrder_;  // point index -> its slot in order_
  std::vector<int> leafOf_;      // point index -> node id of its leaf
  std::vector<Node> nodes_;
  std::vector<char> active_;
  int activeCount_ = 0;
  static constexpr int kLeafSize = 16;
};

}  // namespace distclk
