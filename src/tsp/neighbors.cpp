#include "tsp/neighbors.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "tsp/dist_kernel.h"
#include "tsp/kdtree.h"
#include "util/audit.h"

namespace distclk {

namespace {

std::vector<std::vector<int>> nearestLists(const Instance& inst, int k) {
  const int n = inst.n();
  std::vector<std::vector<int>> lists(static_cast<std::size_t>(n));
  if (inst.hasCoords()) {
    KdTree tree(inst.points());
    for (int c = 0; c < n; ++c) lists[std::size_t(c)] = tree.knn(c, k);
  } else {
    std::vector<int> idx(static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c) {
      idx.clear();
      for (int j = 0; j < n; ++j)
        if (j != c) idx.push_back(j);
      const auto kk = std::min<std::size_t>(std::size_t(k), idx.size());
      std::partial_sort(idx.begin(), idx.begin() + kk, idx.end(),
                        [&](int a, int b) {
                          const auto da = inst.dist(c, a), db = inst.dist(c, b);
                          return da != db ? da < db : a < b;
                        });
      idx.resize(kk);
      lists[std::size_t(c)] = idx;
    }
  }
  return lists;
}

std::vector<std::vector<int>> quadrantLists(const Instance& inst, int k) {
  if (!inst.hasCoords())
    return nearestLists(inst, k);  // quadrants undefined without coordinates
  const int n = inst.n();
  const int perQuad = std::max(1, (k + 3) / 4);
  KdTree tree(inst.points());
  std::vector<std::vector<int>> lists(static_cast<std::size_t>(n));
  // Over-fetch nearest neighbors, then keep the closest `perQuad` per
  // quadrant; top up with globally nearest if quadrants are starved.
  const int fetch = std::min(n - 1, std::max(4 * k, 24));
  for (int c = 0; c < n; ++c) {
    const auto cand = tree.knn(c, fetch);
    const Point& pc = inst.point(c);
    int quadCount[4] = {0, 0, 0, 0};
    auto& out = lists[std::size_t(c)];
    for (int nb : cand) {
      const Point& pn = inst.point(nb);
      const int q = (pn.x >= pc.x ? 1 : 0) | (pn.y >= pc.y ? 2 : 0);
      if (quadCount[q] < perQuad) {
        ++quadCount[q];
        out.push_back(nb);
        if (static_cast<int>(out.size()) >= k) break;
      }
    }
    for (int nb : cand) {
      if (static_cast<int>(out.size()) >= k) break;
      if (std::find(out.begin(), out.end(), nb) == out.end())
        out.push_back(nb);
    }
    // Keep the construction metric ordering (distance ascending).
    std::sort(out.begin(), out.end(), [&](int a, int b) {
      const auto da = inst.dist(c, a), db = inst.dist(c, b);
      return da != db ? da < db : a < b;
    });
  }
  return lists;
}

}  // namespace

CandidateLists::CandidateLists(const Instance& inst, int k, Kind kind)
    : inst_(&inst), distanceSorted_(true) {
  if (k < 1) throw std::invalid_argument("CandidateLists: k must be >= 1");
  k = std::min(k, inst.n() - 1);
  assign(kind == Kind::kQuadrant ? quadrantLists(inst, k)
                                 : nearestLists(inst, k));
}

CandidateLists::CandidateLists(const Instance& inst,
                               std::vector<std::vector<int>> lists,
                               bool distanceSorted)
    : inst_(&inst), distanceSorted_(distanceSorted) {
  if (lists.size() != std::size_t(inst.n()))
    throw std::invalid_argument("CandidateLists: wrong number of lists");
  assign(std::move(lists));
}

void CandidateLists::assign(std::vector<std::vector<int>> lists) {
  offsets_.assign(lists.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t c = 0; c < lists.size(); ++c) {
    total += lists[c].size();
    offsets_[c + 1] = total;
    maxDegree_ = std::max(maxDegree_, static_cast<int>(lists[c].size()));
  }
  data_.reserve(total);
  for (auto& l : lists) data_.insert(data_.end(), l.begin(), l.end());
  // Annotate every candidate edge once; scans then never re-evaluate the
  // metric for d(c, candidate).
  const DistanceKernel dist(*inst_);
  dists_.resize(data_.size());
  for (std::size_t c = 0; c + 1 < offsets_.size(); ++c)
    for (std::size_t e = offsets_[c]; e < offsets_[c + 1]; ++e)
      dists_[e] = dist(static_cast<int>(c), data_[e]);
  DISTCLK_AUDIT_HOOK(auditCheck("CandidateLists::assign"));
}

bool CandidateLists::contains(int a, int b) const noexcept {
  const auto cand = of(a);
  return std::find(cand.begin(), cand.end(), b) != cand.end();
}

void CandidateLists::makeSymmetric() {
  const int nn = n();
  std::vector<std::vector<int>> extra(static_cast<std::size_t>(nn));
  for (int a = 0; a < nn; ++a)
    for (int b : of(a))
      if (!contains(b, a)) extra[std::size_t(b)].push_back(a);

  const DistanceKernel dist(*inst_);
  std::vector<std::vector<int>> merged(static_cast<std::size_t>(nn));
  for (int c = 0; c < nn; ++c) {
    auto& m = merged[std::size_t(c)];
    const auto cur = of(c);
    m.assign(cur.begin(), cur.end());
    for (int e : extra[std::size_t(c)])
      if (std::find(m.begin(), m.end(), e) == m.end()) m.push_back(e);
    // Appending the reverse edges alone would leave the list out of order;
    // restore the ascending-distance invariant the early-break scans rely
    // on. Externally ordered lists (alpha-nearness) keep their own order.
    if (distanceSorted_) {
      std::sort(m.begin(), m.end(), [&](int a, int b) {
        const auto da = dist(c, a), db = dist(c, b);
        return da != db ? da < db : a < b;
      });
    }
  }
  offsets_.clear();
  data_.clear();
  dists_.clear();
  maxDegree_ = 0;
  assign(std::move(merged));
  DISTCLK_AUDIT_HOOK(auditCheck("CandidateLists::makeSymmetric"));
}

void CandidateLists::auditCheck(const char* where) const {
  const int nn = n();
  if (offsets_.empty() || offsets_.front() != 0 ||
      offsets_.back() != data_.size() || dists_.size() != data_.size())
    audit::fail("CandidateLists", where, "CSR layout incoherent");
  const DistanceKernel dist(*inst_);
  for (int c = 0; c < nn; ++c) {
    if (offsets_[std::size_t(c)] > offsets_[std::size_t(c) + 1])
      audit::fail("CandidateLists", where, "CSR offsets not monotone");
    const auto cand = of(c);
    const auto cd = distOf(c);
    for (std::size_t i = 0; i < cand.size(); ++i) {
      const int b = cand[i];
      if (b < 0 || b >= nn || b == c)
        audit::fail("CandidateLists", where,
                    "candidate out of range or self-loop");
      if (cd[i] != dist(c, b))
        audit::fail("CandidateLists", where,
                    "distance annotation != metric evaluation");
      if (distanceSorted_ && i > 0 && cd[i] < cd[i - 1])
        audit::fail("CandidateLists", where,
                    "list not ascending in distance despite distanceSorted");
    }
  }
}

}  // namespace distclk
