#include "tsp/neighbors.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "tsp/dist_kernel.h"
#include "tsp/kdtree.h"
#include "util/audit.h"
#include "util/task_pool.h"

namespace distclk {

CandidateLists::CandidateLists(const Instance& inst, int k, Kind kind)
    : CandidateLists(inst, k, kind, nullptr, nullptr) {}

CandidateLists::CandidateLists(const Instance& inst, int k, Kind kind,
                               const KdTree* tree, TaskPool* pool)
    : inst_(&inst), distanceSorted_(true) {
  if (k < 1) throw std::invalid_argument("CandidateLists: k must be >= 1");
  k = std::min(k, inst.n() - 1);
  if (k <= 0) {
    // Degenerate single-city instance: empty lists, coherent CSR.
    offsets_.assign(std::size_t(inst.n()) + 1, 0);
    return;
  }
  buildFixedK(k, kind, tree, pool);
}

void CandidateLists::buildFixedK(int k, Kind kind, const KdTree* tree,
                                 TaskPool* pool) {
  const int n = inst_->n();
  // Every construction below emits exactly k candidates per city (k is
  // already clamped to n-1), so the whole CSR layout is known up front:
  // no incremental growth, and shard s can write rows [begin, end) of
  // data_/dists_ with no coordination.
  offsets_.resize(std::size_t(n) + 1);
  for (std::size_t c = 0; c < offsets_.size(); ++c)
    offsets_[c] = c * std::size_t(k);
  data_.resize(std::size_t(n) * std::size_t(k));
  dists_.resize(data_.size());
  maxDegree_ = k;

  std::optional<KdTree> ownTree;
  if (tree == nullptr && inst_->hasCoords()) {
    ownTree.emplace(inst_->points(), pool);
    tree = &*ownTree;
  }
  // Quadrants are undefined without coordinates; fall back to k-nearest.
  const bool quadrant = kind == Kind::kQuadrant && tree != nullptr;
  // Over-shard relative to the worker count for load balance; boundaries
  // are a function of (n, shards) only, so the output never depends on
  // which worker fills which shard.
  const int shards = pool == nullptr ? 1 : pool->parallelism() * 4;
  TaskPool::parallelForShards(pool, n, shards, [&](int begin, int end) {
    if (tree == nullptr) {
      fillMatrixShard(k, begin, end);
    } else if (quadrant) {
      fillQuadrantShard(*tree, k, begin, end);
    } else {
      fillNearestShard(*tree, k, begin, end);
    }
  });
  DISTCLK_AUDIT_HOOK(auditCheck("CandidateLists::build"));
}

void CandidateLists::fillNearestShard(const KdTree& tree, int k, int begin,
                                      int end) {
  const DistanceKernel dist(*inst_);
  KnnScratch scratch;
  for (int c = begin; c < end; ++c) {
    int* row = data_.data() + std::size_t(c) * std::size_t(k);
    tree.knnInto(c, k, {row, std::size_t(k)}, scratch);  // writes exactly k
    std::int64_t* drow = dists_.data() + std::size_t(c) * std::size_t(k);
    for (int i = 0; i < k; ++i) drow[i] = dist(c, row[i]);
  }
}

void CandidateLists::fillQuadrantShard(const KdTree& tree, int k, int begin,
                                       int end) {
  const DistanceKernel dist(*inst_);
  const int n = inst_->n();
  const int perQuad = std::max(1, (k + 3) / 4);
  // Over-fetch nearest neighbors, then keep the closest `perQuad` per
  // quadrant; top up with globally nearest if quadrants are starved.
  const int fetch = std::min(n - 1, std::max(4 * k, 24));
  KnnScratch scratch;
  std::vector<int> cand(static_cast<std::size_t>(fetch));
  std::vector<int> sel;
  sel.reserve(std::size_t(k));
  for (int c = begin; c < end; ++c) {
    const int got = tree.knnInto(c, fetch, cand, scratch);
    const Point& pc = inst_->point(c);
    int quadCount[4] = {0, 0, 0, 0};
    sel.clear();
    for (int j = 0; j < got; ++j) {
      const int nb = cand[std::size_t(j)];
      const Point& pn = inst_->point(nb);
      const int q = (pn.x >= pc.x ? 1 : 0) | (pn.y >= pc.y ? 2 : 0);
      if (quadCount[q] < perQuad) {
        ++quadCount[q];
        sel.push_back(nb);
        if (static_cast<int>(sel.size()) >= k) break;
      }
    }
    for (int j = 0; j < got; ++j) {
      if (static_cast<int>(sel.size()) >= k) break;
      const int nb = cand[std::size_t(j)];
      if (std::find(sel.begin(), sel.end(), nb) == sel.end())
        sel.push_back(nb);
    }
    // Keep the construction metric ordering (distance ascending).
    std::sort(sel.begin(), sel.end(), [&](int a, int b) {
      const auto da = dist(c, a), db = dist(c, b);
      return da != db ? da < db : a < b;
    });
    int* row = data_.data() + std::size_t(c) * std::size_t(k);
    std::int64_t* drow = dists_.data() + std::size_t(c) * std::size_t(k);
    for (int i = 0; i < k; ++i) {
      row[i] = sel[std::size_t(i)];
      drow[i] = dist(c, row[i]);
    }
  }
}

void CandidateLists::fillMatrixShard(int k, int begin, int end) {
  const DistanceKernel dist(*inst_);
  const int n = inst_->n();
  std::vector<int> idx;
  idx.reserve(std::size_t(n));
  for (int c = begin; c < end; ++c) {
    idx.clear();
    for (int j = 0; j < n; ++j)
      if (j != c) idx.push_back(j);
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [&](int a, int b) {
                        const auto da = dist(c, a), db = dist(c, b);
                        return da != db ? da < db : a < b;
                      });
    int* row = data_.data() + std::size_t(c) * std::size_t(k);
    std::int64_t* drow = dists_.data() + std::size_t(c) * std::size_t(k);
    for (int i = 0; i < k; ++i) {
      row[i] = idx[std::size_t(i)];
      drow[i] = dist(c, row[i]);
    }
  }
}

CandidateLists::CandidateLists(const Instance& inst,
                               std::vector<std::vector<int>> lists,
                               bool distanceSorted)
    : inst_(&inst), distanceSorted_(distanceSorted) {
  if (lists.size() != std::size_t(inst.n()))
    throw std::invalid_argument("CandidateLists: wrong number of lists");
  assign(std::move(lists));
}

void CandidateLists::assign(std::vector<std::vector<int>> lists) {
  offsets_.assign(lists.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t c = 0; c < lists.size(); ++c) {
    total += lists[c].size();
    offsets_[c + 1] = total;
    maxDegree_ = std::max(maxDegree_, static_cast<int>(lists[c].size()));
  }
  data_.reserve(total);
  for (auto& l : lists) data_.insert(data_.end(), l.begin(), l.end());
  // Annotate every candidate edge once; scans then never re-evaluate the
  // metric for d(c, candidate).
  const DistanceKernel dist(*inst_);
  dists_.resize(data_.size());
  for (std::size_t c = 0; c + 1 < offsets_.size(); ++c)
    for (std::size_t e = offsets_[c]; e < offsets_[c + 1]; ++e)
      dists_[e] = dist(static_cast<int>(c), data_[e]);
  DISTCLK_AUDIT_HOOK(auditCheck("CandidateLists::assign"));
}

bool CandidateLists::contains(int a, int b) const noexcept {
  const auto cand = of(a);
  return std::find(cand.begin(), cand.end(), b) != cand.end();
}

void CandidateLists::makeSymmetric() {
  const int nn = n();
  std::vector<std::vector<int>> extra(static_cast<std::size_t>(nn));
  for (int a = 0; a < nn; ++a)
    for (int b : of(a))
      if (!contains(b, a)) extra[std::size_t(b)].push_back(a);

  const DistanceKernel dist(*inst_);
  std::vector<std::vector<int>> merged(static_cast<std::size_t>(nn));
  for (int c = 0; c < nn; ++c) {
    auto& m = merged[std::size_t(c)];
    const auto cur = of(c);
    m.assign(cur.begin(), cur.end());
    for (int e : extra[std::size_t(c)])
      if (std::find(m.begin(), m.end(), e) == m.end()) m.push_back(e);
    // Appending the reverse edges alone would leave the list out of order;
    // restore the ascending-distance invariant the early-break scans rely
    // on. Externally ordered lists (alpha-nearness) keep their own order.
    if (distanceSorted_) {
      std::sort(m.begin(), m.end(), [&](int a, int b) {
        const auto da = dist(c, a), db = dist(c, b);
        return da != db ? da < db : a < b;
      });
    }
  }
  offsets_.clear();
  data_.clear();
  dists_.clear();
  maxDegree_ = 0;
  assign(std::move(merged));
  DISTCLK_AUDIT_HOOK(auditCheck("CandidateLists::makeSymmetric"));
}

void CandidateLists::auditCheck(const char* where) const {
  const int nn = n();
  if (offsets_.empty() || offsets_.front() != 0 ||
      offsets_.back() != data_.size() || dists_.size() != data_.size())
    audit::fail("CandidateLists", where, "CSR layout incoherent");
  const DistanceKernel dist(*inst_);
  for (int c = 0; c < nn; ++c) {
    if (offsets_[std::size_t(c)] > offsets_[std::size_t(c) + 1])
      audit::fail("CandidateLists", where, "CSR offsets not monotone");
    const auto cand = of(c);
    const auto cd = distOf(c);
    for (std::size_t i = 0; i < cand.size(); ++i) {
      const int b = cand[i];
      if (b < 0 || b >= nn || b == c)
        audit::fail("CandidateLists", where,
                    "candidate out of range or self-loop");
      if (cd[i] != dist(c, b))
        audit::fail("CandidateLists", where,
                    "distance annotation != metric evaluation");
      if (distanceSorted_ && i > 0 && cd[i] < cd[i - 1])
        audit::fail("CandidateLists", where,
                    "list not ascending in distance despite distanceSorted");
    }
  }
}

}  // namespace distclk
