// Candidate neighbor lists for local search. Lin-Kernighan only considers
// edges to a city's candidates, which turns O(n^2) scans into O(n·k).
// Supported constructions: k-nearest (kd-tree for geometric instances,
// O(n^2 log k) fallback for explicit matrices), quadrant neighbors (ABCC's
// default for clustered instances), and externally supplied orders (used for
// alpha-nearness lists from the Held-Karp module and for tour-merging's
// union-edge restriction).
#pragma once

#include <span>
#include <vector>

#include "tsp/instance.h"

namespace distclk {

class CandidateLists {
 public:
  enum class Kind {
    kNearest,   ///< plain k nearest neighbors
    kQuadrant,  ///< nearest per coordinate quadrant, topped up with nearest
  };

  /// Builds lists of (up to) k candidates per city.
  CandidateLists(const Instance& inst, int k, Kind kind = Kind::kNearest);

  /// Wraps externally computed lists (e.g. alpha-nearness).
  CandidateLists(const Instance& inst, std::vector<std::vector<int>> lists);

  int maxDegree() const noexcept { return maxDegree_; }
  int n() const noexcept { return static_cast<int>(offsets_.size()) - 1; }

  /// Candidates of `city`, ordered by the construction metric (ascending).
  std::span<const int> of(int city) const noexcept {
    const auto b = offsets_[std::size_t(city)];
    const auto e = offsets_[std::size_t(city) + 1];
    return {data_.data() + b, data_.data() + e};
  }

  /// True iff `b` appears in a's candidate list.
  bool contains(int a, int b) const noexcept;

  /// Adds the reverse of every directed candidate edge, so the candidate
  /// graph becomes symmetric (new entries are appended after existing ones).
  void makeSymmetric();

 private:
  void assign(std::vector<std::vector<int>> lists);

  std::vector<std::size_t> offsets_;  // CSR layout
  std::vector<int> data_;
  int maxDegree_ = 0;
};

}  // namespace distclk
