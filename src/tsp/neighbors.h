// Candidate neighbor lists for local search. Lin-Kernighan only considers
// edges to a city's candidates, which turns O(n^2) scans into O(n·k).
// Supported constructions: k-nearest (kd-tree for geometric instances,
// O(n^2 log k) fallback for explicit matrices), quadrant neighbors (ABCC's
// default for clustered instances), and externally supplied orders (used for
// alpha-nearness lists from the Held-Karp module and for tour-merging's
// union-edge restriction).
//
// Lists are stored in CSR layout with a parallel distance annotation: every
// candidate edge's integral distance is computed once at construction, so
// the LK/2-opt/Or-opt candidate scans read d(c, candidate) from memory
// instead of re-evaluating the metric per visit (see tsp/dist_kernel.h).
//
// Construction is shardable: every city's list has exactly
// min(k, n-1) entries, so the CSR arrays are sized once up front and
// contiguous city shards fill disjoint regions (k-NN via the
// allocation-free KdTree::knnInto, distances annotated in the same sweep).
// Shard boundaries depend only on (n, shard count), never on the worker
// schedule, so the CSR bytes are identical for every thread count
// (DESIGN.md §13; pinned by tests/test_prep_parallel.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tsp/instance.h"

namespace distclk {

class KdTree;
class TaskPool;

class CandidateLists {
 public:
  enum class Kind {
    kNearest,   ///< plain k nearest neighbors
    kQuadrant,  ///< nearest per coordinate quadrant, topped up with nearest
  };

  /// Builds lists of (up to) k candidates per city.
  CandidateLists(const Instance& inst, int k, Kind kind = Kind::kNearest);

  /// Same, reusing an already-built kd-tree over inst.points() and
  /// (optionally) filling city shards concurrently on `pool`. Both may be
  /// null: a null tree builds one internally when coordinates exist, a
  /// null pool fills serially. The resulting CSR arrays are byte-identical
  /// regardless of `pool`.
  CandidateLists(const Instance& inst, int k, Kind kind, const KdTree* tree,
                 TaskPool* pool);

  /// Wraps externally computed lists (e.g. alpha-nearness). Pass
  /// `distanceSorted = true` iff every list is ascending in tour distance
  /// (e.g. tour-merge union lists); alpha-ordered lists must pass false.
  CandidateLists(const Instance& inst, std::vector<std::vector<int>> lists,
                 bool distanceSorted = false);

  int maxDegree() const noexcept { return maxDegree_; }
  int n() const noexcept { return static_cast<int>(offsets_.size()) - 1; }

  /// True iff every per-city list is ascending in distance, making the
  /// sorted-candidates early break of the local searches safe.
  bool distanceSorted() const noexcept { return distanceSorted_; }

  /// Candidates of `city`, ordered by the construction metric (ascending).
  std::span<const int> of(int city) const noexcept {
    const auto b = offsets_[std::size_t(city)];
    const auto e = offsets_[std::size_t(city) + 1];
    return {data_.data() + b, data_.data() + e};
  }

  /// Distances to the candidates of `city`, aligned with of(city):
  /// distOf(c)[i] == inst.dist(c, of(c)[i]), precomputed at construction.
  std::span<const std::int64_t> distOf(int city) const noexcept {
    const auto b = offsets_[std::size_t(city)];
    const auto e = offsets_[std::size_t(city) + 1];
    return {dists_.data() + b, dists_.data() + e};
  }

  /// True iff `b` appears in a's candidate list.
  bool contains(int a, int b) const noexcept;

  /// Adds the reverse of every directed candidate edge, so the candidate
  /// graph becomes symmetric. Distance-sorted lists are re-sorted by
  /// (distance, city) afterwards, preserving the ascending invariant the
  /// local searches' early break relies on; externally ordered lists keep
  /// their order and get the new entries appended.
  void makeSymmetric();

  /// Audit-mode invariant check: CSR layout coherent (offsets monotone and
  /// covering), every candidate in range and non-self, the distance
  /// annotation exact, and — when distanceSorted() — every list ascending
  /// in distance. Aborts with a diagnostic on violation; hooked after
  /// construction and makeSymmetric() in -DDISTCLK_AUDIT=ON builds.
  void auditCheck(const char* where) const;

 private:
  void assign(std::vector<std::vector<int>> lists);
  /// Uniform-degree build: offsets from (n, k) up front, then contiguous
  /// city shards filled into disjoint data_/dists_ regions.
  void buildFixedK(int k, Kind kind, const KdTree* tree, TaskPool* pool);
  void fillNearestShard(const KdTree& tree, int k, int begin, int end);
  void fillQuadrantShard(const KdTree& tree, int k, int begin, int end);
  void fillMatrixShard(int k, int begin, int end);

  const Instance* inst_;
  std::vector<std::size_t> offsets_;  // CSR layout
  std::vector<int> data_;
  std::vector<std::int64_t> dists_;  // parallel to data_
  int maxDegree_ = 0;
  bool distanceSorted_ = false;
};

}  // namespace distclk
