#include "tsp/tour.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <stdexcept>

#include "util/audit.h"

namespace distclk {

Tour::Tour(const Instance& inst) : inst_(&inst), kern_(inst) {
  order_.resize(std::size_t(inst.n()));
  std::iota(order_.begin(), order_.end(), 0);
  rebuildPos();
  length_ = inst_->tourLength(order_);
}

Tour::Tour(const Instance& inst, std::vector<int> order)
    : inst_(&inst), kern_(inst) {
  if (order.size() != std::size_t(inst.n()))
    throw std::invalid_argument("Tour: order size != instance size");
  order_ = std::move(order);
  rebuildPos();
  length_ = inst_->tourLength(order_);
}

void Tour::rebuildPos() {
  pos_.assign(order_.size(), -1);
  for (std::size_t p = 0; p < order_.size(); ++p) {
    const int c = order_[p];
    if (c < 0 || std::size_t(c) >= order_.size() || pos_[std::size_t(c)] != -1)
      throw std::invalid_argument("Tour: order is not a permutation");
    pos_[std::size_t(c)] = static_cast<int>(p);
  }
}

void Tour::setOrder(std::vector<int> order) {
  if (order.size() != order_.size())
    throw std::invalid_argument("Tour: order size mismatch");
  order_ = std::move(order);
  rebuildPos();
  length_ = inst_->tourLength(order_);
  DISTCLK_AUDIT_HOOK(auditCheck("Tour::setOrder"));
}

bool Tour::between(int a, int b, int c) const noexcept {
  const int pa = pos(a), pb = pos(b), pc = pos(c);
  if (pa <= pc) return pa < pb && pb < pc;
  return pb > pa || pb < pc;  // wrapped interval
}

void Tour::rawReverse(std::size_t i, std::size_t j, std::size_t count) {
  // This loop moves the bulk of LK's bytes, so it must not pay a modulo per
  // element: advance the two cursors linearly and re-wrap them only when a
  // run ends (each cursor wraps at most once per reversal). The swap
  // sequence is exactly the one the per-element-modulo form produced.
  const std::size_t n = order_.size();
  int* const ord = order_.data();
  int* const pos = pos_.data();
  std::size_t ii = i, jj = j;
  std::size_t left = count / 2;
  while (left > 0) {
    std::size_t run = std::min(left, std::min(n - ii, jj + 1));
    left -= run;
    for (; run > 0; --run) {
      const int a = ord[ii];
      const int b = ord[jj];
      ord[ii] = b;
      ord[jj] = a;
      pos[std::size_t(b)] = static_cast<int>(ii);
      pos[std::size_t(a)] = static_cast<int>(jj);
      ++ii;
      --jj;
    }
    if (ii == n) ii = 0;
    if (jj == std::size_t(-1)) jj = n - 1;
  }
}

void Tour::reverseSegment(int i, int j) {
  const auto n = static_cast<std::size_t>(order_.size());
  auto ui = static_cast<std::size_t>(i), uj = static_cast<std::size_t>(j);
  std::size_t len = (uj + n - ui) % n + 1;
  if (len >= n) return;  // whole tour: identical cycle

  // Boundary edges change regardless of which arc we physically flip.
  const int before = order_[(ui + n - 1) % n];
  const int first = order_[ui];
  const int last = order_[uj];
  const int after = order_[(uj + 1) % n];
  length_ += kern_(before, last) + kern_(first, after) -
             kern_(before, first) - kern_(last, after);

  if (len * 2 <= n) {
    rawReverse(ui, uj, len);
  } else {
    // Flip the complementary arc [j+1, i-1]; same resulting cycle.
    rawReverse((uj + 1) % n, (ui + n - 1) % n, n - len);
  }
  DISTCLK_AUDIT_HOOK(auditCheck("Tour::reverseSegment"));
}

std::int64_t Tour::twoOptMove(int a, int b) {
  const int na = next(a);
  const int nb = next(b);
  if (a == b || na == b || nb == a) return 0;  // degenerate: no-op
  const std::int64_t delta = kern_(a, b) + kern_(na, nb) -
                             kern_(a, na) - kern_(b, nb);
  // Removing (a,na) and (b,nb), adding (a,b)+(na,nb) == reversing na..b.
  reverseSegment(pos(na), pos(b));
  return delta;
}

std::int64_t Tour::orOptMove(int s, int segLen, int c, bool reversed) {
  if (segLen < 1) throw std::invalid_argument("orOptMove: segLen must be >=1");
  const int n = this->n();
  if (segLen + 2 > n)
    throw std::invalid_argument("orOptMove: segment too long");

  const int pS = pos(s);
  int pEnd = pS + segLen - 1;
  if (pEnd >= n) pEnd -= n;
  const int segEnd = order_[std::size_t(pEnd)];
  const int before = prev(s);
  const int after = next(segEnd);
  const int cNext = next(c);
  // c (and its successor edge) must lie outside the segment and not be the
  // edge we are already on.
  if (c == before || cNext == s) return 0;
  {
    int offset = pos(c) - pS;
    if (offset < 0) offset += n;
    if (offset < segLen)
      throw std::invalid_argument("orOptMove: c inside segment");
  }

  const int head = reversed ? segEnd : s;
  const int tail = reversed ? s : segEnd;
  const std::int64_t delta =
      kern_(before, after) + kern_(c, head) +
      kern_(tail, cNext) - kern_(before, s) -
      kern_(segEnd, after) - kern_(c, cNext);

  // Stash the segment, then close its gap by shifting the shorter of the
  // two arcs between segment and insertion point: O(min arc) instead of the
  // full-rebuild O(n) this used to cost, and allocation-free for the tiny
  // segments Or-opt actually moves.
  std::array<int, 8> small;
  std::vector<int> big;
  int* seg = small.data();
  if (segLen > static_cast<int>(small.size())) {
    big.resize(std::size_t(segLen));
    seg = big.data();
  }
  for (int k = 0; k < segLen; ++k) {
    int p = pS + k;
    if (p >= n) p -= n;
    seg[k] = order_[std::size_t(p)];
  }

  int gapFwd = pos(c) - pEnd;  // cities after..c, walked when shifting left
  if (gapFwd < 0) gapFwd += n;
  const int gapBack = n - segLen - gapFwd;  // cities cNext..before
  const auto place = [&](int p, int city) {
    order_[std::size_t(p)] = city;
    pos_[std::size_t(city)] = p;
  };
  if (gapFwd <= gapBack) {
    // Shift after..c left by segLen, segment lands just behind c.
    int to = pS;
    int from = pEnd + 1 >= n ? 0 : pEnd + 1;
    for (int k = 0; k < gapFwd; ++k) {
      place(to, order_[std::size_t(from)]);
      if (++to >= n) to = 0;
      if (++from >= n) from = 0;
    }
    for (int k = 0; k < segLen; ++k) {
      place(to, reversed ? seg[segLen - 1 - k] : seg[k]);
      if (++to >= n) to = 0;
    }
  } else {
    // Shift cNext..before right by segLen, segment lands just after c.
    int to = pEnd;
    int from = pS - 1 < 0 ? n - 1 : pS - 1;
    for (int k = 0; k < gapBack; ++k) {
      place(to, order_[std::size_t(from)]);
      if (--to < 0) to = n - 1;
      if (--from < 0) from = n - 1;
    }
    // Filling downward from the tail end of the freed block.
    for (int k = 0; k < segLen; ++k) {
      place(to, reversed ? seg[k] : seg[segLen - 1 - k]);
      if (--to < 0) to = n - 1;
    }
  }
  length_ += delta;
  DISTCLK_AUDIT_HOOK(auditCheck("Tour::orOptMove"));
  return delta;
}

std::int64_t Tour::doubleBridge(int p1, int p2, int p3) {
  const int n = this->n();
  if (!(0 < p1 && p1 < p2 && p2 < p3 && p3 < n))
    throw std::invalid_argument("doubleBridge: need 0 < p1 < p2 < p3 < n");
  // Segments A=[0,p1) B=[p1,p2) C=[p2,p3) D=[p3,n); recombine A C B D.
  // This is the classical ILS double-bridge 4-exchange (Martin/Otto/Felten):
  // no segment is reversed, and the move cannot be undone by sequential
  // 2-opt steps.
  const std::int64_t delta =
      kern_(order_[std::size_t(p1 - 1)], order_[std::size_t(p2)]) +
      kern_(order_[std::size_t(p3 - 1)], order_[std::size_t(p1)]) +
      kern_(order_[std::size_t(p2 - 1)], order_[std::size_t(p3)]) -
      kern_(order_[std::size_t(p1 - 1)], order_[std::size_t(p1)]) -
      kern_(order_[std::size_t(p2 - 1)], order_[std::size_t(p2)]) -
      kern_(order_[std::size_t(p3 - 1)], order_[std::size_t(p3)]);

  std::vector<int> rebuilt;
  rebuilt.reserve(static_cast<std::size_t>(n));
  auto append = [&](int lo, int hi) {
    for (int p = lo; p < hi; ++p) rebuilt.push_back(order_[std::size_t(p)]);
  };
  append(0, p1);
  append(p2, p3);
  append(p1, p2);
  append(p3, n);
  order_ = std::move(rebuilt);
  for (std::size_t p = 0; p < order_.size(); ++p)
    pos_[std::size_t(order_[p])] = static_cast<int>(p);
  length_ += delta;
  DISTCLK_AUDIT_HOOK(auditCheck("Tour::doubleBridge"));
  return delta;
}

std::int64_t Tour::kickDoubleBridge(int s, int p1, int p2, int p3,
                                    std::vector<int>& scratch) {
  const int n = this->n();
  if (!(0 <= s && s < n && 0 < p1 && p1 < p2 && p2 < p3 && p3 < n))
    throw std::invalid_argument(
        "kickDoubleBridge: need 0 <= s < n and 0 < p1 < p2 < p3 < n");
  if (scratch.size() != std::size_t(n)) scratch.resize(std::size_t(n));

  // rot(j): the city at rotated position j, i.e. order_[(s + j) mod n].
  // s + j < 2n, so one conditional subtraction replaces the modulo.
  auto rot = [&](int j) noexcept {
    int p = s + j;
    if (p >= n) p -= n;
    return order_[std::size_t(p)];
  };
  const std::int64_t delta =
      kern_(rot(p1 - 1), rot(p2)) + kern_(rot(p3 - 1), rot(p1)) +
      kern_(rot(p2 - 1), rot(p3)) - kern_(rot(p1 - 1), rot(p1)) -
      kern_(rot(p2 - 1), rot(p2)) - kern_(rot(p3 - 1), rot(p3));

  // Rotated segments A=[0,p1) B=[p1,p2) C=[p2,p3) D=[p3,n), recombined
  // A C B D straight into scratch, then swapped in.
  int idx = 0;
  auto append = [&](int lo, int hi) {
    for (int j = lo; j < hi; ++j) scratch[std::size_t(idx++)] = rot(j);
  };
  append(0, p1);
  append(p2, p3);
  append(p1, p2);
  append(p3, n);
  order_.swap(scratch);
  for (std::size_t p = 0; p < order_.size(); ++p)
    pos_[std::size_t(order_[p])] = static_cast<int>(p);
  length_ += delta;
  DISTCLK_AUDIT_HOOK(auditCheck("Tour::kickDoubleBridge"));
  return delta;
}

void Tour::undoKickDoubleBridge(int s, int p1, int p2, int p3,
                                std::int64_t delta, std::vector<int>& scratch) {
  const int n = this->n();
  if (!(0 <= s && s < n && 0 < p1 && p1 < p2 && p2 < p3 && p3 < n))
    throw std::invalid_argument(
        "undoKickDoubleBridge: need 0 <= s < n and 0 < p1 < p2 < p3 < n");
  if (scratch.size() != std::size_t(n)) scratch.resize(std::size_t(n));

  // Forward map: result position j holds rotated source position src(j)
  // (src = identity on A and D, C's block shifted to p1, B's to p1+|C|).
  // Invert by writing each result city back to raw position (s + src) mod n.
  auto put = [&](int srcJ, int j) {
    int p = s + srcJ;
    if (p >= n) p -= n;
    scratch[std::size_t(p)] = order_[std::size_t(j)];
  };
  const int lenC = p3 - p2;
  for (int j = 0; j < p1; ++j) put(j, j);
  for (int t = 0; t < lenC; ++t) put(p2 + t, p1 + t);
  for (int t = 0; t < p2 - p1; ++t) put(p1 + t, p1 + lenC + t);
  for (int j = p3; j < n; ++j) put(j, j);
  order_.swap(scratch);
  for (std::size_t p = 0; p < order_.size(); ++p)
    pos_[std::size_t(order_[p])] = static_cast<int>(p);
  length_ -= delta;
  DISTCLK_AUDIT_HOOK(auditCheck("Tour::undoKickDoubleBridge"));
}

bool Tour::valid() const {
  const std::size_t n = order_.size();
  if (pos_.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (std::size_t p = 0; p < n; ++p) {
    const int c = order_[p];
    if (c < 0 || std::size_t(c) >= n || seen[std::size_t(c)]) return false;
    seen[std::size_t(c)] = true;
    if (pos_[std::size_t(c)] != static_cast<int>(p)) return false;
  }
  return length_ == inst_->tourLength(order_);
}

void Tour::auditCheck(const char* where) const {
  const std::size_t n = order_.size();
  if (pos_.size() != n)
    audit::fail("Tour", where, "pos array size != order size");
  std::vector<bool> seen(n, false);
  for (std::size_t p = 0; p < n; ++p) {
    const int c = order_[p];
    if (c < 0 || std::size_t(c) >= n)
      audit::fail("Tour", where, "city out of range in order");
    if (seen[std::size_t(c)])
      audit::fail("Tour", where, "order is not a permutation (duplicate)");
    seen[std::size_t(c)] = true;
    if (pos_[std::size_t(c)] != static_cast<int>(p))
      audit::fail("Tour", where, "position index incoherent with order");
  }
  if (length_ != inst_->tourLength(order_))
    audit::fail("Tour", where, "cached length != recomputed tour length");
}

}  // namespace distclk
