// Tour representation: city order + inverse position array, bound to an
// instance so it can maintain its length incrementally. Segment reversal
// always flips the shorter arc, giving the O(sqrt(n))-ish amortized behaviour
// classical array-based Lin-Kernighan implementations rely on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tsp/dist_kernel.h"
#include "tsp/instance.h"

namespace distclk {

class Tour {
 public:
  /// Identity tour 0,1,...,n-1 over `inst` (which must outlive the tour).
  explicit Tour(const Instance& inst);

  /// Tour with a given city order (must be a permutation of 0..n-1).
  Tour(const Instance& inst, std::vector<int> order);

  const Instance& instance() const noexcept { return *inst_; }
  int n() const noexcept { return static_cast<int>(order_.size()); }

  /// City at tour position p (0 <= p < n).
  int at(int p) const noexcept { return order_[std::size_t(p)]; }
  /// Tour position of city c.
  int pos(int c) const noexcept { return pos_[std::size_t(c)]; }
  /// Successor / predecessor city of city c along the tour.
  int next(int c) const noexcept {
    return order_[nextPos(std::size_t(pos_[std::size_t(c)]))];
  }
  int prev(int c) const noexcept {
    return order_[prevPos(std::size_t(pos_[std::size_t(c)]))];
  }

  /// True iff city b lies strictly between a and c when walking forward
  /// from a (the classical `between` predicate of tour data structures).
  bool between(int a, int b, int c) const noexcept;

  std::int64_t length() const noexcept { return length_; }
  std::span<const int> order() const noexcept { return order_; }
  std::vector<int> orderVector() const { return order_; }

  /// Replaces the permutation wholesale (recomputes length).
  void setOrder(std::vector<int> order);

  /// 2-opt move: removes edges (a, next(a)) and (b, next(b)) and reconnects
  /// as (a, b) + (next(a), next(b)), reversing the shorter arc. `a` and `b`
  /// must be distinct and not tour-adjacent in a way that makes the move a
  /// no-op (a == b or next(a) == b and next(b) == a are rejected).
  /// Returns the (signed) change in tour length.
  std::int64_t twoOptMove(int a, int b);

  /// Or-opt move: relocates the segment of `segLen` cities starting at city
  /// `s` (walking forward) to sit between city `c` and next(c), optionally
  /// reversed. `c` must not be inside the segment nor the segment's
  /// predecessor. Returns the change in tour length.
  std::int64_t orOptMove(int s, int segLen, int c, bool reversed);

  /// Double-bridge 4-exchange at tour positions p1<p2<p3 (cutting after
  /// positions 0..p1-1 | p1..p2-1 | p2..p3-1 | p3..n-1 and recombining
  /// A C B D). This is the CLK "kick". Positions must satisfy
  /// 0 < p1 < p2 < p3 < n. Returns the change in tour length.
  std::int64_t doubleBridge(int p1, int p2, int p3);

  /// Double bridge on the rotated view anchored at raw position s: one
  /// in-place pass equivalent to rotating the array so position s becomes
  /// the origin (setOrder of the rotation) followed by doubleBridge(p1, p2,
  /// p3) — bit-identical resulting array, position table, and cached length
  /// — without setOrder's O(n) distance recomputation or either step's heap
  /// allocation. `scratch` is swapped with the order array (resized to n if
  /// needed). Returns the change in tour length.
  std::int64_t kickDoubleBridge(int s, int p1, int p2, int p3,
                                std::vector<int>& scratch);

  /// Exact inverse of kickDoubleBridge called with the same parameters and
  /// its returned delta. The array must be in the state kickDoubleBridge
  /// left it (unflip any LK repair flips first).
  void undoKickDoubleBridge(int s, int p1, int p2, int p3, std::int64_t delta,
                            std::vector<int>& scratch);

  /// Reverses cities at cyclic positions i..j inclusive (forward from i),
  /// flipping whichever arc is shorter. Maintains length incrementally.
  void reverseSegment(int i, int j);

  /// City-addressed reversal of the forward path a..b — the common surface
  /// shared with BigTour that the LK engine is written against.
  void reverseForward(int a, int b) { reverseSegment(pos(a), pos(b)); }

  /// Invertible flip for LK chain rewinding. reverseSegment may physically
  /// reverse the complementary arc (same cycle, mirrored array), so the
  /// only safe inverse is replaying the identical positional call — the
  /// token captures those positions. BigTour exposes the same API with a
  /// city-pair token.
  using FlipToken = std::pair<int, int>;
  FlipToken flipForward(int a, int b) {
    const FlipToken token{pos(a), pos(b)};
    reverseSegment(token.first, token.second);
    return token;
  }
  void unflip(const FlipToken& token) {
    reverseSegment(token.first, token.second);
  }

  /// Full invariant check (permutation valid, pos inverse of order, cached
  /// length equals recomputation). Intended for tests; O(n).
  bool valid() const;

  /// Audit-mode invariant check: like valid(), but aborts with a diagnostic
  /// naming `where` and the violated invariant. Called automatically after
  /// every mutating operation in -DDISTCLK_AUDIT=ON builds (util/audit.h).
  void auditCheck(const char* where) const;

 private:
  std::size_t nextPos(std::size_t p) const noexcept {
    return p + 1 == order_.size() ? 0 : p + 1;
  }
  std::size_t prevPos(std::size_t p) const noexcept {
    return p == 0 ? order_.size() - 1 : p - 1;
  }
  void rebuildPos();
  void rawReverse(std::size_t i, std::size_t j, std::size_t count);

  const Instance* inst_;
  DistanceKernel kern_;  // hot-path evaluator for incremental length updates
  std::vector<int> order_;
  std::vector<int> pos_;
  std::int64_t length_ = 0;
};

}  // namespace distclk
