// Large-instance tour: the TwoLevelList segment structure bound to an
// instance with incremental length bookkeeping. Exposes the same local-
// search surface as the array Tour (next/prev/length/reverseForward), so
// the LK engine runs on either; reversals cost O(sqrt(n)) instead of the
// array's O(shorter arc), which is what makes pla85900-class instances
// workable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tsp/dist_kernel.h"
#include "tsp/instance.h"
#include "tsp/twolevel.h"

namespace distclk {

class BigTour {
 public:
  explicit BigTour(const Instance& inst);
  BigTour(const Instance& inst, std::vector<int> order);

  const Instance& instance() const noexcept { return *inst_; }
  int n() const noexcept { return list_.n(); }

  int next(int c) const noexcept { return list_.next(c); }
  int prev(int c) const noexcept { return list_.prev(c); }
  bool between(int a, int b, int c) const { return list_.between(a, b, c); }

  std::int64_t length() const noexcept { return length_; }
  std::vector<int> orderVector() const { return list_.order(0); }

  /// Reverses the forward path a..b, updating the cached length.
  void reverseForward(int a, int b);

  /// Invertible flip for LK chain rewinding: the segment list reverses the
  /// addressed span explicitly (no complement trick), so the inverse of
  /// reverseForward(a, b) is exactly reverseForward(b, a).
  using FlipToken = std::pair<int, int>;
  FlipToken flipForward(int a, int b) {
    reverseForward(a, b);
    return {b, a};
  }
  void unflip(const FlipToken& token) {
    reverseForward(token.first, token.second);
  }

  /// O(n) invariant check (structure valid, cached length exact).
  bool valid() const;

  /// Audit-mode invariant check: delegates to the segment list's audit,
  /// then verifies the cached length. Hooked after every reverseForward()
  /// in -DDISTCLK_AUDIT=ON builds (util/audit.h).
  void auditCheck(const char* where) const;

 private:
  const Instance* inst_;
  DistanceKernel kern_;  // hot-path evaluator for incremental length updates
  TwoLevelList list_;
  std::int64_t length_ = 0;
};

}  // namespace distclk
