// Tour comparison metrics. The distributed EA works because nodes explore
// *different* basins and exchange only winners; these metrics quantify
// that: shared-edge counts (bond similarity), the union-graph size that
// tour merging exploits, and edge-length profiles.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tsp/instance.h"

namespace distclk {

/// Number of undirected edges the two tours share (0..n).
int sharedEdges(std::span<const int> a, std::span<const int> b);

/// Bond similarity: sharedEdges / n in [0,1]. 1 means identical cycles.
double bondSimilarity(std::span<const int> a, std::span<const int> b);

/// Number of distinct undirected edges in the union of all tours
/// (n for one tour, up to k*n for k disjoint ones).
int unionEdgeCount(const std::vector<std::vector<int>>& tours);

/// Mean pairwise bond similarity of a population (1.0 for size < 2).
double populationDiversity(const std::vector<std::vector<int>>& tours);

struct EdgeLengthProfile {
  std::int64_t min = 0;
  std::int64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Distribution of edge lengths along a tour.
EdgeLengthProfile edgeLengthProfile(const Instance& inst,
                                    std::span<const int> order);

}  // namespace distclk
