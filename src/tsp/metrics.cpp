#include "tsp/metrics.h"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

#include "util/stats.h"

namespace distclk {

namespace {

std::set<std::pair<int, int>> edgeSet(std::span<const int> order) {
  std::set<std::pair<int, int>> edges;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int a = order[i];
    const int b = order[(i + 1) % order.size()];
    edges.insert({std::min(a, b), std::max(a, b)});
  }
  return edges;
}

}  // namespace

int sharedEdges(std::span<const int> a, std::span<const int> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("sharedEdges: tours of different size");
  const auto ea = edgeSet(a);
  const auto eb = edgeSet(b);
  int shared = 0;
  for (const auto& e : ea) shared += eb.count(e) > 0;
  return shared;
}

double bondSimilarity(std::span<const int> a, std::span<const int> b) {
  if (a.empty()) return 1.0;
  return static_cast<double>(sharedEdges(a, b)) / static_cast<double>(a.size());
}

int unionEdgeCount(const std::vector<std::vector<int>>& tours) {
  std::set<std::pair<int, int>> all;
  for (const auto& t : tours) {
    const auto edges = edgeSet(t);
    all.insert(edges.begin(), edges.end());
  }
  return static_cast<int>(all.size());
}

double populationDiversity(const std::vector<std::vector<int>>& tours) {
  if (tours.size() < 2) return 1.0;
  RunningStats sim;
  for (std::size_t i = 0; i < tours.size(); ++i)
    for (std::size_t j = i + 1; j < tours.size(); ++j)
      sim.add(bondSimilarity(tours[i], tours[j]));
  return sim.mean();
}

EdgeLengthProfile edgeLengthProfile(const Instance& inst,
                                    std::span<const int> order) {
  EdgeLengthProfile profile;
  if (order.size() < 2) return profile;
  std::vector<double> lengths;
  lengths.reserve(order.size());
  RunningStats stats;
  // min/max stay in integer space end to end: routing them through the
  // double accumulator and casting back is exactly the float->int pattern
  // the UBSan preset polices in distance code.
  std::int64_t mn = std::numeric_limits<std::int64_t>::max();
  std::int64_t mx = std::numeric_limits<std::int64_t>::min();
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto d =
        inst.dist(order[i], order[(i + 1) % order.size()]);
    mn = std::min(mn, d);
    mx = std::max(mx, d);
    lengths.push_back(static_cast<double>(d));
    stats.add(static_cast<double>(d));
  }
  profile.min = mn;
  profile.max = mx;
  profile.mean = stats.mean();
  profile.p50 = median(lengths);
  profile.p95 = quantile(lengths, 0.95);
  return profile;
}

}  // namespace distclk
