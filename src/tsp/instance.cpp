#include "tsp/instance.h"

#include <cmath>
#include <stdexcept>

#include "tsp/dist_kernel.h"

namespace distclk {

const char* toString(EdgeWeightType t) noexcept {
  switch (t) {
    case EdgeWeightType::kEuc2D: return "EUC_2D";
    case EdgeWeightType::kCeil2D: return "CEIL_2D";
    case EdgeWeightType::kAtt: return "ATT";
    case EdgeWeightType::kGeo: return "GEO";
    case EdgeWeightType::kMan2D: return "MAN_2D";
    case EdgeWeightType::kMax2D: return "MAX_2D";
    case EdgeWeightType::kExplicit: return "EXPLICIT";
  }
  return "?";
}

Instance::Instance(std::string name, std::vector<Point> pts,
                   EdgeWeightType type)
    : name_(std::move(name)), n_(pts.size()), type_(type),
      pts_(std::move(pts)) {
  if (n_ < 3) throw std::invalid_argument("Instance: need at least 3 cities");
  if (type_ == EdgeWeightType::kExplicit)
    throw std::invalid_argument("Instance: explicit type needs a matrix");
  buildKernelArrays();
}

Instance::Instance(std::string name, int n, std::vector<std::int64_t> matrix)
    : name_(std::move(name)), n_(static_cast<std::size_t>(n)),
      type_(EdgeWeightType::kExplicit), matrix_(std::move(matrix)) {
  if (n < 3) throw std::invalid_argument("Instance: need at least 3 cities");
  if (matrix_.size() != n_ * n_)
    throw std::invalid_argument("Instance: matrix size != n*n");
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = i + 1; j < n_; ++j)
      if (matrix_[i * n_ + j] != matrix_[j * n_ + i])
        throw std::invalid_argument("Instance: asymmetric matrix");
}

namespace {

// TSPLIB GEO conversion: coordinate DDD.MM (degrees.minutes) to radians.
double geoRadians(double coord) noexcept {
  const double deg = std::trunc(coord);
  const double min = coord - deg;
  constexpr double kPi = 3.141592;  // TSPLIB mandates this value of pi
  return kPi * (deg + 5.0 * min / 3.0) / 180.0;
}

}  // namespace

// For GEO the per-city DDD.MM -> radians conversion is hoisted here so the
// kernel's inner loop starts from the same doubles geomDist would compute;
// every other metric consumes the raw coordinates.
void Instance::buildKernelArrays() {
  kxs_.resize(n_);
  kys_.resize(n_);
  const bool geo = type_ == EdgeWeightType::kGeo;
  for (std::size_t c = 0; c < n_; ++c) {
    kxs_[c] = geo ? geoRadians(pts_[c].x) : pts_[c].x;
    kys_[c] = geo ? geoRadians(pts_[c].y) : pts_[c].y;
  }
}

std::int64_t Instance::geomDist(int i, int j) const noexcept {
  const Point& a = pts_[std::size_t(i)];
  const Point& b = pts_[std::size_t(j)];
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  switch (type_) {
    case EdgeWeightType::kEuc2D:
      return std::llround(std::sqrt(dx * dx + dy * dy));
    case EdgeWeightType::kCeil2D:
      return static_cast<std::int64_t>(std::ceil(std::sqrt(dx * dx + dy * dy)));
    case EdgeWeightType::kAtt: {
      const double r = std::sqrt((dx * dx + dy * dy) / 10.0);
      const auto t = std::llround(r);
      return static_cast<double>(t) < r ? t + 1 : t;
    }
    case EdgeWeightType::kGeo: {
      constexpr double kRadius = 6378.388;  // TSPLIB Earth radius
      const double latA = geoRadians(a.x), lonA = geoRadians(a.y);
      const double latB = geoRadians(b.x), lonB = geoRadians(b.y);
      const double q1 = std::cos(lonA - lonB);
      const double q2 = std::cos(latA - latB);
      const double q3 = std::cos(latA + latB);
      return static_cast<std::int64_t>(
          kRadius * std::acos(geoAcosArg(q1, q2, q3)) + 1.0);
    }
    case EdgeWeightType::kMan2D:
      return std::llround(std::abs(dx) + std::abs(dy));
    case EdgeWeightType::kMax2D:
      return std::max<std::int64_t>(std::llround(std::abs(dx)),
                                    std::llround(std::abs(dy)));
    case EdgeWeightType::kExplicit:
      break;  // handled by dist()
  }
  return 0;
}

std::int64_t Instance::tourLength(std::span<const int> order) const noexcept {
  if (order.size() < 2) return 0;
  const DistanceKernel d(*this);  // one dispatch for the whole walk
  std::int64_t total = d(order.back(), order.front());
  for (std::size_t i = 0; i + 1 < order.size(); ++i)
    total += d(order[i], order[i + 1]);
  return total;
}

}  // namespace distclk
