#include "tsp/gen.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace distclk {

namespace {
double clampTo(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}
}  // namespace

Instance uniformSquare(std::string name, int n, std::uint64_t seed,
                       double side) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  Instance inst(std::move(name), std::move(pts));
  inst.setComment("synthetic uniform square, seed=" + std::to_string(seed));
  return inst;
}

Instance clustered(std::string name, int n, int clusters, std::uint64_t seed,
                   double side, double sigma) {
  Rng rng(seed);
  if (sigma <= 0.0) sigma = side / (clusters * 5.0);
  std::vector<Point> centers;
  centers.reserve(static_cast<std::size_t>(clusters));
  for (int c = 0; c < clusters; ++c)
    centers.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Point& c = centers[rng.below(std::uint64_t(clusters))];
    pts.push_back({clampTo(c.x + sigma * rng.normal(), 0.0, side),
                   clampTo(c.y + sigma * rng.normal(), 0.0, side)});
  }
  Instance inst(std::move(name), std::move(pts));
  inst.setComment("synthetic clustered (" + std::to_string(clusters) +
                  " centers), seed=" + std::to_string(seed));
  return inst;
}

Instance drillPlate(std::string name, int n, std::uint64_t seed, double side) {
  Rng rng(seed);
  // Blocks of drill holes on a coarse grid. Each block is a small, very
  // dense rectangular raster (holes a few units apart on a plate of ~1e6),
  // which is what makes fl-type instances trap local search: inside a block
  // almost all permutations cost the same, so kicks rarely change length.
  const int blocks = std::max(4, n / 120);
  const int gridDim = static_cast<int>(std::ceil(std::sqrt(blocks)));
  const double cell = side / gridDim;
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  const int perBlock = (n * 9) / (blocks * 10);  // ~90% of points in blocks
  for (int b = 0; b < blocks && static_cast<int>(pts.size()) < n; ++b) {
    const double bx = (b % gridDim) * cell + cell * rng.uniform(0.15, 0.45);
    const double by = (b / gridDim) * cell + cell * rng.uniform(0.15, 0.45);
    const int rows = 2 + static_cast<int>(rng.below(4));
    const int holes = std::max(4, perBlock);
    const int cols = (holes + rows - 1) / rows;
    const double pitch = cell * 0.02;
    for (int h = 0; h < holes && static_cast<int>(pts.size()) < n; ++h) {
      const int r = h / cols, cidx = h % cols;
      pts.push_back({clampTo(bx + cidx * pitch, 0.0, side),
                     clampTo(by + r * pitch, 0.0, side)});
    }
  }
  while (static_cast<int>(pts.size()) < n)  // sparse connecting holes
    pts.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side)});
  Instance inst(std::move(name), std::move(pts));
  inst.setComment("synthetic drill plate, seed=" + std::to_string(seed));
  return inst;
}

Instance perforatedGrid(std::string name, int n, std::uint64_t seed,
                        double side) {
  Rng rng(seed);
  const int dim = static_cast<int>(std::ceil(std::sqrt(n * 1.3)));
  const double pitch = side / dim;
  // Cut out a few rectangular regions (component keep-outs on a board).
  struct Rect { double x0, y0, x1, y1; };
  std::vector<Rect> holes;
  const int nHoles = 3 + static_cast<int>(rng.below(4));
  for (int h = 0; h < nHoles; ++h) {
    const double w = side * rng.uniform(0.08, 0.2);
    const double ht = side * rng.uniform(0.08, 0.2);
    const double x0 = rng.uniform(0.0, side - w);
    const double y0 = rng.uniform(0.0, side - ht);
    holes.push_back({x0, y0, x0 + w, y0 + ht});
  }
  auto inHole = [&](double x, double y) {
    return std::any_of(holes.begin(), holes.end(), [&](const Rect& r) {
      return x >= r.x0 && x <= r.x1 && y >= r.y0 && y <= r.y1;
    });
  };
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int gy = 0; gy < dim && static_cast<int>(pts.size()) < n; ++gy) {
    for (int gx = 0; gx < dim && static_cast<int>(pts.size()) < n; ++gx) {
      const double x = (gx + rng.uniform(0.2, 0.8)) * pitch;
      const double y = (gy + rng.uniform(0.2, 0.8)) * pitch;
      if (!inHole(x, y)) pts.push_back({x, y});
    }
  }
  while (static_cast<int>(pts.size()) < n) {
    const double x = rng.uniform(0.0, side), y = rng.uniform(0.0, side);
    if (!inHole(x, y)) pts.push_back({x, y});
  }
  Instance inst(std::move(name), std::move(pts));
  inst.setComment("synthetic perforated grid, seed=" + std::to_string(seed));
  return inst;
}

Instance roadNetwork(std::string name, int n, std::uint64_t seed,
                     double side) {
  Rng rng(seed);
  const int towns = std::max(8, n / 60);
  struct Town { Point center; double weight; double spread; };
  std::vector<Town> ts;
  ts.reserve(static_cast<std::size_t>(towns));
  double totalWeight = 0.0;
  for (int t = 0; t < towns; ++t) {
    // Zipf-ish town sizes: a few big cities, many villages.
    const double w = 1.0 / std::pow(double(t + 1), 0.8);
    totalWeight += w;
    ts.push_back({{rng.uniform(0.0, side), rng.uniform(0.0, side)},
                  w,
                  side * rng.uniform(0.004, 0.03)});
  }
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  while (static_cast<int>(pts.size()) < n) {
    double pick = rng.uniform(0.0, totalWeight);
    std::size_t t = 0;
    while (t + 1 < ts.size() && pick > ts[t].weight) {
      pick -= ts[t].weight;
      ++t;
    }
    const Town& town = ts[t];
    pts.push_back(
        {clampTo(town.center.x + town.spread * rng.normal(), 0.0, side),
         clampTo(town.center.y + town.spread * rng.normal(), 0.0, side)});
  }
  Instance inst(std::move(name), std::move(pts));
  inst.setComment("synthetic road network, seed=" + std::to_string(seed));
  return inst;
}

}  // namespace distclk
