// Shared, immutable per-instance preprocessing: distance kernel view,
// candidate lists (and the kd-tree work buried in their construction),
// the deterministic quick-Boruvka construction order, and an optional
// Held-Karp lower bound — built once and consumed by every run over the
// same instance. An LRU ContextCache keyed by (instance content hash,
// preprocessing params) turns repeated jobs into near-zero-setup solves.
//
// Immutability contract: after build() returns, an InstanceContext is
// never mutated; it is safe to share one shared_ptr<const InstanceContext>
// across any number of concurrent runs. Trajectory neutrality: everything
// cached here (candidate CSR, construction order, HK bound) is a pure
// deterministic function of (instance bytes, PreprocessParams), so a
// cache hit produces bit-identical run trajectories to a cold build —
// pinned by tests/test_instance_context.cpp and tests/test_svc.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bound/held_karp.h"
#include "util/sync.h"
#include "tsp/dist_kernel.h"
#include "tsp/instance.h"
#include "tsp/neighbors.h"

namespace distclk {

/// Everything that parameterizes per-instance preprocessing. Two requests
/// with equal cacheKey() over content-identical instances may share one
/// InstanceContext.
struct PreprocessParams {
  int candidateK = 10;
  CandidateLists::Kind kind = CandidateLists::Kind::kNearest;
  /// Run CandidateLists::makeSymmetric() after construction.
  bool symmetric = false;
  /// Compute a Held-Karp lower bound at build time (exposed via heldKarp()).
  bool heldKarp = false;
  HeldKarpOptions heldKarpOptions;
  /// Build-time parallelism for the preprocessing pipeline (kd-tree build,
  /// candidate shards, partitioned construction). 1 = the exact serial
  /// path. Deliberately EXCLUDED from cacheKey(): every thread count
  /// produces byte-identical preprocessing output (DESIGN.md §13), so
  /// contexts built at different prepThreads are interchangeable.
  int prepThreads = 1;
  /// > 0 switches the construction tour to partitionedQuickBoruvkaTour
  /// with that many Hilbert-order shards. Changes the construction TOUR
  /// (not just its schedule), so it IS part of cacheKey(). 0 = the serial
  /// determinism-pinned quickBoruvkaTour.
  int partitionShards = 0;

  /// Canonical text form; equal strings == interchangeable preprocessing.
  std::string cacheKey() const;
};

/// Wall-time decomposition of one InstanceContext::build(), recorded on
/// every non-borrowed build and surfaced as prep.* metrics (obs) and the
/// svc job records.
struct PreprocessBuildStats {
  double kdtreeMs = 0.0;     ///< kd-tree construction (0 without coords)
  double candMs = 0.0;       ///< candidate CSR build (+ makeSymmetric)
  double constructMs = 0.0;  ///< Quick-Borůvka construction tour
  double heldKarpMs = 0.0;   ///< optional Held-Karp bound
  double totalMs = 0.0;      ///< whole build() wall time
  int threads = 1;           ///< parallelism actually used
};

/// FNV-1a over the instance payload (n, weight type, coordinates or the
/// explicit matrix). Two instances with equal hashes are treated as
/// content-identical by the cache regardless of name/comment.
std::uint64_t instanceContentHash(const Instance& inst);

class InstanceContext {
 public:
  /// Builds a context that co-owns `inst`. The expensive path: candidate
  /// construction (kd-tree for kNearest), construction tour, optional HK.
  static std::shared_ptr<const InstanceContext> build(
      std::shared_ptr<const Instance> inst, const PreprocessParams& params = {});

  /// Adapter for legacy call sites that already hold an Instance and
  /// CandidateLists by reference: borrows both (caller must keep them
  /// alive for the context's lifetime) and computes only the construction
  /// order. Never cached.
  static std::shared_ptr<const InstanceContext> borrow(
      const Instance& inst, const CandidateLists& cand);

  const Instance& instance() const noexcept { return *inst_; }
  const std::shared_ptr<const Instance>& instancePtr() const noexcept {
    return inst_;
  }
  const CandidateLists& candidates() const noexcept { return *cand_; }
  /// O(1) non-owning distance view (function-pointer dispatch hoisted).
  DistanceKernel kernel() const { return DistanceKernel(*inst_); }
  const PreprocessParams& params() const noexcept { return params_; }

  /// The deterministic quick-Boruvka construction order every node (and
  /// every restart) starts from. Cached so repeated runs skip the O(n k)
  /// greedy matching; identical to quickBoruvkaTour(instance(), candidates()).
  const std::vector<int>& constructionOrder() const noexcept {
    return constructionOrder_;
  }
  std::int64_t constructionLength() const noexcept {
    return constructionLength_;
  }

  /// Present iff params().heldKarp was set at build time.
  const std::optional<HeldKarpResult>& heldKarp() const noexcept {
    return heldKarp_;
  }

  /// Per-phase build wall times (all zero for borrowed contexts). Pure
  /// observability: not part of the cache identity or the trajectory.
  const PreprocessBuildStats& buildStats() const noexcept {
    return buildStats_;
  }

  std::uint64_t instanceHash() const noexcept { return instanceHash_; }
  bool borrowed() const noexcept { return borrowed_; }
  /// Full cache identity: "<instanceHash>/<params cacheKey>".
  std::string key() const;

  InstanceContext(const InstanceContext&) = delete;
  InstanceContext& operator=(const InstanceContext&) = delete;

 private:
  InstanceContext() = default;

  std::shared_ptr<const Instance> inst_;       // aliasing (non-owning) if borrowed
  std::shared_ptr<const CandidateLists> cand_; // aliasing if borrowed
  PreprocessParams params_;
  std::vector<int> constructionOrder_;
  std::int64_t constructionLength_ = 0;
  std::optional<HeldKarpResult> heldKarp_;
  PreprocessBuildStats buildStats_;
  std::uint64_t instanceHash_ = 0;
  bool borrowed_ = false;
};

/// Thread-safe LRU cache of built contexts, keyed by
/// (instance content hash, PreprocessParams::cacheKey). Contexts are
/// immutable, so a hit hands out the same shared_ptr that a concurrent
/// run may already be using. Builds happen under the cache lock: two
/// concurrent requests for the same key produce exactly one build (the
/// `builds` counter is what the determinism tests pin).
class ContextCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t builds = 0;
    std::int64_t evictions = 0;
  };

  explicit ContextCache(std::size_t capacity = 8);

  /// Returns the cached context for (hash(inst), params), building and
  /// inserting it on a miss. If `wasHit` is non-null it is set to whether
  /// the lookup hit.
  std::shared_ptr<const InstanceContext> get(
      const std::shared_ptr<const Instance>& inst,
      const PreprocessParams& params = {}, bool* wasHit = nullptr);

  Stats stats() const;
  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const InstanceContext> ctx;
    std::int64_t lastUsed = 0;
  };

  mutable sync::Mutex mu_{sync::LockRank::kContextCache, "ContextCache.mu"};
  std::size_t capacity_;  // immutable after construction
  std::int64_t tick_ DISTCLK_GUARDED_BY(mu_) = 0;
  std::map<std::string, Entry> entries_ DISTCLK_GUARDED_BY(mu_);
  Stats stats_ DISTCLK_GUARDED_BY(mu_);
};

}  // namespace distclk
