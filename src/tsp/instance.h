// TSP instance model: city coordinates plus a TSPLIB-conformant integral
// distance function. All costs in the library are int64 (TSPLIB rounds
// distances to integers), which keeps tour lengths exact and comparable.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace distclk {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Distance semantics, mirroring the TSPLIB EDGE_WEIGHT_TYPE keywords.
enum class EdgeWeightType {
  kEuc2D,    ///< round(sqrt(dx^2+dy^2)) — most TSPLIB instances
  kCeil2D,   ///< ceil(sqrt(dx^2+dy^2)) — e.g. the pla* instances
  kAtt,      ///< pseudo-Euclidean "ATT" metric (att48/att532)
  kGeo,      ///< geographical distance from latitude/longitude
  kMan2D,    ///< Manhattan distance
  kMax2D,    ///< Chebyshev distance
  kExplicit  ///< full distance matrix supplied
};

const char* toString(EdgeWeightType t) noexcept;

/// Immutable TSP instance. For kExplicit a full n*n matrix is stored;
/// all other types compute from coordinates on the fly.
class Instance {
 public:
  /// Geometric instance.
  Instance(std::string name, std::vector<Point> pts,
           EdgeWeightType type = EdgeWeightType::kEuc2D);

  /// Explicit-matrix instance; matrix is row-major n*n and must be symmetric.
  Instance(std::string name, int n, std::vector<std::int64_t> matrix);

  const std::string& name() const noexcept { return name_; }
  void setComment(std::string c) { comment_ = std::move(c); }
  const std::string& comment() const noexcept { return comment_; }

  int n() const noexcept { return static_cast<int>(n_); }
  EdgeWeightType weightType() const noexcept { return type_; }
  bool hasCoords() const noexcept { return !pts_.empty(); }
  const Point& point(int i) const noexcept { return pts_[std::size_t(i)]; }
  std::span<const Point> points() const noexcept { return pts_; }

  /// SoA coordinate arrays backing DistanceKernel (tsp/dist_kernel.h): the
  /// raw x/y values for planar metrics, the precomputed TSPLIB radians for
  /// GEO, and empty for kExplicit. Filled once at construction.
  std::span<const double> kernelXs() const noexcept { return kxs_; }
  std::span<const double> kernelYs() const noexcept { return kys_; }
  /// Row-major n*n matrix for kExplicit instances (empty otherwise).
  std::span<const std::int64_t> matrix() const noexcept { return matrix_; }

  /// Integral, symmetric distance between cities i and j.
  std::int64_t dist(int i, int j) const noexcept {
    if (type_ == EdgeWeightType::kExplicit)
      return matrix_[std::size_t(i) * n_ + std::size_t(j)];
    return geomDist(i, j);
  }

  /// Total length of a city permutation (closing edge included).
  std::int64_t tourLength(std::span<const int> order) const noexcept;

 private:
  std::int64_t geomDist(int i, int j) const noexcept;
  void buildKernelArrays();

  std::string name_;
  std::string comment_;
  std::size_t n_;
  EdgeWeightType type_;
  std::vector<Point> pts_;
  std::vector<std::int64_t> matrix_;  // only for kExplicit
  std::vector<double> kxs_, kys_;     // SoA substrate for DistanceKernel
};

}  // namespace distclk
