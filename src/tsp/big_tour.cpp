#include "tsp/big_tour.h"

#include <numeric>

#include "util/audit.h"

namespace distclk {

namespace {
std::vector<int> identityOrder(int n) {
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  return order;
}
}  // namespace

BigTour::BigTour(const Instance& inst)
    : BigTour(inst, identityOrder(inst.n())) {}

BigTour::BigTour(const Instance& inst, std::vector<int> order)
    : inst_(&inst), kern_(inst), list_(order) {
  length_ = inst.tourLength(order);
}

void BigTour::reverseForward(int a, int b) {
  if (a == b) return;
  const int before = list_.prev(a);
  const int after = list_.next(b);
  if (after == a) {
    // Whole-cycle reversal: the edge set (and hence the length) is
    // unchanged; only the traversal direction flips.
    list_.reverse(a, b);
    DISTCLK_AUDIT_HOOK(auditCheck("BigTour::reverseForward(whole-cycle)"));
    return;
  }
  length_ += kern_(before, b) + kern_(a, after) -
             kern_(before, a) - kern_(b, after);
  list_.reverse(a, b);
  DISTCLK_AUDIT_HOOK(auditCheck("BigTour::reverseForward"));
}

bool BigTour::valid() const {
  if (!list_.valid()) return false;
  return length_ == inst_->tourLength(list_.order(0));
}

void BigTour::auditCheck(const char* where) const {
  list_.auditCheck(where);
  if (length_ != inst_->tourLength(list_.order(0)))
    audit::fail("BigTour", where, "cached length != recomputed tour length");
}

}  // namespace distclk
