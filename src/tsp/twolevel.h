// Two-level doubly-linked tour representation (Chrobak/Szymacha/Krawczyk;
// the "segment list" flipper of Concorde and LKH). The array Tour reverses
// in O(shorter arc) = O(n) worst case; this structure splits the tour into
// ~sqrt(n) segments with orientation bits so a reversal touches whole
// segments only: O(sqrt(n)) amortized per flip, the right substrate for
// six-digit city counts. Kept as a pure permutation structure (no length
// bookkeeping) so it can back any cost model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace distclk {

class TwoLevelList {
 public:
  /// Builds from a city order (a permutation of 0..n-1).
  explicit TwoLevelList(std::span<const int> order);

  int n() const noexcept { return static_cast<int>(cityOf_.size()); }

  /// Tour successor / predecessor of city c.
  int next(int c) const noexcept;
  int prev(int c) const noexcept;

  /// True iff b lies strictly between a and c walking forward from a.
  bool between(int a, int b, int c) const;

  /// Reverses the forward path a..b (inclusive). Amortized O(sqrt(n)).
  void reverse(int a, int b);

  /// Current city order starting from city `start` (default: city at the
  /// head of the first segment).
  std::vector<int> order(int start = -1) const;

  /// Structural invariants: segment sizes, position indexes, linkage.
  bool valid() const;

  /// Audit-mode invariant check: like valid(), but aborts with a diagnostic
  /// naming `where` and the violated invariant (segment ordering, city
  /// parent pointers, coverage, next/prev coherence). Hooked after every
  /// reverse() in -DDISTCLK_AUDIT=ON builds (util/audit.h).
  void auditCheck(const char* where) const;

  /// Number of segments (exposed for tests and benchmarks).
  int segments() const noexcept { return static_cast<int>(segOrder_.size()); }

 private:
  struct Segment {
    std::vector<int> cities;  // in internal storage order
    bool reversed = false;    // traverse storage back-to-front when set
  };

  struct CityRef {
    int seg = -1;   // segment id (index into segs_)
    int off = -1;   // offset in segs_[seg].cities
  };

  // Tour-forward first/last city of a segment, honoring the reversed bit.
  int headCity(int segId) const noexcept;
  int tailCity(int segId) const noexcept;
  // Tour-forward offset of a city within its segment (0-based).
  int forwardOffset(const CityRef& ref) const noexcept;
  // Splits the segment so that `c` becomes the head of a segment.
  void splitBefore(int c);
  void rebuild(const std::vector<int>& order);
  void refreshSegPositions(std::size_t fromRank);
  void maybeRebalance();

  std::vector<Segment> segs_;
  std::vector<int> segOrder_;  // segment ids in tour order
  std::vector<int> segRank_;   // segment id -> index in segOrder_
  std::vector<CityRef> cityOf_;
  int groupSize_ = 0;          // target segment size (~sqrt(n))
};

}  // namespace distclk
