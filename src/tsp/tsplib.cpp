#include "tsp/tsplib.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace distclk {
namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("TSPLIB parse error (line " + std::to_string(line) +
                           "): " + what);
}

std::string trim(const std::string& s) {
  auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

// Hostile-input ceilings: parsing is for TSPLIB-scale files (pla85900 and
// the national instances); anything past these is a corrupt or adversarial
// header, rejected before it can size an allocation. Larger synthetic
// instances are generated in memory (tsp/gen.h), not parsed.
constexpr int kMaxDimension = 10'000'000;
constexpr std::size_t kMaxExplicitEntries = 100'000'000;  // 800 MB of i64

// std::stoi throws std::invalid_argument/out_of_range, which would escape
// as a non-parse error (throw-through); convert header integers with the
// line-numbered failure instead.
int parseHeaderInt(const std::string& value, int line, const char* what) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(value, &used);
    if (used != value.size() || v < std::numeric_limits<int>::min() ||
        v > std::numeric_limits<int>::max())
      fail(line, std::string(what) + " is not a valid integer: '" + value +
                     "'");
    return static_cast<int>(v);
  } catch (const std::invalid_argument&) {
  } catch (const std::out_of_range&) {
  }
  fail(line, std::string(what) + " is not a valid integer: '" + value + "'");
}

enum class MatrixFormat {
  kFullMatrix,
  kUpperRow,
  kLowerRow,
  kUpperDiagRow,
  kLowerDiagRow
};

std::optional<MatrixFormat> parseFormat(const std::string& s) {
  if (s == "FULL_MATRIX") return MatrixFormat::kFullMatrix;
  if (s == "UPPER_ROW") return MatrixFormat::kUpperRow;
  if (s == "LOWER_ROW") return MatrixFormat::kLowerRow;
  if (s == "UPPER_DIAG_ROW") return MatrixFormat::kUpperDiagRow;
  if (s == "LOWER_DIAG_ROW") return MatrixFormat::kLowerDiagRow;
  return std::nullopt;
}

std::optional<EdgeWeightType> parseWeightType(const std::string& s) {
  if (s == "EUC_2D") return EdgeWeightType::kEuc2D;
  if (s == "CEIL_2D") return EdgeWeightType::kCeil2D;
  if (s == "ATT") return EdgeWeightType::kAtt;
  if (s == "GEO") return EdgeWeightType::kGeo;
  if (s == "MAN_2D") return EdgeWeightType::kMan2D;
  if (s == "MAX_2D") return EdgeWeightType::kMax2D;
  if (s == "EXPLICIT") return EdgeWeightType::kExplicit;
  return std::nullopt;
}

// Reads `count` whitespace-separated numbers spanning multiple lines.
template <typename T>
std::vector<T> readNumbers(std::istream& in, std::size_t count, int& line) {
  std::vector<T> out;
  out.reserve(count);
  std::string tok;
  while (out.size() < count && in >> tok) {
    if (tok == "EOF") break;
    try {
      if constexpr (std::is_integral_v<T>)
        out.push_back(static_cast<T>(std::stoll(tok)));
      else
        out.push_back(static_cast<T>(std::stod(tok)));
    } catch (const std::exception&) {
      fail(line, "expected a number, got '" + tok + "'");
    }
  }
  if (out.size() < count) fail(line, "unexpected end of numeric section");
  return out;
}

}  // namespace

Instance parseTsplib(std::istream& in) {
  std::string name = "unnamed";
  std::string comment;
  int dimension = -1;
  std::optional<EdgeWeightType> type;
  std::optional<MatrixFormat> format;
  std::vector<Point> pts;
  std::vector<std::int64_t> weights;

  int line = 0;
  std::string raw;
  while (std::getline(in, raw)) {
    ++line;
    std::string s = trim(raw);
    if (s.empty()) continue;
    // Header lines are `KEYWORD : value`; sections are bare keywords.
    std::string key = s, value;
    if (auto colon = s.find(':'); colon != std::string::npos) {
      key = trim(s.substr(0, colon));
      value = trim(s.substr(colon + 1));
    }
    key = upper(key);

    if (key == "NAME") {
      name = value;
    } else if (key == "COMMENT") {
      if (!comment.empty()) comment += ' ';
      comment += value;
    } else if (key == "TYPE") {
      const std::string t = upper(value);
      if (t != "TSP") fail(line, "unsupported TYPE '" + value + "'");
    } else if (key == "DIMENSION") {
      dimension = parseHeaderInt(value, line, "DIMENSION");
      if (dimension < 3) fail(line, "DIMENSION must be >= 3");
      if (dimension > kMaxDimension)
        fail(line, "DIMENSION " + std::to_string(dimension) +
                       " exceeds parser limit " +
                       std::to_string(kMaxDimension));
    } else if (key == "EDGE_WEIGHT_TYPE") {
      type = parseWeightType(upper(value));
      if (!type) fail(line, "unsupported EDGE_WEIGHT_TYPE '" + value + "'");
    } else if (key == "EDGE_WEIGHT_FORMAT") {
      format = parseFormat(upper(value));
      if (!format) fail(line, "unsupported EDGE_WEIGHT_FORMAT '" + value + "'");
    } else if (key == "NODE_COORD_TYPE" || key == "DISPLAY_DATA_TYPE") {
      // informational only
    } else if (key == "NODE_COORD_SECTION") {
      if (dimension < 0) fail(line, "NODE_COORD_SECTION before DIMENSION");
      pts.assign(std::size_t(dimension), Point{});
      std::vector<bool> seen(std::size_t(dimension), false);
      for (int k = 0; k < dimension; ++k) {
        int id;
        double x, y;
        if (!(in >> id >> x >> y)) fail(line, "bad node coordinate entry");
        if (id < 1 || id > dimension) fail(line, "node id out of range");
        if (seen[std::size_t(id - 1)]) fail(line, "duplicate node id");
        seen[std::size_t(id - 1)] = true;
        pts[std::size_t(id - 1)] = Point{x, y};
      }
    } else if (key == "EDGE_WEIGHT_SECTION") {
      if (dimension < 0) fail(line, "EDGE_WEIGHT_SECTION before DIMENSION");
      if (!format) fail(line, "EDGE_WEIGHT_SECTION without EDGE_WEIGHT_FORMAT");
      const auto n = static_cast<std::size_t>(dimension);
      std::size_t count = 0;
      switch (*format) {
        case MatrixFormat::kFullMatrix: count = n * n; break;
        case MatrixFormat::kUpperRow:
        case MatrixFormat::kLowerRow: count = n * (n - 1) / 2; break;
        case MatrixFormat::kUpperDiagRow:
        case MatrixFormat::kLowerDiagRow: count = n * (n + 1) / 2; break;
      }
      if (count > kMaxExplicitEntries)
        fail(line, "EXPLICIT matrix needs " + std::to_string(count) +
                       " entries, above the parser limit " +
                       std::to_string(kMaxExplicitEntries));
      weights = readNumbers<std::int64_t>(in, count, line);
    } else if (key == "DISPLAY_DATA_SECTION") {
      if (dimension < 0) fail(line, "DISPLAY_DATA_SECTION before DIMENSION");
      for (int k = 0; k < dimension; ++k) {
        int id;
        double x, y;
        if (!(in >> id >> x >> y)) fail(line, "bad display data entry");
      }
    } else if (key == "EOF") {
      break;
    } else {
      fail(line, "unknown keyword '" + key + "'");
    }
  }

  if (dimension < 0) fail(line, "missing DIMENSION");
  if (!type) fail(line, "missing EDGE_WEIGHT_TYPE");

  if (*type == EdgeWeightType::kExplicit) {
    if (weights.empty()) fail(line, "missing EDGE_WEIGHT_SECTION");
    const auto n = static_cast<std::size_t>(dimension);
    std::vector<std::int64_t> full(n * n, 0);
    std::size_t k = 0;
    switch (format.value()) {  // format checked above
      case MatrixFormat::kFullMatrix:
        full = std::move(weights);
        // TSPLIB allows asymmetric FULL_MATRIX entries for ATSP files;
        // we only accept symmetric data, enforced by the Instance ctor.
        break;
      case MatrixFormat::kUpperRow:
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t j = i + 1; j < n; ++j)
            full[i * n + j] = full[j * n + i] = weights[k++];
        break;
      case MatrixFormat::kLowerRow:
        for (std::size_t i = 1; i < n; ++i)
          for (std::size_t j = 0; j < i; ++j)
            full[i * n + j] = full[j * n + i] = weights[k++];
        break;
      case MatrixFormat::kUpperDiagRow:
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t j = i; j < n; ++j)
            full[i * n + j] = full[j * n + i] = weights[k++];
        break;
      case MatrixFormat::kLowerDiagRow:
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t j = 0; j <= i; ++j)
            full[i * n + j] = full[j * n + i] = weights[k++];
        break;
    }
    Instance inst(name, dimension, std::move(full));
    inst.setComment(comment);
    return inst;
  }

  if (pts.size() != static_cast<std::size_t>(dimension))
    fail(line, "missing NODE_COORD_SECTION");
  Instance inst(name, std::move(pts), *type);
  inst.setComment(comment);
  return inst;
}

Instance loadTsplibFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open TSPLIB file: " + path);
  return parseTsplib(in);
}

void writeTsplib(std::ostream& out, const Instance& inst) {
  out << "NAME : " << inst.name() << "\n";
  if (!inst.comment().empty()) out << "COMMENT : " << inst.comment() << "\n";
  out << "TYPE : TSP\n";
  out << "DIMENSION : " << inst.n() << "\n";
  out << "EDGE_WEIGHT_TYPE : " << toString(inst.weightType()) << "\n";
  if (inst.weightType() == EdgeWeightType::kExplicit) {
    out << "EDGE_WEIGHT_FORMAT : FULL_MATRIX\n";
    out << "EDGE_WEIGHT_SECTION\n";
    for (int i = 0; i < inst.n(); ++i) {
      for (int j = 0; j < inst.n(); ++j)
        out << inst.dist(i, j) << (j + 1 < inst.n() ? ' ' : '\n');
    }
  } else {
    out << "NODE_COORD_SECTION\n";
    // Full round-trip precision: truncated coordinates shift rounded
    // distances by one unit.
    const auto oldPrecision =
        out.precision(std::numeric_limits<double>::max_digits10);
    for (int i = 0; i < inst.n(); ++i)
      out << (i + 1) << ' ' << inst.point(i).x << ' ' << inst.point(i).y
          << '\n';
    out.precision(oldPrecision);
  }
  out << "EOF\n";
}

std::vector<int> parseTsplibTour(std::istream& in) {
  std::vector<int> order;
  int dimension = -1;
  bool inSection = false;
  int line = 0;
  std::string raw;
  while (std::getline(in, raw)) {
    ++line;
    std::string s = trim(raw);
    if (s.empty()) continue;
    if (!inSection) {
      std::string key = s;
      std::string value;
      if (auto colon = s.find(':'); colon != std::string::npos) {
        key = trim(s.substr(0, colon));
        value = trim(s.substr(colon + 1));
      }
      key = upper(key);
      if (key == "DIMENSION") dimension = parseHeaderInt(value, line, "DIMENSION");
      else if (key == "TOUR_SECTION") inSection = true;
      else if (key == "EOF") break;
      // NAME/TYPE/COMMENT ignored
      continue;
    }
    std::istringstream ls(s);
    long long id;
    while (ls >> id) {
      if (id == -1) { inSection = false; break; }
      if (id < 1) fail(line, "tour ids must be positive");
      order.push_back(static_cast<int>(id - 1));
    }
  }
  if (order.empty()) throw std::runtime_error("TOUR file contains no tour");
  if (dimension > 0 && order.size() != static_cast<std::size_t>(dimension))
    throw std::runtime_error("TOUR file length != DIMENSION");
  return order;
}

void writeTsplibTour(std::ostream& out, const std::string& name,
                     const std::vector<int>& order) {
  out << "NAME : " << name << "\n";
  out << "TYPE : TOUR\n";
  out << "DIMENSION : " << order.size() << "\n";
  out << "TOUR_SECTION\n";
  for (int c : order) out << (c + 1) << '\n';
  out << "-1\nEOF\n";
}

}  // namespace distclk
