// Metric-specialized distance kernels over SoA coordinate arrays. The
// Instance::dist() switch stays the reference implementation; this layer is
// the hot-path evaluator: metric dispatch is resolved once at construction
// (a stored function pointer, or compile-time via evalAs<W>), the inner
// loop reads two flat double arrays instead of an array-of-struct Point
// vector, and GEO works from per-city radians precomputed by the instance.
// Every kernel is bit-identical to Instance::dist() — the operations after
// the hoisted per-city work are exactly the reference's, in the same order
// — so switching paths never changes a tour trajectory.
//
// The kernel is a non-owning view into the Instance (O(1) to construct and
// copy), so per-call construction in local-search entry points is free; the
// instance must outlive it.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tsp/instance.h"

namespace distclk {

/// TSPLIB GEO arc-cosine argument, clamped into acos's domain. Floating
/// rounding can push the cosine combination an ulp past ±1 for
/// (near-)coincident cities; acos would then return NaN, and converting NaN
/// to an integer is undefined behavior (UBSan float-cast-overflow). The
/// clamp only alters inputs that previously produced NaN, so every defined
/// distance is bit-identical to the unclamped formula. Shared by the kernel
/// and the Instance::dist() reference so the two paths cannot diverge.
inline double geoAcosArg(double q1, double q2, double q3) noexcept {
  const double v = 0.5 * ((1.0 + q1) * q2 - (1.0 - q1) * q3);
  return v < -1.0 ? -1.0 : (v > 1.0 ? 1.0 : v);
}

class DistanceKernel {
 public:
  explicit DistanceKernel(const Instance& inst) noexcept;

  /// Integral, symmetric distance; same contract as Instance::dist() with
  /// the metric resolve hoisted to construction time.
  std::int64_t operator()(int i, int j) const noexcept {
    return fn_(*this, i, j);
  }

  /// Statically dispatched evaluation for callers that hoisted the metric
  /// to compile time. W must be the weight type of the instance this
  /// kernel was built from.
  template <EdgeWeightType W>
  std::int64_t evalAs(int i, int j) const noexcept;

 private:
  using EvalFn = std::int64_t (*)(const DistanceKernel&, int, int) noexcept;

  template <EdgeWeightType W>
  static std::int64_t evalThunk(const DistanceKernel& k, int i,
                                int j) noexcept {
    return k.evalAs<W>(i, j);
  }
  static EvalFn evalFnFor(EdgeWeightType type) noexcept;

  const double* xs_ = nullptr;        // x, or latitude radians for GEO
  const double* ys_ = nullptr;        // y, or longitude radians for GEO
  const std::int64_t* matrix_ = nullptr;  // only for kExplicit
  std::size_t n_ = 0;
  EvalFn fn_ = nullptr;
};

template <EdgeWeightType W>
inline std::int64_t DistanceKernel::evalAs(int i, int j) const noexcept {
  if constexpr (W == EdgeWeightType::kExplicit) {
    return matrix_[std::size_t(i) * n_ + std::size_t(j)];
  } else if constexpr (W == EdgeWeightType::kGeo) {
    constexpr double kRadius = 6378.388;  // TSPLIB Earth radius
    const double latA = xs_[std::size_t(i)], lonA = ys_[std::size_t(i)];
    const double latB = xs_[std::size_t(j)], lonB = ys_[std::size_t(j)];
    const double q1 = std::cos(lonA - lonB);
    const double q2 = std::cos(latA - latB);
    const double q3 = std::cos(latA + latB);
    return static_cast<std::int64_t>(
        kRadius * std::acos(geoAcosArg(q1, q2, q3)) + 1.0);
  } else {
    const double dx = xs_[std::size_t(i)] - xs_[std::size_t(j)];
    const double dy = ys_[std::size_t(i)] - ys_[std::size_t(j)];
    if constexpr (W == EdgeWeightType::kEuc2D) {
      return std::llround(std::sqrt(dx * dx + dy * dy));
    } else if constexpr (W == EdgeWeightType::kCeil2D) {
      return static_cast<std::int64_t>(std::ceil(std::sqrt(dx * dx + dy * dy)));
    } else if constexpr (W == EdgeWeightType::kAtt) {
      const double r = std::sqrt((dx * dx + dy * dy) / 10.0);
      const auto t = std::llround(r);
      return static_cast<double>(t) < r ? t + 1 : t;
    } else if constexpr (W == EdgeWeightType::kMan2D) {
      return std::llround(std::abs(dx) + std::abs(dy));
    } else {
      static_assert(W == EdgeWeightType::kMax2D);
      return std::max<std::int64_t>(std::llround(std::abs(dx)),
                                    std::llround(std::abs(dy)));
    }
  }
}

}  // namespace distclk
