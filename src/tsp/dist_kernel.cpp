#include "tsp/dist_kernel.h"

namespace distclk {

DistanceKernel::EvalFn DistanceKernel::evalFnFor(EdgeWeightType type) noexcept {
  switch (type) {
    case EdgeWeightType::kEuc2D: return &evalThunk<EdgeWeightType::kEuc2D>;
    case EdgeWeightType::kCeil2D: return &evalThunk<EdgeWeightType::kCeil2D>;
    case EdgeWeightType::kAtt: return &evalThunk<EdgeWeightType::kAtt>;
    case EdgeWeightType::kGeo: return &evalThunk<EdgeWeightType::kGeo>;
    case EdgeWeightType::kMan2D: return &evalThunk<EdgeWeightType::kMan2D>;
    case EdgeWeightType::kMax2D: return &evalThunk<EdgeWeightType::kMax2D>;
    case EdgeWeightType::kExplicit:
      return &evalThunk<EdgeWeightType::kExplicit>;
  }
  return &evalThunk<EdgeWeightType::kEuc2D>;  // unreachable
}

DistanceKernel::DistanceKernel(const Instance& inst) noexcept
    : xs_(inst.kernelXs().data()), ys_(inst.kernelYs().data()),
      matrix_(inst.matrix().data()), n_(std::size_t(inst.n())),
      fn_(evalFnFor(inst.weightType())) {}

}  // namespace distclk
