#include "tsp/instance_context.h"

#include <cstring>
#include <sstream>
#include <utility>

#include "construct/construct.h"
#include "tsp/kdtree.h"
#include "util/task_pool.h"
#include "util/timer.h"

namespace distclk {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void hashBytes(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void hashU64(std::uint64_t& h, std::uint64_t v) { hashBytes(h, &v, sizeof v); }

void hashDouble(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  hashU64(h, bits);
}

}  // namespace

std::string PreprocessParams::cacheKey() const {
  std::ostringstream os;
  os << "k=" << candidateK
     << ";kind=" << (kind == CandidateLists::Kind::kQuadrant ? "quadrant"
                                                             : "nearest")
     << ";sym=" << (symmetric ? 1 : 0);
  if (heldKarp) {
    os << ";hk=" << heldKarpOptions.iterations << ","
       << heldKarpOptions.exactLimit << "," << heldKarpOptions.candidateK;
  }
  // partitionShards changes the construction tour, so it splits the cache;
  // prepThreads only changes the build schedule (byte-identical output)
  // and is intentionally absent. Appended conditionally so pre-existing
  // keys (and the fixtures that pin them) are unchanged at the default.
  if (partitionShards > 0) os << ";part=" << partitionShards;
  return os.str();
}

std::uint64_t instanceContentHash(const Instance& inst) {
  std::uint64_t h = kFnvOffset;
  hashU64(h, std::uint64_t(inst.n()));
  hashU64(h, std::uint64_t(inst.weightType()));
  for (const Point& p : inst.points()) {
    hashDouble(h, p.x);
    hashDouble(h, p.y);
  }
  for (std::int64_t v : inst.matrix()) hashU64(h, std::uint64_t(v));
  return h;
}

std::shared_ptr<const InstanceContext> InstanceContext::build(
    std::shared_ptr<const Instance> inst, const PreprocessParams& params) {
  auto ctx = std::shared_ptr<InstanceContext>(new InstanceContext());
  ctx->inst_ = std::move(inst);
  ctx->params_ = params;
  ctx->instanceHash_ = instanceContentHash(*ctx->inst_);

  // One task pool for every phase of this build. The pool only decides the
  // schedule: kd-tree layout, candidate CSR bytes, and the construction
  // tour are identical for every thread count (DESIGN.md §13), which is
  // why prepThreads stays out of the cache key.
  const int threads = params.prepThreads < 1 ? 1 : params.prepThreads;
  std::optional<TaskPool> pool;
  if (threads > 1) pool.emplace(threads);
  TaskPool* pp = pool ? &*pool : nullptr;
  PreprocessBuildStats stats;
  stats.threads = threads;
  const Timer total;

  std::optional<KdTree> tree;
  {
    const Timer t;
    if (ctx->inst_->hasCoords() && ctx->inst_->n() > 0)
      tree.emplace(ctx->inst_->points(), pp);
    stats.kdtreeMs = t.millis();
  }
  {
    const Timer t;
    auto cand = std::make_shared<CandidateLists>(
        *ctx->inst_, params.candidateK, params.kind,
        tree ? &*tree : nullptr, pp);
    if (params.symmetric) cand->makeSymmetric();
    ctx->cand_ = std::move(cand);
    stats.candMs = t.millis();
  }
  {
    const Timer t;
    ctx->constructionOrder_ =
        params.partitionShards > 0
            ? partitionedQuickBoruvkaTour(*ctx->inst_, *ctx->cand_,
                                          params.partitionShards, pp)
            : quickBoruvkaTour(*ctx->inst_, *ctx->cand_);
    ctx->constructionLength_ = ctx->inst_->tourLength(ctx->constructionOrder_);
    stats.constructMs = t.millis();
  }
  if (params.heldKarp) {
    const Timer t;
    ctx->heldKarp_ = heldKarpBound(*ctx->inst_, params.heldKarpOptions);
    stats.heldKarpMs = t.millis();
  }
  stats.totalMs = total.millis();
  ctx->buildStats_ = stats;
  return ctx;
}

std::shared_ptr<const InstanceContext> InstanceContext::borrow(
    const Instance& inst, const CandidateLists& cand) {
  auto ctx = std::shared_ptr<InstanceContext>(new InstanceContext());
  // Aliasing shared_ptrs with an empty control block: non-owning views.
  ctx->inst_ = std::shared_ptr<const Instance>(
      std::shared_ptr<const Instance>(), &inst);
  ctx->cand_ = std::shared_ptr<const CandidateLists>(
      std::shared_ptr<const CandidateLists>(), &cand);
  ctx->borrowed_ = true;
  ctx->constructionOrder_ = quickBoruvkaTour(inst, cand);
  ctx->constructionLength_ = inst.tourLength(ctx->constructionOrder_);
  return ctx;
}

std::string InstanceContext::key() const {
  std::ostringstream os;
  os << instanceHash_ << "/" << params_.cacheKey();
  return os.str();
}

ContextCache::ContextCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const InstanceContext> ContextCache::get(
    const std::shared_ptr<const Instance>& inst, const PreprocessParams& params,
    bool* wasHit) {
  std::ostringstream os;
  os << instanceContentHash(*inst) << "/" << params.cacheKey();
  const std::string key = os.str();

  const sync::MutexLock lock(mu_);
  ++tick_;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    it->second.lastUsed = tick_;
    if (wasHit != nullptr) *wasHit = true;
    return it->second.ctx;
  }
  ++stats_.misses;
  if (wasHit != nullptr) *wasHit = false;
  // Build under the lock: concurrent requests for one key cost one build.
  auto ctx = InstanceContext::build(inst, params);
  ++stats_.builds;
  while (entries_.size() >= capacity_) {
    auto victim = entries_.begin();
    for (auto e = entries_.begin(); e != entries_.end(); ++e)
      if (e->second.lastUsed < victim->second.lastUsed) victim = e;
    entries_.erase(victim);
    ++stats_.evictions;
  }
  entries_.emplace(key, Entry{ctx, tick_});
  return ctx;
}

ContextCache::Stats ContextCache::stats() const {
  const sync::MutexLock lock(mu_);
  return stats_;
}

std::size_t ContextCache::size() const {
  const sync::MutexLock lock(mu_);
  return entries_.size();
}

void ContextCache::clear() {
  const sync::MutexLock lock(mu_);
  entries_.clear();
}

}  // namespace distclk
