#include "tsp/twolevel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/audit.h"

namespace distclk {

TwoLevelList::TwoLevelList(std::span<const int> order) {
  if (order.size() < 3)
    throw std::invalid_argument("TwoLevelList: need at least 3 cities");
  cityOf_.resize(order.size());
  std::vector<int> check(order.size(), 0);
  for (int c : order) {
    if (c < 0 || std::size_t(c) >= order.size() || check[std::size_t(c)]++)
      throw std::invalid_argument("TwoLevelList: order is not a permutation");
  }
  rebuild(std::vector<int>(order.begin(), order.end()));
}

void TwoLevelList::rebuild(const std::vector<int>& order) {
  const auto n = order.size();
  groupSize_ = std::max(8, static_cast<int>(std::sqrt(double(n))));
  segs_.clear();
  segOrder_.clear();
  for (std::size_t at = 0; at < n; at += std::size_t(groupSize_)) {
    Segment seg;
    const std::size_t end = std::min(n, at + std::size_t(groupSize_));
    seg.cities.assign(order.begin() + static_cast<long>(at),
                      order.begin() + static_cast<long>(end));
    const int segId = static_cast<int>(segs_.size());
    for (std::size_t off = 0; off < seg.cities.size(); ++off)
      cityOf_[std::size_t(seg.cities[off])] = {segId, static_cast<int>(off)};
    segs_.push_back(std::move(seg));
    segOrder_.push_back(segId);
  }
  segRank_.assign(segs_.size(), 0);
  refreshSegPositions(0);
}

void TwoLevelList::refreshSegPositions(std::size_t fromRank) {
  if (segRank_.size() < segs_.size()) segRank_.resize(segs_.size());
  for (std::size_t r = fromRank; r < segOrder_.size(); ++r)
    segRank_[std::size_t(segOrder_[r])] = static_cast<int>(r);
}

int TwoLevelList::headCity(int segId) const noexcept {
  const Segment& s = segs_[std::size_t(segId)];
  return s.reversed ? s.cities.back() : s.cities.front();
}

int TwoLevelList::tailCity(int segId) const noexcept {
  const Segment& s = segs_[std::size_t(segId)];
  return s.reversed ? s.cities.front() : s.cities.back();
}

int TwoLevelList::forwardOffset(const CityRef& ref) const noexcept {
  const Segment& s = segs_[std::size_t(ref.seg)];
  return s.reversed ? static_cast<int>(s.cities.size()) - 1 - ref.off
                    : ref.off;
}

int TwoLevelList::next(int c) const noexcept {
  const CityRef ref = cityOf_[std::size_t(c)];
  const Segment& s = segs_[std::size_t(ref.seg)];
  const int fwd = forwardOffset(ref);
  if (fwd + 1 < static_cast<int>(s.cities.size())) {
    const int idx = s.reversed
                        ? static_cast<int>(s.cities.size()) - 2 - fwd
                        : fwd + 1;
    return s.cities[std::size_t(idx)];
  }
  const std::size_t rank = std::size_t(segRank_[std::size_t(ref.seg)]);
  const std::size_t nextRank = (rank + 1) % segOrder_.size();
  return headCity(segOrder_[nextRank]);
}

int TwoLevelList::prev(int c) const noexcept {
  const CityRef ref = cityOf_[std::size_t(c)];
  const Segment& s = segs_[std::size_t(ref.seg)];
  const int fwd = forwardOffset(ref);
  if (fwd > 0) {
    const int idx =
        s.reversed ? static_cast<int>(s.cities.size()) - fwd : fwd - 1;
    return s.cities[std::size_t(idx)];
  }
  const std::size_t rank = std::size_t(segRank_[std::size_t(ref.seg)]);
  const std::size_t prevRank = (rank + segOrder_.size() - 1) % segOrder_.size();
  return tailCity(segOrder_[prevRank]);
}

bool TwoLevelList::between(int a, int b, int c) const {
  auto key = [&](int x) {
    const CityRef ref = cityOf_[std::size_t(x)];
    return std::pair<int, int>(segRank_[std::size_t(ref.seg)],
                               forwardOffset(ref));
  };
  const auto ka = key(a), kb = key(b), kc = key(c);
  if (ka <= kc) return ka < kb && kb < kc;
  return kb > ka || kb < kc;  // wrapped interval
}

void TwoLevelList::splitBefore(int c) {
  const CityRef ref = cityOf_[std::size_t(c)];
  Segment& s = segs_[std::size_t(ref.seg)];
  const int fwd = forwardOffset(ref);
  if (fwd == 0) return;  // already a head

  Segment fresh;
  fresh.reversed = s.reversed;
  if (!s.reversed) {
    // Storage prefix stays; suffix (starting at c) becomes the new segment.
    fresh.cities.assign(s.cities.begin() + ref.off, s.cities.end());
    s.cities.resize(std::size_t(ref.off));
  } else {
    // Forward order is storage back-to-front: the forward path from c to
    // the tour tail is storage [0..off], the retained prefix is
    // storage [off+1..end).
    fresh.cities.assign(s.cities.begin(), s.cities.begin() + ref.off + 1);
    s.cities.erase(s.cities.begin(), s.cities.begin() + ref.off + 1);
  }
  const int freshId = static_cast<int>(segs_.size());
  for (std::size_t off = 0; off < fresh.cities.size(); ++off)
    cityOf_[std::size_t(fresh.cities[off])] = {freshId,
                                               static_cast<int>(off)};
  for (std::size_t off = 0; off < s.cities.size(); ++off)
    cityOf_[std::size_t(s.cities[off])] = {ref.seg, static_cast<int>(off)};
  const auto rank = std::size_t(segRank_[std::size_t(ref.seg)]);
  segs_.push_back(std::move(fresh));
  segOrder_.insert(segOrder_.begin() + static_cast<long>(rank) + 1, freshId);
  refreshSegPositions(rank + 1);
}

void TwoLevelList::reverse(int a, int b) {
  if (a == b) {
    return;
  }
  splitBefore(a);
  const int after = next(b);
  if (after == a) {
    // The path a..b covers the whole cycle: mirror everything.
    std::reverse(segOrder_.begin(), segOrder_.end());
    for (auto& s : segs_) s.reversed = !s.reversed;
    refreshSegPositions(0);
    maybeRebalance();
    DISTCLK_AUDIT_HOOK(auditCheck("TwoLevelList::reverse(whole-cycle)"));
    return;
  }
  splitBefore(after);  // b becomes the tail of its segment

  std::size_t ra = std::size_t(segRank_[std::size_t(cityOf_[std::size_t(a)].seg)]);
  std::size_t rb = std::size_t(segRank_[std::size_t(cityOf_[std::size_t(b)].seg)]);
  if (rb < ra) {
    // Rotate so the run a..b is contiguous in segOrder_.
    std::rotate(segOrder_.begin(), segOrder_.begin() + static_cast<long>(ra),
                segOrder_.end());
    refreshSegPositions(0);
    ra = 0;
    rb = std::size_t(segRank_[std::size_t(cityOf_[std::size_t(b)].seg)]);
  }
  std::reverse(segOrder_.begin() + static_cast<long>(ra),
               segOrder_.begin() + static_cast<long>(rb) + 1);
  for (std::size_t r = ra; r <= rb; ++r)
    segs_[std::size_t(segOrder_[r])].reversed =
        !segs_[std::size_t(segOrder_[r])].reversed;
  refreshSegPositions(ra);
  maybeRebalance();
  DISTCLK_AUDIT_HOOK(auditCheck("TwoLevelList::reverse"));
}

void TwoLevelList::maybeRebalance() {
  const std::size_t target = cityOf_.size() / std::size_t(groupSize_) + 1;
  if (segOrder_.size() > 2 * target + 8) rebuild(order());
}

std::vector<int> TwoLevelList::order(int start) const {
  std::vector<int> out;
  out.reserve(cityOf_.size());
  for (int segId : segOrder_) {
    const Segment& s = segs_[std::size_t(segId)];
    if (s.reversed)
      out.insert(out.end(), s.cities.rbegin(), s.cities.rend());
    else
      out.insert(out.end(), s.cities.begin(), s.cities.end());
  }
  if (start >= 0) {
    const auto it = std::find(out.begin(), out.end(), start);
    if (it != out.end()) std::rotate(out.begin(), it, out.end());
  }
  return out;
}

bool TwoLevelList::valid() const {
  if (segOrder_.size() == 0) return false;
  std::vector<int> seen(cityOf_.size(), 0);
  std::size_t total = 0;
  for (std::size_t r = 0; r < segOrder_.size(); ++r) {
    const int segId = segOrder_[r];
    if (segRank_[std::size_t(segId)] != static_cast<int>(r)) return false;
    const Segment& s = segs_[std::size_t(segId)];
    if (s.cities.empty()) return false;
    total += s.cities.size();
    for (std::size_t off = 0; off < s.cities.size(); ++off) {
      const int c = s.cities[off];
      if (c < 0 || std::size_t(c) >= cityOf_.size() || seen[std::size_t(c)]++)
        return false;
      const CityRef ref = cityOf_[std::size_t(c)];
      if (ref.seg != segId || ref.off != static_cast<int>(off)) return false;
    }
  }
  if (total != cityOf_.size()) return false;
  // next/prev must be mutually inverse around the whole cycle.
  const auto ord = order();
  for (std::size_t i = 0; i < ord.size(); ++i) {
    const int c = ord[i];
    const int nc = ord[(i + 1) % ord.size()];
    if (next(c) != nc || prev(nc) != c) return false;
  }
  return true;
}

void TwoLevelList::auditCheck(const char* where) const {
  if (segOrder_.empty())
    audit::fail("TwoLevelList", where, "no segments");
  std::vector<int> seen(cityOf_.size(), 0);
  std::size_t total = 0;
  for (std::size_t r = 0; r < segOrder_.size(); ++r) {
    const int segId = segOrder_[r];
    if (segRank_[std::size_t(segId)] != static_cast<int>(r))
      audit::fail("TwoLevelList", where,
                  "segment ordering incoherent (segRank != segOrder index)");
    const Segment& s = segs_[std::size_t(segId)];
    if (s.cities.empty())
      audit::fail("TwoLevelList", where, "empty segment in tour order");
    total += s.cities.size();
    for (std::size_t off = 0; off < s.cities.size(); ++off) {
      const int c = s.cities[off];
      if (c < 0 || std::size_t(c) >= cityOf_.size() || seen[std::size_t(c)]++)
        audit::fail("TwoLevelList", where,
                    "cities are not a permutation (duplicate or range)");
      const CityRef ref = cityOf_[std::size_t(c)];
      if (ref.seg != segId || ref.off != static_cast<int>(off))
        audit::fail("TwoLevelList", where,
                    "city parent pointer incoherent (wrong segment/offset)");
    }
  }
  if (total != cityOf_.size())
    audit::fail("TwoLevelList", where, "segments do not cover all cities");
  const auto ord = order();
  for (std::size_t i = 0; i < ord.size(); ++i) {
    const int c = ord[i];
    const int nc = ord[(i + 1) % ord.size()];
    if (next(c) != nc || prev(nc) != c)
      audit::fail("TwoLevelList", where, "next/prev not mutually inverse");
  }
}

}  // namespace distclk
