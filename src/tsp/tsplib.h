// TSPLIB file format support (Reinelt, 1991). Parses .tsp problem files
// (geometric and explicit-matrix symmetric instances) and .tour files, and
// writes both, so real TSPLIB data drops into the harness unchanged.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tsp/instance.h"

namespace distclk {

/// Parses a TSPLIB problem from a stream. Throws std::runtime_error with a
/// line-numbered message on malformed input or unsupported keywords.
Instance parseTsplib(std::istream& in);

/// Parses a TSPLIB problem file from disk.
Instance loadTsplibFile(const std::string& path);

/// Writes `inst` in TSPLIB format (NODE_COORD_SECTION for geometric types,
/// FULL_MATRIX for explicit ones).
void writeTsplib(std::ostream& out, const Instance& inst);

/// Parses a TSPLIB TOUR file (TOUR_SECTION, 1-based city ids, -1 sentinel).
/// Returns 0-based city order.
std::vector<int> parseTsplibTour(std::istream& in);

/// Writes a tour (0-based order) as a TSPLIB TOUR file.
void writeTsplibTour(std::ostream& out, const std::string& name,
                     const std::vector<int>& order);

}  // namespace distclk
