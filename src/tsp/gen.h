// Synthetic instance generators. TSPLIB files are not shipped, so the
// experiment harness builds seeded stand-ins from the same structural
// families as the paper's testbed (see DESIGN.md "Substitutions"):
//   * uniformSquare    — DIMACS E-family (E1k.1): uniform in a square
//   * clustered        — DIMACS C-family (C1k.1): normal around k centers
//   * drillPlate       — fl-family: dense hole clusters on a plate
//   * perforatedGrid   — pr/pcb-family: jittered grid with cut-outs
//   * roadNetwork      — national TSPs (fi/sw/usa/fnl): hierarchical towns
// All generators are deterministic in (n, seed).
#pragma once

#include <cstdint>
#include <string>

#include "tsp/instance.h"

namespace distclk {

/// n cities uniform in [0, side]^2 (DIMACS random-uniform recipe).
Instance uniformSquare(std::string name, int n, std::uint64_t seed,
                       double side = 1e6);

/// n cities normally distributed around `clusters` uniform centers with
/// standard deviation `sigma` (DIMACS random-clustered recipe uses
/// clusters=10).
Instance clustered(std::string name, int n, int clusters, std::uint64_t seed,
                   double side = 1e6, double sigma = 0.0);

/// Drilling-plate layout: most holes sit in tight blocks laid out on a
/// coarse grid (circuit-board drill patterns), a minority trace connecting
/// rows. Mimics the pathological clustering of TSPLIB's fl* instances.
Instance drillPlate(std::string name, int n, std::uint64_t seed,
                    double side = 1e6);

/// Jittered regular grid with rectangular cut-outs (pr/pcb-style).
Instance perforatedGrid(std::string name, int n, std::uint64_t seed,
                        double side = 1e6);

/// Hierarchical town model: town centers uniform, power-law town sizes,
/// Gaussian spread per town — the structure of national road-net TSPs.
Instance roadNetwork(std::string name, int n, std::uint64_t seed,
                     double side = 1e6);

}  // namespace distclk
