// Streaming summary statistics and small-sample helpers used by the
// experiment harnesses (mean/stddev over 10 runs, medians, quantiles).
#pragma once

#include <cstddef>
#include <vector>

namespace distclk {

/// Streaming accumulator using Welford's algorithm; numerically stable and
/// single-pass, so it can summarize arbitrarily long anytime traces.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Median of a sample (copies; does not reorder the input).
double median(std::vector<double> xs);

/// Linear-interpolation quantile, q in [0,1].
double quantile(std::vector<double> xs, double q);

}  // namespace distclk
