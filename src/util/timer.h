// Wall-clock timing helpers.
#pragma once

#include <chrono>

namespace distclk {

/// Monotonic stopwatch, started at construction.
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace distclk
