// Small bounded fork-join pool for the preprocessing pipeline (parallel
// kd-tree build, sharded candidate-list construction, partitioned
// Quick-Borůvka). NOT a general executor: one pool lives for the duration
// of one InstanceContext::build() and is destroyed afterwards, tasks must
// not block on each other, and the pool's only synchronization is its own
// queue mutex — task bodies write disjoint output slices, so the results
// are a pure function of the task set, never of the worker schedule.
//
// Determinism contract (DESIGN.md §13): callers split work into fixed
// shards (independent of worker count) and every shard writes only its own
// pre-sized output region. The pool decides WHEN work runs, never WHAT the
// result is, which is why `prepThreads` is excluded from the context cache
// key.
//
// The queue mutex ranks kPrepPool (35): builds run under ContextCache::mu_
// (rank 30), so the pool lock must nest inside it; task bodies themselves
// acquire no locks at all.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace distclk {

class TaskPool {
 public:
  /// Spawns `threads - 1` workers; the caller's thread is the remaining
  /// unit of parallelism (it executes tasks inside runUntilIdle()).
  /// `threads <= 1` spawns nothing and submit() runs tasks inline, so a
  /// TaskPool(1) is exactly the serial code path.
  explicit TaskPool(int threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total parallelism (workers + the caller), >= 1.
  int parallelism() const noexcept { return threads_; }

  /// Enqueues a task. Tasks may submit further tasks (the kd-tree build
  /// forks per subtree). With parallelism() == 1 the task runs inline
  /// immediately. Must not be called after the destructor started.
  void submit(std::function<void()> task);

  /// Runs queued tasks on the calling thread until the queue is empty AND
  /// no worker is still executing one (tasks spawned by running tasks are
  /// waited for too). Returns immediately when parallelism() == 1.
  void runUntilIdle();

  /// Fork-join helper: splits [0, count) into `shards` contiguous ranges
  /// (shard boundaries depend only on count and shards — never on the
  /// worker count), runs `body(begin, end)` for each, and joins. With a
  /// null pool the single range [0, count) runs inline on the caller.
  static void parallelForShards(
      TaskPool* pool, int count, int shards,
      const std::function<void(int, int)>& body);

 private:
  void workerLoop();
  /// Pops one task and runs it; returns false when the queue is empty.
  bool runOneTask();

  const int threads_;
  mutable sync::Mutex mu_{sync::LockRank::kPrepPool, "TaskPool.mu"};
  sync::CondVar workAvailable_;
  sync::CondVar idle_;
  std::vector<std::function<void()>> queue_ DISTCLK_GUARDED_BY(mu_);
  int activeTasks_ DISTCLK_GUARDED_BY(mu_) = 0;
  bool stopping_ DISTCLK_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace distclk
