// Deterministic pseudo-random number generation for all stochastic parts of
// the library. Every algorithm takes an explicit Rng so runs are reproducible
// and independent streams can be derived per node / per run.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace distclk {

/// splitmix64: used to expand a single seed into xoshiro state and to derive
/// independent child seeds (e.g. one stream per distributed node).
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator so it
/// can be plugged into <random> distributions, but the helpers below avoid
/// <random> for speed and cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift rejection method.
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal via Marsaglia polar method (stateless across calls for
  /// determinism: both draws are consumed even when one is discarded).
  double normal() noexcept {
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return u * sqrt_ratio(s);
  }

  bool coin(double p = 0.5) noexcept { return uniform() < p; }

  /// Derive an independent child generator (stream splitting).
  Rng split() noexcept {
    std::uint64_t s = (*this)();
    return Rng(s);
  }

  /// Fisher-Yates shuffle of a random-access range.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    for (std::size_t i = c.size(); i > 1; --i) {
      using std::swap;
      swap(c[i - 1], c[below(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static double sqrt_ratio(double s) noexcept {
    return std::sqrt(-2.0 * std::log(s) / s);
  }

  std::uint64_t state_[4];
};

}  // namespace distclk
