// Concurrency-discipline layer: capability-annotated synchronization
// wrappers. Every lock in the codebase goes through this header so that
//
//   1. Clang's thread-safety analysis can PROVE the locking contracts at
//      compile time: fields carry DISTCLK_GUARDED_BY(mu_), lock-requiring
//      private methods carry DISTCLK_REQUIRES(mu_), and the `tsa` preset
//      (clang++ -Werror=thread-safety, scripts/tier1.sh) turns any
//      unlocked access into a build error. Under GCC the attribute macros
//      expand to nothing and the wrappers compile to the std primitives.
//
//   2. Every Mutex is constructed with a documented LockRank, and under
//      -DDISTCLK_AUDIT=ON a per-thread held-lock stack aborts (via
//      util/audit.h) on out-of-rank or recursive acquisition — the
//      runtime complement to the static analysis: clang proves "guarded
//      fields are accessed under their lock", the rank audit proves "locks
//      nest in one global order", and together they rule out both unlocked
//      access and deadlock by lock-order inversion. Zero cost when OFF.
//
// The determinism lint (tools/lint_determinism.py, rule `bare-sync`) bans
// bare std::mutex / std::lock_guard / std::unique_lock /
// std::condition_variable everywhere outside this header, so the contracts
// cannot erode silently. See DESIGN.md §12 for the lock-rank table.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/audit.h"

#ifdef DISTCLK_AUDIT_ENABLED
#include <climits>
#include <cstdio>
#endif

// ---------------------------------------------------------------------------
// Clang thread-safety attribute macros (no-ops on other compilers).
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define DISTCLK_TSA_ATTR(x) __attribute__((x))
#else
#define DISTCLK_TSA_ATTR(x)
#endif

#define DISTCLK_CAPABILITY(x) DISTCLK_TSA_ATTR(capability(x))
#define DISTCLK_SCOPED_CAPABILITY DISTCLK_TSA_ATTR(scoped_lockable)
#define DISTCLK_GUARDED_BY(x) DISTCLK_TSA_ATTR(guarded_by(x))
#define DISTCLK_PT_GUARDED_BY(x) DISTCLK_TSA_ATTR(pt_guarded_by(x))
#define DISTCLK_REQUIRES(...) \
  DISTCLK_TSA_ATTR(requires_capability(__VA_ARGS__))
#define DISTCLK_REQUIRES_SHARED(...) \
  DISTCLK_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
#define DISTCLK_ACQUIRE(...) DISTCLK_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define DISTCLK_ACQUIRE_SHARED(...) \
  DISTCLK_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define DISTCLK_RELEASE(...) DISTCLK_TSA_ATTR(release_capability(__VA_ARGS__))
#define DISTCLK_RELEASE_SHARED(...) \
  DISTCLK_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define DISTCLK_TRY_ACQUIRE(...) \
  DISTCLK_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define DISTCLK_EXCLUDES(...) DISTCLK_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define DISTCLK_RETURN_CAPABILITY(x) DISTCLK_TSA_ATTR(lock_returned(x))
// Escape hatch. Its use is banned outside util/sync.h (tier-1 greps for
// it); code that genuinely cannot express its discipline to the analysis
// leaves the fields unannotated and documents the ordering argument
// instead (see lk/spec_kicks.cpp's round barrier).
#define DISTCLK_NO_THREAD_SAFETY_ANALYSIS \
  DISTCLK_TSA_ATTR(no_thread_safety_analysis)

namespace distclk::sync {

/// The global lock order. A thread may only acquire a mutex whose rank is
/// STRICTLY GREATER than every rank it already holds (try-acquisitions are
/// exempt: they cannot block, hence cannot deadlock). Ranks are spaced so
/// future locks slot in without renumbering. The full table — every Mutex
/// in the codebase, its rank, and what it guards — lives in DESIGN.md §12;
/// keep both in sync when adding a lock.
///
/// Nesting edges this order legalizes (everything else is leaf-only):
///   kPoolTrace      -> kTraceSink       (SolverPool::finish writes a
///                                        finished job's block to the sink)
///   kTraceRegistry  -> kTraceSink       (flushAllTraceSinks try-flushes
///                                        each registered sink)
///   kContextCache   -> kPrepPool        (InstanceContext::build runs its
///                                        preprocessing task pool while the
///                                        cache lock is held on a miss)
///   kMetricsRegistry-> kMetricsShard    (snapshot/reset merge the shards)
enum class LockRank : int {
  kSolverPool = 10,      ///< svc/solver_pool.h   SolverPool::mu_
  kJobQueue = 20,        ///< svc/job_queue.h     JobQueue::mu_
  kContextCache = 30,    ///< tsp/instance_context.h ContextCache::mu_
  kPrepPool = 35,        ///< util/task_pool.h    TaskPool::mu_
  kSpecEngine = 40,      ///< lk/spec_kicks.cpp   SpecEngine::mu_
  kHarnessCache = 45,    ///< experiments/harness.cpp HK-bound memo
  kJobProgress = 50,     ///< svc/solver_pool.cpp per-job onBest dedup
  kServeOut = 52,        ///< tools/distclk_serve.cpp response stream
  kMailbox = 55,         ///< net/thread_network.h Mailbox::mu_
  kTraceRegistry = 60,   ///< obs/trace_sink.cpp  live-sink registry
  kPoolTrace = 65,       ///< svc/solver_pool.h   SolverPool::traceMu_
  kTraceSink = 70,       ///< obs/trace_sink.h    JsonlTraceSink::mu_
  kMetricsRegistry = 80, ///< obs/metrics.h       MetricsRegistry::mu_
  kMetricsShard = 90,    ///< obs/metrics.cpp     MetricsRegistry::Shard::mu
};

#ifdef DISTCLK_AUDIT_ENABLED
namespace detail {

struct HeldLock {
  const void* mu = nullptr;
  int rank = 0;
  const char* name = "";
};

/// The calling thread's held-lock stack (audit builds only). Deliberately
/// a trivially-destructible POD array, NOT a std::vector: atexit handlers
/// (the trace-sink flush) take try-locks after __call_tls_dtors has run,
/// and a destroyed thread_local vector would be a use-after-free there.
/// POD thread_locals have no destructor — their storage stays valid until
/// the thread itself ends. Depth 16 is far beyond the 13-rank hierarchy;
/// overflow is itself an audit failure.
inline constexpr int kMaxHeldLocks = 16;
inline thread_local HeldLock tHeldLocks[kMaxHeldLocks];
inline thread_local int tHeldCount = 0;

[[noreturn]] inline void rankFail(const char* where, const char* fmt,
                                  const char* name, int rank,
                                  const char* heldName, int heldRank) {
  char buf[256];
  std::snprintf(buf, sizeof buf, fmt, name, rank, heldName, heldRank);
  audit::fail("Mutex", where, buf);
}

[[noreturn]] inline void notHeldFail(const char* name) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "%s released by a thread that does not hold it", name);
  audit::fail("Mutex", "unlock", buf);
}

/// Pre-acquisition check: recursive acquisition always aborts; blocking
/// acquisitions additionally abort unless the new rank exceeds every held
/// rank (`ranked` is false for try-acquisitions, which cannot deadlock).
inline void auditCheckAcquire(const void* mu, int rank, const char* name,
                              bool ranked) {
  int maxRank = INT_MIN;
  const HeldLock* maxHeld = nullptr;
  for (int i = 0; i < tHeldCount; ++i) {
    const HeldLock& h = tHeldLocks[i];
    if (h.mu == mu)
      rankFail("lock", "recursive acquisition of %s (rank %d); first "
                       "acquired as %s (rank %d) by this same thread",
               name, rank, h.name, h.rank);
    if (h.rank >= maxRank) {
      maxRank = h.rank;
      maxHeld = &h;
    }
  }
  if (ranked && maxHeld != nullptr && rank <= maxRank)
    rankFail("lock", "out-of-rank acquisition of %s (rank %d) while "
                     "holding %s (rank %d)",
             name, rank, maxHeld->name, maxHeld->rank);
}

inline void auditPushHeld(const void* mu, int rank, const char* name) {
  if (tHeldCount >= kMaxHeldLocks) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "held-lock stack overflow acquiring %s (depth %d)", name,
                  tHeldCount);
    audit::fail("Mutex", "lock", buf);
  }
  tHeldLocks[tHeldCount++] = {mu, rank, name};
}

inline void auditPopHeld(const void* mu, const char* name) {
  for (int i = tHeldCount; i > 0; --i) {
    if (tHeldLocks[i - 1].mu == mu) {
      for (int j = i - 1; j + 1 < tHeldCount; ++j)
        tHeldLocks[j] = tHeldLocks[j + 1];
      --tHeldCount;
      return;
    }
  }
  notHeldFail(name);
}

}  // namespace detail

/// Number of locks the calling thread currently holds (audit builds only;
/// always 0 otherwise). Test hook for the rank-audit suite.
inline std::size_t auditHeldLockCount() noexcept {
  return static_cast<std::size_t>(detail::tHeldCount);
}

#define DISTCLK_SYNC_AUDIT(stmt) stmt
#else
inline std::size_t auditHeldLockCount() noexcept { return 0; }
#define DISTCLK_SYNC_AUDIT(stmt) ((void)0)
#endif

/// Exclusive mutex with a capability annotation and a documented lock
/// rank. Same blocking semantics as std::mutex; the rank is enforced (and
/// the held-lock stack maintained) only in -DDISTCLK_AUDIT=ON builds.
class DISTCLK_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank, const char* name) noexcept
      : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DISTCLK_ACQUIRE() {
    DISTCLK_SYNC_AUDIT(
        detail::auditCheckAcquire(this, static_cast<int>(rank_), name_,
                                  /*ranked=*/true));
    mu_.lock();
    DISTCLK_SYNC_AUDIT(
        detail::auditPushHeld(this, static_cast<int>(rank_), name_));
  }

  void unlock() DISTCLK_RELEASE() {
    DISTCLK_SYNC_AUDIT(detail::auditPopHeld(this, name_));
    mu_.unlock();
  }

  /// Non-blocking acquisition: exempt from the rank order (a try-lock can
  /// never deadlock) but not from the recursion check — try-locking a
  /// mutex this thread already holds is undefined behavior on std::mutex.
  bool tryLock() DISTCLK_TRY_ACQUIRE(true) {
    DISTCLK_SYNC_AUDIT(
        detail::auditCheckAcquire(this, static_cast<int>(rank_), name_,
                                  /*ranked=*/false));
    if (!mu_.try_lock()) return false;
    DISTCLK_SYNC_AUDIT(
        detail::auditPushHeld(this, static_cast<int>(rank_), name_));
    return true;
  }

  LockRank rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

 private:
  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// Reader/writer mutex; shared acquisitions follow the same rank rules as
/// exclusive ones (a reader blocked behind a writer deadlocks just the
/// same if it acquires out of order).
class DISTCLK_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank, const char* name) noexcept
      : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() DISTCLK_ACQUIRE() {
    DISTCLK_SYNC_AUDIT(
        detail::auditCheckAcquire(this, static_cast<int>(rank_), name_,
                                  /*ranked=*/true));
    mu_.lock();
    DISTCLK_SYNC_AUDIT(
        detail::auditPushHeld(this, static_cast<int>(rank_), name_));
  }

  void unlock() DISTCLK_RELEASE() {
    DISTCLK_SYNC_AUDIT(detail::auditPopHeld(this, name_));
    mu_.unlock();
  }

  void lockShared() DISTCLK_ACQUIRE_SHARED() {
    DISTCLK_SYNC_AUDIT(
        detail::auditCheckAcquire(this, static_cast<int>(rank_), name_,
                                  /*ranked=*/true));
    mu_.lock_shared();
    DISTCLK_SYNC_AUDIT(
        detail::auditPushHeld(this, static_cast<int>(rank_), name_));
  }

  void unlockShared() DISTCLK_RELEASE_SHARED() {
    DISTCLK_SYNC_AUDIT(detail::auditPopHeld(this, name_));
    mu_.unlock_shared();
  }

  LockRank rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// RAII exclusive lock (the project's std::lock_guard/std::scoped_lock).
class DISTCLK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DISTCLK_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DISTCLK_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class DISTCLK_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) DISTCLK_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lockShared();
  }
  ~SharedLock() DISTCLK_RELEASE() { mu_.unlockShared(); }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class DISTCLK_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) DISTCLK_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() DISTCLK_RELEASE() { mu_.unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable over a sync::Mutex. Waits release and re-acquire
/// through the Mutex wrapper, so the audit's held-lock stack (and the
/// rank check on re-acquisition) stays exact across waits.
///
/// Call sites use the explicit-loop form rather than predicate lambdas —
///
///   while (!ready_) cv_.wait(mu_);
///
/// — because the loop body sits in the annotated function where the
/// analysis knows `mu_` is held; a predicate lambda would be analyzed as
/// its own (lockless) function and flag every guarded read inside it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken — always re-check the
  /// condition in a loop). `mu` must be held by the caller.
  void wait(Mutex& mu) DISTCLK_REQUIRES(mu) { cv_.wait(mu); }

  /// Bounded wait; returns std::cv_status::timeout when `seconds` elapsed
  /// without a notification.
  std::cv_status waitFor(Mutex& mu, double seconds) DISTCLK_REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::duration<double>(seconds));
  }

  template <typename Clock, typename Duration>
  std::cv_status waitUntil(Mutex& mu,
                           const std::chrono::time_point<Clock, Duration>& tp)
      DISTCLK_REQUIRES(mu) {
    return cv_.wait_until(mu, tp);
  }

  void notifyOne() noexcept { cv_.notify_one(); }
  void notifyAll() noexcept { cv_.notify_all(); }

 private:
  // _any: waits directly on the sync::Mutex wrapper (BasicLockable), which
  // is what routes the release/re-acquire through the audit bookkeeping.
  std::condition_variable_any cv_;
};

}  // namespace distclk::sync
