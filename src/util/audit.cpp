#include "util/audit.h"

#include <cstdio>
#include <cstdlib>

namespace distclk::audit {

void fail(const char* structure, const char* where, const char* what) noexcept {
  std::fprintf(stderr, "distclk audit: %s audit failed in %s: %s\n", structure,
               where, what);
  std::fflush(stderr);
  std::abort();
}

}  // namespace distclk::audit
