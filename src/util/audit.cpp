#include "util/audit.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace distclk::audit {

namespace {
std::atomic<PreAbortHook> gPreAbortHook{nullptr};
}  // namespace

PreAbortHook setPreAbortHook(PreAbortHook hook) noexcept {
  return gPreAbortHook.exchange(hook, std::memory_order_acq_rel);
}

void fail(const char* structure, const char* where, const char* what) noexcept {
  std::fprintf(stderr, "distclk audit: %s audit failed in %s: %s\n", structure,
               where, what);
  std::fflush(stderr);
  if (PreAbortHook hook = gPreAbortHook.load(std::memory_order_acquire)) {
    // Guard against a hook that itself audit-fails: run it at most once.
    if (gPreAbortHook.exchange(nullptr, std::memory_order_acq_rel) == hook)
      hook();
  }
  std::abort();
}

}  // namespace distclk::audit
