#include "util/task_pool.h"

#include <utility>

namespace distclk {

TaskPool::TaskPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(std::size_t(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

TaskPool::~TaskPool() {
  {
    const sync::MutexLock lock(mu_);
    stopping_ = true;
  }
  workAvailable_.notifyAll();
  for (std::thread& t : workers_) t.join();
}

void TaskPool::submit(std::function<void()> task) {
  if (threads_ <= 1) {
    // Serial pool: run inline so TaskPool(1) is exactly the serial path.
    task();
    return;
  }
  {
    const sync::MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  workAvailable_.notifyOne();
  // A joiner sleeping in runUntilIdle() can steal forked work too.
  idle_.notifyAll();
}

bool TaskPool::runOneTask() {
  std::function<void()> task;
  {
    const sync::MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.back());
    queue_.pop_back();
    ++activeTasks_;
  }
  task();
  bool nowIdle = false;
  {
    const sync::MutexLock lock(mu_);
    --activeTasks_;
    nowIdle = queue_.empty() && activeTasks_ == 0;
  }
  // Tasks spawned by this one were pushed before its completion, so a true
  // `nowIdle` means the whole fork-join tree is done.
  if (nowIdle) idle_.notifyAll();
  return true;
}

void TaskPool::workerLoop() {
  while (true) {
    {
      const sync::MutexLock lock(mu_);
      while (queue_.empty() && !stopping_) workAvailable_.wait(mu_);
      if (stopping_ && queue_.empty()) return;
    }
    // Another thread may have raced us to the task; runOneTask simply
    // returns false then and we go back to waiting.
    runOneTask();
  }
}

void TaskPool::runUntilIdle() {
  if (threads_ <= 1) return;  // inline submits already ran everything
  while (true) {
    if (runOneTask()) continue;
    const sync::MutexLock lock(mu_);
    if (queue_.empty() && activeTasks_ == 0) return;
    // Workers hold every remaining task; sleep until the tree completes or
    // one of those tasks forks new work for us to steal.
    if (queue_.empty()) idle_.wait(mu_);
  }
}

void TaskPool::parallelForShards(TaskPool* pool, int count, int shards,
                                 const std::function<void(int, int)>& body) {
  if (count <= 0) return;
  if (pool == nullptr || pool->parallelism() <= 1 || shards <= 1) {
    body(0, count);
    return;
  }
  if (shards > count) shards = count;
  // Contiguous ceil-division ranges: a function of (count, shards) only,
  // so the shard boundaries (and therefore every shard's output) are
  // identical no matter how many workers execute them.
  const int per = (count + shards - 1) / shards;
  for (int s = 0; s < shards; ++s) {
    const int begin = s * per;
    const int end = begin + per < count ? begin + per : count;
    if (begin >= end) break;
    pool->submit([&body, begin, end] { body(begin, end); });
  }
  pool->runUntilIdle();
}

}  // namespace distclk
