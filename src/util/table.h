// Aligned-text table and CSV emission for the benchmark harnesses. Each
// bench binary prints its paper table to stdout and optionally mirrors it to
// a CSV file for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace distclk {

/// A simple row/column table. Cells are strings; use cell() helpers for
/// numeric formatting consistent across all benches.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void addRow(std::vector<std::string> row);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t cols() const noexcept { return header_.size(); }

  /// Pretty-prints with column alignment and a rule under the header.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void writeCsv(std::ostream& os) const;
  /// Convenience: write CSV to a path; returns false on I/O failure.
  bool writeCsvFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helpers.
std::string fmt(double v, int precision = 3);
/// Percent with trailing '%', e.g. fmtPct(0.00123) == "0.123%".
std::string fmtPct(double fraction, int precision = 3);
/// "OPT" when the excess is ~0 else percentage (mirrors the paper's tables).
std::string fmtPctOrOpt(double fraction, double eps = 1e-9);

}  // namespace distclk
