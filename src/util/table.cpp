#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace distclk {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::addRow(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table: row arity mismatch");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

namespace {
std::string csvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::writeCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csvEscape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

bool Table::writeCsvFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  writeCsv(out);
  return static_cast<bool>(out);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmtPct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string fmtPctOrOpt(double fraction, double eps) {
  return fraction <= eps ? "OPT" : fmtPct(fraction);
}

}  // namespace distclk
