// Invariant audit mode. Data-structure-owning classes expose an
// auditCheck(where) method that re-verifies their structural invariants and
// aborts with a diagnostic on the first violation — unlike the bool valid()
// helpers, the failure names the structure, the operation, and the broken
// invariant, so a trajectory divergence pins to its first corrupt state.
//
// auditCheck() is always compiled (tests call it explicitly in every build
// flavor). What -DDISTCLK_AUDIT=ON adds is the automatic hooks: every
// mutating operation (tour flips, segment reversals, candidate re-sorts,
// event-loop bookkeeping) re-audits itself via DISTCLK_AUDIT_HOOK. With the
// option OFF the hooks expand to nothing — zero code, zero cost.
#pragma once

namespace distclk::audit {

/// Prints "<structure> audit failed in <where>: <what>" to stderr and
/// aborts. Aborting (not throwing) keeps the failure at the corrupt state
/// under sanitizers and inside noexcept call chains.
[[noreturn]] void fail(const char* structure, const char* where,
                       const char* what) noexcept;

/// Installs a hook run by fail() after printing the diagnostic and before
/// abort(). Lets higher layers (e.g. the trace sinks, obs/trace_sink.cpp)
/// persist buffered state on an audit abort without util/ depending on
/// them. The hook runs in normal (non-signal) context but mid-crash: it
/// must not assume invariants hold and must not itself abort. Pass nullptr
/// to clear. Returns the previous hook.
using PreAbortHook = void (*)();
PreAbortHook setPreAbortHook(PreAbortHook hook) noexcept;

/// True in -DDISTCLK_AUDIT=ON builds; lets tests assert the mode.
#ifdef DISTCLK_AUDIT_ENABLED
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

}  // namespace distclk::audit

#ifdef DISTCLK_AUDIT_ENABLED
#define DISTCLK_AUDIT_HOOK(stmt) stmt
#else
#define DISTCLK_AUDIT_HOOK(stmt) ((void)0)
#endif
