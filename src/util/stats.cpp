#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace distclk {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  const double idx = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace distclk
