// Concurrent in-process transport: one mailbox per node, real threads as
// peers. Follows the C++ Core Guidelines concurrency rules — message
// passing instead of shared mutable state, RAII locks, no detached threads
// (drivers own std::jthread instances that join on destruction).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "net/message.h"
#include "net/net_metrics.h"
#include "net/topology.h"

namespace distclk {

/// MPSC mailbox. push() never blocks; drain() grabs everything available;
/// waitAndDrain() blocks until a message arrives or the timeout elapses.
class Mailbox {
 public:
  void push(Message msg);
  std::vector<Message> drain();
  std::vector<Message> waitAndDrain(double timeoutSeconds);
  /// Wakes a blocked waitAndDrain() without delivering anything.
  void interrupt();

  /// Observation hooks; `metrics` must outlive the mailbox. When set,
  /// push() stamps a monotonic enqueue time so drain() can record message
  /// age at delivery. Deliveries/age/depth are recorded by the draining
  /// (receiver) thread, sends by the sender — each touches only its own
  /// metric shard, so probes add no cross-thread contention.
  void setMetrics(const NetMetrics* metrics) noexcept { metrics_ = metrics; }

 private:
  struct Entry {
    Message msg;
    std::int64_t enqueueNs = 0;  ///< only stamped when metrics attached
  };
  std::vector<Message> drainLocked();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entry> queue_;
  bool interrupted_ = false;
  const NetMetrics* metrics_ = nullptr;
};

/// Topology-aware broadcast fabric over mailboxes; thread-safe.
class ThreadNetwork {
 public:
  explicit ThreadNetwork(Adjacency adj);

  int nodes() const noexcept { return static_cast<int>(adj_.size()); }
  const Adjacency& adjacency() const noexcept { return adj_; }
  Mailbox& mailbox(int node) { return boxes_[std::size_t(node)]; }

  void broadcast(int from, const Message& msg);
  void send(int to, const Message& msg);
  /// Wakes every node blocked on its mailbox (used at shutdown).
  void interruptAll();

  /// Attaches observation probes to the fabric and every mailbox. Call
  /// before threads start; the registry must outlive the network.
  void attachMetrics(obs::MetricsRegistry& registry);

  std::int64_t messagesSent() const noexcept {
    return messagesSent_.load(std::memory_order_relaxed);
  }

 private:
  Adjacency adj_;
  std::vector<Mailbox> boxes_;
  // Hammered by every node thread on each send; a relaxed atomic keeps the
  // counter exact without a lock (ordering does not matter, totals do).
  std::atomic<std::int64_t> messagesSent_{0};
  NetMetrics metrics_;
};

}  // namespace distclk
