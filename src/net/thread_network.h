// Concurrent in-process transport: one mailbox per node, real threads as
// peers. Follows the C++ Core Guidelines concurrency rules — message
// passing instead of shared mutable state, RAII locks, no detached threads
// (drivers own std::jthread instances that join on destruction).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "net/message.h"
#include "net/topology.h"

namespace distclk {

/// MPSC mailbox. push() never blocks; drain() grabs everything available;
/// waitAndDrain() blocks until a message arrives or the timeout elapses.
class Mailbox {
 public:
  void push(Message msg);
  std::vector<Message> drain();
  std::vector<Message> waitAndDrain(double timeoutSeconds);
  /// Wakes a blocked waitAndDrain() without delivering anything.
  void interrupt();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool interrupted_ = false;
};

/// Topology-aware broadcast fabric over mailboxes; thread-safe.
class ThreadNetwork {
 public:
  explicit ThreadNetwork(Adjacency adj);

  int nodes() const noexcept { return static_cast<int>(adj_.size()); }
  const Adjacency& adjacency() const noexcept { return adj_; }
  Mailbox& mailbox(int node) { return boxes_[std::size_t(node)]; }

  void broadcast(int from, const Message& msg);
  void send(int to, const Message& msg);
  /// Wakes every node blocked on its mailbox (used at shutdown).
  void interruptAll();

  std::int64_t messagesSent() const noexcept;

 private:
  Adjacency adj_;
  std::vector<Mailbox> boxes_;
  mutable std::mutex statsMu_;
  std::int64_t messagesSent_ = 0;
};

}  // namespace distclk
