// Concurrent in-process transport: one mailbox per node, real threads as
// peers. Follows the C++ Core Guidelines concurrency rules — message
// passing instead of shared mutable state, RAII locks, no detached threads
// (drivers own std::jthread instances that join on destruction).
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <vector>

#include "net/message.h"
#include "net/net_metrics.h"
#include "net/topology.h"
#include "util/sync.h"

namespace distclk {

/// MPSC mailbox. push() never blocks; drain() grabs everything available;
/// waitAndDrain() blocks until a message arrives or the timeout elapses.
class Mailbox {
 public:
  void push(Message msg);
  std::vector<Message> drain();
  std::vector<Message> waitAndDrain(double timeoutSeconds);
  /// Wakes a blocked waitAndDrain() without delivering anything.
  void interrupt();

  /// Observation hooks; `metrics` must outlive the mailbox. When set,
  /// push() stamps a monotonic enqueue time so drain() can record message
  /// age at delivery. Deliveries/age/depth are recorded by the draining
  /// (receiver) thread, sends by the sender — each touches only its own
  /// metric shard, so probes add no cross-thread contention.
  void setMetrics(const NetMetrics* metrics) noexcept { metrics_ = metrics; }

 private:
  struct Entry {
    Message msg;
    std::int64_t enqueueNs = 0;  ///< only stamped when metrics attached
  };
  /// Moves the whole queue out; caller records metrics and unwraps the
  /// messages after releasing mu_ (deliver), so the mailbox lock never
  /// nests with the metrics registry's.
  std::deque<Entry> takeLocked() DISTCLK_REQUIRES(mu_);
  /// Records delivery metrics for `entries` and unwraps the messages.
  /// Lock-free: call with mu_ released.
  std::vector<Message> deliver(std::deque<Entry> entries);

  sync::Mutex mu_{sync::LockRank::kMailbox, "Mailbox.mu"};
  sync::CondVar cv_;
  std::deque<Entry> queue_ DISTCLK_GUARDED_BY(mu_);
  bool interrupted_ DISTCLK_GUARDED_BY(mu_) = false;
  // Set once via setMetrics() before node threads start; immutable while
  // they run, so reads need no lock.
  const NetMetrics* metrics_ = nullptr;
};

/// Topology-aware broadcast fabric over mailboxes; thread-safe. Membership
/// (killNode / setAlive) and traffic accounting mirror SimNetwork exactly:
/// identical traffic over an identical topology yields identical
/// NetworkStats on both transports.
class ThreadNetwork {
 public:
  explicit ThreadNetwork(Adjacency adj);

  int nodes() const noexcept { return static_cast<int>(adj_.size()); }
  const Adjacency& adjacency() const noexcept { return adj_; }
  Mailbox& mailbox(int node) { return boxes_[std::size_t(node)]; }

  /// Marks a node dead: its future sends are dropped and messages to it no
  /// longer enqueue (already-queued messages can still be drained).
  void killNode(int node) { setAlive(node, false); }
  /// Membership control for churn: a node that has not joined yet is
  /// treated exactly like a dead one until setAlive(node, true).
  void setAlive(int node, bool alive);
  bool isAlive(int node) const noexcept {
    return alive_[std::size_t(node)].load(std::memory_order_relaxed);
  }

  /// Sends `msg` to every live neighbor of `from` (dropped when `from` is
  /// dead, as with SimNetwork).
  void broadcast(int from, const Message& msg);
  /// Point-to-point variant; drops (and does not count) when either
  /// endpoint is dead.
  void send(int from, int to, const Message& msg);
  /// Wakes every node blocked on its mailbox (used at shutdown).
  void interruptAll();

  /// Attaches observation probes to the fabric and every mailbox. Call
  /// before threads start; the registry must outlive the network.
  void attachMetrics(obs::MetricsRegistry& registry);

  std::int64_t messagesSent() const noexcept {
    return messagesSent_.load(std::memory_order_relaxed);
  }
  /// Snapshot of the traffic counters. Exact once senders have quiesced
  /// (after the join barrier); callable concurrently for monitoring.
  NetworkStats stats() const;

 private:
  Adjacency adj_;
  std::vector<Mailbox> boxes_;
  // Hammered by every node thread on each send; relaxed atomics keep the
  // counters exact without a lock (ordering does not matter, totals do).
  std::atomic<std::int64_t> messagesSent_{0};
  std::atomic<std::int64_t> broadcasts_{0};
  std::atomic<std::int64_t> bytesSent_{0};
  // Fixed-size after construction; vector keeps the allocation visible to
  // the sanitizer presets (determinism lint: raw-new-array).
  std::vector<std::atomic<std::int64_t>> sentByNode_;
  std::vector<std::atomic<bool>> alive_;
  NetMetrics metrics_;
};

}  // namespace distclk
