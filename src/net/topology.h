// Network topologies and the hub bootstrap protocol. The paper arranges
// eight nodes in a hypercube whose neighbor lists are handed out by a
// central hub as nodes join one by one (§2.2); nodes then contact their
// neighbors, which add the newcomer back, so the final graph is the
// symmetric closure of the hub's incremental assignments.
#pragma once

#include <string>
#include <vector>

namespace distclk {

/// Adjacency lists; adjacency[i] holds the neighbor ids of node i.
using Adjacency = std::vector<std::vector<int>>;

enum class TopologyKind { kHypercube, kRing, kGrid, kComplete, kStar };

const char* toString(TopologyKind k) noexcept;
TopologyKind topologyFromString(const std::string& s);

/// Builds the ideal (fully joined) topology over n nodes. For kHypercube a
/// partial cube is produced when n is not a power of two (edges to missing
/// corners are dropped). kGrid uses the most-square factorization of n.
Adjacency buildTopology(TopologyKind kind, int n);

/// Ideal neighbor positions of one position in a topology of n positions
/// (directed view; buildTopology is its symmetric closure). Exposed for
/// the bootstrap hub, which filters it to already-joined positions.
std::vector<int> idealTopologyNeighbors(TopologyKind kind, int position,
                                        int n);

/// Simulates the paper's bootstrap: nodes join in the order given; the hub
/// assigns the next free position and returns only already-joined
/// neighbors; the joiner then contacts those neighbors, which add it back.
/// The result equals buildTopology() once everyone has joined — this
/// function exists so tests can verify exactly that property.
Adjacency buildViaHub(TopologyKind kind, const std::vector<int>& joinOrder);

/// True iff the adjacency is symmetric, self-loop-free and connected.
bool isValidTopology(const Adjacency& adj);

/// Graph diameter via BFS from every node (-1 when disconnected).
int diameter(const Adjacency& adj);

}  // namespace distclk
