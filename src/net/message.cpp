#include "net/message.h"

#include <cstring>
#include <stdexcept>

namespace distclk {

namespace {

constexpr std::uint8_t kMagic[3] = {'D', 'L', 'K'};
// magic + version + type + from + length + count
constexpr std::size_t kHeaderBytes = 3 + 1 + 1 + 4 + 8 + 4;

template <typename T>
void put(std::vector<std::uint8_t>& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t at = buf.size();
  buf.resize(at + sizeof(T));
  std::memcpy(buf.data() + at, &v, sizeof(T));
}

template <typename T>
T take(const std::vector<std::uint8_t>& buf, std::size_t& at) {
  if (at + sizeof(T) > buf.size())
    throw std::runtime_error("Message: truncated buffer");
  T v;
  std::memcpy(&v, buf.data() + at, sizeof(T));
  at += sizeof(T);
  return v;
}

}  // namespace

std::size_t serializedSize(const Message& msg) noexcept {
  return kHeaderBytes + msg.order.size() * sizeof(std::int32_t) +
         (msg.trace.has_value() ? kTraceTrailerBytes : 0);
}

std::vector<std::uint8_t> serialize(const Message& msg) {
  std::vector<std::uint8_t> buf;
  buf.reserve(serializedSize(msg));
  for (std::uint8_t b : kMagic) put(buf, b);
  // Stamp-free messages keep the v2 frame byte for byte, so un-traced runs
  // (and their byte accounting) are unchanged by the v3 codec.
  put(buf, msg.trace.has_value() ? kWireVersion : kWireVersionPlain);
  put(buf, static_cast<std::uint8_t>(msg.type));
  put(buf, msg.from);
  put(buf, msg.length);
  put(buf, static_cast<std::uint32_t>(msg.order.size()));
  for (std::int32_t c : msg.order) put(buf, c);
  if (msg.trace.has_value()) {
    put(buf, msg.trace->seq);
    put(buf, msg.trace->lamport);
  }
  return buf;
}

Message deserialize(const std::vector<std::uint8_t>& buf) {
  std::size_t at = 0;
  for (std::uint8_t expect : kMagic)
    if (take<std::uint8_t>(buf, at) != expect)
      throw std::runtime_error("Message: bad magic");
  const auto version = take<std::uint8_t>(buf, at);
  if (version != kWireVersionPlain && version != kWireVersion)
    throw std::runtime_error("Message: unsupported wire version");
  Message msg;
  const auto type = take<std::uint8_t>(buf, at);
  if (type < static_cast<std::uint8_t>(MessageType::kTour) ||
      type > static_cast<std::uint8_t>(MessageType::kHello))
    throw std::runtime_error("Message: unknown type");
  msg.type = static_cast<MessageType>(type);
  msg.from = take<std::int32_t>(buf, at);
  msg.length = take<std::int64_t>(buf, at);
  const auto count = take<std::uint32_t>(buf, at);
  // A count field larger than the remaining payload is corruption; reject
  // before reserving, so a flipped length byte cannot trigger a huge alloc.
  // The v3 trailer is mandatory, so the expected size is exact for both
  // versions and a flipped version byte cannot decode as the other layout.
  const std::size_t trailer = version == kWireVersion ? kTraceTrailerBytes : 0;
  if (buf.size() - at != count * sizeof(std::int32_t) + trailer)
    throw std::runtime_error("Message: payload size mismatch");
  msg.order.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i)
    msg.order.push_back(take<std::int32_t>(buf, at));
  if (version == kWireVersion) {
    TraceStamp stamp;
    stamp.seq = take<std::uint64_t>(buf, at);
    stamp.lamport = take<std::uint64_t>(buf, at);
    msg.trace = stamp;
  }
  return msg;
}

}  // namespace distclk
