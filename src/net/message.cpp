#include "net/message.h"

#include <cstring>
#include <stdexcept>

namespace distclk {

namespace {

constexpr std::uint32_t kMagic = 0x444c4b31;  // "DLK1"

template <typename T>
void put(std::vector<std::uint8_t>& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t at = buf.size();
  buf.resize(at + sizeof(T));
  std::memcpy(buf.data() + at, &v, sizeof(T));
}

template <typename T>
T take(const std::vector<std::uint8_t>& buf, std::size_t& at) {
  if (at + sizeof(T) > buf.size())
    throw std::runtime_error("Message: truncated buffer");
  T v;
  std::memcpy(&v, buf.data() + at, sizeof(T));
  at += sizeof(T);
  return v;
}

}  // namespace

std::vector<std::uint8_t> serialize(const Message& msg) {
  std::vector<std::uint8_t> buf;
  buf.reserve(24 + msg.order.size() * sizeof(std::int32_t));
  put(buf, kMagic);
  put(buf, static_cast<std::uint8_t>(msg.type));
  put(buf, msg.from);
  put(buf, msg.length);
  put(buf, static_cast<std::uint32_t>(msg.order.size()));
  for (std::int32_t c : msg.order) put(buf, c);
  return buf;
}

Message deserialize(const std::vector<std::uint8_t>& buf) {
  std::size_t at = 0;
  if (take<std::uint32_t>(buf, at) != kMagic)
    throw std::runtime_error("Message: bad magic");
  Message msg;
  const auto type = take<std::uint8_t>(buf, at);
  if (type < static_cast<std::uint8_t>(MessageType::kTour) ||
      type > static_cast<std::uint8_t>(MessageType::kHello))
    throw std::runtime_error("Message: unknown type");
  msg.type = static_cast<MessageType>(type);
  msg.from = take<std::int32_t>(buf, at);
  msg.length = take<std::int64_t>(buf, at);
  const auto count = take<std::uint32_t>(buf, at);
  msg.order.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i)
    msg.order.push_back(take<std::int32_t>(buf, at));
  if (at != buf.size()) throw std::runtime_error("Message: trailing bytes");
  return msg;
}

}  // namespace distclk
