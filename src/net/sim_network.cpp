#include "net/sim_network.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace distclk {

SimNetwork::SimNetwork(Adjacency adj, double latencySeconds)
    : adj_(std::move(adj)), latency_(latencySeconds) {
  if (!isValidTopology(adj_))
    throw std::invalid_argument("SimNetwork: invalid topology");
  inbox_.resize(adj_.size());
  alive_.assign(adj_.size(), 1);
  stats_.sentByNode.assign(adj_.size(), 0);
}

void SimNetwork::killNode(int node) { alive_[std::size_t(node)] = 0; }

void SimNetwork::setAlive(int node, bool alive) {
  alive_[std::size_t(node)] = alive ? 1 : 0;
}

void SimNetwork::attachMetrics(obs::MetricsRegistry& registry) {
  metrics_ = NetMetrics::attach(registry);
}

void SimNetwork::send(int from, int to, double sendTime, const Message& msg) {
  if (!alive_[std::size_t(from)] || !alive_[std::size_t(to)]) return;
  inbox_[std::size_t(to)].push_back({sendTime + latency_, sendTime, seq_++, msg});
  ++stats_.messagesSent;
  ++stats_.sentByNode[std::size_t(from)];
  stats_.bytesSent += static_cast<std::int64_t>(serializedSize(msg));
  if (metrics_.registry != nullptr) metrics_.registry->add(metrics_.sends);
}

void SimNetwork::broadcast(int from, double sendTime, const Message& msg) {
  if (!alive_[std::size_t(from)]) return;
  ++stats_.broadcasts;
  if (metrics_.registry != nullptr) metrics_.registry->add(metrics_.broadcasts);
  for (int to : adj_[std::size_t(from)]) send(from, to, sendTime, msg);
}

std::vector<Message> SimNetwork::collect(int node, double upTo) {
  auto& box = inbox_[std::size_t(node)];
  std::vector<Message> out;
  std::vector<Pending> ready;
  for (auto& p : box)
    if (p.arrival <= upTo) ready.push_back(std::move(p));
  std::erase_if(box, [&](const Pending& p) { return p.arrival <= upTo; });
  std::sort(ready.begin(), ready.end(), [](const Pending& a, const Pending& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.seq < b.seq;
  });
  if (metrics_.registry != nullptr && !ready.empty()) {
    obs::MetricsRegistry& reg = *metrics_.registry;
    reg.add(metrics_.deliveries, std::int64_t(ready.size()));
    reg.observe(metrics_.queueDepth, double(ready.size()));
    for (const Pending& p : ready)
      reg.observe(metrics_.messageAge, upTo - p.sendTime);
  }
  out.reserve(ready.size());
  for (auto& p : ready) out.push_back(std::move(p.msg));
  return out;
}

double SimNetwork::nextArrival(int node) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& p : inbox_[std::size_t(node)])
    best = std::min(best, p.arrival);
  return best;
}

}  // namespace distclk
