// Message-level implementation of the paper's bootstrap protocol (§2.2):
// nodes contact a dedicated hub which assigns each its position in the
// structured topology and returns the neighbors it already knows; the
// joiner then greets those neighbors, which add it back. Once every node
// has joined, the resulting peer graph equals the ideal topology (a
// property net/topology's buildViaHub models functionally and tests
// verify against this protocol run).
#pragma once

#include <vector>

#include "net/message.h"
#include "net/topology.h"

namespace distclk {

/// The hub: hands out positions and filtered neighbor lists. Positions are
/// assigned in join order (the paper's hub "determines the node's position
/// within the hypercube").
class BootstrapHub {
 public:
  BootstrapHub(TopologyKind kind, int expectedNodes);

  /// Handles one kJoinRequest; returns the kNeighborList reply.
  /// Throws on duplicate joins or when the network is full.
  Message handleJoin(const Message& request);

  int joined() const noexcept { return static_cast<int>(positionOf_.size()); }
  /// Position assigned to a node id (-1 if it has not joined).
  int positionOf(int nodeId) const;

 private:
  TopologyKind kind_;
  int expected_;
  std::vector<std::pair<int, int>> positionOf_;  // (nodeId, position)
};

/// A peer's bootstrap state: its own neighbor list, grown from the hub's
/// reply and incoming kHello greetings.
class BootstrapPeer {
 public:
  explicit BootstrapPeer(int id) : id_(id) {}

  int id() const noexcept { return id_; }

  Message makeJoinRequest() const;

  /// Consumes the hub's kNeighborList; returns the kHello greetings this
  /// peer must now send (one per listed neighbor).
  std::vector<Message> handleNeighborList(const Message& reply);

  /// Consumes a kHello from a later joiner.
  void handleHello(const Message& hello);

  const std::vector<int>& neighbors() const noexcept { return neighbors_; }

 private:
  int id_;
  std::vector<int> neighbors_;
};

/// Convenience: runs the full protocol for `joinOrder` (node ids joining in
/// that sequence) and returns the final adjacency, which must equal
/// buildViaHub(kind, ...) with positions equal to join ranks.
Adjacency runBootstrap(TopologyKind kind, const std::vector<int>& joinOrder);

}  // namespace distclk
