// Wire-level message model of the P2P layer. The paper's nodes exchange
// complete tours over TCP; here messages are structured objects plus a
// compact, versioned binary codec. The codec is the single source of truth
// for message sizes: both transports account NetworkStats::bytesSent via
// serializedSize(), so a future socket transport ships exactly the bytes
// the statistics report.
//
// Wire layout (little-endian), version 2:
//   "DLK"           3 bytes   magic
//   version         u8        kWireVersion
//   type            u8        MessageType
//   from            i32       sender node id
//   length          i64       tour length (kTour/kOptimumFound)
//   count           u32       number of payload entries
//   payload         i32[count]
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace distclk {

enum class MessageType : std::uint8_t {
  kTour = 1,          ///< a locally improved tour, broadcast to neighbors
  kOptimumFound = 2,  ///< termination notification (paper criterion 2)
  // Bootstrap protocol (§2.2): a joiner asks the hub for its neighbor
  // list, then greets each listed neighbor, which adds it back.
  kJoinRequest = 3,   ///< node -> hub: request position + neighbor list
  kNeighborList = 4,  ///< hub -> node: `order` holds the neighbor ids
  kHello = 5,         ///< joiner -> neighbor: add me to your list
};

/// Every MessageType, for exhaustive iteration (wire-format property tests).
inline constexpr MessageType kAllMessageTypes[] = {
    MessageType::kTour,         MessageType::kOptimumFound,
    MessageType::kJoinRequest,  MessageType::kNeighborList,
    MessageType::kHello,
};

/// Codec version, first payload byte after the magic. Bump on any layout
/// change; deserialize() rejects other versions instead of misreading.
inline constexpr std::uint8_t kWireVersion = 2;

struct Message {
  MessageType type = MessageType::kTour;
  std::int32_t from = -1;          ///< sender node id
  std::int64_t length = 0;         ///< tour length (kTour/kOptimumFound)
  /// kTour: city order; kNeighborList: neighbor node ids; else empty.
  std::vector<std::int32_t> order;

  bool operator==(const Message&) const = default;
};

/// Exact encoded size in bytes, without allocating: what serialize() will
/// produce and what NetworkStats::bytesSent accounts per delivery.
std::size_t serializedSize(const Message& msg) noexcept;

/// Encodes to a self-describing little-endian byte buffer.
std::vector<std::uint8_t> serialize(const Message& msg);

/// Decodes a buffer produced by serialize(). Throws std::runtime_error on
/// truncated, corrupt, or version-mismatched input.
Message deserialize(const std::vector<std::uint8_t>& buf);

}  // namespace distclk
