// Wire-level message model of the P2P layer. The paper's nodes exchange
// complete tours over TCP; here messages are structured objects plus a
// compact, versioned binary codec. The codec is the single source of truth
// for message sizes: both transports account NetworkStats::bytesSent via
// serializedSize(), so a future socket transport ships exactly the bytes
// the statistics report.
//
// Wire layout (little-endian), version 2:
//   "DLK"           3 bytes   magic
//   version         u8        2 or 3
//   type            u8        MessageType
//   from            i32       sender node id
//   length          i64       tour length (kTour/kOptimumFound)
//   count           u32       number of payload entries
//   payload         i32[count]
//
// Version 3 appends a mandatory 16-byte causal-trace trailer after the
// payload (seq u64, lamport u64). Messages without a stamp are still
// emitted as version-2 frames, byte for byte as before, so byte accounting
// with tracing off is unchanged and v2 peers/recordings keep decoding. The
// trailer being mandatory in v3 means a flipped version byte in either
// direction fails the exact-size payload check instead of misreading.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace distclk {

enum class MessageType : std::uint8_t {
  kTour = 1,          ///< a locally improved tour, broadcast to neighbors
  kOptimumFound = 2,  ///< termination notification (paper criterion 2)
  // Bootstrap protocol (§2.2): a joiner asks the hub for its neighbor
  // list, then greets each listed neighbor, which adds it back.
  kJoinRequest = 3,   ///< node -> hub: request position + neighbor list
  kNeighborList = 4,  ///< hub -> node: `order` holds the neighbor ids
  kHello = 5,         ///< joiner -> neighbor: add me to your list
};

/// Every MessageType, for exhaustive iteration (wire-format property tests).
inline constexpr MessageType kAllMessageTypes[] = {
    MessageType::kTour,         MessageType::kOptimumFound,
    MessageType::kJoinRequest,  MessageType::kNeighborList,
    MessageType::kHello,
};

/// Codec version, first payload byte after the magic. Bump on any layout
/// change; deserialize() rejects other versions instead of misreading.
/// v3 == v2 plus the causal-trace trailer; stamp-free messages keep the v2
/// frame (kWireVersionPlain), so the version byte is stamp-dependent.
inline constexpr std::uint8_t kWireVersion = 3;
inline constexpr std::uint8_t kWireVersionPlain = 2;
/// Size of the v3 trailer: seq u64 + lamport u64.
inline constexpr std::size_t kTraceTrailerBytes = 16;

/// Causal-trace stamp carried in the v3 trailer: the sender's per-message
/// sequence id and its Lamport time at send. Attached by NodeRunner only
/// when tracing is enabled and never read by the algorithm, so stamped and
/// unstamped runs follow identical trajectories.
struct TraceStamp {
  std::uint64_t seq = 0;      ///< 1-based per-sender broadcast counter
  std::uint64_t lamport = 0;  ///< sender's Lamport clock at send

  bool operator==(const TraceStamp&) const = default;
};

struct Message {
  MessageType type = MessageType::kTour;
  std::int32_t from = -1;          ///< sender node id
  std::int64_t length = 0;         ///< tour length (kTour/kOptimumFound)
  /// kTour: city order; kNeighborList: neighbor node ids; else empty.
  std::vector<std::int32_t> order;
  /// Present iff the frame is (or should be encoded as) wire v3.
  std::optional<TraceStamp> trace;

  bool operator==(const Message&) const = default;
};

/// Exact encoded size in bytes, without allocating: what serialize() will
/// produce and what NetworkStats::bytesSent accounts per delivery.
std::size_t serializedSize(const Message& msg) noexcept;

/// Encodes to a self-describing little-endian byte buffer.
std::vector<std::uint8_t> serialize(const Message& msg);

/// Decodes a buffer produced by serialize(). Throws std::runtime_error on
/// truncated, corrupt, or version-mismatched input.
Message deserialize(const std::vector<std::uint8_t>& buf);

}  // namespace distclk
