// Wire-level message model of the P2P layer. The paper's nodes exchange
// complete tours over TCP; here messages are structured objects plus a
// compact binary codec (used by the serialization tests and available to
// anyone embedding the node logic behind a real transport).
#pragma once

#include <cstdint>
#include <vector>

namespace distclk {

enum class MessageType : std::uint8_t {
  kTour = 1,          ///< a locally improved tour, broadcast to neighbors
  kOptimumFound = 2,  ///< termination notification (paper criterion 2)
  // Bootstrap protocol (§2.2): a joiner asks the hub for its neighbor
  // list, then greets each listed neighbor, which adds it back.
  kJoinRequest = 3,   ///< node -> hub: request position + neighbor list
  kNeighborList = 4,  ///< hub -> node: `order` holds the neighbor ids
  kHello = 5,         ///< joiner -> neighbor: add me to your list
};

struct Message {
  MessageType type = MessageType::kTour;
  std::int32_t from = -1;          ///< sender node id
  std::int64_t length = 0;         ///< tour length (kTour/kOptimumFound)
  /// kTour: city order; kNeighborList: neighbor node ids; else empty.
  std::vector<std::int32_t> order;

  bool operator==(const Message&) const = default;
};

/// Encodes to a self-describing little-endian byte buffer.
std::vector<std::uint8_t> serialize(const Message& msg);

/// Decodes a buffer produced by serialize(). Throws std::runtime_error on
/// truncated or corrupt input.
Message deserialize(const std::vector<std::uint8_t>& buf);

}  // namespace distclk
