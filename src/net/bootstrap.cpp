#include "net/bootstrap.h"

#include <algorithm>
#include <stdexcept>

namespace distclk {

BootstrapHub::BootstrapHub(TopologyKind kind, int expectedNodes)
    : kind_(kind), expected_(expectedNodes) {
  if (expectedNodes < 1)
    throw std::invalid_argument("BootstrapHub: need at least one node");
}

int BootstrapHub::positionOf(int nodeId) const {
  for (const auto& [id, pos] : positionOf_)
    if (id == nodeId) return pos;
  return -1;
}

Message BootstrapHub::handleJoin(const Message& request) {
  if (request.type != MessageType::kJoinRequest)
    throw std::invalid_argument("BootstrapHub: not a join request");
  const int nodeId = request.from;
  if (positionOf(nodeId) != -1)
    throw std::invalid_argument("BootstrapHub: duplicate join");
  if (joined() >= expected_)
    throw std::invalid_argument("BootstrapHub: network full");

  const int position = joined();
  positionOf_.emplace_back(nodeId, position);

  // Ideal neighbors of the assigned position, filtered to nodes the hub
  // already knows (their positions are all < position by construction),
  // translated back to node ids.
  Message reply;
  reply.type = MessageType::kNeighborList;
  reply.from = -1;  // the hub
  for (int nbrPos : idealTopologyNeighbors(kind_, position, expected_)) {
    if (nbrPos >= position) continue;  // not joined yet
    for (const auto& [id, pos] : positionOf_)
      if (pos == nbrPos) reply.order.push_back(id);
  }
  return reply;
}

Message BootstrapPeer::makeJoinRequest() const {
  Message msg;
  msg.type = MessageType::kJoinRequest;
  msg.from = id_;
  return msg;
}

std::vector<Message> BootstrapPeer::handleNeighborList(const Message& reply) {
  if (reply.type != MessageType::kNeighborList)
    throw std::invalid_argument("BootstrapPeer: not a neighbor list");
  std::vector<Message> greetings;
  for (std::int32_t nbr : reply.order) {
    if (std::find(neighbors_.begin(), neighbors_.end(), nbr) ==
        neighbors_.end())
      neighbors_.push_back(nbr);
    Message hello;
    hello.type = MessageType::kHello;
    hello.from = id_;
    hello.length = nbr;  // addressee (transports route by this)
    greetings.push_back(hello);
  }
  return greetings;
}

void BootstrapPeer::handleHello(const Message& hello) {
  if (hello.type != MessageType::kHello)
    throw std::invalid_argument("BootstrapPeer: not a hello");
  // "If the contacted node did not know the contacting node before, the
  // contacting node is added to the contacted node's neighbor list."
  if (std::find(neighbors_.begin(), neighbors_.end(), hello.from) ==
      neighbors_.end())
    neighbors_.push_back(hello.from);
}

Adjacency runBootstrap(TopologyKind kind, const std::vector<int>& joinOrder) {
  const int n = static_cast<int>(joinOrder.size());
  BootstrapHub hub(kind, n);
  std::vector<BootstrapPeer> peers;
  peers.reserve(std::size_t(n));
  for (int id = 0; id < n; ++id) peers.emplace_back(id);

  for (int nodeId : joinOrder) {
    if (nodeId < 0 || nodeId >= n)
      throw std::invalid_argument("runBootstrap: node id out of range");
    BootstrapPeer& joiner = peers[std::size_t(nodeId)];
    const Message reply = hub.handleJoin(joiner.makeJoinRequest());
    for (const Message& hello : joiner.handleNeighborList(reply))
      peers[std::size_t(hello.length)].handleHello(hello);
  }

  Adjacency adj(static_cast<std::size_t>(n));
  for (int id = 0; id < n; ++id) {
    adj[std::size_t(id)] = peers[std::size_t(id)].neighbors();
    std::sort(adj[std::size_t(id)].begin(), adj[std::size_t(id)].end());
  }
  return adj;
}

}  // namespace distclk
