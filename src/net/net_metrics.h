// Metric handles shared by both transports (SimNetwork, ThreadNetwork).
// One name space for the probes keeps trace_report agnostic to which
// runtime produced a trace: "net.sends" means the same thing in a
// simulated and a threaded run; only the clock behind message_age differs
// (virtual vs wall seconds).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace distclk {

/// Cumulative traffic accounting, identical for both transports: for the
/// same message sequence over the same topology, SimNetwork and
/// ThreadNetwork report the same counts. bytesSent is the exact encoded
/// size per delivery (net/message serializedSize), not an estimate.
struct NetworkStats {
  std::int64_t messagesSent = 0;      ///< point-to-point deliveries enqueued
  std::int64_t broadcasts = 0;        ///< broadcast() invocations
  std::int64_t bytesSent = 0;         ///< exact wire bytes of all deliveries
  std::vector<std::int64_t> sentByNode;
};

/// Null registry = every probe is a skipped branch (un-traced fast path).
struct NetMetrics {
  obs::MetricsRegistry* registry = nullptr;
  obs::MetricId sends;       ///< point-to-point deliveries enqueued
  obs::MetricId broadcasts;  ///< broadcast() invocations
  obs::MetricId deliveries;  ///< messages handed to a receiving node
  obs::MetricId queueDepth;  ///< pending-queue depth at delivery (histogram)
  obs::MetricId messageAge;  ///< seconds from send to delivery (histogram)

  static NetMetrics attach(obs::MetricsRegistry& registry) {
    NetMetrics m;
    m.registry = &registry;
    m.sends = registry.counter("net.sends");
    m.broadcasts = registry.counter("net.broadcasts");
    m.deliveries = registry.counter("net.deliveries");
    m.queueDepth = registry.histogram(
        "net.queue_depth", obs::MetricsRegistry::linearBounds(1.0, 16));
    m.messageAge = registry.histogram(
        "net.message_age_seconds",
        obs::MetricsRegistry::exponentialBounds(1e-4, 4.0, 10));
    return m;
  }
};

}  // namespace distclk
