#include "net/thread_network.h"

#include <chrono>
#include <stdexcept>

namespace distclk {

namespace {
std::int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void Mailbox::push(Message msg) {
  Entry entry{std::move(msg), 0};
  if (metrics_ != nullptr && metrics_->registry != nullptr)
    entry.enqueueNs = steadyNowNs();
  {
    const std::scoped_lock lock(mu_);
    queue_.push_back(std::move(entry));
  }
  cv_.notify_one();
}

std::vector<Message> Mailbox::drainLocked() {
  if (metrics_ != nullptr && metrics_->registry != nullptr && !queue_.empty()) {
    obs::MetricsRegistry& reg = *metrics_->registry;
    reg.observe(metrics_->queueDepth, double(queue_.size()));
    reg.add(metrics_->deliveries, std::int64_t(queue_.size()));
    const std::int64_t now = steadyNowNs();
    for (const Entry& e : queue_)
      reg.observe(metrics_->messageAge, double(now - e.enqueueNs) * 1e-9);
  }
  std::vector<Message> out;
  out.reserve(queue_.size());
  for (Entry& e : queue_) out.push_back(std::move(e.msg));
  queue_.clear();
  return out;
}

std::vector<Message> Mailbox::drain() {
  const std::scoped_lock lock(mu_);
  return drainLocked();
}

std::vector<Message> Mailbox::waitAndDrain(double timeoutSeconds) {
  std::unique_lock lock(mu_);
  cv_.wait_for(lock, std::chrono::duration<double>(timeoutSeconds),
               [&] { return !queue_.empty() || interrupted_; });
  interrupted_ = false;
  return drainLocked();
}

void Mailbox::interrupt() {
  {
    const std::scoped_lock lock(mu_);
    interrupted_ = true;
  }
  cv_.notify_all();
}

ThreadNetwork::ThreadNetwork(Adjacency adj)
    : adj_(std::move(adj)),
      boxes_(adj_.size()),
      sentByNode_(adj_.size()),
      alive_(adj_.size()) {
  if (!isValidTopology(adj_))
    throw std::invalid_argument("ThreadNetwork: invalid topology");
  for (std::size_t i = 0; i < adj_.size(); ++i) {
    sentByNode_[i].store(0, std::memory_order_relaxed);
    alive_[i].store(true, std::memory_order_relaxed);
  }
}

void ThreadNetwork::attachMetrics(obs::MetricsRegistry& registry) {
  metrics_ = NetMetrics::attach(registry);
  for (auto& box : boxes_) box.setMetrics(&metrics_);
}

void ThreadNetwork::setAlive(int node, bool alive) {
  alive_[std::size_t(node)].store(alive, std::memory_order_relaxed);
}

void ThreadNetwork::broadcast(int from, const Message& msg) {
  if (!isAlive(from)) return;
  broadcasts_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.registry != nullptr) metrics_.registry->add(metrics_.broadcasts);
  for (int to : adj_[std::size_t(from)]) send(from, to, msg);
}

void ThreadNetwork::send(int from, int to, const Message& msg) {
  if (!isAlive(from) || !isAlive(to)) return;
  boxes_[std::size_t(to)].push(msg);
  messagesSent_.fetch_add(1, std::memory_order_relaxed);
  sentByNode_[std::size_t(from)].fetch_add(1, std::memory_order_relaxed);
  bytesSent_.fetch_add(static_cast<std::int64_t>(serializedSize(msg)),
                       std::memory_order_relaxed);
  if (metrics_.registry != nullptr) metrics_.registry->add(metrics_.sends);
}

void ThreadNetwork::interruptAll() {
  for (auto& box : boxes_) box.interrupt();
}

NetworkStats ThreadNetwork::stats() const {
  NetworkStats s;
  s.messagesSent = messagesSent_.load(std::memory_order_relaxed);
  s.broadcasts = broadcasts_.load(std::memory_order_relaxed);
  s.bytesSent = bytesSent_.load(std::memory_order_relaxed);
  s.sentByNode.reserve(adj_.size());
  for (std::size_t i = 0; i < adj_.size(); ++i)
    s.sentByNode.push_back(sentByNode_[i].load(std::memory_order_relaxed));
  return s;
}

}  // namespace distclk
