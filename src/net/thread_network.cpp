#include "net/thread_network.h"

#include <chrono>
#include <stdexcept>

namespace distclk {

void Mailbox::push(Message msg) {
  {
    const std::scoped_lock lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

std::vector<Message> Mailbox::drain() {
  const std::scoped_lock lock(mu_);
  std::vector<Message> out(queue_.begin(), queue_.end());
  queue_.clear();
  return out;
}

std::vector<Message> Mailbox::waitAndDrain(double timeoutSeconds) {
  std::unique_lock lock(mu_);
  cv_.wait_for(lock, std::chrono::duration<double>(timeoutSeconds),
               [&] { return !queue_.empty() || interrupted_; });
  interrupted_ = false;
  std::vector<Message> out(queue_.begin(), queue_.end());
  queue_.clear();
  return out;
}

void Mailbox::interrupt() {
  {
    const std::scoped_lock lock(mu_);
    interrupted_ = true;
  }
  cv_.notify_all();
}

ThreadNetwork::ThreadNetwork(Adjacency adj)
    : adj_(std::move(adj)), boxes_(adj_.size()) {
  if (!isValidTopology(adj_))
    throw std::invalid_argument("ThreadNetwork: invalid topology");
}

void ThreadNetwork::broadcast(int from, const Message& msg) {
  for (int to : adj_[std::size_t(from)]) send(to, msg);
}

void ThreadNetwork::send(int to, const Message& msg) {
  boxes_[std::size_t(to)].push(msg);
  const std::scoped_lock lock(statsMu_);
  ++messagesSent_;
}

void ThreadNetwork::interruptAll() {
  for (auto& box : boxes_) box.interrupt();
}

std::int64_t ThreadNetwork::messagesSent() const noexcept {
  const std::scoped_lock lock(statsMu_);
  return messagesSent_;
}

}  // namespace distclk
