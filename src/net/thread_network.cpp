#include "net/thread_network.h"

#include <chrono>
#include <stdexcept>

namespace distclk {

namespace {
std::int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void Mailbox::push(Message msg) {
  Entry entry{std::move(msg), 0};
  if (metrics_ != nullptr && metrics_->registry != nullptr)
    entry.enqueueNs = steadyNowNs();
  {
    const sync::MutexLock lock(mu_);
    queue_.push_back(std::move(entry));
  }
  cv_.notifyOne();
}

std::deque<Mailbox::Entry> Mailbox::takeLocked() {
  std::deque<Entry> taken;
  taken.swap(queue_);
  return taken;
}

std::vector<Message> Mailbox::deliver(std::deque<Entry> entries) {
  // Runs with mu_ released: delivery metrics must not put the mailbox lock
  // above the registry/shard locks in the lock order. The depth and ages
  // reflect the moment of the take, which is what the probes mean anyway.
  if (metrics_ != nullptr && metrics_->registry != nullptr &&
      !entries.empty()) {
    obs::MetricsRegistry& reg = *metrics_->registry;
    reg.observe(metrics_->queueDepth, double(entries.size()));
    reg.add(metrics_->deliveries, std::int64_t(entries.size()));
    const std::int64_t now = steadyNowNs();
    for (const Entry& e : entries)
      reg.observe(metrics_->messageAge, double(now - e.enqueueNs) * 1e-9);
  }
  std::vector<Message> out;
  out.reserve(entries.size());
  for (Entry& e : entries) out.push_back(std::move(e.msg));
  return out;
}

std::vector<Message> Mailbox::drain() {
  std::deque<Entry> taken;
  {
    const sync::MutexLock lock(mu_);
    taken = takeLocked();
  }
  return deliver(std::move(taken));
}

std::vector<Message> Mailbox::waitAndDrain(double timeoutSeconds) {
  std::deque<Entry> taken;
  {
    const sync::MutexLock lock(mu_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeoutSeconds));
    while (queue_.empty() && !interrupted_) {
      if (cv_.waitUntil(mu_, deadline) == std::cv_status::timeout) break;
    }
    interrupted_ = false;
    taken = takeLocked();
  }
  return deliver(std::move(taken));
}

void Mailbox::interrupt() {
  {
    const sync::MutexLock lock(mu_);
    interrupted_ = true;
  }
  cv_.notifyAll();
}

ThreadNetwork::ThreadNetwork(Adjacency adj)
    : adj_(std::move(adj)),
      boxes_(adj_.size()),
      sentByNode_(adj_.size()),
      alive_(adj_.size()) {
  if (!isValidTopology(adj_))
    throw std::invalid_argument("ThreadNetwork: invalid topology");
  for (std::size_t i = 0; i < adj_.size(); ++i) {
    sentByNode_[i].store(0, std::memory_order_relaxed);
    alive_[i].store(true, std::memory_order_relaxed);
  }
}

void ThreadNetwork::attachMetrics(obs::MetricsRegistry& registry) {
  metrics_ = NetMetrics::attach(registry);
  for (auto& box : boxes_) box.setMetrics(&metrics_);
}

void ThreadNetwork::setAlive(int node, bool alive) {
  alive_[std::size_t(node)].store(alive, std::memory_order_relaxed);
}

void ThreadNetwork::broadcast(int from, const Message& msg) {
  if (!isAlive(from)) return;
  broadcasts_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_.registry != nullptr) metrics_.registry->add(metrics_.broadcasts);
  for (int to : adj_[std::size_t(from)]) send(from, to, msg);
}

void ThreadNetwork::send(int from, int to, const Message& msg) {
  if (!isAlive(from) || !isAlive(to)) return;
  boxes_[std::size_t(to)].push(msg);
  messagesSent_.fetch_add(1, std::memory_order_relaxed);
  sentByNode_[std::size_t(from)].fetch_add(1, std::memory_order_relaxed);
  bytesSent_.fetch_add(static_cast<std::int64_t>(serializedSize(msg)),
                       std::memory_order_relaxed);
  if (metrics_.registry != nullptr) metrics_.registry->add(metrics_.sends);
}

void ThreadNetwork::interruptAll() {
  for (auto& box : boxes_) box.interrupt();
}

NetworkStats ThreadNetwork::stats() const {
  NetworkStats s;
  s.messagesSent = messagesSent_.load(std::memory_order_relaxed);
  s.broadcasts = broadcasts_.load(std::memory_order_relaxed);
  s.bytesSent = bytesSent_.load(std::memory_order_relaxed);
  s.sentByNode.reserve(adj_.size());
  for (std::size_t i = 0; i < adj_.size(); ++i)
    s.sentByNode.push_back(sentByNode_[i].load(std::memory_order_relaxed));
  return s;
}

}  // namespace distclk
