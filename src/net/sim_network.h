// Discrete-event message fabric for the simulated cluster. Delivery is
// deterministic: messages carry a virtual arrival time (send time + link
// latency) and a global sequence number for tie-breaking. Node failure
// injection mirrors the paper's observation that nodes drop out near the
// end of a run and the topology degenerates.
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.h"
#include "net/net_metrics.h"
#include "net/topology.h"

namespace distclk {

class SimNetwork {
 public:
  SimNetwork(Adjacency adj, double latencySeconds = 1e-3);

  int nodes() const noexcept { return static_cast<int>(adj_.size()); }
  const Adjacency& adjacency() const noexcept { return adj_; }
  const NetworkStats& stats() const noexcept { return stats_; }

  /// Marks a node dead: it no longer receives deliveries and its future
  /// sends are dropped (already-queued messages still arrive).
  void killNode(int node);
  /// Membership control for churn: a node that has not joined yet is
  /// treated exactly like a dead one until setAlive(node, true).
  void setAlive(int node, bool alive);
  bool isAlive(int node) const noexcept { return alive_[std::size_t(node)]; }

  /// Sends `msg` to every live neighbor of `from`, arriving at
  /// sendTime + latency.
  void broadcast(int from, double sendTime, const Message& msg);

  /// Point-to-point variant.
  void send(int from, int to, double sendTime, const Message& msg);

  /// Removes and returns all messages for `node` with arrival <= upTo,
  /// ordered by (arrival, global sequence).
  std::vector<Message> collect(int node, double upTo);

  /// Earliest pending arrival time for `node` (infinity when none).
  double nextArrival(int node) const;

  /// Attaches observation probes. Message age is measured in virtual
  /// seconds (collect time minus send time), so it covers both link
  /// latency and the receiver's compute-phase blocking; traces of
  /// simulated runs stay deterministic.
  void attachMetrics(obs::MetricsRegistry& registry);

 private:
  struct Pending {
    double arrival;
    double sendTime;
    std::int64_t seq;
    Message msg;
  };

  Adjacency adj_;
  double latency_;
  std::vector<std::vector<Pending>> inbox_;
  std::vector<char> alive_;
  std::int64_t seq_ = 0;
  NetworkStats stats_;
  NetMetrics metrics_;
};

}  // namespace distclk
