#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace distclk {

const char* toString(TopologyKind k) noexcept {
  switch (k) {
    case TopologyKind::kHypercube: return "hypercube";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kGrid: return "grid";
    case TopologyKind::kComplete: return "complete";
    case TopologyKind::kStar: return "star";
  }
  return "?";
}

TopologyKind topologyFromString(const std::string& s) {
  if (s == "hypercube") return TopologyKind::kHypercube;
  if (s == "ring") return TopologyKind::kRing;
  if (s == "grid") return TopologyKind::kGrid;
  if (s == "complete") return TopologyKind::kComplete;
  if (s == "star") return TopologyKind::kStar;
  throw std::invalid_argument("unknown topology: " + s);
}

namespace {

void addEdge(Adjacency& adj, int a, int b) {
  if (a == b) return;
  auto& na = adj[std::size_t(a)];
  if (std::find(na.begin(), na.end(), b) == na.end()) na.push_back(b);
  auto& nb = adj[std::size_t(b)];
  if (std::find(nb.begin(), nb.end(), a) == nb.end()) nb.push_back(a);
}

}  // namespace

std::vector<int> idealTopologyNeighbors(TopologyKind kind, int node, int n) {
  std::vector<int> nbrs;
  switch (kind) {
    case TopologyKind::kHypercube: {
      int dims = 0;
      while ((1 << dims) < n) ++dims;
      for (int b = 0; b < dims; ++b) {
        const int other = node ^ (1 << b);
        if (other < n) nbrs.push_back(other);
      }
      break;
    }
    case TopologyKind::kRing: {
      if (n > 1) nbrs.push_back((node + 1) % n);
      if (n > 2) nbrs.push_back((node + n - 1) % n);
      break;
    }
    case TopologyKind::kGrid: {
      // Most-square factorization rows x cols, rows <= cols.
      int rows = static_cast<int>(std::sqrt(double(n)));
      while (rows > 1 && n % rows != 0) --rows;
      const int cols = n / rows;
      const int r = node / cols, c = node % cols;
      if (c + 1 < cols) nbrs.push_back(node + 1);
      if (c > 0) nbrs.push_back(node - 1);
      if (r + 1 < rows) nbrs.push_back(node + cols);
      if (r > 0) nbrs.push_back(node - cols);
      break;
    }
    case TopologyKind::kComplete: {
      for (int o = 0; o < n; ++o)
        if (o != node) nbrs.push_back(o);
      break;
    }
    case TopologyKind::kStar: {
      if (node == 0)
        for (int o = 1; o < n; ++o) nbrs.push_back(o);
      else
        nbrs.push_back(0);
      break;
    }
  }
  return nbrs;
}

Adjacency buildTopology(TopologyKind kind, int n) {
  if (n < 1) throw std::invalid_argument("buildTopology: n must be >= 1");
  Adjacency adj(static_cast<std::size_t>(n));
  for (int node = 0; node < n; ++node)
    for (int o : idealTopologyNeighbors(kind, node, n)) addEdge(adj, node, o);
  for (auto& l : adj) std::sort(l.begin(), l.end());
  return adj;
}

Adjacency buildViaHub(TopologyKind kind, const std::vector<int>& joinOrder) {
  const int n = static_cast<int>(joinOrder.size());
  Adjacency adj(static_cast<std::size_t>(n));
  std::vector<bool> joined(static_cast<std::size_t>(n), false);
  for (int idx = 0; idx < n; ++idx) {
    const int node = joinOrder[std::size_t(idx)];
    if (node < 0 || node >= n || joined[std::size_t(node)])
      throw std::invalid_argument("buildViaHub: joinOrder not a permutation");
    // Hub: position = node id; neighbor list filtered to joined nodes.
    for (int o : idealTopologyNeighbors(kind, node, n)) {
      if (!joined[std::size_t(o)]) continue;
      // Joiner contacts o; o did not know the joiner and adds it back.
      addEdge(adj, node, o);
    }
    joined[std::size_t(node)] = true;
  }
  for (auto& l : adj) std::sort(l.begin(), l.end());
  return adj;
}

bool isValidTopology(const Adjacency& adj) {
  const int n = static_cast<int>(adj.size());
  for (int a = 0; a < n; ++a) {
    for (int b : adj[std::size_t(a)]) {
      if (b < 0 || b >= n || b == a) return false;
      const auto& nb = adj[std::size_t(b)];
      if (std::find(nb.begin(), nb.end(), a) == nb.end()) return false;
    }
  }
  return n <= 1 || diameter(adj) >= 0;
}

int diameter(const Adjacency& adj) {
  const int n = static_cast<int>(adj.size());
  int best = 0;
  std::vector<int> dist(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    std::deque<int> queue{s};
    dist[std::size_t(s)] = 0;
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (int v : adj[std::size_t(u)]) {
        if (dist[std::size_t(v)] != -1) continue;
        dist[std::size_t(v)] = dist[std::size_t(u)] + 1;
        queue.push_back(v);
      }
    }
    for (int v = 0; v < n; ++v) {
      if (dist[std::size_t(v)] == -1) return -1;
      best = std::max(best, dist[std::size_t(v)]);
    }
  }
  return best;
}

}  // namespace distclk
