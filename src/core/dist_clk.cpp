#include "core/dist_clk.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/rng.h"

namespace distclk {

namespace {

double phaseCost(const SimOptions& opt, int node, std::int64_t modelCost,
                 double measuredSeconds) {
  double cost = opt.costModel == CostModel::kMeasured
                    ? measuredSeconds
                    : static_cast<double>(modelCost) / opt.modeledWorkPerSecond;
  if (!opt.nodeSpeeds.empty()) cost /= opt.nodeSpeeds[std::size_t(node)];
  return cost;
}

}  // namespace

SimResult runSimulatedDistClk(const Instance& inst, const CandidateLists& cand,
                              const SimOptions& opt) {
  if (opt.nodes < 1) throw std::invalid_argument("SimOptions: nodes >= 1");

  SimNetwork net(buildTopology(opt.topology, opt.nodes), opt.latencySeconds);
  Rng master(opt.seed);
  std::vector<DistNode> nodes;
  nodes.reserve(std::size_t(opt.nodes));
  for (int i = 0; i < opt.nodes; ++i)
    nodes.emplace_back(inst, cand, opt.node, i, master());

  // Observability: only materialized when a sink is attached; metrics and
  // trace records never feed back into node decisions, and all timestamps
  // are virtual, so traced runs reproduce un-traced results exactly.
  obs::MetricsRegistry metricsReg;
  if (opt.trace != nullptr) {
    net.attachMetrics(metricsReg);
    const NodeMetrics nodeMetrics = NodeMetrics::attach(metricsReg);
    for (auto& node : nodes) node.setMetrics(nodeMetrics);
    obs::RunMeta meta;
    meta.instance = inst.name();
    meta.n = inst.n();
    meta.algorithm = "dist-sim";
    meta.nodes = opt.nodes;
    meta.topology = toString(opt.topology);
    meta.seed = opt.seed;
    meta.cv = opt.node.cv;
    meta.cr = opt.node.cr;
    meta.kick = toString(opt.node.clkKick);
    meta.timeLimitPerNode = opt.timeLimitPerNode;
    meta.clock = "virtual";
    opt.trace->write(obs::runMetaRecord(meta));
  }
  double nextSnapshot = opt.trace != nullptr && opt.metricsIntervalSeconds > 0
                            ? opt.metricsIntervalSeconds
                            : std::numeric_limits<double>::infinity();

  SimResult res;
  res.bestLength = std::numeric_limits<std::int64_t>::max();
  res.nodeClocks.assign(std::size_t(opt.nodes), 0.0);
  std::vector<char> active(std::size_t(opt.nodes), 1);
  std::vector<char> pendingInit(std::size_t(opt.nodes), 1);
  std::vector<int> lastPerturbLevel(std::size_t(opt.nodes), 1);
  auto failures = opt.failures;

  if (!opt.nodeSpeeds.empty()) {
    if (static_cast<int>(opt.nodeSpeeds.size()) != opt.nodes)
      throw std::invalid_argument("SimOptions: nodeSpeeds size != nodes");
    for (double s : opt.nodeSpeeds)
      if (s <= 0.0)
        throw std::invalid_argument("SimOptions: node speeds must be > 0");
  }

  // Churn: late joiners start their clock at the join time and are dead to
  // the network until then.
  for (const auto& [node, when] : opt.joins) {
    if (node < 0 || node >= opt.nodes)
      throw std::invalid_argument("SimOptions: join node out of range");
    res.nodeClocks[std::size_t(node)] = when;
    net.setAlive(node, false);
  }

  auto recordBest = [&](int nodeId, double time) {
    const DistNode& node = nodes[std::size_t(nodeId)];
    if (node.best().length() < res.bestLength) {
      res.bestLength = node.best().length();
      res.bestOrder = node.best().orderVector();
      res.curve.push_back({time, res.bestLength});
    }
  };
  auto logEvent = [&](double time, int nodeId, NodeEventType type,
                      std::int64_t value) {
    res.events.push_back({time, nodeId, type, value});
    if (opt.trace != nullptr) opt.trace->write(obs::eventRecord({time, nodeId, type, value}));
  };
  // Periodic metric snapshots, stamped with the virtual time of the step
  // that crossed each interval boundary.
  auto maybeSnapshot = [&](double now) {
    while (now >= nextSnapshot) {
      opt.trace->write(obs::metricsRecord(now, metricsReg.snapshot()));
      nextSnapshot += opt.metricsIntervalSeconds;
    }
  };

  while (!res.hitTarget) {
    int nodeId = -1;
    double start = std::numeric_limits<double>::infinity();
    for (int i = 0; i < opt.nodes; ++i) {
      if (!active[std::size_t(i)]) continue;
      if (res.nodeClocks[std::size_t(i)] < start) {
        start = res.nodeClocks[std::size_t(i)];
        nodeId = i;
      }
    }
    if (nodeId == -1) break;  // everyone done

    // Inject failures due at or before this step's start.
    bool killed = false;
    for (auto it = failures.begin(); it != failures.end();) {
      if (it->second <= start) {
        active[std::size_t(it->first)] = 0;
        net.killNode(it->first);
        if (it->first == nodeId) killed = true;
        it = failures.erase(it);
      } else {
        ++it;
      }
    }
    if (killed) continue;

    if (start >= opt.timeLimitPerNode) {
      // Paper: nodes run out of budget one by one, degenerating the
      // topology; dead nodes stop receiving.
      active[std::size_t(nodeId)] = 0;
      net.killNode(nodeId);
      continue;
    }

    DistNode& node = nodes[std::size_t(nodeId)];

    if (pendingInit[std::size_t(nodeId)]) {
      // Join (or time-0 start): construct + optimize the initial tour.
      pendingInit[std::size_t(nodeId)] = 0;
      net.setAlive(nodeId, true);
      const auto out = node.initialStep();
      const double end =
          start + phaseCost(opt, nodeId, out.modelCost, out.measuredSeconds);
      res.nodeClocks[std::size_t(nodeId)] = end;
      ++res.totalSteps;
      logEvent(end, nodeId, NodeEventType::kInitialTour, out.bestLength);
      recordBest(nodeId, end);
      maybeSnapshot(end);
      if (out.foundTarget) {
        res.hitTarget = true;
        res.targetTime = end;
        logEvent(end, nodeId, NodeEventType::kTargetReached, out.bestLength);
      }
      continue;
    }

    auto phase = node.compute();
    const double end =
        start + phaseCost(opt, nodeId, phase.modelCost, phase.measuredSeconds);
    const int perturbations = phase.perturbations;
    const bool restarted = phase.restarted;
    const auto received = net.collect(nodeId, end);
    const auto out = node.merge(std::move(phase), received);
    ++res.totalSteps;
    res.nodeClocks[std::size_t(nodeId)] = end;

    if (restarted) {
      ++res.totalRestarts;
      // Event value documents how deep the stagnation ran (trace.h).
      logEvent(end, nodeId, NodeEventType::kRestart,
               out.noImprovementsAtRestart);
      lastPerturbLevel[std::size_t(nodeId)] = 1;
    } else if (perturbations != lastPerturbLevel[std::size_t(nodeId)]) {
      lastPerturbLevel[std::size_t(nodeId)] = perturbations;
      logEvent(end, nodeId, NodeEventType::kPerturbationLevel, perturbations);
    }
    if (out.improvedByMessage)
      logEvent(end, nodeId, NodeEventType::kTourReceived, out.bestLength);
    if (out.broadcast) {
      logEvent(end, nodeId, NodeEventType::kBroadcastSent, out.bestLength);
      net.broadcast(nodeId, end, node.makeTourMessage());
    }
    if (out.bestLength < res.bestLength) {
      logEvent(end, nodeId, NodeEventType::kImprovement, out.bestLength);
      recordBest(nodeId, end);
    }
    maybeSnapshot(end);
    if (out.foundTarget) {
      res.hitTarget = true;
      res.targetTime = end;
      logEvent(end, nodeId, NodeEventType::kTargetReached, out.bestLength);
      // Termination criterion 2: the finder notifies the cluster; the
      // simulation ends here and the remaining nodes' clocks stay put.
      break;
    }
  }

  res.net = net.stats();
  if (opt.trace != nullptr) {
    double finalTime = 0.0;
    for (const double clock : res.nodeClocks)
      finalTime = std::max(finalTime, clock);
    opt.trace->write(obs::metricsRecord(finalTime, metricsReg.snapshot()));
    opt.trace->write(obs::runEndRecord(finalTime, res.bestLength,
                                       res.hitTarget, res.totalSteps,
                                       res.net.messagesSent));
    opt.trace->flush();
  }
  std::sort(res.events.begin(), res.events.end(),
            [](const NodeEvent& a, const NodeEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.node < b.node;
            });
  return res;
}

}  // namespace distclk
