#include "core/dist_clk.h"

namespace distclk {

SimResult runSimulatedDistClk(const Instance& inst, const CandidateLists& cand,
                              const SimOptions& opt) {
  RunConfig cfg = opt;
  cfg.runtime = RuntimeKind::kSim;
  return runDistributed(inst, cand, cfg);
}

SimResult runSimulatedDistClk(const std::shared_ptr<const InstanceContext>& ctx,
                              const SimOptions& opt) {
  RunConfig cfg = opt;
  cfg.runtime = RuntimeKind::kSim;
  return runDistributed(ctx, cfg);
}

}  // namespace distclk
