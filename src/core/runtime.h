// Unified runtime layer: the distributed EA of Fig. 1 as ONE event loop
// (NodeRunner) parameterized by a Transport (how messages move) and a Clock
// (how time passes). Both substrates — the discrete-event simulator with
// virtual per-node CPU clocks and the real-thread runtime with wall-clock
// budgets — are thin instantiations of this layer, so every injection
// capability (failures, late-join churn, heterogeneous node speeds) and
// every observation hook works identically on both. Adding a backend (e.g.
// a socket transport speaking the net/message wire format) means writing a
// Transport adapter, not a driver.
//
//   RunConfig  — one option struct for every substrate (ex SimOptions /
//                ThreadRunOptions, which are now aliases of it)
//   RunResult  — one result struct (ex SimResult / ThreadRunResult)
//   Transport  — broadcast/send/collect + membership (kill, setAlive)
//   Clock      — per-node now() + compute-phase charging (virtual or wall)
//   NodeRunner — the per-node Fig.-1 iteration both drivers used to
//                hand-roll: compute, collect, merge, trace, broadcast
//
// Determinism guarantee: for a fixed seed the simulated substrate produces
// bit-identical tours, curves, and event logs to the pre-refactor driver
// (tests/test_runtime.cpp pins a recorded fixture).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/node.h"
#include "core/trace.h"
#include "net/net_metrics.h"
#include "net/topology.h"
#include "obs/trace_sink.h"
#include "tsp/instance.h"
#include "tsp/instance_context.h"
#include "tsp/neighbors.h"

namespace distclk {

enum class CostModel {
  kMeasured,  ///< virtual seconds = wall time of the compute phase
  kModeled,   ///< virtual seconds = modelCost / modeledWorkPerSecond
};

enum class RuntimeKind {
  kSim,      ///< discrete-event simulator, virtual clocks (deterministic)
  kThreads,  ///< one std::jthread per node, wall clocks
};

const char* toString(RuntimeKind k) noexcept;
/// Parses "sim" | "threads"; throws std::invalid_argument otherwise.
RuntimeKind runtimeKindFromString(const std::string& name);

/// One option struct for every substrate. Fields that only apply to one
/// runtime are documented as such and ignored by the other.
struct RunConfig {
  RuntimeKind runtime = RuntimeKind::kSim;
  int nodes = 8;                     ///< paper's default cluster size
  TopologyKind topology = TopologyKind::kHypercube;
  DistParams node;                   ///< EA parameters (c_v=64, c_r=256, ...)
  double timeLimitPerNode = 10.0;    ///< CPU seconds per node (virtual | wall)
  double latencySeconds = 1e-3;      ///< sim only: link latency (Gbit LAN)
  CostModel costModel = CostModel::kMeasured;  ///< sim only
  double modeledWorkPerSecond = 4e6; ///< flips/second in kModeled mode
  std::uint64_t seed = 1;            ///< master seed; nodes get split streams
  /// Failure injection: (node, time) pairs; the node stops stepping and
  /// stops receiving messages from that time on. Runs on both substrates.
  std::vector<std::pair<int, double>> failures;
  /// Churn injection: (node, time) pairs; the node joins the network only
  /// at that time (its clock starts there, messages sent to it earlier are
  /// lost). Nodes not listed join at time 0. Its budget still ends at
  /// timeLimitPerNode, as a late joiner's would. Runs on both substrates.
  std::vector<std::pair<int, double>> joins;
  /// Heterogeneous cluster: relative speed per node. Empty = homogeneous
  /// (the paper's 8 identical P4s). Must be empty or size == nodes,
  /// entries > 0. The simulator divides virtual cost by the speed; the
  /// thread runtime throttles nodes with speed < 1 to the same effect.
  std::vector<double> nodeSpeeds;
  /// Optional JSONL trace sink (null = no tracing, zero overhead). Under
  /// threads the sink is called concurrently from all node threads —
  /// JsonlTraceSink serializes internally. Traced simulated runs stay
  /// deterministic and produce identical tours to un-traced ones.
  obs::TraceSink* trace = nullptr;
  /// Seconds between periodic metric snapshots (<= 0: only the final
  /// snapshot is written). Also paces the per-node node-best trace series
  /// and --metrics-out exposition. Ignored without a sink or metricsOutPath.
  double metricsIntervalSeconds = 0.0;
  /// Stall detector budget in per-node seconds (<= 0: disabled). When a
  /// node sees no improvement (global under sim's centralized view, local
  /// under threads) for this long, it logs one kStall event and re-arms on
  /// the next improvement. Observation-only: trajectories are unchanged.
  double stallSeconds = 0.0;
  /// Live exposition: when non-empty, a Prometheus-style text snapshot of
  /// the metrics registry is atomically renamed into this path every
  /// metricsIntervalSeconds and once at run end. Works with or without a
  /// trace sink.
  std::string metricsOutPath;
  /// Cooperative cancellation (the job layer's kill switch). When non-null
  /// and set, the run winds down at the next scheduling boundary: the
  /// simulator stops before the next node step, thread nodes exit their
  /// loop. Null (the default) leaves every trajectory untouched.
  std::atomic<bool>* cancel = nullptr;
  /// Incremental best streaming: called with (per-node seconds, length) on
  /// every new best — global bests under sim's centralized view, node-local
  /// bests under threads (where it may be called concurrently from node
  /// threads; the callback must be thread-safe). Observation-only.
  std::function<void(double, std::int64_t)> onBest;
  /// Multi-tenant attribution: when non-empty, stamped into the trace
  /// run-meta record as "job" so one trace file can carry many runs.
  std::string jobLabel;
};

/// One result struct for every substrate. Per-substrate notes: under sim,
/// `curve` and event times are virtual seconds and bit-deterministic for a
/// fixed seed; under threads they are per-node wall seconds and `curve` is
/// the post-hoc merge of `nodeCurves`.
struct RunResult {
  std::int64_t bestLength = 0;
  std::vector<int> bestOrder;
  bool hitTarget = false;
  /// Per-node time at which the target was first reached.
  double targetTime = 0.0;
  /// Global best length vs per-node CPU time.
  AnytimeCurve curve;
  /// Per-node anytime curves (each node's local best over its own clock).
  std::vector<AnytimeCurve> nodeCurves;
  EventLog events;
  NetworkStats net;
  std::int64_t messagesSent = 0;    ///< == net.messagesSent (convenience)
  /// Per-node final best lengths (the paper collects results from each
  /// node's local output, there being no global control).
  std::vector<std::int64_t> nodeBest;
  std::vector<double> nodeClocks;   ///< final per-node time
  std::int64_t totalSteps = 0;      ///< EA iterations across all nodes
  std::int64_t totalRestarts = 0;
};

/// How messages move between nodes. Implementations must tolerate calls
/// for dead nodes (drops, like the real network losing packets to a downed
/// host). Thread-runtime adapters must be thread-safe; the simulator calls
/// from a single thread.
class Transport {
 public:
  virtual ~Transport() = default;
  /// Delivers `msg` to every live neighbor of `from`. `now` is the
  /// sender's clock (simulated delivery timestamps; wall transports may
  /// ignore it).
  virtual void broadcast(int from, double now, const Message& msg) = 0;
  virtual void send(int from, int to, double now, const Message& msg) = 0;
  /// Removes and returns everything that has arrived at `node` by `now`.
  virtual std::vector<Message> collect(int node, double now) = 0;
  /// Membership: kill = permanent leave; setAlive toggles churn state.
  virtual void kill(int node) = 0;
  virtual void setAlive(int node, bool alive) = 0;
  virtual bool isAlive(int node) const = 0;
  /// Termination criterion 2: the target finder notifies the cluster.
  /// Wall transports broadcast kOptimumFound; the simulator ends the run
  /// centrally, so its adapter is a no-op.
  virtual void announceTarget(int from, std::int64_t length) = 0;
  virtual NetworkStats stats() const = 0;
  virtual const char* name() const noexcept = 0;  ///< run-meta "runtime"
};

class SimNetwork;
class ThreadNetwork;

/// Transport over the discrete-event SimNetwork.
class SimTransport final : public Transport {
 public:
  explicit SimTransport(SimNetwork& net) : net_(net) {}
  void broadcast(int from, double now, const Message& msg) override;
  void send(int from, int to, double now, const Message& msg) override;
  std::vector<Message> collect(int node, double now) override;
  void kill(int node) override;
  void setAlive(int node, bool alive) override;
  bool isAlive(int node) const override;
  void announceTarget(int from, std::int64_t length) override;
  NetworkStats stats() const override;
  const char* name() const noexcept override { return "sim"; }

 private:
  SimNetwork& net_;
};

/// Transport over the concurrent ThreadNetwork mailboxes.
class ThreadTransport final : public Transport {
 public:
  explicit ThreadTransport(ThreadNetwork& net) : net_(net) {}
  void broadcast(int from, double now, const Message& msg) override;
  void send(int from, int to, double now, const Message& msg) override;
  std::vector<Message> collect(int node, double now) override;
  void kill(int node) override;
  void setAlive(int node, bool alive) override;
  bool isAlive(int node) const override;
  void announceTarget(int from, std::int64_t length) override;
  NetworkStats stats() const override;
  const char* name() const noexcept override { return "threads"; }

 private:
  ThreadNetwork& net_;
};

/// How time passes for a node: budgets, snapshot intervals, and trace
/// timestamps all come from here, so the event loop never touches a timer
/// or a virtual-clock array directly.
class Clock {
 public:
  virtual ~Clock() = default;
  /// The node's current local time (virtual seconds or wall seconds since
  /// the node started).
  virtual double now(int node) const = 0;
  /// Accounts one compute phase and returns the node's time after it. The
  /// virtual clock advances by the charged cost; the wall clock has
  /// already elapsed and may throttle nodes with speed < 1.
  virtual double chargeCompute(int node, std::int64_t modelCost,
                               double measuredSeconds) = 0;
  virtual const char* kindName() const noexcept = 0;  ///< run-meta "clock"
};

/// Deterministic per-node virtual clocks (the simulator's time source).
class VirtualClock final : public Clock {
 public:
  VirtualClock(int nodes, CostModel model, double modeledWorkPerSecond,
               std::vector<double> nodeSpeeds);
  double now(int node) const override { return clocks_[std::size_t(node)]; }
  double chargeCompute(int node, std::int64_t modelCost,
                       double measuredSeconds) override;
  /// Churn: a late joiner's clock starts at its join time.
  void setNow(int node, double t) { clocks_[std::size_t(node)] = t; }
  const char* kindName() const noexcept override { return "virtual"; }

 private:
  CostModel model_;
  double workPerSecond_;
  std::vector<double> speeds_;  ///< empty = homogeneous
  std::vector<double> clocks_;
};

/// Per-node wall clocks (the thread runtime's time source). Each node's
/// epoch is set by its own thread via startNode(); nodes with configured
/// speed < 1 are throttled inside chargeCompute by sleeping the extra time
/// a proportionally slower machine would have needed.
class WallClock final : public Clock {
 public:
  WallClock(int nodes, std::vector<double> nodeSpeeds);
  /// Sets node's epoch to the current wall time. Call once, from the
  /// node's own thread, before its first now().
  void startNode(int node);
  double now(int node) const override;
  double chargeCompute(int node, std::int64_t modelCost,
                       double measuredSeconds) override;
  const char* kindName() const noexcept override { return "wall"; }

 private:
  std::vector<double> speeds_;
  std::vector<std::int64_t> epochNs_;
};

/// Cross-node best tracking for substrates with a centralized view (the
/// simulator): global best tour, global anytime curve. Single-threaded.
struct GlobalBest {
  std::int64_t bestLength = std::numeric_limits<std::int64_t>::max();
  std::vector<int> bestOrder;
  AnytimeCurve curve;
};

/// Periodic metric snapshots over one clock. The simulator shares one
/// instance across all nodes (any step may cross a boundary); the thread
/// runtime hands it to node 0's runner only. Each crossed boundary emits a
/// metrics trace record (when a sink is attached) and refreshes the
/// Prometheus snapshot file (when promPath is non-empty).
class Snapshotter {
 public:
  Snapshotter(obs::TraceSink* sink, obs::MetricsRegistry& registry,
              double intervalSeconds, std::string promPath = {});
  void maybe(double now);

 private:
  obs::TraceSink* sink_;
  obs::MetricsRegistry& registry_;
  double interval_;
  double next_;
  std::string promPath_;
};

/// The Fig.-1 per-node iteration, shared by every substrate: compute
/// (perturb + inner CLK), charge the clock, collect neighbor messages,
/// merge, then bookkeeping — events, curves, broadcast, snapshot, target.
/// One runner per node; runners never touch each other's state, so the
/// thread runtime runs them concurrently without locks while the simulator
/// interleaves them deterministically from one thread.
class NodeRunner {
 public:
  /// Run-wide environment shared by all runners (everything in it must
  /// outlive them). `globalBest` non-null selects centralized improvement
  /// semantics (kImprovement = new global best, as the simulator reports);
  /// null selects local semantics (kImprovement = new node-local best not
  /// caused by a received tour, as thread nodes report).
  struct Env {
    Transport& transport;
    Clock& clock;
    const RunConfig& cfg;
    obs::TraceSink* sink = nullptr;
    std::atomic<bool>* stop = nullptr;
    GlobalBest* globalBest = nullptr;
  };

  /// `log` is where events land: the simulator passes one shared log (to
  /// preserve its deterministic emission order), the thread runtime one
  /// log per node. `snapshotter` may be null. `joinTime` > 0 marks a late
  /// joiner (logs kNodeJoined when it enters).
  NodeRunner(DistNode& node, const Env& env, EventLog& log,
             Snapshotter* snapshotter, double joinTime = 0.0);

  /// First step: join the network, construct + CLK-optimize the initial
  /// tour. Returns true when the target was already reached.
  bool initialTick();
  /// One EA iteration. Returns true when the target was reached.
  bool tick();

  /// Scheduler-level membership changes (budget exhaustion, injected
  /// failure). `failed` additionally logs kNodeFailed at `when`.
  void leave(double when, bool failed);

  const AnytimeCurve& curve() const noexcept { return curve_; }

  /// Audit-mode invariant check: the node-local anytime curve must be
  /// strictly improving in length and non-decreasing in time, and when the
  /// runner maintains the centralized global best, the global curve must be
  /// too. Hooked after every recordBest() in -DDISTCLK_AUDIT=ON builds;
  /// broadcasts additionally round-trip through the versioned wire codec.
  void auditCheck(const char* where) const;

  std::int64_t steps() const noexcept { return steps_; }
  std::int64_t restarts() const noexcept { return restarts_; }
  bool hitTarget() const noexcept { return hitTarget_; }
  double targetTime() const noexcept { return targetTime_; }
  const DistNode& node() const noexcept { return node_; }

 private:
  void logEvent(double t, NodeEventType type, std::int64_t value);
  void recordBest(double now, std::int64_t length, bool improvedByMessage,
                  bool logImprovement);
  void maybeEmitNodeBest(double now);
  void checkStall(double now);

  DistNode& node_;
  Env env_;
  EventLog& log_;
  Snapshotter* snapshotter_;
  double joinTime_;
  AnytimeCurve curve_;       ///< node-local best over the node's clock
  int lastPerturbLevel_ = 1;
  std::int64_t steps_ = 0;
  std::int64_t restarts_ = 0;
  bool hitTarget_ = false;
  double targetTime_ = 0.0;
  // Causal-trace state (only touched when a sink is attached). The Lamport
  // clock follows the textbook rules — send: ++L, stamp; receive:
  // L = max(L, stamp) + 1 — and is observation-only: no node decision ever
  // reads it, so traced runs reproduce un-traced trajectories exactly.
  std::uint64_t lamport_ = 0;
  std::uint64_t sendSeq_ = 0;   ///< per-sender broadcast counter (1-based)
  double seriesNext_ = 0.0;     ///< next node-best series boundary
  bool stalled_ = false;        ///< stall episode already reported
};

/// Runs the distributed algorithm on the substrate selected by
/// cfg.runtime. The simulated substrate is deterministic under
/// CostModel::kModeled; the thread substrate blocks until all node threads
/// join. Prefer the runSimulatedDistClk / runThreadedDistClk wrappers when
/// the substrate is fixed at the call site.
RunResult runDistributed(const Instance& inst, const CandidateLists& cand,
                         const RunConfig& cfg);

/// Context-based entry point: consumes shared immutable preprocessing (one
/// candidate build + construction tour for any number of runs). The legacy
/// (Instance, CandidateLists) overload wraps the references in a borrowed
/// context and forwards here, so there is exactly one execution path.
RunResult runDistributed(const std::shared_ptr<const InstanceContext>& ctx,
                         const RunConfig& cfg);

}  // namespace distclk
