#include "core/trace.h"

#include <algorithm>

namespace distclk {

std::int64_t valueAt(const AnytimeCurve& curve, double t) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (const auto& p : curve) {
    if (p.time > t) break;
    best = std::min(best, p.length);
  }
  return best;
}

std::int64_t valueAtOrFirst(const AnytimeCurve& curve, double t) {
  const std::int64_t v = valueAt(curve, t);
  if (v != std::numeric_limits<std::int64_t>::max() || curve.empty()) return v;
  return curve.front().length;
}

double timeToReach(const AnytimeCurve& curve, std::int64_t target) {
  for (const auto& p : curve)
    if (p.length <= target) return p.time;
  return std::numeric_limits<double>::infinity();
}

AnytimeCurve meanCurve(const std::vector<AnytimeCurve>& runs,
                       const std::vector<double>& times) {
  AnytimeCurve out;
  out.reserve(times.size());
  for (double t : times) {
    double sum = 0.0;
    int count = 0;
    for (const auto& run : runs) {
      const std::int64_t v = valueAt(run, t);
      if (v == std::numeric_limits<std::int64_t>::max()) continue;
      sum += static_cast<double>(v);
      ++count;
    }
    if (count > 0)
      out.push_back({t, static_cast<std::int64_t>(sum / count)});
  }
  return out;
}

const char* toString(NodeEventType t) noexcept {
  // Exhaustive switch: a new enumerator without a name here is a compile
  // warning (-Wswitch) and a round-trip test failure, not silent garbage.
  switch (t) {
    case NodeEventType::kInitialTour: return "initial-tour";
    case NodeEventType::kImprovement: return "improvement";
    case NodeEventType::kBroadcastSent: return "broadcast-sent";
    case NodeEventType::kTourReceived: return "tour-received";
    case NodeEventType::kPerturbationLevel: return "perturbation-level";
    case NodeEventType::kRestart: return "restart";
    case NodeEventType::kTargetReached: return "target-reached";
    case NodeEventType::kNodeJoined: return "node-joined";
    case NodeEventType::kNodeFailed: return "node-failed";
    case NodeEventType::kStall: return "stall";
  }
  return "?";
}

std::optional<NodeEventType> nodeEventTypeFromString(
    std::string_view name) noexcept {
  for (const NodeEventType t : kAllNodeEventTypes)
    if (name == toString(t)) return t;
  return std::nullopt;
}

}  // namespace distclk
