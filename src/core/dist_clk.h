// Discrete-event driver: runs the distributed EA of Fig. 1 over a simulated
// cluster with virtual per-node CPU clocks. This replaces the paper's
// physical 8-node Pentium-4 cluster (see DESIGN.md "Substitutions"): a
// node's CLK call is charged either its measured wall time (realistic mode)
// or a deterministic model cost (reproducible test mode); broadcasts arrive
// after a configurable link latency.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/node.h"
#include "core/trace.h"
#include "net/sim_network.h"
#include "net/topology.h"
#include "obs/trace_sink.h"
#include "tsp/instance.h"
#include "tsp/neighbors.h"

namespace distclk {

enum class CostModel {
  kMeasured,  ///< virtual seconds = wall time of the compute phase
  kModeled,   ///< virtual seconds = modelCost / modeledWorkPerSecond
};

struct SimOptions {
  int nodes = 8;                     ///< paper's default cluster size
  TopologyKind topology = TopologyKind::kHypercube;
  DistParams node;                   ///< EA parameters (c_v=64, c_r=256, ...)
  double timeLimitPerNode = 10.0;    ///< virtual CPU seconds per node
  double latencySeconds = 1e-3;      ///< link latency (Gbit LAN scale)
  CostModel costModel = CostModel::kMeasured;
  double modeledWorkPerSecond = 4e6; ///< flips/second in kModeled mode
  std::uint64_t seed = 1;            ///< master seed; nodes get split streams
  /// Failure injection: (node, virtual time) pairs; the node stops stepping
  /// and stops receiving messages from that time on.
  std::vector<std::pair<int, double>> failures;
  /// Churn injection: (node, virtual time) pairs; the node joins the
  /// network only at that time (its clock starts there, messages sent to
  /// it earlier are lost). Nodes not listed join at time 0. Its budget
  /// still ends at timeLimitPerNode, as a late joiner's would.
  std::vector<std::pair<int, double>> joins;
  /// Heterogeneous cluster: relative speed per node (virtual cost is
  /// divided by it). Empty = homogeneous (the paper's 8 identical P4s);
  /// e.g. {1,1,1,1,0.5,0.5,0.5,0.5} models half the machines being half
  /// as fast. Must be empty or size == nodes, entries > 0.
  std::vector<double> nodeSpeeds;
  /// Optional JSONL trace sink (null = no tracing, zero overhead). When
  /// set, the driver creates a MetricsRegistry, wires node + network
  /// probes, and streams run-meta/event/metrics/run-end records stamped
  /// with virtual time — traced simulated runs stay deterministic and
  /// produce identical tours to un-traced ones.
  obs::TraceSink* trace = nullptr;
  /// Virtual seconds between periodic metric snapshots (<= 0: only the
  /// final snapshot is written). Ignored without a sink.
  double metricsIntervalSeconds = 0.0;
};

struct SimResult {
  std::int64_t bestLength = 0;
  std::vector<int> bestOrder;
  bool hitTarget = false;
  /// Per-node virtual time at which the target was first reached.
  double targetTime = 0.0;
  /// Global best length vs per-node virtual CPU time.
  AnytimeCurve curve;
  EventLog events;
  NetworkStats net;
  std::vector<double> nodeClocks;   ///< final virtual time per node
  std::int64_t totalSteps = 0;      ///< EA iterations across all nodes
  std::int64_t totalRestarts = 0;
};

/// Runs one simulated distributed CLK experiment.
SimResult runSimulatedDistClk(const Instance& inst, const CandidateLists& cand,
                              const SimOptions& opt);

}  // namespace distclk
