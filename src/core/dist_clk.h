// Discrete-event driver: runs the distributed EA of Fig. 1 over a simulated
// cluster with virtual per-node CPU clocks. This replaces the paper's
// physical 8-node Pentium-4 cluster (see DESIGN.md "Substitutions"): a
// node's CLK call is charged either its measured wall time (realistic mode)
// or a deterministic model cost (reproducible test mode); broadcasts arrive
// after a configurable link latency.
//
// Since the runtime-layer refactor this is a thin veneer over
// core/runtime.h: SimOptions/SimResult are aliases of RunConfig/RunResult,
// and runSimulatedDistClk() pins cfg.runtime to RuntimeKind::kSim. The
// actual event loop lives in NodeRunner; the scheduler in runtime.cpp.
#pragma once

#include "core/runtime.h"

namespace distclk {

using SimOptions = RunConfig;
using SimResult = RunResult;

/// Runs one simulated distributed CLK experiment (deterministic under
/// CostModel::kModeled). Equivalent to runDistributed() with
/// opt.runtime == RuntimeKind::kSim.
SimResult runSimulatedDistClk(const Instance& inst, const CandidateLists& cand,
                              const SimOptions& opt);

/// Context-based variant: reuses shared immutable preprocessing
/// (tsp/instance_context.h) instead of rebuilding it per run.
SimResult runSimulatedDistClk(const std::shared_ptr<const InstanceContext>& ctx,
                              const SimOptions& opt);

}  // namespace distclk
