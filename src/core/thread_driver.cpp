#include "core/thread_driver.h"

namespace distclk {

ThreadRunResult runThreadedDistClk(const Instance& inst,
                                   const CandidateLists& cand,
                                   const ThreadRunOptions& opt) {
  RunConfig cfg = opt;
  cfg.runtime = RuntimeKind::kThreads;
  return runDistributed(inst, cand, cfg);
}

ThreadRunResult runThreadedDistClk(
    const std::shared_ptr<const InstanceContext>& ctx,
    const ThreadRunOptions& opt) {
  RunConfig cfg = opt;
  cfg.runtime = RuntimeKind::kThreads;
  return runDistributed(ctx, cfg);
}

}  // namespace distclk
