#include "core/thread_driver.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "net/thread_network.h"
#include "util/rng.h"
#include "util/timer.h"

namespace distclk {

ThreadRunResult runThreadedDistClk(const Instance& inst,
                                   const CandidateLists& cand,
                                   const ThreadRunOptions& opt) {
  if (opt.nodes < 1) throw std::invalid_argument("ThreadRunOptions: nodes >= 1");

  ThreadNetwork net(buildTopology(opt.topology, opt.nodes));
  Rng master(opt.seed);
  std::vector<DistNode> nodes;
  nodes.reserve(std::size_t(opt.nodes));
  for (int i = 0; i < opt.nodes; ++i)
    nodes.emplace_back(inst, cand, opt.node, i, master());

  // Observability: wired only when a sink is attached, before any thread
  // starts. Each node thread records into its own metric shard and writes
  // events through the (internally serialized) sink with its local clock.
  obs::MetricsRegistry metricsReg;
  obs::TraceSink* const sink = opt.trace;
  if (sink != nullptr) {
    net.attachMetrics(metricsReg);
    const NodeMetrics nodeMetrics = NodeMetrics::attach(metricsReg);
    for (auto& node : nodes) node.setMetrics(nodeMetrics);
    obs::RunMeta meta;
    meta.instance = inst.name();
    meta.n = inst.n();
    meta.algorithm = "dist-threads";
    meta.nodes = opt.nodes;
    meta.topology = toString(opt.topology);
    meta.seed = opt.seed;
    meta.cv = opt.node.cv;
    meta.cr = opt.node.cr;
    meta.kick = toString(opt.node.clkKick);
    meta.timeLimitPerNode = opt.timeLimitPerNode;
    meta.clock = "wall";
    sink->write(obs::runMetaRecord(meta));
  }

  std::atomic<bool> targetFound{false};
  std::atomic<std::int64_t> totalSteps{0};
  // Per-node traces are written only by the owning thread and read after
  // the join barrier — no locking needed (CP.2: no concurrent sharing).
  std::vector<AnytimeCurve> curves(std::size_t(opt.nodes));
  std::vector<EventLog> logs(std::size_t(opt.nodes));
  Timer runTimer;

  {
    std::vector<std::jthread> threads;
    threads.reserve(std::size_t(opt.nodes));
    for (int i = 0; i < opt.nodes; ++i) {
      threads.emplace_back([&, i](std::stop_token stop) {
        DistNode& node = nodes[std::size_t(i)];
        AnytimeCurve& curve = curves[std::size_t(i)];
        EventLog& log = logs[std::size_t(i)];
        Timer timer;
        auto logEvent = [&](double t, NodeEventType type, std::int64_t value) {
          log.push_back({t, i, type, value});
          if (sink != nullptr) sink->write(obs::eventRecord(log.back()));
        };
        // Node 0 doubles as the metrics reporter: snapshots merge every
        // shard, so one thread emitting suffices.
        double nextSnapshot = sink != nullptr && opt.metricsIntervalSeconds > 0
                                  ? opt.metricsIntervalSeconds
                                  : std::numeric_limits<double>::infinity();
        auto out = node.initialStep();
        totalSteps.fetch_add(1, std::memory_order_relaxed);
        curve.push_back({timer.seconds(), out.bestLength});
        logEvent(timer.seconds(), NodeEventType::kInitialTour, out.bestLength);
        if (out.foundTarget) targetFound.store(true, std::memory_order_relaxed);
        int lastPerturbLevel = 1;
        while (!stop.stop_requested() &&
               !targetFound.load(std::memory_order_relaxed) &&
               timer.seconds() < opt.timeLimitPerNode) {
          const auto received = net.mailbox(i).drain();
          out = node.step(received);
          totalSteps.fetch_add(1, std::memory_order_relaxed);
          const double now = timer.seconds();
          if (out.restarted) {
            logEvent(now, NodeEventType::kRestart,
                     out.noImprovementsAtRestart);
            lastPerturbLevel = 1;
          } else if (out.perturbations != lastPerturbLevel) {
            lastPerturbLevel = out.perturbations;
            logEvent(now, NodeEventType::kPerturbationLevel,
                     out.perturbations);
          }
          if (out.improvedByMessage)
            logEvent(now, NodeEventType::kTourReceived, out.bestLength);
          if (curve.empty() || out.bestLength < curve.back().length) {
            curve.push_back({now, out.bestLength});
            if (!out.improvedByMessage)
              logEvent(now, NodeEventType::kImprovement, out.bestLength);
          }
          if (out.broadcast) {
            logEvent(now, NodeEventType::kBroadcastSent, out.bestLength);
            net.broadcast(i, node.makeTourMessage());
          }
          if (i == 0 && now >= nextSnapshot) {
            sink->write(obs::metricsRecord(now, metricsReg.snapshot()));
            while (nextSnapshot <= now)
              nextSnapshot += opt.metricsIntervalSeconds;
          }
          if (out.foundTarget) {
            targetFound.store(true, std::memory_order_relaxed);
            logEvent(now, NodeEventType::kTargetReached, out.bestLength);
            // Termination criterion 2: notify the cluster.
            Message msg;
            msg.type = MessageType::kOptimumFound;
            msg.from = i;
            msg.length = out.bestLength;
            net.broadcast(i, msg);
          }
          for (const Message& msg : received)
            if (msg.type == MessageType::kOptimumFound)
              targetFound.store(true, std::memory_order_relaxed);
        }
      });
    }
    // jthreads join here; each loop exits on its own budget or the shared
    // target flag, so no explicit stop request is needed.
  }

  ThreadRunResult res;
  res.bestLength = std::numeric_limits<std::int64_t>::max();
  for (const DistNode& node : nodes) {
    res.nodeBest.push_back(node.best().length());
    if (node.best().length() < res.bestLength) {
      res.bestLength = node.best().length();
      res.bestOrder = node.best().orderVector();
    }
  }
  res.hitTarget = targetFound.load();
  res.messagesSent = net.messagesSent();
  res.totalSteps = totalSteps.load();
  res.nodeCurves = std::move(curves);
  for (auto& log : logs)
    res.events.insert(res.events.end(), log.begin(), log.end());
  std::sort(res.events.begin(), res.events.end(),
            [](const NodeEvent& a, const NodeEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.node < b.node;
            });
  if (sink != nullptr) {
    const double finalTime = runTimer.seconds();
    sink->write(obs::metricsRecord(finalTime, metricsReg.snapshot()));
    sink->write(obs::runEndRecord(finalTime, res.bestLength, res.hitTarget,
                                  res.totalSteps, res.messagesSent));
    sink->flush();
  }
  return res;
}

}  // namespace distclk
