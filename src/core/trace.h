// Anytime-curve and event-trace types shared by the drivers and the
// experiment harness. The paper's figures are tour-length-vs-CPU-time
// curves (Figs. 2 and 3); its speed-up tables (Table 1) are time-to-quality
// lookups on the same curves; §4.2.1 narrates per-node event traces.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <vector>

namespace distclk {

struct AnytimePoint {
  double time = 0.0;          ///< CPU seconds (per node for distributed runs)
  std::int64_t length = 0;    ///< global best tour length at that time
};

/// Non-increasing length over increasing time.
using AnytimeCurve = std::vector<AnytimePoint>;

/// Best length achieved by time t (max int64 before the first point).
std::int64_t valueAt(const AnytimeCurve& curve, double t);

/// Like valueAt, but clamps to the curve's first point when t precedes it
/// (checkpoint semantics: before the first improvement the algorithm still
/// holds its starting tour).
std::int64_t valueAtOrFirst(const AnytimeCurve& curve, double t);

/// First time the curve reaches length <= target (infinity when never).
double timeToReach(const AnytimeCurve& curve, std::int64_t target);

/// Samples the pointwise mean of several runs' curves at `times`.
/// Runs that have no value yet at a time are skipped for that sample.
AnytimeCurve meanCurve(const std::vector<AnytimeCurve>& runs,
                       const std::vector<double>& times);

enum class NodeEventType {
  kInitialTour,         ///< value = length after the initial CLK
  kImprovement,         ///< value = new best length
  kBroadcastSent,       ///< value = broadcast tour length
  kTourReceived,        ///< value = received tour length (improving only)
  kPerturbationLevel,   ///< value = new NumPerturbations level
  kRestart,             ///< value = NumNoImprovements at restart
  kTargetReached,       ///< value = target length
  kNodeJoined,          ///< churn: late joiner entered; value = join count (1)
  kNodeFailed,          ///< injected failure fired; value = 0
  /// Stall detector (RunConfig::stallSeconds): the node saw no improvement
  /// for the configured budget; value = milliseconds since the last one.
  /// Emitted once per stall episode (re-arms when progress resumes).
  kStall,
};

/// Every NodeEventType, for exhaustive iteration (serialization tests,
/// report tooling). Keep in sync with the enum — the toString round-trip
/// test walks this list.
inline constexpr std::array<NodeEventType, 10> kAllNodeEventTypes{
    NodeEventType::kInitialTour,       NodeEventType::kImprovement,
    NodeEventType::kBroadcastSent,     NodeEventType::kTourReceived,
    NodeEventType::kPerturbationLevel, NodeEventType::kRestart,
    NodeEventType::kTargetReached,     NodeEventType::kNodeJoined,
    NodeEventType::kNodeFailed,        NodeEventType::kStall,
};

/// Stable wire name of an event type (used in JSONL traces).
const char* toString(NodeEventType t) noexcept;

/// Inverse of toString; nullopt for unknown names, so callers can reject
/// rather than silently mislabel records from newer/older traces.
std::optional<NodeEventType> nodeEventTypeFromString(
    std::string_view name) noexcept;

struct NodeEvent {
  double time = 0.0;  ///< per-node CPU seconds
  int node = -1;
  NodeEventType type = NodeEventType::kImprovement;
  std::int64_t value = 0;
};

using EventLog = std::vector<NodeEvent>;

}  // namespace distclk
