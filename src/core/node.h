// The distributed EA node of Fig. 1: perturb the best-known tour with
// variable-strength double-bridge moves, re-optimize with Chained LK, merge
// with tours received from neighbors, broadcast local wins, and restart
// from a fresh construction when c_r consecutive non-improvements pile up.
// DistNode is pure logic — transports and clocks live in the drivers, so
// the identical node runs under the discrete-event simulator and under real
// threads.
#pragma once

#include <cstdint>
#include <vector>

#include "lk/chained_lk.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "tsp/neighbors.h"
#include "tsp/tour.h"
#include "util/rng.h"

namespace distclk {

/// Metric handles a DistNode records into (shared by all nodes of a run;
/// per-node detail lives in the event trace). With a null registry every
/// probe is a single pointer test — the un-traced fast path.
struct NodeMetrics {
  obs::MetricsRegistry* registry = nullptr;
  obs::MetricId steps;            ///< EA iterations (counter)
  obs::MetricId perturbations;    ///< double bridges applied (counter)
  obs::MetricId lkFlips;          ///< inner-CLK applied flips (counter)
  obs::MetricId lkUndoneFlips;    ///< inner-CLK rewound flips (counter)
  obs::MetricId lkKicks;          ///< inner-CLK kicks (counter)
  obs::MetricId clkRollbacks;     ///< inner-CLK losing kicks rolled back
  obs::MetricId restarts;         ///< c_r-triggered restarts (counter)
  obs::MetricId mergeLocalWin;    ///< merge kept the locally optimized tour
  obs::MetricId mergeReceivedWin; ///< merge kept a received tour
  obs::MetricId mergeStagnant;    ///< merge found no improvement
  obs::MetricId toursReceived;    ///< kTour messages considered (counter)
  obs::MetricId computeSeconds;   ///< wall time of compute phases (histogram)
  obs::MetricId restartDepth;     ///< NumNoImprovements at restart (histogram)
  obs::MetricId specSpeculated;   ///< speculative kick evaluations (counter)
  obs::MetricId specCommitted;    ///< speculative winners committed (counter)
  obs::MetricId specConflicts;    ///< speculative evaluations aborted on
                                  ///< ledger conflict and re-dispatched

  /// Registers all node metrics on `registry` (idempotent by name).
  static NodeMetrics attach(obs::MetricsRegistry& registry);
};

struct DistParams {
  int cv = 64;   ///< perturbation-strength divisor (paper default)
  int cr = 256;  ///< restart threshold (paper default)
  /// Kick strategy handed to the inner CLK (the EA-level perturbation is
  /// always random double bridges, as in the paper).
  KickStrategy clkKick = KickStrategy::kRandomWalk;
  KickOptions kickOpt;
  LkOptions lk;
  /// Kicks per inner CLK call; <= 0 means "instance size" (linkern's
  /// default of one kick per city).
  std::int64_t clkKicksPerCall = 0;
  /// Ablation switch: disable the EA-level double-bridge perturbation
  /// (paper §4.2 "running without DBMs").
  bool usePerturbation = true;
  /// Known optimum (or calibrated target); termination criterion 1.
  std::int64_t targetLength = -1;
  /// > 0: the inner CLK evaluates kicks speculatively on that many worker
  /// threads (lk/spec_kicks.h). 0 keeps the sequential pinned loop.
  int speculativeWorkers = 0;
};

class DistNode {
 public:
  DistNode(const Instance& inst, const CandidateLists& cand, DistParams params,
           int id, std::uint64_t seed);

  struct StepOutcome {
    std::int64_t bestLength = 0;
    bool broadcast = false;     ///< caller must broadcast best() to neighbors
    bool improvedByMessage = false;
    bool foundTarget = false;
    std::int64_t modelCost = 0;  ///< deterministic work units (LK flips)
    double measuredSeconds = 0;  ///< wall time of the compute phase
    int perturbations = 0;       ///< double bridges applied this step
    bool restarted = false;
    /// NumNoImprovements when the restart fired (0 when !restarted); the
    /// kRestart trace event carries this value.
    int noImprovementsAtRestart = 0;
    /// Sender of the adopted tour when improvedByMessage, else -1. Feeds
    /// the causal-trace "adopt" record (provenance analysis).
    int improvedFromNode = -1;
  };

  /// First step: construct (Quick-Borůvka) and CLK-optimize the initial
  /// tour. Must be called exactly once, before step().
  StepOutcome initialStep();

  /// The compute half of an EA iteration: perturbation + inner CLK. The
  /// simulator charges virtual time for this phase before delivering the
  /// messages that arrived while it "ran" (the paper's nodes poll their
  /// receive queue only after CLK returns).
  struct ComputePhase {
    Tour s;                      ///< the locally optimized challenger
    std::int64_t modelCost = 0;  ///< deterministic work units (LK flips)
    double measuredSeconds = 0;  ///< wall time of the phase
    int perturbations = 0;
    bool restarted = false;
    int noImprovementsAtRestart = 0;
  };
  ComputePhase compute();

  /// The merge half: SELECTBESTTOUR over received ∪ {s} ∪ {s_prev},
  /// counter bookkeeping, and the broadcast decision.
  StepOutcome merge(ComputePhase phase, const std::vector<Message>& received);

  /// Convenience: compute + merge in one call (thread driver, tests).
  StepOutcome step(const std::vector<Message>& received);

  int id() const noexcept { return id_; }
  const Tour& best() const noexcept { return sBest_; }
  int noImprovements() const noexcept { return numNoImprovements_; }
  /// Current perturbation level (NumPerturbations the next step will use).
  int perturbationLevel() const noexcept {
    return numNoImprovements_ / params_.cv + 1;
  }
  std::int64_t restarts() const noexcept { return restarts_; }

  /// Builds the broadcast message for the current best tour.
  Message makeTourMessage() const;

  /// Attaches metric probes (default: none; recording is then skipped).
  /// Metrics are pure observation — attaching them never changes the
  /// node's RNG stream or decisions.
  void setMetrics(const NodeMetrics& metrics) noexcept { metrics_ = metrics; }

  /// Shares a precomputed Quick-Borůvka order (InstanceContext's cached
  /// construction) used by initialStep() and every restart instead of
  /// recomputing it. Must equal quickBoruvkaTour(inst, cand) and outlive
  /// the node. Trajectory-neutral: the construction is deterministic and
  /// the modeled-cost charge is unchanged; only wall time shrinks.
  void setConstructionOrder(const std::vector<int>* order) noexcept {
    constructionOrder_ = order;
  }

 private:
  Tour initialTour();
  std::int64_t innerKicks() const noexcept;

  const Instance& inst_;
  const CandidateLists& cand_;
  const std::vector<int>* constructionOrder_ = nullptr;
  DistParams params_;
  int id_;
  Rng rng_;
  Tour sPrev_;
  Tour sBest_;
  int numNoImprovements_ = 0;
  std::int64_t restarts_ = 0;
  bool initialized_ = false;
  NodeMetrics metrics_;
  /// Reusable kick/repair buffers for the inner CLK: one workspace per node
  /// keeps the steady-state compute phase free of heap allocations.
  LkWorkspace ws_;
};

}  // namespace distclk
