#include "core/runtime.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "net/sim_network.h"
#include "net/thread_network.h"
#include "obs/prom.h"
#include "util/audit.h"
#include "util/rng.h"
#include "util/timer.h"

namespace distclk {

namespace {

[[maybe_unused]] void auditCurve(const AnytimeCurve& curve, const char* name,
                                 const char* where) {
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].length >= curve[i - 1].length)
      audit::fail(name, where, "anytime curve not strictly improving");
    if (curve[i].time < curve[i - 1].time)
      audit::fail(name, where, "anytime curve time not monotone");
  }
}

/// Broadcast audit: the message must encode at exactly serializedSize()
/// bytes, carry the wire version matching its stamp state (v3 with a trace
/// trailer, v2 without), and survive a codec round trip.
[[maybe_unused]] void auditWireMessage(const Message& msg, const char* where) {
  const auto buf = serialize(msg);
  if (buf.size() != serializedSize(msg))
    audit::fail("NodeRunner", where, "serialize() size != serializedSize()");
  const std::uint8_t expected =
      msg.trace.has_value() ? kWireVersion : kWireVersionPlain;
  if (buf.size() < 4 || buf[3] != expected)
    audit::fail("NodeRunner", where, "wire version mismatch in encoded message");
  if (deserialize(buf) != msg)
    audit::fail("NodeRunner", where, "message codec round trip not identical");
}

}  // namespace

const char* toString(RuntimeKind k) noexcept {
  switch (k) {
    case RuntimeKind::kSim: return "sim";
    case RuntimeKind::kThreads: return "threads";
  }
  return "?";
}

RuntimeKind runtimeKindFromString(const std::string& name) {
  if (name == "sim") return RuntimeKind::kSim;
  if (name == "threads") return RuntimeKind::kThreads;
  throw std::invalid_argument("unknown runtime '" + name +
                              "' (expected sim|threads)");
}

// ---------------------------------------------------------------------------
// Transports

void SimTransport::broadcast(int from, double now, const Message& msg) {
  net_.broadcast(from, now, msg);
}
void SimTransport::send(int from, int to, double now, const Message& msg) {
  net_.send(from, to, now, msg);
}
std::vector<Message> SimTransport::collect(int node, double now) {
  return net_.collect(node, now);
}
void SimTransport::kill(int node) { net_.killNode(node); }
void SimTransport::setAlive(int node, bool alive) { net_.setAlive(node, alive); }
bool SimTransport::isAlive(int node) const { return net_.isAlive(node); }
void SimTransport::announceTarget(int, std::int64_t) {
  // Termination criterion 2 is centralized under simulation: the scheduler
  // halts the whole run the moment any node reports the target, so there
  // is no cluster left to notify.
}
NetworkStats SimTransport::stats() const { return net_.stats(); }

void ThreadTransport::broadcast(int from, double, const Message& msg) {
  net_.broadcast(from, msg);
}
void ThreadTransport::send(int from, int to, double, const Message& msg) {
  net_.send(from, to, msg);
}
std::vector<Message> ThreadTransport::collect(int node, double) {
  return net_.mailbox(node).drain();
}
void ThreadTransport::kill(int node) { net_.killNode(node); }
void ThreadTransport::setAlive(int node, bool alive) {
  net_.setAlive(node, alive);
}
bool ThreadTransport::isAlive(int node) const { return net_.isAlive(node); }
void ThreadTransport::announceTarget(int from, std::int64_t length) {
  Message msg;
  msg.type = MessageType::kOptimumFound;
  msg.from = from;
  msg.length = length;
  net_.broadcast(from, msg);
}
NetworkStats ThreadTransport::stats() const { return net_.stats(); }

// ---------------------------------------------------------------------------
// Clocks

VirtualClock::VirtualClock(int nodes, CostModel model,
                           double modeledWorkPerSecond,
                           std::vector<double> nodeSpeeds)
    : model_(model),
      workPerSecond_(modeledWorkPerSecond),
      speeds_(std::move(nodeSpeeds)),
      clocks_(std::size_t(nodes), 0.0) {}

double VirtualClock::chargeCompute(int node, std::int64_t modelCost,
                                   double measuredSeconds) {
  double cost = model_ == CostModel::kMeasured
                    ? measuredSeconds
                    : static_cast<double>(modelCost) / workPerSecond_;
  if (!speeds_.empty()) cost /= speeds_[std::size_t(node)];
  clocks_[std::size_t(node)] += cost;
  return clocks_[std::size_t(node)];
}

namespace {
std::int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

WallClock::WallClock(int nodes, std::vector<double> nodeSpeeds)
    : speeds_(std::move(nodeSpeeds)),
      epochNs_(std::size_t(nodes), steadyNowNs()) {}

void WallClock::startNode(int node) {
  epochNs_[std::size_t(node)] = steadyNowNs();
}

double WallClock::now(int node) const {
  return double(steadyNowNs() - epochNs_[std::size_t(node)]) * 1e-9;
}

double WallClock::chargeCompute(int node, std::int64_t /*modelCost*/,
                                double measuredSeconds) {
  // A node with speed s < 1 models a machine 1/s times slower: the same
  // compute phase would have taken measured/s seconds there, so sleep off
  // the difference. Speeds > 1 cannot make real hardware faster and are
  // left as-is (the virtual clock handles both directions exactly).
  if (!speeds_.empty()) {
    const double s = speeds_[std::size_t(node)];
    if (s < 1.0 && measuredSeconds > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(measuredSeconds * (1.0 / s - 1.0)));
  }
  return now(node);
}

// ---------------------------------------------------------------------------
// Snapshotter

Snapshotter::Snapshotter(obs::TraceSink* sink, obs::MetricsRegistry& registry,
                         double intervalSeconds, std::string promPath)
    : sink_(sink),
      registry_(registry),
      interval_(intervalSeconds),
      next_((sink != nullptr || !promPath.empty()) && intervalSeconds > 0
                ? intervalSeconds
                : std::numeric_limits<double>::infinity()),
      promPath_(std::move(promPath)) {}

void Snapshotter::maybe(double now) {
  // One record per crossed boundary, stamped with the time of the step
  // that crossed it (matching the pre-refactor simulator).
  while (now >= next_) {
    const obs::MetricsSnapshot snap = registry_.snapshot();
    if (sink_ != nullptr) sink_->write(obs::metricsRecord(now, snap));
    if (!promPath_.empty())
      obs::writePrometheusSnapshot(promPath_, snap, now);
    next_ += interval_;
  }
}

// ---------------------------------------------------------------------------
// NodeRunner

NodeRunner::NodeRunner(DistNode& node, const Env& env, EventLog& log,
                       Snapshotter* snapshotter, double joinTime)
    : node_(node),
      env_(env),
      log_(log),
      snapshotter_(snapshotter),
      joinTime_(joinTime),
      seriesNext_(env.sink != nullptr && env.cfg.metricsIntervalSeconds > 0
                      ? env.cfg.metricsIntervalSeconds
                      : std::numeric_limits<double>::infinity()) {}

void NodeRunner::maybeEmitNodeBest(double now) {
  if (now < seriesNext_) return;
  env_.sink->write(obs::nodeBestRecord(now, node_.id(),
                                       node_.best().length(),
                                       node_.noImprovements()));
  // Jump to the next boundary after `now` instead of incrementing, so a
  // late joiner does not flood the trace catching up on missed intervals.
  const double interval = env_.cfg.metricsIntervalSeconds;
  seriesNext_ = (std::floor(now / interval) + 1.0) * interval;
}

void NodeRunner::checkStall(double now) {
  if (env_.cfg.stallSeconds <= 0.0) return;
  // Last improvement: the global curve tail under the simulator's
  // centralized view, the node-local tail under threads; before any
  // improvement, progress is counted from the node's join.
  double last = joinTime_;
  if (env_.globalBest != nullptr) {
    if (!env_.globalBest->curve.empty())
      last = env_.globalBest->curve.back().time;
  } else if (!curve_.empty()) {
    last = curve_.back().time;
  }
  const double stalledFor = now - last;
  if (stalledFor >= env_.cfg.stallSeconds) {
    if (!stalled_) {
      stalled_ = true;
      logEvent(now, NodeEventType::kStall,
               std::llround(stalledFor * 1000.0));
    }
  } else {
    stalled_ = false;  // progress resumed: re-arm the detector
  }
}

void NodeRunner::logEvent(double t, NodeEventType type, std::int64_t value) {
  log_.push_back({t, node_.id(), type, value});
  if (env_.sink != nullptr) env_.sink->write(obs::eventRecord(log_.back()));
}

void NodeRunner::recordBest(double now, std::int64_t length,
                            bool improvedByMessage, bool logImprovement) {
  // Node-local anytime curve (strictly improving, like the merge result).
  const bool localImprovement =
      curve_.empty() || length < curve_.back().length;
  if (localImprovement) curve_.push_back({now, length});

  if (env_.globalBest != nullptr) {
    // Centralized semantics (simulator): kImprovement marks a new GLOBAL
    // best, and the global curve is maintained here. Event before curve
    // update, exactly as the pre-refactor driver emitted them.
    GlobalBest& g = *env_.globalBest;
    if (length < g.bestLength) {
      if (logImprovement)
        logEvent(now, NodeEventType::kImprovement, length);
      g.bestLength = length;
      g.bestOrder = node_.best().orderVector();
      g.curve.push_back({now, length});
      if (env_.cfg.onBest) env_.cfg.onBest(now, length);
    }
  } else {
    if (localImprovement && !improvedByMessage && logImprovement) {
      // Local semantics (threads): kImprovement marks a locally computed new
      // node best; received tours are already logged as kTourReceived.
      logEvent(now, NodeEventType::kImprovement, length);
    }
    // Streaming sees every node-local best (adopted or computed); the job
    // layer dedups across nodes by value. Observation-only either way.
    if (localImprovement && env_.cfg.onBest) env_.cfg.onBest(now, length);
  }
  DISTCLK_AUDIT_HOOK(auditCheck("NodeRunner::recordBest"));
}

void NodeRunner::auditCheck(const char* where) const {
  auditCurve(curve_, "NodeRunner", where);
  if (env_.globalBest != nullptr) {
    auditCurve(env_.globalBest->curve, "NodeRunner(global)", where);
    if (!env_.globalBest->curve.empty() &&
        env_.globalBest->curve.back().length != env_.globalBest->bestLength)
      audit::fail("NodeRunner", where, "global best != global curve tail");
  }
}

bool NodeRunner::initialTick() {
  env_.transport.setAlive(node_.id(), true);
  if (joinTime_ > 0.0) logEvent(env_.clock.now(node_.id()),
                                NodeEventType::kNodeJoined, 1);
  const auto out = node_.initialStep();
  const double end =
      env_.clock.chargeCompute(node_.id(), out.modelCost, out.measuredSeconds);
  ++steps_;
  logEvent(end, NodeEventType::kInitialTour, out.bestLength);
  recordBest(end, out.bestLength, /*improvedByMessage=*/false,
             /*logImprovement=*/false);
  if (snapshotter_ != nullptr) snapshotter_->maybe(end);
  if (out.foundTarget) {
    hitTarget_ = true;
    targetTime_ = end;
    logEvent(end, NodeEventType::kTargetReached, out.bestLength);
    if (env_.stop != nullptr) env_.stop->store(true, std::memory_order_relaxed);
    env_.transport.announceTarget(node_.id(), out.bestLength);
    return true;
  }
  return false;
}

bool NodeRunner::tick() {
  const int id = node_.id();
  // Fig. 1: perturb + inner CLK first; the messages that arrived while the
  // compute phase "ran" are only seen afterwards (the paper's nodes poll
  // their receive queue once CLK returns).
  auto phase = node_.compute();
  const double end =
      env_.clock.chargeCompute(id, phase.modelCost, phase.measuredSeconds);
  const int perturbations = phase.perturbations;
  const bool restarted = phase.restarted;
  const auto received = env_.transport.collect(id, end);
  // Causal trace, receive side: apply the Lamport receive rule per stamped
  // message and pair it with the sender's msg-sent record via (from, seq).
  if (env_.sink != nullptr) {
    for (const Message& m : received) {
      if (!m.trace.has_value()) continue;
      lamport_ = std::max(lamport_, m.trace->lamport) + 1;
      env_.sink->write(obs::msgRecvRecord(end, id, m.from, m.trace->seq,
                                          m.trace->lamport, lamport_,
                                          m.length));
    }
  }
  const auto out = node_.merge(std::move(phase), received);
  ++steps_;

  if (restarted) {
    ++restarts_;
    // Event value documents how deep the stagnation ran (trace.h).
    logEvent(end, NodeEventType::kRestart, out.noImprovementsAtRestart);
    lastPerturbLevel_ = 1;
  } else if (perturbations != lastPerturbLevel_) {
    lastPerturbLevel_ = perturbations;
    logEvent(end, NodeEventType::kPerturbationLevel, perturbations);
  }
  if (out.improvedByMessage) {
    logEvent(end, NodeEventType::kTourReceived, out.bestLength);
    // Provenance edge: merge kept `from`'s tour over everything local.
    if (env_.sink != nullptr && out.improvedFromNode >= 0)
      env_.sink->write(
          obs::adoptRecord(end, id, out.improvedFromNode, out.bestLength));
  }
  if (out.broadcast) {
    logEvent(end, NodeEventType::kBroadcastSent, out.bestLength);
    Message msg = node_.makeTourMessage();
    // Causal trace, send side: stamp with this sender's next sequence
    // number and Lamport send time. Unstamped messages (tracing off) still
    // encode as wire v2, keeping byte accounting identical to seed runs.
    if (env_.sink != nullptr) {
      msg.trace = TraceStamp{++sendSeq_, ++lamport_};
      env_.sink->write(obs::msgSentRecord(
          end, id, sendSeq_, lamport_, msg.length,
          static_cast<std::int64_t>(serializedSize(msg))));
    }
    DISTCLK_AUDIT_HOOK(auditWireMessage(msg, "NodeRunner::tick"));
    env_.transport.broadcast(id, end, msg);
  }
  recordBest(end, out.bestLength, out.improvedByMessage,
             /*logImprovement=*/true);
  checkStall(end);
  if (env_.sink != nullptr) maybeEmitNodeBest(end);
  if (snapshotter_ != nullptr) snapshotter_->maybe(end);
  if (out.foundTarget) {
    hitTarget_ = true;
    targetTime_ = end;
    logEvent(end, NodeEventType::kTargetReached, out.bestLength);
    if (env_.stop != nullptr) env_.stop->store(true, std::memory_order_relaxed);
    env_.transport.announceTarget(id, out.bestLength);
    return true;
  }
  // Termination criterion 2, receiver side: a peer announced the target.
  if (env_.stop != nullptr) {
    for (const Message& msg : received)
      if (msg.type == MessageType::kOptimumFound)
        env_.stop->store(true, std::memory_order_relaxed);
  }
  return false;
}

void NodeRunner::leave(double when, bool failed) {
  env_.transport.kill(node_.id());
  if (failed) logEvent(when, NodeEventType::kNodeFailed, 0);
}

// ---------------------------------------------------------------------------
// Shared driver plumbing

namespace {

void validateConfig(const RunConfig& cfg) {
  if (cfg.nodes < 1) throw std::invalid_argument("RunConfig: nodes >= 1");
  if (!cfg.nodeSpeeds.empty()) {
    if (static_cast<int>(cfg.nodeSpeeds.size()) != cfg.nodes)
      throw std::invalid_argument("RunConfig: nodeSpeeds size != nodes");
    for (double s : cfg.nodeSpeeds)
      if (s <= 0.0)
        throw std::invalid_argument("RunConfig: node speeds must be > 0");
  }
  for (const auto& [node, when] : cfg.joins)
    if (node < 0 || node >= cfg.nodes)
      throw std::invalid_argument("RunConfig: join node out of range");
  for (const auto& [node, when] : cfg.failures)
    if (node < 0 || node >= cfg.nodes)
      throw std::invalid_argument("RunConfig: failure node out of range");
}

std::vector<DistNode> buildNodes(const InstanceContext& ctx,
                                 const RunConfig& cfg) {
  Rng master(cfg.seed);
  std::vector<DistNode> nodes;
  nodes.reserve(std::size_t(cfg.nodes));
  for (int i = 0; i < cfg.nodes; ++i) {
    nodes.emplace_back(ctx.instance(), ctx.candidates(), cfg.node, i,
                       master());
    // All nodes (and all restarts) start from the context's cached
    // construction order — trajectory-identical to recomputing it, since
    // quick-Boruvka is a pure function of (instance, candidates).
    nodes.back().setConstructionOrder(&ctx.constructionOrder());
  }
  return nodes;
}

bool cancelled(const RunConfig& cfg) {
  return cfg.cancel != nullptr && cfg.cancel->load(std::memory_order_relaxed);
}

// Wires network + node probes and writes the run-meta record. Observation
// never feeds back into node decisions, so traced simulated runs reproduce
// un-traced results exactly. Metrics probes attach for either consumer
// (trace sink or --metrics-out exposition); the run-meta record needs a
// sink.
template <typename Network>
void attachObservation(const InstanceContext& ctx, const RunConfig& cfg,
                       const char* algorithm, const char* clockName,
                       Network& net, std::vector<DistNode>& nodes,
                       obs::MetricsRegistry& registry) {
  const Instance& inst = ctx.instance();
  if (cfg.trace == nullptr && cfg.metricsOutPath.empty()) return;
  net.attachMetrics(registry);
  const NodeMetrics nodeMetrics = NodeMetrics::attach(registry);
  for (auto& node : nodes) node.setMetrics(nodeMetrics);
  // Preprocessing phase wall times for this run's context (zero when the
  // context was borrowed, e.g. legacy call sites without a full build).
  // Gauges, not histograms: one context per run; the Prometheus snapshot
  // (distclk_prep_kdtree_ms, ...) and the trace's metrics record carry
  // them to dashboards and trace_report.
  if (!ctx.borrowed()) {
    const PreprocessBuildStats& prep = ctx.buildStats();
    registry.set(registry.gauge("prep.kdtree_ms"), prep.kdtreeMs);
    registry.set(registry.gauge("prep.cand_ms"), prep.candMs);
    registry.set(registry.gauge("prep.construct_ms"), prep.constructMs);
    registry.set(registry.gauge("prep.threads"), double(prep.threads));
  }
  if (cfg.trace == nullptr) return;
  obs::RunMeta meta;
  meta.instance = inst.name();
  meta.n = inst.n();
  meta.algorithm = algorithm;
  meta.nodes = cfg.nodes;
  meta.topology = toString(cfg.topology);
  meta.seed = cfg.seed;
  meta.cv = cfg.node.cv;
  meta.cr = cfg.node.cr;
  meta.kick = toString(cfg.node.clkKick);
  meta.timeLimitPerNode = cfg.timeLimitPerNode;
  meta.clock = clockName;
  meta.runtime = toString(cfg.runtime);
  meta.wireVersion = kWireVersion;
  meta.job = cfg.jobLabel;
  cfg.trace->write(obs::runMetaRecord(meta));
}

void sortEvents(EventLog& events) {
  std::sort(events.begin(), events.end(),
            [](const NodeEvent& a, const NodeEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.node < b.node;
            });
}

void writeRunEnd(const RunConfig& cfg, obs::MetricsRegistry& registry,
                 double finalTime, const RunResult& res) {
  if (cfg.trace == nullptr && cfg.metricsOutPath.empty()) return;
  const obs::MetricsSnapshot snap = registry.snapshot();
  if (cfg.trace != nullptr) {
    cfg.trace->write(obs::metricsRecord(finalTime, snap));
    cfg.trace->write(obs::runEndRecord(finalTime, res.bestLength,
                                       res.hitTarget, res.totalSteps,
                                       res.net.messagesSent));
    cfg.trace->flush();
  }
  // Final exposition snapshot, so post-run scrapes see the run's totals.
  if (!cfg.metricsOutPath.empty())
    obs::writePrometheusSnapshot(cfg.metricsOutPath, snap, finalTime);
}

// ---------------------------------------------------------------------------
// Simulated substrate: deterministic discrete-event scheduler over
// SimTransport + VirtualClock. Always steps the node with the smallest
// virtual clock (strict <, ties to the lowest id), so runs are bit-exact
// reproductions for a fixed seed.

RunResult runSim(const InstanceContext& ctx, const RunConfig& cfg) {
  SimNetwork net(buildTopology(cfg.topology, cfg.nodes), cfg.latencySeconds);
  SimTransport transport(net);
  VirtualClock clock(cfg.nodes, cfg.costModel, cfg.modeledWorkPerSecond,
                     cfg.nodeSpeeds);
  std::vector<DistNode> nodes = buildNodes(ctx, cfg);

  obs::MetricsRegistry metricsReg;
  attachObservation(ctx, cfg, "dist-sim", clock.kindName(), net, nodes,
                    metricsReg);
  // One shared snapshotter: any node's step may cross an interval boundary.
  Snapshotter snapshotter(cfg.trace, metricsReg, cfg.metricsIntervalSeconds,
                          cfg.metricsOutPath);
  GlobalBest global;
  EventLog events;  // one log, in emission order (event parity depends on it)

  // Churn: late joiners start their clock at the join time and are dead to
  // the network until then.
  std::vector<double> joinTimes(std::size_t(cfg.nodes), 0.0);
  for (const auto& [node, when] : cfg.joins) {
    joinTimes[std::size_t(node)] = when;
    clock.setNow(node, when);
    net.setAlive(node, false);
  }

  NodeRunner::Env env{transport, clock,   cfg,
                      cfg.trace, nullptr, &global};
  std::vector<NodeRunner> runners;
  runners.reserve(std::size_t(cfg.nodes));
  for (int i = 0; i < cfg.nodes; ++i)
    runners.emplace_back(nodes[std::size_t(i)], env, events, &snapshotter,
                         joinTimes[std::size_t(i)]);

  RunResult res;
  std::vector<char> active(std::size_t(cfg.nodes), 1);
  std::vector<char> pendingInit(std::size_t(cfg.nodes), 1);
  auto failures = cfg.failures;

  while (true) {
    // Cooperative cancellation: wind down before the next scheduled step.
    // With cfg.cancel unset this is dead code, so trajectories are pinned.
    if (cancelled(cfg)) break;
    int nodeId = -1;
    double start = std::numeric_limits<double>::infinity();
    for (int i = 0; i < cfg.nodes; ++i) {
      if (!active[std::size_t(i)]) continue;
      if (clock.now(i) < start) {
        start = clock.now(i);
        nodeId = i;
      }
    }
    if (nodeId == -1) break;  // everyone done

    // Inject failures due at or before this step's start.
    bool killed = false;
    for (auto it = failures.begin(); it != failures.end();) {
      if (it->second <= start) {
        active[std::size_t(it->first)] = 0;
        runners[std::size_t(it->first)].leave(it->second, /*failed=*/true);
        if (it->first == nodeId) killed = true;
        it = failures.erase(it);
      } else {
        ++it;
      }
    }
    if (killed) continue;

    if (start >= cfg.timeLimitPerNode) {
      // Paper: nodes run out of budget one by one, degenerating the
      // topology; dead nodes stop receiving. Not a failure — no event.
      active[std::size_t(nodeId)] = 0;
      runners[std::size_t(nodeId)].leave(start, /*failed=*/false);
      continue;
    }

    NodeRunner& runner = runners[std::size_t(nodeId)];
    if (pendingInit[std::size_t(nodeId)]) {
      pendingInit[std::size_t(nodeId)] = 0;
      if (runner.initialTick()) break;
      continue;
    }
    if (runner.tick()) {
      // Termination criterion 2: the finder notifies the cluster; the
      // simulation ends here and the remaining nodes' clocks stay put.
      break;
    }
  }

  res.bestLength = global.bestLength;
  res.bestOrder = std::move(global.bestOrder);
  res.curve = std::move(global.curve);
  res.events = std::move(events);
  for (int i = 0; i < cfg.nodes; ++i) {
    const NodeRunner& runner = runners[std::size_t(i)];
    if (runner.hitTarget()) {
      res.hitTarget = true;
      res.targetTime = runner.targetTime();
    }
    res.nodeBest.push_back(nodes[std::size_t(i)].best().length());
    res.nodeCurves.push_back(runner.curve());
    res.nodeClocks.push_back(clock.now(i));
    res.totalSteps += runner.steps();
    res.totalRestarts += runner.restarts();
  }
  res.net = transport.stats();
  res.messagesSent = res.net.messagesSent;

  double finalTime = 0.0;
  for (const double t : res.nodeClocks) finalTime = std::max(finalTime, t);
  writeRunEnd(cfg, metricsReg, finalTime, res);
  sortEvents(res.events);
  return res;
}

// ---------------------------------------------------------------------------
// Thread substrate: the same NodeRunner on one std::jthread per node over
// ThreadTransport + WallClock. Failure and late-join injection work exactly
// as under simulation — the schedules just fire against wall time.

RunResult runThreads(const InstanceContext& ctx, const RunConfig& cfg) {
  ThreadNetwork net(buildTopology(cfg.topology, cfg.nodes));
  ThreadTransport transport(net);
  WallClock clock(cfg.nodes, cfg.nodeSpeeds);
  std::vector<DistNode> nodes = buildNodes(ctx, cfg);

  obs::MetricsRegistry metricsReg;
  attachObservation(ctx, cfg, "dist-threads", clock.kindName(), net, nodes,
                    metricsReg);
  // Node 0 doubles as the metrics reporter: snapshots merge every shard, so
  // one thread emitting suffices.
  Snapshotter snapshotter(cfg.trace, metricsReg, cfg.metricsIntervalSeconds,
                          cfg.metricsOutPath);
  std::atomic<bool> stopFlag{false};

  std::vector<double> joinTimes(std::size_t(cfg.nodes), 0.0);
  std::vector<double> failTimes(std::size_t(cfg.nodes),
                                std::numeric_limits<double>::infinity());
  // Mark late joiners dead before any thread can broadcast to them.
  for (const auto& [node, when] : cfg.joins) {
    joinTimes[std::size_t(node)] = when;
    net.setAlive(node, false);
  }
  for (const auto& [node, when] : cfg.failures)
    failTimes[std::size_t(node)] =
        std::min(failTimes[std::size_t(node)], when);

  // Per-node logs/runners are touched only by the owning thread and read
  // after the join barrier — no locking needed (CP.2: no concurrent
  // sharing). The trace sink serializes internally.
  std::vector<EventLog> logs(std::size_t(cfg.nodes));
  NodeRunner::Env env{transport, clock,     cfg,
                      cfg.trace, &stopFlag, nullptr};
  std::vector<NodeRunner> runners;
  runners.reserve(std::size_t(cfg.nodes));
  for (int i = 0; i < cfg.nodes; ++i)
    runners.emplace_back(nodes[std::size_t(i)], env, logs[std::size_t(i)],
                         i == 0 ? &snapshotter : nullptr,
                         joinTimes[std::size_t(i)]);

  std::vector<double> nodeClocks(std::size_t(cfg.nodes), 0.0);
  Timer runTimer;
  {
    std::vector<std::jthread> threads;
    threads.reserve(std::size_t(cfg.nodes));
    for (int i = 0; i < cfg.nodes; ++i) {
      threads.emplace_back([&, i] {
        clock.startNode(i);
        NodeRunner& runner = runners[std::size_t(i)];
        const double joinAt = joinTimes[std::size_t(i)];
        const double failAt = failTimes[std::size_t(i)];
        if (joinAt > 0.0)
          std::this_thread::sleep_for(std::chrono::duration<double>(joinAt));
        // A joiner whose join time is past the budget never runs (matching
        // the simulated scheduler, which kills it before its first step).
        if (clock.now(i) < cfg.timeLimitPerNode && !cancelled(cfg) &&
            !runner.initialTick()) {
          while (!stopFlag.load(std::memory_order_relaxed) &&
                 !cancelled(cfg) && clock.now(i) < cfg.timeLimitPerNode) {
            if (clock.now(i) >= failAt) {
              runner.leave(failAt, /*failed=*/true);
              break;
            }
            if (runner.tick()) break;
          }
        }
        nodeClocks[std::size_t(i)] = clock.now(i);
      });
    }
    // jthreads join here; each loop exits on its own budget, its failure
    // schedule, or the shared target flag — no explicit stop needed.
  }

  RunResult res;
  res.bestLength = std::numeric_limits<std::int64_t>::max();
  res.targetTime = std::numeric_limits<double>::infinity();
  for (int i = 0; i < cfg.nodes; ++i) {
    const DistNode& node = nodes[std::size_t(i)];
    const NodeRunner& runner = runners[std::size_t(i)];
    res.nodeBest.push_back(node.best().length());
    if (node.best().length() < res.bestLength) {
      res.bestLength = node.best().length();
      res.bestOrder = node.best().orderVector();
    }
    if (runner.hitTarget())
      res.targetTime = std::min(res.targetTime, runner.targetTime());
    res.nodeCurves.push_back(runner.curve());
    res.nodeClocks.push_back(nodeClocks[std::size_t(i)]);
    res.totalSteps += runner.steps();
    res.totalRestarts += runner.restarts();
    res.events.insert(res.events.end(), logs[std::size_t(i)].begin(),
                      logs[std::size_t(i)].end());
  }
  res.hitTarget = stopFlag.load();
  if (!res.hitTarget) res.targetTime = 0.0;
  res.net = transport.stats();
  res.messagesSent = res.net.messagesSent;
  sortEvents(res.events);

  // Global anytime curve: per-node curves merged on the (shared-epoch-free)
  // per-node clocks — approximate across nodes, exact within each.
  {
    AnytimeCurve all;
    for (const AnytimeCurve& c : res.nodeCurves)
      all.insert(all.end(), c.begin(), c.end());
    std::sort(all.begin(), all.end(),
              [](const AnytimePoint& a, const AnytimePoint& b) {
                return a.time < b.time;
              });
    for (const AnytimePoint& p : all)
      if (res.curve.empty() || p.length < res.curve.back().length)
        res.curve.push_back(p);
  }

  writeRunEnd(cfg, metricsReg, runTimer.seconds(), res);
  return res;
}

}  // namespace

RunResult runDistributed(const Instance& inst, const CandidateLists& cand,
                         const RunConfig& cfg) {
  return runDistributed(InstanceContext::borrow(inst, cand), cfg);
}

RunResult runDistributed(const std::shared_ptr<const InstanceContext>& ctx,
                         const RunConfig& cfg) {
  if (ctx == nullptr)
    throw std::invalid_argument("runDistributed: null InstanceContext");
  validateConfig(cfg);
  switch (cfg.runtime) {
    case RuntimeKind::kSim: return runSim(*ctx, cfg);
    case RuntimeKind::kThreads: return runThreads(*ctx, cfg);
  }
  throw std::invalid_argument("RunConfig: unknown runtime");
}

}  // namespace distclk
