// Concurrent driver: the same DistNode logic on real threads with mailbox
// message passing and wall-clock budgets. On a multi-core host this IS the
// paper's system (minus TCP); on a single core it still exercises the
// concurrent code path end to end. One std::jthread per node; termination
// via std::stop_token (target found or budget exhausted).
#pragma once

#include <cstdint>
#include <vector>

#include "core/node.h"
#include "core/trace.h"
#include "net/topology.h"
#include "obs/trace_sink.h"
#include "tsp/instance.h"
#include "tsp/neighbors.h"

namespace distclk {

struct ThreadRunOptions {
  int nodes = 8;
  TopologyKind topology = TopologyKind::kHypercube;
  DistParams node;
  double timeLimitPerNode = 5.0;  ///< wall seconds per node thread
  std::uint64_t seed = 1;
  /// Optional JSONL trace sink (null = no tracing; node threads then skip
  /// every probe). The sink is called concurrently from all node threads
  /// — JsonlTraceSink serializes internally. Timestamps are each node's
  /// local wall clock, matching nodeCurves/events.
  obs::TraceSink* trace = nullptr;
  /// Wall seconds between periodic metric snapshots, emitted by node 0's
  /// thread (<= 0: only the final snapshot). Ignored without a sink.
  double metricsIntervalSeconds = 0.0;
};

struct ThreadRunResult {
  std::int64_t bestLength = 0;
  std::vector<int> bestOrder;
  bool hitTarget = false;
  std::int64_t messagesSent = 0;
  std::int64_t totalSteps = 0;
  /// Per-node final best lengths (the paper collects results from each
  /// node's local output, there being no global control).
  std::vector<std::int64_t> nodeBest;
  /// Per-node anytime curves (wall seconds since the node's thread start
  /// vs its best length) — the concurrent counterpart of SimResult::curve.
  std::vector<AnytimeCurve> nodeCurves;
  /// Cross-node event log (improvements, broadcasts, restarts), timestamped
  /// with each node's local wall clock and merged at the end.
  EventLog events;
};

/// Runs the distributed algorithm on real threads; blocks until all node
/// threads finish.
ThreadRunResult runThreadedDistClk(const Instance& inst,
                                   const CandidateLists& cand,
                                   const ThreadRunOptions& opt);

}  // namespace distclk
