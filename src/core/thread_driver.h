// Concurrent driver: the same DistNode logic on real threads with mailbox
// message passing and wall-clock budgets. On a multi-core host this IS the
// paper's system (minus TCP); on a single core it still exercises the
// concurrent code path end to end. One std::jthread per node; termination
// via std::stop_token (target found or budget exhausted).
//
// Since the runtime-layer refactor this is a thin veneer over
// core/runtime.h: ThreadRunOptions/ThreadRunResult are aliases of
// RunConfig/RunResult, and runThreadedDistClk() pins cfg.runtime to
// RuntimeKind::kThreads. The thread runtime therefore supports the same
// failure/churn/speed injection schedules as the simulator — they fire
// against each node's wall clock instead of its virtual one.
#pragma once

#include "core/runtime.h"

namespace distclk {

using ThreadRunOptions = RunConfig;
using ThreadRunResult = RunResult;

/// Runs the distributed algorithm on real threads; blocks until all node
/// threads finish. Equivalent to runDistributed() with
/// opt.runtime == RuntimeKind::kThreads.
ThreadRunResult runThreadedDistClk(const Instance& inst,
                                   const CandidateLists& cand,
                                   const ThreadRunOptions& opt);

/// Context-based variant: reuses shared immutable preprocessing
/// (tsp/instance_context.h) instead of rebuilding it per run.
ThreadRunResult runThreadedDistClk(
    const std::shared_ptr<const InstanceContext>& ctx,
    const ThreadRunOptions& opt);

}  // namespace distclk
