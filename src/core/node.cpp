#include "core/node.h"

#include <algorithm>
#include <stdexcept>

#include "construct/construct.h"
#include "util/timer.h"

namespace distclk {

NodeMetrics NodeMetrics::attach(obs::MetricsRegistry& registry) {
  NodeMetrics m;
  m.registry = &registry;
  m.steps = registry.counter("node.steps");
  m.perturbations = registry.counter("node.perturbations");
  m.lkFlips = registry.counter("node.lk_flips");
  m.lkUndoneFlips = registry.counter("node.lk_undone_flips");
  m.lkKicks = registry.counter("node.lk_kicks");
  m.clkRollbacks = registry.counter("node.clk_rollbacks");
  m.restarts = registry.counter("node.restarts");
  m.mergeLocalWin = registry.counter("node.merge_local_win");
  m.mergeReceivedWin = registry.counter("node.merge_received_win");
  m.mergeStagnant = registry.counter("node.merge_stagnant");
  m.toursReceived = registry.counter("node.tours_received");
  m.computeSeconds = registry.histogram(
      "node.compute_seconds",
      obs::MetricsRegistry::exponentialBounds(1e-4, 4.0, 10));
  m.restartDepth = registry.histogram(
      "node.restart_depth", obs::MetricsRegistry::linearBounds(64.0, 8));
  m.specSpeculated = registry.counter("node.spec_speculated");
  m.specCommitted = registry.counter("node.spec_committed");
  m.specConflicts = registry.counter("node.spec_conflicts");
  return m;
}

DistNode::DistNode(const Instance& inst, const CandidateLists& cand,
                   DistParams params, int id, std::uint64_t seed)
    : inst_(inst), cand_(cand), params_(params), id_(id), rng_(seed),
      sPrev_(inst), sBest_(inst) {
  if (params_.cv < 1 || params_.cr < 1)
    throw std::invalid_argument("DistNode: c_v and c_r must be >= 1");
}

Tour DistNode::initialTour() {
  if (constructionOrder_ != nullptr) return Tour(inst_, *constructionOrder_);
  return Tour(inst_, quickBoruvkaTour(inst_, cand_));
}

std::int64_t DistNode::innerKicks() const noexcept {
  return params_.clkKicksPerCall > 0 ? params_.clkKicksPerCall : inst_.n();
}

DistNode::StepOutcome DistNode::initialStep() {
  if (initialized_) throw std::logic_error("DistNode: initialStep called twice");
  initialized_ = true;
  Timer timer;
  sPrev_ = initialTour();
  ClkOptions co;
  co.kick = params_.clkKick;
  co.kickOpt = params_.kickOpt;
  co.lk = params_.lk;
  co.maxKicks = innerKicks();
  co.targetLength = params_.targetLength;
  co.speculativeWorkers = params_.speculativeWorkers;
  Tour s = sPrev_;
  const ClkResult clk = chainedLinKernighan(s, cand_, rng_, ws_, co);
  sBest_ = s;
  sPrev_ = s;
  StepOutcome out;
  out.bestLength = sBest_.length();
  // Total physical reversals (applied + rewound): the same deterministic
  // work proxy as before the flips/undoneFlips telemetry split.
  out.modelCost = clk.flips + clk.undoneFlips + inst_.n();
  out.measuredSeconds = timer.seconds();
  out.foundTarget =
      params_.targetLength >= 0 && out.bestLength <= params_.targetLength;
  return out;
}

DistNode::ComputePhase DistNode::compute() {
  if (!initialized_)
    throw std::logic_error("DistNode: compute before initialStep");
  Timer timer;
  ComputePhase phase{sBest_, 0, 0.0, 0, false};

  // PERTURBATE(s_best): fresh construction after c_r stagnant iterations,
  // otherwise NumNoImprovements / c_v + 1 random double bridges.
  if (params_.usePerturbation) {
    if (numNoImprovements_ > params_.cr) {
      phase.noImprovementsAtRestart = numNoImprovements_;
      numNoImprovements_ = 0;
      ++restarts_;
      phase.restarted = true;
      phase.s = initialTour();
      phase.modelCost += inst_.n();  // construction work
    } else {
      phase.perturbations = numNoImprovements_ / params_.cv + 1;
      for (int i = 0; i < phase.perturbations; ++i)
        applyKick(phase.s, KickStrategy::kRandom, cand_, rng_, KickOptions{},
                  ws_);
    }
  }

  // CHAINEDLINKERNIGHAN(s).
  ClkOptions co;
  co.kick = params_.clkKick;
  co.kickOpt = params_.kickOpt;
  co.lk = params_.lk;
  co.maxKicks = innerKicks();
  co.targetLength = params_.targetLength;
  co.speculativeWorkers = params_.speculativeWorkers;
  const ClkResult clk = chainedLinKernighan(phase.s, cand_, rng_, ws_, co);
  phase.modelCost += clk.flips + clk.undoneFlips + clk.kicks;
  phase.measuredSeconds = timer.seconds();

  if (metrics_.registry != nullptr) {
    obs::MetricsRegistry& reg = *metrics_.registry;
    reg.add(metrics_.steps);
    reg.add(metrics_.lkFlips, clk.flips);
    reg.add(metrics_.lkUndoneFlips, clk.undoneFlips);
    reg.add(metrics_.lkKicks, clk.kicks);
    reg.add(metrics_.clkRollbacks, clk.rollbacks);
    if (clk.speculated > 0) {
      reg.add(metrics_.specSpeculated, clk.speculated);
      reg.add(metrics_.specCommitted, clk.specCommitted);
      reg.add(metrics_.specConflicts, clk.specConflicts);
    }
    if (phase.perturbations > 0)
      reg.add(metrics_.perturbations, phase.perturbations);
    if (phase.restarted) {
      reg.add(metrics_.restarts);
      reg.observe(metrics_.restartDepth,
                  double(phase.noImprovementsAtRestart));
    }
    reg.observe(metrics_.computeSeconds, phase.measuredSeconds);
  }
  return phase;
}

DistNode::StepOutcome DistNode::merge(ComputePhase phase,
                                      const std::vector<Message>& received) {
  StepOutcome out;
  out.modelCost = phase.modelCost;
  out.measuredSeconds = phase.measuredSeconds;
  out.perturbations = phase.perturbations;
  out.restarted = phase.restarted;
  out.noImprovementsAtRestart = phase.noImprovementsAtRestart;
  Tour& s = phase.s;

  // SELECTBESTTOUR over {received} ∪ {s} ∪ {s_prev}.
  const Tour* best = &s;
  if (sPrev_.length() < best->length()) best = &sPrev_;
  Tour receivedBest(sPrev_);  // storage for the best received tour, if any
  bool haveReceived = false;
  int receivedFrom = -1;
  for (const Message& msg : received) {
    if (msg.type != MessageType::kTour) continue;
    if (metrics_.registry != nullptr)
      metrics_.registry->add(metrics_.toursReceived);
    if (msg.length >= best->length()) continue;  // cheap reject before O(n)
    std::vector<int> order(msg.order.begin(), msg.order.end());
    Tour t(inst_, std::move(order));
    if (t.length() < best->length()) {
      receivedBest = std::move(t);
      haveReceived = true;
      receivedFrom = msg.from;
      best = &receivedBest;
    }
  }

  // Counter bookkeeping and broadcast decision (Fig. 1): stagnation bumps
  // the counter; any strict improvement resets it; only locally produced
  // improvements are re-broadcast.
  if (best->length() == sPrev_.length()) {
    ++numNoImprovements_;
  } else {
    numNoImprovements_ = 0;
    if (best == &s) out.broadcast = true;
    out.improvedByMessage = haveReceived && best == &receivedBest;
    if (out.improvedByMessage) out.improvedFromNode = receivedFrom;
  }
  if (metrics_.registry != nullptr) {
    metrics_.registry->add(out.improvedByMessage ? metrics_.mergeReceivedWin
                           : out.broadcast       ? metrics_.mergeLocalWin
                                                 : metrics_.mergeStagnant);
  }

  sBest_ = *best;
  sPrev_ = sBest_;
  out.bestLength = sBest_.length();
  out.foundTarget =
      params_.targetLength >= 0 && out.bestLength <= params_.targetLength;
  return out;
}

DistNode::StepOutcome DistNode::step(const std::vector<Message>& received) {
  return merge(compute(), received);
}

Message DistNode::makeTourMessage() const {
  Message msg;
  msg.type = MessageType::kTour;
  msg.from = id_;
  msg.length = sBest_.length();
  const auto order = sBest_.order();
  msg.order.assign(order.begin(), order.end());
  return msg;
}

}  // namespace distclk
